// Package repro reproduces the paper "Dynamic Monopolies in Colored Tori"
// (Brunetti, Lodi, Quattrociocchi, IPPS Workshops 2011, arXiv:1101.5915).
//
// The repository implements, from scratch and with the standard library only:
//
//   - the three 4-regular torus topologies studied by the paper (toroidal
//     mesh, torus cordalis, torus serpentinus) — internal/grid;
//   - the SMP-Protocol ("simple majority with persuadable entities"), its
//     degree-aware generalization and the bi-colored baseline rules of
//     Flocchini et al. — internal/rules;
//   - a topology-generic synchronous simulation engine: four bit-identical
//     stepping tiers (full sweep, striped parallel, dirty frontier,
//     word-parallel bitplane) over any CSR substrate — the three tori or
//     arbitrary graphs — plus a bit-sliced ensemble tier stepping up to 64
//     two-color replicas per word op for batched runs, and a time-varying
//     run mode that masks link availability per round — internal/sim;
//   - k-block / non-k-block / forest structural analysis — internal/blocks;
//   - the paper's dynamo constructions, lower bounds, round-count formulas
//     and counterexamples — internal/dynamo;
//   - the experiment harness regenerating every table and figure of the
//     paper — internal/analysis and bench_test.go;
//   - the extensions sketched in the paper's conclusions, all running on the
//     unified engine: general graphs with a cached CSR view and target-set
//     heuristics (internal/graphs), link-availability models for the
//     time-varying mode (internal/tvg), bounded-confidence opinions
//     (internal/opinion);
//   - the public, context-aware façade with pluggable rule/topology/
//     generator registries, graph and time-varying systems, observers and
//     batched sessions — dynmon (which replaced the deleted internal/core
//     façade; CI keeps it deleted).  Its surface is spec-driven and
//     streaming: systems and runs round-trip through JSON specs (Spec,
//     RunSpec, the spec files under specs/), runs stream round by round as
//     iter.Seq2 step sequences (System.Steps), and serializable checkpoints
//     migrate long runs across processes (Step.Checkpoint, System.Resume)
//     bit-identically to uninterrupted runs.
//
// See README.md for a quickstart, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-vs-measured record of every experiment.
package repro
