package dynmon

import (
	"fmt"

	"repro/internal/sim"
)

// Config is the explicit form of a System description.  Most callers use
// New with functional options instead; the struct exists for callers that
// assemble configuration from flags.  Whenever no pre-built instances are
// involved, NewFromConfig reduces the Config to a Spec and builds through
// Spec.New — the struct is an adapter, not a second constructor.  For a
// fully declarative, JSON-round-trippable description use Spec directly.
type Config struct {
	// TopologyName is resolved through the topology registry ("mesh",
	// "toroidal-mesh", "cordalis", ... or any registered name) with the
	// Rows×Cols dimensions.  Ignored when Topology is non-nil.
	TopologyName string
	Rows, Cols   int
	// Topology, when non-nil, is used directly.
	Topology Topology
	// Colors is the palette size K.
	Colors int
	// RuleName is resolved through the rule registry ("smp",
	// "simple-majority-pb", ... or any registered name).  Ignored when Rule
	// is non-nil.  On a Graph substrate the default "smp" resolves to
	// "generalized-smp" (see NewFromConfig).
	RuleName string
	// Rule, when non-nil, is used directly.
	Rule Rule
	// Generator, when non-nil, makes the system run over a graph built by a
	// registered generator (by name, parameters and seed — the
	// spec-serializable form the BarabasiAlbert/WattsStrogatz/ErdosRenyi
	// options produce).  Ignored when Graph is non-nil.
	Generator *GeneratorSpec
	// Graph, when non-nil, makes the system run over this general graph and
	// wins over the generator and both topology fields.
	Graph *GeneralGraph
}

// spec reduces the Config to its declarative form.  ok is false when the
// Config carries pre-built instances (Topology, Rule, Graph), which have no
// a-priori wire form — NewFromConfig then builds directly and System.Spec
// derives a spec after the fact where possible.
func (cfg Config) spec() (*Spec, bool) {
	if cfg.Topology != nil || cfg.Rule != nil || cfg.Graph != nil {
		return nil, false
	}
	sp := &Spec{Colors: cfg.Colors, Rule: cfg.RuleName}
	if cfg.Generator != nil {
		gen := *cfg.Generator
		sp.Substrate.Generator = &gen
	} else {
		sp.Substrate.Topology = &TopologySpec{Name: cfg.TopologyName, Rows: cfg.Rows, Cols: cfg.Cols}
	}
	return sp, true
}

// Option configures New.
type Option func(*Config) error

// Mesh selects an m×n toroidal mesh topology.
func Mesh(m, n int) Option { return WithTopology("toroidal-mesh", m, n) }

// Cordalis selects an m×n torus cordalis topology.
func Cordalis(m, n int) Option { return WithTopology("torus-cordalis", m, n) }

// Serpentinus selects an m×n torus serpentinus topology.
func Serpentinus(m, n int) Option { return WithTopology("torus-serpentinus", m, n) }

// WithTopology selects a registered topology by name ("mesh", "cordalis",
// "serpentinus", the full paper names, or any name added through
// RegisterTopology) with the given dimensions.
func WithTopology(name string, m, n int) Option {
	return func(c *Config) error {
		c.TopologyName, c.Rows, c.Cols, c.Topology = name, m, n, nil
		c.Generator, c.Graph = nil, nil
		return nil
	}
}

// WithTopologyInstance uses an already-constructed topology.
func WithTopologyInstance(t Topology) Option {
	return func(c *Config) error {
		if t == nil {
			return fmt.Errorf("dynmon: nil topology")
		}
		c.Topology = t
		c.Generator, c.Graph = nil, nil
		return nil
	}
}

// Colors sets the palette size K (the color set is {1..K}).
func Colors(k int) Option {
	return func(c *Config) error {
		c.Colors = k
		return nil
	}
}

// WithRule selects a registered rule by name ("smp", "simple-majority-pb",
// "pb", ... or any name added through RegisterRule).
func WithRule(name string) Option {
	return func(c *Config) error {
		c.RuleName, c.Rule = name, nil
		return nil
	}
}

// WithRuleInstance uses an already-constructed rule, e.g. one with
// non-default parameters.
func WithRuleInstance(r Rule) Option {
	return func(c *Config) error {
		if r == nil {
			return fmt.Errorf("dynmon: nil rule")
		}
		c.Rule = r
		return nil
	}
}

// RunSpec is the declarative, JSON-round-trippable description of a run:
// round cap, stop conditions, kernel, workers and the time-varying model.
// It is the wire form behind the RunOption front end — every option is a
// mutation of a RunSpec, and both System.Run and spec files reduce to one —
// so the imperative and declarative paths cannot drift.
//
// The zero RunSpec runs with all defaults (substrate round budget,
// automatic kernel, sequential, static network, run to fixed point).
type RunSpec struct {
	// MaxRounds bounds the number of synchronous rounds (0 selects the
	// substrate's default budget).
	MaxRounds int `json:"max_rounds,omitempty"`
	// Target is the color whose spread is tracked (0 = none).
	Target Color `json:"target,omitempty"`
	// StopWhenMonochromatic stops the run as soon as every vertex has the
	// same color.
	StopWhenMonochromatic bool `json:"stop_when_monochromatic,omitempty"`
	// DetectCycles stops the run when a period-2 oscillation is detected.
	DetectCycles bool `json:"detect_cycles,omitempty"`
	// RecordHistory keeps a copy of the configuration after every round.
	RecordHistory bool `json:"record_history,omitempty"`
	// Kernel forces a stepping tier by name ("bitplane", "frontier",
	// "sweep", "parallel", "sharded"); empty or "auto" keeps the automatic
	// selection.
	Kernel string `json:"kernel,omitempty"`
	// Parallel enables the striped parallel stepper with Workers goroutines
	// (0 = GOMAXPROCS).
	Parallel bool `json:"parallel,omitempty"`
	Workers  int  `json:"workers,omitempty"`
	// FullSweep forces the sequential full-sweep oracle stepper.
	FullSweep bool `json:"full_sweep,omitempty"`
	// TimeVarying selects a link-availability model by spec; see
	// AvailabilitySpec.  The TimeVarying run option (an arbitrary
	// Availability implementation) wins over this field when both are set.
	TimeVarying *AvailabilitySpec `json:"time_varying,omitempty"`
	// Schedule selects the update discipline by spec; see ScheduleSpec.
	// Omitted or "synchronous" keeps the paper's synchronous model.
	Schedule *ScheduleSpec `json:"schedule,omitempty"`
	// Noise makes every rule application ε-faulty; see NoiseSpec.
	Noise *NoiseSpec `json:"noise,omitempty"`

	// Non-wire attachments, set through run options: observers watch the
	// run, availability overrides TimeVarying with an arbitrary
	// implementation, freshBuffers opts out of the engine's buffer pool,
	// cpEvery/cpSink periodically snapshot the run (see CheckpointEvery).
	// They do not serialize — a checkpoint or spec file carries run
	// semantics, not process-local callbacks.
	observers    []Observer
	availability Availability
	freshBuffers bool
	cpEvery      int
	cpSink       func(*Checkpoint) error
}

// RunOption configures a single Run (or every run of a Session batch) by
// mutating the run's RunSpec.
type RunOption func(*RunSpec)

// runSpecOf folds RunOptions into a RunSpec.
func runSpecOf(opts []RunOption) RunSpec {
	var rs RunSpec
	for _, opt := range opts {
		opt(&rs)
	}
	return rs
}

// WithRunSpec overlays a complete RunSpec: its wire fields replace the ones
// accumulated so far, while non-wire attachments (observers, an explicit
// availability model, the buffer-pool opt-out) are merged.  It is how
// spec-file-driven callers pass a parsed RunSpec through the same option
// path everything else uses.
func WithRunSpec(spec RunSpec) RunOption {
	return func(rs *RunSpec) {
		observers := append(rs.observers, spec.observers...)
		availability := spec.availability
		if availability == nil {
			availability = rs.availability
		}
		fresh := rs.freshBuffers || spec.freshBuffers
		cpEvery, cpSink := spec.cpEvery, spec.cpSink
		if cpSink == nil {
			cpEvery, cpSink = rs.cpEvery, rs.cpSink
		}
		*rs = spec
		rs.observers, rs.availability, rs.freshBuffers = observers, availability, fresh
		rs.cpEvery, rs.cpSink = cpEvery, cpSink
	}
}

// engineOptions lowers the RunSpec onto the engine's option struct.  colors
// is the system's palette size K: it completes the noise model (faulted
// applications draw uniformly from {1..K}), which the wire spec deliberately
// does not repeat.
func (rs RunSpec) engineOptions(colors int) (sim.Options, error) {
	kernel, err := sim.ParseKernel(rs.Kernel)
	if err != nil {
		return sim.Options{}, fmt.Errorf("dynmon: %w", err)
	}
	o := sim.Options{
		MaxRounds:             rs.MaxRounds,
		Target:                rs.Target,
		StopWhenMonochromatic: rs.StopWhenMonochromatic,
		DetectCycles:          rs.DetectCycles,
		RecordHistory:         rs.RecordHistory,
		Kernel:                kernel,
		Parallel:              rs.Parallel,
		Workers:               rs.Workers,
		FullSweep:             rs.FullSweep,
		FreshBuffers:          rs.freshBuffers,
		Observers:             rs.observers,
	}
	switch {
	case rs.availability != nil:
		o.TimeVarying = rs.availability
	case rs.TimeVarying != nil:
		model, err := rs.TimeVarying.Build()
		if err != nil {
			return sim.Options{}, err
		}
		o.TimeVarying = model
	}
	if rs.Schedule != nil {
		sched, err := rs.Schedule.Build()
		if err != nil {
			return sim.Options{}, err
		}
		o.Schedule = sched
	}
	if rs.Noise != nil {
		o.Noise = &sim.Noise{Eps: rs.Noise.Eps, Colors: colors, Seed: rs.Noise.Seed}
	}
	return o, nil
}

// wireClone returns the RunSpec with only its serializable fields, deep.
func (rs RunSpec) wireClone() RunSpec {
	out := rs
	out.observers, out.availability, out.freshBuffers = nil, nil, false
	out.cpEvery, out.cpSink = 0, nil
	if rs.TimeVarying != nil {
		tv := *rs.TimeVarying
		out.TimeVarying = &tv
	}
	if rs.Schedule != nil {
		sched := *rs.Schedule
		out.Schedule = &sched
	}
	if rs.Noise != nil {
		noise := *rs.Noise
		out.Noise = &noise
	}
	return out
}

// ScheduleSpec is the wire form of an update schedule (sim.Schedule): a mode
// name — "synchronous", "uniform-async", "sequential", "random-sequential"
// or "vertex-clock" — with the mode's parameters.  All schedule randomness
// is counter-based on Seed, so a spec pins the trajectory exactly: same
// spec, same schedule draws, on any kernel, worker count or resume boundary.
type ScheduleSpec struct {
	// Mode names the update discipline; empty means synchronous.
	Mode string `json:"mode"`
	// P is the uniform-async per-round activation probability (0 selects the
	// default 0.5); other modes ignore it.
	P float64 `json:"p,omitempty"`
	// Period bounds the per-vertex period of vertex-clock (0 selects the
	// default 4); other modes ignore it.
	Period int `json:"period,omitempty"`
	// Seed selects the activation stream.
	Seed uint64 `json:"seed,omitempty"`
}

// Build instantiates the schedule the spec names.
func (ss *ScheduleSpec) Build() (*sim.Schedule, error) {
	kind, err := sim.ParseScheduleKind(ss.Mode)
	if err != nil {
		return nil, fmt.Errorf("dynmon: %w", err)
	}
	return &sim.Schedule{Kind: kind, P: ss.P, Period: ss.Period, Seed: ss.Seed}, nil
}

// NoiseSpec is the wire form of the ε-faulty noise model (sim.Noise): every
// rule application independently misfires with probability Eps, replacing
// the computed color with a uniform draw from the system's palette.  The
// palette size is supplied by the system at run time, not repeated here.
// Fault draws are counter-based on Seed — see rules.FaultDraw — so noisy
// runs are exactly as reproducible as deterministic ones.
type NoiseSpec struct {
	// Eps is the per-application fault probability in [0, 1]; zero disables
	// the noise.
	Eps float64 `json:"eps"`
	// Seed selects the fault stream.
	Seed uint64 `json:"seed,omitempty"`
}

// AvailabilitySpec is the wire form of the built-in link-availability
// models: "always-on", "bernoulli" (P, Seed), "node-faults" (P, Seed, plus
// an optional nested Links model for the underlying link layer) and
// "periodic" (Period, Off).
type AvailabilitySpec struct {
	Model  string            `json:"model"`
	P      float64           `json:"p,omitempty"`
	Seed   uint64            `json:"seed,omitempty"`
	Links  *AvailabilitySpec `json:"links,omitempty"`
	Period int               `json:"period,omitempty"`
	Off    int               `json:"off,omitempty"`
}

// Build instantiates the availability model the spec names.
func (as *AvailabilitySpec) Build() (Availability, error) {
	switch as.Model {
	case "always-on":
		return AlwaysOn{}, nil
	case "bernoulli":
		return Bernoulli{P: as.P, Seed: as.Seed}, nil
	case "node-faults":
		var links Availability
		if as.Links != nil {
			inner, err := as.Links.Build()
			if err != nil {
				return nil, err
			}
			links = inner
		}
		return NodeFaults{Links: links, P: as.P, Seed: as.Seed}, nil
	case "periodic":
		return Periodic{Period: as.Period, Off: as.Off}, nil
	default:
		return nil, fmt.Errorf("dynmon: unknown availability model %q (want always-on, bernoulli, node-faults or periodic)", as.Model)
	}
}

// availabilitySpecOf reverse-maps a built-in availability model to its wire
// form; ok is false for custom implementations, which have none.  The
// mapping is exact — Build on the result reproduces the model value — so a
// checkpointed time-varying run resumes under precisely the link draws it
// was started with (degenerate layers like a never-available Bernoulli
// included).
func availabilitySpecOf(a Availability) (*AvailabilitySpec, bool) {
	switch m := a.(type) {
	case AlwaysOn:
		return &AvailabilitySpec{Model: "always-on"}, true
	case Bernoulli:
		return &AvailabilitySpec{Model: "bernoulli", P: m.P, Seed: m.Seed}, true
	case Periodic:
		return &AvailabilitySpec{Model: "periodic", Period: m.Period, Off: m.Off}, true
	case NodeFaults:
		spec := &AvailabilitySpec{Model: "node-faults", P: m.P, Seed: m.Seed}
		if m.Links == nil {
			return spec, true
		}
		inner, ok := availabilitySpecOf(m.Links)
		if !ok {
			return nil, false
		}
		spec.Links = inner
		return spec, true
	default:
		return nil, false
	}
}

// MaxRounds bounds the number of synchronous rounds (0 selects the default
// budget for the topology, generous enough that non-convergence means "not
// a dynamo").
func MaxRounds(n int) RunOption {
	return func(rs *RunSpec) { rs.MaxRounds = n }
}

// Target tracks the spread of color k: per-vertex first-reach times and
// whether the k-colored set evolved monotonically.
func Target(k Color) RunOption {
	return func(rs *RunSpec) { rs.Target = k }
}

// StopWhenMonochromatic stops the run as soon as every vertex has the same
// color (the dynamo success condition).
func StopWhenMonochromatic() RunOption {
	return func(rs *RunSpec) { rs.StopWhenMonochromatic = true }
}

// DetectCycles stops the run when a period-2 oscillation is detected.
func DetectCycles() RunOption {
	return func(rs *RunSpec) { rs.DetectCycles = true }
}

// RecordHistory keeps a copy of the configuration after every round on
// Result.History.
func RecordHistory() RunOption {
	return func(rs *RunSpec) { rs.RecordHistory = true }
}

// Parallel enables the striped parallel stepper with the given worker
// count (0 selects GOMAXPROCS).  The effective count — capped at the vertex
// count — is reported on Result.Workers.  Parallel and sequential runs are
// bit-identical.
func Parallel(workers int) RunOption {
	return func(rs *RunSpec) { rs.Parallel, rs.Workers = true, workers }
}

// FullSweep forces the sequential full-sweep oracle stepper instead of the
// default dirty-frontier stepper.  Results are bit-identical either way; the
// option exists for differential checks and for measuring the frontier's
// speedup.
func FullSweep() RunOption {
	return func(rs *RunSpec) { rs.FullSweep = true }
}

// KernelTier identifies one of the engine's stepping tiers.  All tiers are
// bit-identical; they differ only in speed.  Result.Kernel reports the tier
// a run actually used (with Result.Downshift marking an auto-tier mid-run
// handoff from the bitplane to the frontier).
type KernelTier = sim.Kernel

const (
	// KernelAuto (the default) picks the bitplane kernel when the rule,
	// topology and coloring qualify, the parallel sweep when Parallel is
	// set, and the dirty frontier otherwise.
	KernelAuto = sim.KernelAuto
	// KernelBitplane forces the word-parallel bit-sliced stepper (runs on
	// uint64 bit planes, 64 vertices per word operation).  Runs whose rule,
	// topology or coloring do not qualify return an error wrapping
	// ErrBitplaneIneligible.
	KernelBitplane = sim.KernelBitplane
	// KernelFrontier forces the sequential dirty-frontier stepper.
	KernelFrontier = sim.KernelFrontier
	// KernelSweep forces the sequential full-sweep oracle stepper.
	KernelSweep = sim.KernelSweep
	// KernelParallel forces the striped parallel sweep.
	KernelParallel = sim.KernelParallel
	// KernelSharded forces the domain-decomposed stepper: the substrate is
	// cut into per-worker shards (row-band slabs on the tori) stepped from
	// shard-local buffers with a per-round halo exchange.  Auto-selection
	// picks it for parallel runs on large substrates; Result.Workers
	// reports the shard count actually used.
	KernelSharded = sim.KernelSharded
)

// ErrBitplaneIneligible is the error (wrapped) returned by runs that force
// KernelBitplane on a rule, topology or coloring with no exact
// word-parallel form.
var ErrBitplaneIneligible = sim.ErrBitplaneIneligible

// ErrStochasticSweepOnly is the error (wrapped) returned by stochastic runs
// (a non-synchronous Schedule or an ε-faulty Noise) that force a kernel tier
// with no stochastic form — bitplane, frontier, sharded, or parallel for the
// in-place sequential schedules.
var ErrStochasticSweepOnly = sim.ErrStochasticSweepOnly

// Kernel forces the run's stepping tier instead of the automatic selection.
// See the KernelTier constants; the tier used is reported on Result.Kernel.
func Kernel(k KernelTier) RunOption {
	return func(rs *RunSpec) {
		if k == sim.KernelAuto {
			rs.Kernel = ""
			return
		}
		rs.Kernel = k.String()
	}
}

// WithSchedule sets the run's update schedule from its wire spec.  A nil
// spec restores the default synchronous schedule.
func WithSchedule(spec *ScheduleSpec) RunOption {
	return func(rs *RunSpec) { rs.Schedule = spec }
}

// UniformAsync makes each vertex update independently with probability p
// each round (0 selects the default 0.5) under the activation stream seed.
// Activation draws are counter-based, so the trajectory is bit-identical
// across kernels, worker counts and checkpoint/resume boundaries.
func UniformAsync(p float64, seed uint64) RunOption {
	return WithSchedule(&ScheduleSpec{Mode: "uniform-async", P: p, Seed: seed})
}

// Sequential updates vertices one at a time in row-major order, each update
// immediately visible to the rest of the sweep (the classic asynchronous
// raster scan; one engine round = one full sweep).
func Sequential() RunOption {
	return WithSchedule(&ScheduleSpec{Mode: "sequential"})
}

// RandomSequential updates vertices one at a time in a fresh seeded random
// permutation each sweep, each update immediately visible to the rest of
// the sweep.
func RandomSequential(seed uint64) RunOption {
	return WithSchedule(&ScheduleSpec{Mode: "random-sequential", Seed: seed})
}

// VertexClock gives every vertex its own update period in {1..period} (0
// selects the default bound 4) and phase, both derived from seed; a vertex
// updates only on rounds matching its clock.
func VertexClock(period int, seed uint64) RunOption {
	return WithSchedule(&ScheduleSpec{Mode: "vertex-clock", Period: period, Seed: seed})
}

// Noisy makes every rule application ε-faulty: with probability eps the
// computed color is replaced by a uniform draw from the palette (the
// ε-faulty majority model).  Fault draws are counter-based on seed, so noisy
// runs checkpoint, resume and parallelize bit-identically.  An eps of 0
// removes the noise.
func Noisy(eps float64, seed uint64) RunOption {
	return func(rs *RunSpec) {
		if eps == 0 {
			rs.Noise = nil
			return
		}
		rs.Noise = &NoiseSpec{Eps: eps, Seed: seed}
	}
}

// FreshBuffers makes the run allocate its own working buffers instead of
// borrowing from the engine's per-run buffer pool.
func FreshBuffers() RunOption {
	return func(rs *RunSpec) { rs.freshBuffers = true }
}

// CheckpointEvery invokes sink with a serializable Checkpoint after every
// `every` completed rounds of the run (rounds every, 2·every, ... — never
// the terminal round, whose complete Result supersedes any snapshot).  It is
// the durability hook long-running services build on: the dynserve server
// uses it to keep a recent resume point for every job, so runs survive
// eviction, disconnects and process migration.  Checkpoints are deep
// snapshots taken at the round boundary, so the run continues bit-identically
// whether or not anyone ever resumes them.
//
// The cadence applies to streaming (System.Steps, System.ResumeSteps) and
// draining (System.Run, System.Resume) forms alike.  A sink error stops the
// run — a service that cannot persist its resume points is losing the very
// durability it asked for — surfacing the error through the stream (or from
// Run).  The attachment is process-local and does not serialize; an `every`
// of 0 or a nil sink disables the cadence.
func CheckpointEvery(every int, sink func(*Checkpoint) error) RunOption {
	return func(rs *RunSpec) {
		if every <= 0 || sink == nil {
			rs.cpEvery, rs.cpSink = 0, nil
			return
		}
		rs.cpEvery, rs.cpSink = every, sink
	}
}

// WithObserver notifies o after every round (OnRound) and when the run
// stops on its own (OnFinish).  May be given multiple times; observers run
// in order from the run's driving goroutine.  Under the hood observers are
// one adapter over the step stream — see System.Steps.
func WithObserver(obs Observer) RunOption {
	return func(rs *RunSpec) { rs.observers = append(rs.observers, obs) }
}
