package dynmon

import (
	"fmt"

	"repro/internal/sim"
)

// Config is the explicit form of a System description.  Most callers use
// New with functional options instead; the struct exists for callers that
// unmarshal configuration from files or flags.
type Config struct {
	// TopologyName is resolved through the topology registry ("mesh",
	// "toroidal-mesh", "cordalis", ... or any registered name) with the
	// Rows×Cols dimensions.  Ignored when Topology is non-nil.
	TopologyName string
	Rows, Cols   int
	// Topology, when non-nil, is used directly.
	Topology Topology
	// Colors is the palette size K.
	Colors int
	// RuleName is resolved through the rule registry ("smp",
	// "simple-majority-pb", ... or any registered name).  Ignored when Rule
	// is non-nil.  On a Graph substrate the default "smp" resolves to
	// "generalized-smp" (see NewFromConfig).
	RuleName string
	// Rule, when non-nil, is used directly.
	Rule Rule
	// Graph, when non-nil, makes the system run over this general graph and
	// wins over both topology fields.
	Graph *GeneralGraph
}

// Option configures New.
type Option func(*Config) error

// Mesh selects an m×n toroidal mesh topology.
func Mesh(m, n int) Option { return WithTopology("toroidal-mesh", m, n) }

// Cordalis selects an m×n torus cordalis topology.
func Cordalis(m, n int) Option { return WithTopology("torus-cordalis", m, n) }

// Serpentinus selects an m×n torus serpentinus topology.
func Serpentinus(m, n int) Option { return WithTopology("torus-serpentinus", m, n) }

// WithTopology selects a registered topology by name ("mesh", "cordalis",
// "serpentinus", the full paper names, or any name added through
// RegisterTopology) with the given dimensions.
func WithTopology(name string, m, n int) Option {
	return func(c *Config) error {
		c.TopologyName, c.Rows, c.Cols, c.Topology = name, m, n, nil
		return nil
	}
}

// WithTopologyInstance uses an already-constructed topology.
func WithTopologyInstance(t Topology) Option {
	return func(c *Config) error {
		if t == nil {
			return fmt.Errorf("dynmon: nil topology")
		}
		c.Topology = t
		return nil
	}
}

// Colors sets the palette size K (the color set is {1..K}).
func Colors(k int) Option {
	return func(c *Config) error {
		c.Colors = k
		return nil
	}
}

// WithRule selects a registered rule by name ("smp", "simple-majority-pb",
// "pb", ... or any name added through RegisterRule).
func WithRule(name string) Option {
	return func(c *Config) error {
		c.RuleName, c.Rule = name, nil
		return nil
	}
}

// WithRuleInstance uses an already-constructed rule, e.g. one with
// non-default parameters.
func WithRuleInstance(r Rule) Option {
	return func(c *Config) error {
		if r == nil {
			return fmt.Errorf("dynmon: nil rule")
		}
		c.Rule = r
		return nil
	}
}

// RunOption configures a single Run (or every run of a Session batch).
type RunOption func(*sim.Options)

// buildRunOptions folds RunOptions into the engine's option struct.
func buildRunOptions(opts []RunOption) sim.Options {
	var o sim.Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// MaxRounds bounds the number of synchronous rounds (0 selects the default
// budget for the topology, generous enough that non-convergence means "not
// a dynamo").
func MaxRounds(n int) RunOption {
	return func(o *sim.Options) { o.MaxRounds = n }
}

// Target tracks the spread of color k: per-vertex first-reach times and
// whether the k-colored set evolved monotonically.
func Target(k Color) RunOption {
	return func(o *sim.Options) { o.Target = k }
}

// StopWhenMonochromatic stops the run as soon as every vertex has the same
// color (the dynamo success condition).
func StopWhenMonochromatic() RunOption {
	return func(o *sim.Options) { o.StopWhenMonochromatic = true }
}

// DetectCycles stops the run when a period-2 oscillation is detected.
func DetectCycles() RunOption {
	return func(o *sim.Options) { o.DetectCycles = true }
}

// RecordHistory keeps a copy of the configuration after every round on
// Result.History.
func RecordHistory() RunOption {
	return func(o *sim.Options) { o.RecordHistory = true }
}

// Parallel enables the striped parallel stepper with the given worker
// count (0 selects GOMAXPROCS).  The effective count — capped at the vertex
// count — is reported on Result.Workers.  Parallel and sequential runs are
// bit-identical.
func Parallel(workers int) RunOption {
	return func(o *sim.Options) { o.Parallel, o.Workers = true, workers }
}

// FullSweep forces the sequential full-sweep oracle stepper instead of the
// default dirty-frontier stepper.  Results are bit-identical either way; the
// option exists for differential checks and for measuring the frontier's
// speedup.
func FullSweep() RunOption {
	return func(o *sim.Options) { o.FullSweep = true }
}

// KernelTier identifies one of the engine's stepping tiers.  All tiers are
// bit-identical; they differ only in speed.  Result.Kernel reports the tier
// a run actually used (with Result.Downshift marking an auto-tier mid-run
// handoff from the bitplane to the frontier).
type KernelTier = sim.Kernel

const (
	// KernelAuto (the default) picks the bitplane kernel when the rule,
	// topology and coloring qualify, the parallel sweep when Parallel is
	// set, and the dirty frontier otherwise.
	KernelAuto = sim.KernelAuto
	// KernelBitplane forces the word-parallel bit-sliced stepper (runs on
	// uint64 bit planes, 64 vertices per word operation).  Runs whose rule,
	// topology or coloring do not qualify return an error wrapping
	// ErrBitplaneIneligible.
	KernelBitplane = sim.KernelBitplane
	// KernelFrontier forces the sequential dirty-frontier stepper.
	KernelFrontier = sim.KernelFrontier
	// KernelSweep forces the sequential full-sweep oracle stepper.
	KernelSweep = sim.KernelSweep
	// KernelParallel forces the striped parallel sweep.
	KernelParallel = sim.KernelParallel
)

// ErrBitplaneIneligible is the error (wrapped) returned by runs that force
// KernelBitplane on a rule, topology or coloring with no exact
// word-parallel form.
var ErrBitplaneIneligible = sim.ErrBitplaneIneligible

// Kernel forces the run's stepping tier instead of the automatic selection.
// See the KernelTier constants; the tier used is reported on Result.Kernel.
func Kernel(k KernelTier) RunOption {
	return func(o *sim.Options) { o.Kernel = k }
}

// FreshBuffers makes the run allocate its own working buffers instead of
// borrowing from the engine's per-run buffer pool.
func FreshBuffers() RunOption {
	return func(o *sim.Options) { o.FreshBuffers = true }
}

// WithObserver notifies o after every round (OnRound) and when the run
// stops on its own (OnFinish).  May be given multiple times; observers run
// in order from the run's driving goroutine.
func WithObserver(obs Observer) RunOption {
	return func(o *sim.Options) { o.Observers = append(o.Observers, obs) }
}
