package dynmon_test

import (
	"context"
	"errors"
	"testing"

	"repro/dynmon"
)

// TestKernelRunOption drives every stepping tier through the public façade
// and requires bit-identical results plus correct tier telemetry.
func TestKernelRunOption(t *testing.T) {
	sys, err := dynmon.New(dynmon.Mesh(12, 12), dynmon.Colors(4))
	if err != nil {
		t.Fatal(err)
	}
	initial := sys.RandomColoring(7)
	ctx := context.Background()

	oracle, err := sys.Run(ctx, initial, dynmon.MaxRounds(30), dynmon.Target(1), dynmon.Kernel(dynmon.KernelSweep))
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Kernel != dynmon.KernelSweep {
		t.Fatalf("oracle ran on %v, want sweep", oracle.Kernel)
	}
	for _, tier := range []dynmon.KernelTier{dynmon.KernelBitplane, dynmon.KernelFrontier, dynmon.KernelSharded, dynmon.KernelAuto} {
		res, err := sys.Run(ctx, initial, dynmon.MaxRounds(30), dynmon.Target(1), dynmon.Kernel(tier))
		if err != nil {
			t.Fatalf("%v: %v", tier, err)
		}
		if res.Rounds != oracle.Rounds || !res.Final.Equal(oracle.Final) {
			t.Fatalf("%v: diverged from the sweep oracle", tier)
		}
		if tier != dynmon.KernelAuto && res.Kernel != tier {
			t.Fatalf("forced %v but Result.Kernel = %v", tier, res.Kernel)
		}
	}
}

// TestSessionNormalizesParallelKernel: the batch is the session's unit of
// parallelism, so a per-run Kernel(KernelParallel) or Kernel(KernelSharded)
// must degrade to the sweep instead of oversubscribing the shared worker
// pool per item.
func TestSessionNormalizesParallelKernel(t *testing.T) {
	sys, err := dynmon.New(dynmon.Mesh(8, 8), dynmon.Colors(4))
	if err != nil {
		t.Fatal(err)
	}
	se := sys.NewSession(2)
	initials := []*dynmon.Coloring{sys.RandomColoring(1), sys.RandomColoring(2)}
	for _, tier := range []dynmon.KernelTier{dynmon.KernelParallel, dynmon.KernelSharded} {
		results, err := se.RunBatch(context.Background(), initials,
			dynmon.MaxRounds(5), dynmon.Kernel(tier))
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			if res.Kernel != dynmon.KernelSweep || res.Workers != 1 {
				t.Fatalf("%v batch item %d ran on %v with %d workers, want sequential sweep", tier, i, res.Kernel, res.Workers)
			}
		}
	}
}

// TestKernelBitplaneIneligibleSurfaces: forcing the bitplane tier on a
// five-color system must fail loudly with the sentinel error, while the
// default auto selection silently falls back.
func TestKernelBitplaneIneligibleSurfaces(t *testing.T) {
	sys, err := dynmon.New(dynmon.Mesh(8, 8), dynmon.Colors(5))
	if err != nil {
		t.Fatal(err)
	}
	initial := sys.RandomColoring(1)
	ctx := context.Background()

	if _, err := sys.Run(ctx, initial, dynmon.Kernel(dynmon.KernelBitplane)); !errors.Is(err, dynmon.ErrBitplaneIneligible) {
		t.Fatalf("err = %v, want ErrBitplaneIneligible", err)
	}
	res, err := sys.Run(ctx, initial, dynmon.MaxRounds(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != dynmon.KernelFrontier {
		t.Fatalf("auto fallback used %v, want frontier", res.Kernel)
	}
}
