package dynmon

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"repro/internal/sim"
)

// Session fans batches of independent simulations across a bounded worker
// pool sharing the system's single immutable engine — the building block
// for serving many verification requests over one topology/rule pair
// without rebuilding adjacency tables per request.
//
// Results are bit-identical to one-at-a-time System.Run calls whichever
// path a batch takes.  Eligible batches — a two-color ensemble over a
// degree-4 substrate whose rule has a carry-save kernel, run with default
// (auto-kernel, sequential, unobserved) options — are stepped on the
// bit-sliced ensemble tier: up to 64 replicas packed one per bit of each
// vertex word and advanced together by sim.Engine.RunBatchSliced, with
// larger batches tiled in 64-lane words across the worker pool.  Anything
// the slicer cannot take (wider palettes, irregular graphs, forced kernels,
// observers, …) falls back to the per-run sequential stepper, parallel
// across batch items.  A Session is safe for concurrent use by multiple
// goroutines; each batch call gets its own pool of up to Workers
// goroutines.
//
// A Session holds no goroutines, file descriptors or timers between calls —
// its worker pools are scoped to each RunBatch/VerifyBatch invocation and
// are fully joined (via sync.WaitGroup) before the call returns, including
// on cancellation, where workers drain the remaining indices without
// working.  There is therefore no Close: long-lived holders — the dynserve
// server keeps Sessions for the process lifetime — simply drop the last
// reference and the garbage collector reclaims everything.  This contract is
// pinned by a race-enabled leak test (TestSessionAbandonLeaksNothing).
type Session struct {
	sys     *System
	workers int
	// fresh disables the engine's per-run buffer reuse for this session's
	// batches; see ReuseEngineBuffers.
	fresh bool
}

// SessionOption configures NewSession.
type SessionOption func(*Session)

// ReuseEngineBuffers controls whether the session's batch runs borrow the
// engine's pooled per-run working buffers (double buffers, frontier queues).
// Reuse is the default and is what makes steady-state stepping across batch
// runs allocation-free; disabling it makes every run allocate a private
// working set, which callers may prefer when a session's batches are rare
// and the pooled buffers would only pin memory between them.
func ReuseEngineBuffers(enabled bool) SessionOption {
	return func(se *Session) { se.fresh = !enabled }
}

// NewSession returns a session running at most workers simulations of a
// batch concurrently (workers <= 0 selects runtime.GOMAXPROCS(0)).
func (s *System) NewSession(workers int, opts ...SessionOption) *Session {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	se := &Session{sys: s, workers: workers}
	for _, opt := range opts {
		opt(se)
	}
	return se
}

// System returns the session's system.
func (se *Session) System() *System { return se.sys }

// Workers returns the pool bound.
func (se *Session) Workers() int { return se.workers }

// ReusesBuffers reports whether batch runs borrow the engine's pooled
// working buffers (the default).
func (se *Session) ReusesBuffers() bool { return !se.fresh }

// batchOptions folds run options into the engine options every batch item
// runs with, applying the session's normalization: per-run parallel stepping
// would oversubscribe the pool — the batch is the unit of parallelism — so
// Parallel is cleared and a forced parallel tier is normalized to the sweep
// it would otherwise degrade to.  The session's buffer-reuse default
// composes with a per-run FreshBuffers() option: either opting out disables
// reuse.
func (se *Session) batchOptions(rs RunSpec) (sim.Options, error) {
	rs.Parallel = false
	if rs.Kernel == sim.KernelParallel.String() || rs.Kernel == sim.KernelSharded.String() {
		rs.Kernel = sim.KernelSweep.String()
	}
	opt, err := rs.engineOptions(se.sys.palette.K)
	if err != nil {
		return sim.Options{}, err
	}
	opt.FreshBuffers = opt.FreshBuffers || se.fresh
	return opt, nil
}

// RunBatch evolves every initial coloring under the system's rule and
// returns one Result per input, in input order.  The run options apply to
// every item.  Eligible batches are stepped on the bit-sliced ensemble
// tier (see the Session doc); ineligible ones run per item.  Either way
// each entry is bit-identical to what System.Run would have produced.
// When ctx is canceled mid-batch the call returns ctx.Err(); entries whose
// simulation did not complete are nil.
func (se *Session) RunBatch(ctx context.Context, initials []*Coloring, opts ...RunOption) ([]*Result, error) {
	opt, err := se.batchOptions(runSpecOf(opts))
	if err != nil {
		return nil, err
	}
	results := make([]*Result, len(initials))
	err = se.runBatchInto(ctx, initials, opt, func(i int, res *sim.Result) {
		results[i] = res
	})
	return results, err
}

// runBatchInto drives one batch, delivering each completed item's Result
// through set (called at most once per index, never concurrently for the
// same index, possibly from different pool goroutines for different ones).
//
// Phase 1 tiles the batch into spans of up to 64 replicas and offers each
// tile to the engine's bit-sliced ensemble stepper; a tile the slicer
// refuses (sim.ErrBitsliceIneligible — e.g. a lane using more than two
// colors) is recorded for fallback rather than failing the batch.  Phase 2
// reruns only the refused indices on the per-run sequential stepper.  Both
// phases fan out over the session's worker pool; for sliced tiles the tile
// is the unit of parallelism, the word-level lane parallelism inside it
// being the point of the exercise.
func (se *Session) runBatchInto(ctx context.Context, initials []*Coloring, opt sim.Options, set func(i int, res *sim.Result)) error {
	n := len(initials)
	tiles := (n + sim.BitsliceLanes - 1) / sim.BitsliceLanes
	missed := make([][]int, tiles)
	err := se.forEach(ctx, tiles, func(ctx context.Context, t int) error {
		lo := t * sim.BitsliceLanes
		hi := min(lo+sim.BitsliceLanes, n)
		results, err := se.sys.engine.RunBatchSliced(ctx, initials[lo:hi], opt)
		if errors.Is(err, sim.ErrBitsliceIneligible) {
			idx := make([]int, hi-lo)
			for i := range idx {
				idx[i] = lo + i
			}
			missed[t] = idx
			return nil
		}
		// Lanes that finished before a cancellation still carry results;
		// deliver them so a partial batch looks the same as the per-run
		// path's (completed entries set, the rest nil).
		for i, res := range results {
			if res != nil {
				set(lo+i, res)
			}
		}
		return err
	})
	if err != nil {
		return err
	}
	var fallback []int
	for _, idx := range missed {
		fallback = append(fallback, idx...)
	}
	if len(fallback) == 0 {
		return nil
	}
	return se.forEach(ctx, len(fallback), func(ctx context.Context, j int) error {
		i := fallback[j]
		res, err := se.sys.engine.RunContext(ctx, initials[i], opt)
		if err != nil {
			return err
		}
		set(i, res)
		return nil
	})
}

// VerifyBatch runs every initial coloring to its verdict under the
// system's rule and returns one Report per input, in input order.  Extra
// run options layer over the standard verification options and get the same
// normalization as RunBatch (no per-run parallelism: the batch is the unit
// of parallelism, so a Parallel, KernelParallel or KernelSharded option is
// demoted to the sequential sweep instead of oversubscribing the pool).  When ctx is
// canceled mid-batch the call returns ctx.Err(); entries whose simulation
// did not complete are nil.
func (se *Session) VerifyBatch(ctx context.Context, initials []*Coloring, target Color, opts ...RunOption) ([]*Report, error) {
	rs := verifySpec(target)
	for _, opt := range opts {
		opt(&rs)
	}
	opt, err := se.batchOptions(rs)
	if err != nil {
		return nil, err
	}
	reports := make([]*Report, len(initials))
	err = se.runBatchInto(ctx, initials, opt, func(i int, res *sim.Result) {
		reports[i] = se.sys.reportFromResult("batch coloring", initials[i].Count(target), target, res)
	})
	return reports, err
}

// forEach runs fn(0..n-1) on up to se.workers goroutines and returns the
// first error (worker errors win over the context error only in the sense
// that both are ctx.Err() here; fn errors are surfaced as-is).
func (se *Session) forEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	workers := se.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	indices := make(chan int)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	workCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				if workCtx.Err() != nil {
					continue // drain without working after a failure
				}
				if err := fn(workCtx, i); err != nil {
					errOnce.Do(func() { firstErr = err })
					cancel()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// The pool may have drained without running anything (e.g. the parent
	// context was already canceled); surface that.
	return ctx.Err()
}
