package dynmon

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/sim"
)

// Session fans batches of independent simulations across a bounded worker
// pool sharing the system's single immutable engine — the building block
// for serving many verification requests over one topology/rule pair
// without rebuilding adjacency tables per request.
//
// Each simulation inside a batch runs on the engine's sequential stepper,
// so results are bit-identical to one-at-a-time System.Run calls; the
// parallelism is across batch items.  A Session is safe for concurrent use
// by multiple goroutines; each batch call gets its own pool of up to
// Workers goroutines.
//
// A Session holds no goroutines, file descriptors or timers between calls —
// its worker pools are scoped to each RunBatch/VerifyBatch invocation and
// are fully joined (via sync.WaitGroup) before the call returns, including
// on cancellation, where workers drain the remaining indices without
// working.  There is therefore no Close: long-lived holders — the dynserve
// server keeps Sessions for the process lifetime — simply drop the last
// reference and the garbage collector reclaims everything.  This contract is
// pinned by a race-enabled leak test (TestSessionAbandonLeaksNothing).
type Session struct {
	sys     *System
	workers int
	// fresh disables the engine's per-run buffer reuse for this session's
	// batches; see ReuseEngineBuffers.
	fresh bool
}

// SessionOption configures NewSession.
type SessionOption func(*Session)

// ReuseEngineBuffers controls whether the session's batch runs borrow the
// engine's pooled per-run working buffers (double buffers, frontier queues).
// Reuse is the default and is what makes steady-state stepping across batch
// runs allocation-free; disabling it makes every run allocate a private
// working set, which callers may prefer when a session's batches are rare
// and the pooled buffers would only pin memory between them.
func ReuseEngineBuffers(enabled bool) SessionOption {
	return func(se *Session) { se.fresh = !enabled }
}

// NewSession returns a session running at most workers simulations of a
// batch concurrently (workers <= 0 selects runtime.GOMAXPROCS(0)).
func (s *System) NewSession(workers int, opts ...SessionOption) *Session {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	se := &Session{sys: s, workers: workers}
	for _, opt := range opts {
		opt(se)
	}
	return se
}

// System returns the session's system.
func (se *Session) System() *System { return se.sys }

// Workers returns the pool bound.
func (se *Session) Workers() int { return se.workers }

// ReusesBuffers reports whether batch runs borrow the engine's pooled
// working buffers (the default).
func (se *Session) ReusesBuffers() bool { return !se.fresh }

// batchOptions folds run options into the engine options every batch item
// runs with, applying the session's normalization: per-run parallel stepping
// would oversubscribe the pool — the batch is the unit of parallelism — so
// Parallel is cleared and a forced parallel tier is normalized to the sweep
// it would otherwise degrade to.  The session's buffer-reuse default
// composes with a per-run FreshBuffers() option: either opting out disables
// reuse.
func (se *Session) batchOptions(rs RunSpec) (sim.Options, error) {
	rs.Parallel = false
	if rs.Kernel == sim.KernelParallel.String() {
		rs.Kernel = sim.KernelSweep.String()
	}
	opt, err := rs.engineOptions()
	if err != nil {
		return sim.Options{}, err
	}
	opt.FreshBuffers = opt.FreshBuffers || se.fresh
	return opt, nil
}

// RunBatch evolves every initial coloring under the system's rule and
// returns one Result per input, in input order.  The run options apply to
// every item.  When ctx is canceled mid-batch the call returns ctx.Err();
// entries whose simulation did not complete are nil.
func (se *Session) RunBatch(ctx context.Context, initials []*Coloring, opts ...RunOption) ([]*Result, error) {
	opt, err := se.batchOptions(runSpecOf(opts))
	if err != nil {
		return nil, err
	}
	results := make([]*Result, len(initials))
	err = se.forEach(ctx, len(initials), func(ctx context.Context, i int) error {
		res, err := se.sys.engine.RunContext(ctx, initials[i], opt)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	return results, err
}

// VerifyBatch runs every initial coloring to its verdict under the
// system's rule and returns one Report per input, in input order.  Extra
// run options layer over the standard verification options and get the same
// normalization as RunBatch (no per-run parallelism: the batch is the unit
// of parallelism, so a Parallel or KernelParallel option is demoted to the
// sequential sweep instead of oversubscribing the pool).  When ctx is
// canceled mid-batch the call returns ctx.Err(); entries whose simulation
// did not complete are nil.
func (se *Session) VerifyBatch(ctx context.Context, initials []*Coloring, target Color, opts ...RunOption) ([]*Report, error) {
	rs := verifySpec(target)
	for _, opt := range opts {
		opt(&rs)
	}
	opt, err := se.batchOptions(rs)
	if err != nil {
		return nil, err
	}
	reports := make([]*Report, len(initials))
	err = se.forEach(ctx, len(initials), func(ctx context.Context, i int) error {
		res, err := se.sys.engine.RunContext(ctx, initials[i], opt)
		if err != nil {
			return err
		}
		reports[i] = se.sys.reportFromResult("batch coloring", initials[i].Count(target), target, res)
		return nil
	})
	return reports, err
}

// forEach runs fn(0..n-1) on up to se.workers goroutines and returns the
// first error (worker errors win over the context error only in the sense
// that both are ctx.Err() here; fn errors are surfaced as-is).
func (se *Session) forEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	workers := se.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	indices := make(chan int)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	workCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				if workCtx.Err() != nil {
					continue // drain without working after a failure
				}
				if err := fn(workCtx, i); err != nil {
					errOnce.Do(func() { firstErr = err })
					cancel()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// The pool may have drained without running anything (e.g. the parent
	// context was already canceled); surface that.
	return ctx.Err()
}
