package dynmon_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/dynmon"
	"repro/internal/graphs"
	"repro/internal/rng"
	"repro/internal/rules"
)

func TestGraphSystemDefaultsToGeneralizedSMP(t *testing.T) {
	sys, err := dynmon.New(dynmon.BarabasiAlbert(200, 2, 7), dynmon.Colors(2))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Rule().Name() != "generalized-smp" {
		t.Fatalf("graph default rule = %q, want generalized-smp", sys.Rule().Name())
	}
	if sys.Graph() == nil || sys.Topology() != nil {
		t.Fatal("graph system must expose the graph and a nil topology")
	}
	if sys.N() != 200 {
		t.Fatalf("N = %d, want 200", sys.N())
	}
	// Explicit rules are respected.
	thr, err := dynmon.New(dynmon.BarabasiAlbert(100, 2, 7), dynmon.Colors(2), dynmon.WithRule("threshold"))
	if err != nil {
		t.Fatal(err)
	}
	if thr.Rule().Name() != "threshold" {
		t.Fatalf("explicit rule = %q, want threshold", thr.Rule().Name())
	}
}

func TestGraphSystemRunMatchesInternalEngine(t *testing.T) {
	g, err := dynmon.NewBarabasiAlbert(300, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := dynmon.New(dynmon.Graph(g), dynmon.Colors(2), dynmon.WithRule("threshold"))
	if err != nil {
		t.Fatal(err)
	}
	seed := sys.SeedTopByDegree(8, 1, 2)
	res, err := sys.Run(context.Background(), seed, dynmon.MaxRounds(600))
	if err != nil {
		t.Fatal(err)
	}
	want := graphs.Run(g, rules.Threshold{Target: 1, Theta: 2}, seed, 1, 600)
	if res.Rounds != want.Rounds || !res.Final.Equal(want.Final) {
		t.Fatal("public graph run diverged from the internal engine path")
	}
	if res.Final.Count(1) <= 8 {
		t.Fatalf("hub cascade should spread beyond the seed, activated %d", res.Final.Count(1))
	}
}

func TestGraphSystemConstructors(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  dynmon.Option
		n    int
	}{
		{"watts-strogatz", dynmon.WattsStrogatz(120, 4, 0.1, 3), 120},
		{"erdos-renyi", dynmon.ErdosRenyi(80, 0.1, 5), 80},
	} {
		sys, err := dynmon.New(tc.opt, dynmon.Colors(3))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if sys.N() != tc.n {
			t.Fatalf("%s: N = %d, want %d", tc.name, sys.N(), tc.n)
		}
		res, err := sys.Run(context.Background(), sys.RandomColoring(1))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Rounds == 0 {
			t.Fatalf("%s: empty run", tc.name)
		}
	}
	// Invalid parameters surface as construction errors.
	if _, err := dynmon.New(dynmon.BarabasiAlbert(2, 5, 1)); err == nil {
		t.Fatal("invalid Barabási–Albert parameters must error")
	}
	if _, err := dynmon.New(dynmon.Graph(nil)); err == nil {
		t.Fatal("nil graph must error")
	}
}

func TestGraphSystemTorusOnlyHelpers(t *testing.T) {
	sys, err := dynmon.New(dynmon.BarabasiAlbert(60, 2, 1), dynmon.Colors(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.MinimumDynamo(1); err == nil {
		t.Fatal("MinimumDynamo must refuse graph systems")
	}
	if sys.LowerBound() != 0 || sys.PredictedRounds() != 0 {
		t.Fatal("torus-only bounds should degrade to 0 on graph systems")
	}
}

func TestGraphSystemTargetSetHelpers(t *testing.T) {
	g, err := dynmon.NewBarabasiAlbert(80, 2, 33)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := dynmon.New(dynmon.Graph(g), dynmon.Colors(2), dynmon.WithRule("threshold"))
	if err != nil {
		t.Fatal(err)
	}
	hubs := sys.SeedTopByDegree(5, 1, 2)
	if hubs.Count(1) != 5 {
		t.Fatalf("hub seed size = %d, want 5", hubs.Count(1))
	}
	rnd := sys.SeedRandom(7, 1, 2, 9)
	if rnd.Count(1) != 7 {
		t.Fatalf("random seed size = %d, want 7", rnd.Count(1))
	}
	seeds := sys.GreedyTargetSet(1, 2, 6, 120, 15, 4)
	want := graphs.GreedyTargetSet(g, rules.Threshold{Target: 1, Theta: 2}, 1, 2, 6, 120, 15, rng.New(4))
	if len(seeds) != len(want) {
		t.Fatalf("greedy chose %d seeds, internal path %d", len(seeds), len(want))
	}
	for i := range seeds {
		if seeds[i] != want[i] {
			t.Fatalf("greedy choice %d: %d vs %d", i, seeds[i], want[i])
		}
	}
	// Torus systems get the degree-uniform degenerate behavior.
	torus, err := dynmon.New(dynmon.Mesh(6, 6), dynmon.Colors(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := torus.SeedTopByDegree(4, 1, 2).Count(1); got != 4 {
		t.Fatalf("torus hub seed size = %d, want 4", got)
	}
}

func TestGraphSystemSessionBatch(t *testing.T) {
	sys, err := dynmon.New(dynmon.WattsStrogatz(100, 4, 0.2, 2), dynmon.Colors(2), dynmon.WithRule("threshold"))
	if err != nil {
		t.Fatal(err)
	}
	initials := []*dynmon.Coloring{
		sys.SeedTopByDegree(4, 1, 2),
		sys.SeedRandom(6, 1, 2, 3),
		sys.SeedRandom(6, 1, 2, 4),
	}
	batch, err := sys.NewSession(3).RunBatch(context.Background(), initials, dynmon.MaxRounds(400))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i, res := range batch {
		single, err := sys.Run(ctx, initials[i], dynmon.MaxRounds(400))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds != single.Rounds || !res.Final.Equal(single.Final) {
			t.Fatalf("batch item %d diverged from the single run", i)
		}
	}
}

func TestTimeVaryingKernelRefusalSurfacesPublicly(t *testing.T) {
	sys, err := dynmon.New(dynmon.Mesh(6, 6), dynmon.Colors(5))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run(context.Background(), sys.RandomColoring(1),
		dynmon.TimeVarying(dynmon.Bernoulli{P: 0.5, Seed: 1}),
		dynmon.Kernel(dynmon.KernelFrontier))
	if !errors.Is(err, dynmon.ErrTimeVaryingSweepOnly) {
		t.Fatalf("want ErrTimeVaryingSweepOnly through the public surface, got %v", err)
	}
}

func TestTimeVaryingOnGraphSystem(t *testing.T) {
	sys, err := dynmon.New(dynmon.BarabasiAlbert(150, 2, 5), dynmon.Colors(2), dynmon.WithRule("threshold"))
	if err != nil {
		t.Fatal(err)
	}
	seed := sys.SeedTopByDegree(6, 1, 2)
	ctx := context.Background()
	full, err := sys.Run(ctx, seed, dynmon.MaxRounds(400))
	if err != nil {
		t.Fatal(err)
	}
	churny, err := sys.Run(ctx, seed,
		dynmon.TimeVarying(dynmon.Bernoulli{P: 0.7, Seed: 9}),
		dynmon.MaxRounds(400))
	if err != nil {
		t.Fatal(err)
	}
	// The irreversible cascade still spreads under churn, just not faster
	// than with every link up.
	if churny.Final.Count(1) < seed.Count(1) {
		t.Fatal("irreversible threshold must never lose activated vertices")
	}
	if churny.Final.Count(1) > full.Final.Count(1) {
		t.Fatal("link churn must not activate more than full availability")
	}
}

// TestTargetSetSpec pins the options-struct form of the greedy search: an
// explicit spec matches the deprecated positional wrapper argument for
// argument, zero fields resolve to the documented defaults, and the spec
// round-trips through JSON.
func TestTargetSetSpec(t *testing.T) {
	g, err := dynmon.NewBarabasiAlbert(80, 2, 33)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := dynmon.New(dynmon.Graph(g), dynmon.Colors(2), dynmon.WithRule("threshold"))
	if err != nil {
		t.Fatal(err)
	}

	spec := dynmon.TargetSetSpec{Target: 1, Background: 2, MaxSeed: 6, MaxRounds: 120, CandidateSample: 15, Seed: 4}
	got := sys.TargetSet(spec)
	want := sys.GreedyTargetSet(1, 2, 6, 120, 15, 4)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("TargetSet(%+v) = %v, positional form %v", spec, got, want)
	}

	// Zero values: target 1 over background 2 (the next palette color), up
	// to 8 seeds, default budget, full candidate scan, seed 0.
	defaults := sys.TargetSet(dynmon.TargetSetSpec{})
	explicit := sys.GreedyTargetSet(1, 2, 8, 0, 0, 0)
	if fmt.Sprint(defaults) != fmt.Sprint(explicit) {
		t.Fatalf("zero spec = %v, explicit defaults %v", defaults, explicit)
	}

	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back dynmon.TargetSetSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != spec {
		t.Fatalf("JSON round-trip changed the spec: %+v vs %+v", back, spec)
	}
}
