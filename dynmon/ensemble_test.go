package dynmon

import (
	"context"
	"strings"
	"testing"
)

// ensembleSpecDoc is a small, fast, fully wired example: a density sweep of
// the ε-faulty majority on a torus, the miniature of the checked-in
// specs/ensembles/ study.
const ensembleSpecDoc = `{
  "system": {
    "substrate": {"topology": {"name": "toroidal-mesh", "rows": 12, "cols": 12}},
    "colors": 2,
    "rule": "smp"
  },
  "initial": {"config": "bernoulli"},
  "run": {"max_rounds": 48, "target": 1, "noise": {"eps": 0.02}},
  "replicas": 16,
  "seed": 42,
  "sweep": {"axis": "density", "values": [0.2, 0.5, 0.8]}
}`

func parseEnsembleDoc(t *testing.T) *EnsembleSpec {
	t.Helper()
	es, err := ParseEnsembleSpec([]byte(ensembleSpecDoc))
	if err != nil {
		t.Fatal(err)
	}
	return es
}

// TestParseEnsembleSpecRejects pins the strict parser's error surface.
func TestParseEnsembleSpecRejects(t *testing.T) {
	base := func() *EnsembleSpec { return parseEnsembleDoc(t) }
	cases := map[string]func(*EnsembleSpec){
		"no replicas":            func(es *EnsembleSpec) { es.Replicas = 0 },
		"no initial":             func(es *EnsembleSpec) { es.Initial = InitialSpec{} },
		"empty sweep":            func(es *EnsembleSpec) { es.Sweep.Values = nil },
		"unknown axis":           func(es *EnsembleSpec) { es.Sweep.Axis = "voltage" },
		"density out of range":   func(es *EnsembleSpec) { es.Sweep.Values = []float64{1.5} },
		"density without family": func(es *EnsembleSpec) { es.Initial.Config = "random" },
		"p on wrong schedule":    func(es *EnsembleSpec) { es.Sweep.Axis = "p"; es.Run.Schedule = &ScheduleSpec{Mode: "sequential"} },
		"p zero":                 func(es *EnsembleSpec) { es.Sweep.Axis = "p"; es.Sweep.Values = []float64{0} },
		"fractional threshold":   func(es *EnsembleSpec) { es.Sweep.Axis = "threshold"; es.Sweep.Values = []float64{1.5} },
		"threshold out of range": func(es *EnsembleSpec) { es.Sweep.Axis = "threshold"; es.Sweep.Values = []float64{9} },
		"eps above one":          func(es *EnsembleSpec) { es.Sweep.Axis = "eps"; es.Sweep.Values = []float64{1.01} },
		"takeover fraction > 1":  func(es *EnsembleSpec) { es.TakeoverFraction = 1.5 },
	}
	for label, mutate := range cases {
		t.Run(label, func(t *testing.T) {
			es := base()
			mutate(es)
			if err := es.Validate(); err == nil {
				t.Fatalf("%s accepted", label)
			}
		})
	}
	if _, err := ParseEnsembleSpec([]byte(`{"system": {}, "voltage": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseEnsembleSpec([]byte(ensembleSpecDoc + "trailing")); err == nil {
		t.Fatal("trailing data accepted")
	}
}

// TestEnsembleDigest pins the content address: stable across parse round
// trips, sensitive to every seeding input.
func TestEnsembleDigest(t *testing.T) {
	es := parseEnsembleDoc(t)
	d1, err := es.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(d1, "sha256:") {
		t.Fatalf("digest %q", d1)
	}
	wire, err := es.JSON()
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseEnsembleSpec(wire)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := again.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digest unstable across round trip: %q vs %q", d1, d2)
	}
	mutated := parseEnsembleDoc(t)
	mutated.Seed++
	d3, err := mutated.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("digest ignores the master seed")
	}
}

// runEnsemble builds and runs an ensemble with the given pool bound.
func runEnsemble(t *testing.T, es *EnsembleSpec, workers int) *EnsembleReport {
	t.Helper()
	e, err := NewEnsemble(es, workers)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestEnsembleDeterministicAcrossWorkers is the ensemble determinism
// acceptance: the same spec must produce a byte-identical report whether
// replicas run on 1 worker or 4, for both the stochastic per-replica path
// (noisy runs) and the batch path (deterministic runs, which ride the
// bit-sliced tier on this 2-color mesh system).
func TestEnsembleDeterministicAcrossWorkers(t *testing.T) {
	noisy := parseEnsembleDoc(t)
	det := parseEnsembleDoc(t)
	det.Run.Noise = nil
	for label, es := range map[string]*EnsembleSpec{"stochastic": noisy, "deterministic": det} {
		t.Run(label, func(t *testing.T) {
			seq := runEnsemble(t, es, 1)
			par := runEnsemble(t, es, 4)
			seqWire, err := seq.JSON()
			if err != nil {
				t.Fatal(err)
			}
			parWire, err := par.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(seqWire) != string(parWire) {
				t.Fatalf("report differs across worker counts:\n--- 1 worker\n%s\n--- 4 workers\n%s", seqWire, parWire)
			}
		})
	}
}

// TestEnsembleDensitySweep checks the physics end to end: takeover
// probability of the majority rule grows along the seeding-density axis,
// intervals are well-formed, and the outcome census covers every replica.
func TestEnsembleDensitySweep(t *testing.T) {
	es := parseEnsembleDoc(t)
	rep := runEnsemble(t, es, 0)
	if rep.Axis != "density" || len(rep.Points) != 3 {
		t.Fatalf("axis %q, %d points", rep.Axis, len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.Takeovers+pt.FixedPoints+pt.Cycles+pt.Exhausted != pt.Replicas {
			t.Fatalf("outcome census %d+%d+%d+%d does not cover %d replicas",
				pt.Takeovers, pt.FixedPoints, pt.Cycles, pt.Exhausted, pt.Replicas)
		}
		if pt.CILow > pt.TakeoverProb || pt.TakeoverProb > pt.CIHigh {
			t.Fatalf("point estimate %v outside its interval [%v, %v]", pt.TakeoverProb, pt.CILow, pt.CIHigh)
		}
		if pt.Takeovers > 0 && (pt.Rounds.Min < 0 || pt.Rounds.Min > pt.Rounds.P50 || pt.Rounds.P50 > pt.Rounds.P90 || pt.Rounds.P90 > pt.Rounds.Max) {
			t.Fatalf("rounds summary out of order: %+v", pt.Rounds)
		}
	}
	lo, hi := rep.Points[0], rep.Points[2]
	if lo.TakeoverProb >= hi.TakeoverProb {
		t.Fatalf("takeover probability did not grow with density: %.3f at %.1f vs %.3f at %.1f",
			lo.TakeoverProb, lo.Value, hi.TakeoverProb, hi.Value)
	}
}

// TestEnsembleEpsAxis checks the eps axis, including the eps=0 point, which
// removes the noise section and must take the deterministic batch path.
func TestEnsembleEpsAxis(t *testing.T) {
	es := parseEnsembleDoc(t)
	es.Initial.Density = 0.5
	es.Run.Noise = nil
	es.Sweep = &SweepSpec{Axis: "eps", Values: []float64{0, 0.5}}
	rep := runEnsemble(t, es, 2)
	if len(rep.Points) != 2 {
		t.Fatalf("%d points", len(rep.Points))
	}
	// At eps=0.5 half of all rule applications misfire; sustained takeover
	// of a 144-vertex torus within the budget is (astronomically) unlikely,
	// while the noise keeps configurations moving, so replicas exhaust.
	if noisy := rep.Points[1]; noisy.Exhausted != noisy.Replicas {
		t.Fatalf("eps=0.5 point: %+v; want every replica exhausted", noisy)
	}
}

// TestEnsembleThresholdAxis checks the threshold axis rebuilds the system
// per point through the threshold-θ registry entries: θ=1 floods from any
// seed, θ=4 (unanimity on the degree-4 torus) freezes immediately.
func TestEnsembleThresholdAxis(t *testing.T) {
	es := parseEnsembleDoc(t)
	es.Run.Noise = nil
	es.Initial.Density = 0.3
	es.Replicas = 8
	es.Sweep = &SweepSpec{Axis: "threshold", Values: []float64{1, 4}}
	rep := runEnsemble(t, es, 2)
	flood, freeze := rep.Points[0], rep.Points[1]
	if flood.Takeovers != flood.Replicas {
		t.Fatalf("threshold-1 took over %d of %d replicas", flood.Takeovers, flood.Replicas)
	}
	if freeze.Takeovers != 0 {
		t.Fatalf("threshold-4 took over %d replicas", freeze.Takeovers)
	}
}

// TestEnsembleSweepless checks the degenerate single-point form.
func TestEnsembleSweepless(t *testing.T) {
	es := parseEnsembleDoc(t)
	es.Sweep = nil
	es.Initial.Density = 0.6
	rep := runEnsemble(t, es, 2)
	if rep.Axis != "" || len(rep.Points) != 1 {
		t.Fatalf("axis %q, %d points", rep.Axis, len(rep.Points))
	}
}

// TestEnsembleTakeoverFraction checks the bulk-takeover criterion: under a
// round budget too short for full monochromatic takeover, a 0.6-fraction
// criterion counts replicas the strict criterion misses — the knob noisy
// large-grid ensembles rely on.
func TestEnsembleTakeoverFraction(t *testing.T) {
	base := parseEnsembleDoc(t)
	base.Sweep = nil
	base.Run.Noise = nil
	base.Initial.Density = 0.65
	base.Run.MaxRounds = 2
	strict := runEnsemble(t, base, 2)

	bulk := parseEnsembleDoc(t)
	bulk.Sweep = nil
	bulk.Run.Noise = nil
	bulk.Initial.Density = 0.65
	bulk.Run.MaxRounds = 2
	bulk.TakeoverFraction = 0.6
	loose := runEnsemble(t, bulk, 2)

	if s, b := strict.Points[0].Takeovers, loose.Points[0].Takeovers; b <= s {
		t.Fatalf("bulk criterion counted %d takeovers, strict %d; want bulk > strict under a 2-round budget", b, s)
	}
	d1, err := base.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := bulk.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Fatal("digest ignores the takeover fraction")
	}
}

// TestEnsembleCSV pins the report's CSV surface.
func TestEnsembleCSV(t *testing.T) {
	es := parseEnsembleDoc(t)
	es.Replicas = 4
	rep := runEnsemble(t, es, 2)
	csv := rep.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 1+len(rep.Points) {
		t.Fatalf("%d CSV lines for %d points:\n%s", len(lines), len(rep.Points), csv)
	}
	if !strings.HasPrefix(lines[0], "density,replicas,takeovers,takeover_prob,ci_low,ci_high") {
		t.Fatalf("header %q", lines[0])
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != strings.Count(lines[0], ",") {
			t.Fatalf("row %q has %d fields, header %d", line, got+1, strings.Count(lines[0], ",")+1)
		}
	}
}

// FuzzParseEnsembleSpec fuzzes the strict ensemble parser: it must never
// panic, and anything it accepts must validate, re-marshal and re-parse
// with a stable digest.
func FuzzParseEnsembleSpec(f *testing.F) {
	seeds := []string{
		ensembleSpecDoc,
		`{"system":{"substrate":{"generator":{"name":"barabasi-albert","n":50,"params":{"m":2},"seed":7}},"colors":2},"initial":{"config":"bernoulli","density":0.3},"run":{},"replicas":4}`,
		`{"system":{"substrate":{}},"initial":{},"replicas":1}`,
		`{"replicas":0}`,
		`{}`,
		``,
		`[]`,
		`{"system":{"substrate":{"topology":{"name":"toroidal-mesh","rows":9,"cols":9}},"colors":2},"initial":{"config":"bernoulli"},"run":{"schedule":{"mode":"uniform-async","p":0.5}},"replicas":2,"sweep":{"axis":"p","values":[0.25,0.75]}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		es, err := ParseEnsembleSpec(data)
		if err != nil {
			return
		}
		if verr := es.Validate(); verr != nil {
			t.Fatalf("ParseEnsembleSpec accepted an invalid ensemble: %v", verr)
		}
		d1, digestErr := es.Digest()
		wire, err := es.JSON()
		if err != nil {
			t.Fatalf("accepted ensemble does not marshal: %v", err)
		}
		again, err := ParseEnsembleSpec(wire)
		if err != nil {
			t.Fatalf("accepted ensemble does not re-parse: %v", err)
		}
		if digestErr == nil {
			d2, err := again.Digest()
			if err != nil || d1 != d2 {
				t.Fatalf("digest unstable across round trip: %q vs %q (%v)", d1, d2, err)
			}
		}
	})
}
