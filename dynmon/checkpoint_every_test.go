package dynmon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
)

// cadenceSystem builds a 32x32 mesh minimum-dynamo run (31 rounds), long
// enough for several cadence firings.
func cadenceSystem(t *testing.T) (*System, *Coloring) {
	t.Helper()
	sys, err := New(Mesh(32, 32), Colors(5))
	if err != nil {
		t.Fatal(err)
	}
	cons, err := sys.MinimumDynamo(1)
	if err != nil {
		t.Fatal(err)
	}
	return sys, cons.Coloring
}

// TestCheckpointEveryCadence pins the cadence contract: checkpoints arrive
// at rounds every, 2*every, ..., never at the terminal round, and every one
// of them resumes to a Result identical to the uninterrupted run.
func TestCheckpointEveryCadence(t *testing.T) {
	sys, initial := cadenceSystem(t)
	ctx := context.Background()
	opts := []RunOption{Target(1), StopWhenMonochromatic(), DetectCycles()}

	want, err := sys.Run(ctx, initial, opts...)
	if err != nil {
		t.Fatal(err)
	}

	var cps []*Checkpoint
	got, err := sys.Run(ctx, initial, append(opts[:len(opts):len(opts)],
		CheckpointEvery(5, func(cp *Checkpoint) error { cps = append(cps, cp); return nil }))...)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("cadence-observed run diverged:\n got %+v\nwant %+v", got, want)
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoints fired")
	}
	for i, cp := range cps {
		if wantRound := 5 * (i + 1); cp.Round != wantRound {
			t.Fatalf("checkpoint %d at round %d, want %d", i, cp.Round, wantRound)
		}
		if cp.Round >= want.Rounds {
			t.Fatalf("cadence fired at terminal round %d (run has %d rounds)", cp.Round, want.Rounds)
		}
		res, err := sys.Resume(ctx, cp)
		if err != nil {
			t.Fatalf("resume from round %d: %v", cp.Round, err)
		}
		if !resultsEqualJSON(t, res, want) {
			t.Fatalf("resume from round %d diverged from uninterrupted run", cp.Round)
		}
	}
}

// TestCheckpointEveryOnResumeSteps verifies the cadence keeps firing on a
// resumed stream — the dynserve evict/re-attach path: run to round 10, evict,
// resume with cadence, and check both the resumed cadence rounds and the
// bit-identical terminal result.
func TestCheckpointEveryOnResumeSteps(t *testing.T) {
	sys, initial := cadenceSystem(t)
	ctx := context.Background()
	opts := []RunOption{Target(1), StopWhenMonochromatic(), DetectCycles()}

	want, err := sys.Run(ctx, initial, opts...)
	if err != nil {
		t.Fatal(err)
	}

	var evictCP *Checkpoint
	for st, err := range sys.Steps(ctx, initial, opts...) {
		if err != nil {
			t.Fatal(err)
		}
		if st.Round() == 10 {
			if evictCP, err = st.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			break
		}
	}

	var rounds []int
	var final *Result
	for st, err := range sys.ResumeSteps(ctx, evictCP,
		CheckpointEvery(4, func(cp *Checkpoint) error { rounds = append(rounds, cp.Round); return nil })) {
		if err != nil {
			t.Fatal(err)
		}
		if st.Done() {
			final = st.Result()
		}
	}
	if final == nil {
		t.Fatal("resumed stream never finished")
	}
	if !resultsEqualJSON(t, final, want) {
		t.Fatal("resumed stream's terminal result diverged from uninterrupted run")
	}
	if len(rounds) == 0 {
		t.Fatal("cadence never fired on the resumed stream")
	}
	// Resumed at round 11, cadence 4: first firing at the first multiple of
	// 4 past the resume point.
	if rounds[0] != 12 {
		t.Fatalf("first resumed cadence at round %d, want 12", rounds[0])
	}
}

// TestCheckpointEverySinkErrorStopsRun pins the durability contract: a sink
// that cannot persist stops the run with its error.
func TestCheckpointEverySinkErrorStopsRun(t *testing.T) {
	sys, initial := cadenceSystem(t)
	sinkErr := errors.New("disk full")
	_, err := sys.Run(context.Background(), initial, Target(1), StopWhenMonochromatic(),
		CheckpointEvery(3, func(*Checkpoint) error { return sinkErr }))
	if !errors.Is(err, sinkErr) {
		t.Fatalf("run error = %v, want wrapped %v", err, sinkErr)
	}
}

// resultsEqualJSON compares two results by their wire form, the same
// equality the server's determinism contract speaks.
func resultsEqualJSON(t *testing.T, a, b *Result) bool {
	t.Helper()
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(aj) == string(bj)
}
