package dynmon

import (
	"fmt"

	"repro/internal/graphs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/tvg"
)

// GeneralGraph is a simple undirected graph substrate.  Systems built over
// one run on exactly the same tiered engine as the tori — dirty frontier by
// default, striped parallel sweeps on request, pooled zero-allocation
// buffers — with only the torus-specific bitplane tier out of reach.
type GeneralGraph = graphs.Graph

// NewGraph returns an empty graph with n vertices; add edges with AddEdge
// and hand it to a System through the Graph option.
func NewGraph(n int) *GeneralGraph { return graphs.NewGraph(n) }

// NewBarabasiAlbert generates a scale-free graph with n vertices by
// preferential attachment (each new vertex attaches to m existing ones),
// deterministic in the seed.
func NewBarabasiAlbert(n, m int, seed uint64) (*GeneralGraph, error) {
	return graphs.NewBarabasiAlbert(n, m, rng.New(seed))
}

// NewWattsStrogatz generates a small-world graph: a ring lattice with k
// neighbors per vertex (k even), each edge rewired with probability beta,
// deterministic in the seed.
func NewWattsStrogatz(n, k int, beta float64, seed uint64) (*GeneralGraph, error) {
	return graphs.NewWattsStrogatz(n, k, beta, rng.New(seed))
}

// NewErdosRenyi generates a G(n, p) random graph, deterministic in the seed.
func NewErdosRenyi(n int, p float64, seed uint64) (*GeneralGraph, error) {
	return graphs.NewErdosRenyi(n, p, rng.New(seed))
}

// Graph makes the system run over the given general graph instead of a
// torus.  The graph's structure is snapshotted when the System is built;
// later mutations do not affect it.  When no rule is chosen explicitly the
// system uses "generalized-smp", the degree-aware form of the paper's
// protocol (bit-identical to "smp" on 4-regular substrates).  Such a system
// serializes as an explicit edge list (see System.Spec); the generator
// options below keep the compact generator-by-name form instead.
func Graph(g *GeneralGraph) Option {
	return func(c *Config) error {
		if g == nil {
			return fmt.Errorf("dynmon: nil graph")
		}
		c.Graph = g
		c.Generator, c.Topology = nil, nil
		return nil
	}
}

// WithGenerator selects a registered graph generator by name with explicit
// parameters and seed — the spec-serializable substrate form the
// BarabasiAlbert/WattsStrogatz/ErdosRenyi helpers reduce to.
func WithGenerator(name string, n int, params map[string]float64, seed uint64) Option {
	return func(c *Config) error {
		if name == "" {
			return fmt.Errorf("dynmon: empty generator name")
		}
		c.Generator = &GeneratorSpec{Name: name, N: n, Params: params, Seed: seed}
		c.Graph, c.Topology = nil, nil
		return nil
	}
}

// BarabasiAlbert selects a freshly generated scale-free Barabási–Albert
// substrate (n vertices, m attachments per new vertex, deterministic in
// seed).  Use Graph with NewBarabasiAlbert to keep a handle on the graph.
func BarabasiAlbert(n, m int, seed uint64) Option {
	return WithGenerator("barabasi-albert", n, map[string]float64{"m": float64(m)}, seed)
}

// WattsStrogatz selects a freshly generated small-world Watts–Strogatz
// substrate (ring lattice of degree k, rewiring probability beta,
// deterministic in seed).
func WattsStrogatz(n, k int, beta float64, seed uint64) Option {
	return WithGenerator("watts-strogatz", n, map[string]float64{"k": float64(k), "beta": beta}, seed)
}

// ErdosRenyi selects a freshly generated G(n, p) random-graph substrate,
// deterministic in seed.
func ErdosRenyi(n int, p float64, seed uint64) Option {
	return WithGenerator("erdos-renyi", n, map[string]float64{"p": p}, seed)
}

// Availability decides which links are usable in a given round; it is the
// contract behind the TimeVarying run option.  Implementations must be
// deterministic pure functions of (round, u, v) — the engine may evaluate
// them from several goroutines and always passes u < v.
type Availability = sim.Availability

// Link-availability models for TimeVarying, re-exported from the internal
// tvg package: AlwaysOn is the static network, Bernoulli independent link
// churn, NodeFaults whole-vertex churn layered over a link model, and
// Periodic synchronized duty-cycling.
type (
	AlwaysOn   = tvg.AlwaysOn
	Bernoulli  = tvg.Bernoulli
	NodeFaults = tvg.NodeFaults
	Periodic   = tvg.Periodic
)

// TimeVarying masks link availability per round: each round every vertex
// reads only the neighbors whose link the model reports available, and
// applies the rule to that reduced multiset when at least two neighbors are
// reachable.  This is the intermittent-network extension from the paper's
// conclusions, and it works over every substrate, torus or graph.
//
// Time-varying runs always use full-sweep semantics: link churn can change
// a vertex's input without any color changing, which makes the dirty
// frontier and bitplane tiers unsound, so forcing those kernels returns an
// error (wrapping ErrTimeVaryingSweepOnly).  A zero-change round stops the
// run only when the model declares itself static; combine with
// StopWhenMonochromatic and an explicit MaxRounds to bound intermittent
// runs.
//
// The built-in models (AlwaysOn, Bernoulli, NodeFaults, Periodic) also have
// a declarative form — RunSpec.TimeVarying, an AvailabilitySpec — which is
// how spec files and checkpoints carry them; this option accepts any
// Availability implementation and wins over the spec field when both are
// set.
func TimeVarying(a Availability) RunOption {
	return func(rs *RunSpec) { rs.availability = a }
}

// ErrTimeVaryingSweepOnly is the error (wrapped) returned by time-varying
// runs that force the frontier or bitplane kernel.
var ErrTimeVaryingSweepOnly = sim.ErrTimeVaryingSweepOnly

// SeedTopByDegree returns a coloring in which the size highest-degree
// vertices carry the target color and every other vertex carries
// background — the classic hub heuristic for target set selection.  On a
// torus system every vertex has degree 4, so the "hubs" are simply the
// first vertices in index order.
func (s *System) SeedTopByDegree(size int, target, background Color) *Coloring {
	if s.graph != nil {
		return graphs.SeedTopByDegree(s.graph, size, target, background)
	}
	c := s.NewColoring(background)
	for v := 0; v < size && v < s.N(); v++ {
		c.Set(v, target)
	}
	return c
}

// SeedRandom returns a coloring in which size uniformly chosen vertices
// carry the target color, deterministic in the seed.
func (s *System) SeedRandom(size int, target, background Color, seed uint64) *Coloring {
	src := rng.New(seed)
	c := s.NewColoring(background)
	perm := src.Perm(s.N())
	if size > len(perm) {
		size = len(perm)
	}
	for _, v := range perm[:size] {
		c.Set(v, target)
	}
	return c
}

// TargetSetSpec configures TargetSet, the simulation-driven greedy seed
// search.  The zero value is a sensible search: target color 1 spreading
// over the palette's next color, up to 8 seeds, the substrate's default
// round budget, every candidate scored each step, RNG seed 0.  It is
// JSON-serializable so experiment files and services can carry it.
type TargetSetSpec struct {
	// Target is the color the seed set should spread (default 1).
	Target Color `json:"target,omitempty"`
	// Background is the color every non-seed vertex starts with (default:
	// the first palette color other than Target).
	Background Color `json:"background,omitempty"`
	// MaxSeed caps the number of chosen seed vertices (default 8).
	MaxSeed int `json:"max_seed,omitempty"`
	// MaxRounds bounds each candidate evaluation run (<= 0 selects the
	// substrate's default budget).
	MaxRounds int `json:"max_rounds,omitempty"`
	// CandidateSample > 0 restricts each greedy step to a deterministic
	// random sample of that many candidates; 0 scores every candidate.
	CandidateSample int `json:"candidate_sample,omitempty"`
	// Seed drives the candidate-sampling RNG.
	Seed uint64 `json:"seed,omitempty"`
}

// TargetSet runs the simulation-driven greedy baseline from the target set
// selection literature on the system's engine: it repeatedly adds the
// vertex whose activation most increases the final number of target-colored
// vertices, until the whole substrate activates or MaxSeed vertices are
// chosen, and returns the chosen vertices.  Candidates are scored exactly —
// 64 at a time on the bit-sliced ensemble tier when the system can slice
// (two colors, degree-4 substrate, carry-save rule kernel), one pooled
// engine run each otherwise — so the intended use without a
// CandidateSample is substrates of a few hundred vertices.  Zero spec
// fields take the defaults documented on TargetSetSpec.
func (s *System) TargetSet(spec TargetSetSpec) []int {
	if spec.Target == 0 {
		spec.Target = 1
	}
	if spec.Background == 0 {
		spec.Background = spec.Target
		for _, c := range s.Palette().Others(spec.Target) {
			spec.Background = c
			break
		}
	}
	if spec.MaxSeed == 0 {
		spec.MaxSeed = 8
	}
	return graphs.GreedyTargetSetEngine(s.engine, spec.Target, spec.Background,
		spec.MaxSeed, spec.MaxRounds, spec.CandidateSample, rng.New(spec.Seed))
}

// GreedyTargetSet is the positional-argument form of TargetSet.
//
// Deprecated: use TargetSet with a TargetSetSpec; this wrapper remains for
// source compatibility and applies no defaulting to its arguments.
func (s *System) GreedyTargetSet(target, background Color, maxSeed, maxRounds, candidateSample int, seed uint64) []int {
	return graphs.GreedyTargetSetEngine(s.engine, target, background, maxSeed, maxRounds, candidateSample, rng.New(seed))
}
