package dynmon

import (
	"repro/internal/grid"
	"repro/internal/rules"
)

// RegisterRule makes a rule resolvable through WithRule under the given
// name.  The factory must return a fresh, stateless (or concurrency-safe)
// Rule on every call.  Registering a duplicate name panics; registration is
// meant to happen from init functions or program start-up.
func RegisterRule(name string, factory func() Rule) {
	rules.Register(name, rules.Factory(factory))
}

// RuleByName resolves a registered rule, with the default parameters
// documented on each built-in constructor.
func RuleByName(name string) (Rule, error) { return rules.ByName(name) }

// RuleNames returns every name WithRule accepts, sorted, including aliases
// ("pb", "pc") and externally registered rules.
func RuleNames() []string { return rules.RegisteredNames() }

// RegisterTopology makes a topology resolvable through WithTopology under
// the given name.  The factory receives the requested dimensions and may
// reject them.  Registering a duplicate name panics.
func RegisterTopology(name string, factory func(rows, cols int) (Topology, error)) {
	grid.Register(name, grid.Factory(factory))
}

// TopologyByName resolves a registered topology with the given dimensions.
func TopologyByName(name string, rows, cols int) (Topology, error) {
	return grid.ByName(name, rows, cols)
}

// TopologyNames returns every name WithTopology accepts, sorted, including
// aliases and externally registered topologies.
func TopologyNames() []string { return grid.RegisteredNames() }
