package dynmon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"iter"

	"repro/internal/sim"
)

// Step is one round of a streaming run, yielded by System.Steps.  The value
// and its Config are live engine state, valid only until the next iteration
// of the stream; Checkpoint takes a durable, serializable snapshot.
type Step struct {
	sim *sim.Step
	sys *System
	rs  *RunSpec
}

// Round returns the 1-based round this step completed.
func (st *Step) Round() int { return st.sim.Round }

// Changed returns the number of vertices that changed color this round.
func (st *Step) Changed() int { return st.sim.Changed }

// Done reports that the run stopped on its own this round; this is the
// stream's final step and Result carries the completed result.
func (st *Step) Done() bool { return st.sim.Done }

// Result returns the completed Result on the Done step (and the partial
// result on a step yielded with a cancellation error), nil otherwise.
func (st *Step) Result() *Result { return st.sim.Result }

// Config returns the configuration at the end of this step's round — a live
// engine buffer: valid until the next step, and it must not be mutated.
func (st *Step) Config() *Coloring { return st.sim.Config() }

// Checkpoint snapshots the run at this step as a serializable Checkpoint:
// the system spec (when the system has one), the run spec, the round, the
// configuration and the stop-detector state.  Resuming it with
// System.Resume — in this process or any other — continues bit-identically
// to a run that was never interrupted.  It returns an error when the run's
// options cannot be serialized (a custom Availability implementation with
// no spec form); observers are process-local attachments and are dropped,
// not errors.
func (st *Step) Checkpoint() (*Checkpoint, error) {
	return checkpointOf(st.sys, st.rs, st.sim.Checkpoint())
}

// Steps returns the run as a pull-based sequence of per-round steps — the
// streaming form of Run, bit-identical to it: both consume the engine's one
// round loop, and Run is itself a drain of this stream.  The iterator
// yields one Step after every synchronous round; the final step has Done
// set and carries the completed Result.  Breaking out of the loop early is
// the streaming equivalent of cancellation — the run stops at that round
// boundary and its pooled buffers return to the engine.  When ctx is
// canceled the stream yields a final partial-result step together with
// ctx.Err().
//
// Observers attached through WithObserver are honored exactly as in Run
// (they are one adapter over this stream).  The automatic kernel selection
// is Run's too, including the bitplane tier: its per-round scalar view is
// unpacked lazily, so consumers that only look at Round/Changed keep the
// word-parallel speed.
func (s *System) Steps(ctx context.Context, initial *Coloring, opts ...RunOption) iter.Seq2[*Step, error] {
	rs := runSpecOf(opts)
	return s.stepsSpec(ctx, initial, rs)
}

// stepsSpec is Steps over an already-folded RunSpec: engine-option lowering,
// the Step wrapper and the CheckpointEvery cadence, shared by Steps,
// ResumeSteps and the cadence-honoring path of Run.
func (s *System) stepsSpec(ctx context.Context, initial *Coloring, rs RunSpec) iter.Seq2[*Step, error] {
	return func(yield func(*Step, error) bool) {
		opt, err := rs.engineOptions(s.palette.K)
		if err != nil {
			yield(nil, err)
			return
		}
		s.wrapStream(s.engine.Stream(ctx, initial, opt), &rs, yield)
	}
}

// wrapStream adapts an engine step stream to the public Step type, firing
// the CheckpointEvery cadence on the way through.  The cadence snapshot is
// taken at the round boundary, before the step is yielded, so a consumer
// that breaks out of the loop still leaves the sink holding the newest
// checkpoint.
func (s *System) wrapStream(inner iter.Seq2[*sim.Step, error], rs *RunSpec, yield func(*Step, error) bool) {
	step := &Step{sys: s, rs: rs}
	for in, err := range inner {
		if in == nil {
			if !yield(nil, err) {
				return
			}
			continue
		}
		step.sim = in
		if err == nil && rs.cpEvery > 0 && !in.Done && in.Round > 0 && in.Round%rs.cpEvery == 0 {
			cp, cperr := step.Checkpoint()
			if cperr == nil {
				cperr = rs.cpSink(cp)
			}
			if cperr != nil {
				yield(nil, fmt.Errorf("dynmon: checkpoint cadence at round %d: %w", in.Round, cperr))
				return
			}
		}
		if !yield(step, err) {
			return
		}
	}
}

// Checkpoint is the serializable state of an interrupted run: everything
// needed to continue it — in this process or another — bit-identically to a
// run that was never interrupted.  Produce one with Step.Checkpoint (from a
// stream) or System.CheckpointFromResult (from a canceled run's partial
// Result); consume it with System.Resume.
type Checkpoint struct {
	// System optionally pins the system the checkpoint belongs to; Resume
	// rejects a checkpoint whose system spec differs from its own.  It is
	// omitted for systems with no spec form.
	System *Spec `json:"system,omitempty"`
	// Run is the run description in force; Resume re-applies it, with any
	// extra options layered on top.
	Run *RunSpec `json:"run,omitempty"`
	// Round is the last completed round.
	Round int `json:"round"`
	// Config is the configuration at the end of Round.
	Config *Coloring `json:"config"`
	// Prev is the configuration one round earlier — the period-2
	// stop-detector's state.  Without it a resumed run is still exact
	// except that a cycle spanning the checkpoint boundary is detected two
	// rounds later.
	Prev *Coloring `json:"prev,omitempty"`
	// ChangesPerRound, FirstReached and MonotoneTarget carry the per-run
	// trace accumulated up to Round, so the resumed Result equals an
	// uninterrupted one.
	ChangesPerRound []int `json:"changes_per_round"`
	FirstReached    []int `json:"first_reached,omitempty"`
	MonotoneTarget  bool  `json:"monotone_target,omitempty"`
}

// checkpointOf assembles the public checkpoint from the engine snapshot.
func checkpointOf(sys *System, rs *RunSpec, snap *sim.Resume) (*Checkpoint, error) {
	run := rs.wireClone()
	if rs.availability != nil {
		spec, ok := availabilitySpecOf(rs.availability)
		if !ok {
			return nil, fmt.Errorf("dynmon: the run's availability model (%T) has no spec form and cannot be checkpointed; use RunSpec.TimeVarying or a built-in model", rs.availability)
		}
		run.TimeVarying = spec
	}
	cp := &Checkpoint{
		Run:             &run,
		Round:           snap.Round,
		Config:          snap.Config,
		Prev:            snap.Prev,
		ChangesPerRound: snap.ChangesPerRound,
		FirstReached:    snap.FirstReached,
		MonotoneTarget:  snap.MonotoneTarget,
	}
	if cp.ChangesPerRound == nil {
		cp.ChangesPerRound = []int{}
	}
	// The system spec is a convenience pin, not a requirement: systems
	// without a wire form still checkpoint, they just cannot be validated
	// against on resume.
	if spec, err := sys.Spec(); err == nil {
		cp.System = spec
	}
	return cp, nil
}

// CheckpointFromResult emits a checkpoint from a Result — the batch-side
// twin of Step.Checkpoint, intended for the partial result of a
// context-canceled run.  opts must be the options the run was started with
// (they become the checkpoint's run spec).  Checkpointing a completed
// result is allowed and resumes as a no-op unless the options changed.
func (s *System) CheckpointFromResult(res *Result, opts ...RunOption) (*Checkpoint, error) {
	snap, ok := res.ResumeState()
	if !ok {
		return nil, fmt.Errorf("dynmon: result carries no resumable state")
	}
	rs := runSpecOf(opts)
	return checkpointOf(s, &rs, snap)
}

// JSON renders the checkpoint as indented JSON with a trailing newline.
func (cp *Checkpoint) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseCheckpoint decodes a checkpoint, strictly: unknown fields, malformed
// values and structural inconsistencies are errors, never panics.
func ParseCheckpoint(data []byte) (*Checkpoint, error) {
	var cp Checkpoint
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cp); err != nil {
		return nil, fmt.Errorf("dynmon: parsing checkpoint: %w", err)
	}
	if err := ensureEOF(dec); err != nil {
		return nil, err
	}
	if err := cp.validate(); err != nil {
		return nil, err
	}
	return &cp, nil
}

// validate checks the checkpoint's internal consistency (system fit is
// checked by Resume, which knows the system).
func (cp *Checkpoint) validate() error {
	if cp.Config == nil {
		return fmt.Errorf("dynmon: checkpoint without a configuration")
	}
	if cp.Round < 0 {
		return fmt.Errorf("dynmon: checkpoint with negative round %d", cp.Round)
	}
	if cp.Round != len(cp.ChangesPerRound) {
		return fmt.Errorf("dynmon: checkpoint round %d does not match its %d-round change trace", cp.Round, len(cp.ChangesPerRound))
	}
	if cp.Prev != nil && cp.Prev.Dims() != cp.Config.Dims() {
		return fmt.Errorf("dynmon: checkpoint prev dimensions %v differ from config %v", cp.Prev.Dims(), cp.Config.Dims())
	}
	if cp.FirstReached != nil && len(cp.FirstReached) != cp.Config.N() {
		return fmt.Errorf("dynmon: checkpoint first-reached trace has %d entries, want %d", len(cp.FirstReached), cp.Config.N())
	}
	if cp.System != nil {
		if err := cp.System.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Resume continues a checkpointed run on this system, bit-identically to a
// run that was never interrupted: rounds restart at cp.Round+1 under the
// checkpoint's run spec, with any extra options layered on top.  It is the
// primitive that lets long runs migrate across processes — checkpoint,
// ship the JSON, resume elsewhere.
//
// The checkpoint must fit the system (matching dimensions; matching system
// spec when the checkpoint pins one).  Resuming never re-enters the
// bitplane tier — a checkpoint carries scalar state — which changes nothing
// about the result, by the engine's tier contract.
func (s *System) Resume(ctx context.Context, cp *Checkpoint, opts ...RunOption) (*Result, error) {
	rs, snap, err := s.resumeSpec(cp, opts)
	if err != nil {
		return nil, err
	}
	opt, err := rs.engineOptions(s.palette.K)
	if err != nil {
		return nil, err
	}
	if rs.cpEvery > 0 {
		return drainSteps(func(yield func(*Step, error) bool) {
			s.wrapStream(s.engine.StreamFrom(ctx, snap, opt), &rs, yield)
		})
	}
	return s.engine.ResumeContext(ctx, snap, opt)
}

// ResumeSteps is Resume in streaming form — the Steps iterator continuing a
// checkpointed run instead of starting one: rounds resume at cp.Round+1
// under the checkpoint's run spec (plus any extra options), one Step per
// round, terminal step carrying the completed Result, bit-identical to a run
// that was never interrupted.  It is the re-attach primitive of the dynserve
// server: an evicted job resumes from its checkpoint and the reconnected
// client streams the remaining rounds.
func (s *System) ResumeSteps(ctx context.Context, cp *Checkpoint, opts ...RunOption) iter.Seq2[*Step, error] {
	return func(yield func(*Step, error) bool) {
		rs, snap, err := s.resumeSpec(cp, opts)
		if err != nil {
			yield(nil, err)
			return
		}
		opt, err := rs.engineOptions(s.palette.K)
		if err != nil {
			yield(nil, err)
			return
		}
		s.wrapStream(s.engine.StreamFrom(ctx, snap, opt), &rs, yield)
	}
}

// resumeSpec validates a checkpoint against this system and lowers it to the
// effective RunSpec and engine-level resume state, shared by Resume and
// ResumeSteps.
func (s *System) resumeSpec(cp *Checkpoint, opts []RunOption) (RunSpec, *sim.Resume, error) {
	var rs RunSpec
	if cp == nil {
		return rs, nil, fmt.Errorf("dynmon: nil checkpoint")
	}
	if err := cp.validate(); err != nil {
		return rs, nil, err
	}
	if cp.Config.Dims() != s.Dims() {
		return rs, nil, fmt.Errorf("dynmon: checkpoint is %v, system is %v", cp.Config.Dims(), s.Dims())
	}
	if cp.System != nil {
		own, err := s.Spec()
		if err != nil {
			return rs, nil, fmt.Errorf("dynmon: checkpoint pins a system spec but this system has none: %w", err)
		}
		if !specEqual(own, cp.System) {
			return rs, nil, fmt.Errorf("dynmon: checkpoint belongs to a different system (spec mismatch)")
		}
	}
	if cp.Run != nil {
		rs = *cp.Run
	}
	for _, opt := range opts {
		opt(&rs)
	}
	snap := &sim.Resume{
		Round:           cp.Round,
		Config:          cp.Config,
		Prev:            cp.Prev,
		ChangesPerRound: cp.ChangesPerRound,
		FirstReached:    cp.FirstReached,
		MonotoneTarget:  cp.MonotoneTarget,
	}
	return rs, snap, nil
}

// drainSteps runs a public step stream to completion and returns its final
// (or, under cancellation, partial) Result — the public-surface twin of the
// engine's stream drain, used by the cadence-honoring paths of Run and
// Resume.
func drainSteps(seq iter.Seq2[*Step, error]) (*Result, error) {
	var res *Result
	for st, err := range seq {
		if st != nil && st.Result() != nil {
			res = st.Result()
		}
		if err != nil {
			return res, err
		}
		if st != nil && st.Done() {
			return res, nil
		}
	}
	return res, nil
}

// specEqual compares two specs by canonical digest, so alias forms of the
// same system compare equal; specs that cannot canonicalize (unknown names)
// fall back to raw JSON comparison.
func specEqual(a, b *Spec) bool {
	ad, errA := a.Digest()
	bd, errB := b.Digest()
	if errA == nil && errB == nil {
		return ad == bd
	}
	aj, jerrA := json.Marshal(a)
	bj, jerrB := json.Marshal(b)
	return jerrA == nil && jerrB == nil && bytes.Equal(aj, bj)
}
