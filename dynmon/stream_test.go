package dynmon

import (
	"context"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/tvg"
)

// randomInitial builds a reproducible k-color random coloring on sys.
func randomInitial(sys *System, seed uint64, k int) *Coloring {
	src := rng.New(seed)
	c := sys.NewColoring(None)
	for v := 0; v < sys.N(); v++ {
		c.Set(v, Color(src.Intn(k)+1))
	}
	return c
}

// streamResultsEqual compares the Result fields both paths must agree on.
func streamResultsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Rounds != b.Rounds {
		t.Fatalf("%s: rounds %d vs %d", label, a.Rounds, b.Rounds)
	}
	if a.FixedPoint != b.FixedPoint || a.Cycle != b.Cycle {
		t.Fatalf("%s: fixedpoint/cycle (%v,%v) vs (%v,%v)", label, a.FixedPoint, a.Cycle, b.FixedPoint, b.Cycle)
	}
	if a.Monochromatic != b.Monochromatic || a.FinalColor != b.FinalColor {
		t.Fatalf("%s: monochromatic (%v,%v) vs (%v,%v)", label, a.Monochromatic, a.FinalColor, b.Monochromatic, b.FinalColor)
	}
	if a.MonotoneTarget != b.MonotoneTarget {
		t.Fatalf("%s: monotone %v vs %v", label, a.MonotoneTarget, b.MonotoneTarget)
	}
	if len(a.ChangesPerRound) != len(b.ChangesPerRound) {
		t.Fatalf("%s: %d vs %d change records", label, len(a.ChangesPerRound), len(b.ChangesPerRound))
	}
	for i := range a.ChangesPerRound {
		if a.ChangesPerRound[i] != b.ChangesPerRound[i] {
			t.Fatalf("%s: round %d changed %d vs %d", label, i+1, a.ChangesPerRound[i], b.ChangesPerRound[i])
		}
	}
	if !a.Final.Equal(b.Final) {
		t.Fatalf("%s: final configurations differ", label)
	}
	if (a.FirstReached == nil) != (b.FirstReached == nil) {
		t.Fatalf("%s: FirstReached nil-ness differs", label)
	}
	for i := range a.FirstReached {
		if a.FirstReached[i] != b.FirstReached[i] {
			t.Fatalf("%s: FirstReached[%d] = %d vs %d", label, i, a.FirstReached[i], b.FirstReached[i])
		}
	}
}

// forEachRuleTopologyK drives the acceptance matrix: every registered rule
// × every registered topology × k ∈ {2, 3, 4}.
func forEachRuleTopologyK(t *testing.T, fn func(t *testing.T, label string, sys *System, initial *Coloring)) {
	t.Helper()
	seen := map[string]bool{}
	for _, ruleName := range RuleNames() {
		for _, topoName := range TopologyNames() {
			sys, err := New(WithTopology(topoName, 6, 7), Colors(4), WithRule(ruleName))
			if err != nil {
				t.Fatal(err)
			}
			// Aliases resolve to the same system; run each combination once.
			key := sys.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			for k := 2; k <= 4; k++ {
				label := ruleName + "/" + topoName + "/k=" + string(rune('0'+k))
				fn(t, label, sys, randomInitial(sys, uint64(k)*17, k))
			}
		}
	}
}

// TestStepsMatchesRunEveryRuleTopologyK is the acceptance differential for
// the streaming tentpole: a fully drained Steps stream must be bit-identical
// to System.Run on every registered rule × topology × k ∈ {2,3,4}.
func TestStepsMatchesRunEveryRuleTopologyK(t *testing.T) {
	opts := []RunOption{Target(1), DetectCycles(), MaxRounds(40)}
	forEachRuleTopologyK(t, func(t *testing.T, label string, sys *System, initial *Coloring) {
		run, err := sys.Run(context.Background(), initial, opts...)
		if err != nil {
			t.Fatalf("%s: run: %v", label, err)
		}
		var streamed *Result
		rounds := 0
		for st, err := range sys.Steps(context.Background(), initial, opts...) {
			if err != nil {
				t.Fatalf("%s: stream: %v", label, err)
			}
			rounds++
			if st.Round() != rounds {
				t.Fatalf("%s: step %d reported round %d", label, rounds, st.Round())
			}
			if st.Done() {
				streamed = st.Result()
			}
		}
		if streamed == nil {
			t.Fatalf("%s: stream never finished", label)
		}
		if rounds != run.Rounds {
			t.Fatalf("%s: streamed %d rounds, run executed %d", label, rounds, run.Rounds)
		}
		streamResultsEqual(t, label, streamed, run)
	})
}

// TestResumeMatchesRunEveryRuleTopologyK is the acceptance differential for
// checkpoint/resume: a run interrupted at a mid-run round, checkpointed
// through the serializable wire form (JSON round trip included) and resumed,
// must be bit-identical to the uninterrupted run on every registered rule ×
// topology × k ∈ {2,3,4}.
func TestResumeMatchesRunEveryRuleTopologyK(t *testing.T) {
	opts := []RunOption{Target(1), DetectCycles(), MaxRounds(40)}
	forEachRuleTopologyK(t, func(t *testing.T, label string, sys *System, initial *Coloring) {
		full, err := sys.Run(context.Background(), initial, opts...)
		if err != nil {
			t.Fatalf("%s: run: %v", label, err)
		}
		if full.Rounds < 2 {
			return // nothing mid-run to checkpoint
		}
		at := full.Rounds / 2
		var cp *Checkpoint
		for st, err := range sys.Steps(context.Background(), initial, opts...) {
			if err != nil {
				t.Fatalf("%s: stream: %v", label, err)
			}
			if st.Round() == at {
				cp, err = st.Checkpoint()
				if err != nil {
					t.Fatalf("%s: checkpoint: %v", label, err)
				}
				break
			}
		}
		wire, err := cp.JSON()
		if err != nil {
			t.Fatalf("%s: marshal: %v", label, err)
		}
		parsed, err := ParseCheckpoint(wire)
		if err != nil {
			t.Fatalf("%s: parse: %v", label, err)
		}
		resumed, err := sys.Resume(context.Background(), parsed)
		if err != nil {
			t.Fatalf("%s: resume: %v", label, err)
		}
		streamResultsEqual(t, label+"/resume-at-"+string(rune('0'+at%10)), resumed, full)
	})
}

// TestCheckpointMigratesAcrossSystems pins the migration story: a
// checkpoint's embedded system spec rebuilds the system in a "different
// process" (a fresh System value) and the resumed run matches.
func TestCheckpointMigratesAcrossSystems(t *testing.T) {
	sys, err := New(Mesh(12, 12), Colors(5))
	if err != nil {
		t.Fatal(err)
	}
	cons, err := sys.MinimumDynamo(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := []RunOption{Target(1), StopWhenMonochromatic(), DetectCycles()}
	full, err := sys.Run(context.Background(), cons.Coloring, opts...)
	if err != nil {
		t.Fatal(err)
	}

	var cp *Checkpoint
	for st, err := range sys.Steps(context.Background(), cons.Coloring, opts...) {
		if err != nil {
			t.Fatal(err)
		}
		if st.Round() == 4 {
			cp, err = st.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if cp.System == nil {
		t.Fatal("checkpoint carries no system spec")
	}
	wire, err := cp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseCheckpoint(wire)
	if err != nil {
		t.Fatal(err)
	}
	elsewhere, err := parsed.System.New()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := elsewhere.Resume(context.Background(), parsed)
	if err != nil {
		t.Fatal(err)
	}
	streamResultsEqual(t, "migrated", resumed, full)

	// A mismatched system refuses the checkpoint.
	other, err := New(Cordalis(12, 12), Colors(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Resume(context.Background(), parsed); err == nil {
		t.Fatal("checkpoint accepted by a different system")
	}
}

// TestStepsObserverAdapter pins that observers attached to a streamed run
// fire exactly as they do on Run — the Observer plumbing is one adapter
// over the stream.
func TestStepsObserverAdapter(t *testing.T) {
	sys, err := New(Mesh(9, 9), Colors(5))
	if err != nil {
		t.Fatal(err)
	}
	cons, err := sys.MinimumDynamo(1)
	if err != nil {
		t.Fatal(err)
	}

	runStats := NewStatsCollector(1)
	res, err := sys.Run(context.Background(), cons.Coloring,
		Target(1), StopWhenMonochromatic(), WithObserver(runStats))
	if err != nil {
		t.Fatal(err)
	}

	streamStats := NewStatsCollector(1)
	for _, err := range sys.Steps(context.Background(), cons.Coloring,
		Target(1), StopWhenMonochromatic(), WithObserver(streamStats)) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(streamStats.TargetCounts) != len(runStats.TargetCounts) {
		t.Fatalf("observer saw %d rounds via stream, %d via run", len(streamStats.TargetCounts), len(runStats.TargetCounts))
	}
	for i := range runStats.TargetCounts {
		if streamStats.TargetCounts[i] != runStats.TargetCounts[i] {
			t.Fatalf("round %d: stream observer %d vs run observer %d", i+1, streamStats.TargetCounts[i], runStats.TargetCounts[i])
		}
	}
	if !streamStats.Takeover() || res.Rounds != len(runStats.TargetCounts) {
		t.Fatal("observer adapter missed rounds")
	}
}

// TestTimeVaryingCheckpoint pins availability handling in checkpoints: the
// built-in models serialize to their spec form; a custom implementation is
// an explicit error, not a silently wrong resume.
func TestTimeVaryingCheckpoint(t *testing.T) {
	sys, err := New(Mesh(8, 8), Colors(3))
	if err != nil {
		t.Fatal(err)
	}
	initial := randomInitial(sys, 5, 3)
	opts := []RunOption{MaxRounds(30), TimeVarying(Bernoulli{P: 0.8, Seed: 9})}

	full, err := sys.Run(context.Background(), initial, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var cp *Checkpoint
	for st, err := range sys.Steps(context.Background(), initial, opts...) {
		if err != nil {
			t.Fatal(err)
		}
		if st.Round() == 7 {
			cp, err = st.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if cp.Run == nil || cp.Run.TimeVarying == nil || cp.Run.TimeVarying.Model != "bernoulli" {
		t.Fatalf("Bernoulli model did not serialize: %+v", cp.Run)
	}
	wire, err := cp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseCheckpoint(wire)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := sys.Resume(context.Background(), parsed)
	if err != nil {
		t.Fatal(err)
	}
	streamResultsEqual(t, "tv-resume", resumed, full)

	// A custom model has no wire form; Checkpoint must refuse.
	custom := customAvailability{}
	for st, err := range sys.Steps(context.Background(), initial, MaxRounds(30), TimeVarying(custom)) {
		if err != nil {
			t.Fatal(err)
		}
		if st.Round() == 2 {
			if _, err := st.Checkpoint(); err == nil || !strings.Contains(err.Error(), "spec form") {
				t.Fatalf("custom availability checkpointed: %v", err)
			}
			break
		}
	}
}

// customAvailability is an Availability with no spec form.
type customAvailability struct{}

func (customAvailability) Available(round, u, v int) bool { return round%2 == 0 || u+v > 3 }

// TestAvailabilitySpecRoundTripExact pins that the built-in models survive
// the spec round trip value-exactly — degenerate layers included.  A
// NodeFaults over a never-available Bernoulli link layer must NOT come back
// as always-on links: that would silently change the resumed dynamics.
func TestAvailabilitySpecRoundTripExact(t *testing.T) {
	models := []Availability{
		AlwaysOn{},
		Bernoulli{P: 0.4, Seed: 3},
		Bernoulli{P: 0, Seed: 1},
		Periodic{Period: 5, Off: 2},
		NodeFaults{P: 0.9, Seed: 2},
		NodeFaults{Links: AlwaysOn{}, P: 0.9, Seed: 2},
		NodeFaults{Links: Bernoulli{P: 0, Seed: 1}, P: 0.9, Seed: 2},
		NodeFaults{Links: Bernoulli{P: 0.5, Seed: 8}, P: 0.7, Seed: 4},
	}
	for _, m := range models {
		spec, ok := availabilitySpecOf(m)
		if !ok {
			t.Fatalf("%#v: no spec form", m)
		}
		rebuilt, err := spec.Build()
		if err != nil {
			t.Fatalf("%#v: %v", m, err)
		}
		for round := 1; round <= 6; round++ {
			for u := 0; u < 4; u++ {
				for v := u + 1; v < 5; v++ {
					if m.Available(round, u, v) != rebuilt.Available(round, u, v) {
						t.Fatalf("%#v: rebuilt model diverges at (%d,%d,%d)", m, round, u, v)
					}
				}
			}
		}
	}
	if _, ok := availabilitySpecOf(NodeFaults{Links: customAvailability{}, P: 0.5}); ok {
		t.Fatal("custom link layer silently serialized")
	}
}

// TestVerifyBatchNormalizesParallelism pins the satellite fix: a verify
// batch forcing per-run parallelism is normalized exactly as RunBatch
// normalizes it — the batch is the unit of parallelism — instead of
// oversubscribing the worker pool.
func TestVerifyBatchNormalizesParallelism(t *testing.T) {
	sys, err := New(Mesh(9, 9), Colors(5))
	if err != nil {
		t.Fatal(err)
	}
	session := sys.NewSession(4)
	var initials []*Coloring
	for seed := uint64(1); seed <= 6; seed++ {
		initials = append(initials, sys.RandomColoring(seed))
	}

	plain, err := session.VerifyBatch(context.Background(), initials, 1)
	if err != nil {
		t.Fatal(err)
	}
	forced, err := session.VerifyBatch(context.Background(), initials, 1, Parallel(8), Kernel(KernelParallel))
	if err != nil {
		t.Fatal(err)
	}
	for i := range forced {
		res := forced[i].Result
		if res.Workers != 1 {
			t.Fatalf("item %d ran with %d workers inside a batch", i, res.Workers)
		}
		if res.Kernel == KernelParallel {
			t.Fatalf("item %d kept the parallel kernel inside a batch", i)
		}
		streamResultsEqual(t, "verify-batch", res, plain[i].Result)
	}
}

// TestRunSpecTimeVaryingSpecPath pins the declarative availability path:
// RunSpec.TimeVarying builds the same model the imperative option injects.
func TestRunSpecTimeVaryingSpecPath(t *testing.T) {
	sys, err := New(Mesh(8, 8), Colors(3))
	if err != nil {
		t.Fatal(err)
	}
	initial := randomInitial(sys, 3, 3)
	viaOption, err := sys.Run(context.Background(), initial, MaxRounds(25), TimeVarying(tvg.Bernoulli{P: 0.7, Seed: 4}))
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := sys.RunSpecced(context.Background(), initial, RunSpec{
		MaxRounds:   25,
		TimeVarying: &AvailabilitySpec{Model: "bernoulli", P: 0.7, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	streamResultsEqual(t, "tv-spec-vs-option", viaSpec, viaOption)
}
