package dynmon

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
)

// TestSpecRoundTripEveryTopologyRule pins the acceptance property of the
// spec layer on torus substrates: for every registered topology name
// (aliases included) × every registered rule, ParseSpec(System.Spec.JSON())
// rebuilds an equivalent system, and the rebuilt system's spec equals the
// first (canonicalization is a fixed point).
func TestSpecRoundTripEveryTopologyRule(t *testing.T) {
	for _, topoName := range TopologyNames() {
		for _, ruleName := range RuleNames() {
			sp := &Spec{
				Substrate: SubstrateSpec{Topology: &TopologySpec{Name: topoName, Rows: 6, Cols: 7}},
				Colors:    4,
				Rule:      ruleName,
			}
			sys, err := sp.New()
			if err != nil {
				t.Fatalf("%s/%s: %v", topoName, ruleName, err)
			}
			emitted, err := sys.Spec()
			if err != nil {
				t.Fatalf("%s/%s: Spec: %v", topoName, ruleName, err)
			}
			wire, err := emitted.JSON()
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := ParseSpec(wire)
			if err != nil {
				t.Fatalf("%s/%s: ParseSpec of own output: %v", topoName, ruleName, err)
			}
			rebuilt, err := parsed.New()
			if err != nil {
				t.Fatalf("%s/%s: rebuilding: %v", topoName, ruleName, err)
			}
			if rebuilt.String() != sys.String() {
				t.Fatalf("%s/%s: round-trip changed the system: %q vs %q", topoName, ruleName, rebuilt.String(), sys.String())
			}
			again, err := rebuilt.Spec()
			if err != nil {
				t.Fatal(err)
			}
			if !specEqual(emitted, again) {
				t.Fatalf("%s/%s: canonical spec is not a fixed point", topoName, ruleName)
			}
		}
	}
}

// TestSpecRoundTripEveryGeneratorRule extends the round-trip pin to every
// registered graph generator × rule: the regenerated substrate must be the
// same graph, edge for edge.
func TestSpecRoundTripEveryGeneratorRule(t *testing.T) {
	for _, genName := range GeneratorNames() {
		for _, ruleName := range RuleNames() {
			sp := &Spec{
				Substrate: SubstrateSpec{Generator: &GeneratorSpec{Name: genName, N: 40, Seed: 11}},
				Colors:    3,
				Rule:      ruleName,
			}
			sys, err := sp.New()
			if err != nil {
				t.Fatalf("%s/%s: %v", genName, ruleName, err)
			}
			emitted, err := sys.Spec()
			if err != nil {
				t.Fatalf("%s/%s: Spec: %v", genName, ruleName, err)
			}
			wire, err := emitted.JSON()
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := ParseSpec(wire)
			if err != nil {
				t.Fatalf("%s/%s: ParseSpec of own output: %v", genName, ruleName, err)
			}
			rebuilt, err := parsed.New()
			if err != nil {
				t.Fatalf("%s/%s: rebuilding: %v", genName, ruleName, err)
			}
			a, b := sys.Graph(), rebuilt.Graph()
			if a == nil || b == nil {
				t.Fatalf("%s/%s: generator spec built a non-graph system", genName, ruleName)
			}
			if !specEqual(edgeSpecOfTest(a), edgeSpecOfTest(b)) {
				t.Fatalf("%s/%s: regenerated graph differs", genName, ruleName)
			}
			if rebuilt.Rule().Name() != sys.Rule().Name() {
				t.Fatalf("%s/%s: rule changed to %s", genName, ruleName, rebuilt.Rule().Name())
			}
		}
	}
}

// edgeSpecOfTest wraps a graph's edge list as a Spec for easy comparison.
func edgeSpecOfTest(g *GeneralGraph) *Spec {
	return &Spec{Substrate: SubstrateSpec{Edges: edgeListOf(g)}, Colors: 2}
}

// TestSpecCanonicalizesAliases pins that aliases resolve to canonical names
// in emitted specs ("mesh" → "toroidal-mesh", "ba" → "barabasi-albert"),
// while ParseSpec keeps accepting the aliases.
func TestSpecCanonicalizesAliases(t *testing.T) {
	sys, err := New(WithTopology("mesh", 5, 5), Colors(3))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sys.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Substrate.Topology.Name != "toroidal-mesh" {
		t.Fatalf("topology alias not canonicalized: %q", sp.Substrate.Topology.Name)
	}
	if sp.Rule != "smp" {
		t.Fatalf("default rule not recorded: %q", sp.Rule)
	}

	gsys, err := New(WithGenerator("ba", 30, map[string]float64{"m": 2}, 5), Colors(2))
	if err != nil {
		t.Fatal(err)
	}
	gsp, err := gsys.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if gsp.Substrate.Generator.Name != "barabasi-albert" {
		t.Fatalf("generator alias not canonicalized: %q", gsp.Substrate.Generator.Name)
	}
	if gsp.Rule != "generalized-smp" {
		t.Fatalf("graph default rule not recorded: %q", gsp.Rule)
	}
}

// TestSpecFromInstances covers the instance-built systems: hand-built
// graphs serialize as edge lists; registry-identical instances serialize by
// name; parameterized instances honestly refuse.
func TestSpecFromInstances(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 0)
	sys, err := New(Graph(g), Colors(2))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sys.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Substrate.Edges == nil || sp.Substrate.Edges.N != 5 || len(sp.Substrate.Edges.Edges) != 5 {
		t.Fatalf("hand-built graph spec = %+v", sp.Substrate.Edges)
	}
	rebuilt, err := sp.New()
	if err != nil {
		t.Fatal(err)
	}
	if !specEqual(edgeSpecOfTest(sys.Graph()), edgeSpecOfTest(rebuilt.Graph())) {
		t.Fatal("edge-list round trip changed the graph")
	}

	// A rule instance identical to its registry entry is nameable.
	rule, err := RuleByName("smp")
	if err != nil {
		t.Fatal(err)
	}
	named, err := New(Mesh(4, 4), Colors(3), WithRuleInstance(rule))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := named.Spec(); err != nil {
		t.Fatalf("registry-identical rule instance should be spec-serializable: %v", err)
	}

	// A parameterized instance differing from the registry entry refuses.
	custom, err := New(Mesh(4, 4), Colors(3), WithRuleInstance(rules.Threshold{Target: 2, Theta: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := custom.Spec(); err == nil {
		t.Fatal("non-default rule parameters silently serialized by name")
	}
}

// TestParseSpecRejectsMalformed pins strict parsing: every malformed
// document errors cleanly (no panics, no silent defaults).
func TestParseSpecRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":          `{"substrate"`,
		"unknown field":     `{"substrate":{"topology":{"name":"mesh","rows":4,"cols":4}},"colors":3,"frobnicate":1}`,
		"no substrate form": `{"substrate":{},"colors":3}`,
		"two substrate forms": `{"substrate":{"topology":{"name":"mesh","rows":4,"cols":4},
			"generator":{"name":"ba","n":10}},"colors":3}`,
		"tiny torus":        `{"substrate":{"topology":{"name":"mesh","rows":1,"cols":4}},"colors":3}`,
		"empty name":        `{"substrate":{"topology":{"name":"","rows":4,"cols":4}},"colors":3}`,
		"zero colors":       `{"substrate":{"topology":{"name":"mesh","rows":4,"cols":4}},"colors":0}`,
		"edge out of range": `{"substrate":{"edges":{"n":3,"edges":[[0,7]]}},"colors":2}`,
		"self loop":         `{"substrate":{"edges":{"n":3,"edges":[[1,1]]}},"colors":2}`,
		"trailing garbage":  `{"substrate":{"topology":{"name":"mesh","rows":4,"cols":4}},"colors":3}{"x":1}`,
	}
	for label, doc := range cases {
		if _, err := ParseSpec([]byte(doc)); err == nil {
			t.Errorf("%s: ParseSpec accepted %q", label, doc)
		}
	}
	// Unknown names parse (the registry is open) but fail to build.
	sp, err := ParseSpec([]byte(`{"substrate":{"topology":{"name":"moebius","rows":4,"cols":4}},"colors":3}`))
	if err != nil {
		t.Fatalf("unknown topology name should parse: %v", err)
	}
	if _, err := sp.New(); err == nil {
		t.Error("unknown topology name built a system")
	}
	sp, err = ParseSpec([]byte(`{"substrate":{"generator":{"name":"ba","n":10,"params":{"zap":3}}},"colors":2}`))
	if err != nil {
		t.Fatalf("unknown generator param should parse: %v", err)
	}
	if _, err := sp.New(); err == nil || !strings.Contains(err.Error(), "zap") {
		t.Errorf("unknown generator parameter not rejected by name: %v", err)
	}
}

// FuzzParseSpec fuzzes the strict parser: it must never panic, and anything
// it accepts must validate and re-marshal to a parseable document.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		`{"substrate":{"topology":{"name":"toroidal-mesh","rows":9,"cols":9}},"colors":5,"rule":"smp"}`,
		`{"substrate":{"generator":{"name":"barabasi-albert","n":50,"params":{"m":2},"seed":7}},"colors":2}`,
		`{"substrate":{"generator":{"name":"watts-strogatz","n":40,"params":{"k":4,"beta":0.1}}},"colors":3}`,
		`{"substrate":{"edges":{"n":3,"edges":[[0,1],[1,2]]}},"colors":2,"rule":"generalized-smp"}`,
		`{"substrate":{"topology":{"name":"torus-cordalis","rows":5,"cols":5}},"colors":6}`,
		`{"substrate":{},"colors":1}`,
		`{"substrate":{"edges":{"n":-2,"edges":[[0,1]]}},"colors":2}`,
		`[]`,
		`{"substrate":{"topology":{"name":"mesh","rows":1e9,"cols":1e9}},"colors":2}`,
		``,
		`{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseSpec(data)
		if err != nil {
			return
		}
		if verr := sp.Validate(); verr != nil {
			t.Fatalf("ParseSpec accepted an invalid spec: %v", verr)
		}
		wire, err := sp.JSON()
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		if _, err := ParseSpec(wire); err != nil {
			t.Fatalf("accepted spec does not re-parse: %v", err)
		}
	})
}

// TestConfigReducesToSpec pins the adapter property: an instance-free
// Config and its Spec build indistinguishable systems, and the option front
// end records the spec it denotes.
func TestConfigReducesToSpec(t *testing.T) {
	sys, err := New(Mesh(9, 9), Colors(5), WithRule("smp"))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sys.Spec()
	if err != nil {
		t.Fatalf("option-built system has no spec: %v", err)
	}
	direct, err := sp.New()
	if err != nil {
		t.Fatal(err)
	}
	if direct.String() != sys.String() {
		t.Fatalf("spec path differs from option path: %q vs %q", direct.String(), sys.String())
	}
}

// TestBuildInitialMatchesLegacyConfigs pins the torus construction families
// reachable through InitialSpec against their direct constructors.
func TestBuildInitialMatchesLegacyConfigs(t *testing.T) {
	sys, err := New(Mesh(9, 9), Colors(5))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sys.MinimumDynamo(1)
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := sys.BuildInitial(&InitialSpec{Config: "minimum"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !viaSpec.Coloring.Equal(direct.Coloring) {
		t.Fatal("InitialSpec minimum differs from MinimumDynamo")
	}
	random1, err := sys.BuildInitial(&InitialSpec{Config: "random", Seed: 42}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !random1.Coloring.Equal(sys.RandomColoring(42)) {
		t.Fatal("InitialSpec random not deterministic in the seed")
	}
	explicit, err := sys.BuildInitial(&InitialSpec{Cells: direct.Coloring}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !explicit.Coloring.Equal(direct.Coloring) {
		t.Fatal("explicit cells altered")
	}
	if _, err := sys.BuildInitial(&InitialSpec{Config: "nonesuch"}, 1); err == nil {
		t.Fatal("unknown config accepted")
	}
}

// TestFileSpecAcceptsBareSystemSpec pins the tolerant file parser: a bare
// Spec document wraps into a FileSpec.
func TestFileSpecAcceptsBareSystemSpec(t *testing.T) {
	fs, err := ParseFileSpec([]byte(`{"substrate":{"topology":{"name":"mesh","rows":4,"cols":4}},"colors":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if fs.System.Substrate.Topology == nil || fs.Initial != nil {
		t.Fatalf("bare spec wrapped wrong: %+v", fs)
	}
	if _, err := ParseFileSpec([]byte(`{"system":{"substrate":{"topology":{"name":"mesh","rows":4,"cols":4}},"colors":3},"run":{"target":1},"bogus":true}`)); err == nil {
		t.Fatal("unknown file-spec field accepted")
	}
}

// TestReportResultJSONStable pins the wire contract of Report and Result:
// exact field names, kernel as tier name, colorings as {rows, cols, cells}.
// A change that breaks this test breaks every consumer of the JSON API.
func TestReportResultJSONStable(t *testing.T) {
	final := color.NewColoring(grid.MustDims(2, 2), 2)
	res := &Result{
		Rounds:          3,
		Workers:         1,
		Kernel:          KernelFrontier,
		FixedPoint:      true,
		Monochromatic:   true,
		FinalColor:      2,
		MonotoneTarget:  true,
		FirstReached:    []int{0, 1, 1, 2},
		ChangesPerRound: []int{2, 1, 0},
		Final:           final,
	}
	rep := &Report{
		Construction:    "unit",
		SeedSize:        2,
		LowerBound:      2,
		Rounds:          3,
		PredictedRounds: 4,
		IsDynamo:        true,
		Monotone:        true,
		ConditionsOK:    true,
		Result:          res,
	}
	got, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"construction":"unit","seed_size":2,"lower_bound":2,"rounds":3,"predicted_rounds":4,` +
		`"is_dynamo":true,"monotone":true,"conditions_ok":true,"result":{"rounds":3,"workers":1,` +
		`"kernel":"frontier","fixed_point":true,"cycle":false,"monochromatic":true,"final_color":2,` +
		`"monotone_target":true,"first_reached":[0,1,1,2],"changes_per_round":[2,1,0],` +
		`"final":{"rows":2,"cols":2,"cells":[2,2,2,2]}}}`
	if string(got) != want {
		t.Fatalf("report wire format drifted:\n got %s\nwant %s", got, want)
	}

	var back Report
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back.Result == nil || back.Result.Kernel != KernelFrontier || !back.Result.Final.Equal(final) {
		t.Fatalf("report did not round-trip: %+v", back.Result)
	}
}
