package dynmon

import (
	"fmt"
	"io"

	"repro/internal/ascii"
	"repro/internal/sim"
)

// ObserveRounds adapts a plain per-round callback to the Observer
// interface; its OnFinish is a no-op.
func ObserveRounds(f func(round int, c *Coloring)) Observer { return sim.RoundFunc(f) }

// HistoryRecorder is an Observer that keeps a deep copy of the
// configuration after every round, like the RecordHistory run option but
// reusable across runs and composable with other observers.
type HistoryRecorder struct {
	snapshots []*Coloring
	final     *Result
}

// NewHistoryRecorder returns an empty recorder.
func NewHistoryRecorder() *HistoryRecorder { return &HistoryRecorder{} }

// OnRound clones and stores the configuration.
func (h *HistoryRecorder) OnRound(round int, c *Coloring) {
	h.snapshots = append(h.snapshots, c.Clone())
}

// OnFinish remembers the final result.
func (h *HistoryRecorder) OnFinish(r *Result) { h.final = r }

// Snapshots returns the recorded configurations, one per round
// (Snapshots()[0] is the state after round 1).  The slice is owned by the
// recorder; it keeps growing if the recorder is reused.
func (h *HistoryRecorder) Snapshots() []*Coloring { return h.snapshots }

// Final returns the Result of the last finished run, or nil if no run
// finished (e.g. it was canceled).
func (h *HistoryRecorder) Final() *Result { return h.final }

// Reset drops all recorded state so the recorder can be reused.
func (h *HistoryRecorder) Reset() { h.snapshots, h.final = nil, nil }

// Animator is an Observer that renders the configuration after every round
// as ASCII art to a writer — a terminal "animation" of the takeover.
type Animator struct {
	// W receives the frames.
	W io.Writer
	// Highlight, when not None, is drawn as 'B' like the paper's figures.
	Highlight Color
	// EveryN renders only rounds divisible by N (0 or 1 renders all).
	EveryN int
}

// NewAnimator renders every round to w, highlighting the given color.
func NewAnimator(w io.Writer, highlight Color) *Animator {
	return &Animator{W: w, Highlight: highlight}
}

// OnRound writes one frame.
func (a *Animator) OnRound(round int, c *Coloring) {
	if a.EveryN > 1 && round%a.EveryN != 0 {
		return
	}
	fmt.Fprintf(a.W, "round %d:\n%s", round, ascii.Coloring(c, a.Highlight))
}

// OnFinish writes a closing summary line.
func (a *Animator) OnFinish(r *Result) {
	switch {
	case r.Monochromatic:
		fmt.Fprintf(a.W, "monochromatic (color %d) after %d rounds\n", int(r.FinalColor), r.Rounds)
	case r.Cycle:
		fmt.Fprintf(a.W, "period-2 cycle detected after %d rounds\n", r.Rounds)
	case r.FixedPoint:
		fmt.Fprintf(a.W, "fixed point after %d rounds\n", r.Rounds)
	default:
		fmt.Fprintf(a.W, "round budget exhausted after %d rounds\n", r.Rounds)
	}
}

// StatsCollector is an Observer that accumulates per-round statistics of
// the spread of a target color.  Like HistoryRecorder it keeps accumulating
// if reused across runs; call Reset between runs for per-run statistics.
type StatsCollector struct {
	// Target is the tracked color.
	Target Color
	// TargetCounts[i] is the number of Target-colored vertices after round
	// i+1.
	TargetCounts []int
	// Rounds is the number of rounds observed.
	Rounds int
	// PeakGain is the largest increase of the target count between two
	// consecutive observed rounds.
	PeakGain int
	// Final is the Result of the finished run (nil until OnFinish).
	Final *Result

	prev int
	seen bool
}

// NewStatsCollector tracks the spread of the target color.
func NewStatsCollector(target Color) *StatsCollector {
	return &StatsCollector{Target: target}
}

// OnRound accumulates the target count for the round.
func (s *StatsCollector) OnRound(round int, c *Coloring) {
	n := c.Count(s.Target)
	if s.seen && n-s.prev > s.PeakGain {
		s.PeakGain = n - s.prev
	}
	s.prev, s.seen = n, true
	s.TargetCounts = append(s.TargetCounts, n)
	s.Rounds = round
}

// OnFinish remembers the final result.
func (s *StatsCollector) OnFinish(r *Result) { s.Final = r }

// Reset drops all accumulated state (but keeps Target) so the collector
// can be reused for another run.
func (s *StatsCollector) Reset() {
	s.TargetCounts, s.Rounds, s.PeakGain, s.Final = nil, 0, 0, nil
	s.prev, s.seen = 0, false
}

// Takeover reports whether the run ended with every vertex on the target
// color.
func (s *StatsCollector) Takeover() bool {
	return s.Final != nil && s.Final.Monochromatic && s.Final.FinalColor == s.Target
}
