package dynmon

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"

	"repro/internal/color"
	"repro/internal/dynamo"
	"repro/internal/graphs"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
	"repro/internal/sim"
)

// Spec is the declarative, JSON-round-trippable description of a System: a
// substrate (torus topology, graph generator or explicit edge list), a
// palette size and a rule name.  It is the wire form of the public API — the
// functional options and Config are thin adapters that produce a Spec, and
// Spec.New is the one constructor behind every path, so the imperative and
// declarative surfaces cannot drift.
//
// Specs built by System.Spec are canonical: registry aliases ("mesh", "ba")
// are resolved to their canonical names, so ParseSpec(sys.Spec().JSON())
// rebuilds an equivalent system and equal systems produce equal specs.
type Spec struct {
	// Substrate names the interaction substrate; exactly one of its three
	// forms must be set.
	Substrate SubstrateSpec `json:"substrate"`
	// Colors is the palette size K (the color set is {1..K}).
	Colors int `json:"colors"`
	// Rule is a registered rule name.  Empty selects the default: "smp" on
	// tori, "generalized-smp" on graph substrates (and a literal "smp" on a
	// graph substrate resolves to "generalized-smp", exactly as the option
	// front end does).
	Rule string `json:"rule,omitempty"`
}

// SubstrateSpec describes an interaction substrate in exactly one of three
// forms: a registered torus topology with its dimensions, a registered graph
// generator with its parameters and seed, or an explicit edge list.
type SubstrateSpec struct {
	Topology  *TopologySpec  `json:"topology,omitempty"`
	Generator *GeneratorSpec `json:"generator,omitempty"`
	Edges     *EdgeListSpec  `json:"edges,omitempty"`
}

// TopologySpec names a registered torus topology ("toroidal-mesh",
// "torus-cordalis", "torus-serpentinus" or any registered name or alias)
// with its lattice dimensions.
type TopologySpec struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
}

// GeneratorSpec names a registered graph generator ("barabasi-albert",
// "watts-strogatz", "erdos-renyi", "random-regular", "ring" or any
// registered name or alias) with the vertex count, its named parameters and
// the seed.  Generators are deterministic in (n, params, seed), so the spec
// rebuilds the same graph everywhere.
type GeneratorSpec struct {
	Name   string             `json:"name"`
	N      int                `json:"n"`
	Params map[string]float64 `json:"params,omitempty"`
	Seed   uint64             `json:"seed,omitempty"`
}

// EdgeListSpec is the explicit-substrate escape hatch: n vertices and an
// undirected edge list.  It is how hand-built graphs (the Graph option)
// serialize.
type EdgeListSpec struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// ParseSpec decodes a Spec from JSON, strictly: unknown fields, malformed
// values and structurally invalid specs (no substrate, two substrates,
// impossible sizes) are errors, never panics.  The result is validated but
// not yet instantiated; call Spec.New to build the System.
func ParseSpec(data []byte) (*Spec, error) {
	var sp Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("dynmon: parsing spec: %w", err)
	}
	if err := ensureEOF(dec); err != nil {
		return nil, err
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// ensureEOF rejects trailing garbage after a decoded JSON document.
func ensureEOF(dec *json.Decoder) error {
	if dec.More() {
		return fmt.Errorf("dynmon: trailing data after JSON document")
	}
	return nil
}

// Validate checks the spec's structure without building anything: exactly
// one substrate form, plausible sizes, a known rule name (when set).
func (sp *Spec) Validate() error {
	forms := 0
	if sp.Substrate.Topology != nil {
		forms++
		t := sp.Substrate.Topology
		if t.Name == "" {
			return fmt.Errorf("dynmon: spec topology without a name")
		}
		if t.Rows < 2 || t.Cols < 2 {
			return fmt.Errorf("dynmon: spec topology %dx%d must be at least 2x2", t.Rows, t.Cols)
		}
	}
	if sp.Substrate.Generator != nil {
		forms++
		g := sp.Substrate.Generator
		if g.Name == "" {
			return fmt.Errorf("dynmon: spec generator without a name")
		}
		if g.N < 1 {
			return fmt.Errorf("dynmon: spec generator with %d vertices", g.N)
		}
	}
	if sp.Substrate.Edges != nil {
		forms++
		e := sp.Substrate.Edges
		if e.N < 1 {
			return fmt.Errorf("dynmon: spec edge list with %d vertices", e.N)
		}
		for _, edge := range e.Edges {
			u, v := edge[0], edge[1]
			if u < 0 || v < 0 || u >= e.N || v >= e.N {
				return fmt.Errorf("dynmon: spec edge {%d,%d} outside vertex range [0,%d)", u, v, e.N)
			}
			if u == v {
				return fmt.Errorf("dynmon: spec self-loop at vertex %d", u)
			}
		}
	}
	if forms != 1 {
		return fmt.Errorf("dynmon: spec substrate must have exactly one of topology, generator or edges (got %d)", forms)
	}
	if sp.Colors < 1 {
		return fmt.Errorf("dynmon: spec with %d colors (want at least 1)", sp.Colors)
	}
	return nil
}

// JSON renders the spec as indented JSON with a trailing newline, the
// canonical file form.
func (sp *Spec) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Clone returns a deep copy of the spec.
func (sp *Spec) Clone() *Spec {
	out := *sp
	if t := sp.Substrate.Topology; t != nil {
		tc := *t
		out.Substrate.Topology = &tc
	}
	if g := sp.Substrate.Generator; g != nil {
		gc := *g
		if g.Params != nil {
			gc.Params = make(map[string]float64, len(g.Params))
			for k, v := range g.Params {
				gc.Params[k] = v
			}
		}
		out.Substrate.Generator = &gc
	}
	if e := sp.Substrate.Edges; e != nil {
		ec := *e
		ec.Edges = append([][2]int(nil), e.Edges...)
		out.Substrate.Edges = &ec
	}
	return &out
}

// Canonical returns the canonicalized form of the spec without building a
// System: registry aliases are resolved to canonical names ("mesh" →
// "toroidal-mesh", "ba" → "barabasi-albert"), the default rule is made
// explicit ("smp" on tori, "generalized-smp" on graph substrates — with a
// literal "smp" on a graph substrate resolving to "generalized-smp", exactly
// as Spec.New does), and explicit edge lists are deduplicated, oriented
// (u < v) and sorted.  The result is exactly the spec Spec.New would record —
// sp.Canonical() equals sp.New()'s System.Spec() — so two specs denote the
// same system if and only if their canonical JSON forms are equal.
func (sp *Spec) Canonical() (*Spec, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	out := sp.Clone()
	switch {
	case sp.Substrate.Topology != nil:
		t := sp.Substrate.Topology
		topo, err := grid.ByName(t.Name, t.Rows, t.Cols)
		if err != nil {
			return nil, err
		}
		out.Substrate.Topology.Name = topo.Name()
		if out.Rule == "" {
			out.Rule = "smp"
		}
	case sp.Substrate.Generator != nil:
		name, err := graphs.CanonicalGeneratorName(sp.Substrate.Generator.Name)
		if err != nil {
			return nil, err
		}
		out.Substrate.Generator.Name = name
		if out.Rule == "" || out.Rule == "smp" {
			out.Rule = "generalized-smp"
		}
	default:
		e := out.Substrate.Edges
		seen := make(map[[2]int]bool, len(e.Edges))
		edges := make([][2]int, 0, len(e.Edges))
		for _, edge := range e.Edges {
			u, v := edge[0], edge[1]
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			edges = append(edges, [2]int{u, v})
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i][0] != edges[j][0] {
				return edges[i][0] < edges[j][0]
			}
			return edges[i][1] < edges[j][1]
		})
		e.Edges = edges
		if out.Rule == "" || out.Rule == "smp" {
			out.Rule = "generalized-smp"
		}
	}
	if _, err := rules.ByName(out.Rule); err != nil {
		return nil, err
	}
	return out, nil
}

// Digest returns a stable content address of the spec: "sha256:" plus the
// hex SHA-256 of the canonical compact JSON form.  Alias forms collide —
// Digest canonicalizes first — so two specs share a digest exactly when they
// denote the same system.  Because every run is a pure function of its spec,
// the digest is a sound cache key for results: same digest ⇒ same system ⇒
// same result.  (The address is canonical-JSON-level, not graph-isomorphism-
// level: a generator spec that spells out a generator's default parameters
// digests differently from one that omits them.)
func (sp *Spec) Digest() (string, error) {
	canonical, err := sp.Canonical()
	if err != nil {
		return "", err
	}
	return digestOf(canonical)
}

// digestOf hashes a value's compact JSON form.
func digestOf(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// New instantiates the System the spec describes.  It is the single
// constructor of the package: New (functional options) and NewFromConfig
// reduce to it whenever no pre-built instances are involved, and the
// resulting System remembers its (canonicalized) spec, so System.Spec is the
// exact inverse.
func (sp *Spec) New() (*System, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	canonical := sp.Clone()
	ruleName := sp.Rule
	var (
		topo  Topology
		graph *GeneralGraph
		err   error
	)
	switch {
	case sp.Substrate.Topology != nil:
		t := sp.Substrate.Topology
		topo, err = grid.ByName(t.Name, t.Rows, t.Cols)
		if err != nil {
			return nil, err
		}
		canonical.Substrate.Topology.Name = topo.Name()
		if ruleName == "" {
			ruleName = "smp"
		}
	case sp.Substrate.Generator != nil:
		g := sp.Substrate.Generator
		graph, err = graphs.GenerateByName(g.Name, g.N, g.Params, g.Seed)
		if err != nil {
			return nil, err
		}
		canonical.Substrate.Generator.Name, err = graphs.CanonicalGeneratorName(g.Name)
		if err != nil {
			return nil, err
		}
	default:
		e := sp.Substrate.Edges
		graph = graphs.NewGraph(e.N)
		for _, edge := range e.Edges {
			graph.AddEdge(edge[0], edge[1])
		}
		canonical.Substrate.Edges = edgeListOf(graph)
	}
	if graph != nil && (ruleName == "" || ruleName == "smp") {
		// The degree-aware form of the same protocol; bit-identical to
		// "smp" on 4-regular substrates (see NewFromConfig).
		ruleName = "generalized-smp"
	}
	rule, err := rules.ByName(ruleName)
	if err != nil {
		return nil, err
	}
	canonical.Rule = ruleName

	p, err := color.NewPalette(sp.Colors)
	if err != nil {
		return nil, err
	}
	s := &System{
		topo:    topo,
		graph:   graph,
		palette: p,
		rule:    rule,
		spec:    canonical,
	}
	if graph != nil {
		s.engine = graph.EngineFor(rule)
	} else {
		s.engine = sim.NewEngine(topo, rule)
	}
	return s, nil
}

// edgeListOf serializes a graph's structure as a sorted undirected edge
// list.
func edgeListOf(g *GeneralGraph) *EdgeListSpec {
	out := &EdgeListSpec{N: g.N(), Edges: make([][2]int, 0, g.EdgeCount())}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				out.Edges = append(out.Edges, [2]int{u, v})
			}
		}
	}
	sort.Slice(out.Edges, func(i, j int) bool {
		if out.Edges[i][0] != out.Edges[j][0] {
			return out.Edges[i][0] < out.Edges[j][0]
		}
		return out.Edges[i][1] < out.Edges[j][1]
	})
	return out
}

// Spec returns the declarative description of the system — the exact
// inverse of Spec.New.  Systems built from specs, names or registered
// generators return the canonicalized spec they were built from; systems
// built around pre-supplied instances (WithTopologyInstance,
// WithRuleInstance) are described by name when the instance is
// indistinguishable from its registry entry, and hand-built graphs
// serialize as explicit edge lists.  An error means the system genuinely
// has no faithful wire form — e.g. an unregistered rule implementation or a
// rule instance with non-default parameters.
func (s *System) Spec() (*Spec, error) {
	if s.spec != nil {
		return s.spec.Clone(), nil
	}
	sp := &Spec{Colors: s.palette.K}

	name := s.rule.Name()
	registered, err := rules.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("dynmon: system rule %q is not registered; register it to make the system spec-serializable", name)
	}
	if !reflect.DeepEqual(registered, s.rule) {
		return nil, fmt.Errorf("dynmon: system rule %q differs from its registry entry (non-default parameters?); a spec cannot describe it faithfully", name)
	}
	sp.Rule = name

	if s.graph != nil {
		sp.Substrate.Edges = edgeListOf(s.graph)
		return sp, nil
	}
	d := s.topo.Dims()
	tname := s.topo.Name()
	topoRegistered, err := grid.ByName(tname, d.Rows, d.Cols)
	if err != nil {
		return nil, fmt.Errorf("dynmon: system topology %q is not registered; register it to make the system spec-serializable", tname)
	}
	if !reflect.DeepEqual(topoRegistered, s.topo) {
		return nil, fmt.Errorf("dynmon: system topology %q differs from its registry entry; a spec cannot describe it faithfully", tname)
	}
	sp.Substrate.Topology = &TopologySpec{Name: tname, Rows: d.Rows, Cols: d.Cols}
	return sp, nil
}

// RegisterGenerator makes a graph generator resolvable in GeneratorSpec
// names (canonical name first, then aliases).  The factory must be
// deterministic in (n, params, seed) and must reject unknown parameter
// names.  Registering a taken name panics.
func RegisterGenerator(factory func(n int, params map[string]float64, seed uint64) (*GeneralGraph, error), names ...string) {
	graphs.RegisterGenerator(graphs.GenFactory(factory), names...)
}

// GeneratorNames returns every generator name specs accept, sorted,
// including aliases and externally registered generators.
func GeneratorNames() []string { return graphs.GeneratorNames() }

// InitialSpec describes an initial configuration declaratively: either a
// named construction family with a size and seed, or explicit cells.  It is
// the third leg of a spec file — system, initial, run — and the library
// form of what the CLI tools' -config flag used to assemble imperatively.
type InitialSpec struct {
	// Config names a construction family.  On tori: "minimum" (the paper's
	// tight construction), "cross", "comb", "blocked", "frozen", "random",
	// "bernoulli".  On graphs: "hubs" (top Size vertices by degree), "random"
	// (Size uniform vertices), "greedy" (the simulation-driven greedy
	// baseline, Size seeds), "bernoulli".  Empty means Cells carries the
	// configuration explicitly.
	Config string `json:"config,omitempty"`
	// Size parameterizes the graph families (seed-set size); 0 selects 8.
	Size int `json:"size,omitempty"`
	// Seed drives the random families, deterministic per seed.
	Seed uint64 `json:"seed,omitempty"`
	// Density is the "bernoulli" family's per-vertex target probability:
	// every vertex is seeded with the target color independently with
	// probability Density, otherwise with a uniform draw among the other
	// palette colors.  It is the natural axis for takeover-probability
	// ensembles.  Other families ignore it.
	Density float64 `json:"density,omitempty"`
	// Cells is the explicit configuration (wire form of a Coloring: rows,
	// cols, row-major cells), used when Config is empty.
	Cells *Coloring `json:"cells,omitempty"`
}

// BuildInitial realizes an initial configuration on this system: the
// construction (with its name and, for torus families, the theorem-condition
// metadata) plus the coloring itself.  target is the color the construction
// seeds (graph families also need a background color and use the first
// palette color distinct from target).
func (s *System) BuildInitial(ispec *InitialSpec, target Color) (*Construction, error) {
	if ispec == nil {
		return nil, fmt.Errorf("dynmon: nil initial spec")
	}
	if ispec.Cells != nil {
		if ispec.Config != "" {
			return nil, fmt.Errorf("dynmon: initial spec has both a named config %q and explicit cells", ispec.Config)
		}
		if ispec.Cells.Dims() != s.Dims() {
			return nil, fmt.Errorf("dynmon: initial cells are %v, system is %v", ispec.Cells.Dims(), s.Dims())
		}
		c := ispec.Cells.Clone()
		return s.wrapConstruction(c, "explicit", target), nil
	}
	if ispec.Config == "" {
		return nil, fmt.Errorf("dynmon: initial spec needs a named config or explicit cells")
	}
	if s.graph != nil {
		return s.buildGraphInitial(ispec, target)
	}
	return s.buildTorusInitial(ispec, target)
}

// wrapConstruction packages a plain coloring as a Construction for uniform
// reporting.
func (s *System) wrapConstruction(c *Coloring, name string, target Color) *Construction {
	return &Construction{
		Name:     name,
		Topology: s.topo,
		Target:   target,
		Palette:  s.palette,
		Seed:     c.Vertices(target),
		Coloring: c,
	}
}

// buildTorusInitial realizes the torus construction families.
func (s *System) buildTorusInitial(ispec *InitialSpec, target Color) (*Construction, error) {
	d := s.Dims()
	palette := s.palette
	switch ispec.Config {
	case "cross", "blocked", "frozen":
		if s.topo.Kind() != grid.KindToroidalMesh {
			return nil, fmt.Errorf("dynmon: config %q is defined on the toroidal mesh", ispec.Config)
		}
	}
	switch ispec.Config {
	case "minimum":
		return s.MinimumDynamo(target)
	case "cross":
		if palette.K >= 4 {
			return dynamo.FullCross(d.Rows, d.Cols, target, palette)
		}
		// Two- and three-color crosses are used by the rule-comparison runs.
		c := s.NewColoring(palette.Others(target)[0])
		c.FillRow(0, target)
		c.FillCol(0, target)
		return s.wrapConstruction(c, "two-color-cross", target), nil
	case "comb":
		return dynamo.CombUpperBound(s.topo.Kind(), d.Rows, d.Cols, target, palette)
	case "blocked":
		return dynamo.BlockedCross(d.Rows, d.Cols, target, palette)
	case "frozen":
		return dynamo.FrozenTiling(d.Rows, d.Cols, target, palette)
	case "random":
		return s.wrapConstruction(s.RandomColoring(ispec.Seed), "random", target), nil
	case "bernoulli":
		c, err := s.bernoulliColoring(ispec.Density, ispec.Seed, target)
		if err != nil {
			return nil, err
		}
		return s.wrapConstruction(c, "bernoulli", target), nil
	default:
		return nil, fmt.Errorf("dynmon: unknown torus config %q (want minimum, cross, comb, random, bernoulli, blocked or frozen)", ispec.Config)
	}
}

// bernoulliColoring seeds every vertex independently: the target color with
// probability density, otherwise a uniform draw among the other palette
// colors.  Draws are counter-based on (seed, vertex), so the configuration
// is a pure function of the spec — the same on any substrate representation
// and trivially shardable by ensembles that perturb only the seed.
func (s *System) bernoulliColoring(density float64, seed uint64, target Color) (*Coloring, error) {
	if density < 0 || density > 1 {
		return nil, fmt.Errorf("dynmon: bernoulli density %v outside [0, 1]", density)
	}
	others := s.palette.Others(target)
	if len(others) == 0 {
		return nil, fmt.Errorf("dynmon: the bernoulli config needs a palette color distinct from the target; use 2 or more colors")
	}
	c := s.NewColoring(others[0])
	n := c.Dims().N()
	for v := 0; v < n; v++ {
		if rng.Unit(rng.Hash(seed, uint64(v), 1)) < density {
			c.Set(v, target)
			continue
		}
		if len(others) > 1 {
			pick := rng.Hash(seed, uint64(v), 2)
			c.Set(v, others[pick%uint64(len(others))])
		}
	}
	return c, nil
}

// buildGraphInitial realizes the graph seeding families.
func (s *System) buildGraphInitial(ispec *InitialSpec, target Color) (*Construction, error) {
	others := s.palette.Others(target)
	if len(others) == 0 {
		return nil, fmt.Errorf("dynmon: graph configs need a background color distinct from the target; use 2 or more colors")
	}
	background := others[0]
	size := ispec.Size
	if size <= 0 {
		size = 8
	}
	if ispec.Config == "bernoulli" {
		c, err := s.bernoulliColoring(ispec.Density, ispec.Seed, target)
		if err != nil {
			return nil, err
		}
		return &Construction{
			Name:     "bernoulli",
			Target:   target,
			Palette:  s.palette,
			Seed:     c.Vertices(target),
			Coloring: c,
		}, nil
	}
	var c *Coloring
	switch ispec.Config {
	case "hubs":
		c = s.SeedTopByDegree(size, target, background)
	case "random":
		c = s.SeedRandom(size, target, background, ispec.Seed)
	case "greedy":
		seeds := s.TargetSet(TargetSetSpec{
			Target:          target,
			Background:      background,
			MaxSeed:         size,
			CandidateSample: 30,
			Seed:            ispec.Seed,
		})
		c = s.NewColoring(background)
		for _, v := range seeds {
			c.Set(v, target)
		}
	default:
		return nil, fmt.Errorf("dynmon: unknown graph config %q (want hubs, random, greedy or bernoulli)", ispec.Config)
	}
	return &Construction{
		Name:     ispec.Config,
		Target:   target,
		Palette:  s.palette,
		Seed:     c.Vertices(target),
		Coloring: c,
	}, nil
}

// FileSpec is the complete declarative description of one run — the format
// of spec files (-spec on the CLI tools): a system, an optional initial
// configuration and the run options.  Initial may be omitted by tools that
// only need the system (dynamosearch).
type FileSpec struct {
	System  Spec         `json:"system"`
	Initial *InitialSpec `json:"initial,omitempty"`
	Run     RunSpec      `json:"run"`
}

// ParseFileSpec decodes a spec file, strictly (unknown fields are errors).
// A bare Spec document — one with a top-level "substrate" instead of a
// "system" — is accepted too and wrapped in a FileSpec with empty initial
// and run sections.
func ParseFileSpec(data []byte) (*FileSpec, error) {
	var probe struct {
		Substrate *json.RawMessage `json:"substrate"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("dynmon: parsing spec file: %w", err)
	}
	if probe.Substrate != nil {
		sp, err := ParseSpec(data)
		if err != nil {
			return nil, err
		}
		return &FileSpec{System: *sp}, nil
	}
	var fs FileSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fs); err != nil {
		return nil, fmt.Errorf("dynmon: parsing spec file: %w", err)
	}
	if err := ensureEOF(dec); err != nil {
		return nil, err
	}
	if err := fs.System.Validate(); err != nil {
		return nil, err
	}
	return &fs, nil
}

// JSON renders the spec file as indented JSON with a trailing newline.
func (fs *FileSpec) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(fs, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Build instantiates the run the spec file describes: the system, the
// initial construction and the effective target color (Run.Target, with the
// paper's color 1 as the default).  It is the one construction path shared
// by every spec-file consumer — the CLI tools and the dynserve HTTP server —
// so "the run a spec file denotes" cannot drift between them.  Spec files
// without an initial section are an error here; callers that only need the
// system use System.New directly.
func (fs *FileSpec) Build() (*System, *Construction, Color, error) {
	sys, err := fs.System.New()
	if err != nil {
		return nil, nil, None, err
	}
	target := fs.Run.Target
	if target == None {
		target = 1
	}
	if fs.Initial == nil {
		return nil, nil, None, fmt.Errorf("dynmon: spec file has no initial section")
	}
	cons, err := sys.BuildInitial(fs.Initial, target)
	if err != nil {
		return nil, nil, None, err
	}
	return sys, cons, target, nil
}

// Digest returns a stable content address of the complete run the file
// describes: "sha256:" plus the hex SHA-256 of the compact JSON of the
// canonicalized system spec, the initial spec and the run spec's wire fields
// (process-local attachments — observers, custom availability models, buffer
// knobs — do not serialize and do not contribute).  Runs are deterministic
// functions of exactly this triple, so equal digests imply byte-identical
// terminal Results — the contract the dynserve result cache is built on.
func (fs *FileSpec) Digest() (string, error) {
	system, err := fs.System.Canonical()
	if err != nil {
		return "", err
	}
	canonical := FileSpec{System: *system, Initial: fs.Initial, Run: fs.Run.wireClone()}
	return digestOf(&canonical)
}
