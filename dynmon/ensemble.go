package dynmon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/rng"
	"repro/internal/stats"
)

// EnsembleSpec is the declarative description of a Monte-Carlo ensemble: one
// system, one base initial-configuration family and one base run spec, run
// as Replicas independently seeded replicas per point of an optional
// parameter Sweep.  It is the wire form behind the Ensemble harness, the
// dynamomc CLI and the dynserve /v1/ensembles endpoint.
//
// Replica seeding is derived, not stored: replica r of point i draws its
// initial-configuration, schedule and noise seeds from counter-based hashes
// of (Seed, i, r), so the spec pins the entire ensemble — every trajectory
// and therefore every aggregate — bit for bit, independent of worker count,
// kernel tier and completion order.
type EnsembleSpec struct {
	System Spec `json:"system"`
	// Initial is the base configuration family.  Seeded families
	// ("bernoulli", "random", "greedy") get a fresh derived seed per
	// replica; deterministic families (e.g. "minimum") make every replica
	// start identically, which is only useful when the run itself is
	// stochastic.
	Initial InitialSpec `json:"initial"`
	// Run is the base run spec (wire fields only).  Schedule and Noise
	// seeds, when the sections are present, are re-derived per replica.
	Run RunSpec `json:"run"`
	// Replicas is the number of independent runs per sweep point.
	Replicas int `json:"replicas"`
	// Seed is the ensemble master seed every derived seed hashes from.
	Seed uint64 `json:"seed,omitempty"`
	// TakeoverFraction is the fraction of vertices the target color must
	// hold in a replica's final configuration to count as a takeover.
	// Omitted (or 1) means total takeover — the paper's monochromatic
	// dynamo criterion.  Noisy ensembles set a bulk threshold (e.g. 0.9)
	// instead: an ε-faulty run re-dents any monopoly with ~εN/K faults per
	// round, so exact monochromaticity is unreachable even when the target
	// has long since won the phase.
	TakeoverFraction float64 `json:"takeover_fraction,omitempty"`
	// Sweep, when present, maps one parameter axis; when absent the
	// ensemble is a single point estimating one takeover probability.
	Sweep *SweepSpec `json:"sweep,omitempty"`
}

// SweepSpec names the swept parameter axis and its values.
type SweepSpec struct {
	// Axis is one of:
	//   "density"   — Initial.Density (requires the "bernoulli" family)
	//   "eps"       — Run.Noise.Eps (0 removes the noise at that point)
	//   "p"         — Run.Schedule.P (requires, or installs, uniform-async)
	//   "threshold" — the rule's activation threshold θ, via the
	//                 "threshold-θ" registry entries (integer values)
	Axis   string    `json:"axis"`
	Values []float64 `json:"values"`
}

// seed-derivation tags, one stream per consumer (cf. rules.FaultDraw).
const (
	ensTagInit uint64 = iota + 1
	ensTagSchedule
	ensTagNoise
)

// ParseEnsembleSpec decodes an ensemble spec, strictly: unknown fields,
// trailing data or an invalid spec are errors.
func ParseEnsembleSpec(data []byte) (*EnsembleSpec, error) {
	var es EnsembleSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&es); err != nil {
		return nil, fmt.Errorf("dynmon: parsing ensemble spec: %w", err)
	}
	if err := ensureEOF(dec); err != nil {
		return nil, err
	}
	if err := es.Validate(); err != nil {
		return nil, err
	}
	return &es, nil
}

// Validate checks the ensemble's structure without building anything.
func (es *EnsembleSpec) Validate() error {
	if err := es.System.Validate(); err != nil {
		return err
	}
	if es.Replicas < 1 {
		return fmt.Errorf("dynmon: ensemble needs replicas >= 1, have %d", es.Replicas)
	}
	if es.Initial.Config == "" && es.Initial.Cells == nil {
		return fmt.Errorf("dynmon: ensemble initial section needs a named config or explicit cells")
	}
	if es.TakeoverFraction < 0 || es.TakeoverFraction > 1 {
		return fmt.Errorf("dynmon: takeover fraction %v outside [0, 1]", es.TakeoverFraction)
	}
	if es.Sweep == nil {
		return nil
	}
	if len(es.Sweep.Values) == 0 {
		return fmt.Errorf("dynmon: ensemble sweep has no values")
	}
	switch es.Sweep.Axis {
	case "density":
		if es.Initial.Config != "bernoulli" {
			return fmt.Errorf("dynmon: the density axis sweeps the bernoulli family's seeding density; initial config is %q", es.Initial.Config)
		}
		for _, v := range es.Sweep.Values {
			if v < 0 || v > 1 {
				return fmt.Errorf("dynmon: density %v outside [0, 1]", v)
			}
		}
	case "eps":
		for _, v := range es.Sweep.Values {
			if v < 0 || v > 1 {
				return fmt.Errorf("dynmon: eps %v outside [0, 1]", v)
			}
		}
	case "p":
		if es.Run.Schedule != nil && es.Run.Schedule.Mode != "uniform-async" {
			return fmt.Errorf("dynmon: the p axis sweeps the uniform-async activation probability; schedule mode is %q", es.Run.Schedule.Mode)
		}
		for _, v := range es.Sweep.Values {
			if v <= 0 || v > 1 {
				return fmt.Errorf("dynmon: activation probability %v outside (0, 1]", v)
			}
		}
	case "threshold":
		for _, v := range es.Sweep.Values {
			if v != math.Trunc(v) || v < 1 || v > 4 {
				return fmt.Errorf("dynmon: threshold %v is not an integer in [1, 4]", v)
			}
		}
	default:
		return fmt.Errorf("dynmon: unknown sweep axis %q (want density, eps, p or threshold)", es.Sweep.Axis)
	}
	return nil
}

// JSON renders the spec as indented JSON with a trailing newline.
func (es *EnsembleSpec) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(es, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Digest returns a stable content address of the ensemble: "sha256:" plus
// the hex SHA-256 of the compact JSON of the canonicalized system spec, the
// run spec's wire fields and the remaining sections — the dynserve
// /v1/ensembles cache key.
func (es *EnsembleSpec) Digest() (string, error) {
	system, err := es.System.Canonical()
	if err != nil {
		return "", err
	}
	canonical := EnsembleSpec{
		System:           *system,
		Initial:          es.Initial,
		Run:              es.Run.wireClone(),
		Replicas:         es.Replicas,
		Seed:             es.Seed,
		TakeoverFraction: es.TakeoverFraction,
	}
	if es.Sweep != nil {
		sweep := SweepSpec{Axis: es.Sweep.Axis, Values: append([]float64(nil), es.Sweep.Values...)}
		canonical.Sweep = &sweep
	}
	return digestOf(&canonical)
}

// target is the color whose takeover the ensemble estimates (Run.Target,
// default 1 — the same convention as BatchSpec.Build).
func (es *EnsembleSpec) target() Color {
	if es.Run.Target != None {
		return es.Run.Target
	}
	return 1
}

// pointValues normalizes the sweep to a value list; a sweepless ensemble is
// one anonymous point.
func (es *EnsembleSpec) pointValues() []float64 {
	if es.Sweep == nil {
		return []float64{0}
	}
	return es.Sweep.Values
}

// pointSpec applies sweep value i to the base sections, returning the
// system, initial and run specs every replica of the point varies from.
func (es *EnsembleSpec) pointSpec(i int) (Spec, InitialSpec, RunSpec) {
	system, ispec, rs := es.System, es.Initial, es.Run.wireClone()
	if es.Sweep == nil {
		return system, ispec, rs
	}
	v := es.Sweep.Values[i]
	switch es.Sweep.Axis {
	case "density":
		ispec.Density = v
	case "eps":
		if v == 0 {
			rs.Noise = nil
		} else if rs.Noise == nil {
			rs.Noise = &NoiseSpec{Eps: v}
		} else {
			rs.Noise.Eps = v
		}
	case "p":
		if rs.Schedule == nil {
			rs.Schedule = &ScheduleSpec{Mode: "uniform-async"}
		}
		rs.Schedule.P = v
	case "threshold":
		system.Rule = fmt.Sprintf("threshold-%d", int(v))
	}
	return system, ispec, rs
}

// replicaSpec derives replica r of point i from the point's base sections:
// every seeded component — the initial configuration family, the schedule
// and the noise — gets its own counter-based seed, so replicas are
// independent streams of one reproducible ensemble.
func (es *EnsembleSpec) replicaSpec(i, r int, ispec InitialSpec, rs RunSpec) (InitialSpec, RunSpec) {
	ispec.Seed = rng.Hash(es.Seed, uint64(i), uint64(r), ensTagInit)
	out := rs.wireClone()
	if out.Schedule != nil {
		out.Schedule.Seed = rng.Hash(es.Seed, uint64(i), uint64(r), ensTagSchedule)
	}
	if out.Noise != nil {
		out.Noise.Seed = rng.Hash(es.Seed, uint64(i), uint64(r), ensTagNoise)
	}
	return ispec, out
}

// Ensemble executes a validated EnsembleSpec over a bounded worker pool.
// Build one with NewEnsemble; Run produces the EnsembleReport.
type Ensemble struct {
	spec    *EnsembleSpec
	digest  string
	workers int
}

// NewEnsemble validates the spec and prepares an executor running at most
// workers replicas concurrently (workers <= 0 selects GOMAXPROCS).
func NewEnsemble(spec *EnsembleSpec, workers int) (*Ensemble, error) {
	if spec == nil {
		return nil, fmt.Errorf("dynmon: nil ensemble spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	digest, err := spec.Digest()
	if err != nil {
		return nil, err
	}
	return &Ensemble{spec: spec, digest: digest, workers: workers}, nil
}

// Spec returns the ensemble's spec.
func (e *Ensemble) Spec() *EnsembleSpec { return e.spec }

// Digest returns the spec's content address.
func (e *Ensemble) Digest() string { return e.digest }

// Run executes every replica of every sweep point and aggregates the
// per-point takeover statistics.  The report is a pure function of the
// spec: deterministic replicas of a point ride the session's bit-sliced
// batch tier where eligible, stochastic ones run per replica, and either
// way the aggregation consumes results in replica order, so the report is
// byte-identical across worker counts and batch tiers.  When ctx is
// canceled the first incomplete point aborts the run.
func (e *Ensemble) Run(ctx context.Context) (*EnsembleReport, error) {
	es := e.spec
	target := es.target()
	values := es.pointValues()
	report := &EnsembleReport{
		Digest:   e.digest,
		Target:   target,
		Replicas: es.Replicas,
		Points:   make([]EnsemblePoint, len(values)),
	}
	if es.Sweep != nil {
		report.Axis = es.Sweep.Axis
	}

	// Systems are cached per rule name: only the threshold axis changes the
	// system between points, every other axis shares one engine (and its
	// adjacency tables) across the whole ensemble.
	sessions := map[string]*Session{}
	sessionFor := func(system Spec) (*Session, error) {
		if se, ok := sessions[system.Rule]; ok {
			return se, nil
		}
		sys, err := system.New()
		if err != nil {
			return nil, err
		}
		if report.System == "" {
			report.System = sys.String()
		}
		se := sys.NewSession(e.workers)
		sessions[system.Rule] = se
		return se, nil
	}

	for i := range values {
		system, ispec, rs := es.pointSpec(i)
		se, err := sessionFor(system)
		if err != nil {
			return nil, fmt.Errorf("dynmon: ensemble point %d: %w", i, err)
		}
		results, err := e.runPoint(ctx, se, i, ispec, rs, target)
		if err != nil {
			return nil, fmt.Errorf("dynmon: ensemble point %d: %w", i, err)
		}
		report.Points[i] = aggregatePoint(values[i], results, target, es.TakeoverFraction)
	}
	return report, nil
}

// runPoint executes the point's replicas and returns their results in
// replica order.  A point whose run spec is deterministic (no schedule, no
// noise) shares one RunSpec across replicas and goes through RunBatch —
// the bit-sliced tier where eligible; a stochastic point derives
// per-replica schedule/noise seeds and runs replica-at-a-time over the same
// worker pool.
func (e *Ensemble) runPoint(ctx context.Context, se *Session, i int, ispec InitialSpec, rs RunSpec, target Color) ([]*Result, error) {
	es := e.spec
	sys := se.System()
	initials := make([]*Coloring, es.Replicas)
	specs := make([]RunSpec, es.Replicas)
	for r := range initials {
		rispec, rrs := es.replicaSpec(i, r, ispec, rs)
		cons, err := sys.BuildInitial(&rispec, target)
		if err != nil {
			return nil, fmt.Errorf("replica %d: %w", r, err)
		}
		initials[r], specs[r] = cons.Coloring, rrs
	}
	if rs.Schedule == nil && rs.Noise == nil {
		// Deterministic dynamics: every replica shares the base run spec, so
		// the whole point is one batch (rides the bit-sliced tier when the
		// system qualifies).
		return se.RunBatch(ctx, initials, WithRunSpec(rs))
	}
	results := make([]*Result, es.Replicas)
	err := se.forEach(ctx, es.Replicas, func(ctx context.Context, r int) error {
		opt, err := se.batchOptions(specs[r])
		if err != nil {
			return err
		}
		res, err := sys.engine.RunContext(ctx, initials[r], opt)
		if err != nil {
			return err
		}
		results[r] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// aggregatePoint reduces a point's replica results to its statistics.  It
// walks results in replica order, so the aggregate is independent of the
// order replicas completed in.  fraction is the takeover criterion
// (EnsembleSpec.TakeoverFraction; 0 means 1, total takeover).
func aggregatePoint(value float64, results []*Result, target Color, fraction float64) EnsemblePoint {
	if fraction == 0 {
		fraction = 1
	}
	pt := EnsemblePoint{Value: value, Replicas: len(results)}
	var rounds stats.Welford
	var taken []int
	for _, res := range results {
		if res == nil {
			continue
		}
		tookOver := res.Monochromatic && res.FinalColor == target
		if !tookOver && fraction < 1 && res.Final != nil {
			tookOver = float64(res.Final.Count(target)) >= fraction*float64(res.Final.Dims().N())
		}
		switch {
		case tookOver:
			pt.Takeovers++
			rounds.Add(float64(res.Rounds))
			taken = append(taken, res.Rounds)
		case res.Cycle:
			pt.Cycles++
		case res.FixedPoint || res.Monochromatic:
			pt.FixedPoints++
		default:
			pt.Exhausted++
		}
	}
	if pt.Replicas > 0 {
		pt.TakeoverProb = float64(pt.Takeovers) / float64(pt.Replicas)
	}
	pt.CILow, pt.CIHigh = stats.Wilson(pt.Takeovers, pt.Replicas, stats.WilsonZ95)
	if len(taken) > 0 {
		sort.Ints(taken)
		pt.Rounds = RoundsSummary{
			Mean: rounds.Mean(),
			Std:  rounds.Std(),
			Min:  taken[0],
			Max:  taken[len(taken)-1],
			P50:  quantileInt(taken, 0.5),
			P90:  quantileInt(taken, 0.9),
		}
	}
	return pt
}

// quantileInt is the nearest-rank quantile of a sorted slice.
func quantileInt(sorted []int, q float64) int {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// EnsemblePoint is one sweep point's aggregate: the takeover probability of
// the target color with its 95% Wilson interval, the outcome census and the
// rounds-to-takeover distribution.
type EnsemblePoint struct {
	// Value is the swept parameter's value at this point (0 for a sweepless
	// ensemble).
	Value    float64 `json:"value"`
	Replicas int     `json:"replicas"`
	// Takeovers counts replicas that ended monochromatic in the target
	// color; TakeoverProb is the point estimate Takeovers/Replicas and
	// [CILow, CIHigh] its 95% Wilson score interval.
	Takeovers    int     `json:"takeovers"`
	TakeoverProb float64 `json:"takeover_prob"`
	CILow        float64 `json:"ci_low"`
	CIHigh       float64 `json:"ci_high"`
	// FixedPoints counts replicas frozen short of takeover (including
	// monochromatic in a non-target color), Cycles period-2 oscillations,
	// Exhausted replicas that hit the round budget still moving.
	FixedPoints int `json:"fixed_points"`
	Cycles      int `json:"cycles"`
	Exhausted   int `json:"exhausted"`
	// Rounds summarizes rounds-to-takeover over the taking-over replicas
	// (zero when none took over).
	Rounds RoundsSummary `json:"rounds"`
}

// RoundsSummary is the rounds-to-takeover distribution of one point.
type RoundsSummary struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  int     `json:"min"`
	Max  int     `json:"max"`
	P50  int     `json:"p50"`
	P90  int     `json:"p90"`
}

// EnsembleReport is the aggregate of a whole ensemble run: one EnsemblePoint
// per sweep value, in sweep order.  It carries no per-replica data — the
// aggregation is the point — and is a pure function of the spec (see
// Ensemble.Run), which is what lets dynserve cache reports by spec digest.
type EnsembleReport struct {
	// Digest is the content address of the spec that produced the report.
	Digest string `json:"digest"`
	// System describes the system the ensemble ran on.
	System string `json:"system"`
	// Axis names the swept parameter ("" for a sweepless ensemble).
	Axis string `json:"axis,omitempty"`
	// Target is the color whose takeover the ensemble estimated.
	Target Color `json:"target"`
	// Replicas is the per-point replica count.
	Replicas int             `json:"replicas"`
	Points   []EnsemblePoint `json:"points"`
}

// JSON renders the report as indented JSON with a trailing newline.
func (r *EnsembleReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// CSV renders the report as one header line plus one row per point — the
// form the plotting scripts and the dynamomc -format csv flag consume.
func (r *EnsembleReport) CSV() string {
	var b strings.Builder
	axis := r.Axis
	if axis == "" {
		axis = "value"
	}
	fmt.Fprintf(&b, "%s,replicas,takeovers,takeover_prob,ci_low,ci_high,fixed_points,cycles,exhausted,rounds_mean,rounds_std,rounds_min,rounds_p50,rounds_p90,rounds_max\n", axis)
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%g,%d,%d,%.6f,%.6f,%.6f,%d,%d,%d,%.3f,%.3f,%d,%d,%d,%d\n",
			pt.Value, pt.Replicas, pt.Takeovers, pt.TakeoverProb, pt.CILow, pt.CIHigh,
			pt.FixedPoints, pt.Cycles, pt.Exhausted,
			pt.Rounds.Mean, pt.Rounds.Std, pt.Rounds.Min, pt.Rounds.P50, pt.Rounds.P90, pt.Rounds.Max)
	}
	return b.String()
}
