package dynmon

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestSessionAbandonLeaksNothing pins the Session lifecycle contract the
// dynserve server relies on (it holds Sessions for the process lifetime):
// batch worker pools are scoped to each call and fully joined before it
// returns, even when the call is canceled mid-batch, so an abandoned Session
// pins no goroutines.  Run with -race, this also hammers the concurrent
// RunBatch + cancellation paths.
func TestSessionAbandonLeaksNothing(t *testing.T) {
	sys, err := New(Mesh(16, 16), Colors(5))
	if err != nil {
		t.Fatal(err)
	}
	se := sys.NewSession(4)

	initials := make([]*Coloring, 64)
	for i := range initials {
		initials[i] = sys.RandomColoring(uint64(i + 1))
	}

	before := runtime.NumGoroutine()

	// Concurrent batches, half of them canceled mid-flight.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			var cancel context.CancelFunc
			if g%2 == 0 {
				ctx, cancel = context.WithCancel(ctx)
				// Cancel while the batch is (very likely) still running.
				go func() {
					time.Sleep(time.Duration(g) * 100 * time.Microsecond)
					cancel()
				}()
				defer cancel()
			}
			results, err := se.RunBatch(ctx, initials, MaxRounds(200), DetectCycles())
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Errorf("batch %d: %v", g, err)
				}
				return
			}
			for i, res := range results {
				if res == nil {
					t.Errorf("batch %d: missing result %d on an uncanceled batch", g, i)
				}
			}
		}(g)
	}
	wg.Wait()

	// Abandon the session entirely and verify the goroutine count settles
	// back to the pre-batch level (poll: exiting workers need a moment).
	se = nil
	_ = se
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before batches, %d after abandoning the session", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
