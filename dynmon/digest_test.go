package dynmon

import (
	"strings"
	"testing"
)

// TestSpecDigestAliasCollision pins the satellite contract the dynserve
// result cache is built on: every alias form of a spec — registry aliases,
// implicit default rules, unsorted or duplicated edge lists — digests to the
// same address as its canonical form.
func TestSpecDigestAliasCollision(t *testing.T) {
	groups := map[string][]*Spec{
		"mesh-aliases": {
			{Substrate: SubstrateSpec{Topology: &TopologySpec{Name: "toroidal-mesh", Rows: 9, Cols: 9}}, Colors: 5, Rule: "smp"},
			{Substrate: SubstrateSpec{Topology: &TopologySpec{Name: "mesh", Rows: 9, Cols: 9}}, Colors: 5, Rule: "smp"},
			// The empty rule defaults to "smp" on tori.
			{Substrate: SubstrateSpec{Topology: &TopologySpec{Name: "mesh", Rows: 9, Cols: 9}}, Colors: 5},
		},
		"generator-aliases": {
			{Substrate: SubstrateSpec{Generator: &GeneratorSpec{Name: "barabasi-albert", N: 100, Params: map[string]float64{"m": 2}, Seed: 7}}, Colors: 2, Rule: "generalized-smp"},
			{Substrate: SubstrateSpec{Generator: &GeneratorSpec{Name: "ba", N: 100, Params: map[string]float64{"m": 2}, Seed: 7}}, Colors: 2, Rule: "generalized-smp"},
			// Both the empty rule and a literal "smp" resolve to
			// "generalized-smp" on graph substrates, exactly as Spec.New does.
			{Substrate: SubstrateSpec{Generator: &GeneratorSpec{Name: "ba", N: 100, Params: map[string]float64{"m": 2}, Seed: 7}}, Colors: 2},
			{Substrate: SubstrateSpec{Generator: &GeneratorSpec{Name: "ba", N: 100, Params: map[string]float64{"m": 2}, Seed: 7}}, Colors: 2, Rule: "smp"},
		},
		"edge-list-forms": {
			{Substrate: SubstrateSpec{Edges: &EdgeListSpec{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}}}}, Colors: 2, Rule: "generalized-smp"},
			// Reversed orientation, shuffled order, duplicate edge.
			{Substrate: SubstrateSpec{Edges: &EdgeListSpec{N: 4, Edges: [][2]int{{3, 2}, {1, 0}, {2, 1}, {0, 1}}}}, Colors: 2},
		},
	}
	seen := map[string]string{} // digest -> group, to assert groups stay distinct
	for group, specs := range groups {
		want, err := specs[0].Digest()
		if err != nil {
			t.Fatalf("%s: Digest: %v", group, err)
		}
		if !strings.HasPrefix(want, "sha256:") || len(want) != len("sha256:")+64 {
			t.Fatalf("%s: digest %q is not a sha256 address", group, want)
		}
		for i, sp := range specs[1:] {
			got, err := sp.Digest()
			if err != nil {
				t.Fatalf("%s[%d]: Digest: %v", group, i+1, err)
			}
			if got != want {
				t.Errorf("%s[%d]: alias form digests to %s, canonical form to %s", group, i+1, got, want)
			}
		}
		if other, dup := seen[want]; dup {
			t.Errorf("groups %s and %s collide on digest %s", group, other, want)
		}
		seen[want] = group
	}
}

// TestSpecDigestMatchesBuiltSystem pins Canonical against the constructor:
// the digest of an alias-form spec equals the digest of the spec the built
// System reports, for every substrate family.
func TestSpecDigestMatchesBuiltSystem(t *testing.T) {
	specs := []*Spec{
		{Substrate: SubstrateSpec{Topology: &TopologySpec{Name: "cordalis", Rows: 5, Cols: 5}}, Colors: 6},
		{Substrate: SubstrateSpec{Generator: &GeneratorSpec{Name: "ws", N: 50, Params: map[string]float64{"k": 4, "beta": 0.1}, Seed: 3}}, Colors: 2},
		{Substrate: SubstrateSpec{Edges: &EdgeListSpec{N: 3, Edges: [][2]int{{2, 0}, {0, 1}}}}, Colors: 2},
	}
	for _, sp := range specs {
		want, err := sp.Digest()
		if err != nil {
			t.Fatalf("Digest: %v", err)
		}
		sys, err := sp.New()
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		built, err := sys.Spec()
		if err != nil {
			t.Fatalf("System.Spec: %v", err)
		}
		got, err := built.Digest()
		if err != nil {
			t.Fatalf("built Digest: %v", err)
		}
		if got != want {
			t.Errorf("spec digest %s != built system's spec digest %s", want, got)
		}
	}
}

// TestSpecDigestRejectsUnknownNames verifies digesting fails loudly instead
// of addressing a system that cannot be built.
func TestSpecDigestRejectsUnknownNames(t *testing.T) {
	bad := []*Spec{
		{Substrate: SubstrateSpec{Topology: &TopologySpec{Name: "moebius", Rows: 5, Cols: 5}}, Colors: 2},
		{Substrate: SubstrateSpec{Generator: &GeneratorSpec{Name: "hypercube", N: 8}}, Colors: 2},
		{Substrate: SubstrateSpec{Topology: &TopologySpec{Name: "mesh", Rows: 5, Cols: 5}}, Colors: 2, Rule: "no-such-rule"},
	}
	for i, sp := range bad {
		if _, err := sp.Digest(); err == nil {
			t.Errorf("bad[%d]: Digest succeeded, want error", i)
		}
	}
}

// TestFileSpecDigestSeparatesRuns pins the server cache key: the FileSpec
// digest folds in the initial and run sections, so the same system under
// different runs gets different addresses, while alias forms of the same
// complete run collide.
func TestFileSpecDigestSeparatesRuns(t *testing.T) {
	base := func() *FileSpec {
		return &FileSpec{
			System:  Spec{Substrate: SubstrateSpec{Topology: &TopologySpec{Name: "mesh", Rows: 9, Cols: 9}}, Colors: 5, Rule: "smp"},
			Initial: &InitialSpec{Config: "minimum", Seed: 1},
			Run:     RunSpec{Target: 1, StopWhenMonochromatic: true},
		}
	}
	a := base()
	d1, err := a.Digest()
	if err != nil {
		t.Fatalf("Digest: %v", err)
	}

	alias := base()
	alias.System.Substrate.Topology.Name = "toroidal-mesh"
	if d2, _ := alias.Digest(); d2 != d1 {
		t.Errorf("topology alias changed the file digest: %s vs %s", d2, d1)
	}

	// Non-wire attachments must not contribute to the address.
	attached := base()
	attached.Run.observers = []Observer{NewHistoryRecorder()}
	attached.Run.freshBuffers = true
	attached.Run.cpEvery, attached.Run.cpSink = 4, func(*Checkpoint) error { return nil }
	if d3, _ := attached.Digest(); d3 != d1 {
		t.Errorf("process-local attachments changed the file digest: %s vs %s", d3, d1)
	}

	diffRun := base()
	diffRun.Run.MaxRounds = 3
	if d4, _ := diffRun.Digest(); d4 == d1 {
		t.Errorf("different run spec kept the same file digest %s", d4)
	}

	diffInitial := base()
	diffInitial.Initial.Config = "cross"
	if d5, _ := diffInitial.Digest(); d5 == d1 {
		t.Errorf("different initial spec kept the same file digest %s", d5)
	}
}
