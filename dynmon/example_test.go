package dynmon_test

import (
	"context"
	"fmt"
	"log"

	"repro/dynmon"
)

// Example_quickstart builds the paper's minimum-size dynamo on a 9x9
// toroidal mesh, verifies it, and prints the outcome.
func Example_quickstart() {
	sys, err := dynmon.New(dynmon.Mesh(9, 9), dynmon.Colors(5), dynmon.WithRule("smp"))
	if err != nil {
		log.Fatal(err)
	}

	cons, err := sys.MinimumDynamo(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seed size %d, lower bound %d\n", cons.SeedSize(), sys.LowerBound())

	rep := sys.Verify(cons)
	fmt.Printf("dynamo=%v monotone=%v rounds=%d (paper formula %d)\n",
		rep.IsDynamo, rep.Monotone, rep.Rounds, rep.PredictedRounds)

	// Output:
	// seed size 16, lower bound 16
	// dynamo=true monotone=true rounds=8 (paper formula 7)
}

// ExampleSession fans a batch of random colorings across a worker pool
// sharing one engine, and counts how many happen to be dynamos.
func ExampleSession() {
	sys, err := dynmon.New(dynmon.Mesh(8, 8), dynmon.Colors(5))
	if err != nil {
		log.Fatal(err)
	}

	initials := make([]*dynmon.Coloring, 50)
	for i := range initials {
		initials[i] = sys.RandomColoring(uint64(i + 1))
	}

	session := sys.NewSession(4)
	reports, err := session.VerifyBatch(context.Background(), initials, 1)
	if err != nil {
		log.Fatal(err)
	}

	dynamos := 0
	for _, rep := range reports {
		if rep.IsDynamo {
			dynamos++
		}
	}
	fmt.Printf("%d of %d random colorings are dynamos for color 1\n", dynamos, len(reports))

	// Output:
	// 0 of 50 random colorings are dynamos for color 1
}

// ExampleSystem_Run runs a simulation with a deadline and a stats
// observer.
func ExampleSystem_Run() {
	sys, err := dynmon.New(dynmon.Mesh(9, 9))
	if err != nil {
		log.Fatal(err)
	}
	cons, err := sys.MinimumDynamo(1)
	if err != nil {
		log.Fatal(err)
	}

	stats := dynmon.NewStatsCollector(1)
	res, err := sys.Run(context.Background(), cons.Coloring,
		dynmon.Target(1), dynmon.StopWhenMonochromatic(), dynmon.WithObserver(stats))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("takeover=%v after %d rounds, final count %d\n",
		stats.Takeover(), res.Rounds, stats.TargetCounts[len(stats.TargetCounts)-1])

	// Output:
	// takeover=true after 8 rounds, final count 81
}
