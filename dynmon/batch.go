package dynmon

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// BatchSpec is the declarative description of an ensemble: one system and
// one set of run options shared by every item, plus a list of initial
// configurations — the wire form of "run these N replicas over this rule ×
// substrate" that dynamosim -batch-spec and the dynserve /v1/batch endpoint
// consume.  Each item denotes exactly the run its Item(i) FileSpec does, so
// per-item digests share the content-address space (and therefore the
// result cache) of single-run spec files.
type BatchSpec struct {
	System Spec          `json:"system"`
	Run    RunSpec       `json:"run"`
	Items  []InitialSpec `json:"items"`
}

// ParseBatchSpec decodes a batch spec, strictly: unknown fields, trailing
// data, an invalid system section or an empty item list are errors.
func ParseBatchSpec(data []byte) (*BatchSpec, error) {
	var bs BatchSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&bs); err != nil {
		return nil, fmt.Errorf("dynmon: parsing batch spec: %w", err)
	}
	if err := ensureEOF(dec); err != nil {
		return nil, err
	}
	if err := bs.Validate(); err != nil {
		return nil, err
	}
	return &bs, nil
}

// Validate checks the batch's structure without building anything.
func (bs *BatchSpec) Validate() error {
	if err := bs.System.Validate(); err != nil {
		return err
	}
	if len(bs.Items) == 0 {
		return fmt.Errorf("dynmon: batch spec has no items")
	}
	return nil
}

// JSON renders the batch spec as indented JSON with a trailing newline.
func (bs *BatchSpec) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(bs, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Item returns the single-run spec file item i denotes: the batch's system
// and run sections with item i as the initial configuration.  The returned
// FileSpec aliases the batch's item (it points into Items), which is what
// makes Item(i).Digest() the item's cache key.
func (bs *BatchSpec) Item(i int) *FileSpec {
	return &FileSpec{System: bs.System, Initial: &bs.Items[i], Run: bs.Run}
}

// ItemDigest returns the content address of item i's run — equal to the
// digest of the equivalent single-run spec file, so batch items hit the
// same result cache entries as individually submitted runs.
func (bs *BatchSpec) ItemDigest(i int) (string, error) {
	return bs.Item(i).Digest()
}

// Digest returns a stable content address of the whole batch: "sha256:"
// plus the hex SHA-256 of the compact JSON of the canonicalized system
// spec, the run spec's wire fields and the item list, mirroring
// FileSpec.Digest.
func (bs *BatchSpec) Digest() (string, error) {
	system, err := bs.System.Canonical()
	if err != nil {
		return "", err
	}
	canonical := BatchSpec{System: *system, Run: bs.Run.wireClone(), Items: bs.Items}
	return digestOf(&canonical)
}

// Build instantiates the ensemble: the system, one construction per item
// (in item order) and the effective target color (Run.Target, default 1).
// It is the construction path shared by the CLI and the dynserve batch
// endpoint, and each construction is exactly what Item(i).Build would have
// produced.
func (bs *BatchSpec) Build() (*System, []*Construction, Color, error) {
	sys, err := bs.System.New()
	if err != nil {
		return nil, nil, None, err
	}
	target := bs.Run.Target
	if target == None {
		target = 1
	}
	cons := make([]*Construction, len(bs.Items))
	for i := range bs.Items {
		c, err := sys.BuildInitial(&bs.Items[i], target)
		if err != nil {
			return nil, nil, None, fmt.Errorf("dynmon: batch item %d: %w", i, err)
		}
		cons[i] = c
	}
	return sys, cons, target, nil
}

// Initials is Build reduced to the colorings, the form Session.RunBatch
// wants.
func (bs *BatchSpec) Initials() (*System, []*Coloring, error) {
	sys, cons, _, err := bs.Build()
	if err != nil {
		return nil, nil, err
	}
	initials := make([]*Coloring, len(cons))
	for i, c := range cons {
		initials[i] = c.Coloring
	}
	return sys, initials, nil
}
