package dynmon

import (
	"strings"
	"testing"
)

const batchSpecDoc = `{
  "system": {
    "substrate": {"topology": {"name": "toroidal-mesh", "rows": 12, "cols": 12}},
    "colors": 2,
    "rule": "smp"
  },
  "run": {"target": 1, "stop_when_monochromatic": true, "detect_cycles": true},
  "items": [
    {"config": "random", "seed": 1},
    {"config": "random", "seed": 2},
    {"config": "random", "seed": 3}
  ]
}`

func TestParseBatchSpec(t *testing.T) {
	bs, err := ParseBatchSpec([]byte(batchSpecDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs.Items) != 3 {
		t.Fatalf("parsed %d items", len(bs.Items))
	}

	// Strictness: unknown fields, trailing data, empty items.
	if _, err := ParseBatchSpec([]byte(`{"system":{"substrate":{}},"items":[{}],"bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseBatchSpec([]byte(batchSpecDoc + "{}")); err == nil {
		t.Error("trailing data accepted")
	}
	if _, err := ParseBatchSpec([]byte(`{"system":{"substrate":{"topology":{"name":"toroidal-mesh","rows":9,"cols":9}},"colors":2},"items":[]}`)); err == nil {
		t.Error("empty item list accepted")
	}

	// Round trip.
	wire, err := bs.JSON()
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseBatchSpec(wire)
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v", err)
	}
	d1, err := bs.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := again.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 || !strings.HasPrefix(d1, "sha256:") {
		t.Fatalf("digest unstable across round trip: %q vs %q", d1, d2)
	}
}

// TestBatchSpecItemDigests pins the cache-key sharing contract: item i's
// digest equals the digest of the equivalent single-run FileSpec, and
// distinct items get distinct digests.
func TestBatchSpecItemDigests(t *testing.T) {
	bs, err := ParseBatchSpec([]byte(batchSpecDoc))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := range bs.Items {
		got, err := bs.ItemDigest(i)
		if err != nil {
			t.Fatal(err)
		}
		item := FileSpec{System: bs.System, Initial: &bs.Items[i], Run: bs.Run}
		want, err := item.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("item %d digest %q != single-run spec digest %q", i, got, want)
		}
		if seen[got] {
			t.Fatalf("item %d digest collides with an earlier item", i)
		}
		seen[got] = true
	}
	// The batch digest is not any item's digest.
	whole, err := bs.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if seen[whole] {
		t.Fatal("batch digest collides with an item digest")
	}
}

// TestBatchSpecBuild pins Build against the single-run path: each
// construction equals what the item's FileSpec builds.
func TestBatchSpecBuild(t *testing.T) {
	bs, err := ParseBatchSpec([]byte(batchSpecDoc))
	if err != nil {
		t.Fatal(err)
	}
	sys, cons, target, err := bs.Build()
	if err != nil {
		t.Fatal(err)
	}
	if target != 1 || len(cons) != 3 {
		t.Fatalf("target %d, %d constructions", target, len(cons))
	}
	if sys.Dims() != (Dims{Rows: 12, Cols: 12}) {
		t.Fatalf("system dims %v", sys.Dims())
	}
	for i := range bs.Items {
		_, single, _, err := bs.Item(i).Build()
		if err != nil {
			t.Fatal(err)
		}
		if !cons[i].Coloring.Equal(single.Coloring) {
			t.Fatalf("item %d coloring differs from its single-run spec build", i)
		}
	}
	sys2, initials, err := bs.Initials()
	if err != nil {
		t.Fatal(err)
	}
	if sys2 == nil || len(initials) != 3 {
		t.Fatalf("Initials returned %d colorings", len(initials))
	}
	for i := range initials {
		if !initials[i].Equal(cons[i].Coloring) {
			t.Fatalf("Initials[%d] differs from Build", i)
		}
	}
	// A broken item surfaces with its index.
	bad := *bs
	bad.Items = append([]InitialSpec{}, bs.Items...)
	bad.Items[1] = InitialSpec{Config: "no-such-family"}
	if _, _, _, err := bad.Build(); err == nil || !strings.Contains(err.Error(), "item 1") {
		t.Fatalf("bad item not reported by index: %v", err)
	}
}

// FuzzParseBatchSpec fuzzes the strict batch parser: it must never panic,
// and anything it accepts must validate, re-marshal and re-parse with a
// stable digest.
func FuzzParseBatchSpec(f *testing.F) {
	seeds := []string{
		batchSpecDoc,
		`{"system":{"substrate":{"generator":{"name":"barabasi-albert","n":50,"params":{"m":2},"seed":7}},"colors":2},"items":[{"config":"hubs","size":5}]}`,
		`{"system":{"substrate":{}},"items":[{}]}`,
		`{"items":[]}`,
		`{}`,
		``,
		`[]`,
		`{"system":{"substrate":{"topology":{"name":"toroidal-mesh","rows":9,"cols":9}},"colors":2},"run":{"max_rounds":-3},"items":[{"config":"random"}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		bs, err := ParseBatchSpec(data)
		if err != nil {
			return
		}
		if verr := bs.Validate(); verr != nil {
			t.Fatalf("ParseBatchSpec accepted an invalid batch: %v", verr)
		}
		// Digesting may legitimately fail — structural validation accepts
		// generator names the canonicalizer cannot resolve — but when it
		// succeeds it must be stable across a round trip.
		d1, digestErr := bs.Digest()
		wire, err := bs.JSON()
		if err != nil {
			t.Fatalf("accepted batch does not marshal: %v", err)
		}
		again, err := ParseBatchSpec(wire)
		if err != nil {
			t.Fatalf("accepted batch does not re-parse: %v", err)
		}
		if digestErr == nil {
			d2, err := again.Digest()
			if err != nil || d1 != d2 {
				t.Fatalf("digest unstable across round trip: %q vs %q (%v)", d1, d2, err)
			}
		}
	})
}
