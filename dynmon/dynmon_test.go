package dynmon_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/dynmon"
)

func TestNewDefaultsAndOptions(t *testing.T) {
	// Zero configuration is the paper's running example.
	sys, err := dynmon.New()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Dims() != (dynmon.Dims{Rows: 9, Cols: 9}) || sys.Palette().K != 5 || sys.Rule().Name() != "smp" {
		t.Errorf("defaults wrong: %s", sys)
	}

	sys, err = dynmon.New(dynmon.Cordalis(5, 7), dynmon.Colors(6), dynmon.WithRule("pb"))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Topology().Name() != "torus-cordalis" || sys.Dims().Cols != 7 || sys.Rule().Name() != "simple-majority-pb" {
		t.Errorf("options not applied: %s", sys)
	}

	if _, err := dynmon.New(dynmon.WithTopology("hypercube", 4, 4)); err == nil {
		t.Error("unknown topology should be rejected")
	}
	if _, err := dynmon.New(dynmon.WithRule("nope")); err == nil {
		t.Error("unknown rule should be rejected")
	}
	if _, err := dynmon.New(dynmon.Colors(0)); err == nil {
		t.Error("empty palette should be rejected")
	}
	if _, err := dynmon.New(dynmon.Mesh(1, 5)); err == nil {
		t.Error("bad dimensions should be rejected")
	}
}

func TestVerifyMinimumDynamoAllTopologies(t *testing.T) {
	for _, opt := range []dynmon.Option{dynmon.Mesh(9, 9), dynmon.Cordalis(9, 9), dynmon.Serpentinus(9, 9)} {
		sys, err := dynmon.New(opt)
		if err != nil {
			t.Fatal(err)
		}
		cons, err := sys.MinimumDynamo(1)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		rep := sys.Verify(cons)
		if !rep.IsDynamo || !rep.Monotone || !rep.ConditionsOK {
			t.Errorf("%s: %s", sys, rep.Summary())
		}
		if rep.SeedSize != sys.LowerBound() {
			t.Errorf("%s: seed %d != bound %d", sys, rep.SeedSize, sys.LowerBound())
		}
	}
}

// TestRunContextDeadline covers the acceptance criterion: a deadline
// shorter than the run makes Run return promptly with ctx.Err().
func TestRunContextDeadline(t *testing.T) {
	sys, err := dynmon.New(dynmon.Mesh(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	cons, err := sys.MinimumDynamo(1)
	if err != nil {
		t.Fatal(err)
	}

	// Unconstrained, the run takes well over 40 rounds on a 32x32 mesh.
	full, err := sys.Run(context.Background(), cons.Coloring,
		dynmon.Target(1), dynmon.StopWhenMonochromatic())
	if err != nil || !full.Monochromatic {
		t.Fatalf("baseline run failed: %v (%+v)", err, full)
	}

	// A deadline far shorter than the run: each round is throttled by an
	// observer so the budget expires mid-simulation.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	partial, err := sys.Run(ctx, cons.Coloring,
		dynmon.Target(1), dynmon.StopWhenMonochromatic(),
		dynmon.WithObserver(dynmon.ObserveRounds(func(round int, c *dynmon.Coloring) {
			time.Sleep(5 * time.Millisecond)
		})))
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation was not prompt: %v", elapsed)
	}
	if partial == nil || partial.Rounds >= full.Rounds {
		t.Errorf("expected a partial trace, got %d/%d rounds", partial.Rounds, full.Rounds)
	}
}

func TestRunParallelMatchesSequentialAndReportsWorkers(t *testing.T) {
	sys, err := dynmon.New(dynmon.Mesh(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	initial := sys.RandomColoring(42)
	seq, err := sys.Run(context.Background(), initial, dynmon.Target(1), dynmon.DetectCycles())
	if err != nil {
		t.Fatal(err)
	}
	par, err := sys.Run(context.Background(), initial, dynmon.Target(1), dynmon.DetectCycles(), dynmon.Parallel(4))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Workers != 1 || par.Workers != 4 {
		t.Errorf("Workers = %d/%d, want 1/4", seq.Workers, par.Workers)
	}
	if !seq.Final.Equal(par.Final) || seq.Rounds != par.Rounds {
		t.Error("parallel run must be bit-identical to sequential")
	}
}

func TestObservers(t *testing.T) {
	sys, err := dynmon.New(dynmon.Mesh(9, 9))
	if err != nil {
		t.Fatal(err)
	}
	cons, err := sys.MinimumDynamo(1)
	if err != nil {
		t.Fatal(err)
	}

	history := dynmon.NewHistoryRecorder()
	stats := dynmon.NewStatsCollector(1)
	var animation strings.Builder
	anim := dynmon.NewAnimator(&animation, 1)

	res, err := sys.Run(context.Background(), cons.Coloring,
		dynmon.Target(1), dynmon.StopWhenMonochromatic(),
		dynmon.WithObserver(history), dynmon.WithObserver(stats), dynmon.WithObserver(anim))
	if err != nil {
		t.Fatal(err)
	}

	if len(history.Snapshots()) != res.Rounds {
		t.Errorf("history has %d snapshots, want %d", len(history.Snapshots()), res.Rounds)
	}
	last := history.Snapshots()[len(history.Snapshots())-1]
	if !last.Equal(res.Final) {
		t.Error("last snapshot should equal the final configuration")
	}
	if history.Final() != res {
		t.Error("history should capture the final result")
	}

	if stats.Rounds != res.Rounds || !stats.Takeover() {
		t.Errorf("stats: rounds %d, takeover %v", stats.Rounds, stats.Takeover())
	}
	counts := stats.TargetCounts
	n := sys.Dims().N()
	if counts[len(counts)-1] != n {
		t.Errorf("final target count %d, want %d", counts[len(counts)-1], n)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Error("target counts of a monotone dynamo must be non-decreasing")
		}
	}
	if stats.PeakGain <= 0 {
		t.Errorf("PeakGain = %d", stats.PeakGain)
	}

	out := animation.String()
	if !strings.Contains(out, "round 1:") || !strings.Contains(out, "monochromatic (color 1)") {
		t.Errorf("animation output malformed:\n%s", out)
	}
}

// TestSessionBatchParity covers the acceptance criterion: batch
// verification of 1000 random colorings on a 32x32 mesh is identical to
// sequential one-at-a-time runs (bit-identical engine guarantee).
func TestSessionBatchParity(t *testing.T) {
	sys, err := dynmon.New(dynmon.Mesh(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	const batch = 1000
	initials := make([]*dynmon.Coloring, batch)
	for i := range initials {
		initials[i] = sys.RandomColoring(uint64(i + 1))
	}

	session := sys.NewSession(8)
	reports, err := session.VerifyBatch(context.Background(), initials, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != batch {
		t.Fatalf("got %d reports", len(reports))
	}

	for i, initial := range initials {
		want := sys.VerifyColoring(initial, 1)
		got := reports[i]
		if got == nil {
			t.Fatalf("report %d is nil", i)
		}
		if got.IsDynamo != want.IsDynamo || got.Rounds != want.Rounds ||
			got.Monotone != want.Monotone || got.SeedSize != want.SeedSize {
			t.Fatalf("report %d drifted: batch %+v vs sequential %+v", i, got, want)
		}
		if !got.Result.Final.Equal(want.Result.Final) {
			t.Fatalf("coloring %d: batch final configuration differs from sequential", i)
		}
	}
}

func TestSessionRunBatchCancellation(t *testing.T) {
	sys, err := dynmon.New(dynmon.Mesh(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	initials := make([]*dynmon.Coloring, 64)
	for i := range initials {
		initials[i] = sys.RandomColoring(uint64(i + 1))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := sys.NewSession(4).RunBatch(ctx, initials, dynmon.Target(1))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != len(initials) {
		t.Fatalf("results length %d", len(results))
	}
}

func TestRegisterRuleAndTopologyThroughFacade(t *testing.T) {
	// Registering a duplicate name panics, so keep the test idempotent
	// across in-process reruns (go test -count=N).
	if _, err := dynmon.RuleByName("facade-stay"); err != nil {
		dynmon.RegisterRule("facade-stay", func() dynmon.Rule { return stayRule{} })
	}
	if _, err := dynmon.TopologyByName("facade-mesh", 2, 2); err != nil {
		dynmon.RegisterTopology("facade-mesh", func(rows, cols int) (dynmon.Topology, error) {
			return dynmon.TopologyByName("mesh", rows, cols)
		})
	}

	sys, err := dynmon.New(
		dynmon.WithTopology("facade-mesh", 6, 6),
		dynmon.Colors(3),
		dynmon.WithRule("facade-stay"),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(context.Background(), sys.RandomColoring(1), dynmon.MaxRounds(5))
	if err != nil {
		t.Fatal(err)
	}
	// The stay rule never changes anything: immediate fixed point.
	if !res.FixedPoint || res.Rounds != 1 {
		t.Errorf("stay rule should freeze immediately, got %+v", res)
	}

	assertListed := func(names []string, want string) {
		for _, n := range names {
			if n == want {
				return
			}
		}
		t.Errorf("%q not listed in %v", want, names)
	}
	assertListed(dynmon.RuleNames(), "facade-stay")
	assertListed(dynmon.TopologyNames(), "facade-mesh")
}

func TestFiguresAndExperiments(t *testing.T) {
	for fig := 1; fig <= 6; fig++ {
		out, err := dynmon.Figure(fig)
		if err != nil || !strings.Contains(out, "Figure") {
			t.Errorf("figure %d: %v", fig, err)
		}
	}
	if _, err := dynmon.Figure(7); err == nil {
		t.Error("figure 7 should not exist")
	}
	if len(dynmon.Experiments()) != 18 {
		t.Errorf("experiments = %d, want 18", len(dynmon.Experiments()))
	}
	if _, ok := dynmon.ExperimentByID("E07"); !ok {
		t.Error("E07 should resolve")
	}
}

// stayRule keeps every vertex's color forever; it exists for registry tests.
type stayRule struct{}

func (stayRule) Name() string { return "facade-stay" }
func (stayRule) Next(current dynmon.Color, neighbors []dynmon.Color) dynmon.Color {
	return current
}
