package dynmon

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// stochasticRunOpts enumerates the schedule × noise surface of the wire
// layer, one RunOption bundle per combination.
func stochasticRunOpts() map[string][]RunOption {
	return map[string][]RunOption{
		"uniform-async":        {UniformAsync(0.5, 11)},
		"uniform-async-noisy":  {UniformAsync(0.7, 11), Noisy(0.05, 21)},
		"sequential":           {Sequential()},
		"sequential-noisy":     {Sequential(), Noisy(0.1, 22)},
		"random-sequential":    {RandomSequential(12)},
		"vertex-clock":         {VertexClock(3, 13)},
		"vertex-clock-noisy":   {VertexClock(3, 13), Noisy(0.02, 23)},
		"synchronous-noisy":    {Noisy(0.08, 24)},
		"explicit-synchronous": {WithSchedule(&ScheduleSpec{Mode: "synchronous"})},
	}
}

// TestStochasticSpecFileRoundTrip pins the declarative path: for every
// schedule × noise combination, a spec file carrying the run's wire form
// reproduces the imperative run bit-identically, and the wire form survives
// a JSON round trip unchanged.
func TestStochasticSpecFileRoundTrip(t *testing.T) {
	sys, err := New(Mesh(10, 10), Colors(3))
	if err != nil {
		t.Fatal(err)
	}
	initial := sys.RandomColoring(7)
	for label, opts := range stochasticRunOpts() {
		t.Run(label, func(t *testing.T) {
			opts := append([]RunOption{Target(1), MaxRounds(30)}, opts...)
			direct, err := sys.Run(context.Background(), initial, opts...)
			if err != nil {
				t.Fatal(err)
			}

			rs := runSpecOf(opts)
			fs := &FileSpec{System: *mustSpec(t, sys), Initial: &InitialSpec{Config: "random", Seed: 7}, Run: rs.wireClone()}
			wire, err := json.Marshal(fs)
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := ParseFileSpec(wire)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			sent, err := json.Marshal(fs.Run)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(parsed.Run)
			if err != nil {
				t.Fatal(err)
			}
			if string(sent) != string(got) {
				t.Fatalf("run spec changed across the wire:\n  sent %s\n  got  %s", sent, got)
			}
			sys2, err := parsed.System.New()
			if err != nil {
				t.Fatal(err)
			}
			cons, err := sys2.BuildInitial(parsed.Initial, 1)
			if err != nil {
				t.Fatal(err)
			}
			viaSpec, err := sys2.Run(context.Background(), cons.Coloring, WithRunSpec(parsed.Run))
			if err != nil {
				t.Fatal(err)
			}
			streamResultsEqual(t, label, viaSpec, direct)
		})
	}
}

func mustSpec(t *testing.T, sys *System) *Spec {
	t.Helper()
	sp, err := sys.Spec()
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestStochasticCheckpointResume is the stochastic leg of the resume
// acceptance: for every schedule × noise combination, a run checkpointed
// mid-flight through the JSON wire form and resumed is bit-identical to the
// uninterrupted run — the schedule and noise specs ride the checkpoint.
func TestStochasticCheckpointResume(t *testing.T) {
	sys, err := New(Mesh(12, 12), Colors(3))
	if err != nil {
		t.Fatal(err)
	}
	initial := sys.RandomColoring(3)
	for label, opts := range stochasticRunOpts() {
		t.Run(label, func(t *testing.T) {
			opts := append([]RunOption{Target(1), MaxRounds(24)}, opts...)
			full, err := sys.Run(context.Background(), initial, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if full.Rounds < 2 {
				t.Skipf("%s converged in %d rounds; nothing mid-run to checkpoint", label, full.Rounds)
			}
			at := full.Rounds / 2
			var cp *Checkpoint
			for st, err := range sys.Steps(context.Background(), initial, opts...) {
				if err != nil {
					t.Fatal(err)
				}
				if st.Round() == at {
					if cp, err = st.Checkpoint(); err != nil {
						t.Fatal(err)
					}
					break
				}
			}
			wire, err := cp.JSON()
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := ParseCheckpoint(wire)
			if err != nil {
				t.Fatal(err)
			}
			if rs := parsed.Run; runSpecOf(opts).Schedule != nil && rs.Schedule == nil {
				t.Fatalf("%s: checkpoint dropped the schedule spec", label)
			}
			resumed, err := sys.Resume(context.Background(), parsed)
			if err != nil {
				t.Fatal(err)
			}
			streamResultsEqual(t, label, resumed, full)
		})
	}
}

// TestBernoulliInitial pins the bernoulli construction family: density
// bounds are validated, the extremes are exact, the configuration is a pure
// function of (seed, density), and the realized density tracks the
// parameter.
func TestBernoulliInitial(t *testing.T) {
	sys, err := New(Mesh(32, 32), Colors(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.BuildInitial(&InitialSpec{Config: "bernoulli", Density: 1.5}, 1); err == nil {
		t.Fatal("density 1.5 accepted")
	}
	if _, err := sys.BuildInitial(&InitialSpec{Config: "bernoulli", Density: -0.1}, 1); err == nil {
		t.Fatal("density -0.1 accepted")
	}

	all, err := sys.BuildInitial(&InitialSpec{Config: "bernoulli", Density: 1, Seed: 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := all.Coloring.Count(1); got != 32*32 {
		t.Fatalf("density 1 seeded %d of %d vertices", got, 32*32)
	}
	none, err := sys.BuildInitial(&InitialSpec{Config: "bernoulli", Density: 0, Seed: 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := none.Coloring.Count(1); got != 0 {
		t.Fatalf("density 0 seeded %d vertices", got)
	}
	// Non-target cells draw from the whole remaining palette, not one color.
	seenOther := 0
	for c := Color(2); c <= 4; c++ {
		if none.Coloring.Count(c) > 0 {
			seenOther++
		}
	}
	if seenOther < 2 {
		t.Fatalf("background uses %d of 3 non-target colors; want a uniform mix", seenOther)
	}

	a, err := sys.BuildInitial(&InitialSpec{Config: "bernoulli", Density: 0.3, Seed: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.BuildInitial(&InitialSpec{Config: "bernoulli", Density: 0.3, Seed: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Coloring.Equal(b.Coloring) {
		t.Fatal("same (seed, density) produced different configurations")
	}
	c, err := sys.BuildInitial(&InitialSpec{Config: "bernoulli", Density: 0.3, Seed: 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Coloring.Equal(c.Coloring) {
		t.Fatal("different seeds produced identical configurations")
	}
	frac := float64(a.Coloring.Count(1)) / float64(32*32)
	if frac < 0.22 || frac > 0.38 {
		t.Fatalf("realized density %.3f far from 0.3", frac)
	}
}

// TestBernoulliInitialOnGraph checks the family works on graph substrates
// through the same spec.
func TestBernoulliInitialOnGraph(t *testing.T) {
	sys, err := New(BarabasiAlbert(200, 3, 42), Colors(2))
	if err != nil {
		t.Fatal(err)
	}
	cons, err := sys.BuildInitial(&InitialSpec{Config: "bernoulli", Density: 0.4, Seed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cons.Name != "bernoulli" {
		t.Fatalf("construction name %q", cons.Name)
	}
	n := cons.Coloring.Dims().N()
	if got := cons.Coloring.Count(1) + cons.Coloring.Count(2); got != n {
		t.Fatalf("colors outside the palette: %d of %d accounted for", got, n)
	}
}

// TestStochasticKernelGatingWire checks the engine's sweep-only pinning
// surfaces through the public API with the exported error.
func TestStochasticKernelGatingWire(t *testing.T) {
	sys, err := New(Mesh(8, 8), Colors(3))
	if err != nil {
		t.Fatal(err)
	}
	initial := sys.RandomColoring(1)
	if _, err := sys.Run(context.Background(), initial, UniformAsync(0.5, 1), Kernel(KernelBitplane)); !errors.Is(err, ErrStochasticSweepOnly) {
		t.Fatalf("bitplane + uniform-async: got %v, want ErrStochasticSweepOnly", err)
	}
	if _, err := sys.Run(context.Background(), initial, Sequential(), Kernel(KernelParallel)); !errors.Is(err, ErrStochasticSweepOnly) {
		t.Fatalf("parallel + sequential: got %v, want ErrStochasticSweepOnly", err)
	}
	if _, err := sys.Run(context.Background(), initial, WithSchedule(&ScheduleSpec{Mode: "no-such-mode"})); err == nil {
		t.Fatal("unknown schedule mode accepted")
	}
}

// TestNoisyZeroEpsClearsNoise pins the Noisy(0, ...) escape hatch used by
// ensemble sweeps that include a noise-free point on the ε axis.
func TestNoisyZeroEpsClearsNoise(t *testing.T) {
	rs := runSpecOf([]RunOption{Noisy(0.2, 7), Noisy(0, 0)})
	if rs.Noise != nil {
		t.Fatalf("Noisy(0) left %+v", rs.Noise)
	}
}
