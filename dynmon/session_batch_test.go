package dynmon_test

import (
	"context"
	"encoding/json"
	"testing"

	"repro/dynmon"
	"repro/internal/sim"
)

// resultJSON flattens a Result to its wire form, the strongest equality the
// API promises: every exported field, including kernel/worker metadata.
func resultJSON(t *testing.T, res *dynmon.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// twoColorSystem builds a slice-eligible system: two colors on a torus,
// whose default smp rule has a carry-save kernel.
func twoColorSystem(t *testing.T, opts ...dynmon.Option) *dynmon.System {
	t.Helper()
	sys, err := dynmon.New(append([]dynmon.Option{dynmon.Colors(2)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSessionRunBatchSlicedTransparent pins the tentpole contract: an
// eligible ≤64-item batch takes the bit-sliced ensemble tier (observable
// through the sim package's batch counter) and every Result is
// byte-identical to a one-at-a-time System.Run with the same options.
func TestSessionRunBatchSlicedTransparent(t *testing.T) {
	sys := twoColorSystem(t, dynmon.Mesh(24, 24))
	initials := make([]*dynmon.Coloring, 64)
	for i := range initials {
		initials[i] = sys.RandomColoring(uint64(i + 1))
	}
	opts := []dynmon.RunOption{dynmon.Target(1), dynmon.StopWhenMonochromatic(), dynmon.DetectCycles()}

	before := sim.BitsliceBatches()
	results, err := sys.NewSession(4).RunBatch(context.Background(), initials, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.BitsliceBatches() - before; got != 1 {
		t.Errorf("sliced batches = %d, want 1 (fast path not engaged)", got)
	}
	for i, initial := range initials {
		want, err := sys.Run(context.Background(), initial, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if results[i] == nil {
			t.Fatalf("result %d is nil", i)
		}
		if got, exp := resultJSON(t, results[i]), resultJSON(t, want); got != exp {
			t.Fatalf("result %d drifted from scalar run:\nbatch:  %s\nscalar: %s", i, got, exp)
		}
	}
}

// TestSessionRunBatchTilesLargeBatches pins the >64 shape: a 150-item batch
// splits into three sliced tiles over the worker pool and stays
// bit-identical to scalar runs at the tile seams.
func TestSessionRunBatchTilesLargeBatches(t *testing.T) {
	sys := twoColorSystem(t, dynmon.Mesh(12, 12))
	initials := make([]*dynmon.Coloring, 150)
	for i := range initials {
		initials[i] = sys.RandomColoring(uint64(i + 1))
	}

	before := sim.BitsliceBatches()
	results, err := sys.NewSession(4).RunBatch(context.Background(), initials, dynmon.MaxRounds(80))
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.BitsliceBatches() - before; got != 3 {
		t.Errorf("sliced batches = %d, want 3 tiles", got)
	}
	// Spot-check the tile seams and ends; full-matrix parity is pinned by
	// the 64-lane test above and the internal/sim differential suite.
	for _, i := range []int{0, 63, 64, 127, 128, 149} {
		want, err := sys.Run(context.Background(), initials[i], dynmon.MaxRounds(80))
		if err != nil {
			t.Fatal(err)
		}
		if got, exp := resultJSON(t, results[i]), resultJSON(t, want); got != exp {
			t.Fatalf("result %d drifted from scalar run", i)
		}
	}
}

// TestSessionRunBatchFallbackParity pins the fallback: a palette the slicer
// cannot pack (5 colors) keeps the per-run loop, with identical results and
// no sliced batches counted.
func TestSessionRunBatchFallbackParity(t *testing.T) {
	sys, err := dynmon.New(dynmon.Mesh(12, 12)) // default 5-color palette
	if err != nil {
		t.Fatal(err)
	}
	initials := make([]*dynmon.Coloring, 40)
	for i := range initials {
		initials[i] = sys.RandomColoring(uint64(i + 1))
	}

	before := sim.BitsliceBatches()
	results, err := sys.NewSession(4).RunBatch(context.Background(), initials, dynmon.Target(1), dynmon.DetectCycles())
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.BitsliceBatches() - before; got != 0 {
		t.Errorf("sliced batches = %d, want 0 for a 5-color ensemble", got)
	}
	for i, initial := range initials {
		want, err := sys.Run(context.Background(), initial, dynmon.Target(1), dynmon.DetectCycles())
		if err != nil {
			t.Fatal(err)
		}
		if got, exp := resultJSON(t, results[i]), resultJSON(t, want); got != exp {
			t.Fatalf("result %d drifted from scalar run", i)
		}
	}
}

// TestSessionRunBatchMixedTiles pins per-tile eligibility: when one tile of
// a batch holds a lane the packer rejects (a third color), only that tile
// falls back while the rest stay sliced — and the output is seamless.
func TestSessionRunBatchMixedTiles(t *testing.T) {
	sys, err := dynmon.New(dynmon.Mesh(12, 12), dynmon.Colors(3))
	if err != nil {
		t.Fatal(err)
	}
	initials := make([]*dynmon.Coloring, 128)
	for i := range initials {
		c := sys.RandomColoring(uint64(i + 1))
		for v, cell := range c.Cells() {
			if cell > 2 {
				c.Cells()[v] = 1
			}
		}
		initials[i] = c
	}
	// Poison one lane of the second tile with the third color.
	initials[100].Cells()[7] = 3

	before := sim.BitsliceBatches()
	results, err := sys.NewSession(4).RunBatch(context.Background(), initials, dynmon.MaxRounds(60))
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.BitsliceBatches() - before; got != 1 {
		t.Errorf("sliced batches = %d, want 1 (first tile sliced, second fell back)", got)
	}
	for _, i := range []int{0, 63, 64, 100, 127} {
		want, err := sys.Run(context.Background(), initials[i], dynmon.MaxRounds(60))
		if err != nil {
			t.Fatal(err)
		}
		if got, exp := resultJSON(t, results[i]), resultJSON(t, want); got != exp {
			t.Fatalf("result %d drifted from scalar run", i)
		}
	}
}

// TestSessionVerifyBatchSliced pins that the verification wrapper rides the
// same fast path and its Reports match one-at-a-time VerifyColoring.
func TestSessionVerifyBatchSliced(t *testing.T) {
	sys := twoColorSystem(t, dynmon.Mesh(16, 16))
	initials := make([]*dynmon.Coloring, 48)
	for i := range initials {
		initials[i] = sys.RandomColoring(uint64(i + 1))
	}

	before := sim.BitsliceBatches()
	reports, err := sys.NewSession(4).VerifyBatch(context.Background(), initials, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.BitsliceBatches() - before; got != 1 {
		t.Errorf("sliced batches = %d, want 1", got)
	}
	for i, initial := range initials {
		want := sys.VerifyColoring(initial, 1)
		got := reports[i]
		if got == nil {
			t.Fatalf("report %d is nil", i)
		}
		if got.IsDynamo != want.IsDynamo || got.Rounds != want.Rounds ||
			got.Monotone != want.Monotone || got.SeedSize != want.SeedSize {
			t.Fatalf("report %d drifted: batch %+v vs sequential %+v", i, got, want)
		}
		if gotJSON, expJSON := resultJSON(t, got.Result), resultJSON(t, want.Result); gotJSON != expJSON {
			t.Fatalf("report %d result drifted from scalar run", i)
		}
	}
}
