package dynmon_test

import (
	"context"
	"testing"

	"repro/dynmon"
)

// TestSessionBufferReuseParity runs the same batch through a buffer-reusing
// session, a fresh-buffers session and one-at-a-time full-sweep runs, and
// requires bit-identical results from all three.
func TestSessionBufferReuseParity(t *testing.T) {
	sys, err := dynmon.New(dynmon.Mesh(12, 12), dynmon.Colors(5))
	if err != nil {
		t.Fatal(err)
	}
	initials := make([]*dynmon.Coloring, 8)
	for i := range initials {
		initials[i] = sys.RandomColoring(uint64(100 + i))
	}

	ctx := context.Background()
	reuse := sys.NewSession(3)
	if !reuse.ReusesBuffers() {
		t.Fatal("sessions must reuse engine buffers by default")
	}
	fresh := sys.NewSession(3, dynmon.ReuseEngineBuffers(false))
	if fresh.ReusesBuffers() {
		t.Fatal("ReuseEngineBuffers(false) did not stick")
	}

	opts := []dynmon.RunOption{dynmon.MaxRounds(60), dynmon.DetectCycles()}
	got, err := reuse.RunBatch(ctx, initials, opts...)
	if err != nil {
		t.Fatal(err)
	}
	gotFresh, err := fresh.RunBatch(ctx, initials, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range initials {
		oracle, err := sys.Run(ctx, initials[i], append(opts, dynmon.FullSweep())...)
		if err != nil {
			t.Fatal(err)
		}
		for label, res := range map[string]*dynmon.Result{"reuse": got[i], "fresh": gotFresh[i]} {
			if res.Rounds != oracle.Rounds || !res.Final.Equal(oracle.Final) || res.Cycle != oracle.Cycle {
				t.Fatalf("batch item %d (%s session) diverged from the full-sweep oracle", i, label)
			}
		}
	}
}

// TestFullSweepOptionParity pins the public oracle knob: frontier (default)
// and full-sweep runs of the same system agree.
func TestFullSweepOptionParity(t *testing.T) {
	sys, err := dynmon.New(dynmon.Serpentinus(8, 10), dynmon.Colors(4), dynmon.WithRule("simple-majority-pb"))
	if err != nil {
		t.Fatal(err)
	}
	initial := sys.RandomColoring(7)
	ctx := context.Background()
	front, err := sys.Run(ctx, initial, dynmon.MaxRounds(50), dynmon.Target(2))
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := sys.Run(ctx, initial, dynmon.MaxRounds(50), dynmon.Target(2), dynmon.FullSweep())
	if err != nil {
		t.Fatal(err)
	}
	if front.Rounds != sweep.Rounds || !front.Final.Equal(sweep.Final) || front.MonotoneTarget != sweep.MonotoneTarget {
		t.Fatal("FullSweep and frontier runs diverged")
	}
}
