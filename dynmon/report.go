package dynmon

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ascii"
	"repro/internal/dynamo"
)

// Report is the outcome of verifying a configuration.  The JSON field tags
// are a stable wire contract — reports serve directly over the wire, with
// no second DTO layer (see TestReportJSONStable).
type Report struct {
	// Construction names the verified configuration.
	Construction string `json:"construction"`
	// SeedSize, LowerBound and Rounds summarize the run.
	SeedSize   int `json:"seed_size"`
	LowerBound int `json:"lower_bound"`
	Rounds     int `json:"rounds"`
	// PredictedRounds is the Theorem 7/8 value for the topology.
	PredictedRounds int `json:"predicted_rounds"`
	// IsDynamo, Monotone and ConditionsOK are the three judgements of the
	// paper's framework.
	IsDynamo     bool `json:"is_dynamo"`
	Monotone     bool `json:"monotone"`
	ConditionsOK bool `json:"conditions_ok"`
	// Result is the underlying simulation trace.
	Result *Result `json:"result,omitempty"`
}

// Summary renders the report as a short human-readable paragraph.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: seed %d (lower bound %d), ", r.Construction, r.SeedSize, r.LowerBound)
	if r.IsDynamo {
		fmt.Fprintf(&b, "monochromatic after %d rounds (paper formula: %d)", r.Rounds, r.PredictedRounds)
	} else {
		fmt.Fprintf(&b, "did NOT reach the monochromatic configuration (%d rounds simulated)", r.Rounds)
	}
	fmt.Fprintf(&b, "; monotone=%v, theorem conditions hold=%v", r.Monotone, r.ConditionsOK)
	return b.String()
}

// verifySpec is the run description every dynamo judgement runs with.
func verifySpec(target Color) RunSpec {
	return RunSpec{
		Target:                target,
		StopWhenMonochromatic: true,
		DetectCycles:          true,
	}
}

// reportFromResult assembles the standard dynamo judgement of a finished
// run; it is the single place where Result fields become Report fields.
func (s *System) reportFromResult(name string, seedSize int, target Color, res *Result) *Report {
	return &Report{
		Construction:    name,
		SeedSize:        seedSize,
		LowerBound:      s.LowerBound(),
		Rounds:          res.Rounds,
		PredictedRounds: s.PredictedRounds(),
		IsDynamo:        res.Monochromatic && res.FinalColor == target,
		Monotone:        res.MonotoneTarget,
		Result:          res,
	}
}

// ReportFor assembles the standard dynamo judgement of an already-finished
// run on a named construction — the report the CLI tools print.  It is
// Verify without the run: callers that drove the simulation themselves
// (through Run, Steps or a spec file) hand in the result.  The
// theorem-condition check applies when it can: the SMP rule on a torus
// construction.
func (s *System) ReportFor(cons *Construction, res *Result) *Report {
	rep := s.reportFromResult(cons.Name, len(cons.Seed), cons.Target, res)
	if s.rule.Name() == "smp" && s.topo != nil && cons.Topology != nil {
		rep.ConditionsOK = dynamo.CheckTheoremConditions(cons) == nil
	}
	return rep
}

// Verify runs the system's rule on a construction and summarizes the
// outcome against the paper's bounds and theorem conditions.
func (s *System) Verify(c *Construction) *Report {
	rep := s.VerifyColoring(c.Coloring, c.Target)
	rep.Construction = c.Name
	rep.SeedSize = c.SeedSize()
	rep.ConditionsOK = dynamo.CheckTheoremConditions(c) == nil
	return rep
}

// VerifyColoring is Verify for an arbitrary initial coloring and target,
// judged under the system's own rule (not necessarily the SMP-Protocol).
// It runs on the system's cached engine, so repeated verification does not
// rebuild adjacency tables.
func (s *System) VerifyColoring(initial *Coloring, target Color) *Report {
	// verifySpec has no kernel or availability spec to lower, so this cannot
	// fail.
	opt, err := verifySpec(target).engineOptions(s.palette.K)
	if err != nil {
		panic(err)
	}
	res := s.engine.Run(initial, opt)
	return s.reportFromResult("custom coloring", initial.Count(target), target, res)
}

// TimingMatrix returns the per-vertex recoloring times of a configuration
// (the data of the paper's Figures 5 and 6) together with its ASCII
// rendering.
func (s *System) TimingMatrix(initial *Coloring, target Color) ([][]int, string) {
	m, _ := analysis.TimingMatrix(s.topo, initial, target)
	return m, ascii.IntMatrix(m)
}

// Render renders a coloring as a bordered ASCII grid with a legend; the
// highlight color (if not None) is drawn as 'B' to match the paper's
// black-node figures.
func Render(c *Coloring, highlight Color) string { return ascii.Coloring(c, highlight) }

// RenderIntMatrix renders an integer matrix with aligned columns, in the
// style of the paper's Figures 5 and 6.
func RenderIntMatrix(m [][]int) string { return ascii.IntMatrix(m) }

// Banner renders a one-line section header.
func Banner(title string) string { return ascii.Banner(title) }
