// Package dynmon is the public API of the repository: dynamic monopolies
// ("dynamos") on colored tori under the SMP-Protocol of Brunetti, Lodi and
// Quattrociocchi (IPPS Workshops 2011, arXiv:1101.5915), plus the baseline
// rules and topologies the paper compares against.
//
// It replaces the former internal/core façade as the supported surface.  A
// System bundles a topology, a palette and a recoloring rule, built with
// functional options:
//
//	sys, err := dynmon.New(dynmon.Mesh(9, 9), dynmon.Colors(5), dynmon.WithRule("smp"))
//
// Simulation is context-aware — Run honors cancellation and deadlines at
// every round boundary:
//
//	res, err := sys.Run(ctx, initial, dynmon.Target(1), dynmon.StopWhenMonochromatic())
//
// Observers (OnRound/OnFinish) watch a run as it evolves; the package ships
// a history recorder, an ASCII animator and a stats collector.  A Session
// fans a batch of initial colorings across a bounded worker pool over one
// shared engine, with bit-identical results to one-at-a-time runs.
//
// Rules and topologies are pluggable: RegisterRule and RegisterTopology add
// new implementations resolvable by name, without forking the repository.
package dynmon

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/color"
	"repro/internal/dynamo"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
	"repro/internal/sim"
)

// Aliases re-export the domain types of the internal packages so callers of
// the public API can name them without importing internal paths (which the
// Go toolchain forbids outside this module).
type (
	// Color is one element of the finite color set C = {1..k}.
	Color = color.Color
	// Coloring is a total color assignment over the torus vertices.
	Coloring = color.Coloring
	// Palette is the finite ordered color set C = {1..K}.
	Palette = color.Palette
	// Rule is a local, deterministic recoloring rule.
	Rule = rules.Rule
	// Topology is a 4-regular interaction topology over an m×n lattice.
	Topology = grid.Topology
	// Dims describes the size of an m×n torus.
	Dims = grid.Dims
	// Result describes a finished simulation run.
	Result = sim.Result
	// Observer receives the evolution of a run round by round.
	Observer = sim.Observer
	// Construction is a seed-plus-padding configuration from the paper.
	Construction = dynamo.Construction
	// Experiment is one entry of the paper's experiment index (E01..E18).
	Experiment = analysis.Experiment
)

// None is the zero Color, meaning "no color".
const None = color.None

// System bundles a torus topology, a palette and a recoloring rule, and
// owns the simulation engine that evolves colorings under them.  A System
// is immutable after New and safe for concurrent use.
type System struct {
	topo    Topology
	palette Palette
	rule    Rule
	engine  *sim.Engine
}

// New builds a System from functional options.  The zero configuration is
// the paper's running example — a 9×9 toroidal mesh, five colors and the
// SMP-Protocol — so every option is optional:
//
//	sys, err := dynmon.New(dynmon.Mesh(9, 9), dynmon.Colors(5), dynmon.WithRule("smp"))
func New(opts ...Option) (*System, error) {
	cfg := Config{
		TopologyName: "toroidal-mesh",
		Rows:         9,
		Cols:         9,
		Colors:       5,
		RuleName:     "smp",
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return NewFromConfig(cfg)
}

// NewFromConfig builds a System from an explicit Config; New is the
// options-based front end.  Instance fields (Topology, Rule) win over the
// corresponding name fields.
func NewFromConfig(cfg Config) (*System, error) {
	topo := cfg.Topology
	if topo == nil {
		var err error
		topo, err = grid.ByName(cfg.TopologyName, cfg.Rows, cfg.Cols)
		if err != nil {
			return nil, err
		}
	}
	p, err := color.NewPalette(cfg.Colors)
	if err != nil {
		return nil, err
	}
	rule := cfg.Rule
	if rule == nil {
		rule, err = rules.ByName(cfg.RuleName)
		if err != nil {
			return nil, err
		}
	}
	return &System{
		topo:    topo,
		palette: p,
		rule:    rule,
		engine:  sim.NewEngine(topo, rule),
	}, nil
}

// Topology returns the system's interaction topology.
func (s *System) Topology() Topology { return s.topo }

// Palette returns the system's color set.
func (s *System) Palette() Palette { return s.palette }

// Rule returns the system's recoloring rule.
func (s *System) Rule() Rule { return s.rule }

// Dims returns the lattice dimensions.
func (s *System) Dims() Dims { return s.topo.Dims() }

// String renders the system as "topology RxC, K colors, rule".
func (s *System) String() string {
	d := s.topo.Dims()
	return fmt.Sprintf("%s %dx%d, %d colors, rule %s", s.topo.Name(), d.Rows, d.Cols, s.palette.K, s.rule.Name())
}

// Run evolves the initial coloring under the system's rule until a stop
// condition holds, honoring the context at every round boundary: when ctx
// is canceled or its deadline passes the run stops promptly and returns the
// partial Result together with ctx.Err().  The initial coloring is not
// modified.
func (s *System) Run(ctx context.Context, initial *Coloring, opts ...RunOption) (*Result, error) {
	return s.engine.RunContext(ctx, initial, buildRunOptions(opts))
}

// NewColoring returns a coloring of the system's dimensions with every
// vertex set to fill (use None to leave it unset).
func (s *System) NewColoring(fill Color) *Coloring {
	return color.NewColoring(s.topo.Dims(), fill)
}

// RandomColoring returns a uniformly random coloring of the system's torus,
// deterministic in the seed.
func (s *System) RandomColoring(seed uint64) *Coloring {
	src := rng.New(seed)
	return color.RandomColoring(s.topo.Dims(), s.palette, func() int { return src.Intn(s.palette.K) })
}

// MinimumDynamo builds the paper's tight construction for the system's
// topology: Theorem 2 for the toroidal mesh, Theorem 4 for the torus
// cordalis and Theorem 6 for the torus serpentinus.
func (s *System) MinimumDynamo(target Color) (*Construction, error) {
	d := s.topo.Dims()
	return dynamo.Minimum(s.topo.Kind(), d.Rows, d.Cols, target, s.palette)
}

// LowerBound returns the paper's lower bound on the size of a monotone
// dynamo for the system's topology and size.
func (s *System) LowerBound() int {
	return dynamo.LowerBound(s.topo.Kind(), s.topo.Dims())
}

// PredictedRounds returns the Theorem 7/8 convergence-time prediction for
// the system's topology and size.
func (s *System) PredictedRounds() int {
	return dynamo.PredictedRounds(s.topo.Kind(), s.topo.Dims())
}

// NewPalette returns the palette {1..k}, or an error for k < 1.
func NewPalette(k int) (Palette, error) { return color.NewPalette(k) }
