// Package dynmon is the public API of the repository: dynamic monopolies
// ("dynamos") on colored tori under the SMP-Protocol of Brunetti, Lodi and
// Quattrociocchi (IPPS Workshops 2011, arXiv:1101.5915), plus the baseline
// rules and topologies the paper compares against, and the general-graph
// and time-varying extensions its conclusions call for.
//
// It replaces the former internal/core façade as the supported surface.  A
// System bundles a substrate, a palette and a recoloring rule, built with
// functional options:
//
//	sys, err := dynmon.New(dynmon.Mesh(9, 9), dynmon.Colors(5), dynmon.WithRule("smp"))
//
// Substrates are not limited to the three tori: the same tiered engine
// steps arbitrary graphs, so scale-free and small-world systems are one
// option away (with the degree-aware "generalized-smp" rule as their
// default):
//
//	sys, err := dynmon.New(dynmon.BarabasiAlbert(10000, 2, 7), dynmon.Colors(2))
//
// Simulation is context-aware — Run honors cancellation and deadlines at
// every round boundary:
//
//	res, err := sys.Run(ctx, initial, dynmon.Target(1), dynmon.StopWhenMonochromatic())
//
// The whole surface is spec-driven: a System round-trips through a
// JSON-serializable Spec (ParseSpec, Spec.New, System.Spec) and a run
// through a RunSpec — the functional options are thin adapters over both,
// so the imperative and declarative paths cannot drift.  Runs stream as
// pull-based step sequences (System.Steps, an iter.Seq2 with one Step per
// round; early break = cancellation, bit-identical to Run), and any step —
// or a canceled run's partial Result — emits a serializable Checkpoint that
// System.Resume continues bit-identically to an uninterrupted run, in this
// process or another.
//
// The TimeVarying run option masks link availability per round (Bernoulli
// churn, node faults, duty cycling — or any Availability implementation),
// the intermittent-network model from the paper's conclusions.
//
// Every run picks a stepping tier (word-parallel bitplane, dirty frontier,
// striped parallel, domain-decomposed sharded, or the sequential sweep
// oracle) automatically; all tiers are bit-identical, Kernel forces one,
// and Result.Kernel reports the tier used.  Parallel(n) runs on large
// substrates take the sharded tier — per-worker shards stepped from
// shard-local buffers with a per-round halo exchange — which, unlike the
// striped sweep, actually scales with the worker count.
//
// Observers (OnRound/OnFinish) watch a run as it evolves; the package ships
// a history recorder, an ASCII animator and a stats collector.  Observer
// delivery is one adapter over the step stream, so observed and unobserved
// runs cannot diverge.  A Session fans a batch of initial colorings across
// a bounded worker pool over one shared engine, with bit-identical results
// to one-at-a-time runs.  For two-color ensembles on bitplane-eligible
// substrates, Session.RunBatch transparently steps up to 64 replicas per
// word on a bit-sliced tier (replica r rides bit r of each vertex's word;
// per-lane masks freeze finished replicas), tiling larger batches across
// the pool and falling back to the per-run loop when ineligible — same
// API, same Result bytes either way.  Batches are spec-addressable too:
// a BatchSpec (one system + run section, many initial items) round-trips
// through ParseBatchSpec, digests as a whole (BatchSpec.Digest) and per
// item (BatchSpec.ItemDigest, equal to the digest of the item's
// equivalent single-run FileSpec), and drives both the dynamosim
// -batch-spec CLI mode and dynserve's POST /v1/batch endpoint.  Greedy
// target-set selection is spec-shaped as well: System.TargetSet takes a
// serializable TargetSetSpec (zero values mean defaults) and scores
// candidate seeds on the sliced tier.
//
// Dynamics need not be deterministic or synchronous: the WithSchedule /
// UniformAsync / Sequential / RandomSequential / VertexClock options pick
// which vertices fire each round, and Noisy(eps, seed) makes the rule
// ε-faulty (after each application the vertex adopts a uniformly random
// other color with probability eps).  Every random bit comes from
// counter-based hashes of (seed, round, vertex), so stochastic runs stay
// pure functions of their spec — bit-identical across worker counts and
// checkpoint/resume, with the schedule and noise seeds riding RunSpec and
// Checkpoint automatically.  The Monte-Carlo harness on top is Ensemble:
// an EnsembleSpec (system + run + replica count + master seed + optional
// one-axis sweep over density/eps/p/threshold) fans counter-seeded
// replicas through a Session — deterministic points ride the bit-sliced
// batch tier — and aggregates an EnsembleReport with Wilson 95% takeover
// intervals and rounds-to-takeover quantiles, byte-identical for any
// worker count.  ParseEnsembleSpec is strict and fuzzed;
// EnsembleSpec.Digest is the content address dynserve's POST /v1/ensembles
// caches by.
//
// Rules, topologies and graph generators are pluggable: RegisterRule,
// RegisterTopology and RegisterGenerator add new implementations resolvable
// by name — in options and in specs — without forking the repository.
//
// Because specs canonicalize (Spec.Canonical) and runs are deterministic,
// every run has a stable content address: Spec.Digest and FileSpec.Digest
// hash the canonical wire form, and equal digests imply byte-identical
// terminal Results.  The repro/dynserve package (and its cmd/dynmond
// binary) builds on exactly this contract to serve runs over HTTP with a
// provably-correct result cache and checkpointed, resumable jobs.
package dynmon

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/color"
	"repro/internal/dynamo"
	"repro/internal/graphs"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
	"repro/internal/sim"
)

// Aliases re-export the domain types of the internal packages so callers of
// the public API can name them without importing internal paths (which the
// Go toolchain forbids outside this module).
type (
	// Color is one element of the finite color set C = {1..k}.
	Color = color.Color
	// Coloring is a total color assignment over the torus vertices.
	Coloring = color.Coloring
	// Palette is the finite ordered color set C = {1..K}.
	Palette = color.Palette
	// Rule is a local, deterministic recoloring rule.
	Rule = rules.Rule
	// Topology is a 4-regular interaction topology over an m×n lattice.
	Topology = grid.Topology
	// Dims describes the size of an m×n torus.
	Dims = grid.Dims
	// Result describes a finished simulation run.
	Result = sim.Result
	// Observer receives the evolution of a run round by round.
	Observer = sim.Observer
	// Construction is a seed-plus-padding configuration from the paper.
	Construction = dynamo.Construction
	// Experiment is one entry of the paper's experiment index (E01..E18).
	Experiment = analysis.Experiment
)

// None is the zero Color, meaning "no color".
const None = color.None

// System bundles a substrate — a torus topology or a general graph — with a
// palette and a recoloring rule, and owns the simulation engine that
// evolves colorings under them.  A System is immutable after New and safe
// for concurrent use.
type System struct {
	topo    Topology      // nil for graph systems
	graph   *GeneralGraph // nil for torus systems
	palette Palette
	rule    Rule
	engine  *sim.Engine
	// spec is the canonical declarative description when the system was
	// built through the spec path (names, generators, spec files); nil for
	// instance-built systems, whose Spec() derives one on demand.
	spec *Spec
}

// New builds a System from functional options.  The zero configuration is
// the paper's running example — a 9×9 toroidal mesh, five colors and the
// SMP-Protocol — so every option is optional:
//
//	sys, err := dynmon.New(dynmon.Mesh(9, 9), dynmon.Colors(5), dynmon.WithRule("smp"))
func New(opts ...Option) (*System, error) {
	cfg := Config{
		TopologyName: "toroidal-mesh",
		Rows:         9,
		Cols:         9,
		Colors:       5,
		RuleName:     "smp",
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return NewFromConfig(cfg)
}

// NewFromConfig builds a System from an explicit Config; New is the
// options-based front end.  Instance fields win over the corresponding name
// fields, and a Graph substrate wins over the generator and both topology
// fields.  Graph systems whose rule is the (default) "smp" name resolve it
// to "generalized-smp", the degree-aware form of the same protocol — on
// 4-regular substrates the two are bit-identical (pinned by differential
// tests), and on irregular graphs only the generalized form has the
// intended ⌈d/2⌉ majority semantics.
//
// Whenever the Config names everything (no pre-built instances), it reduces
// to a Spec and builds through Spec.New — the one constructor — so the
// imperative and declarative paths cannot drift, and the resulting system
// is spec-serializable (System.Spec).
func NewFromConfig(cfg Config) (*System, error) {
	if sp, ok := cfg.spec(); ok {
		return sp.New()
	}
	var (
		topo  Topology
		graph = cfg.Graph
		err   error
	)
	if graph == nil && cfg.Generator != nil && cfg.Topology == nil {
		gen := cfg.Generator
		graph, err = graphs.GenerateByName(gen.Name, gen.N, gen.Params, gen.Seed)
		if err != nil {
			return nil, err
		}
	}
	if graph == nil {
		topo = cfg.Topology
		if topo == nil {
			topo, err = grid.ByName(cfg.TopologyName, cfg.Rows, cfg.Cols)
			if err != nil {
				return nil, err
			}
		}
	}
	p, err := color.NewPalette(cfg.Colors)
	if err != nil {
		return nil, err
	}
	rule := cfg.Rule
	if rule == nil {
		name := cfg.RuleName
		if graph != nil && name == "smp" {
			name = "generalized-smp"
		}
		rule, err = rules.ByName(name)
		if err != nil {
			return nil, err
		}
	}
	s := &System{
		topo:    topo,
		graph:   graph,
		palette: p,
		rule:    rule,
	}
	if graph != nil {
		s.engine = graph.EngineFor(rule)
	} else {
		s.engine = sim.NewEngine(topo, rule)
	}
	return s, nil
}

// Topology returns the system's torus topology, or nil for a graph system.
func (s *System) Topology() Topology { return s.topo }

// Graph returns the system's general graph, or nil for a torus system.
func (s *System) Graph() *GeneralGraph { return s.graph }

// Palette returns the system's color set.
func (s *System) Palette() Palette { return s.palette }

// Rule returns the system's recoloring rule.
func (s *System) Rule() Rule { return s.rule }

// Dims returns the substrate's vertex layout: the lattice dimensions of a
// torus system, or the degenerate 1×n line of a graph system.
func (s *System) Dims() Dims { return s.engine.Substrate().Dims() }

// N returns the number of vertices.
func (s *System) N() int { return s.Dims().N() }

// String renders the system as "substrate, K colors, rule".
func (s *System) String() string {
	if s.graph != nil {
		return fmt.Sprintf("graph n=%d m=%d, %d colors, rule %s", s.graph.N(), s.graph.EdgeCount(), s.palette.K, s.rule.Name())
	}
	d := s.topo.Dims()
	return fmt.Sprintf("%s %dx%d, %d colors, rule %s", s.topo.Name(), d.Rows, d.Cols, s.palette.K, s.rule.Name())
}

// Run evolves the initial coloring under the system's rule until a stop
// condition holds, honoring the context at every round boundary: when ctx
// is canceled or its deadline passes the run stops promptly and returns the
// partial Result together with ctx.Err().  The initial coloring is not
// modified.
//
// The options fold into a RunSpec — Run and a spec file describe a run the
// same way — and Run itself is a drain of the Steps stream.
func (s *System) Run(ctx context.Context, initial *Coloring, opts ...RunOption) (*Result, error) {
	rs := runSpecOf(opts)
	if rs.cpEvery > 0 {
		// The CheckpointEvery cadence lives in the public stream wrapper;
		// honor it by draining the stream — which is all RunContext does
		// anyway, so the result is bit-identical.
		return drainSteps(s.stepsSpec(ctx, initial, rs))
	}
	opt, err := rs.engineOptions(s.palette.K)
	if err != nil {
		return nil, err
	}
	return s.engine.RunContext(ctx, initial, opt)
}

// RunSpecced is Run driven entirely by a parsed RunSpec, the spec-file path
// of the CLI tools; extra options apply on top of the spec.
func (s *System) RunSpecced(ctx context.Context, initial *Coloring, spec RunSpec, opts ...RunOption) (*Result, error) {
	return s.Run(ctx, initial, append([]RunOption{WithRunSpec(spec)}, opts...)...)
}

// NewColoring returns a coloring of the system's dimensions with every
// vertex set to fill (use None to leave it unset).
func (s *System) NewColoring(fill Color) *Coloring {
	return color.NewColoring(s.Dims(), fill)
}

// RandomColoring returns a uniformly random coloring of the system's
// substrate, deterministic in the seed.
func (s *System) RandomColoring(seed uint64) *Coloring {
	src := rng.New(seed)
	return color.RandomColoring(s.Dims(), s.palette, func() int { return src.Intn(s.palette.K) })
}

// MinimumDynamo builds the paper's tight construction for the system's
// topology: Theorem 2 for the toroidal mesh, Theorem 4 for the torus
// cordalis and Theorem 6 for the torus serpentinus.  Graph systems have no
// such closed-form construction and return an error; use the target-set
// helpers (SeedTopByDegree, GreedyTargetSet) instead.
func (s *System) MinimumDynamo(target Color) (*Construction, error) {
	if s.topo == nil {
		return nil, fmt.Errorf("dynmon: MinimumDynamo requires a torus topology; graph systems use the target-set helpers")
	}
	d := s.topo.Dims()
	return dynamo.Minimum(s.topo.Kind(), d.Rows, d.Cols, target, s.palette)
}

// LowerBound returns the paper's lower bound on the size of a monotone
// dynamo for the system's topology and size, or 0 for a graph system (the
// paper proves no general-graph bound).
func (s *System) LowerBound() int {
	if s.topo == nil {
		return 0
	}
	return dynamo.LowerBound(s.topo.Kind(), s.topo.Dims())
}

// PredictedRounds returns the Theorem 7/8 convergence-time prediction for
// the system's topology and size, or 0 for a graph system.
func (s *System) PredictedRounds() int {
	if s.topo == nil {
		return 0
	}
	return dynamo.PredictedRounds(s.topo.Kind(), s.topo.Dims())
}

// NewPalette returns the palette {1..k}, or an error for k < 1.
func NewPalette(k int) (Palette, error) { return color.NewPalette(k) }
