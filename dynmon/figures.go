package dynmon

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ascii"
	"repro/internal/color"
	"repro/internal/dynamo"
)

// Experiments returns the full experiment index (E01..E18) that regenerates
// every table and figure of the paper.
func Experiments() []Experiment { return analysis.All() }

// ExperimentByID returns one experiment of the index (e.g. "E07").
func ExperimentByID(id string) (Experiment, bool) { return analysis.ByID(id) }

// ExportFormat selects the on-disk format of exported experiment tables.
type ExportFormat = analysis.ExportFormat

// Export formats for ExportExperiments.
const (
	FormatText     = analysis.FormatText
	FormatCSV      = analysis.FormatCSV
	FormatMarkdown = analysis.FormatMarkdown
)

// ExportExperiments writes one file per experiment into dir and returns the
// paths written.
func ExportExperiments(dir string, experiments []Experiment, format ExportFormat) ([]string, error) {
	return analysis.Export(dir, experiments, format)
}

// Figure regenerates one of the paper's figures (1-6) as ASCII art plus a
// short caption.
func Figure(number int) (string, error) {
	p5 := color.MustPalette(5)
	switch number {
	case 1:
		c, err := dynamo.Figure1(1, p5)
		if err != nil {
			return "", err
		}
		return ascii.Banner("Figure 1: a monotone dynamo of size m+n-2 = 16 on a 9x9 toroidal mesh") +
			ascii.Coloring(c.Coloring, c.Target), nil
	case 2:
		c, err := dynamo.MeshMinimum(8, 8, 1, p5)
		if err != nil {
			return "", err
		}
		return ascii.Banner("Figure 2: the Theorem 2 minimum dynamo with its padding (8x8)") +
			ascii.Coloring(c.Coloring, c.Target), nil
	case 3:
		c, err := dynamo.BlockedCross(8, 8, 1, p5)
		if err != nil {
			return "", err
		}
		return ascii.Banner("Figure 3: black nodes that do not constitute a dynamo (planted block)") +
			ascii.Coloring(c.Coloring, c.Target), nil
	case 4:
		c, err := dynamo.FrozenTiling(8, 8, 1, color.MustPalette(4))
		if err != nil {
			return "", err
		}
		return ascii.Banner("Figure 4: a configuration in which no recoloring can arise") +
			ascii.Coloring(c.Coloring, c.Target), nil
	case 5:
		c, err := dynamo.FullCross(5, 5, 1, p5)
		if err != nil {
			return "", err
		}
		m, _ := analysis.TimingMatrix(c.Topology, c.Coloring, 1)
		return ascii.Banner("Figure 5: recoloring times on the 5x5 toroidal mesh (full cross)") +
			ascii.SideBySide(ascii.IntMatrix(analysis.Figure5Reference()), ascii.IntMatrix(m), "   |   ") +
			"(left: paper, right: measured)\n", nil
	case 6:
		c, err := dynamo.CordalisMinimum(5, 5, 1, color.MustPalette(6))
		if err != nil {
			return "", err
		}
		m, _ := analysis.TimingMatrix(c.Topology, c.Coloring, 1)
		return ascii.Banner("Figure 6: recoloring times on the 5x5 torus cordalis (Theorem 4 seed)") +
			ascii.SideBySide(ascii.IntMatrix(analysis.Figure6Reference()), ascii.IntMatrix(m), "   |   ") +
			"(left: paper, right: measured)\n", nil
	default:
		return "", fmt.Errorf("dynmon: the paper has figures 1 through 6, got %d", number)
	}
}
