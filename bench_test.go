// Benchmarks that regenerate every table and figure of the paper (one
// benchmark per experiment of the E01..E18 index in DESIGN.md), plus
// micro-benchmarks of the simulation engine, the constructions and the
// padding solver.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks exist so that regenerating the paper's results
// is part of the standard tooling: each iteration rebuilds the corresponding
// experiment table from scratch.
package repro_test

import (
	"context"
	"runtime"
	"testing"

	"repro/dynmon"
	"repro/internal/analysis"
	"repro/internal/color"
	"repro/internal/dynamo"
	"repro/internal/graphs"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
	"repro/internal/sim"
	"repro/internal/tvg"
)

// benchExperiment runs one experiment generator per iteration and reports
// the number of table rows it produced.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := analysis.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	rows := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table := exp.Run()
		rows = len(table.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkE01MeshBounds(b *testing.B)      { benchExperiment(b, "E01") }
func BenchmarkE02Figure1(b *testing.B)         { benchExperiment(b, "E02") }
func BenchmarkE03Theorem2(b *testing.B)        { benchExperiment(b, "E03") }
func BenchmarkE04Counterexamples(b *testing.B) { benchExperiment(b, "E04") }
func BenchmarkE05Cordalis(b *testing.B)        { benchExperiment(b, "E05") }
func BenchmarkE06Serpentinus(b *testing.B)     { benchExperiment(b, "E06") }
func BenchmarkE07MeshRounds(b *testing.B)      { benchExperiment(b, "E07") }
func BenchmarkE08SpiralRounds(b *testing.B)    { benchExperiment(b, "E08") }
func BenchmarkE09Figure5(b *testing.B)         { benchExperiment(b, "E09") }
func BenchmarkE10Figure6(b *testing.B)         { benchExperiment(b, "E10") }
func BenchmarkE11Proposition3(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12RuleComparison(b *testing.B)  { benchExperiment(b, "E12") }
func BenchmarkE13ScaleFree(b *testing.B)       { benchExperiment(b, "E13") }
func BenchmarkE14TimeVarying(b *testing.B)     { benchExperiment(b, "E14") }
func BenchmarkE15Scalability(b *testing.B)     { benchExperiment(b, "E15") }
func BenchmarkE16PaddingAblation(b *testing.B) { benchExperiment(b, "E16") }
func BenchmarkE17SubBoundSearch(b *testing.B)  { benchExperiment(b, "E17") }
func BenchmarkE18Propagation(b *testing.B)     { benchExperiment(b, "E18") }

// randomColoring builds a reproducible random coloring for the engine
// benchmarks.
func randomColoring(seed uint64, dims grid.Dims, colors int) *color.Coloring {
	src := rng.New(seed)
	p := color.MustPalette(colors)
	return color.RandomColoring(dims, p, func() int { return src.Intn(p.K) })
}

// BenchmarkEngineStepSequential measures single-round throughput of the
// sequential stepper on random colorings.
func BenchmarkEngineStepSequential(b *testing.B) {
	for _, size := range []int{32, 64, 128, 256} {
		b.Run(grid.MustDims(size, size).String(), func(b *testing.B) {
			topo := grid.MustNew(grid.KindToroidalMesh, size, size)
			eng := sim.NewEngine(topo, rules.SMP{})
			cur := randomColoring(1, topo.Dims(), 5)
			next := cur.Clone()
			b.SetBytes(int64(topo.Dims().N()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step(cur, next)
				cur, next = next, cur
			}
		})
	}
}

// BenchmarkEngineStepParallel measures single-round throughput of the
// striped parallel stepper.  Steady-state striped stepping is
// allocation-free (pinned by TestParallelStepDoesNotAllocate and by the CI
// zero-alloc gate on this benchmark): the warm-up step below moves the
// one-time pool misses out of the timed window, and the explicit GC keeps a
// collection triggered by setup debt from evicting the engine's state pool
// mid-measurement.
func BenchmarkEngineStepParallel(b *testing.B) {
	for _, size := range []int{128, 256} {
		for _, workers := range []int{2, 4, 8} {
			name := grid.MustDims(size, size).String() + "-workers" + string(rune('0'+workers))
			b.Run(name, func(b *testing.B) {
				topo := grid.MustNew(grid.KindToroidalMesh, size, size)
				eng := sim.NewEngine(topo, rules.SMP{})
				cur := randomColoring(1, topo.Dims(), 5)
				next := cur.Clone()
				eng.StepParallel(cur, next, workers)
				runtime.GC()
				b.SetBytes(int64(topo.Dims().N()))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.StepParallel(cur, next, workers)
					cur, next = next, cur
				}
			})
		}
	}
}

// BenchmarkEngineStepSharded measures single-round throughput of the
// domain-decomposed stepper at the sizes it exists for: tori whose working
// set dwarfs any single cache hierarchy.  Each worker steps its own shard
// from shard-local double buffers; the only cross-shard traffic is the
// per-round halo exchange (two rows per shard).  The CI gate requires the
// 4-worker 4096x4096 step to beat the 1-worker step by at least 2x within
// the same run — the scaling the striped tier never achieved, and the
// reason the sharded tier exists.  Steady state is allocation-free (the
// stepper owns its buffers), pinned by the zero-alloc gate.
func BenchmarkEngineStepSharded(b *testing.B) {
	for _, size := range []int{1024, 4096} {
		topo := grid.MustNew(grid.KindToroidalMesh, size, size)
		eng := sim.NewEngine(topo, rules.SMP{})
		initial := randomColoring(1, topo.Dims(), 5)
		for _, workers := range []int{1, 2, 4, 8} {
			name := topo.Dims().String() + "-workers" + string(rune('0'+workers))
			b.Run(name, func(b *testing.B) {
				sh := eng.NewSharded(workers)
				sh.Reset(initial)
				sh.Step()
				runtime.GC()
				b.SetBytes(int64(topo.Dims().N()))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sh.Step()
				}
			})
		}
	}
}

// BenchmarkEngineStepBitplane measures single-round throughput of the
// word-parallel bit-sliced stepper on random colorings (SMP rule; the
// two-color case runs on one plane, the four-color case on two).  The
// acceptance bar — and the CI gate — is that the 256x256 two-color step is
// at least 8x faster in ns/op than BenchmarkEngineStepSequential/256x256
// within the same run, at 0 allocs/op steady state.
func BenchmarkEngineStepBitplane(b *testing.B) {
	for _, size := range []int{64, 256} {
		for _, colors := range []int{2, 4} {
			name := grid.MustDims(size, size).String()
			if colors != 2 {
				name += "-k4"
			}
			b.Run(name, func(b *testing.B) {
				topo := grid.MustNew(grid.KindToroidalMesh, size, size)
				eng := sim.NewEngine(topo, rules.SMP{})
				bp, err := eng.NewBitplane(randomColoring(1, topo.Dims(), colors))
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(topo.Dims().N()))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bp.Step()
				}
			})
		}
	}
}

// BenchmarkEngineStepNearConvergence measures the regime the frontier
// stepper was built for: a 64×64 torus whose dynamics have localized to a
// handful of cells (a period-2 Prefer-Black oscillator — two diagonal black
// cells trading places with their anti-diagonal forever), the steady state
// of late-convergence rounds.  The sweep still re-evaluates all 4096
// vertices per round; the frontier re-evaluates only the ~16 dirty ones.
// The CI gate watches both: the ratio is the frontier's reason to exist
// (≥3× is the acceptance floor; in practice it is orders of magnitude), and
// the frontier case must stay at 0 allocs/op.
func BenchmarkEngineStepNearConvergence(b *testing.B) {
	topo := grid.MustNew(grid.KindToroidalMesh, 64, 64)
	eng := sim.NewEngine(topo, rules.SimpleMajorityPB{Black: 2})
	initial := color.NewColoring(topo.Dims(), 1)
	initial.SetRC(20, 20, 2)
	initial.SetRC(21, 21, 2)

	b.Run("sweep-64x64", func(b *testing.B) {
		cur, next := initial.Clone(), initial.Clone()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if eng.Step(cur, next) == 0 {
				b.Fatal("oscillator died")
			}
			cur, next = next, cur
		}
	})
	b.Run("frontier-64x64", func(b *testing.B) {
		f := eng.NewFrontier(initial)
		f.Step()
		f.Step()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if f.Step() == 0 {
				b.Fatal("oscillator died")
			}
		}
	})
}

// BenchmarkEngineStepFrontierConvergence measures a whole dynamo run on the
// frontier stepper against the full-sweep oracle (the Theorem 7 workload,
// where the wave narrows round after round).
func BenchmarkEngineStepFrontierConvergence(b *testing.B) {
	cons, err := dynamo.MeshMinimum(64, 64, 1, color.MustPalette(5))
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.NewEngine(cons.Topology, rules.SMP{})
	for _, bench := range []struct {
		name string
		opt  sim.Options
	}{
		{"frontier-64x64", sim.Options{Target: 1, StopWhenMonochromatic: true}},
		{"sweep-64x64", sim.Options{Target: 1, StopWhenMonochromatic: true, FullSweep: true}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := eng.Run(cons.Coloring, bench.opt)
				if !res.Monochromatic {
					b.Fatal("construction failed to converge")
				}
			}
		})
	}
}

// BenchmarkSMPRule measures the rule evaluation itself.
func BenchmarkSMPRule(b *testing.B) {
	neighborhoods := [][]color.Color{
		{1, 1, 1, 1},
		{1, 1, 2, 3},
		{1, 1, 2, 2},
		{1, 2, 3, 4},
		{2, 2, 2, 5},
	}
	rule := rules.SMP{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rule.Next(5, neighborhoods[i%len(neighborhoods)])
	}
}

// BenchmarkRunToConvergence measures full dynamo runs (the workload behind
// Theorems 7 and 8).
func BenchmarkRunToConvergence(b *testing.B) {
	for _, size := range []int{16, 32, 64} {
		b.Run(grid.MustDims(size, size).String(), func(b *testing.B) {
			cons, err := dynamo.MeshMinimum(size, size, 1, color.MustPalette(5))
			if err != nil {
				b.Fatal(err)
			}
			eng := sim.NewEngine(cons.Topology, rules.SMP{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := eng.Run(cons.Coloring, sim.Options{Target: 1, StopWhenMonochromatic: true})
				if !res.Monochromatic {
					b.Fatal("construction failed to converge")
				}
			}
		})
	}
}

// BenchmarkConstruction measures how long the tight constructions (including
// the padding search) take to build.
func BenchmarkConstruction(b *testing.B) {
	cases := []struct {
		name string
		kind grid.Kind
		m, n int
	}{
		{"mesh-16x16", grid.KindToroidalMesh, 16, 16},
		{"mesh-32x32", grid.KindToroidalMesh, 32, 32},
		{"cordalis-16x16", grid.KindTorusCordalis, 16, 16},
		{"serpentinus-16x16", grid.KindTorusSerpentinus, 16, 16},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dynamo.Minimum(c.kind, c.m, c.n, 1, color.MustPalette(5)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPaddingSolver measures the randomized greedy padding solver on
// the full-cross seed.
func BenchmarkPaddingSolver(b *testing.B) {
	topo := grid.MustNew(grid.KindToroidalMesh, 16, 16)
	seed := color.NewColoring(topo.Dims(), color.None)
	seed.FillRow(0, 1)
	seed.FillCol(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dynamo.SolvePadding(topo, seed, 1, color.MustPalette(5), rng.New(uint64(i)), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlocksDetection measures k-block / non-k-block detection, the
// structural analysis behind Lemma 2.
func BenchmarkBlocksDetection(b *testing.B) {
	cons, err := dynamo.MeshMinimum(32, 32, 1, color.MustPalette(5))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dynamo.CheckTheoremConditions(cons); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleFreeSpread measures the general-graph engine on a
// Barabási–Albert network (experiment E13's inner loop).
func BenchmarkScaleFreeSpread(b *testing.B) {
	g, err := graphs.NewBarabasiAlbert(1000, 2, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	seed := graphs.SeedTopByDegree(g, 20, 1, 2)
	rule := rules.Threshold{Target: 1, Theta: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graphs.Run(g, rule, seed, 1, 500)
	}
}

// legacyGraphSweep is one round of the deleted pre-engine graphs.Run loop —
// a full sweep of every vertex, gathering each neighborhood into a scratch
// slice — preserved here as the baseline the unified engine is gated
// against.
func legacyGraphSweep(g *graphs.Graph, rule rules.Rule, cur, next *graphs.Coloring, scratch []color.Color) int {
	changed := 0
	for v := 0; v < g.N(); v++ {
		scratch = scratch[:0]
		for _, u := range g.Neighbors(v) {
			scratch = append(scratch, cur.At(u))
		}
		nc := rule.Next(cur.At(v), scratch)
		next.Set(v, nc)
		if nc != cur.At(v) {
			changed++
		}
	}
	return changed
}

// blinkerBA10k builds the 10k-vertex Barabási–Albert benchmark substrate
// with an embedded 4-cycle Prefer-Black blinker: two opposite cycle
// vertices black, two white, trading places every round forever while the
// rest of the graph stays quiet.  The gadget (pinned by
// TestBlinkerOscillatesForever on the small variant) gives the
// near-convergence benchmarks a deterministic workload whose dirty
// frontier stays a handful of vertices wide — the regime the frontier tier
// exists for, and the regime where the legacy loop's full sweeps waste the
// most work.
func blinkerBA10k(b *testing.B) (*graphs.Graph, *graphs.Coloring) {
	b.Helper()
	g, err := graphs.NewBarabasiAlbert(10000, 2, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	var gadget [4]int
	count := 0
	used := map[int]bool{}
	for v := g.N() - 1; v >= 0 && count < 4; v-- {
		if g.Degree(v) != 2 || used[v] {
			continue
		}
		clash := false
		for _, u := range g.Neighbors(v) {
			if used[u] {
				clash = true
				break
			}
		}
		if clash {
			continue
		}
		gadget[count] = v
		used[v] = true
		for _, u := range g.Neighbors(v) {
			used[u] = true
		}
		count++
	}
	if count < 4 {
		b.Fatal("could not embed the blinker gadget; change the generator seed")
	}
	u, a, v, w := gadget[0], gadget[1], gadget[2], gadget[3]
	g.AddEdge(u, a)
	g.AddEdge(a, v)
	g.AddEdge(v, w)
	g.AddEdge(w, u)
	c := graphs.NewColoring(g.N(), 1)
	c.Set(a, 2)
	c.Set(w, 2)
	return g, c
}

// BenchmarkEngineStepGraphNearConvergence is the general-graph analogue of
// BenchmarkEngineStepNearConvergence, and the acceptance gate of the
// unified-engine port: on a 10k-vertex Barabási–Albert graph whose
// dynamics have localized to the 4-vertex blinker, the engine's frontier
// step must beat one round of the legacy full-sweep loop by at least 10x
// (CI gates the within-run ratio; in practice it is orders of magnitude),
// at 0 allocs/op steady state (pinned by TestGraphFrontierStepDoesNotAllocate
// and watched by -benchmem here).
func BenchmarkEngineStepGraphNearConvergence(b *testing.B) {
	rule := rules.SimpleMajorityPB{Black: 2}

	b.Run("legacy-sweep-ba10k", func(b *testing.B) {
		g, initial := blinkerBA10k(b)
		cur, next := initial.Clone(), initial.Clone()
		scratch := make([]color.Color, 0, g.MaxDegree())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if legacyGraphSweep(g, rule, cur, next, scratch) == 0 {
				b.Fatal("blinker died")
			}
			cur, next = next, cur
		}
	})
	b.Run("frontier-ba10k", func(b *testing.B) {
		g, initial := blinkerBA10k(b)
		f := g.EngineFor(rule).NewFrontier(initial)
		f.Step()
		f.Step()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if f.Step() == 0 {
				b.Fatal("blinker died")
			}
		}
	})
}

// BenchmarkEngineRunGraphBA10k measures whole runs on the 10k-vertex
// Barabási–Albert graph — an irreversible threshold cascade from 20 hub
// seeds to its fixed point — through the unified engine and through the
// legacy full-sweep loop it replaced.
func BenchmarkEngineRunGraphBA10k(b *testing.B) {
	build := func(b *testing.B) (*graphs.Graph, *graphs.Coloring) {
		b.Helper()
		g, err := graphs.NewBarabasiAlbert(10000, 2, rng.New(1))
		if err != nil {
			b.Fatal(err)
		}
		return g, graphs.SeedTopByDegree(g, 20, 1, 2)
	}
	rule := rules.Threshold{Target: 1, Theta: 2}

	b.Run("engine", func(b *testing.B) {
		g, seed := build(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := graphs.Run(g, rule, seed, 1, 0)
			if !res.FixedPoint {
				b.Fatal("cascade did not freeze")
			}
		}
	})
	b.Run("legacy", func(b *testing.B) {
		g, seed := build(b)
		scratch := make([]color.Color, 0, g.MaxDegree())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cur, next := seed.Clone(), seed.Clone()
			rounds := 0
			for round := 1; round <= 4*g.N()+16; round++ {
				rounds = round
				if legacyGraphSweep(g, rule, cur, next, scratch) == 0 {
					break
				}
				cur, next = next, cur
			}
			if rounds >= 4*g.N()+16 {
				b.Fatal("cascade did not freeze")
			}
		}
	})
}

// BenchmarkTimeVaryingRun measures the engine's time-varying run mode
// (experiment E14's inner loop).
func BenchmarkTimeVaryingRun(b *testing.B) {
	cons, err := dynamo.MeshMinimum(9, 9, 1, color.MustPalette(5))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(cons.Topology, rules.SMP{}, cons.Coloring, sim.Options{
			TimeVarying:           tvg.Bernoulli{P: 0.95, Seed: uint64(i)},
			MaxRounds:             2000,
			StopWhenMonochromatic: true,
		})
	}
}

// BenchmarkRunBatchBitsliced measures the bit-sliced ensemble tier: 64
// replicas packed one-per-bit into each vertex's word and stepped together,
// against 64 scalar runs of the same replicas under a fixed round budget
// (so every variant executes exactly the same number of rounds and the
// comparison is pure per-round throughput, free of termination skew).
//
// The CI gate pairs sliced-256x256 against scalar-sweep-256x256 — the
// per-run loop the batch tier replaces — and requires the sliced batch to
// be at least 8x faster within the same run (in practice ~40x).  The
// scalar-auto variants run each replica on its own best scalar tier
// (bitplane on the torus, frontier on the graph) and are informational:
// they show the slicing win that remains after per-run word-parallelism
// (~2x on the torus, ~5x on the graph).  The fallback-ba10k pair documents
// the ineligible path: a Barabási–Albert substrate under generalized-smp
// is not bit-sliceable, so Session.RunBatch falls back to the per-run
// scalar loop and must stay at parity with calling Run directly.
func BenchmarkRunBatchBitsliced(b *testing.B) {
	const lanes = 64
	const rounds = 48
	ctx := context.Background()

	// 256×256 torus, SMP, two colors: the bitplane-eligible regime.
	torus := func(b *testing.B) (*sim.Engine, []*color.Coloring) {
		b.Helper()
		topo := grid.MustNew(grid.KindToroidalMesh, 256, 256)
		eng := sim.NewEngine(topo, rules.SMP{})
		initials := make([]*color.Coloring, lanes)
		for r := range initials {
			initials[r] = randomColoring(uint64(r+1), topo.Dims(), 2)
		}
		return eng, initials
	}
	b.Run("sliced-256x256", func(b *testing.B) {
		eng, initials := torus(b)
		opt := sim.Options{MaxRounds: rounds}
		b.SetBytes(int64(lanes * 256 * 256))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			results, err := eng.RunBatchSliced(ctx, initials, opt)
			if err != nil {
				b.Fatal(err)
			}
			if len(results) != lanes {
				b.Fatal("short batch")
			}
		}
	})
	b.Run("scalar-sweep-256x256", func(b *testing.B) {
		eng, initials := torus(b)
		opt := sim.Options{MaxRounds: rounds, Kernel: sim.KernelSweep}
		b.SetBytes(int64(lanes * 256 * 256))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < lanes; r++ {
				eng.Run(initials[r], opt)
			}
		}
	})
	b.Run("scalar-auto-256x256", func(b *testing.B) {
		eng, initials := torus(b)
		opt := sim.Options{MaxRounds: rounds}
		b.SetBytes(int64(lanes * 256 * 256))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < lanes; r++ {
				eng.Run(initials[r], opt)
			}
		}
	})

	// Circulant C_10000(1,2) under an irreversible threshold rule: a
	// general-graph substrate where slicing is still eligible.
	circulant := func(b *testing.B) (*sim.Engine, []*color.Coloring) {
		b.Helper()
		const n = 10000
		g := graphs.NewGraph(n)
		for v := 0; v < n; v++ {
			g.AddEdge(v, (v+1)%n)
			g.AddEdge(v, (v+2)%n)
		}
		eng := g.EngineFor(rules.Threshold{Target: 1, Theta: 2})
		initials := make([]*color.Coloring, lanes)
		for r := range initials {
			initials[r] = randomColoring(uint64(r+1), grid.Dims{Rows: 1, Cols: n}, 2)
		}
		return eng, initials
	}
	b.Run("sliced-circulant10k", func(b *testing.B) {
		eng, initials := circulant(b)
		opt := sim.Options{MaxRounds: rounds}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.RunBatchSliced(ctx, initials, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalar-auto-circulant10k", func(b *testing.B) {
		eng, initials := circulant(b)
		opt := sim.Options{MaxRounds: rounds}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < lanes; r++ {
				eng.Run(initials[r], opt)
			}
		}
	})

	// BA-10k: irregular substrate under generalized-smp — slice-ineligible,
	// so the batch API's transparent fallback carries it.  The pair pins the
	// fallback at parity with direct scalar runs (Session with one worker,
	// so pool parallelism cannot mask overhead).
	ba := func(b *testing.B) (*dynmon.System, []*dynmon.Coloring) {
		b.Helper()
		sys, err := dynmon.New(dynmon.BarabasiAlbert(10000, 2, 1), dynmon.Colors(2))
		if err != nil {
			b.Fatal(err)
		}
		initials := make([]*dynmon.Coloring, lanes)
		for r := range initials {
			initials[r] = sys.RandomColoring(uint64(r + 1))
		}
		return sys, initials
	}
	runSpec := dynmon.RunSpec{MaxRounds: rounds}
	b.Run("fallback-ba10k", func(b *testing.B) {
		sys, initials := ba(b)
		se := sys.NewSession(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := se.RunBatch(ctx, initials, dynmon.WithRunSpec(runSpec)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalar-ba10k", func(b *testing.B) {
		sys, initials := ba(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < lanes; r++ {
				if _, err := sys.Run(ctx, initials[r], dynmon.WithRunSpec(runSpec)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkEnsemble measures the Monte-Carlo ensemble harness end to end:
// spec in, aggregated takeover report out.  The deterministic variant's
// replicas share one run spec and ride the bit-sliced batch tier; the noisy
// variant derives per-replica fault streams and runs replica-at-a-time —
// the two regimes the dynserve /v1/ensembles endpoint serves.
func BenchmarkEnsemble(b *testing.B) {
	base := func() *dynmon.EnsembleSpec {
		return &dynmon.EnsembleSpec{
			System: dynmon.Spec{
				Substrate: dynmon.SubstrateSpec{
					Topology: &dynmon.TopologySpec{Name: "toroidal-mesh", Rows: 64, Cols: 64},
				},
				Colors: 2,
				Rule:   "smp",
			},
			Initial:  dynmon.InitialSpec{Config: "bernoulli", Density: 0.55},
			Run:      dynmon.RunSpec{MaxRounds: 24, Target: 1},
			Replicas: 32,
			Seed:     1,
		}
	}
	run := func(b *testing.B, spec *dynmon.EnsembleSpec) {
		b.Helper()
		ens, err := dynmon.NewEnsemble(spec, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(spec.Replicas * 64 * 64))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			report, err := ens.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if len(report.Points) == 0 {
				b.Fatal("empty report")
			}
		}
	}
	b.Run("deterministic-64x64", func(b *testing.B) {
		run(b, base())
	})
	b.Run("noisy-64x64", func(b *testing.B) {
		spec := base()
		spec.Run.Noise = &dynmon.NoiseSpec{Eps: 0.02}
		spec.TakeoverFraction = 0.75
		run(b, spec)
	})
}
