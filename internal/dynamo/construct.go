package dynamo

import (
	"fmt"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rng"
)

// Construction is an initial configuration built around a k-colored seed Sk,
// ready to be simulated.
type Construction struct {
	// Name identifies the construction in experiment tables.
	Name string
	// Topology is the torus the construction lives on.
	Topology grid.Topology
	// Target is the color k that the seed tries to spread.
	Target color.Color
	// Palette is the color set of the configuration.
	Palette color.Palette
	// Seed lists the vertices of Sk (dense indices, increasing).
	Seed []int
	// Coloring is the complete initial configuration: the seed vertices
	// carry Target, every other vertex carries a padding color.
	Coloring *color.Coloring
}

// SeedSize returns |Sk|.
func (c *Construction) SeedSize() int { return len(c.Seed) }

// seedOnly builds a coloring with exactly the given vertices set to k and
// the rest unset, plus the sorted seed list.
func seedOnly(d grid.Dims, k color.Color, vertices map[int]bool) (*color.Coloring, []int) {
	c := color.NewColoring(d, color.None)
	seed := make([]int, 0, len(vertices))
	for v := 0; v < d.N(); v++ {
		if vertices[v] {
			c.Set(v, k)
			seed = append(seed, v)
		}
	}
	return c, seed
}

// padSeed completes a seed coloring with SolvePadding and assembles the
// Construction.
func padSeed(name string, topo grid.Topology, seed *color.Coloring, seedList []int, k color.Color, p color.Palette, src *rng.Source) (*Construction, error) {
	full, err := SolvePadding(topo, seed, k, p, src, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &Construction{
		Name:     name,
		Topology: topo,
		Target:   k,
		Palette:  p,
		Seed:     seedList,
		Coloring: full,
	}, nil
}

// validateArgs performs the common parameter validation of all
// constructors.
func validateArgs(dims grid.Dims, k color.Color, p color.Palette, minColors int) error {
	if !p.Contains(k) {
		return fmt.Errorf("dynamo: target color %v outside palette %v", k, p)
	}
	if p.K < minColors {
		return fmt.Errorf("dynamo: construction needs at least %d colors, palette has %d", minColors, p.K)
	}
	if dims.Rows < 2 || dims.Cols < 2 {
		return fmt.Errorf("dynamo: torus must be at least 2x2, got %v", dims)
	}
	return nil
}

// FullCross builds the Figure-5 configuration on a toroidal mesh: row 0 and
// column 0 entirely k-colored (size m+n-1, one more than the lower bound)
// with a cyclic padding outside.  It is the configuration whose recoloring
// times the paper tabulates in Figure 5 and whose round count matches
// Theorem 7 exactly.
func FullCross(m, n int, k color.Color, p color.Palette) (*Construction, error) {
	dims, err := grid.NewDims(m, n)
	if err != nil {
		return nil, err
	}
	if err := validateArgs(dims, k, p, 4); err != nil {
		return nil, err
	}
	topo := grid.MustNew(grid.KindToroidalMesh, m, n)
	vertices := make(map[int]bool)
	for j := 0; j < n; j++ {
		vertices[dims.IndexRC(0, j)] = true
	}
	for i := 0; i < m; i++ {
		vertices[dims.IndexRC(i, 0)] = true
	}
	seed, seedList := seedOnly(dims, k, vertices)
	return padSeed("full-cross", topo, seed, seedList, k, p, rng.New(uint64(m*1000+n)))
}

// MeshMinimum builds the Theorem 2 configuration on a toroidal mesh: Sk is a
// full column plus a row with one vertex removed (or, symmetrically, a full
// row plus a column with one vertex removed), |Sk| = m+n-2, which matches
// the Theorem 1 lower bound.  The padding satisfies the theorem's hypotheses
// (every other color class a forest, no vertex seeing a repeated "other"
// color).  Requires at least four colors and m, n >= 3.
//
// The padding is built analytically from a window-3 rainbow row (or column)
// sequence whenever such a sequence exists for the palette; otherwise the
// randomized solver is used.  With four colors the analytic pattern exists
// unless both m ≡ 2 and n ≡ 2 (mod 3); see DESIGN.md.
func MeshMinimum(m, n int, k color.Color, p color.Palette) (*Construction, error) {
	dims, err := grid.NewDims(m, n)
	if err != nil {
		return nil, err
	}
	if err := validateArgs(dims, k, p, 4); err != nil {
		return nil, err
	}
	if m < 3 || n < 3 {
		return nil, fmt.Errorf("dynamo: MeshMinimum requires m, n >= 3 (got %dx%d); use SmallTorus for 2-wide tori", m, n)
	}
	topo := grid.MustNew(grid.KindToroidalMesh, m, n)
	others := p.Others(k)

	// Row-oriented variant: seed = column 0 plus row 0 minus (0, n-1),
	// padding constant per row.
	rowSeed := func() (*color.Coloring, []int) {
		vertices := make(map[int]bool)
		for i := 0; i < m; i++ {
			vertices[dims.IndexRC(i, 0)] = true
		}
		for j := 1; j < n-1; j++ {
			vertices[dims.IndexRC(0, j)] = true
		}
		return seedOnly(dims, k, vertices)
	}
	if seq, corner, ok := PathRainbowSequence(m-1, others); ok {
		seed, seedList := rowSeed()
		full := seed.Clone()
		full.SetRC(0, n-1, corner)
		FillRowSequence(full, seq)
		if c, err := finishStructured("mesh-minimum", topo, full, seedList, k, p); err == nil {
			return c, nil
		}
	}
	// Column-oriented variant: seed = row 0 plus column 0 minus (m-1, 0),
	// padding constant per column.
	if seq, corner, ok := PathRainbowSequence(n-1, others); ok {
		vertices := make(map[int]bool)
		for j := 0; j < n; j++ {
			vertices[dims.IndexRC(0, j)] = true
		}
		for i := 1; i < m-1; i++ {
			vertices[dims.IndexRC(i, 0)] = true
		}
		seed, seedList := seedOnly(dims, k, vertices)
		full := seed.Clone()
		full.SetRC(m-1, 0, corner)
		FillColSequence(full, seq)
		if c, err := finishStructured("mesh-minimum", topo, full, seedList, k, p); err == nil {
			return c, nil
		}
	}
	// Fallback: randomized greedy padding on the row-oriented seed.
	seed, seedList := rowSeed()
	return padSeed("mesh-minimum", topo, seed, seedList, k, p, rng.New(uint64(m*2000+n)))
}

// CordalisMinimum builds the Theorem 4 configuration on a torus cordalis:
// Sk is the whole of row 0 plus the single vertex (1, 0), |Sk| = n+1, which
// matches the Theorem 3 lower bound.  Requires at least four colors and
// m >= 4, n >= 3.
func CordalisMinimum(m, n int, k color.Color, p color.Palette) (*Construction, error) {
	dims, err := grid.NewDims(m, n)
	if err != nil {
		return nil, err
	}
	if err := validateArgs(dims, k, p, 4); err != nil {
		return nil, err
	}
	if m < 4 || n < 3 {
		return nil, fmt.Errorf("dynamo: CordalisMinimum requires m >= 4 and n >= 3, got %dx%d", m, n)
	}
	topo := grid.MustNew(grid.KindTorusCordalis, m, n)
	vertices := make(map[int]bool)
	for j := 0; j < n; j++ {
		vertices[dims.IndexRC(0, j)] = true
	}
	vertices[dims.IndexRC(1, 0)] = true
	seed, seedList := seedOnly(dims, k, vertices)

	// The structured padding assigns one color per column following a cyclic
	// window-3 rainbow sequence; the generic solver is the fallback (for
	// example n = 5 with fewer than six colors has no such sequence).
	others := p.Others(k)
	if seq, ok := CycleRainbowSequence(n, others); ok {
		full := seed.Clone()
		FillColSequenceAll(full, seq)
		if c, err := finishStructured("cordalis-minimum", topo, full, seedList, k, p); err == nil {
			return c, nil
		}
	}
	return padSeed("cordalis-minimum", topo, seed, seedList, k, p, rng.New(uint64(m*3000+n)))
}

// SerpentinusMinimum builds the Theorem 6 configuration on a torus
// serpentinus: when n <= m the seed is the whole of row 0 plus vertex (1,0)
// (|Sk| = n+1); when m < n the seed is the whole of column 0 plus vertex
// (0,1) (|Sk| = m+1).  Both match the Theorem 5 lower bound min(m,n)+1.
// Requires at least four colors and min(m,n) >= 3, max(m,n) >= 4.
func SerpentinusMinimum(m, n int, k color.Color, p color.Palette) (*Construction, error) {
	dims, err := grid.NewDims(m, n)
	if err != nil {
		return nil, err
	}
	if err := validateArgs(dims, k, p, 4); err != nil {
		return nil, err
	}
	if dims.Min() < 3 || (m < 4 && n < 4) {
		return nil, fmt.Errorf("dynamo: SerpentinusMinimum requires min(m,n) >= 3 and max(m,n) >= 4, got %dx%d", m, n)
	}
	topo := grid.MustNew(grid.KindTorusSerpentinus, m, n)
	vertices := make(map[int]bool)
	if n <= m {
		for j := 0; j < n; j++ {
			vertices[dims.IndexRC(0, j)] = true
		}
		vertices[dims.IndexRC(1, 0)] = true
	} else {
		for i := 0; i < m; i++ {
			vertices[dims.IndexRC(i, 0)] = true
		}
		vertices[dims.IndexRC(0, 1)] = true
	}
	seed, seedList := seedOnly(dims, k, vertices)
	others := p.Others(k)
	if n <= m {
		if seq, ok := CycleRainbowSequence(n, others); ok {
			full := seed.Clone()
			FillColSequenceAll(full, seq)
			if c, err := finishStructured("serpentinus-minimum", topo, full, seedList, k, p); err == nil {
				return c, nil
			}
		}
	} else {
		if seq, ok := CycleRainbowSequence(m, others); ok {
			full := seed.Clone()
			FillRowSequenceAll(full, seq)
			if c, err := finishStructured("serpentinus-minimum", topo, full, seedList, k, p); err == nil {
				return c, nil
			}
		}
	}
	return padSeed("serpentinus-minimum", topo, seed, seedList, k, p, rng.New(uint64(m*4000+n)))
}

// finishStructured validates a structured (cyclic) padding and wraps it into
// a Construction; it returns an error when the padding violates the
// tight-construction hypotheses so the caller can fall back to the solver.
func finishStructured(name string, topo grid.Topology, full *color.Coloring, seedList []int, k color.Color, p color.Palette) (*Construction, error) {
	if err := checkConstruction(topo, full, k); err != nil {
		return nil, err
	}
	return &Construction{
		Name:     name,
		Topology: topo,
		Target:   k,
		Palette:  p,
		Seed:     seedList,
		Coloring: full,
	}, nil
}

// Minimum dispatches to the tight construction for the given topology kind.
func Minimum(kind grid.Kind, m, n int, k color.Color, p color.Palette) (*Construction, error) {
	switch kind {
	case grid.KindToroidalMesh:
		return MeshMinimum(m, n, k, p)
	case grid.KindTorusCordalis:
		return CordalisMinimum(m, n, k, p)
	case grid.KindTorusSerpentinus:
		return SerpentinusMinimum(m, n, k, p)
	default:
		return nil, fmt.Errorf("dynamo: unknown topology kind %v", kind)
	}
}

// Figure1 builds a configuration in the spirit of the paper's Figure 1: a
// monotone dynamo of size m+n-2 on a 9x9 toroidal mesh (the figure's stated
// size 16 corresponds to m = n = 9).
func Figure1(k color.Color, p color.Palette) (*Construction, error) {
	c, err := MeshMinimum(9, 9, k, p)
	if err != nil {
		return nil, err
	}
	c.Name = "figure-1"
	return c, nil
}

// CombUpperBound builds the comb-shaped dynamo derived from Proposition 2
// and Theorem 16 of [15]: Sk contains every even-indexed row entirely plus
// one vertex in every odd-indexed row, so that the non-seed vertices form a
// forest of horizontal paths whose endpoints see three k-colored neighbors.
// The seed has size about half the torus — the "trivial" upper bound the
// paper contrasts with its tight constructions — and is a monotone dynamo
// under both the SMP-Protocol and the reverse strong majority rule.
func CombUpperBound(kind grid.Kind, m, n int, k color.Color, p color.Palette) (*Construction, error) {
	dims, err := grid.NewDims(m, n)
	if err != nil {
		return nil, err
	}
	if err := validateArgs(dims, k, p, 2); err != nil {
		return nil, err
	}
	if m%2 != 0 {
		return nil, fmt.Errorf("dynamo: CombUpperBound requires an even number of rows, got %d", m)
	}
	topo := grid.MustNew(kind, m, n)
	vertices := make(map[int]bool)
	for i := 0; i < m; i += 2 {
		for j := 0; j < n; j++ {
			vertices[dims.IndexRC(i, j)] = true
		}
	}
	for i := 1; i < m; i += 2 {
		vertices[dims.IndexRC(i, 0)] = true
	}
	seed, seedList := seedOnly(dims, k, vertices)
	// Any coloring of the remaining vertices works: each odd row is a path
	// whose endpoints have three seed neighbors.  Use a cyclic padding for
	// reproducibility; it does not need to satisfy the tight conditions.
	others := p.Others(k)
	full := seed.Clone()
	FillCyclicRows(full, others, minInt(3, len(others)))
	return &Construction{
		Name:     "comb-upper-bound",
		Topology: topo,
		Target:   k,
		Palette:  p,
		Seed:     seedList,
		Coloring: full,
	}, nil
}

// SmallTorus builds the Proposition 3 configuration for tori whose smaller
// dimension is 2: a single k-colored column (or row) of length equal to the
// larger dimension, padded so that consecutive vertices of the other column
// (row) carry different colors.  With at least three colors this seed of
// size max(m,n) is a dynamo.  (For min(m,n) = 3 the minimum-size dynamo is
// the Theorem 2 L-shape; use MeshMinimum.)
func SmallTorus(m, n int, k color.Color, p color.Palette) (*Construction, error) {
	dims, err := grid.NewDims(m, n)
	if err != nil {
		return nil, err
	}
	if err := validateArgs(dims, k, p, 3); err != nil {
		return nil, err
	}
	if dims.Min() != 2 {
		return nil, fmt.Errorf("dynamo: SmallTorus applies to min(m,n) = 2, got %v; use MeshMinimum for larger tori", dims)
	}
	topo := grid.MustNew(grid.KindToroidalMesh, m, n)
	vertices := make(map[int]bool)
	if n <= m {
		for i := 0; i < m; i++ {
			vertices[dims.IndexRC(i, 0)] = true
		}
	} else {
		for j := 0; j < n; j++ {
			vertices[dims.IndexRC(0, j)] = true
		}
	}
	seed, seedList := seedOnly(dims, k, vertices)
	return padSeed("small-torus", topo, seed, seedList, k, p, rng.New(uint64(m*5000+n)))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
