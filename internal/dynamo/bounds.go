// Package dynamo implements the paper's core contribution: minimum-size
// dynamic monopolies (dynamos) for multicolored tori under the SMP-Protocol.
//
// The package provides
//
//   - the lower bounds of Theorems 1, 3 and 5 and the color requirement of
//     Proposition 3 (bounds.go);
//   - the tight constructions of Theorems 2, 4 and 6, the full-cross
//     configuration behind Figure 5, the comb-shaped upper-bound dynamo
//     derived from Proposition 2, and the small-torus constructions of
//     Proposition 3 (construct.go);
//   - padding generators that color the vertices outside the seed so that
//     the theorems' hypotheses hold (padding.go);
//   - counterexample configurations in the spirit of Figures 3 and 4
//     (counterexample.go);
//   - the round-count predictions of Theorems 7 and 8 (rounds.go);
//   - simulation-backed verification of the dynamo and monotonicity
//     properties (verify.go).
package dynamo

import (
	"fmt"

	"repro/internal/grid"
)

// LowerBound returns the paper's lower bound on the size of a monotone
// dynamo for the given topology and size:
//
//	toroidal mesh      |Sk| >= m + n - 2   (Theorem 1)
//	torus cordalis     |Sk| >= n + 1       (Theorem 3)
//	torus serpentinus  |Sk| >= min(m,n)+1  (Theorem 5)
func LowerBound(kind grid.Kind, dims grid.Dims) int {
	switch kind {
	case grid.KindToroidalMesh:
		return dims.Rows + dims.Cols - 2
	case grid.KindTorusCordalis:
		return dims.Cols + 1
	case grid.KindTorusSerpentinus:
		return dims.Min() + 1
	default:
		panic(fmt.Sprintf("dynamo: unknown topology kind %v", kind))
	}
}

// MinColorsForMinimumDynamo returns the number of colors the paper's results
// associate with the existence of a minimum-size dynamo on an m×n torus:
// Proposition 3 links |C| to N = min(m,n) for N <= 3, and the Theorem 2
// construction uses four colors for larger tori.
//
//	N = 1  ->  1 color  (the torus is already a single row/column)
//	N = 2  ->  2 colors suffice only at size m+1; 3 colors allow size m
//	N = 3  ->  3 colors
//	N >= 4 ->  4 colors
//
// The returned value is the number of colors used by this repository's
// constructions (3 for N ∈ {2,3}, 4 otherwise).
func MinColorsForMinimumDynamo(dims grid.Dims) int {
	n := dims.Min()
	switch {
	case n <= 1:
		return 1
	case n == 2, n == 3:
		return 3
	default:
		return 4
	}
}

// SeedSizeOfConstruction returns the seed size used by the tight
// constructions in this package, which matches LowerBound for every
// topology.
func SeedSizeOfConstruction(kind grid.Kind, dims grid.Dims) int {
	return LowerBound(kind, dims)
}
