package dynamo

import (
	"testing"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
)

func pal(k int) color.Palette { return color.MustPalette(k) }

func TestFullCrossIsAMonotoneDynamo(t *testing.T) {
	for _, size := range [][2]int{{5, 5}, {6, 8}, {9, 9}, {12, 7}} {
		c, err := FullCross(size[0], size[1], 1, pal(5))
		if err != nil {
			t.Fatalf("%v: %v", size, err)
		}
		if got, want := c.SeedSize(), size[0]+size[1]-1; got != want {
			t.Errorf("%v: seed size %d, want %d", size, got, want)
		}
		v := Verify(c)
		if !v.IsDynamo || !v.Monotone {
			t.Errorf("%v: full cross should be a monotone dynamo: %+v", size, v)
		}
		if v.Rounds != ExactRoundsFullCross(c.Topology.Dims()) {
			t.Errorf("%v: rounds = %d, want %d", size, v.Rounds, ExactRoundsFullCross(c.Topology.Dims()))
		}
		if size[0] == size[1] && v.Rounds != PredictedRoundsMesh(c.Topology.Dims()) {
			t.Errorf("%v: square full cross should match Theorem 7 exactly (got %d, want %d)",
				size, v.Rounds, PredictedRoundsMesh(c.Topology.Dims()))
		}
	}
}

func TestMeshMinimumMatchesLowerBoundAndIsMonotoneDynamo(t *testing.T) {
	for _, size := range [][2]int{{4, 4}, {5, 5}, {6, 9}, {9, 9}, {11, 6}, {13, 13}} {
		c, err := MeshMinimum(size[0], size[1], 1, pal(5))
		if err != nil {
			t.Fatalf("%v: %v", size, err)
		}
		want := LowerBound(grid.KindToroidalMesh, c.Topology.Dims())
		if c.SeedSize() != want {
			t.Errorf("%v: seed size %d, want lower bound %d", size, c.SeedSize(), want)
		}
		if err := CheckTheoremConditions(c); err != nil {
			t.Errorf("%v: theorem conditions violated: %v", size, err)
		}
		v := Verify(c)
		if !v.IsDynamo || !v.Monotone {
			t.Errorf("%v: Theorem 2 configuration should be a monotone dynamo: dynamo=%v monotone=%v\n%s",
				size, v.IsDynamo, v.Monotone, c.Coloring.String())
		}
	}
}

func TestMeshMinimumWithExactlyFourColors(t *testing.T) {
	// Theorem 2 promises a construction with |C| >= 4.  With exactly four
	// colors our padding exists whenever m or n is a multiple of three (the
	// analytic row/column pattern); E03 tabulates the minimum palette per
	// size — see DESIGN.md.
	for _, size := range [][2]int{{6, 6}, {7, 9}, {8, 6}, {9, 5}, {12, 11}} {
		c, err := MeshMinimum(size[0], size[1], 1, pal(4))
		if err != nil {
			t.Fatalf("%v: construction with 4 colors failed: %v", size, err)
		}
		v := Verify(c)
		if !v.IsDynamo || !v.Monotone {
			t.Errorf("%v: 4-color Theorem 2 configuration failed: dynamo=%v monotone=%v", size, v.IsDynamo, v.Monotone)
		}
	}
}

func TestMeshMinimumFourColorInfeasibleSizes(t *testing.T) {
	// On a 4x4 torus no padding with exactly four colors satisfies the
	// theorem hypotheses together with seed safety (established by the
	// exhaustive backtracking fallback); five colors work.  This deviation
	// from the paper's "|C| >= 4 suffices" claim is recorded in
	// EXPERIMENTS.md.
	if _, err := MeshMinimum(4, 4, 1, pal(4)); err == nil {
		t.Log("note: a 4-color padding was found for 4x4; update EXPERIMENTS.md")
	}
	c, err := MeshMinimum(4, 4, 1, pal(5))
	if err != nil {
		t.Fatalf("4x4 with five colors should work: %v", err)
	}
	if v := Verify(c); !v.IsDynamo || !v.Monotone {
		t.Error("4x4 five-color configuration should be a monotone dynamo")
	}
}

func TestMeshMinimumRejectsBadArguments(t *testing.T) {
	if _, err := MeshMinimum(2, 9, 1, pal(5)); err == nil {
		t.Error("m < 3 should be rejected")
	}
	if _, err := MeshMinimum(9, 9, 1, pal(3)); err == nil {
		t.Error("fewer than 4 colors should be rejected")
	}
	if _, err := MeshMinimum(9, 9, 7, pal(5)); err == nil {
		t.Error("target outside the palette should be rejected")
	}
	if _, err := MeshMinimum(1, 9, 1, pal(5)); err == nil {
		t.Error("degenerate dimensions should be rejected")
	}
}

func TestCordalisMinimum(t *testing.T) {
	for _, size := range [][2]int{{4, 4}, {5, 5}, {6, 8}, {9, 5}, {8, 11}} {
		c, err := CordalisMinimum(size[0], size[1], 1, pal(5))
		if err != nil {
			t.Fatalf("%v: %v", size, err)
		}
		want := LowerBound(grid.KindTorusCordalis, c.Topology.Dims())
		if c.SeedSize() != want {
			t.Errorf("%v: seed size %d, want %d", size, c.SeedSize(), want)
		}
		if err := CheckTheoremConditions(c); err != nil {
			t.Errorf("%v: theorem conditions violated: %v", size, err)
		}
		v := Verify(c)
		if !v.IsDynamo || !v.Monotone {
			t.Errorf("%v: Theorem 4 configuration should be a monotone dynamo (dynamo=%v monotone=%v)",
				size, v.IsDynamo, v.Monotone)
		}
	}
}

func TestSerpentinusMinimumRowAndColumnVariants(t *testing.T) {
	// n <= m: row-seeded variant of size n+1.
	for _, size := range [][2]int{{5, 5}, {7, 4}, {9, 6}} {
		c, err := SerpentinusMinimum(size[0], size[1], 1, pal(5))
		if err != nil {
			t.Fatalf("%v: %v", size, err)
		}
		if c.SeedSize() != size[1]+1 {
			t.Errorf("%v: seed size %d, want %d", size, c.SeedSize(), size[1]+1)
		}
		v := Verify(c)
		if !v.IsDynamo || !v.Monotone {
			t.Errorf("%v: Theorem 6 (row) configuration failed (dynamo=%v monotone=%v)", size, v.IsDynamo, v.Monotone)
		}
	}
	// m < n: column-seeded variant of size m+1.
	for _, size := range [][2]int{{4, 7}, {6, 9}} {
		c, err := SerpentinusMinimum(size[0], size[1], 1, pal(5))
		if err != nil {
			t.Fatalf("%v: %v", size, err)
		}
		if c.SeedSize() != size[0]+1 {
			t.Errorf("%v: seed size %d, want %d", size, c.SeedSize(), size[0]+1)
		}
		v := Verify(c)
		if !v.IsDynamo || !v.Monotone {
			t.Errorf("%v: Theorem 6 (column) configuration failed (dynamo=%v monotone=%v)", size, v.IsDynamo, v.Monotone)
		}
	}
}

func TestMinimumDispatch(t *testing.T) {
	for _, kind := range grid.Kinds() {
		c, err := Minimum(kind, 7, 7, 1, pal(5))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if c.Topology.Kind() != kind {
			t.Errorf("Minimum(%v) built a %v", kind, c.Topology.Kind())
		}
		if c.SeedSize() != LowerBound(kind, grid.MustDims(7, 7)) {
			t.Errorf("%v: size %d does not match the lower bound", kind, c.SeedSize())
		}
	}
	if _, err := Minimum(grid.Kind(77), 7, 7, 1, pal(5)); err == nil {
		t.Error("unknown kind should be rejected")
	}
}

func TestFigure1(t *testing.T) {
	c, err := Figure1(1, pal(5))
	if err != nil {
		t.Fatal(err)
	}
	if c.SeedSize() != 16 {
		t.Errorf("Figure 1 dynamo has size %d, the paper says 16", c.SeedSize())
	}
	v := Verify(c)
	if !v.IsDynamo || !v.Monotone {
		t.Error("Figure 1 configuration should be a monotone dynamo")
	}
}

func TestCombUpperBound(t *testing.T) {
	for _, kind := range grid.Kinds() {
		c, err := CombUpperBound(kind, 8, 9, 1, pal(4))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		// Every even row (4 rows of 9) plus one vertex in each odd row.
		if got, want := c.SeedSize(), 4*9+4; got != want {
			t.Errorf("%v: comb size %d, want %d", kind, got, want)
		}
		v := Verify(c)
		if !v.IsDynamo || !v.Monotone {
			t.Errorf("%v: comb should be a monotone dynamo under SMP", kind)
		}
		// Proposition 2: it is also a dynamo under the reverse strong
		// majority rule.
		strong := VerifyUnderRule(c.Topology, c.Coloring, c.Target, rules.StrongMajority{})
		if !strong.IsDynamo {
			t.Errorf("%v: comb should also be a dynamo under strong majority", kind)
		}
	}
	if _, err := CombUpperBound(grid.KindToroidalMesh, 7, 9, 1, pal(4)); err == nil {
		t.Error("odd row count should be rejected")
	}
}

func TestSmallTorus(t *testing.T) {
	// N = 2: a full column of k on an m x 2 torus is a dynamo with 3 colors
	// (Proposition 3).
	c, err := SmallTorus(6, 2, 1, pal(3))
	if err != nil {
		t.Fatal(err)
	}
	if c.SeedSize() != 6 {
		t.Errorf("seed size %d, want 6", c.SeedSize())
	}
	v := Verify(c)
	if !v.IsDynamo {
		t.Error("column seed on an m x 2 torus should be a dynamo (Proposition 3)")
	}
	// The row orientation (2 x n) works symmetrically.
	c, err = SmallTorus(2, 7, 1, pal(3))
	if err != nil {
		t.Fatal(err)
	}
	if c.SeedSize() != 7 {
		t.Errorf("seed size %d, want 7", c.SeedSize())
	}
	if v := Verify(c); !v.IsDynamo {
		t.Error("row seed on a 2 x n torus should be a dynamo")
	}
	if _, err := SmallTorus(6, 6, 1, pal(4)); err == nil {
		t.Error("SmallTorus should reject min(m,n) > 2")
	}
}

func TestMeshMinimumOnThreeRowTorus(t *testing.T) {
	// Proposition 3, N = 3: the minimum dynamo is the L-shaped seed of
	// Theorem 2 (size m+n-2), and it needs at least three non-target colors.
	c, err := MeshMinimum(3, 8, 1, pal(4))
	if err != nil {
		t.Fatal(err)
	}
	if c.SeedSize() != 9 {
		t.Errorf("seed size %d, want 9", c.SeedSize())
	}
	v := Verify(c)
	if !v.IsDynamo || !v.Monotone {
		t.Error("3 x 8 L-shaped seed should be a monotone dynamo")
	}
}

func TestConstructionSeedListConsistency(t *testing.T) {
	c, err := MeshMinimum(6, 7, 2, pal(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range c.Seed {
		if c.Coloring.At(v) != 2 {
			t.Fatalf("seed vertex %d does not carry the target color", v)
		}
	}
	if c.Coloring.Count(2) != len(c.Seed) {
		t.Error("coloring has target-colored vertices outside the seed list")
	}
}

func TestTargetColorOtherThanOne(t *testing.T) {
	c, err := MeshMinimum(6, 6, 3, pal(5))
	if err != nil {
		t.Fatal(err)
	}
	v := Verify(c)
	if !v.IsDynamo || v.Result.FinalColor != 3 {
		t.Error("construction should work for any target color in the palette")
	}
}
