package dynamo

import (
	"fmt"

	"repro/internal/blocks"
	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
	"repro/internal/sim"
)

// Verification is the simulation-backed judgement about a configuration.
type Verification struct {
	// IsDynamo reports that the configuration reaches the k-monochromatic
	// fixed point within the round budget (Definition 2).
	IsDynamo bool
	// Monotone reports that the k-colored set never lost a vertex
	// (Definition 3).  Only meaningful when IsDynamo checks were run with a
	// target.
	Monotone bool
	// Rounds is the number of rounds the simulation ran.
	Rounds int
	// SeedSize is the number of initially k-colored vertices.
	SeedSize int
	// Result carries the full simulation trace.
	Result *sim.Result
}

// Verify runs the SMP-Protocol on the configuration and reports whether it
// is a (monotone) dynamo for its target color.
func Verify(c *Construction) Verification {
	return VerifyColoring(c.Topology, c.Coloring, c.Target)
}

// VerifyColoring runs the SMP-Protocol on an arbitrary coloring and reports
// whether the k-colored set is a (monotone) dynamo.
func VerifyColoring(topo grid.Topology, initial *color.Coloring, k color.Color) Verification {
	return VerifyUnderRule(topo, initial, k, rules.SMP{})
}

// VerifyUnderRule is VerifyColoring with an explicit rule, used by the
// rule-comparison experiments.
func VerifyUnderRule(topo grid.Topology, initial *color.Coloring, k color.Color, rule rules.Rule) Verification {
	res := sim.Run(topo, rule, initial, sim.Options{
		Target:                k,
		StopWhenMonochromatic: true,
		DetectCycles:          true,
	})
	return Verification{
		IsDynamo: res.Monochromatic && res.FinalColor == k,
		Monotone: res.MonotoneTarget,
		Rounds:   res.Rounds,
		SeedSize: initial.Count(k),
		Result:   res,
	}
}

// checkConstruction validates that a completed configuration satisfies the
// tight-construction hypotheses for target color k.
func checkConstruction(topo grid.Topology, full *color.Coloring, k color.Color) error {
	if err := full.Validate(color.MustPalette(int(full.MaxColor()))); err != nil {
		return err
	}
	return blocks.CheckTightPadding(topo, full, k)
}

// CheckTheoremConditions verifies that a Construction satisfies the
// tight-padding hypotheses of Theorems 2, 4 and 6 together with the
// necessary conditions that apply to its topology:
//
//   - every non-target color class is a forest and no non-target vertex
//     sees the same "other" color twice (the theorems' stated hypotheses);
//   - the complement of the seed contains no non-k-block (Lemma 2);
//   - on the toroidal mesh, the seed's bounding rectangle spans at least
//     (m-1) × (n-1) (Lemma 1 / Theorem 1).
//
// Note that the strict "union of k-blocks" reading of Lemma 2 is not
// enforced: the paper's own Theorem 2 seed (a row with one vertex removed)
// violates it at the removed corner, so that condition is reported by the
// experiments rather than treated as a hard requirement (see EXPERIMENTS.md).
func CheckTheoremConditions(c *Construction) error {
	if err := blocks.CheckTightPadding(c.Topology, c.Coloring, c.Target); err != nil {
		return fmt.Errorf("dynamo: padding conditions violated: %w", err)
	}
	if blocks.HasNonKBlock(c.Topology, c.Coloring, c.Target) {
		return fmt.Errorf("dynamo: the complement of the seed contains a non-k-block (violates Lemma 2)")
	}
	if c.Topology.Kind() == grid.KindToroidalMesh {
		d := c.Topology.Dims()
		rows, cols := c.Coloring.BoundingRectangle(c.Target)
		if rows < d.Rows-1 || cols < d.Cols-1 {
			return fmt.Errorf("dynamo: seed bounding rectangle %dx%d is smaller than (m-1)x(n-1) (violates Lemma 1)", rows, cols)
		}
	}
	if got, want := c.SeedSize(), c.Coloring.Count(c.Target); got != want {
		return fmt.Errorf("dynamo: seed list has %d vertices but coloring has %d target-colored vertices", got, want)
	}
	return nil
}

// RandomSeedColoring places size k-colored vertices uniformly at random and
// pads the rest with random non-k colors.  It is the negative control of the
// lower-bound experiments: random seeds below the lower bound essentially
// never form dynamos.
func RandomSeedColoring(topo grid.Topology, size int, k color.Color, p color.Palette, next func(n int) int) *color.Coloring {
	d := topo.Dims()
	c := color.NewColoring(d, color.None)
	perm := make([]int, d.N())
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := next(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	if size > len(perm) {
		size = len(perm)
	}
	for _, v := range perm[:size] {
		c.Set(v, k)
	}
	others := p.Others(k)
	for v := 0; v < d.N(); v++ {
		if c.At(v) == color.None {
			c.Set(v, others[next(len(others))])
		}
	}
	return c
}
