package dynamo

import (
	"testing"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
)

func TestVerifyColoringOnMonochromaticInput(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	c := color.NewColoring(topo.Dims(), 3)
	v := VerifyColoring(topo, c, 3)
	if !v.IsDynamo || !v.Monotone {
		t.Error("a monochromatic configuration is trivially a dynamo")
	}
	if v.SeedSize != 25 {
		t.Errorf("seed size = %d, want 25", v.SeedSize)
	}
	// For a different target it is not a dynamo.
	if VerifyColoring(topo, c, 1).IsDynamo {
		t.Error("monochromatic in color 3 is not a dynamo for color 1")
	}
}

func TestVerifyReportsRounds(t *testing.T) {
	c, err := FullCross(7, 7, 1, pal(5))
	if err != nil {
		t.Fatal(err)
	}
	v := Verify(c)
	if v.Rounds != 5 { // Theorem 7 for 7x7
		t.Errorf("rounds = %d, want 5", v.Rounds)
	}
	if v.SeedSize != 13 {
		t.Errorf("seed size = %d, want 13", v.SeedSize)
	}
}

func TestVerifyUnderRuleDiffersBetweenRules(t *testing.T) {
	// Remark 1 / the paper's tie discussion: a two-color cross on a 4x4
	// torus takes over under Prefer-Black (ties recolor to black) but stalls
	// under SMP (ties keep the current color), because with only two colors
	// every interior vertex eventually faces a 2-2 tie.
	topo := grid.MustNew(grid.KindToroidalMesh, 4, 4)
	c := color.NewColoring(topo.Dims(), 2)
	c.FillRow(0, 1)
	c.FillCol(0, 1)
	pb := VerifyUnderRule(topo, c, 1, rules.SimpleMajorityPB{Black: 1})
	smp := VerifyUnderRule(topo, c, 1, rules.SMP{})
	if !pb.IsDynamo {
		t.Error("the two-color cross should be a dynamo under Prefer-Black")
	}
	if smp.IsDynamo {
		t.Error("the two-color cross should NOT be a dynamo under SMP (2-2 ties freeze)")
	}
}

func TestCheckTheoremConditionsDetectsViolations(t *testing.T) {
	c, err := MeshMinimum(6, 6, 1, pal(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTheoremConditions(c); err != nil {
		t.Fatalf("valid construction rejected: %v", err)
	}
	// Sabotage the padding: give two neighbors of a vertex the same color.
	bad := &Construction{
		Name:     c.Name,
		Topology: c.Topology,
		Target:   c.Target,
		Palette:  c.Palette,
		Seed:     c.Seed,
		Coloring: c.Coloring.Clone(),
	}
	bad.Coloring.SetRC(3, 3, 2)
	bad.Coloring.SetRC(3, 5, 2)
	bad.Coloring.SetRC(3, 4, 4)
	bad.Coloring.SetRC(2, 4, 3)
	bad.Coloring.SetRC(4, 4, 5)
	if err := CheckTheoremConditions(bad); err == nil {
		t.Error("sabotaged padding should be rejected")
	}
	// Mismatched seed list.
	bad2 := &Construction{
		Name:     c.Name,
		Topology: c.Topology,
		Target:   c.Target,
		Palette:  c.Palette,
		Seed:     c.Seed[:len(c.Seed)-1],
		Coloring: c.Coloring,
	}
	if err := CheckTheoremConditions(bad2); err == nil {
		t.Error("seed list / coloring mismatch should be rejected")
	}
}

func TestRandomSeedColoringProperties(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 8, 8)
	src := rng.New(5)
	c := RandomSeedColoring(topo, 10, 1, pal(4), func(n int) int { return src.Intn(n) })
	if c.Count(1) != 10 {
		t.Errorf("expected exactly 10 target-colored vertices, got %d", c.Count(1))
	}
	if err := c.Validate(pal(4)); err != nil {
		t.Errorf("random coloring invalid: %v", err)
	}
	// Oversized request is clamped to the torus size.
	c = RandomSeedColoring(topo, 1000, 1, pal(4), func(n int) int { return src.Intn(n) })
	if c.Count(1) != 64 {
		t.Errorf("oversized seed should cover the torus, got %d", c.Count(1))
	}
}

func TestRandomSmallSeedsAreNotDynamos(t *testing.T) {
	// Negative control for the lower-bound experiment: random seeds well
	// below the Theorem 1 bound essentially never take over.
	topo := grid.MustNew(grid.KindToroidalMesh, 8, 8)
	src := rng.New(17)
	wins := 0
	for trial := 0; trial < 20; trial++ {
		c := RandomSeedColoring(topo, 6, 1, pal(4), func(n int) int { return src.Intn(n) })
		if VerifyColoring(topo, c, 1).IsDynamo {
			wins++
		}
	}
	if wins > 2 {
		t.Errorf("%d/20 random 6-vertex seeds became dynamos; expected almost none", wins)
	}
}
