package dynamo

import (
	"fmt"

	"repro/internal/color"
	"repro/internal/grid"
)

// The paper's Figures 3 and 4 show configurations whose black vertices do
// not constitute dynamos: Figure 3 violates the padding requirement of
// Theorem 2 (two neighbors of a vertex share an "other" color, which lets a
// foreign block form), and Figure 4 shows a configuration in which no
// recoloring can arise at all.  The figures are hand-drawn without explicit
// labels, so this package regenerates configurations with the same defining
// properties and verifies them by simulation.

// BlockedCross builds a Figure-3 style counterexample on a toroidal mesh:
// the seed is the full cross of FullCross (which with a valid padding would
// be a dynamo), but the padding plants a 2x2 single-colored square in the
// interior.  The square is a block of its color (Definition 4), so its
// vertices never recolor and the configuration cannot reach the
// k-monochromatic fixed point.
func BlockedCross(m, n int, k color.Color, p color.Palette) (*Construction, error) {
	if m < 6 || n < 6 {
		return nil, fmt.Errorf("dynamo: BlockedCross requires m, n >= 6, got %dx%d", m, n)
	}
	base, err := FullCross(m, n, k, p)
	if err != nil {
		return nil, err
	}
	blocker := p.Others(k)[0]
	c := base.Coloring.Clone()
	midR, midC := m/2, n/2
	for _, rc := range [][2]int{{midR, midC}, {midR, midC + 1}, {midR + 1, midC}, {midR + 1, midC + 1}} {
		c.SetRC(rc[0], rc[1], blocker)
	}
	return &Construction{
		Name:     "blocked-cross",
		Topology: base.Topology,
		Target:   k,
		Palette:  p,
		Seed:     base.Seed,
		Coloring: c,
	}, nil
}

// FrozenTiling builds a Figure-4 style counterexample: the torus is tiled
// with 2x2 single-colored squares (one of which carries color k).  Every
// vertex sees two neighbors of its own color and two neighbors of other
// blocks, so the SMP-Protocol changes nothing: no recoloring can arise, and
// the k-colored square is not a dynamo even though it is a k-block.
// Requires even m and n.
func FrozenTiling(m, n int, k color.Color, p color.Palette) (*Construction, error) {
	dims, err := grid.NewDims(m, n)
	if err != nil {
		return nil, err
	}
	if m%2 != 0 || n%2 != 0 {
		return nil, fmt.Errorf("dynamo: FrozenTiling requires even dimensions, got %dx%d", m, n)
	}
	if err := validateArgs(dims, k, p, 3); err != nil {
		return nil, err
	}
	topo := grid.MustNew(grid.KindToroidalMesh, m, n)
	others := p.Others(k)
	c := color.NewColoring(dims, color.None)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			bi, bj := i/2, j/2
			if bi == 0 && bj == 0 {
				c.SetRC(i, j, k)
				continue
			}
			c.SetRC(i, j, others[(bi+bj)%len(others)])
		}
	}
	var seedList []int
	for v := 0; v < dims.N(); v++ {
		if c.At(v) == k {
			seedList = append(seedList, v)
		}
	}
	return &Construction{
		Name:     "frozen-tiling",
		Topology: topo,
		Target:   k,
		Palette:  p,
		Seed:     seedList,
		Coloring: c,
	}, nil
}

// StatedConditionsGap builds a configuration that satisfies the hypotheses
// of Theorem 2 exactly as stated (every non-k color class is a forest, no
// non-k vertex sees a repeated "other" color) and yet is NOT a monotone
// dynamo — in fact not a dynamo at all: the rows are cycled with period
// three so that the first and last padding rows share a color, and the
// seed's missing corner takes that same color.  The k-colored vertex next to
// the missing corner then sees that color on three of its neighbors, defects
// in round one, and together with the corner and the ends of the first and
// last padding rows forms a block of that color which never recolors.  This
// documents a gap in the sufficient condition of Theorem 2 (the condition
// constrains only non-k vertices); see EXPERIMENTS.md.  Requires
// m ≡ 2 (mod 3), m, n >= 5 and at least 4 colors.
func StatedConditionsGap(m, n int, k color.Color, p color.Palette) (*Construction, error) {
	dims, err := grid.NewDims(m, n)
	if err != nil {
		return nil, err
	}
	if err := validateArgs(dims, k, p, 4); err != nil {
		return nil, err
	}
	if m%3 != 2 || m < 5 || n < 5 {
		return nil, fmt.Errorf("dynamo: StatedConditionsGap requires m ≡ 2 (mod 3) and m, n >= 5, got %dx%d", m, n)
	}
	topo := grid.MustNew(grid.KindToroidalMesh, m, n)
	others := p.Others(k)
	cycle := []color.Color{others[0], others[1], others[2]}

	c := color.NewColoring(dims, color.None)
	c.FillCol(0, k)
	for j := 1; j < n-1; j++ {
		c.SetRC(0, j, k)
	}
	for i := 1; i < m; i++ {
		for j := 1; j < n; j++ {
			c.SetRC(i, j, cycle[(i-1)%3])
		}
	}
	// The missing corner takes the color shared by rows 1 and m-1, so the
	// neighboring seed vertex (0, n-2) sees it three times.
	c.SetRC(0, n-1, cycle[0])

	var seedList []int
	for v := 0; v < dims.N(); v++ {
		if c.At(v) == k {
			seedList = append(seedList, v)
		}
	}
	return &Construction{
		Name:     "stated-conditions-gap",
		Topology: topo,
		Target:   k,
		Palette:  p,
		Seed:     seedList,
		Coloring: c,
	}, nil
}

// UndersizedSeed builds a configuration whose k-colored set has one vertex
// fewer than the Theorem 1 lower bound (a column plus a row missing two
// vertices).  By Lemma 1/Theorem 1 it cannot be a monotone dynamo; the
// simulation experiments confirm it never reaches the monochromatic fixed
// point with the structured paddings.
func UndersizedSeed(m, n int, k color.Color, p color.Palette) (*Construction, error) {
	base, err := MeshMinimum(m, n, k, p)
	if err != nil {
		return nil, err
	}
	d := base.Topology.Dims()
	c := base.Coloring.Clone()
	// Remove the last vertex of the seed row, shrinking the seed to m+n-3.
	removed := d.IndexRC(0, n-2)
	c.Set(removed, p.Others(k)[0])
	var seedList []int
	for _, v := range base.Seed {
		if v != removed {
			seedList = append(seedList, v)
		}
	}
	return &Construction{
		Name:     "undersized-seed",
		Topology: base.Topology,
		Target:   k,
		Palette:  p,
		Seed:     seedList,
		Coloring: c,
	}, nil
}
