package dynamo

import (
	"fmt"

	"repro/internal/blocks"
	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rng"
)

// The padding generators color the vertices outside the seed Sk so that the
// hypotheses of the tight constructions hold:
//
//   - every non-k color class induces a forest;
//   - no non-k vertex sees two neighbors of the same "other" color (a color
//     different from k and from its own);
//   - no k-colored seed vertex can ever be persuaded away from k (which, for
//     the SMP rule, means that a seed vertex with three or four non-k
//     neighbors sees pairwise distinct colors on them).
//
// Two families are provided: structured cyclic paddings (constant color per
// row or per column, cycling with a period of at least three) that match the
// repeating pattern of the paper's Figure 2, and a randomized greedy solver
// used when the structured pattern cannot satisfy the constraints for a
// particular size/palette combination.

// FillCyclicRows assigns to every unset vertex the color others[(row-1) mod q],
// i.e. a constant color per row cycling with period q.  Rows are counted from
// row 1 so that a seed occupying row 0 sees the cycle start right below it.
func FillCyclicRows(c *color.Coloring, others []color.Color, q int) {
	if q < 1 || q > len(others) {
		panic(fmt.Sprintf("dynamo: cyclic row period %d out of range (have %d colors)", q, len(others)))
	}
	d := c.Dims()
	for i := 0; i < d.Rows; i++ {
		col := others[((i-1)%q+q)%q]
		for j := 0; j < d.Cols; j++ {
			if c.AtRC(i, j) == color.None {
				c.SetRC(i, j, col)
			}
		}
	}
}

// FillCyclicCols is the column-constant analogue of FillCyclicRows.
func FillCyclicCols(c *color.Coloring, others []color.Color, q int) {
	if q < 1 || q > len(others) {
		panic(fmt.Sprintf("dynamo: cyclic column period %d out of range (have %d colors)", q, len(others)))
	}
	d := c.Dims()
	for j := 0; j < d.Cols; j++ {
		col := others[((j-1)%q+q)%q]
		for i := 0; i < d.Rows; i++ {
			if c.AtRC(i, j) == color.None {
				c.SetRC(i, j, col)
			}
		}
	}
}

// chooseCyclePeriod picks a cycle period q in [3, maxQ] such that
// (span-2) mod q != 0, which is the condition under which the cyclic padding
// avoids equal colors meeting across the seed row/column of the spiral
// constructions.  It returns 0 when no such period exists.
func chooseCyclePeriod(span, maxQ int) int {
	for q := 3; q <= maxQ; q++ {
		if (span-2)%q != 0 {
			return q
		}
	}
	return 0
}

// A "window-3 rainbow" sequence assigns one color per row (or column) such
// that any three consecutive entries are pairwise distinct.  Filling the
// torus with constant rows (columns) following such a sequence makes every
// vertex see two different colors on its two off-row (off-column) neighbors,
// which is exactly the "different colors" hypothesis of Theorems 2, 4 and 6.
// The spiral constructions need the cyclic variant (the sequence wraps); the
// mesh construction needs the path variant with additional constraints at
// the seed's missing corner.

// searchRainbow runs a small backtracking search for a sequence of the given
// length over the given colors.  ok(i, prefix) must report whether the
// prefix of length i+1 is still viable; done(seq) performs the final
// acceptance test.  Candidates are tried in cycling order (others rotated by
// the position index) so the canonical a,b,c,a,b,c… pattern is found first
// whenever it is feasible.
func searchRainbow(length int, others []color.Color, ok func(i int, prefix []color.Color) bool, done func(seq []color.Color) bool) ([]color.Color, bool) {
	if length <= 0 {
		return nil, false
	}
	const nodeCap = 500000
	seq := make([]color.Color, length)
	L := len(others)
	nodes := 0
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == length {
			return done(seq)
		}
		for off := 0; off < L; off++ {
			nodes++
			if nodes > nodeCap {
				return false
			}
			seq[i] = others[(i+off)%L]
			if ok(i, seq[:i+1]) && rec(i+1) {
				return true
			}
		}
		return false
	}
	if rec(0) {
		return seq, true
	}
	return nil, false
}

// CycleRainbowSequence returns a cyclic window-3 rainbow sequence of the
// given length over the given colors (any three cyclically consecutive
// entries are pairwise distinct), or ok=false if none exists — e.g. length 5
// needs five colors, and with three colors only multiples of three work.
func CycleRainbowSequence(length int, others []color.Color) ([]color.Color, bool) {
	if length < 3 {
		return nil, false
	}
	ok := func(i int, prefix []color.Color) bool {
		c := prefix[i]
		if i >= 1 && prefix[i-1] == c {
			return false
		}
		if i >= 2 && prefix[i-2] == c {
			return false
		}
		return true
	}
	done := func(seq []color.Color) bool {
		n := len(seq)
		// wrap windows: (n-2, n-1, 0) and (n-1, 0, 1)
		return seq[n-1] != seq[0] && seq[n-2] != seq[0] && seq[n-1] != seq[1]
	}
	return searchRainbow(length, others, ok, done)
}

// PathRainbowSequence returns a path window-3 rainbow sequence of the given
// length over the given colors satisfying the extra end conditions of the
// Theorem 2 construction:
//
//   - the first and last entries differ (they meet at the seed's concave
//     corner, the k-vertex next to the missing seed vertex);
//   - some color X remains outside {seq[0], seq[1], seq[len-2], seq[len-1]}
//     for the missing corner vertex itself.
//
// It returns the sequence, the corner color X, and ok=false when no such
// sequence exists (for example with three non-target colors and
// length ≡ 1 (mod 3)).
func PathRainbowSequence(length int, others []color.Color) ([]color.Color, color.Color, bool) {
	if length < 2 {
		// A single padding row cannot satisfy the corner constraints; the
		// callers never request it (they require tori of at least three
		// rows and columns).
		return nil, color.None, false
	}
	ok := func(i int, prefix []color.Color) bool {
		c := prefix[i]
		if i >= 1 && prefix[i-1] == c {
			return false
		}
		if i >= 2 && prefix[i-2] == c {
			return false
		}
		return true
	}
	var corner color.Color
	done := func(seq []color.Color) bool {
		n := len(seq)
		if seq[0] == seq[n-1] {
			return false
		}
		forbidden := map[color.Color]bool{seq[0]: true, seq[1]: true, seq[n-2]: true, seq[n-1]: true}
		for _, c := range others {
			if !forbidden[c] {
				corner = c
				return true
			}
		}
		return false
	}
	seq, found := searchRainbow(length, others, ok, done)
	if !found {
		return nil, color.None, false
	}
	return seq, corner, true
}

// FillRowSequence assigns seq[i-1] to every unset vertex of row i, for
// i = 1..len(seq); row 0 is left untouched (it belongs to the seed).
func FillRowSequence(c *color.Coloring, seq []color.Color) {
	d := c.Dims()
	for i := 1; i <= len(seq) && i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if c.AtRC(i, j) == color.None {
				c.SetRC(i, j, seq[i-1])
			}
		}
	}
}

// FillColSequence assigns seq[j-1] to every unset vertex of column j, for
// j = 1..len(seq); column 0 is left untouched.
func FillColSequence(c *color.Coloring, seq []color.Color) {
	d := c.Dims()
	for j := 1; j <= len(seq) && j < d.Cols; j++ {
		for i := 0; i < d.Rows; i++ {
			if c.AtRC(i, j) == color.None {
				c.SetRC(i, j, seq[j-1])
			}
		}
	}
}

// FillColSequenceAll assigns seq[j] to every unset vertex of column j for
// j = 0..len(seq)-1 (used by the spiral constructions, whose seed occupies a
// row, so every column contains padding vertices).
func FillColSequenceAll(c *color.Coloring, seq []color.Color) {
	d := c.Dims()
	for j := 0; j < len(seq) && j < d.Cols; j++ {
		for i := 0; i < d.Rows; i++ {
			if c.AtRC(i, j) == color.None {
				c.SetRC(i, j, seq[j])
			}
		}
	}
}

// FillRowSequenceAll assigns seq[i] to every unset vertex of row i for
// i = 0..len(seq)-1.
func FillRowSequenceAll(c *color.Coloring, seq []color.Color) {
	d := c.Dims()
	for i := 0; i < len(seq) && i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if c.AtRC(i, j) == color.None {
				c.SetRC(i, j, seq[i])
			}
		}
	}
}

// solver implements the randomized greedy padding search.
type solver struct {
	topo   grid.Topology
	c      *color.Coloring
	k      color.Color
	others []color.Color
	// parent holds one union-find forest per color, used to keep every
	// color class acyclic while assigning greedily.
	parent map[color.Color][]int
}

func newSolver(topo grid.Topology, c *color.Coloring, k color.Color, others []color.Color) *solver {
	return &solver{topo: topo, c: c, k: k, others: others, parent: make(map[color.Color][]int)}
}

func (s *solver) find(col color.Color, v int) int {
	p, ok := s.parent[col]
	if !ok {
		p = make([]int, s.c.N())
		for i := range p {
			p[i] = i
		}
		s.parent[col] = p
	}
	for p[v] != v {
		p[v] = p[p[v]]
		v = p[v]
	}
	return v
}

func (s *solver) union(col color.Color, a, b int) { s.parent[col][s.find(col, a)] = s.find(col, b) }

// paddingConstraintsOK checks every local (non-forest) constraint that
// assigning color x to vertex v could violate, looking only at
// already-assigned vertices (later assignments re-check the same constraints
// from their own side, so the final configuration satisfies them globally):
//
//   - at v itself, no color outside {k, x} may appear twice among assigned
//     neighbors;
//   - at every k-colored (seed) neighbor with three or four non-seed ports,
//     the assigned non-seed colors plus x must be pairwise distinct, so the
//     seed vertex can never be persuaded away from k;
//   - at every assigned non-k neighbor u, x must not become a second
//     occurrence of a color outside {k, c(u)}.
func paddingConstraintsOK(topo grid.Topology, c *color.Coloring, k color.Color, v int, x color.Color) bool {
	var buf [grid.Degree]int
	ports := topo.Neighbors(v, buf[:0])

	var seen [grid.Degree]color.Color
	nSeen := 0
	for _, u := range ports {
		cu := c.At(u)
		if cu == color.None || cu == k || cu == x {
			continue
		}
		for i := 0; i < nSeen; i++ {
			if seen[i] == cu {
				return false
			}
		}
		seen[nSeen] = cu
		nSeen++
	}

	var ubuf [grid.Degree]int
	for _, u := range ports {
		cu := c.At(u)
		switch {
		case cu == k:
			uports := topo.Neighbors(u, ubuf[:0])
			nonSeed := 0
			for _, w := range uports {
				if c.At(w) != k {
					nonSeed++
				}
			}
			if nonSeed <= 2 {
				continue
			}
			dupes := 0
			for _, w := range uports {
				if w == v {
					dupes++ // v itself will carry x
					continue
				}
				if c.At(w) == x {
					dupes++
				}
			}
			if dupes > 1 {
				return false
			}
		case cu != color.None:
			if x == cu {
				continue
			}
			occurrences := 0
			for _, w := range topo.Neighbors(u, ubuf[:0]) {
				if w == v {
					occurrences++
					continue
				}
				if c.At(w) == x {
					occurrences++
				}
			}
			if occurrences > 1 {
				return false
			}
		}
	}
	return true
}

// wouldCloseCycle reports whether coloring vertex v with x would close a
// cycle in the x color class, i.e. whether two of v's x-colored neighbors
// are already connected within the class.  It walks the class explicitly so
// it needs no auxiliary state and works inside the backtracking solver.
func wouldCloseCycle(topo grid.Topology, c *color.Coloring, v int, x color.Color) bool {
	var sameColor []int
	for _, u := range grid.UniqueNeighbors(topo, v) {
		if c.At(u) == x {
			sameColor = append(sameColor, u)
		}
	}
	if len(sameColor) < 2 {
		return false
	}
	// BFS within the x class from the first neighbor; if it reaches any of
	// the others, adding v closes a cycle.
	targets := make(map[int]bool, len(sameColor)-1)
	for _, u := range sameColor[1:] {
		targets[u] = true
	}
	visited := map[int]bool{sameColor[0]: true}
	queue := []int{sameColor[0]}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		if targets[w] {
			return true
		}
		for _, z := range grid.UniqueNeighbors(topo, w) {
			if z != v && !visited[z] && c.At(z) == x {
				visited[z] = true
				queue = append(queue, z)
			}
		}
	}
	return false
}

// candidateOK combines the local constraints with the incremental (DSU)
// forest check used by the greedy solver.
func (s *solver) candidateOK(v int, x color.Color) bool {
	if !paddingConstraintsOK(s.topo, s.c, s.k, v, x) {
		return false
	}
	roots := make([]int, 0, grid.Degree)
	for _, u := range grid.UniqueNeighbors(s.topo, v) {
		if s.c.At(u) != x {
			continue
		}
		r := s.find(x, u)
		for _, seenRoot := range roots {
			if seenRoot == r {
				return false
			}
		}
		roots = append(roots, r)
	}
	return true
}

func (s *solver) assign(v int, x color.Color) {
	s.c.Set(v, x)
	for _, u := range grid.UniqueNeighbors(s.topo, v) {
		if s.c.At(u) == x && u != v {
			s.union(x, v, u)
		}
	}
}

// backtrackPadding performs an exhaustive depth-first search over the unset
// vertices (with a node cap) using the same constraints as the greedy
// solver.  It is used as a last resort for small tori where the greedy
// heuristics paint themselves into a corner but valid paddings exist.
func backtrackPadding(topo grid.Topology, c *color.Coloring, k color.Color, others []color.Color, unset []int) bool {
	const nodeCap = 2_000_000
	d := c.Dims()
	L := len(others)
	nodes := 0
	var rec func(idx int) bool
	rec = func(idx int) bool {
		if idx == len(unset) {
			return true
		}
		v := unset[idx]
		pref := ((d.Coord(v).Row-1)%L + L) % L
		for off := 0; off < L; off++ {
			nodes++
			if nodes > nodeCap {
				return false
			}
			x := others[(pref+off)%L]
			if !paddingConstraintsOK(topo, c, k, v, x) || wouldCloseCycle(topo, c, v, x) {
				continue
			}
			c.Set(v, x)
			if rec(idx + 1) {
				return true
			}
			c.Set(v, color.None)
		}
		return false
	}
	return rec(0)
}

// SolvePadding colors every unset vertex of seed with a color from
// palette\{k} so that the tight-construction hypotheses hold.  The seed's
// k-colored vertices are left untouched.  The search is a randomized greedy
// assignment with restarts; it returns an error if no valid padding is found
// within maxAttempts restarts.
//
// The result is validated with blocks.CheckTightPadding before being
// returned, so a nil error guarantees the theorem hypotheses hold.
func SolvePadding(topo grid.Topology, seed *color.Coloring, k color.Color, p color.Palette, src *rng.Source, maxAttempts int) (*color.Coloring, error) {
	if !p.Contains(k) {
		return nil, fmt.Errorf("dynamo: target color %v outside palette %v", k, p)
	}
	others := p.Others(k)
	if len(others) == 0 {
		return nil, fmt.Errorf("dynamo: palette %v has no color besides the target", p)
	}
	if src == nil {
		src = rng.New(1)
	}
	if maxAttempts <= 0 {
		maxAttempts = 64
	}

	var unset []int
	for v := 0; v < seed.N(); v++ {
		switch seed.At(v) {
		case color.None:
			unset = append(unset, v)
		case k:
			// part of the seed
		default:
			return nil, fmt.Errorf("dynamo: seed already contains non-target color %v at vertex %d", seed.At(v), v)
		}
	}

	// The first batches of attempts are structured: every vertex prefers the
	// color of a row-cycling (then column-cycling) pattern, falling back to
	// the other colors in rotation.  This reproduces the repeating pattern of
	// the paper's Figure 2 wherever it is feasible and only deviates locally
	// (near the seed's missing corner) where the constraints demand it.
	// Later attempts randomize the candidate order per vertex.
	L := len(others)
	d := seed.Dims()
	candidates := make([]color.Color, L)
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		c := seed.Clone()
		s := newSolver(topo, c, k, others)
		ok := true
		for _, v := range unset {
			switch {
			case attempt < L: // row-cycling preference
				pref := (((d.Coord(v).Row-1)%L+L)%L + attempt) % L
				for off := 0; off < L; off++ {
					candidates[off] = others[(pref+off)%L]
				}
			case attempt < 2*L: // column-cycling preference
				pref := (((d.Coord(v).Col-1)%L+L)%L + attempt) % L
				for off := 0; off < L; off++ {
					candidates[off] = others[(pref+off)%L]
				}
			default: // randomized
				copy(candidates, others)
				src.Shuffle(L, func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
			}
			assigned := false
			for _, x := range candidates {
				if s.candidateOK(v, x) {
					s.assign(v, x)
					assigned = true
					break
				}
			}
			if !assigned {
				ok = false
				break
			}
		}
		if !ok {
			lastErr = fmt.Errorf("dynamo: greedy padding got stuck (attempt %d)", attempt+1)
			continue
		}
		if err := blocks.CheckTightPadding(topo, c, k); err != nil {
			lastErr = fmt.Errorf("dynamo: padding failed validation: %w", err)
			continue
		}
		return c, nil
	}

	// Last resort for small tori: exhaustive backtracking over the unset
	// vertices.  The greedy heuristics occasionally corner themselves even
	// when a valid padding exists (for example a 4x4 mesh with exactly four
	// colors); the bounded DFS settles the question.
	if len(unset) <= 150 {
		c := seed.Clone()
		if backtrackPadding(topo, c, k, others, unset) {
			if err := blocks.CheckTightPadding(topo, c, k); err == nil {
				return c, nil
			}
		}
	}
	return nil, fmt.Errorf("dynamo: no valid padding found with %d colors after %d attempts: %w",
		p.K, maxAttempts, lastErr)
}
