package dynamo

import (
	"testing"

	"repro/internal/blocks"
	"repro/internal/rules"
	"repro/internal/sim"
)

func TestBlockedCrossIsNotADynamo(t *testing.T) {
	c, err := BlockedCross(8, 8, 1, pal(5))
	if err != nil {
		t.Fatal(err)
	}
	// The planted square is a block of its color.
	if !blocks.HasKBlock(c.Topology, c.Coloring, c.Palette.Others(1)[0]) {
		t.Fatal("BlockedCross should contain a foreign block")
	}
	v := Verify(c)
	if v.IsDynamo {
		t.Error("Figure-3 style configuration must not be a dynamo")
	}
	// The simulation must still terminate (fixed point or cycle), not hit
	// the round budget.
	if !v.Result.FixedPoint && !v.Result.Cycle {
		t.Error("blocked configuration should reach a fixed point")
	}
	// The planted square keeps its color to the very end.
	d := c.Topology.Dims()
	blocker := c.Palette.Others(1)[0]
	if v.Result.Final.AtRC(d.Rows/2, d.Cols/2) != blocker {
		t.Error("the planted block changed color")
	}
}

func TestBlockedCrossRejectsSmallTori(t *testing.T) {
	if _, err := BlockedCross(5, 5, 1, pal(5)); err == nil {
		t.Error("BlockedCross should require at least a 6x6 torus")
	}
}

func TestFrozenTilingNeverRecolors(t *testing.T) {
	c, err := FrozenTiling(8, 10, 1, pal(4))
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(c.Topology, rules.SMP{}, c.Coloring, sim.Options{Target: 1, StopWhenMonochromatic: true})
	if res.Rounds != 1 || !res.FixedPoint {
		t.Errorf("Figure-4 style configuration should freeze immediately, ran %d rounds", res.Rounds)
	}
	if !res.Final.Equal(c.Coloring) {
		t.Error("no vertex should ever change color")
	}
	if res.Monochromatic {
		t.Error("frozen tiling must not be monochromatic")
	}
	// The k-colored square is a k-block yet not a dynamo.
	if !blocks.HasKBlock(c.Topology, c.Coloring, 1) {
		t.Error("the k-colored 2x2 square should be a k-block")
	}
	if len(c.Seed) != 4 {
		t.Errorf("seed size = %d, want 4", len(c.Seed))
	}
}

func TestFrozenTilingRejectsOddDimensions(t *testing.T) {
	if _, err := FrozenTiling(7, 8, 1, pal(4)); err == nil {
		t.Error("odd rows should be rejected")
	}
	if _, err := FrozenTiling(8, 7, 1, pal(4)); err == nil {
		t.Error("odd columns should be rejected")
	}
}

func TestStatedConditionsGap(t *testing.T) {
	// The configuration satisfies the hypotheses of Theorem 2 exactly as
	// stated in the paper, yet it is not a monotone dynamo: the seed vertex
	// next to the missing corner defects in round 1.  This documents the
	// hypothesis gap reported in EXPERIMENTS.md.
	for _, size := range [][2]int{{8, 8}, {5, 9}, {11, 6}} {
		c, err := StatedConditionsGap(size[0], size[1], 1, pal(5))
		if err != nil {
			t.Fatalf("%v: %v", size, err)
		}
		if err := CheckTheoremConditions(c); err != nil {
			t.Fatalf("%v: the gap configuration must satisfy the stated hypotheses: %v", size, err)
		}
		v := Verify(c)
		if v.Monotone {
			t.Errorf("%v: the gap configuration should NOT be monotone", size)
		}
		// The defecting seed vertex joins the corner and the ends of the
		// first and last padding rows in a foreign block, so the
		// configuration is not a dynamo at all.
		if v.IsDynamo {
			t.Errorf("%v: the gap configuration should NOT reach the monochromatic fixed point", size)
		}
	}
	if _, err := StatedConditionsGap(9, 9, 1, pal(5)); err == nil {
		t.Error("m not congruent to 2 mod 3 should be rejected")
	}
	if _, err := StatedConditionsGap(8, 8, 1, pal(3)); err == nil {
		t.Error("too few colors should be rejected")
	}
}

func TestUndersizedSeedIsNotADynamo(t *testing.T) {
	for _, size := range [][2]int{{6, 6}, {7, 9}, {9, 7}} {
		c, err := UndersizedSeed(size[0], size[1], 1, pal(5))
		if err != nil {
			t.Fatal(err)
		}
		want := LowerBound(c.Topology.Kind(), c.Topology.Dims()) - 1
		if c.SeedSize() != want {
			t.Errorf("%v: seed size %d, want %d", size, c.SeedSize(), want)
		}
		if Verify(c).IsDynamo {
			t.Errorf("%v: a seed below the Theorem 1 bound must not be a dynamo", size)
		}
	}
}
