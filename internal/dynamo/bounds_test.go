package dynamo

import (
	"testing"

	"repro/internal/grid"
)

func TestLowerBound(t *testing.T) {
	cases := []struct {
		kind grid.Kind
		m, n int
		want int
	}{
		{grid.KindToroidalMesh, 9, 9, 16},    // the paper's Figure 1: m+n-2 = 16
		{grid.KindToroidalMesh, 5, 7, 10},    // m+n-2
		{grid.KindTorusCordalis, 5, 7, 8},    // n+1
		{grid.KindTorusCordalis, 9, 4, 5},    // n+1
		{grid.KindTorusSerpentinus, 5, 7, 6}, // min(m,n)+1
		{grid.KindTorusSerpentinus, 8, 3, 4}, // min(m,n)+1
	}
	for _, c := range cases {
		got := LowerBound(c.kind, grid.MustDims(c.m, c.n))
		if got != c.want {
			t.Errorf("LowerBound(%v, %dx%d) = %d, want %d", c.kind, c.m, c.n, got, c.want)
		}
	}
}

func TestLowerBoundPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LowerBound(grid.Kind(99), grid.MustDims(4, 4))
}

func TestMinColorsForMinimumDynamo(t *testing.T) {
	cases := []struct {
		m, n, want int
	}{
		{2, 9, 3},
		{3, 9, 3},
		{4, 4, 4},
		{20, 30, 4},
	}
	for _, c := range cases {
		if got := MinColorsForMinimumDynamo(grid.MustDims(c.m, c.n)); got != c.want {
			t.Errorf("MinColors(%dx%d) = %d, want %d", c.m, c.n, got, c.want)
		}
	}
}

func TestSeedSizeMatchesLowerBound(t *testing.T) {
	for _, kind := range grid.Kinds() {
		d := grid.MustDims(7, 11)
		if SeedSizeOfConstruction(kind, d) != LowerBound(kind, d) {
			t.Errorf("%v: construction size differs from lower bound", kind)
		}
	}
}

func TestPredictedRoundsMesh(t *testing.T) {
	// The 5x5 case of Figure 5: 3 rounds.  The 9x9 case of Figure 1: 7.
	cases := []struct {
		m, n, want int
	}{
		{5, 5, 3},
		{9, 9, 7},
		{5, 9, 7},
		{4, 4, 3},
		{6, 6, 5},
		{3, 3, 1},
	}
	for _, c := range cases {
		if got := PredictedRoundsMesh(grid.MustDims(c.m, c.n)); got != c.want {
			t.Errorf("PredictedRoundsMesh(%dx%d) = %d, want %d", c.m, c.n, got, c.want)
		}
	}
}

func TestPredictedRoundsSpiral(t *testing.T) {
	// Figure 6 is the 5x5 torus cordalis: (floor(4/2)-1)*5 + ceil(5/2) = 8.
	cases := []struct {
		m, n, want int
	}{
		{5, 5, 8},  // odd m: (2-1)*5 + 3
		{4, 5, 1},  // even m: (1-1)*5 + 1
		{6, 5, 6},  // even m: (2-1)*5 + 1
		{7, 4, 10}, // odd m: (3-1)*4 + 2
		{8, 6, 13}, // even m: (3-1)*6 + 1
	}
	for _, c := range cases {
		if got := PredictedRoundsSpiral(grid.MustDims(c.m, c.n)); got != c.want {
			t.Errorf("PredictedRoundsSpiral(%dx%d) = %d, want %d", c.m, c.n, got, c.want)
		}
	}
}

func TestPredictedRoundsSerpentinusColumn(t *testing.T) {
	// The column-seeded variant swaps the roles of m and n.
	if PredictedRoundsSerpentinusColumn(grid.MustDims(5, 7)) != PredictedRoundsSpiral(grid.MustDims(7, 5)) {
		t.Error("column variant should equal the transposed row variant")
	}
}

func TestPredictedRoundsDispatch(t *testing.T) {
	if PredictedRounds(grid.KindToroidalMesh, grid.MustDims(5, 5)) != 3 {
		t.Error("mesh dispatch wrong")
	}
	if PredictedRounds(grid.KindTorusCordalis, grid.MustDims(5, 5)) != 8 {
		t.Error("cordalis dispatch wrong")
	}
	// Serpentinus with m < n uses the column-seeded formula.
	if PredictedRounds(grid.KindTorusSerpentinus, grid.MustDims(4, 9)) !=
		PredictedRoundsSerpentinusColumn(grid.MustDims(4, 9)) {
		t.Error("serpentinus dispatch should use the column variant when m < n")
	}
	if PredictedRounds(grid.KindTorusSerpentinus, grid.MustDims(9, 4)) !=
		PredictedRoundsSpiral(grid.MustDims(9, 4)) {
		t.Error("serpentinus dispatch should use the row variant when n <= m")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := [][3]int{{4, 2, 2}, {5, 2, 3}, {1, 2, 1}, {0, 3, 0}, {7, 3, 3}}
	for _, c := range cases {
		if got := ceilDiv(c[0], c[1]); got != c[2] {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}
