package dynamo

import "repro/internal/grid"

// ceilDiv returns ⌈a/b⌉ for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// PredictedRoundsMesh returns the round count of Theorem 7 for a toroidal
// mesh of the given size:
//
//	2 · max(⌈(n−1)/2⌉ − 1, ⌈(m−1)/2⌉ − 1) + 1.
//
// The formula matches the full-cross configuration of Figure 5 exactly; for
// the strictly minimum (m+n−2) configuration of Theorem 2 the measured count
// is one round larger (the missing corner of the seed delays one diagonal),
// which EXPERIMENTS.md reports as a systematic deviation.
func PredictedRoundsMesh(dims grid.Dims) int {
	m, n := dims.Rows, dims.Cols
	a := ceilDiv(n-1, 2) - 1
	b := ceilDiv(m-1, 2) - 1
	mx := a
	if b > mx {
		mx = b
	}
	return 2*mx + 1
}

// ExactRoundsFullCross returns the exact number of rounds the full-cross
// configuration needs on an m×n toroidal mesh:
//
//	⌈(m−1)/2⌉ + ⌈(n−1)/2⌉ − 1.
//
// A vertex at lattice distance g(i) = min(i, m−i) from the seed row and
// g(j) = min(j, n−j) from the seed column recolors exactly at round
// g(i)+g(j)−1 (it acquires its two k-colored neighbors one round earlier),
// so the last vertex is the one maximizing both distances.  For square tori
// this coincides with the paper's Theorem 7 formula; for rectangular tori
// the paper's max-based formula overestimates by the difference of the two
// half-spans, which EXPERIMENTS.md reports.
func ExactRoundsFullCross(dims grid.Dims) int {
	return ceilDiv(dims.Rows-1, 2) + ceilDiv(dims.Cols-1, 2) - 1
}

// ExactRoundsMeshMinimum returns the measured number of rounds of the
// Theorem 2 (m+n−2) configuration: one more than the full cross, because the
// missing seed corner (0, n−1) recolors only in round 1 and delays the wave
// in its quadrant by one round.
func ExactRoundsMeshMinimum(dims grid.Dims) int { return ExactRoundsFullCross(dims) + 1 }

// PredictedRoundsSpiral returns the round count of Theorem 8 for a torus
// cordalis (and for a torus serpentinus seeded on a row, i.e. N = n) of the
// given size:
//
//	(⌊(m−1)/2⌋ − 1)·n + ⌈n/2⌉   if m is odd
//	(⌊(m−1)/2⌋ − 1)·n + 1       if m is even
func PredictedRoundsSpiral(dims grid.Dims) int {
	m, n := dims.Rows, dims.Cols
	base := ((m-1)/2 - 1) * n
	if m%2 == 1 {
		return base + ceilDiv(n, 2)
	}
	return base + 1
}

// PredictedRoundsSerpentinusColumn is the column-seeded (N = m) variant of
// Theorem 8 for the torus serpentinus, obtained by exchanging the roles of
// rows and columns.
func PredictedRoundsSerpentinusColumn(dims grid.Dims) int {
	transposed := grid.Dims{Rows: dims.Cols, Cols: dims.Rows}
	return PredictedRoundsSpiral(transposed)
}

// PredictedRounds dispatches on the topology: Theorem 7 for the toroidal
// mesh and Theorem 8 for the spiral tori (row-seeded form).
func PredictedRounds(kind grid.Kind, dims grid.Dims) int {
	if kind == grid.KindToroidalMesh {
		return PredictedRoundsMesh(dims)
	}
	if kind == grid.KindTorusSerpentinus && dims.Rows < dims.Cols {
		// The Theorem 6 seed lies on a column when m < n.
		return PredictedRoundsSerpentinusColumn(dims)
	}
	return PredictedRoundsSpiral(dims)
}
