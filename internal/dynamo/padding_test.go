package dynamo

import (
	"testing"
	"testing/quick"

	"repro/internal/blocks"
	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rng"
)

func TestFillCyclicRows(t *testing.T) {
	c := color.NewColoring(grid.MustDims(5, 4), color.None)
	c.FillRow(0, 1)
	FillCyclicRows(c, []color.Color{2, 3, 4}, 3)
	if c.AtRC(0, 0) != 1 {
		t.Error("FillCyclicRows must not overwrite assigned cells")
	}
	if c.AtRC(1, 2) != 2 || c.AtRC(2, 0) != 3 || c.AtRC(3, 1) != 4 || c.AtRC(4, 3) != 2 {
		t.Errorf("row cycle wrong:\n%s", c.String())
	}
}

func TestFillCyclicCols(t *testing.T) {
	c := color.NewColoring(grid.MustDims(4, 5), color.None)
	c.FillCol(0, 1)
	FillCyclicCols(c, []color.Color{2, 3, 4}, 3)
	if c.AtRC(2, 0) != 1 {
		t.Error("FillCyclicCols must not overwrite assigned cells")
	}
	if c.AtRC(0, 1) != 2 || c.AtRC(1, 2) != 3 || c.AtRC(2, 3) != 4 || c.AtRC(3, 4) != 2 {
		t.Errorf("column cycle wrong:\n%s", c.String())
	}
}

func TestFillCyclicPanicsOnBadPeriod(t *testing.T) {
	c := color.NewColoring(grid.MustDims(4, 4), color.None)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for period larger than the palette")
		}
	}()
	FillCyclicRows(c, []color.Color{2, 3}, 3)
}

func TestChooseCyclePeriod(t *testing.T) {
	// span-2 divisible by 3 -> q=3 rejected, q=4 accepted.
	if q := chooseCyclePeriod(5, 4); q != 4 {
		t.Errorf("chooseCyclePeriod(5,4) = %d, want 4", q)
	}
	if q := chooseCyclePeriod(6, 4); q != 3 {
		t.Errorf("chooseCyclePeriod(6,4) = %d, want 3", q)
	}
	// No valid period available.
	if q := chooseCyclePeriod(5, 3); q != 0 {
		t.Errorf("chooseCyclePeriod(5,3) = %d, want 0", q)
	}
}

func TestSolvePaddingProducesValidPadding(t *testing.T) {
	for _, kind := range grid.Kinds() {
		for _, size := range [][2]int{{5, 5}, {6, 7}, {8, 8}} {
			topo := grid.MustNew(kind, size[0], size[1])
			d := topo.Dims()
			seed := color.NewColoring(d, color.None)
			seed.FillRow(0, 1)
			seed.FillCol(0, 1)
			full, err := SolvePadding(topo, seed, 1, pal(5), rng.New(1), 0)
			if err != nil {
				t.Fatalf("%v %v: %v", kind, size, err)
			}
			if err := blocks.CheckTightPadding(topo, full, 1); err != nil {
				t.Fatalf("%v %v: solver output violates the padding conditions: %v", kind, size, err)
			}
			// The seed must be preserved.
			for j := 0; j < d.Cols; j++ {
				if full.AtRC(0, j) != 1 {
					t.Fatalf("%v %v: solver modified the seed", kind, size)
				}
			}
			if err := full.Validate(pal(5)); err != nil {
				t.Fatalf("%v %v: %v", kind, size, err)
			}
		}
	}
}

func TestSolvePaddingRejectsBadInput(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	seed := color.NewColoring(topo.Dims(), color.None)
	seed.SetRC(0, 0, 3) // a non-target color in the seed
	if _, err := SolvePadding(topo, seed, 1, pal(5), nil, 0); err == nil {
		t.Error("seed containing non-target colors should be rejected")
	}
	if _, err := SolvePadding(topo, color.NewColoring(topo.Dims(), color.None), 9, pal(5), nil, 0); err == nil {
		t.Error("target outside the palette should be rejected")
	}
	if _, err := SolvePadding(topo, color.NewColoring(topo.Dims(), color.None), 1, pal(1), nil, 0); err == nil {
		t.Error("palette without other colors should be rejected")
	}
}

func TestSolvePaddingIsDeterministicForSameSeed(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 6, 6)
	seed := color.NewColoring(topo.Dims(), color.None)
	seed.FillCol(0, 1)
	for j := 1; j < 5; j++ {
		seed.SetRC(0, j, 1)
	}
	a, err := SolvePadding(topo, seed, 1, pal(5), rng.New(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolvePadding(topo, seed, 1, pal(5), rng.New(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same RNG seed must give the same padding")
	}
}

func TestSolvePaddingWithMinimumPalette(t *testing.T) {
	// Four colors (the Theorem 2 requirement) are enough for the Theorem 2
	// row-oriented seed on these sizes (m a multiple of three, so the
	// row-cycling preference succeeds).
	for _, size := range [][2]int{{6, 5}, {6, 7}, {9, 8}, {12, 7}} {
		topo := grid.MustNew(grid.KindToroidalMesh, size[0], size[1])
		d := topo.Dims()
		seed := color.NewColoring(d, color.None)
		seed.FillCol(0, 1)
		for j := 1; j < d.Cols-1; j++ {
			seed.SetRC(0, j, 1)
		}
		full, err := SolvePadding(topo, seed, 1, pal(4), rng.New(3), 0)
		if err != nil {
			t.Fatalf("%v: %v", size, err)
		}
		if err := blocks.CheckTightPadding(topo, full, 1); err != nil {
			t.Fatalf("%v: %v", size, err)
		}
	}
}

func TestBacktrackPaddingFallbackOnTinyTorus(t *testing.T) {
	// The 4x4 Theorem-2 seed with five colors exercises the exhaustive
	// backtracking fallback path end to end (the greedy heuristics usually
	// solve it, so call the DFS directly).
	topo := grid.MustNew(grid.KindToroidalMesh, 4, 4)
	d := topo.Dims()
	seed := color.NewColoring(d, color.None)
	seed.FillCol(0, 1)
	seed.SetRC(0, 1, 1)
	seed.SetRC(0, 2, 1)
	c := seed.Clone()
	var unset []int
	for v := 0; v < c.N(); v++ {
		if c.At(v) == color.None {
			unset = append(unset, v)
		}
	}
	if !backtrackPadding(topo, c, 1, pal(5).Others(1), unset) {
		t.Fatal("backtracking should find a 5-color padding for the 4x4 seed")
	}
	if err := blocks.CheckTightPadding(topo, c, 1); err != nil {
		t.Fatalf("backtracking result violates the conditions: %v", err)
	}
	// With only three non-target colors the same seed has no valid padding;
	// the DFS must prove it rather than loop forever.
	c2 := seed.Clone()
	if backtrackPadding(topo, c2, 1, pal(4).Others(1), unset) {
		t.Log("note: a 4-color padding was found for 4x4; update EXPERIMENTS.md")
	}
}

func TestSolvePaddingPropertyRandomSeeds(t *testing.T) {
	// For random sparse seeds the solver either fails cleanly or returns a
	// configuration that satisfies the padding conditions.
	f := func(seedVal uint64, kindSeed, sizeSeed uint8) bool {
		kind := grid.Kinds()[int(kindSeed)%3]
		m := 4 + int(sizeSeed)%5
		n := 4 + int(sizeSeed/3)%5
		topo := grid.MustNew(kind, m, n)
		src := rng.New(seedVal)
		seed := color.NewColoring(topo.Dims(), color.None)
		for v := 0; v < seed.N(); v++ {
			if src.Float64() < 0.2 {
				seed.Set(v, 1)
			}
		}
		full, err := SolvePadding(topo, seed, 1, pal(5), src, 8)
		if err != nil {
			return true // a clean failure is acceptable for arbitrary seeds
		}
		return blocks.CheckTightPadding(topo, full, 1) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
