package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestSeedResets(t *testing.T) {
	s := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Seed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("after reseed, value %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversAllValues(t *testing.T) {
	s := New(11)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[s.Intn(5)] = true
	}
	for v := 0; v < 5; v++ {
		if !seen[v] {
			t.Fatalf("value %d never produced by Intn(5)", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9)
	for _, n := range []int{0, 1, 2, 5, 17, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermProperty(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size % 64)
		p := New(seed).Perm(n)
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPick(t *testing.T) {
	s := New(1)
	xs := []string{"a", "b", "c"}
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[Pick(s, xs)]++
	}
	for _, x := range xs {
		if counts[x] == 0 {
			t.Fatalf("Pick never returned %q", x)
		}
	}
}

func TestPickPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty Pick")
		}
	}()
	Pick(New(1), []int{})
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	// The child stream should not be a shifted copy of the parent stream.
	equal := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("parent and child streams overlap in %d/100 positions", equal)
	}
}

func TestSplitDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	ca, cb := a.Split(), b.Split()
	for i := 0; i < 1000; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatalf("split children of identical parents diverged at step %d", i)
		}
	}
	// Splitting advances the parent deterministically too.
	if a.Uint64() != b.Uint64() {
		t.Fatal("parents diverged after splitting")
	}
}

func TestSplitChildHasOwnGamma(t *testing.T) {
	child := New(99).Split()
	if child.gamma == 0 || child.gamma == golden {
		t.Fatalf("split child gamma = %#x, want a fresh odd increment", child.gamma)
	}
	if child.gamma&1 == 0 {
		t.Fatalf("split child gamma %#x is even; SplitMix64 increments must be odd", child.gamma)
	}
}

// TestSplitStatisticalIndependence checks that sibling streams decorrelate:
// across many children of one parent, the XOR of paired outputs should look
// uniform (balanced bits), and no two siblings may share a prefix.
func TestSplitStatisticalIndependence(t *testing.T) {
	parent := New(2024)
	const children = 64
	const draws = 256
	streams := make([][]uint64, children)
	for c := range streams {
		src := parent.Split()
		streams[c] = make([]uint64, draws)
		for i := range streams[c] {
			streams[c][i] = src.Uint64()
		}
	}
	// No two siblings share their first 4 outputs.
	seen := map[[4]uint64]int{}
	for c, st := range streams {
		key := [4]uint64{st[0], st[1], st[2], st[3]}
		if prev, dup := seen[key]; dup {
			t.Fatalf("children %d and %d produced identical stream prefixes", prev, c)
		}
		seen[key] = c
	}
	// Pairwise XOR of adjacent siblings is bit-balanced: each of the 64 bit
	// positions should flip roughly half the time.
	var bitOnes [64]int
	total := 0
	for c := 0; c+1 < children; c += 2 {
		for i := 0; i < draws; i++ {
			x := streams[c][i] ^ streams[c+1][i]
			total++
			for b := 0; b < 64; b++ {
				bitOnes[b] += int(x >> b & 1)
			}
		}
	}
	for b, ones := range bitOnes {
		frac := float64(ones) / float64(total)
		if frac < 0.45 || frac > 0.55 {
			t.Fatalf("bit %d of sibling XOR stream is %.3f ones, want ~0.5 (streams correlated)", b, frac)
		}
	}
}

func TestHashPureFunction(t *testing.T) {
	if Hash(7, 1, 2) != Hash(7, 1, 2) {
		t.Fatal("Hash is not deterministic")
	}
	if Hash(7, 1, 2) == Hash(7, 2, 1) {
		t.Fatal("Hash ignores id order")
	}
	if Hash(7, 1, 2) == Hash(8, 1, 2) {
		t.Fatal("Hash ignores the seed")
	}
	if Hash(7, 1) == Hash(7, 1, 0) {
		t.Fatal("Hash collides across arities for a zero-extended tuple")
	}
}

// TestHashBitBalance drives the counter-based form over a lattice of
// (round, vertex) coordinates — exactly the schedule-mask workload — and
// checks every output bit is balanced.
func TestHashBitBalance(t *testing.T) {
	var bitOnes [64]int
	total := 0
	for round := uint64(1); round <= 64; round++ {
		for v := uint64(0); v < 256; v++ {
			h := Hash(42, round, v)
			total++
			for b := 0; b < 64; b++ {
				bitOnes[b] += int(h >> b & 1)
			}
		}
	}
	for b, ones := range bitOnes {
		frac := float64(ones) / float64(total)
		if frac < 0.47 || frac > 0.53 {
			t.Fatalf("bit %d of Hash over a coordinate lattice is %.3f ones, want ~0.5", b, frac)
		}
	}
}

func TestUnitRangeAndMean(t *testing.T) {
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		u := Unit(Hash(5, uint64(i)))
		if u < 0 || u >= 1 {
			t.Fatalf("Unit = %v out of [0,1)", u)
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Unit mean = %v, want ~0.5", mean)
	}
}

func TestMixMatchesUint64(t *testing.T) {
	// Uint64 must remain the golden-increment SplitMix64 stream: pinned so
	// every seeded experiment in the repository stays bit-reproducible.
	s := New(31)
	if got, want := s.Uint64(), Mix(31+golden); got != want {
		t.Fatalf("Uint64 = %#x, want Mix(seed+golden) = %#x", got, want)
	}
}

func TestBoolBalance(t *testing.T) {
	s := New(8)
	trues := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if s.Bool() {
			trues++
		}
	}
	if trues < n*45/100 || trues > n*55/100 {
		t.Fatalf("Bool returned true %d/%d times, expected ~50%%", trues, n)
	}
}

func TestUint32NotConstant(t *testing.T) {
	s := New(4)
	first := s.Uint32()
	for i := 0; i < 10; i++ {
		if s.Uint32() != first {
			return
		}
	}
	t.Fatal("Uint32 returned a constant stream")
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	if s.Uint64() == s.Uint64() {
		t.Fatal("zero-value Source produced identical consecutive values")
	}
}

func TestMul128KnownValues(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul128(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
