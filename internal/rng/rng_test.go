package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestSeedResets(t *testing.T) {
	s := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Seed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("after reseed, value %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversAllValues(t *testing.T) {
	s := New(11)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[s.Intn(5)] = true
	}
	for v := 0; v < 5; v++ {
		if !seen[v] {
			t.Fatalf("value %d never produced by Intn(5)", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9)
	for _, n := range []int{0, 1, 2, 5, 17, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermProperty(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size % 64)
		p := New(seed).Perm(n)
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPick(t *testing.T) {
	s := New(1)
	xs := []string{"a", "b", "c"}
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[Pick(s, xs)]++
	}
	for _, x := range xs {
		if counts[x] == 0 {
			t.Fatalf("Pick never returned %q", x)
		}
	}
}

func TestPickPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty Pick")
		}
	}()
	Pick(New(1), []int{})
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	// The child stream should not be a shifted copy of the parent stream.
	equal := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("parent and child streams overlap in %d/100 positions", equal)
	}
}

func TestBoolBalance(t *testing.T) {
	s := New(8)
	trues := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if s.Bool() {
			trues++
		}
	}
	if trues < n*45/100 || trues > n*55/100 {
		t.Fatalf("Bool returned true %d/%d times, expected ~50%%", trues, n)
	}
}

func TestUint32NotConstant(t *testing.T) {
	s := New(4)
	first := s.Uint32()
	for i := 0; i < 10; i++ {
		if s.Uint32() != first {
			return
		}
	}
	t.Fatal("Uint32 returned a constant stream")
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	if s.Uint64() == s.Uint64() {
		t.Fatal("zero-value Source produced identical consecutive values")
	}
}

func TestMul128KnownValues(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul128(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
