// Package rng provides a small, deterministic, allocation-free pseudo random
// number generator used throughout the repository.
//
// Experiments must be exactly reproducible across runs and machines, so the
// repository never uses the global math/rand source.  The generator is a
// SplitMix64 core (Steele, Lea, Flood: "Fast splittable pseudorandom number
// generators") which is statistically solid for simulation workloads, trivial
// to seed, and cheap enough to be used in inner loops.
//
// Two derivation primitives keep parallel and stochastic code deterministic
// without sharing mutable state across goroutines:
//
//   - Source.Split derives a statistically independent child stream (state
//     plus its own odd gamma increment, per the SplitMix64 paper), so each
//     worker or replica owns a private generator that never contends with —
//     or correlates against — its siblings.
//   - Hash is the stateless, counter-based form: a pure function of a seed
//     and a coordinate tuple (round, vertex, ...).  Because it carries no
//     state at all, any evaluation order — any worker count, any stepping
//     tier, any checkpoint/resume boundary — produces the same draw for the
//     same coordinates, which is what makes stochastic simulation runs
//     bit-reproducible.
package rng

import "math/bits"

// golden is the SplitMix64 default stream increment (the odd integer closest
// to 2^64/φ), used by every Source whose gamma was never customized.
const golden = 0x9e3779b97f4a7c15

// Mix is the SplitMix64 output finalizer: a fixed bijective 64-bit mixer
// whose output is statistically independent of small changes in the input.
// It is the shared core of Uint64 and Hash.
func Mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash derives a deterministic 64-bit value from a seed and a coordinate
// tuple — the counter-based randomness primitive behind stochastic schedules
// and noisy rules.  It is a pure function: Hash(seed, r, v) is the same on
// every machine, in every evaluation order, with no generator state to
// thread, checkpoint or lock.  Distinct tuples give statistically independent
// values; the same seed with a different arity never collides with a prefix
// (each position folds in its index).
func Hash(seed uint64, ids ...uint64) uint64 {
	h := Mix(seed + golden)
	for i, id := range ids {
		h = Mix(h + golden*uint64(i+1) + Mix(id+golden))
	}
	return h
}

// Unit maps a 64-bit hash to a uniform float64 in [0, 1), the stateless twin
// of Source.Float64 (same 53-bit construction).
func Unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Source is a deterministic SplitMix64 pseudo random number generator.
// The zero value is a valid generator seeded with 0 on the default stream;
// prefer New to make the seed explicit.
type Source struct {
	state uint64
	// gamma is the stream increment: 0 (the zero value and every New source)
	// means the default golden-ratio increment; Split children carry their
	// own random odd gamma, which is what makes their streams independent.
	gamma uint64
}

// New returns a Source seeded with the given value.  Two Sources built with
// the same seed produce identical streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Seed resets the generator to the stream defined by seed (keeping the
// source's gamma, so a split child reseeds within its own stream family).
func (s *Source) Seed(seed uint64) { s.state = seed }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	g := s.gamma
	if g == 0 {
		g = golden
	}
	s.state += g
	return Mix(s.state)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (s *Source) Uint32() uint32 { return uint32(s.Uint64() >> 32) }

// Int63 returns a non-negative int64.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Intn returns a uniform integer in [0, n).  It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method keeps the distribution exact
	// without a modulo bias.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a0 * b0
	lo = t & mask
	c := t >> 32
	t = a1*b0 + c
	mid := t & mask
	hi = t >> 32
	t = a0*b1 + mid
	lo |= (t & mask) << 32
	hi += t >> 32
	hi += a1 * b1
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniformly distributed boolean.
func (s *Source) Bool() bool { return s.Uint64()&1 == 1 }

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function (Fisher–Yates).  It panics if n < 0.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rng: Shuffle called with n < 0")
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of xs.  It panics on an empty slice.
func Pick[T any](s *Source, xs []T) T {
	if len(xs) == 0 {
		panic("rng: Pick called with empty slice")
	}
	return xs[s.Intn(len(xs))]
}

// Split returns a new Source whose stream is statistically independent of
// the receiver's remaining stream — the derivation primitive for handing
// each parallel worker or Monte-Carlo replica its own generator.  Following
// the SplitMix64 paper, the child gets a fresh state and its own random odd
// gamma increment (mixGamma), so parent and child walk different additive
// orbits rather than shifted copies of the same one.  Splitting is
// deterministic: the same parent state yields the same child.
func (s *Source) Split() *Source {
	state := s.Uint64()
	return &Source{state: state, gamma: mixGamma(s.Uint64())}
}

// mixGamma turns 64 arbitrary bits into a suitable stream increment: mixed
// (MurmurHash3 finalizer, per the SplitMix64 paper), forced odd, and nudged
// when the bit pattern is too regular (fewer than 24 bit-pair transitions),
// which empirically weakens the low-order output bits.
func mixGamma(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	z = (z ^ (z >> 33)) | 1
	if bits.OnesCount64(z^(z>>1)) < 24 {
		z ^= 0xaaaaaaaaaaaaaaaa
	}
	return z
}
