// Package rng provides a small, deterministic, allocation-free pseudo random
// number generator used throughout the repository.
//
// Experiments must be exactly reproducible across runs and machines, so the
// repository never uses the global math/rand source.  The generator is a
// SplitMix64 core (Steele, Lea, Flood: "Fast splittable pseudorandom number
// generators") which is statistically solid for simulation workloads, trivial
// to seed, and cheap enough to be used in inner loops.
package rng

// Source is a deterministic SplitMix64 pseudo random number generator.
// The zero value is a valid generator seeded with 0; prefer New to make the
// seed explicit.
type Source struct {
	state uint64
}

// New returns a Source seeded with the given value.  Two Sources built with
// the same seed produce identical streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Seed resets the generator to the stream defined by seed.
func (s *Source) Seed(seed uint64) { s.state = seed }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (s *Source) Uint32() uint32 { return uint32(s.Uint64() >> 32) }

// Int63 returns a non-negative int64.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Intn returns a uniform integer in [0, n).  It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method keeps the distribution exact
	// without a modulo bias.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a0 * b0
	lo = t & mask
	c := t >> 32
	t = a1*b0 + c
	mid := t & mask
	hi = t >> 32
	t = a0*b1 + mid
	lo |= (t & mask) << 32
	hi += t >> 32
	hi += a1 * b1
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniformly distributed boolean.
func (s *Source) Bool() bool { return s.Uint64()&1 == 1 }

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function (Fisher–Yates).  It panics if n < 0.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rng: Shuffle called with n < 0")
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of xs.  It panics on an empty slice.
func Pick[T any](s *Source, xs []T) T {
	if len(xs) == 0 {
		panic("rng: Pick called with empty slice")
	}
	return xs[s.Intn(len(xs))]
}

// Split returns a new Source whose stream is independent (for practical
// purposes) of the receiver's remaining stream.  It is used to hand each
// parallel worker its own generator.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0x5851f42d4c957f2d)
}
