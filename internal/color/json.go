package color

import (
	"encoding/json"
	"fmt"

	"repro/internal/grid"
)

// coloringJSON is the wire form of a Coloring: the lattice dimensions plus
// the row-major cell array.  Cells are plain integer labels so palettes of
// any size round-trip (the rune-grid format of String/Parse caps at 35).
type coloringJSON struct {
	Rows  int   `json:"rows"`
	Cols  int   `json:"cols"`
	Cells []int `json:"cells"`
}

// MarshalJSON encodes the coloring as {"rows", "cols", "cells"} with
// row-major integer cells.  It is the stable wire contract used by
// simulation results, reports and checkpoints.
func (c *Coloring) MarshalJSON() ([]byte, error) {
	out := coloringJSON{Rows: c.dims.Rows, Cols: c.dims.Cols, Cells: make([]int, len(c.cells))}
	for i, v := range c.cells {
		out.Cells[i] = int(v)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the format produced by MarshalJSON.  Unlike
// FromRows, it accepts the degenerate 1×n layout general-graph colorings
// carry; it rejects dimension/cell-count mismatches and negative cells.
func (c *Coloring) UnmarshalJSON(b []byte) error {
	var in coloringJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	if in.Rows < 1 || in.Cols < 1 {
		return fmt.Errorf("color: coloring dimensions %dx%d must be at least 1x1", in.Rows, in.Cols)
	}
	if in.Rows*in.Cols != len(in.Cells) {
		return fmt.Errorf("color: coloring %dx%d wants %d cells, got %d", in.Rows, in.Cols, in.Rows*in.Cols, len(in.Cells))
	}
	cells := make([]Color, len(in.Cells))
	for i, v := range in.Cells {
		if v < 0 {
			return fmt.Errorf("color: cell %d has negative color %d", i, v)
		}
		cells[i] = Color(v)
	}
	c.dims = grid.Dims{Rows: in.Rows, Cols: in.Cols}
	c.cells = cells
	return nil
}
