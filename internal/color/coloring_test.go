package color

import (
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/rng"
)

func TestNewColoringFill(t *testing.T) {
	c := NewColoring(grid.MustDims(3, 4), 2)
	if c.N() != 12 {
		t.Fatalf("N = %d", c.N())
	}
	for v := 0; v < c.N(); v++ {
		if c.At(v) != 2 {
			t.Fatalf("vertex %d = %v, want 2", v, c.At(v))
		}
	}
	empty := NewColoring(grid.MustDims(2, 2), None)
	if empty.At(0) != None {
		t.Error("unfilled coloring should be None")
	}
}

func TestFromRows(t *testing.T) {
	c, err := FromRows([][]Color{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if c.AtRC(0, 0) != 1 || c.AtRC(0, 1) != 2 || c.AtRC(1, 0) != 3 || c.AtRC(1, 1) != 4 {
		t.Error("FromRows misplaced cells")
	}
	if _, err := FromRows([][]Color{{1, 2}}); err == nil {
		t.Error("expected error for a single row")
	}
	if _, err := FromRows([][]Color{{1}, {2}}); err == nil {
		t.Error("expected error for a single column")
	}
	if _, err := FromRows([][]Color{{1, 2}, {3}}); err == nil {
		t.Error("expected error for ragged rows")
	}
}

func TestSettersAndGetters(t *testing.T) {
	c := NewColoring(grid.MustDims(4, 5), 1)
	c.Set(7, 3)
	if c.At(7) != 3 {
		t.Error("Set/At mismatch")
	}
	c.SetRC(2, 3, 4)
	if c.AtRC(2, 3) != 4 || c.AtCoord(grid.Coord{Row: 2, Col: 3}) != 4 {
		t.Error("SetRC/AtRC mismatch")
	}
	c.SetCoord(grid.Coord{Row: 3, Col: 1}, 5)
	if c.AtRC(3, 1) != 5 {
		t.Error("SetCoord mismatch")
	}
	if len(c.Cells()) != 20 {
		t.Error("Cells length wrong")
	}
}

func TestFillRowCol(t *testing.T) {
	c := NewColoring(grid.MustDims(4, 5), 1)
	c.FillRow(2, 7)
	for j := 0; j < 5; j++ {
		if c.AtRC(2, j) != 7 {
			t.Fatal("FillRow missed a cell")
		}
	}
	c.FillCol(3, 8)
	for i := 0; i < 4; i++ {
		if c.AtRC(i, 3) != 8 {
			t.Fatal("FillCol missed a cell")
		}
	}
	if c.AtRC(0, 0) != 1 {
		t.Error("FillRow/FillCol touched unrelated cells")
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	a := NewColoring(grid.MustDims(3, 3), 1)
	b := a.Clone()
	b.Set(0, 2)
	if a.At(0) != 1 {
		t.Error("Clone should not share backing storage")
	}
	a.CopyFrom(b)
	if a.At(0) != 2 {
		t.Error("CopyFrom did not copy")
	}
}

func TestCopyFromDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	NewColoring(grid.MustDims(3, 3), 1).CopyFrom(NewColoring(grid.MustDims(3, 4), 1))
}

func TestEqual(t *testing.T) {
	a := NewColoring(grid.MustDims(3, 3), 1)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clones should be equal")
	}
	b.Set(4, 2)
	if a.Equal(b) {
		t.Error("modified clone should differ")
	}
	c := NewColoring(grid.MustDims(3, 4), 1)
	if a.Equal(c) {
		t.Error("different dimensions should not be equal")
	}
}

func TestCountAndCounts(t *testing.T) {
	c := MustParse("112\n223\n333")
	if c.Count(1) != 2 || c.Count(2) != 3 || c.Count(3) != 4 {
		t.Errorf("Count wrong: %v", c.Counts())
	}
	counts := c.Counts()
	if counts[1] != 2 || counts[2] != 3 || counts[3] != 4 {
		t.Errorf("Counts wrong: %v", counts)
	}
	if c.Count(9) != 0 {
		t.Error("Count of absent color should be 0")
	}
}

func TestVertices(t *testing.T) {
	c := MustParse("12\n21")
	vs := c.Vertices(1)
	if len(vs) != 2 || vs[0] != 0 || vs[1] != 3 {
		t.Errorf("Vertices(1) = %v", vs)
	}
	if len(c.Vertices(5)) != 0 {
		t.Error("Vertices of absent color should be empty")
	}
}

func TestIsMonochromatic(t *testing.T) {
	c := NewColoring(grid.MustDims(3, 3), 4)
	col, ok := c.IsMonochromatic()
	if !ok || col != 4 {
		t.Errorf("IsMonochromatic = %v,%v", col, ok)
	}
	c.Set(5, 2)
	if _, ok := c.IsMonochromatic(); ok {
		t.Error("mixed coloring reported monochromatic")
	}
}

func TestIsSubsetOf(t *testing.T) {
	a := MustParse("12\n22")
	b := MustParse("11\n21")
	// a's 1-set = {(0,0)}; b's 1-set = {(0,0),(0,1),(1,1)}.
	if !a.IsSubsetOf(b, 1) {
		t.Error("a's 1-set should be a subset of b's")
	}
	if b.IsSubsetOf(a, 1) {
		t.Error("b's 1-set should not be a subset of a's")
	}
	other := NewColoring(grid.MustDims(3, 3), 1)
	if a.IsSubsetOf(other, 1) {
		t.Error("different dimensions should never be subsets")
	}
}

func TestMaxColor(t *testing.T) {
	c := MustParse("12\n34")
	if c.MaxColor() != 4 {
		t.Errorf("MaxColor = %v", c.MaxColor())
	}
	if NewColoring(grid.MustDims(2, 2), None).MaxColor() != None {
		t.Error("MaxColor of unset coloring should be None")
	}
}

func TestValidate(t *testing.T) {
	c := MustParse("12\n21")
	if err := c.Validate(MustPalette(2)); err != nil {
		t.Errorf("valid coloring rejected: %v", err)
	}
	if err := c.Validate(MustPalette(1)); err == nil {
		t.Error("coloring with color 2 should fail a 1-color palette")
	}
	c.Set(0, None)
	if err := c.Validate(MustPalette(2)); err == nil {
		t.Error("unset cell should fail validation")
	}
}

func TestBoundingRectangle(t *testing.T) {
	c := MustParse(`
2222
2122
2212
2222`)
	rows, cols := c.BoundingRectangle(1)
	if rows != 2 || cols != 2 {
		t.Errorf("BoundingRectangle(1) = %d,%d, want 2,2", rows, cols)
	}
	rows, cols = c.BoundingRectangle(2)
	if rows != 4 || cols != 4 {
		t.Errorf("BoundingRectangle(2) = %d,%d, want 4,4", rows, cols)
	}
	rows, cols = c.BoundingRectangle(9)
	if rows != 0 || cols != 0 {
		t.Errorf("BoundingRectangle of absent color = %d,%d", rows, cols)
	}
}

func TestDiff(t *testing.T) {
	a := MustParse("12\n34")
	b := MustParse("12\n35")
	d := a.Diff(b)
	if len(d) != 1 || d[0] != 3 {
		t.Errorf("Diff = %v", d)
	}
	if len(a.Diff(a)) != 0 {
		t.Error("Diff with itself should be empty")
	}
}

func TestDiffDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("12\n34").Diff(NewColoring(grid.MustDims(3, 3), 1))
}

func TestRandomColoringValid(t *testing.T) {
	src := rng.New(1)
	p := MustPalette(5)
	c := RandomColoring(grid.MustDims(10, 10), p, func() int { return src.Intn(p.K) })
	if err := c.Validate(p); err != nil {
		t.Fatalf("random coloring invalid: %v", err)
	}
	// With 100 cells and 5 colors, every color should almost surely appear.
	for _, col := range p.Colors() {
		if c.Count(col) == 0 {
			t.Errorf("color %v never used", col)
		}
	}
}

func TestCountsSumProperty(t *testing.T) {
	f := func(seed uint64, rows, cols, k uint8) bool {
		r := 2 + int(rows)%8
		cl := 2 + int(cols)%8
		kk := 1 + int(k)%6
		src := rng.New(seed)
		p := MustPalette(kk)
		c := RandomColoring(grid.MustDims(r, cl), p, func() int { return src.Intn(p.K) })
		total := 0
		for _, n := range c.Counts() {
			total += n
		}
		return total == r*cl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRowsOfRoundTrip(t *testing.T) {
	c := MustParse("123\n456\n789")
	back, err := FromRows(c.RowsOf())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(back) {
		t.Error("RowsOf/FromRows round trip failed")
	}
}
