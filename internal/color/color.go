// Package color defines the color alphabet and the lattice colorings on
// which the SMP-Protocol operates.
//
// Following Section II.B of the paper, the color set is C = {1, …, k}; a
// coloring is a total assignment r : V → C.  The package keeps colorings as
// flat slices indexed by the dense vertex index of internal/grid so the
// simulation engine can iterate without bounds-check-heavy nested loops.
package color

import (
	"fmt"
)

// Color is one element of the finite color set C = {1..k}.  The zero value
// means "unset" and never appears in a valid coloring.
type Color int

// None is the zero Color, used to signal "no color" in APIs that may fail to
// produce one.
const None Color = 0

// Valid reports whether the color belongs to {1..k} for a palette of k
// colors.
func (c Color) Valid(k int) bool { return c >= 1 && int(c) <= k }

// String renders the color as its integer label, or "-" for None.
func (c Color) String() string {
	if c == None {
		return "-"
	}
	return fmt.Sprintf("%d", int(c))
}

// Rune returns a single printable rune for the color, used by the ASCII
// renderer: 1..9 map to '1'..'9', 10..35 to 'a'..'z', anything else to '#'.
// None maps to '.'.
func (c Color) Rune() rune {
	switch {
	case c == None:
		return '.'
	case c >= 1 && c <= 9:
		return rune('0' + int(c))
	case c >= 10 && c <= 35:
		return rune('a' + int(c) - 10)
	default:
		return '#'
	}
}

// Palette is the finite ordered color set C = {1..K}.
type Palette struct {
	// K is the number of colors.
	K int
}

// NewPalette returns the palette {1..k}.  It returns an error for k < 1.
func NewPalette(k int) (Palette, error) {
	if k < 1 {
		return Palette{}, fmt.Errorf("color: palette must have at least 1 color, got %d", k)
	}
	return Palette{K: k}, nil
}

// MustPalette is NewPalette but panics on error.
func MustPalette(k int) Palette {
	p, err := NewPalette(k)
	if err != nil {
		panic(err)
	}
	return p
}

// Colors returns all colors of the palette in increasing order.
func (p Palette) Colors() []Color {
	out := make([]Color, p.K)
	for i := range out {
		out[i] = Color(i + 1)
	}
	return out
}

// Others returns the palette's colors except k, in increasing order.  The
// paper writes this set C \ {k}.
func (p Palette) Others(k Color) []Color {
	out := make([]Color, 0, p.K-1)
	for i := 1; i <= p.K; i++ {
		if Color(i) != k {
			out = append(out, Color(i))
		}
	}
	return out
}

// Contains reports whether c belongs to the palette.
func (p Palette) Contains(c Color) bool { return c.Valid(p.K) }

// String renders the palette as "{1..K}".
func (p Palette) String() string { return fmt.Sprintf("{1..%d}", p.K) }
