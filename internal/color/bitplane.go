package color

// Bit-plane packing: the representation behind the engine's word-parallel
// stepper.  A coloring over the palette {1..k}, k ≤ MaxPlaneColors, is
// sliced into PlanesFor(k) bit planes of ⌈n/64⌉ uint64 words each: bit v of
// plane b is bit b of the encoding (color-1) of vertex v.  One word then
// carries one plane of 64 consecutive vertices, and a local rule whose
// decision has a closed bitwise form can evaluate all 64 at once.

// MaxPlaneColors is the largest palette size the bit-plane representation
// supports (two planes of encodings 0..3).
const MaxPlaneColors = 4

// PlanesFor returns the number of bit planes needed to encode the palette
// {1..k}: one plane for k ≤ 2, two for k ≤ 4.  ok is false beyond
// MaxPlaneColors (and for k < 1).
func PlanesFor(k int) (planes int, ok bool) {
	switch {
	case k < 1:
		return 0, false
	case k <= 2:
		return 1, true
	case k <= MaxPlaneColors:
		return 2, true
	default:
		return 0, false
	}
}

// PlaneWords returns the number of uint64 words of one bit plane over n
// vertices: ⌈n/64⌉.
func PlaneWords(n int) int { return (n + 63) >> 6 }

// PlaneTailMask returns the mask of the valid lanes of the last plane word:
// bits n%64.. of word ⌈n/64⌉-1 correspond to no vertex and are kept zero.
func PlaneTailMask(n int) uint64 {
	if r := uint(n & 63); r != 0 {
		return (uint64(1) << r) - 1
	}
	return ^uint64(0)
}

// PackPlanes bit-slices cells into the given planes (1 or 2 slices of
// PlaneWords(len(cells)) words each).  Bit v of planes[b] receives bit b of
// cells[v]-1; lanes beyond len(cells) in the tail word are zeroed.  It
// reports false — leaving the planes in an unspecified state — when any cell
// falls outside the representable range {1 .. 1<<len(planes)}, which is how
// the engine detects colorings (e.g. containing None) that do not qualify
// for the bit-sliced tier.
func PackPlanes(cells []Color, planes [][]uint64) bool {
	words := PlaneWords(len(cells))
	for b := range planes {
		plane := planes[b][:words]
		for w := range plane {
			plane[w] = 0
		}
	}
	limit := 1 << len(planes)
	for v, c := range cells {
		e := int(c) - 1
		if e < 0 || e >= limit {
			return false
		}
		w, bit := v>>6, uint(v&63)
		for b := range planes {
			planes[b][w] |= uint64((e>>b)&1) << bit
		}
	}
	return true
}

// UnpackPlanes is the inverse of PackPlanes: it reconstructs cells[v] =
// encoding+1 from the planes.  Lanes beyond len(cells) are ignored.
func UnpackPlanes(planes [][]uint64, cells []Color) {
	for v := range cells {
		w, bit := v>>6, uint(v&63)
		e := 0
		for b := range planes {
			e |= int((planes[b][w]>>bit)&1) << b
		}
		cells[v] = Color(e + 1)
	}
}
