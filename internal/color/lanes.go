package color

// Lane packing is the bit-sliced ensemble layout.  Where the bitplane
// layout (PackPlanes) spreads ONE coloring across words — word w of plane b
// holds bit b of 64 consecutive vertices — the lane layout spreads up to 64
// COLORINGS across the bits of per-vertex words: bit r of words[v] is the
// one-bit encoding (color − 1) of vertex v in replica r.  One word
// operation then steps the same vertex of 64 independent runs at once,
// which is the batching shape the ensemble workloads (VerifyBatch sweeps,
// greedy target-set candidate evaluation, Monte-Carlo replicas) want.  The
// layout is exact only for two-color states (colors 1 and 2), the k = 2
// regime of the carry-save BitRule kernels.

// MaxLanes is the ensemble width of the lane layout: one replica per bit of
// a 64-bit word.
const MaxLanes = 64

// PackLanes packs the replica colorings runs[0..L-1] (1 ≤ L ≤ MaxLanes)
// into words, one word per vertex: bit r of words[v] is runs[r]'s color at
// v minus one.  Bits of unused lanes are cleared.  It returns the largest
// color seen across the ensemble (its effective palette size, 1 or 2) and
// whether the packing is exact; ok is false — and words is unspecified —
// when the lane count is out of range, a replica's length disagrees with
// len(words), or any cell holds a color outside {1, 2}.
func PackLanes(runs []*Coloring, words []uint64) (k int, ok bool) {
	if len(runs) == 0 || len(runs) > MaxLanes {
		return 0, false
	}
	for i := range words {
		words[i] = 0
	}
	k = 1
	for r, run := range runs {
		cells := run.Cells()
		if len(cells) != len(words) {
			return 0, false
		}
		bit := uint64(1) << uint(r)
		for v, c := range cells {
			switch c {
			case 1:
				// encoding 0: bit stays clear
			case 2:
				words[v] |= bit
				k = 2
			default:
				return 0, false
			}
		}
	}
	return k, true
}

// UnpackLane extracts replica lane of a lane-packed word array back into
// dst, the inverse of PackLanes for that lane.  dst must have exactly
// len(words) cells.
func UnpackLane(words []uint64, lane int, dst *Coloring) {
	cells := dst.Cells()
	_ = cells[len(words)-1]
	for v, w := range words {
		cells[v] = Color(1 + (w>>uint(lane))&1)
	}
}
