package color

import (
	"fmt"

	"repro/internal/grid"
)

// Coloring is a total color assignment over the vertices of an m×n lattice.
// It is the mutable state evolved by the simulation engine.
type Coloring struct {
	dims  grid.Dims
	cells []Color
}

// NewColoring returns a coloring of the given dimensions with every vertex
// set to fill.
func NewColoring(dims grid.Dims, fill Color) *Coloring {
	c := &Coloring{dims: dims, cells: make([]Color, dims.N())}
	if fill != None {
		c.Fill(fill)
	}
	return c
}

// FromRows builds a coloring from a row-major matrix of colors.  All rows
// must have equal, non-zero length and there must be at least two rows and
// two columns.
func FromRows(rows [][]Color) (*Coloring, error) {
	if len(rows) < 2 {
		return nil, fmt.Errorf("color: need at least 2 rows, got %d", len(rows))
	}
	cols := len(rows[0])
	if cols < 2 {
		return nil, fmt.Errorf("color: need at least 2 columns, got %d", cols)
	}
	dims, err := grid.NewDims(len(rows), cols)
	if err != nil {
		return nil, err
	}
	c := NewColoring(dims, None)
	for i, row := range rows {
		if len(row) != cols {
			return nil, fmt.Errorf("color: row %d has %d columns, want %d", i, len(row), cols)
		}
		for j, col := range row {
			c.SetRC(i, j, col)
		}
	}
	return c, nil
}

// Dims returns the lattice dimensions.
func (c *Coloring) Dims() grid.Dims { return c.dims }

// N returns the number of vertices.
func (c *Coloring) N() int { return len(c.cells) }

// At returns the color of vertex v (dense index).
func (c *Coloring) At(v int) Color { return c.cells[v] }

// Set assigns color col to vertex v (dense index).
func (c *Coloring) Set(v int, col Color) { c.cells[v] = col }

// AtCoord returns the color at the given coordinate.
func (c *Coloring) AtCoord(p grid.Coord) Color { return c.cells[c.dims.Index(p)] }

// AtRC returns the color at (row, col).
func (c *Coloring) AtRC(row, col int) Color { return c.cells[c.dims.IndexRC(row, col)] }

// SetCoord assigns a color at the given coordinate.
func (c *Coloring) SetCoord(p grid.Coord, col Color) { c.cells[c.dims.Index(p)] = col }

// SetRC assigns a color at (row, col).
func (c *Coloring) SetRC(row, col int, colr Color) { c.cells[c.dims.IndexRC(row, col)] = colr }

// Cells exposes the backing slice.  Callers must treat it as read-only
// unless they own the coloring; it exists so the engine's inner loop can
// avoid per-vertex method calls.
func (c *Coloring) Cells() []Color { return c.cells }

// Fill sets every vertex to col.
func (c *Coloring) Fill(col Color) {
	for i := range c.cells {
		c.cells[i] = col
	}
}

// FillRow sets every vertex of the given row to col.
func (c *Coloring) FillRow(row int, col Color) {
	for j := 0; j < c.dims.Cols; j++ {
		c.SetRC(row, j, col)
	}
}

// FillCol sets every vertex of the given column to col.
func (c *Coloring) FillCol(colIdx int, col Color) {
	for i := 0; i < c.dims.Rows; i++ {
		c.SetRC(i, colIdx, col)
	}
}

// Clone returns a deep copy of the coloring.
func (c *Coloring) Clone() *Coloring {
	out := &Coloring{dims: c.dims, cells: make([]Color, len(c.cells))}
	copy(out.cells, c.cells)
	return out
}

// CopyFrom overwrites the receiver's cells with those of src.  The two
// colorings must have identical dimensions.
func (c *Coloring) CopyFrom(src *Coloring) {
	if c.dims != src.dims {
		panic(fmt.Sprintf("color: CopyFrom dimension mismatch %v vs %v", c.dims, src.dims))
	}
	copy(c.cells, src.cells)
}

// Equal reports whether two colorings have identical dimensions and cells.
func (c *Coloring) Equal(other *Coloring) bool {
	if c.dims != other.dims {
		return false
	}
	for i, v := range c.cells {
		if other.cells[i] != v {
			return false
		}
	}
	return true
}

// Count returns the number of vertices with color col.
func (c *Coloring) Count(col Color) int {
	n := 0
	for _, v := range c.cells {
		if v == col {
			n++
		}
	}
	return n
}

// Counts returns a histogram of colors keyed by color.
func (c *Coloring) Counts() map[Color]int {
	out := make(map[Color]int)
	for _, v := range c.cells {
		out[v]++
	}
	return out
}

// Vertices returns the dense indices of all vertices with color col, in
// increasing order.  The paper writes this set V^col.
func (c *Coloring) Vertices(col Color) []int {
	out := make([]int, 0)
	for v, cv := range c.cells {
		if cv == col {
			out = append(out, v)
		}
	}
	return out
}

// IsMonochromatic reports whether all vertices share one color and, if so,
// returns it.
func (c *Coloring) IsMonochromatic() (Color, bool) {
	if len(c.cells) == 0 {
		return None, false
	}
	first := c.cells[0]
	for _, v := range c.cells[1:] {
		if v != first {
			return None, false
		}
	}
	return first, true
}

// IsSubsetOf reports whether every vertex colored col in the receiver is
// also colored col in other.  This is the inclusion used by the paper's
// definition of a monotone dynamo (Definition 3).
func (c *Coloring) IsSubsetOf(other *Coloring, col Color) bool {
	if c.dims != other.dims {
		return false
	}
	for v, cv := range c.cells {
		if cv == col && other.cells[v] != col {
			return false
		}
	}
	return true
}

// MaxColor returns the largest color label used in the coloring (0 if all
// cells are unset).
func (c *Coloring) MaxColor() Color {
	max := None
	for _, v := range c.cells {
		if v > max {
			max = v
		}
	}
	return max
}

// Validate checks that every vertex carries a color of the palette.
func (c *Coloring) Validate(p Palette) error {
	for v, cv := range c.cells {
		if !p.Contains(cv) {
			return fmt.Errorf("color: vertex %d (%v) has color %v outside palette %v",
				v, c.dims.Coord(v), cv, p)
		}
	}
	return nil
}

// BoundingRectangle returns the dimensions (rows, cols) of the smallest
// axis-aligned rectangle of the lattice containing every vertex of color
// col, without wrapping.  This is the quantity the paper calls
// m_{S} × n_{S} for the set S of col-colored vertices.  If no vertex has the
// color it returns (0, 0).
func (c *Coloring) BoundingRectangle(col Color) (rows, cols int) {
	minR, maxR := c.dims.Rows, -1
	minC, maxC := c.dims.Cols, -1
	for v, cv := range c.cells {
		if cv != col {
			continue
		}
		p := c.dims.Coord(v)
		if p.Row < minR {
			minR = p.Row
		}
		if p.Row > maxR {
			maxR = p.Row
		}
		if p.Col < minC {
			minC = p.Col
		}
		if p.Col > maxC {
			maxC = p.Col
		}
	}
	if maxR < 0 {
		return 0, 0
	}
	return maxR - minR + 1, maxC - minC + 1
}

// Diff returns the vertices whose colors differ between c and other.
func (c *Coloring) Diff(other *Coloring) []int {
	if c.dims != other.dims {
		panic("color: Diff dimension mismatch")
	}
	var out []int
	for v := range c.cells {
		if c.cells[v] != other.cells[v] {
			out = append(out, v)
		}
	}
	return out
}
