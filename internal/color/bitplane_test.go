package color

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/rng"
)

func TestPlanesFor(t *testing.T) {
	cases := []struct {
		k, planes int
		ok        bool
	}{
		{0, 0, false}, {1, 1, true}, {2, 1, true}, {3, 2, true}, {4, 2, true}, {5, 0, false},
	}
	for _, c := range cases {
		planes, ok := PlanesFor(c.k)
		if planes != c.planes || ok != c.ok {
			t.Errorf("PlanesFor(%d) = (%d, %v), want (%d, %v)", c.k, planes, ok, c.planes, c.ok)
		}
	}
}

func TestPlaneWordsAndTailMask(t *testing.T) {
	if PlaneWords(64) != 1 || PlaneWords(65) != 2 || PlaneWords(4) != 1 {
		t.Fatal("PlaneWords wrong")
	}
	if PlaneTailMask(64) != ^uint64(0) {
		t.Fatal("full tail word must have a full mask")
	}
	if PlaneTailMask(4) != 0xF {
		t.Fatalf("PlaneTailMask(4) = %x", PlaneTailMask(4))
	}
	if PlaneTailMask(65) != 1 {
		t.Fatalf("PlaneTailMask(65) = %x", PlaneTailMask(65))
	}
}

// TestPackUnpackRoundTrip packs random colorings over every supported
// palette and size shape (word-multiple and not, 2×n degenerates) and
// requires a lossless round trip plus a zeroed tail.
func TestPackUnpackRoundTrip(t *testing.T) {
	src := rng.New(7)
	for _, k := range []int{1, 2, 3, 4} {
		planesN, _ := PlanesFor(k)
		for _, sz := range [][2]int{{2, 2}, {2, 7}, {8, 8}, {3, 67}, {5, 13}} {
			d := grid.MustDims(sz[0], sz[1])
			p := MustPalette(k)
			c := RandomColoring(d, p, func() int { return src.Intn(p.K) })
			words := PlaneWords(d.N())
			planes := make([][]uint64, planesN)
			for b := range planes {
				// Dirty buffers: PackPlanes must fully overwrite.
				planes[b] = make([]uint64, words)
				for w := range planes[b] {
					planes[b][w] = ^uint64(0)
				}
			}
			if !PackPlanes(c.Cells(), planes) {
				t.Fatalf("k=%d %v: pack refused a valid coloring", k, d)
			}
			tail := PlaneTailMask(d.N())
			for b := range planes {
				if planes[b][words-1]&^tail != 0 {
					t.Fatalf("k=%d %v: plane %d tail not zeroed", k, d, b)
				}
			}
			out := NewColoring(d, None)
			UnpackPlanes(planes, out.Cells())
			if !out.Equal(c) {
				t.Fatalf("k=%d %v: round trip lost data", k, d)
			}
		}
	}
}

// TestPackPlanesRejectsOutOfRange: None (0) and colors beyond the plane
// capacity must be refused, which is how the engine detects non-qualifying
// colorings.
func TestPackPlanesRejectsOutOfRange(t *testing.T) {
	d := grid.MustDims(3, 3)
	words := PlaneWords(d.N())
	planes := [][]uint64{make([]uint64, words)}
	c := NewColoring(d, 1)
	c.Set(4, None)
	if PackPlanes(c.Cells(), planes) {
		t.Fatal("pack must reject None")
	}
	c.Set(4, 3) // 3 needs two planes; only one given
	if PackPlanes(c.Cells(), planes) {
		t.Fatal("pack must reject colors beyond the plane capacity")
	}
	planes = append(planes, make([]uint64, words))
	if !PackPlanes(c.Cells(), planes) {
		t.Fatal("two planes must accept color 3")
	}
}
