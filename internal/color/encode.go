package color

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/grid"
)

// String renders the coloring as a compact grid of runes, one row per line,
// using Color.Rune for each cell.  The output round-trips through Parse for
// palettes of at most 35 colors.
func (c *Coloring) String() string {
	var b strings.Builder
	for i := 0; i < c.dims.Rows; i++ {
		for j := 0; j < c.dims.Cols; j++ {
			b.WriteRune(c.AtRC(i, j).Rune())
		}
		if i < c.dims.Rows-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Parse decodes the rune-grid format produced by Coloring.String.  Rows are
// separated by newlines; '1'-'9' decode to colors 1-9, 'a'-'z' to 10-35 and
// '.' to None.  Blank lines and surrounding whitespace per line are ignored.
func Parse(s string) (*Coloring, error) {
	var rows [][]Color
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var row []Color
		for _, r := range line {
			col, err := runeToColor(r)
			if err != nil {
				return nil, err
			}
			row = append(row, col)
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("color: empty grid")
	}
	return FromRows(rows)
}

func runeToColor(r rune) (Color, error) {
	switch {
	case r == '.':
		return None, nil
	case r >= '1' && r <= '9':
		return Color(r - '0'), nil
	case r >= 'a' && r <= 'z':
		return Color(r-'a') + 10, nil
	default:
		return None, fmt.Errorf("color: cannot decode rune %q", r)
	}
}

// CSV renders the coloring as comma-separated integer labels, one row per
// line.  It is the interchange format used by the experiment harness.
func (c *Coloring) CSV() string {
	var b strings.Builder
	for i := 0; i < c.dims.Rows; i++ {
		for j := 0; j < c.dims.Cols; j++ {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(int(c.AtRC(i, j))))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseCSV decodes the format produced by CSV.
func ParseCSV(s string) (*Coloring, error) {
	var rows [][]Color
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		row := make([]Color, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("color: bad CSV cell %q: %v", f, err)
			}
			row = append(row, Color(v))
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("color: empty CSV")
	}
	return FromRows(rows)
}

// MustParse is Parse but panics on error; it keeps table-driven tests and
// examples concise.
func MustParse(s string) *Coloring {
	c, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return c
}

// RowsOf converts the coloring back into a row-major matrix of colors.
func (c *Coloring) RowsOf() [][]Color {
	out := make([][]Color, c.dims.Rows)
	for i := range out {
		row := make([]Color, c.dims.Cols)
		for j := range row {
			row[j] = c.AtRC(i, j)
		}
		out[i] = row
	}
	return out
}

// RandomColoring fills a new coloring with uniformly chosen palette colors
// produced by next, which must return values in [0, k).  It is split from
// the rng package to keep this package dependency-free; callers pass
// func() int { return src.Intn(p.K) }.
func RandomColoring(dims grid.Dims, p Palette, next func() int) *Coloring {
	c := NewColoring(dims, None)
	for v := 0; v < dims.N(); v++ {
		c.Set(v, Color(next()+1))
	}
	return c
}
