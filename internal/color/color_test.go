package color

import (
	"testing"
)

func TestColorValid(t *testing.T) {
	if None.Valid(5) {
		t.Error("None should not be valid")
	}
	if !Color(1).Valid(5) || !Color(5).Valid(5) {
		t.Error("colors 1 and 5 should be valid in a 5-palette")
	}
	if Color(6).Valid(5) {
		t.Error("color 6 should not be valid in a 5-palette")
	}
	if Color(-1).Valid(5) {
		t.Error("negative colors are never valid")
	}
}

func TestColorString(t *testing.T) {
	if None.String() != "-" {
		t.Errorf("None.String() = %q", None.String())
	}
	if Color(7).String() != "7" {
		t.Errorf("Color(7).String() = %q", Color(7).String())
	}
}

func TestColorRune(t *testing.T) {
	cases := []struct {
		c    Color
		want rune
	}{
		{None, '.'},
		{1, '1'},
		{9, '9'},
		{10, 'a'},
		{35, 'z'},
		{36, '#'},
		{100, '#'},
	}
	for _, tc := range cases {
		if got := tc.c.Rune(); got != tc.want {
			t.Errorf("Color(%d).Rune() = %q, want %q", tc.c, got, tc.want)
		}
	}
}

func TestPaletteConstruction(t *testing.T) {
	if _, err := NewPalette(0); err == nil {
		t.Error("expected error for empty palette")
	}
	p, err := NewPalette(4)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 4 {
		t.Errorf("K = %d", p.K)
	}
	colors := p.Colors()
	if len(colors) != 4 || colors[0] != 1 || colors[3] != 4 {
		t.Errorf("Colors() = %v", colors)
	}
	if p.String() != "{1..4}" {
		t.Errorf("String() = %q", p.String())
	}
}

func TestMustPalettePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPalette(0) should panic")
		}
	}()
	MustPalette(0)
}

func TestPaletteOthers(t *testing.T) {
	p := MustPalette(4)
	others := p.Others(2)
	want := []Color{1, 3, 4}
	if len(others) != len(want) {
		t.Fatalf("Others(2) = %v", others)
	}
	for i := range want {
		if others[i] != want[i] {
			t.Fatalf("Others(2) = %v, want %v", others, want)
		}
	}
	if len(p.Others(9)) != 4 {
		t.Error("Others of a color outside the palette should return all colors")
	}
}

func TestPaletteContains(t *testing.T) {
	p := MustPalette(3)
	if !p.Contains(1) || !p.Contains(3) {
		t.Error("palette should contain 1 and 3")
	}
	if p.Contains(0) || p.Contains(4) {
		t.Error("palette should not contain 0 or 4")
	}
}
