package color

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/rng"
)

func TestStringParseRoundTrip(t *testing.T) {
	src := rng.New(77)
	p := MustPalette(12)
	c := RandomColoring(grid.MustDims(6, 9), p, func() int { return src.Intn(p.K) })
	parsed, err := Parse(c.String())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(parsed) {
		t.Error("String/Parse round trip failed")
	}
}

func TestParseWhitespaceAndBlankLines(t *testing.T) {
	c, err := Parse("\n  12 \n\n 21 \n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Dims() != grid.MustDims(2, 2) {
		t.Errorf("dims = %v", c.Dims())
	}
	if c.AtRC(0, 0) != 1 || c.AtRC(1, 0) != 2 {
		t.Error("cells misparsed")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(""); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Parse("12\n2X"); err == nil {
		t.Error("invalid rune should fail")
	}
	if _, err := Parse("123\n12"); err == nil {
		t.Error("ragged grid should fail")
	}
	if _, err := Parse("12"); err == nil {
		t.Error("single row should fail")
	}
}

func TestParseDotsAsNone(t *testing.T) {
	c, err := Parse("1.\n.1")
	if err != nil {
		t.Fatal(err)
	}
	if c.AtRC(0, 1) != None || c.AtRC(1, 0) != None {
		t.Error("dots should decode to None")
	}
}

func TestParseLetterColors(t *testing.T) {
	c, err := Parse("ab\nz1")
	if err != nil {
		t.Fatal(err)
	}
	if c.AtRC(0, 0) != 10 || c.AtRC(0, 1) != 11 || c.AtRC(1, 0) != 35 {
		t.Errorf("letters misdecoded: %v %v %v", c.AtRC(0, 0), c.AtRC(0, 1), c.AtRC(1, 0))
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("!!\n!!")
}

func TestCSVRoundTrip(t *testing.T) {
	src := rng.New(5)
	p := MustPalette(50) // exceeds the rune alphabet on purpose
	c := RandomColoring(grid.MustDims(5, 7), p, func() int { return src.Intn(p.K) })
	parsed, err := ParseCSV(c.CSV())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(parsed) {
		t.Error("CSV round trip failed")
	}
}

func TestCSVFormat(t *testing.T) {
	c := MustParse("12\n34")
	got := c.CSV()
	want := "1,2\n3,4\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestParseCSVErrors(t *testing.T) {
	if _, err := ParseCSV(""); err == nil {
		t.Error("empty CSV should fail")
	}
	if _, err := ParseCSV("1,2\n3,x"); err == nil {
		t.Error("non-numeric cell should fail")
	}
	if _, err := ParseCSV("1,2\n3"); err == nil {
		t.Error("ragged CSV should fail")
	}
}

func TestStringHasExpectedShape(t *testing.T) {
	c := NewColoring(grid.MustDims(3, 4), 2)
	s := c.String()
	lines := strings.Split(s, "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d", len(lines))
	}
	for _, line := range lines {
		if line != "2222" {
			t.Errorf("unexpected line %q", line)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, rows, cols, k uint8) bool {
		r := 2 + int(rows)%6
		cl := 2 + int(cols)%6
		kk := 1 + int(k)%30
		src := rng.New(seed)
		p := MustPalette(kk)
		c := RandomColoring(grid.MustDims(r, cl), p, func() int { return src.Intn(p.K) })
		viaRunes, err := Parse(c.String())
		if err != nil || !c.Equal(viaRunes) {
			return false
		}
		viaCSV, err := ParseCSV(c.CSV())
		return err == nil && c.Equal(viaCSV)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
