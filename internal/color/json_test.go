package color

import (
	"encoding/json"
	"testing"

	"repro/internal/grid"
)

// TestColoringJSONRoundTrip pins the wire form of a coloring, including the
// degenerate 1×n layout general-graph colorings carry and colors beyond the
// rune-grid cap of 35.
func TestColoringJSONRoundTrip(t *testing.T) {
	c := NewColoring(grid.MustDims(2, 3), None)
	for v := 0; v < c.N(); v++ {
		c.Set(v, Color(v*20+1)) // includes colors > 35
	}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"rows":2,"cols":3,"cells":[1,21,41,61,81,101]}`
	if string(b) != want {
		t.Fatalf("wire form drifted:\n got %s\nwant %s", b, want)
	}
	var back Coloring
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(c) {
		t.Fatal("coloring did not round-trip")
	}

	line := &Coloring{dims: grid.Dims{Rows: 1, Cols: 4}, cells: []Color{1, 2, 1, 2}}
	b, err = json.Marshal(line)
	if err != nil {
		t.Fatal(err)
	}
	var lineBack Coloring
	if err := json.Unmarshal(b, &lineBack); err != nil {
		t.Fatalf("1xn layout rejected: %v", err)
	}
	if !lineBack.Equal(line) {
		t.Fatal("1xn coloring did not round-trip")
	}
}

// TestColoringJSONRejectsMalformed pins strict decoding: dimension and cell
// mismatches, negative cells and non-object documents all error.
func TestColoringJSONRejectsMalformed(t *testing.T) {
	for label, doc := range map[string]string{
		"cell count mismatch": `{"rows":2,"cols":2,"cells":[1,2,3]}`,
		"zero rows":           `{"rows":0,"cols":2,"cells":[]}`,
		"negative cell":       `{"rows":1,"cols":2,"cells":[1,-2]}`,
		"not an object":       `[1,2,3]`,
	} {
		var c Coloring
		if err := json.Unmarshal([]byte(doc), &c); err == nil {
			t.Errorf("%s: accepted %s", label, doc)
		}
	}
}
