package sim

import (
	"runtime"
	"sync"

	"repro/internal/color"
)

// stripeTask is one unit of striped step work.  Tasks live in a per-run
// buffer recycled through the engine's state pool, so steady-state parallel
// stepping allocates nothing: a step fills the pre-allocated tasks, hands
// pointers to the shared worker pool and waits on the run's WaitGroup.
//
// run is one of the package-level method expressions below, chosen by the
// tier: the scalar stripe uses (e, cur, next), the bitplane stripe uses bp.
// changed is written by the worker and read by the submitter after the
// WaitGroup settles.
type stripeTask struct {
	run func(*stripeTask)
	wg  *sync.WaitGroup

	e         *Engine
	cur, next []color.Color

	// bp parameterizes the bitplane stripe: the task steps the word range
	// [lo, hi) in fused shift+kernel cache blocks.
	bp *Bitplane

	// shd parameterizes the sharded stripe: the task's lo field carries the
	// shard index and the per-shard outputs land in the shard's own state.
	shd *Sharded

	// round and avail parameterize the time-varying stripe; scratch backs
	// the generic and time-varying stripes' neighbor gathering.  scratch is
	// owned by the task slot and survives across steps (stripeAcross's fill
	// callbacks preserve it), so steady-state parallel stepping stays
	// allocation-free on irregular substrates too.
	round   int
	avail   Availability
	scratch []color.Color

	// sched and noise parameterize the stochastic stripe; both are read-only
	// during a step, so stripes share them without coordination.
	sched *Schedule
	noise *Noise

	lo, hi  int
	changed int
}

func (t *stripeTask) runSweep() {
	t.growScratch()
	t.changed = t.e.stepRange(t.cur, t.next, t.lo, t.hi, t.scratch)
}

func (t *stripeTask) runSweepTV() {
	t.growScratch()
	t.changed = t.e.stepRangeTV(t.round, t.avail, t.cur, t.next, t.lo, t.hi, t.scratch)
}

// growScratch sizes the task's scratch buffer to the substrate's maximum
// degree.  It allocates at most once per task slot (the slot keeps the
// buffer across steps); the WaitGroup handoff orders the write against the
// submitter's next reuse of the slot.
func (t *stripeTask) growScratch() {
	if cap(t.scratch) < t.e.maxDeg {
		t.scratch = make([]color.Color, 0, t.e.maxDeg)
	}
}

func (t *stripeTask) runStochastic() {
	t.growScratch()
	t.changed = t.e.stepRangeStochastic(t.round, t.sched, t.noise, t.cur, t.next, t.lo, t.hi, t.scratch)
}

func (t *stripeTask) runBitSlab() {
	t.bp.stepSlabs(t.lo, t.hi, bitplaneSlabWords)
}

func (t *stripeTask) runShard() {
	t.shd.stepShard(t.lo)
}

// Method expressions, bound once: assigning them to stripeTask.run does not
// allocate, unlike per-step closures or bound method values.
var (
	runSweepTask      = (*stripeTask).runSweep
	runSweepTVTask    = (*stripeTask).runSweepTV
	runStochasticTask = (*stripeTask).runStochastic
	runBitSlabTask    = (*stripeTask).runBitSlab
	runShardTask      = (*stripeTask).runShard
)

// stripePool is the process-wide persistent worker pool behind every
// parallel step.  It replaces the former goroutine-spawn-per-step: a fixed
// set of GOMAXPROCS(0) workers is started on first parallel use and lives
// for the life of the process, shared by all engines (engines have no Close,
// so per-engine goroutines would leak; one shared pool bounds the goroutine
// count and keeps the workers' stacks warm).
//
// Workers only ever execute leaf work (stepRange or a bit kernel) and never
// submit tasks themselves, so the pool cannot deadlock; concurrent runs from
// many goroutines interleave their tasks freely because completion is
// tracked per-run through each submitter's own WaitGroup.
var stripePool struct {
	once sync.Once
	ch   chan *stripeTask
}

func stripePoolStart() {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	stripePool.ch = make(chan *stripeTask, 4*n)
	for i := 0; i < n; i++ {
		go stripeWorker(stripePool.ch)
	}
}

func stripeWorker(ch chan *stripeTask) {
	for t := range ch {
		t.run(t)
		t.wg.Done()
	}
}

// stripeAcross partitions [0, n) into up to `workers` contiguous stripes,
// fills one task per stripe through fill and runs them all on the shared
// pool.  It returns the filled tasks so callers can collect per-stripe
// results (e.g. change counts).  Both parallel tiers — the scalar sweep
// over vertex ranges and the bitplane kernel over word ranges — share this
// single partitioning protocol.
func (st *runState) stripeAcross(n, workers int, fill func(t *stripeTask, lo, hi int)) []stripeTask {
	if workers > n {
		workers = n
	}
	tasks := st.stripes(workers)
	chunk := (n + workers - 1) / workers
	count := 0
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		t := &tasks[count]
		count++
		// The task slot owns its scratch buffer across steps; fill callbacks
		// overwrite the whole struct, so save and restore it here.
		scratch := t.scratch
		fill(t, lo, hi)
		t.scratch = scratch
	}
	runStriped(tasks[:count], &st.wg)
	return tasks[:count]
}

// runStriped executes the tasks across the shared pool, running the last
// one on the calling goroutine (the caller would otherwise idle in Wait
// while holding a warm cache), and returns when all have finished.  More
// tasks than pool workers simply queue; they all complete.
func runStriped(tasks []stripeTask, wg *sync.WaitGroup) {
	last := len(tasks) - 1
	if last < 0 {
		return
	}
	if last == 0 {
		t := &tasks[0]
		t.run(t)
		return
	}
	stripePool.once.Do(stripePoolStart)
	wg.Add(last)
	for i := 0; i < last; i++ {
		stripePool.ch <- &tasks[i]
	}
	t := &tasks[last]
	t.run(t)
	wg.Wait()
}
