package sim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
)

// TestBitplaneBitIdenticalAllRulesAllTopologies is the differential oracle
// of the bitplane tier (the acceptance bar of the bit-sliced rebuild): on
// every registered rule × topology kind pair, over seeded random colorings
// across palette sizes 2..4 and sizes including the 2×n degenerates and
// non-word-multiple row lengths, a forced-bitplane run must produce a
// Result bit-identical to the forced full-sweep oracle — same rounds, same
// per-round change counts, same verdicts, same final configuration, same
// first-reach trace.  Combinations that do not qualify (rules without a
// kernel) are skipped, but the core pairs must qualify.
func TestBitplaneBitIdenticalAllRulesAllTopologies(t *testing.T) {
	sizes := [][2]int{{2, 2}, {2, 7}, {7, 2}, {3, 3}, {4, 6}, {3, 67}, {9, 9}}
	qualified := 0
	for _, name := range rules.RegisteredNames() {
		rule, err := rules.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range grid.Kinds() {
			for _, sz := range sizes {
				topo := grid.MustNew(kind, sz[0], sz[1])
				eng := NewEngine(topo, rule)
				for _, k := range []int{2, 3, 4} {
					for seed := uint64(1); seed <= 2; seed++ {
						initial := randomTestColoring(seed, topo.Dims(), k)
						base := Options{MaxRounds: 40, Target: 1, DetectCycles: true}
						bit := base
						bit.Kernel = KernelBitplane
						sweep := base
						sweep.Kernel = KernelSweep

						bitRes, err := eng.RunContext(context.Background(), initial, bit)
						if err != nil {
							if errors.Is(err, ErrBitplaneIneligible) {
								continue
							}
							t.Fatal(err)
						}
						qualified++
						oracle := eng.Run(initial, sweep)
						label := name + "/" + topo.Name() + "/" + topo.Dims().String()
						resultsEqual(t, label+"/bitplane-vs-sweep", bitRes, oracle)
						if bitRes.Kernel != KernelBitplane || oracle.Kernel != KernelSweep {
							t.Fatalf("%s: kernels recorded as %v / %v", label, bitRes.Kernel, oracle.Kernel)
						}
					}
				}
			}
		}
	}
	// All three paper tori are shift-regular and six rules ship kernels, so
	// the skip branch must not have swallowed the matrix.
	if qualified < 500 {
		t.Fatalf("only %d qualifying combinations exercised, expected the full matrix", qualified)
	}
}

// TestBitplaneAutoHybridMatchesOracle pins the downshift handoff: an
// auto-tier sequential run that starts on the bitplane kernel and hands off
// to the dirty frontier mid-run must match the full-sweep oracle exactly —
// including the round count, the cycle verdict and the first-reach trace
// across the switch boundary.
func TestBitplaneAutoHybridMatchesOracle(t *testing.T) {
	t.Run("oscillator", func(t *testing.T) {
		// A period-2 Prefer-Black oscillator: two diagonal cells trading
		// places with their anti-diagonal forever.  Churn is 4 cells on a
		// 32×32 torus, far below the downshift threshold, and with cycle
		// detection off the run crosses the handoff and keeps oscillating on
		// the frontier until the round budget.
		topo := grid.MustNew(grid.KindToroidalMesh, 32, 32)
		eng := NewEngine(topo, rules.SimpleMajorityPB{Black: 2})
		initial := color.NewColoring(topo.Dims(), 1)
		initial.SetRC(10, 10, 2)
		initial.SetRC(11, 11, 2)

		opt := Options{MaxRounds: 60, Target: 2}
		auto := eng.Run(initial, opt)
		sweep := opt
		sweep.Kernel = KernelSweep
		oracle := eng.Run(initial, sweep)
		resultsEqual(t, "oscillator/auto-vs-sweep", auto, oracle)
		if auto.Kernel != KernelBitplane {
			t.Fatalf("auto run used %v, want bitplane", auto.Kernel)
		}
		if auto.Downshift == 0 {
			t.Fatal("low-churn oscillator never downshifted to the frontier")
		}
	})
	t.Run("converging-dynamo", func(t *testing.T) {
		// A Prefer-Black cross: bootstrap percolation fills the torus
		// diagonally, so churn decays as the wave closes and the run
		// crosses the downshift threshold before going monochromatic.
		topo := grid.MustNew(grid.KindToroidalMesh, 24, 24)
		eng := NewEngine(topo, rules.SimpleMajorityPB{Black: 2})
		initial := color.NewColoring(topo.Dims(), 1)
		for j := 0; j < 24; j++ {
			initial.SetRC(0, j, 2)
		}
		for i := 0; i < 24; i++ {
			initial.SetRC(i, 0, 2)
		}
		opt := Options{Target: 2, StopWhenMonochromatic: true}
		auto := eng.Run(initial, opt)
		sweep := opt
		sweep.Kernel = KernelSweep
		oracle := eng.Run(initial, sweep)
		resultsEqual(t, "dynamo/auto-vs-sweep", auto, oracle)
		if !auto.Monochromatic || auto.FinalColor != 2 {
			t.Fatal("black cross failed to fill the torus")
		}
		if auto.Downshift == 0 {
			t.Fatal("decaying-churn dynamo never downshifted to the frontier")
		}
	})
}

// TestFrontierSeedFromBitplaneCycleHandoff drives the handoff by hand and
// checks that the seeded change journal lets the frontier detect a period-2
// cycle that straddles the switch boundary at exactly the same round as the
// oracle — the subtlest part of the hybrid's exactness.
func TestFrontierSeedFromBitplaneCycleHandoff(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 16, 16)
	eng := NewEngine(topo, rules.SimpleMajorityPB{Black: 2})
	initial := color.NewColoring(topo.Dims(), 1)
	initial.SetRC(5, 5, 2)
	initial.SetRC(6, 6, 2)

	// One bitplane round, then hand off: the configuration now equals the
	// anti-diagonal phase, and round 2 must flip it straight back — a cycle
	// the frontier can only see through the seeded journal.
	bp, err := eng.NewBitplane(initial)
	if err != nil {
		t.Fatal(err)
	}
	bp.DetectCycles(true)
	if changed := bp.Step(); changed == 0 {
		t.Fatal("oscillator died on the bitplane")
	}
	f := newFrontier(eng)
	f.seedFromBitplane(bp)
	if f.Round() != 1 {
		t.Fatalf("seeded frontier at round %d, want 1", f.Round())
	}
	if changed := f.Step(); changed == 0 {
		t.Fatal("oscillator died on the frontier")
	}
	if !f.Cycle() {
		t.Fatal("frontier missed the period-2 cycle across the handoff")
	}
	// And the configuration trajectory must match the sweep oracle.
	cur, next := initial.Clone(), initial.Clone()
	eng.Step(cur, next)
	eng.Step(next, cur)
	if !f.Config().Equal(cur) {
		t.Fatal("handoff diverged from the sweep trajectory")
	}
}

// TestBitplaneParallelStripesMatchSequential forces the bitplane tier with
// worker striping and requires bit-identity with the sequential bitplane
// and the oracle.
func TestBitplaneParallelStripesMatchSequential(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 17, 29)
	eng := NewEngine(topo, rules.SMP{})
	initial := randomTestColoring(3, topo.Dims(), 4)
	base := Options{MaxRounds: 50, Target: 1, DetectCycles: true, Kernel: KernelBitplane}
	seq := eng.Run(initial, base)
	par := base
	par.Parallel, par.Workers = true, 4
	striped := eng.Run(initial, par)
	resultsEqual(t, "bitplane/striped-vs-sequential", seq, striped)
	if striped.Workers != 4 {
		t.Fatalf("striped bitplane run reports %d workers, want 4", striped.Workers)
	}
}

// TestBitplaneStepMatchesEngineStepRoundByRound drives the public Bitplane
// API by hand against the scalar Step oracle.
func TestBitplaneStepMatchesEngineStepRoundByRound(t *testing.T) {
	for _, kind := range grid.Kinds() {
		topo := grid.MustNew(kind, 6, 11)
		eng := NewEngine(topo, rules.SMP{})
		cur := randomTestColoring(9, topo.Dims(), 4)
		bp, err := eng.NewBitplane(cur)
		if err != nil {
			t.Fatal(err)
		}
		next := color.NewColoring(topo.Dims(), color.None)
		for round := 1; round <= 25; round++ {
			wantChanged := eng.Step(cur, next)
			gotChanged := bp.Step()
			if gotChanged != wantChanged {
				t.Fatalf("%v round %d: bitplane changed %d, sweep %d", kind, round, gotChanged, wantChanged)
			}
			if !bp.Config().Equal(next) {
				t.Fatalf("%v round %d: configurations diverged", kind, round)
			}
			cur, next = next, cur
		}
		if bp.Round() != 25 {
			t.Fatalf("round counter = %d, want 25", bp.Round())
		}
	}
}

// TestBitplaneStepDoesNotAllocate pins the zero-allocation guarantee of
// steady-state bit-sliced stepping, with and without cycle tracking.
func TestBitplaneStepDoesNotAllocate(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 32, 32)
	eng := NewEngine(topo, rules.SMP{})
	bp, err := eng.NewBitplane(randomTestColoring(5, topo.Dims(), 2))
	if err != nil {
		t.Fatal(err)
	}
	bp.DetectCycles(true)
	bp.Step()
	if allocs := testing.AllocsPerRun(100, func() { bp.Step() }); allocs != 0 {
		t.Fatalf("bitplane step allocates %.1f objects per op, want 0", allocs)
	}
}

// TestBitplaneIneligibility covers every refusal reason and the forced-tier
// error contract.
func TestBitplaneIneligibility(t *testing.T) {
	mesh := grid.MustNew(grid.KindToroidalMesh, 6, 6)

	// Rule without a kernel.
	incEng := NewEngine(mesh, rules.Increment{K: 4})
	if _, err := incEng.NewBitplane(randomTestColoring(1, mesh.Dims(), 4)); !errors.Is(err, ErrBitplaneIneligible) {
		t.Fatalf("increment rule: err = %v, want ErrBitplaneIneligible", err)
	}

	// Palette beyond four colors.
	smpEng := NewEngine(mesh, rules.SMP{})
	if _, err := smpEng.NewBitplane(randomTestColoring(1, mesh.Dims(), 5)); !errors.Is(err, ErrBitplaneIneligible) {
		t.Fatalf("five colors: err = %v, want ErrBitplaneIneligible", err)
	}

	// Unset cells.
	holey := color.NewColoring(mesh.Dims(), 1)
	holey.Set(7, color.None)
	if _, err := smpEng.NewBitplane(holey); !errors.Is(err, ErrBitplaneIneligible) {
		t.Fatalf("None cell: err = %v, want ErrBitplaneIneligible", err)
	}

	// Forced tier surfaces the error through RunContext; Run panics.
	opt := Options{Kernel: KernelBitplane}
	if res, err := smpEng.RunContext(context.Background(), randomTestColoring(1, mesh.Dims(), 5), opt); res != nil || !errors.Is(err, ErrBitplaneIneligible) {
		t.Fatalf("forced bitplane on 5 colors: res=%v err=%v", res, err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Run with an ineligible forced kernel must panic")
			}
		}()
		smpEng.Run(randomTestColoring(1, mesh.Dims(), 5), opt)
	}()

	// Auto selection silently falls back for the same coloring.
	res := smpEng.Run(randomTestColoring(1, mesh.Dims(), 5), Options{MaxRounds: 5})
	if res.Kernel != KernelFrontier {
		t.Fatalf("auto on 5 colors used %v, want frontier fallback", res.Kernel)
	}
}

// TestResultKernelRecorded pins the tier telemetry for every selection path.
func TestResultKernelRecorded(t *testing.T) {
	mesh := grid.MustNew(grid.KindToroidalMesh, 8, 8)
	eng := NewEngine(mesh, rules.SMP{})
	twoColor := randomTestColoring(2, mesh.Dims(), 2)
	fiveColor := randomTestColoring(2, mesh.Dims(), 5)

	cases := []struct {
		name    string
		initial *color.Coloring
		opt     Options
		want    Kernel
	}{
		{"auto-bitplane", twoColor, Options{MaxRounds: 3}, KernelBitplane},
		{"auto-frontier", fiveColor, Options{MaxRounds: 3}, KernelFrontier},
		{"auto-history-frontier", twoColor, Options{MaxRounds: 3, RecordHistory: true}, KernelFrontier},
		{"auto-sweep", fiveColor, Options{MaxRounds: 3, FullSweep: true}, KernelSweep},
		{"auto-parallel", fiveColor, Options{MaxRounds: 3, Parallel: true, Workers: 2}, KernelParallel},
		{"forced-frontier", twoColor, Options{MaxRounds: 3, Kernel: KernelFrontier}, KernelFrontier},
		{"forced-sweep", twoColor, Options{MaxRounds: 3, Kernel: KernelSweep}, KernelSweep},
		{"forced-parallel", twoColor, Options{MaxRounds: 3, Workers: 2, Kernel: KernelParallel}, KernelParallel},
		// A forced parallel tier reports parallel even when the effective
		// worker count degenerates to one (single-CPU machines).
		{"forced-parallel-one-worker", twoColor, Options{MaxRounds: 3, Workers: 1, Kernel: KernelParallel}, KernelParallel},
		{"forced-bitplane", twoColor, Options{MaxRounds: 3, Kernel: KernelBitplane}, KernelBitplane},
	}
	for _, c := range cases {
		res := eng.Run(c.initial, c.opt)
		if res.Kernel != c.want {
			t.Errorf("%s: Kernel = %v, want %v", c.name, res.Kernel, c.want)
		}
	}
}

// TestBitplaneObserversAndHistoryOnForcedTier: a forced bitplane run must
// still honor observers and history by unpacking per round, matching the
// oracle's views exactly.
func TestBitplaneObserversAndHistoryOnForcedTier(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 9, 9)
	eng := NewEngine(topo, rules.SMP{})
	initial := randomTestColoring(4, topo.Dims(), 3)

	opt := Options{MaxRounds: 15, RecordHistory: true}
	bit := opt
	bit.Kernel = KernelBitplane
	sweep := opt
	sweep.Kernel = KernelSweep

	bitRes := eng.Run(initial, bit)
	oracle := eng.Run(initial, sweep)
	if len(bitRes.History) != len(oracle.History) {
		t.Fatalf("history length %d vs %d", len(bitRes.History), len(oracle.History))
	}
	for i := range bitRes.History {
		if !bitRes.History[i].Equal(oracle.History[i]) {
			t.Fatalf("history round %d differs", i+1)
		}
	}
}
