package sim

import (
	"context"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
)

// crossColoring builds the Figure-5 style configuration on an m×n mesh:
// row 0 and column 0 carry color k, the rest of the torus is padded with a
// 3-color row cycle so that no vertex sees two equal non-k colors.
func crossColoring(m, n int, k color.Color) *color.Coloring {
	c := color.NewColoring(grid.MustDims(m, n), color.None)
	pad := []color.Color{k + 1, k + 2, k + 3}
	for i := 1; i < m; i++ {
		for j := 1; j < n; j++ {
			c.SetRC(i, j, pad[(i-1)%3])
		}
	}
	c.FillRow(0, k)
	c.FillCol(0, k)
	return c
}

func TestStepSingleRound(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	eng := NewEngine(topo, rules.SMP{})
	cur := crossColoring(5, 5, 1)
	next := cur.Clone()
	changed := eng.Step(cur, next)
	if changed == 0 {
		t.Fatal("first round should change at least the inner corners")
	}
	// (1,1) has two k-neighbors (0,1),(1,0) and two distinct others.
	if next.AtRC(1, 1) != 1 {
		t.Errorf("(1,1) should adopt color 1, got %v", next.AtRC(1, 1))
	}
	// cur must be untouched.
	if cur.AtRC(1, 1) == 1 {
		t.Error("Step must not modify the current configuration")
	}
}

func TestStepDimensionMismatchPanics(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 4, 4)
	eng := NewEngine(topo, rules.SMP{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	eng.Step(color.NewColoring(grid.MustDims(5, 5), 1), color.NewColoring(grid.MustDims(5, 5), 1))
}

func TestRunCrossDynamoMesh(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	eng := NewEngine(topo, rules.SMP{})
	res := eng.Run(crossColoring(5, 5, 1), Options{Target: 1, StopWhenMonochromatic: true})
	if !res.Monochromatic || res.FinalColor != 1 {
		t.Fatalf("cross configuration should be a dynamo, got %+v\n%s", res, res.Final.String())
	}
	if !res.MonotoneTarget {
		t.Error("cross dynamo should be monotone")
	}
	if !res.ReachedAll() {
		t.Error("every vertex should reach the target")
	}
	// Figure 5 / Theorem 7: on a 5x5 mesh the cross dynamo completes in 3 rounds.
	if res.Rounds != 3 {
		t.Errorf("rounds = %d, want 3 (Theorem 7)", res.Rounds)
	}
}

func TestRunMatchesFigure5Matrix(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	eng := NewEngine(topo, rules.SMP{})
	res := eng.Run(crossColoring(5, 5, 1), Options{Target: 1, StopWhenMonochromatic: true})
	want := [][]int{
		{0, 0, 0, 0, 0},
		{0, 1, 2, 2, 1},
		{0, 2, 3, 3, 2},
		{0, 2, 3, 3, 2},
		{0, 1, 2, 2, 1},
	}
	got := res.TimesMatrix(topo.Dims())
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("recoloring time (%d,%d) = %d, want %d (Figure 5)\n got %v", i, j, got[i][j], want[i][j], got)
			}
		}
	}
}

func TestRunStopsAtFixedPointWithoutMonochromaticity(t *testing.T) {
	// A 2x2 block of color 2 inside a field of color 1 is stable under SMP:
	// every block vertex keeps two neighbors of its own color, and no other
	// vertex sees a qualifying pattern, so the system freezes immediately.
	c := color.NewColoring(grid.MustDims(6, 6), 1)
	c.SetRC(2, 2, 2)
	c.SetRC(2, 3, 2)
	c.SetRC(3, 2, 2)
	c.SetRC(3, 3, 2)
	topo := grid.MustNew(grid.KindToroidalMesh, 6, 6)
	res := NewEngine(topo, rules.SMP{}).Run(c, Options{Target: 2, StopWhenMonochromatic: true})
	if !res.FixedPoint {
		t.Fatalf("expected a fixed point, got %+v", res)
	}
	if res.Monochromatic {
		t.Error("configuration must not become monochromatic")
	}
	if !res.Final.Equal(c) {
		t.Error("fixed point should equal the initial configuration")
	}
}

func TestRunMaxRoundsBudget(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	eng := NewEngine(topo, rules.SMP{})
	res := eng.Run(crossColoring(5, 5, 1), Options{MaxRounds: 1, Target: 1, StopWhenMonochromatic: true})
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
	if res.Monochromatic {
		t.Error("one round cannot complete the 5x5 cross dynamo")
	}
}

func TestRunRecordsHistoryAndChanges(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	eng := NewEngine(topo, rules.SMP{})
	res := eng.Run(crossColoring(5, 5, 1), Options{Target: 1, StopWhenMonochromatic: true, RecordHistory: true})
	if len(res.History) != res.Rounds {
		t.Fatalf("history length %d, want %d", len(res.History), res.Rounds)
	}
	if len(res.ChangesPerRound) != res.Rounds {
		t.Fatalf("changes length %d, want %d", len(res.ChangesPerRound), res.Rounds)
	}
	// The k-set must grow monotonically through the history.
	prev := crossColoring(5, 5, 1)
	for i, h := range res.History {
		if !prev.IsSubsetOf(h, 1) {
			t.Fatalf("k-set shrank at round %d", i+1)
		}
		prev = h
	}
	last := res.History[len(res.History)-1]
	if _, ok := last.IsMonochromatic(); !ok {
		t.Error("last history entry should be monochromatic")
	}
}

// finishCounter records OnFinish invocations alongside per-round callbacks.
type finishCounter struct {
	rounds   []int
	finished int
	last     *Result
}

func (f *finishCounter) OnRound(round int, c *color.Coloring) { f.rounds = append(f.rounds, round) }
func (f *finishCounter) OnFinish(r *Result)                   { f.finished++; f.last = r }

func TestRunObservers(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	eng := NewEngine(topo, rules.SMP{})
	obs := &finishCounter{}
	var viaFunc []int
	res := eng.Run(crossColoring(5, 5, 1), Options{
		Target: 1, StopWhenMonochromatic: true,
		Observers: []Observer{
			obs,
			RoundFunc(func(round int, c *color.Coloring) { viaFunc = append(viaFunc, round) }),
		},
	})
	if len(obs.rounds) != 3 || obs.rounds[0] != 1 || obs.rounds[2] != 3 {
		t.Errorf("observer rounds = %v", obs.rounds)
	}
	if len(viaFunc) != len(obs.rounds) {
		t.Errorf("RoundFunc saw %v, observer saw %v", viaFunc, obs.rounds)
	}
	if obs.finished != 1 || obs.last != res {
		t.Errorf("OnFinish called %d times (result match %v)", obs.finished, obs.last == res)
	}
}

func TestRunContextCancellation(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	eng := NewEngine(topo, rules.SMP{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	obs := &finishCounter{}
	res, err := eng.RunContext(ctx, crossColoring(5, 5, 1), Options{
		Target: 1, StopWhenMonochromatic: true, Observers: []Observer{obs},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Rounds != 0 {
		t.Errorf("canceled run should return the partial result, got %+v", res)
	}
	if obs.finished != 0 {
		t.Error("OnFinish must not fire for an aborted run")
	}

	// Cancellation mid-run: stop after the first round.
	ctx2, cancel2 := context.WithCancel(context.Background())
	mid, err := eng.RunContext(ctx2, crossColoring(5, 5, 1), Options{
		Target: 1, StopWhenMonochromatic: true,
		Observers: []Observer{RoundFunc(func(round int, c *color.Coloring) { cancel2() })},
	})
	if err != context.Canceled {
		t.Fatalf("mid-run err = %v, want context.Canceled", err)
	}
	if mid.Rounds != 1 {
		t.Errorf("mid-run stopped after %d rounds, want 1", mid.Rounds)
	}
	if mid.Final == nil {
		t.Error("partial result should carry the last completed configuration")
	}
}

func TestEffectiveWorkers(t *testing.T) {
	cases := []struct {
		opt  Options
		n    int
		want int
	}{
		{Options{}, 100, 1},                           // sequential path ignores Workers
		{Options{Workers: 8}, 100, 1},                 // Workers without Parallel is ignored
		{Options{Parallel: true, Workers: 4}, 100, 4}, // requested count honored
		{Options{Parallel: true, Workers: 64}, 9, 9},  // capped at the vertex count
		{Options{Parallel: true, Workers: 1}, 100, 1}, // parallel with one worker is sequential
	}
	for i, tc := range cases {
		if got := tc.opt.EffectiveWorkers(tc.n); got != tc.want {
			t.Errorf("case %d: EffectiveWorkers(%d) = %d, want %d", i, tc.n, got, tc.want)
		}
	}
	// Non-positive Workers selects GOMAXPROCS, then caps at the vertex count.
	gmp := runtime.GOMAXPROCS(0)
	wantAuto := gmp
	if wantAuto > 2 {
		wantAuto = 2
	}
	if got := (Options{Parallel: true, Workers: -3}).EffectiveWorkers(2); got != wantAuto {
		t.Errorf("EffectiveWorkers(2) with auto workers = %d, want %d", got, wantAuto)
	}

	topo := grid.MustNew(grid.KindToroidalMesh, 6, 6)
	eng := NewEngine(topo, rules.SMP{})
	seq := eng.Run(crossColoring(6, 6, 1), Options{Target: 1, StopWhenMonochromatic: true})
	if seq.Workers != 1 {
		t.Errorf("sequential Result.Workers = %d, want 1", seq.Workers)
	}
	par := eng.Run(crossColoring(6, 6, 1), Options{Target: 1, StopWhenMonochromatic: true, Parallel: true, Workers: 3})
	if par.Workers != 3 {
		t.Errorf("parallel Result.Workers = %d, want 3", par.Workers)
	}
	if !seq.Final.Equal(par.Final) || seq.Rounds != par.Rounds {
		t.Error("parallel and sequential runs must be bit-identical")
	}
}

func TestRunDetectsPeriodTwoCycle(t *testing.T) {
	// Under the Prefer-Black reversible rule an alternating 2-coloring of a
	// 4x4 mesh flips every vertex every round: each vertex has 4 neighbors
	// of the opposite color, so the whole torus oscillates with period 2.
	c := color.NewColoring(grid.MustDims(4, 4), 1)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if (i+j)%2 == 0 {
				c.SetRC(i, j, 2)
			}
		}
	}
	topo := grid.MustNew(grid.KindToroidalMesh, 4, 4)
	res := NewEngine(topo, rules.SimpleMajorityPB{Black: 2}).Run(c, Options{DetectCycles: true, MaxRounds: 50})
	if !res.Cycle {
		t.Fatalf("expected a period-2 cycle, got %+v", res)
	}
	if res.Rounds >= 50 {
		t.Error("cycle should be detected well before the round budget")
	}
}

func TestRunWithoutTargetHasNoTrace(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	res := NewEngine(topo, rules.SMP{}).Run(crossColoring(5, 5, 1), Options{StopWhenMonochromatic: true})
	if res.FirstReached != nil {
		t.Error("FirstReached should be nil without a target")
	}
	if res.MonotoneTarget {
		t.Error("MonotoneTarget should be false without a target")
	}
	if res.ReachedAll() {
		t.Error("ReachedAll should be false without a target")
	}
	m := res.TimesMatrix(topo.Dims())
	if m[2][2] != -1 {
		t.Error("TimesMatrix without target should be -1 everywhere")
	}
}

func TestRunDoesNotModifyInitial(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	initial := crossColoring(5, 5, 1)
	snapshot := initial.Clone()
	NewEngine(topo, rules.SMP{}).Run(initial, Options{Target: 1, StopWhenMonochromatic: true})
	if !initial.Equal(snapshot) {
		t.Error("Run must not modify the initial coloring")
	}
}

func TestRunConvenienceWrapper(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	res := Run(topo, rules.SMP{}, crossColoring(5, 5, 1), Options{Target: 1, StopWhenMonochromatic: true})
	if !res.Monochromatic {
		t.Error("wrapper Run should behave like Engine.Run")
	}
}

func TestRunDimensionMismatchPanics(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine(topo, rules.SMP{}).Run(color.NewColoring(grid.MustDims(5, 5), 1), Options{})
}

func TestMonotoneTargetDetectsShrinking(t *testing.T) {
	// Under Prefer-Black with black=2, a lone black vertex surrounded by
	// white reverts to white: the black set shrinks, so MonotoneTarget must
	// be false.
	c := color.NewColoring(grid.MustDims(5, 5), 1)
	c.SetRC(2, 2, 2)
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	res := NewEngine(topo, rules.SimpleMajorityPB{Black: 2}).Run(c, Options{Target: 2, MaxRounds: 5})
	if res.MonotoneTarget {
		t.Error("shrinking target set must clear MonotoneTarget")
	}
}

func TestDefaultMaxRoundsScalesWithSize(t *testing.T) {
	small := DefaultMaxRounds(grid.MustDims(3, 3))
	big := DefaultMaxRounds(grid.MustDims(30, 30))
	if small <= 0 || big <= small {
		t.Errorf("DefaultMaxRounds not increasing: %d %d", small, big)
	}
}

func TestEngineAccessors(t *testing.T) {
	topo := grid.MustNew(grid.KindTorusCordalis, 4, 6)
	eng := NewEngine(topo, rules.SMP{})
	if eng.Topology().Kind() != grid.KindTorusCordalis {
		t.Error("Topology accessor wrong")
	}
	if eng.Rule().Name() != "smp" {
		t.Error("Rule accessor wrong")
	}
}

// Property: with random initial colorings under SMP, the engine always
// terminates (fixed point, cycle, or budget) and the reported final
// configuration matches a fresh recomputation from the initial state.
func TestRunDeterministicProperty(t *testing.T) {
	f := func(seed uint64, kindSeed, rowSeed, colSeed, kSeed uint8) bool {
		kind := grid.Kinds()[int(kindSeed)%3]
		m := 3 + int(rowSeed)%6
		n := 3 + int(colSeed)%6
		k := 2 + int(kSeed)%4
		topo := grid.MustNew(kind, m, n)
		p := color.MustPalette(k)
		src := rng.New(seed)
		init := color.RandomColoring(topo.Dims(), p, func() int { return src.Intn(p.K) })
		eng := NewEngine(topo, rules.SMP{})
		a := eng.Run(init, Options{Target: 1, StopWhenMonochromatic: true, MaxRounds: 200})
		b := eng.Run(init, Options{Target: 1, StopWhenMonochromatic: true, MaxRounds: 200})
		return a.Final.Equal(b.Final) && a.Rounds == b.Rounds && a.Monochromatic == b.Monochromatic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
