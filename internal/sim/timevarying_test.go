package sim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
	"repro/internal/tvg"
)

// legacyTVRun is the deleted tvg.Run loop, preserved verbatim as the oracle
// for the engine's time-varying mode: full double-buffered sweep, reduced
// neighborhoods, rule applied only when at least two neighbors are
// reachable, stop at monochromatic, fixed-point stop only when always-on.
func legacyTVRun(topo grid.Topology, avail Availability, rule rules.Rule, initial *color.Coloring, maxRounds int) (rounds int, final *color.Coloring) {
	d := topo.Dims()
	if maxRounds <= 0 {
		maxRounds = 6*d.N() + 32
	}
	cur := initial.Clone()
	next := initial.Clone()
	var buf [grid.Degree]int
	scratch := make([]color.Color, 0, grid.Degree)
	alwaysOn := false
	if s, ok := avail.(interface{ Static() bool }); ok {
		alwaysOn = s.Static()
	}
	for round := 1; round <= maxRounds; round++ {
		changed := 0
		for v := 0; v < d.N(); v++ {
			scratch = scratch[:0]
			for _, u := range topo.Neighbors(v, buf[:0]) {
				a, b := v, u
				if a > b {
					a, b = b, a
				}
				if avail.Available(round, a, b) {
					scratch = append(scratch, cur.At(u))
				}
			}
			nc := cur.At(v)
			if len(scratch) >= 2 {
				nc = rule.Next(cur.At(v), scratch)
			}
			next.Set(v, nc)
			if nc != cur.At(v) {
				changed++
			}
		}
		rounds = round
		cur, next = next, cur
		if _, mono := cur.IsMonochromatic(); mono {
			break
		}
		if changed == 0 && alwaysOn {
			break
		}
	}
	return rounds, cur
}

// tvTestConfig is a deterministic non-trivial initial configuration: a
// target cross over a striped background.
func tvTestConfig(d grid.Dims, k int) *color.Coloring {
	c := color.NewColoring(d, color.None)
	for v := 0; v < d.N(); v++ {
		c.Set(v, color.Color(2+(v%(k-1))))
	}
	c.FillRow(0, 1)
	c.FillCol(0, 1)
	return c
}

// TestTimeVaryingMatchesLegacyLoop pins the engine's time-varying mode
// bit-identical to the deleted tvg.Run loop across availability models,
// topologies and seeds, sequentially and in parallel.
func TestTimeVaryingMatchesLegacyLoop(t *testing.T) {
	models := []Availability{
		tvg.AlwaysOn{},
		tvg.Bernoulli{P: 0.9, Seed: 3},
		tvg.Bernoulli{P: 0.5, Seed: 8},
		tvg.Periodic{Period: 3, Off: 1},
		tvg.NodeFaults{P: 0.9, Seed: 5},
	}
	for _, kind := range grid.Kinds() {
		topo := grid.MustNew(kind, 9, 9)
		initial := tvTestConfig(topo.Dims(), 5)
		eng := NewEngine(topo, rules.SMP{})
		for _, avail := range models {
			wantRounds, wantFinal := legacyTVRun(topo, avail, rules.SMP{}, initial, 600)
			for _, workers := range []int{0, 4} {
				opt := Options{
					TimeVarying:           avail,
					MaxRounds:             600,
					StopWhenMonochromatic: true,
				}
				if workers > 0 {
					opt.Parallel, opt.Workers = true, workers
				}
				res := eng.Run(initial, opt)
				if res.Rounds != wantRounds {
					t.Fatalf("%v %T workers=%d: rounds %d vs legacy %d", kind, avail, workers, res.Rounds, wantRounds)
				}
				if !res.Final.Equal(wantFinal) {
					t.Fatalf("%v %T workers=%d: final configurations differ", kind, avail, workers)
				}
			}
		}
	}
}

// stripeCutter is the adversarial availability model of the unsoundness
// proof: every link is up in round 1, and from round 2 on only horizontal
// (same-row) links stay up.
type stripeCutter struct{ cols int }

func (s stripeCutter) Available(round, u, v int) bool {
	if round < 2 {
		return true
	}
	return u/s.cols == v/s.cols
}

// TestTimeVaryingFrontierWouldBeUnsound is the proof behind
// ErrTimeVaryingSweepOnly.  The initial configuration — alternating
// single-color columns — is a static fixed point (every vertex sits on a
// 2+2 tie), so round 1 changes nothing and a dirty-frontier stepper would
// empty its queue and idle forever.  From round 2 the model cuts the
// vertical links, every vertex suddenly sees only its two horizontal
// neighbors (an opposite-colored pair, a unique majority), and the whole
// torus must flip: the correct run has ChangesPerRound = [0, n, ...].  The
// engine therefore refuses the frontier and bitplane kernels under
// TimeVarying and pins auto-selection to the sweep tiers.
func TestTimeVaryingFrontierWouldBeUnsound(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 4, 4)
	d := topo.Dims()
	initial := color.NewColoring(d, color.None)
	for v := 0; v < d.N(); v++ {
		initial.Set(v, color.Color(1+v%2))
	}
	eng := NewEngine(topo, rules.SMP{})

	// The configuration really is a static fixed point.
	static := eng.Run(initial, Options{MaxRounds: 5})
	if !static.FixedPoint || static.Rounds != 1 {
		t.Fatalf("precondition: expected an immediate static fixed point, got %+v", static)
	}

	cutter := stripeCutter{cols: d.Cols}
	res := eng.Run(initial, Options{TimeVarying: cutter, MaxRounds: 4})
	if len(res.ChangesPerRound) != 4 {
		t.Fatalf("run stopped early: %v", res.ChangesPerRound)
	}
	if res.ChangesPerRound[0] != 0 {
		t.Fatalf("round 1 should change nothing, got %d", res.ChangesPerRound[0])
	}
	if res.ChangesPerRound[1] != d.N() {
		t.Fatalf("round 2 must flip every vertex (%d), got %d — the zero-change round did not quiesce the dynamics", d.N(), res.ChangesPerRound[1])
	}
	if res.Kernel != KernelSweep {
		t.Fatalf("time-varying auto selection must sweep, got %v", res.Kernel)
	}
	if res.FixedPoint {
		t.Fatal("a zero-change round under a non-static model must not be reported as a fixed point")
	}

	// The incremental kernels are refused outright.
	for _, kernel := range []Kernel{KernelFrontier, KernelBitplane} {
		_, err := eng.RunContext(context.Background(), initial, Options{TimeVarying: cutter, Kernel: kernel})
		if !errors.Is(err, ErrTimeVaryingSweepOnly) {
			t.Fatalf("kernel %v: want ErrTimeVaryingSweepOnly, got %v", kernel, err)
		}
	}
}

// TestTimeVaryingDetectCyclesInertWhenChurny pins the DetectCycles gating:
// on a non-static model a configuration matching the one from two rounds
// ago proves nothing (a quiet spell under bad link draws is not a cycle),
// so the run must keep sweeping instead of stopping with a Cycle verdict.
// The stripeCutter leaves round 1 changeless — next equals the two-rounds-
// ago snapshot — yet round 2 flips the whole torus.
func TestTimeVaryingDetectCyclesInertWhenChurny(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 4, 4)
	d := topo.Dims()
	initial := color.NewColoring(d, color.None)
	for v := 0; v < d.N(); v++ {
		initial.Set(v, color.Color(1+v%2))
	}
	eng := NewEngine(topo, rules.SMP{})
	res := eng.Run(initial, Options{TimeVarying: stripeCutter{cols: d.Cols}, MaxRounds: 4, DetectCycles: true})
	if res.Cycle {
		t.Fatal("a quiet round under a non-static model must not be reported as a cycle")
	}
	if res.Rounds != 4 || res.ChangesPerRound[1] != d.N() {
		t.Fatalf("run must keep sweeping through the quiet round: %+v", res.ChangesPerRound)
	}
	// Static models keep genuine period-2 detection: a two-color
	// checkerboard under Prefer-Current oscillates with period 2.
	checker := color.NewColoring(d, color.None)
	for v := 0; v < d.N(); v++ {
		r, c := v/d.Cols, v%d.Cols
		checker.Set(v, color.Color(1+(r+c)%2))
	}
	osc := NewEngine(topo, rules.SimpleMajorityPC{}).Run(checker, Options{
		TimeVarying: tvg.AlwaysOn{}, MaxRounds: 50, DetectCycles: true,
	})
	if !osc.Cycle {
		t.Fatalf("static time-varying run must still detect the checkerboard cycle, got %d rounds", osc.Rounds)
	}
}

// TestTimeVaryingStaticModelKeepsFixedPointStop pins the declaratively
// static models to the static semantics: a zero-change round ends the run.
func TestTimeVaryingStaticModelKeepsFixedPointStop(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 4, 4)
	d := topo.Dims()
	initial := color.NewColoring(d, color.None)
	for v := 0; v < d.N(); v++ {
		initial.Set(v, color.Color(1+v%2))
	}
	eng := NewEngine(topo, rules.SMP{})
	for _, avail := range []Availability{tvg.AlwaysOn{}, tvg.Bernoulli{P: 1}, tvg.Periodic{Period: 4, Off: 0}} {
		res := eng.Run(initial, Options{TimeVarying: avail, MaxRounds: 50})
		if !res.FixedPoint || res.Rounds != 1 {
			t.Fatalf("%T: static model should stop at the fixed point after round 1, got rounds=%d fixed=%v", avail, res.Rounds, res.FixedPoint)
		}
	}
}

// TestTimeVaryingOnGraphSubstrate runs the time-varying mode over a
// general-graph substrate — the combination the paper's conclusions ask
// for — and checks the no-availability degenerate case.
func TestTimeVaryingOnGraphSubstrate(t *testing.T) {
	// A 5-cycle: vertices 0..4, colored 1,2,2,2,2.
	adj := [][]int{{4, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 0}}
	sub := &adjSubstrate{csr: grid.BuildCSRAdj(adj)}
	eng := NewEngineOn(sub, rules.GeneralizedSMP{})
	initial := color.NewColoring(sub.Dims(), 2)
	initial.Set(0, 1)

	// Fully available: the lone dissenter is overwritten in one round.
	res := eng.Run(initial, Options{TimeVarying: tvg.AlwaysOn{}, MaxRounds: 20})
	if !res.FixedPoint || res.Final.Count(1) != 0 {
		t.Fatalf("always-on graph run should erase the dissenter, got %+v", res)
	}

	// No links: nothing can change; the run burns its budget.
	res = eng.Run(initial, Options{TimeVarying: tvg.Bernoulli{P: 0, Seed: 1}, MaxRounds: 7})
	if res.Rounds != 7 || !res.Final.Equal(initial) {
		t.Fatalf("zero availability must freeze the graph, got rounds=%d", res.Rounds)
	}

	// Sequential and parallel time-varying graph runs agree.
	churn := tvg.Bernoulli{P: 0.6, Seed: 4}
	seq := eng.Run(initial, Options{TimeVarying: churn, MaxRounds: 40})
	par := eng.Run(initial, Options{TimeVarying: churn, MaxRounds: 40, Parallel: true, Workers: 3})
	if seq.Rounds != par.Rounds || !seq.Final.Equal(par.Final) {
		t.Fatal("sequential and parallel time-varying graph runs diverged")
	}
}

// adjSubstrate is a minimal test Substrate over a raw adjacency CSR.
type adjSubstrate struct{ csr *grid.CSR }

func (s *adjSubstrate) Dims() grid.Dims       { return s.csr.Dims() }
func (s *adjSubstrate) Name() string          { return "test-adj" }
func (s *adjSubstrate) CSR() *grid.CSR        { return s.csr }
func (s *adjSubstrate) DefaultMaxRounds() int { return 4*s.csr.N() + 16 }

// TestTimeVaryingBernoulliParallelDeterminism re-runs a churny parallel
// time-varying run and demands identical outcomes: availability models are
// pure functions of (round, u, v), so worker scheduling must not leak in.
func TestTimeVaryingBernoulliParallelDeterminism(t *testing.T) {
	topo := grid.MustNew(grid.KindTorusSerpentinus, 8, 8)
	initial := tvTestConfig(topo.Dims(), 4)
	eng := NewEngine(topo, rules.SMP{})
	opt := Options{TimeVarying: tvg.Bernoulli{P: 0.7, Seed: 11}, MaxRounds: 120, Parallel: true, Workers: 7}
	first := eng.Run(initial, opt)
	for i := 0; i < 3; i++ {
		again := eng.Run(initial, opt)
		if again.Rounds != first.Rounds || !again.Final.Equal(first.Final) {
			t.Fatal("parallel time-varying run is not deterministic")
		}
	}
}

// TestTimeVaryingStepAllocates pins the steady-state allocation behavior of
// the sequential time-varying sweep: pooled buffers, zero allocations per
// round once warm.
func TestTimeVaryingStepDoesNotAllocate(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 16, 16)
	eng := NewEngine(topo, rules.SMP{})
	initial := tvTestConfig(topo.Dims(), 5)
	// Convert to the interface once, as Options.TimeVarying does; converting
	// a 16-byte struct per call would itself allocate.
	var churn Availability = tvg.Bernoulli{P: 0.8, Seed: 2}
	st := eng.getState(false)
	defer eng.putState(st, false)
	cur := initial.Clone()
	next := initial.Clone()
	round := 0
	avg := testing.AllocsPerRun(200, func() {
		round++
		eng.stepRangeTV(round, churn, cur.Cells(), next.Cells(), 0, cur.N(), st.scratch)
	})
	if avg != 0 {
		t.Fatalf("time-varying step allocates %.1f allocs/op, want 0", avg)
	}
}

// TestTimeVaryingRespectsContext checks cancellation at round boundaries
// carries over to the time-varying mode.
func TestTimeVaryingRespectsContext(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 8, 8)
	eng := NewEngine(topo, rules.SMP{})
	initial := tvTestConfig(topo.Dims(), 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := eng.RunContext(ctx, initial, Options{TimeVarying: tvg.Bernoulli{P: 0.5, Seed: 1}, MaxRounds: 100})
	if err == nil {
		t.Fatal("canceled context must abort the run")
	}
	if res == nil {
		t.Fatal("aborted runs still return the partial result")
	}
}
