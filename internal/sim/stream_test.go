package sim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
)

// coloringT abbreviates the coloring type in observer signatures below.
type coloringT = color.Coloring

// TestStreamYieldsEveryRound checks the basic stream contract: one step per
// round matching the batch Result's trace, a terminal Done step carrying the
// completed Result, and a per-round Config equal to the recorded history.
func TestStreamYieldsEveryRound(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 9, 9)
	eng := NewEngine(topo, rules.SMP{})
	initial := crossColoring(9, 9, 1)
	opt := Options{Target: 1, StopWhenMonochromatic: true, RecordHistory: true}

	batch := eng.Run(initial, opt)

	var (
		rounds  []int
		changes []int
		final   *Result
	)
	for st, err := range eng.Stream(context.Background(), initial, opt) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		rounds = append(rounds, st.Round)
		changes = append(changes, st.Changed)
		if !st.Config().Equal(batch.History[st.Round-1]) {
			t.Fatalf("round %d: streamed configuration differs from history", st.Round)
		}
		if st.Done {
			final = st.Result
		}
	}
	if final == nil {
		t.Fatal("stream ended without a Done step")
	}
	resultsEqual(t, "stream-vs-run", final, batch)
	if len(changes) != len(batch.ChangesPerRound) {
		t.Fatalf("streamed %d rounds, run recorded %d", len(changes), len(batch.ChangesPerRound))
	}
	for i := range changes {
		if rounds[i] != i+1 {
			t.Fatalf("step %d reported round %d", i, rounds[i])
		}
		if changes[i] != batch.ChangesPerRound[i] {
			t.Fatalf("round %d: streamed %d changes, run recorded %d", i+1, changes[i], batch.ChangesPerRound[i])
		}
	}
}

// TestStreamEarlyBreak pins that breaking out of the loop stops the run at
// that round boundary and leaves the engine fully reusable (its pooled
// buffers must be returned, not leaked mid-run).
func TestStreamEarlyBreak(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 9, 9)
	eng := NewEngine(topo, rules.SMP{})
	initial := crossColoring(9, 9, 1)
	opt := Options{Target: 1, StopWhenMonochromatic: true}

	seen := 0
	for st, err := range eng.Stream(context.Background(), initial, opt) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		seen++
		if st.Round == 3 {
			break
		}
	}
	if seen != 3 {
		t.Fatalf("saw %d steps before the break, want 3", seen)
	}
	// The engine must still produce a pristine full run afterwards.
	resultsEqual(t, "after-break", eng.Run(initial, opt), eng.Run(initial, Options{Target: 1, StopWhenMonochromatic: true, FullSweep: true}))
}

// TestStreamCancellation checks that a canceled context surfaces as a final
// (partial-result, error) yield, matching RunContext's abort contract.
func TestStreamCancellation(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 12, 12)
	eng := NewEngine(topo, rules.SMP{})
	initial := crossColoring(12, 12, 1)

	ctx, cancel := context.WithCancel(context.Background())
	var lastErr error
	var partial *Result
	for st, err := range eng.Stream(ctx, initial, Options{Target: 1, StopWhenMonochromatic: true}) {
		if err != nil {
			lastErr = err
			partial = st.Result
			continue
		}
		if st.Round == 2 {
			cancel()
		}
		if st.Done {
			t.Fatal("canceled stream completed anyway")
		}
	}
	cancel()
	if !errors.Is(lastErr, context.Canceled) {
		t.Fatalf("stream error = %v, want context.Canceled", lastErr)
	}
	if partial == nil || partial.Rounds != 2 || partial.Final == nil {
		t.Fatalf("partial result = %+v, want 2 completed rounds with a final configuration", partial)
	}
}

// TestStreamForcedKernelError pins that selection errors are yielded, not
// panicked: a forced bitplane kernel on an ineligible coloring.
func TestStreamForcedKernelError(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 6, 6)
	eng := NewEngine(topo, rules.SMP{})
	initial := randomTestColoring(1, topo.Dims(), 5) // 5 colors: bitplane needs <=4

	sawError := false
	for st, err := range eng.Stream(context.Background(), initial, Options{Kernel: KernelBitplane}) {
		if err == nil {
			t.Fatalf("expected an eligibility error, got step round %d", st.Round)
		}
		if !errors.Is(err, ErrBitplaneIneligible) {
			t.Fatalf("error = %v, want ErrBitplaneIneligible", err)
		}
		sawError = true
	}
	if !sawError {
		t.Fatal("stream yielded nothing")
	}
}

// checkpointAt streams the run up to round `at`, snapshots a checkpoint
// there and abandons the stream.
func checkpointAt(t *testing.T, eng *Engine, initial *coloringT, opt Options, at int) *Resume {
	t.Helper()
	var cp *Resume
	for st, err := range eng.Stream(context.Background(), initial, opt) {
		if err != nil {
			t.Fatalf("stream error before round %d: %v", at, err)
		}
		if st.Round == at || st.Done {
			cp = st.Checkpoint()
			break
		}
	}
	if cp == nil {
		t.Fatalf("no checkpoint at round %d", at)
	}
	return cp
}

// TestResumeBitIdenticalEveryRuleTopologyKernel is the differential oracle
// of checkpoint/resume: on every registered rule × topology kind, for every
// scalar kernel (plus the automatic tier, which may run the bitplane and
// downshift mid-run), a run interrupted at an arbitrary mid-run round and
// resumed from its checkpoint must equal the uninterrupted run field for
// field — rounds, per-round change counts, verdicts, final configuration,
// first-reach trace.
func TestResumeBitIdenticalEveryRuleTopologyKernel(t *testing.T) {
	kernels := []Kernel{KernelAuto, KernelFrontier, KernelSweep, KernelParallel}
	for _, name := range rules.RegisteredNames() {
		rule, err := rules.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range grid.Kinds() {
			topo := grid.MustNew(kind, 6, 7)
			eng := NewEngine(topo, rule)
			initial := randomTestColoring(7, topo.Dims(), 4)
			for _, kernel := range kernels {
				opt := Options{MaxRounds: 40, Target: 1, DetectCycles: true, Kernel: kernel}
				full := eng.Run(initial, opt)
				if full.Rounds < 2 {
					continue // nothing mid-run to checkpoint
				}
				at := full.Rounds / 2
				cp := checkpointAt(t, eng, initial, opt, at)
				resumed, err := eng.ResumeContext(context.Background(), cp, opt)
				if err != nil {
					t.Fatalf("%s/%s/%v: resume: %v", name, topo.Name(), kernel, err)
				}
				resultsEqual(t, name+"/"+topo.Name()+"/"+kernel.String()+"/resume", resumed, full)
			}
		}
	}
}

// TestResumeEveryRound interrupts one converging run at every single round
// and checks each resume reproduces the uninterrupted result exactly,
// including resuming from the terminal checkpoint (whose budget is already
// satisfied by its stop condition).
func TestResumeEveryRound(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 9, 9)
	eng := NewEngine(topo, rules.SMP{})
	initial := crossColoring(9, 9, 1)
	opt := Options{Target: 1, StopWhenMonochromatic: true, DetectCycles: true}

	full := eng.Run(initial, opt)
	for at := 1; at <= full.Rounds; at++ {
		cp := checkpointAt(t, eng, initial, opt, at)
		resumed, err := eng.ResumeContext(context.Background(), cp, opt)
		if err != nil {
			t.Fatalf("resume at round %d: %v", at, err)
		}
		resultsEqual(t, "resume-at-round", resumed, full)
	}
}

// TestResumeCycleAcrossBoundary pins the stop-detector state in the
// checkpoint: a period-2 oscillation that spans the checkpoint boundary is
// detected at exactly the same round as in an uninterrupted run, because the
// previous configuration rides along.  Without it (Prev == nil) the detector
// restarts and flags the cycle two rounds later — still a cycle, never a
// wrong answer.
func TestResumeCycleAcrossBoundary(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 16, 16)
	eng := NewEngine(topo, rules.SimpleMajorityPB{Black: 2})
	initial := oscillator2(topo.Dims(), 5, 5, 1, 2)
	opt := Options{MaxRounds: 50, DetectCycles: true}

	full := eng.Run(initial, opt)
	if !full.Cycle || full.Rounds != 2 {
		t.Fatalf("uninterrupted run: cycle=%v rounds=%d, want cycle at round 2", full.Cycle, full.Rounds)
	}

	cp := checkpointAt(t, eng, initial, opt, 1)
	if cp.Prev == nil {
		t.Fatal("checkpoint at round 1 lost the previous configuration")
	}
	resumed, err := eng.ResumeContext(context.Background(), cp, opt)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "cycle-boundary", resumed, full)

	// Drop the detector seed: the resume is still sound, just later.
	blind := *cp
	blind.Prev = nil
	late, err := eng.ResumeContext(context.Background(), &blind, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !late.Cycle {
		t.Fatalf("prev-less resume never detected the oscillation (rounds=%d)", late.Rounds)
	}
	if late.Rounds <= full.Rounds {
		t.Fatalf("prev-less resume detected the cycle at round %d, expected later than %d", late.Rounds, full.Rounds)
	}
}

// TestResumeFromCanceledResult exercises the Result-side checkpoint: cancel
// a run mid-flight, emit ResumeState from the partial result, resume, and
// compare against the uninterrupted run.
func TestResumeFromCanceledResult(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 12, 12)
	eng := NewEngine(topo, rules.SMP{})
	initial := crossColoring(12, 12, 1)
	opt := Options{Target: 1, StopWhenMonochromatic: true, DetectCycles: true}

	full := eng.Run(initial, opt)

	ctx, cancel := context.WithCancel(context.Background())
	rounds := 0
	obs := RoundFunc(func(round int, _ *coloringT) {
		rounds++
		if rounds == 3 {
			cancel()
		}
	})
	aborted := opt
	aborted.Observers = []Observer{obs}
	partial, err := eng.RunContext(ctx, initial, aborted)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	rs, ok := partial.ResumeState()
	if !ok {
		t.Fatal("partial result has no resume state")
	}
	resumed, err := eng.ResumeContext(context.Background(), rs, opt)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "resume-from-cancel", resumed, full)
}

// TestResumeOnBitplaneEligibleRun checkpoints an auto run whose early rounds
// execute on the bitplane tier (two colors, shift-regular torus), which
// exercises the word-level previous-configuration reconstruction and the
// frontier handoff, then resumes and compares.
func TestResumeOnBitplaneEligibleRun(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 16, 16)
	eng := NewEngine(topo, rules.SMP{})
	initial := randomTestColoring(3, topo.Dims(), 2)
	opt := Options{MaxRounds: 60, DetectCycles: true, Target: 1}

	full := eng.Run(initial, opt)
	if full.Kernel != KernelBitplane {
		t.Fatalf("auto run used %v, expected the bitplane tier", full.Kernel)
	}
	for at := 1; at < full.Rounds; at++ {
		cp := checkpointAt(t, eng, initial, opt, at)
		resumed, err := eng.ResumeContext(context.Background(), cp, opt)
		if err != nil {
			t.Fatalf("resume at %d: %v", at, err)
		}
		resultsEqual(t, "bitplane-resume", resumed, full)
	}

	// A forced bitplane resume is a contract violation, not a silent
	// downgrade.
	cp := checkpointAt(t, eng, initial, opt, 1)
	forced := opt
	forced.Kernel = KernelBitplane
	if _, err := eng.ResumeContext(context.Background(), cp, forced); !errors.Is(err, ErrBitplaneIneligible) {
		t.Fatalf("forced bitplane resume: err = %v, want ErrBitplaneIneligible", err)
	}
}

// TestObserveStreamAdapter pins the Observer contract through the stream
// adapter: OnRound once per executed round in order, OnFinish exactly once
// with the final Result — identical for a drained Stream and for Run (which
// is itself a drain of the observed stream).
func TestObserveStreamAdapter(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 9, 9)
	eng := NewEngine(topo, rules.SMP{})
	initial := crossColoring(9, 9, 1)

	type record struct {
		rounds   []int
		finishes int
	}
	collect := func(rec *record) []Observer {
		return []Observer{roundFinishObserver{
			onRound:  func(round int, _ *coloringT) { rec.rounds = append(rec.rounds, round) },
			onFinish: func(*Result) { rec.finishes++ },
		}}
	}

	var viaRun record
	res := eng.Run(initial, Options{Target: 1, StopWhenMonochromatic: true, Observers: collect(&viaRun)})

	var viaStream record
	for _, err := range eng.Stream(context.Background(), initial, Options{Target: 1, StopWhenMonochromatic: true, Observers: collect(&viaStream)}) {
		if err != nil {
			t.Fatal(err)
		}
	}

	if len(viaRun.rounds) != res.Rounds || viaRun.finishes != 1 {
		t.Fatalf("run observer: %d rounds (want %d), %d finishes (want 1)", len(viaRun.rounds), res.Rounds, viaRun.finishes)
	}
	if len(viaStream.rounds) != len(viaRun.rounds) || viaStream.finishes != 1 {
		t.Fatalf("stream observer: %d rounds (want %d), %d finishes (want 1)", len(viaStream.rounds), len(viaRun.rounds), viaStream.finishes)
	}
	for i := range viaRun.rounds {
		if viaRun.rounds[i] != i+1 || viaStream.rounds[i] != i+1 {
			t.Fatalf("observer round order diverged at index %d", i)
		}
	}
}

// roundFinishObserver is a two-callback Observer for tests.
type roundFinishObserver struct {
	onRound  func(int, *coloringT)
	onFinish func(*Result)
}

func (o roundFinishObserver) OnRound(round int, c *coloringT) { o.onRound(round, c) }
func (o roundFinishObserver) OnFinish(r *Result)              { o.onFinish(r) }
