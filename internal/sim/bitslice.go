package sim

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
)

// ErrBitsliceIneligible reports that a batch cannot run on the bit-sliced
// ensemble tier and must fall back to the per-run loop.  Callers branch on
// it with errors.Is; the wrapped message says which requirement failed.
var ErrBitsliceIneligible = errors.New("sim: batch has no exact bit-sliced form")

// BitsliceLanes is the ensemble width of the bit-sliced tier: one replica
// per bit of a 64-bit word.
const BitsliceLanes = color.MaxLanes

// Bitslice steps up to 64 independent runs of one engine simultaneously by
// flipping the bitplane tier's packing axis: where a Bitplane packs 64
// VERTICES of one run per word, a Bitslice packs the same vertex of 64
// REPLICAS per word (bit r = replica r's one-bit state, internal/color
// PackLanes layout).  Each round gathers the four neighbor words through
// the engine's CSR index and pushes all lanes through the same carry-save
// rules.BitKernel the bitplane tier uses — the kernels are bitwise, so they
// are exact per lane regardless of which axis the bits came from.  The tier
// requires a 4-regular substrate, a BitRule with a two-color kernel and
// replica colorings over {1, 2}.
//
// Finished replicas freeze in place: Freeze masks lanes out of the update
// (their bits hold their terminal state) while the remaining lanes keep
// stepping, which is how ensembles with mixed termination rounds share one
// word stream.  Steady-state stepping allocates nothing (pinned by
// TestBitsliceStepAllocs).
type Bitslice struct {
	e    *Engine
	kern rules.BitKernel
	// n is the vertex count; every plane array holds one word per vertex.
	n     int
	lanes int
	// laneMask has bits 0..lanes-1 set; active is the subset still stepping.
	laneMask, active uint64
	round            int

	// st is the kernel view: Planes == 1, slices indexed by vertex.
	st rules.BitState

	// Per-round bookkeeping, refreshed by Step and valid until the next one.
	counts          [BitsliceLanes]int // per-lane changed-vertex counts
	laneChanged     uint64             // lanes with at least one change
	monoAnd, monoOr uint64             // AND/OR folds of the new state over all vertices
	cycleEq         uint64             // lanes whose new state equals the state two rounds ago
	lostTarget      uint64             // lanes where some vertex left the tracked target color

	detectCycles bool
	prevPrev     []uint64 // state two rounds ago, maintained only when detectCycles

	// Target-spread tracking (driver-configured): targetEnc is the tracked
	// color's one-bit encoding (0 or 1), -1 for a target outside the
	// two-color state space (nothing can ever reach it), or trackOff.
	targetEnc int
	ever      []uint64             // lanes that ever held the target, per vertex
	first     [BitsliceLanes][]int // per-lane FirstReached sinks (nil = untracked)

	// cnt holds bit-sliced vertical counters: plane i carries bit i of every
	// lane's running changed-vertex count for the round in flight.  cntHi is
	// the number of planes touched since the last fold.
	cnt   []uint64
	cntHi int
}

// targetEnc sentinel: no target tracking configured.
const trackOff = -2

// bitsliceBatches counts completed RunBatchSliced calls, so tests can
// assert the transparent fast path actually engaged rather than silently
// falling back.
var bitsliceBatches atomic.Int64

// BitsliceBatches returns the process-wide number of batches the bit-sliced
// tier has completed (a test instrumentation counter).
func BitsliceBatches() int64 { return bitsliceBatches.Load() }

// batchSliceable decides whether a batch may run on the bit-sliced tier
// under the given options.  Cell-level eligibility (colors ⊆ {1, 2}) is
// decided later, by the pack.
func (e *Engine) batchSliceable(initials []*color.Coloring, opt Options) error {
	if len(initials) == 0 {
		return fmt.Errorf("%w: empty batch", ErrBitsliceIneligible)
	}
	if len(initials) > BitsliceLanes {
		return fmt.Errorf("%w: %d replicas exceed the %d-lane word", ErrBitsliceIneligible, len(initials), BitsliceLanes)
	}
	if opt.Kernel != KernelAuto {
		return fmt.Errorf("%w: kernel forced to %s", ErrBitsliceIneligible, opt.Kernel)
	}
	if opt.Parallel || opt.FullSweep || opt.RecordHistory || len(opt.Observers) > 0 {
		return fmt.Errorf("%w: per-run stepping options requested", ErrBitsliceIneligible)
	}
	if opt.TimeVarying != nil {
		return fmt.Errorf("%w: time-varying runs are pinned to sweep semantics", ErrBitsliceIneligible)
	}
	if sched, noise, err := opt.stochasticParams(); err != nil || sched != nil || noise != nil {
		return fmt.Errorf("%w: stochastic runs are pinned to sweep semantics", ErrBitsliceIneligible)
	}
	if !e.deg4 {
		return fmt.Errorf("%w: substrate %q is not a dense 4-regular index", ErrBitsliceIneligible, e.sub.Name())
	}
	if e.bitRule == nil {
		return fmt.Errorf("%w: rule %q has no word-parallel kernel", ErrBitsliceIneligible, e.rule.Name())
	}
	if _, ok := e.bitRule.BitKernel(2); !ok {
		return fmt.Errorf("%w: rule %q has no kernel for palette {1, 2}", ErrBitsliceIneligible, e.rule.Name())
	}
	d := e.sub.Dims()
	for _, c := range initials {
		if c == nil || c.Dims() != d {
			return fmt.Errorf("%w: replica dimensions disagree with the substrate", ErrBitsliceIneligible)
		}
	}
	return nil
}

// newBitslice allocates a stepper's full working set for the engine.
func (e *Engine) newBitslice() *Bitslice {
	n := e.sub.Dims().N()
	bs := &Bitslice{e: e, n: n}
	bs.st.Planes = 1
	bs.st.Cur[0] = make([]uint64, n)
	bs.st.Next[0] = make([]uint64, n)
	for p := 0; p < rules.BitPorts; p++ {
		bs.st.Nbr[p][0] = make([]uint64, n)
	}
	bs.prevPrev = make([]uint64, n)
	bs.ever = make([]uint64, n)
	bs.cnt = make([]uint64, bits.Len(uint(n))+1)
	return bs
}

// getSlice returns a pooled (or, under fresh, a private) stepper.
func (e *Engine) getSlice(fresh bool) *Bitslice {
	if !fresh {
		if v := e.slicePool.Get(); v != nil {
			return v.(*Bitslice)
		}
	}
	return e.newBitslice()
}

// putSlice returns a stepper to the pool (dropped under fresh).
func (e *Engine) putSlice(bs *Bitslice, fresh bool) {
	if fresh {
		return
	}
	for r := range bs.first {
		bs.first[r] = nil // don't pin result slices between batches
	}
	e.slicePool.Put(bs)
}

// reset packs the replicas and rewinds all bookkeeping to round zero.
func (bs *Bitslice) reset(initials []*color.Coloring) error {
	bs.lanes = len(initials)
	bs.laneMask = ^uint64(0) >> uint(64-bs.lanes)
	bs.active = bs.laneMask
	bs.round = 0
	if _, ok := color.PackLanes(initials, bs.st.Cur[0]); !ok {
		return fmt.Errorf("%w: a replica uses colors outside {1, 2}", ErrBitsliceIneligible)
	}
	// The two-color kernel is exact for every configuration over {1, 2},
	// including all-1 replicas, so the ensemble always steps through it.
	kern, ok := bs.e.bitRule.BitKernel(2)
	if !ok {
		return fmt.Errorf("%w: rule %q has no kernel for palette {1, 2}", ErrBitsliceIneligible, bs.e.rule.Name())
	}
	bs.kern = kern
	copy(bs.prevPrev, bs.st.Cur[0])
	bs.detectCycles = false
	bs.targetEnc = trackOff
	bs.counts = [BitsliceLanes]int{}
	bs.laneChanged, bs.monoAnd, bs.monoOr, bs.cycleEq, bs.lostTarget = 0, 0, 0, 0, 0
	for i := range bs.cnt {
		bs.cnt[i] = 0
	}
	bs.cntHi = 0
	for r := range bs.first {
		bs.first[r] = nil
	}
	return nil
}

// NewBitslice returns an ensemble stepper over the engine's substrate and
// rule, one lane per initial coloring, or an error (wrapping
// ErrBitsliceIneligible) describing why the batch has no exact bit-sliced
// form.  It is the entry point for benchmarks and callers driving rounds by
// hand; RunBatchSliced uses a pooled stepper internally.
func (e *Engine) NewBitslice(initials []*color.Coloring) (*Bitslice, error) {
	if err := e.batchSliceable(initials, Options{}); err != nil {
		return nil, err
	}
	bs := e.newBitslice()
	if err := bs.reset(initials); err != nil {
		return nil, err
	}
	return bs, nil
}

// Lanes returns the ensemble width (the number of packed replicas).
func (bs *Bitslice) Lanes() int { return bs.lanes }

// Round returns the number of rounds stepped so far.
func (bs *Bitslice) Round() int { return bs.round }

// Active returns the mask of lanes still stepping.
func (bs *Bitslice) Active() uint64 { return bs.active }

// Freeze removes the masked lanes from the update: their bits keep their
// current state through every later Step while the remaining lanes run.
func (bs *Bitslice) Freeze(mask uint64) { bs.active &^= mask }

// DetectCycles enables the two-rounds-ago comparison behind Cycle.  Call it
// before the first Step.
func (bs *Bitslice) DetectCycles(on bool) { bs.detectCycles = on }

// LaneChanges returns the number of vertices lane r changed in the last
// Step (frozen lanes report 0 from their final active round onward).
func (bs *Bitslice) LaneChanges(r int) int { return bs.counts[r] }

// LaneChanged returns the mask of lanes that changed at least one vertex in
// the last Step.
func (bs *Bitslice) LaneChanged() uint64 { return bs.laneChanged }

// Monochromatic reports whether lane r's configuration was monochromatic
// after the last Step.
func (bs *Bitslice) Monochromatic(r int) bool {
	return (bs.monoAnd|^bs.monoOr)>>uint(r)&1 == 1
}

// Cycle reports whether lane r's configuration after the last Step equals
// its configuration two rounds earlier (a period-2 limit cycle; meaningful
// only under DetectCycles, and subsumed by a fixed point when the lane did
// not change).
func (bs *Bitslice) Cycle(r int) bool { return bs.cycleEq>>uint(r)&1 == 1 }

// setTarget configures target-spread tracking: enc outside the one-bit
// state space tracks nothing (the target can never be reached), matching
// the scalar tiers' zero target masks.  The ever-held seed is derived from
// the packed round-0 state, so call it after reset and before stepping.
func (bs *Bitslice) setTarget(target color.Color) {
	enc := int(target) - 1
	if enc != 0 && enc != 1 {
		enc = -1
	}
	bs.targetEnc = enc
	cur := bs.st.Cur[0]
	for v := range cur {
		t := uint64(0)
		switch enc {
		case 1:
			t = cur[v]
		case 0:
			t = ^cur[v]
		}
		bs.ever[v] = t & bs.laneMask
	}
}

// Step advances every active lane one synchronous round: gather the four
// neighbor words per vertex through the CSR forward index, apply the
// carry-save kernel to all lanes at once, freeze inactive lanes back to
// their prior state, and refresh the per-lane bookkeeping (change counts,
// monochromatic/cycle folds, target spread).  It allocates nothing.
func (bs *Bitslice) Step() {
	bs.round++
	n := bs.n
	cur, next := bs.st.Cur[0], bs.st.Next[0]
	n0, n1, n2, n3 := bs.st.Nbr[0][0], bs.st.Nbr[1][0], bs.st.Nbr[2][0], bs.st.Nbr[3][0]
	fwd := bs.e.csr.Neighbors
	_ = fwd[grid.Degree*n-1]
	for v := 0; v < n; v++ {
		b := grid.Degree * v
		n0[v] = cur[fwd[b]]
		n1[v] = cur[fwd[b+1]]
		n2[v] = cur[fwd[b+2]]
		n3[v] = cur[fwd[b+3]]
	}
	bs.kern.StepWords(&bs.st, 0, n)

	act, lm := bs.active, bs.laneMask
	monoAnd, monoOr := ^uint64(0), uint64(0)
	cycleEq := ^uint64(0)
	var changed, lost uint64
	pp := bs.prevPrev
	dc := bs.detectCycles
	enc := bs.targetEnc
	for v := 0; v < n; v++ {
		cv := cur[v]
		nx := next[v]&act | cv&^act
		next[v] = nx
		if d := cv ^ nx; d != 0 {
			changed |= d
			bs.countAdd(d)
		}
		monoAnd &= nx
		monoOr |= nx
		if dc {
			cycleEq &= ^(nx ^ pp[v])
			pp[v] = cv
		}
		if enc >= 0 {
			told, tnew := cv, nx
			if enc == 0 {
				told, tnew = ^cv, ^nx
			}
			told &= lm
			tnew &= lm
			lost |= told &^ tnew
			if newly := tnew &^ bs.ever[v]; newly != 0 {
				bs.ever[v] |= newly
				for m := newly; m != 0; m &= m - 1 {
					if fr := bs.first[bits.TrailingZeros64(m)]; fr != nil {
						fr[v] = bs.round
					}
				}
			}
		}
	}
	bs.laneChanged = changed
	bs.monoAnd, bs.monoOr = monoAnd, monoOr
	bs.cycleEq = cycleEq
	bs.lostTarget = lost
	// Fold the vertical counters into per-lane counts and clear them.
	for m := act; m != 0; m &= m - 1 {
		r := bits.TrailingZeros64(m)
		c := 0
		for i := 0; i < bs.cntHi; i++ {
			c |= int(bs.cnt[i]>>uint(r)&1) << uint(i)
		}
		bs.counts[r] = c
	}
	for i := 0; i < bs.cntHi; i++ {
		bs.cnt[i] = 0
	}
	bs.cntHi = 0
	bs.st.Cur[0], bs.st.Next[0] = next, cur
}

// countAdd carry-saves one diff word into the vertical per-lane counters.
func (bs *Bitslice) countAdd(d uint64) {
	for i := 0; ; i++ {
		t := bs.cnt[i]
		bs.cnt[i] = t ^ d
		d &= t
		if i >= bs.cntHi {
			bs.cntHi = i + 1
		}
		if d == 0 {
			return
		}
	}
}

// Unpack extracts lane r's current configuration into dst (allocated when
// nil) and returns it.
func (bs *Bitslice) Unpack(r int, dst *color.Coloring) *color.Coloring {
	if dst == nil {
		dst = color.NewColoring(bs.e.sub.Dims(), color.None)
	}
	color.UnpackLane(bs.st.Cur[0], r, dst)
	return dst
}

// unpackPrev extracts lane r's configuration before the last Step (the
// swapped-out buffer), the per-lane equivalent of a driver's prevConfig.
func (bs *Bitslice) unpackPrev(r int) *color.Coloring {
	prev := color.NewColoring(bs.e.sub.Dims(), color.None)
	color.UnpackLane(bs.st.Next[0], r, prev)
	return prev
}

// RunBatchSliced evolves up to 64 initial colorings to their terminal
// Results in one bit-sliced word stream, bit-identical — field for field,
// including the kernel/downshift metadata a scalar auto-tier run would
// report — to running each replica through RunContext with the same
// options.  Per-lane termination masks let replicas stop on their own round
// (fixed point, monochromatic, cycle or budget) while the rest keep
// stepping.  Ineligible batches (wrong substrate, rule, options or colors)
// return an error wrapping ErrBitsliceIneligible without side effects, so
// callers can fall back to the per-run loop.
//
// When ctx is canceled mid-batch the call returns ctx.Err() together with
// the results of the lanes that already terminated; still-active lanes are
// nil, matching the batch-session contract.
func (e *Engine) RunBatchSliced(ctx context.Context, initials []*color.Coloring, opt Options) ([]*Result, error) {
	if err := e.batchSliceable(initials, opt); err != nil {
		return nil, err
	}
	bs := e.getSlice(opt.FreshBuffers)
	if err := bs.reset(initials); err != nil {
		e.putSlice(bs, opt.FreshBuffers)
		return nil, err
	}
	defer e.putSlice(bs, opt.FreshBuffers)

	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = e.sub.DefaultMaxRounds()
	}
	bs.detectCycles = opt.DetectCycles
	if opt.Target != color.None {
		bs.setTarget(opt.Target)
	}

	// Per-lane Results carry the metadata the scalar auto tier would have
	// chosen for that replica alone: the bitplane kernel (with its
	// low-churn downshift round) where bitplaneCheck passes, the dirty
	// frontier otherwise.  The numerical fields agree across tiers by the
	// kernels' exactness, so emulating the metadata keeps sliced results
	// byte-identical to scalar ones — the invariant the dynserve result
	// cache is built on.
	results := make([]*Result, len(initials))
	resBuf := make([]*Result, len(initials))
	var emulate uint64 // lanes whose scalar run would report the bitplane tier
	for r, init := range initials {
		res := &Result{MonotoneTarget: true, Workers: 1, Kernel: KernelFrontier}
		if e.topo != nil {
			if _, _, _, err := e.bitplaneCheck(init); err == nil {
				res.Kernel = KernelBitplane
				emulate |= 1 << uint(r)
			}
		}
		initTargetTrace(res, init, opt.Target)
		bs.first[r] = res.FirstReached
		resBuf[r] = res
	}

	lowChurn := make([]int, len(initials))
	for {
		if err := ctx.Err(); err != nil {
			return results, err
		}
		bs.Step()
		round := bs.round
		var freeze uint64
		for m := bs.active; m != 0; m &= m - 1 {
			r := bits.TrailingZeros64(m)
			res := resBuf[r]
			c := bs.counts[r]
			res.Rounds = round
			res.ChangesPerRound = append(res.ChangesPerRound, c)
			if bs.lostTarget>>uint(r)&1 == 1 {
				res.MonotoneTarget = false
			}
			// The stop conditions and their precedence replicate drive's.
			done, needPrev := false, true
			switch {
			case c == 0:
				res.FixedPoint = true
				done, needPrev = true, false
			case opt.StopWhenMonochromatic && bs.Monochromatic(r):
				done, needPrev = true, false
			case opt.DetectCycles && bs.Cycle(r):
				res.Cycle = true
				done = true
			case round == maxRounds:
				done = true
			}
			if !done {
				if emulate>>uint(r)&1 == 1 && res.Downshift == 0 {
					// The scalar bitplane driver's low-churn handoff.
					if c*downshiftFactor < bs.n {
						lowChurn[r]++
					} else {
						lowChurn[r] = 0
					}
					if lowChurn[r] >= downshiftRounds {
						res.Downshift = round + 1
					}
				}
				continue
			}
			freeze |= 1 << uint(r)
			if needPrev {
				res.prev = bs.unpackPrev(r)
			}
			// Inline finish() on the freshly unpacked final (no extra clone).
			res.Final = bs.Unpack(r, nil)
			res.FinalColor, res.Monochromatic = res.Final.IsMonochromatic()
			if opt.Target == color.None {
				res.MonotoneTarget = false
			}
			results[r] = res
		}
		bs.Freeze(freeze)
		if bs.active == 0 {
			bitsliceBatches.Add(1)
			return results, nil
		}
	}
}
