package sim

import (
	"fmt"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
)

// Frontier is the dirty-frontier stepper: the allocation-free core that
// makes late-convergence rounds cheap.  A synchronous rule is local, so a
// vertex can change color in round t+1 only if its own color or a neighbor's
// color changed in round t; everything else is guaranteed to repeat its
// previous output.  The stepper therefore keeps the configuration in a
// single buffer updated in place through a per-round change journal, and
// re-evaluates in round t+1 exactly the vertices v with
//
//	v ∈ changed(t) ∪ { u : N(u) ∩ changed(t) ≠ ∅ }
//
// using the topology's reverse CSR index for the second set.  Round 1
// evaluates every vertex (nothing is known about the initial configuration).
// The journal also powers incremental bookkeeping that would otherwise cost
// O(n) per round: a color histogram for the monochromatic stop condition and
// a last-change trace for period-2 cycle detection, so a whole run does no
// full-lattice work after setup.
//
// Results are bit-identical to the full-sweep steppers: evaluation reads
// only pre-round state (changes are journaled and applied after the scan),
// and the paper's rules are pure functions of the neighborhood.
//
// A Frontier is single-goroutine state.  All of its buffers are allocated at
// construction and recycled by Reset, so steady-state Step calls perform
// zero heap allocations (pinned by TestFrontierStepDoesNotAllocate); engines
// pool Frontier values across runs, which extends the guarantee across
// dynmon Session batches.
type Frontier struct {
	e   *Engine
	cfg *color.Coloring
	// epoch[v] is the round for which v was last scheduled; the queue for
	// round r holds each vertex at most once, marked epoch[v] == r.
	epoch []int32
	// queue holds the vertices to evaluate this round; nextQueue is built
	// from the change journal while the round is applied.
	queue, nextQueue []int32
	// chV/chOld/chNew journal the vertices that changed in the last Step,
	// with their colors before and after.
	chV   []int32
	chOld []color.Color
	chNew []color.Color
	// lastRound[v] is the last round in which v changed, lastOld[v] its
	// color just before that change; together they detect period-2 cycles
	// without comparing whole configurations.
	lastRound []int32
	lastOld   []color.Color
	// hist[c] counts vertices of color c; nonzero counts colors present.
	hist    []int
	nonzero int
	// prevChanged is the journal size of the previous round, cycle whether
	// the last Step exactly undid the round before it.
	prevChanged int
	cycle       bool
	round       int
	// scratch4 backs the slice-path rule invocation on dense 4-regular
	// substrates; scratch backs it (and the counts-overflow fallback) on
	// irregular ones.  Both live here so Step stays allocation-free.
	scratch4 [grid.Degree]color.Color
	scratch  []color.Color
}

// newFrontier allocates a frontier with a blank configuration; callers must
// Reset before stepping.  Engines recycle frontiers through their run-state
// pool, so this runs once per pooled state, not once per run.
func newFrontier(e *Engine) *Frontier {
	n := e.sub.Dims().N()
	return &Frontier{
		e:         e,
		cfg:       color.NewColoring(e.sub.Dims(), color.None),
		epoch:     make([]int32, n),
		queue:     make([]int32, 0, n),
		nextQueue: make([]int32, 0, n),
		chV:       make([]int32, 0, n),
		chOld:     make([]color.Color, 0, n),
		chNew:     make([]color.Color, 0, n),
		lastRound: make([]int32, n),
		lastOld:   make([]color.Color, n),
		scratch:   make([]color.Color, 0, e.maxDeg),
	}
}

// NewFrontier returns a frontier stepper over the engine's topology and
// rule, initialized to the given configuration.  It is the public entry
// point for benchmarks and callers that want to drive rounds by hand; Run
// uses a pooled frontier internally.
func (e *Engine) NewFrontier(initial *color.Coloring) *Frontier {
	f := newFrontier(e)
	f.Reset(initial)
	return f
}

// Reset rewinds the frontier to round 0 on a new initial configuration,
// reusing every buffer.  The configuration is copied; the argument is not
// retained.
func (f *Frontier) Reset(initial *color.Coloring) {
	if initial.Dims() != f.cfg.Dims() {
		panic(fmt.Sprintf("sim: Frontier.Reset dimension mismatch %v vs %v", initial.Dims(), f.cfg.Dims()))
	}
	f.cfg.CopyFrom(initial)
	f.round = 0
	f.clearTrace()
	f.scheduleAll()
}

// clearTrace rewinds every piece of per-run bookkeeping — epoch marks,
// period-2 trace, change journal, cycle state — and rebuilds the color
// histogram from the current configuration.  It is the shared tail of
// Reset, seedFromBitplane and seedFromCheckpoint; callers overwrite the
// fields their seed state knows better (prevChanged, cycle, lastRound
// entries) afterwards.
func (f *Frontier) clearTrace() {
	f.prevChanged = 0
	f.cycle = false
	for i := range f.epoch {
		f.epoch[i] = 0
	}
	for i := range f.lastRound {
		f.lastRound[i] = -1
	}
	f.chV, f.chOld, f.chNew = f.chV[:0], f.chOld[:0], f.chNew[:0]
	for i := range f.hist {
		f.hist[i] = 0
	}
	f.nonzero = 0
	for _, c := range f.cfg.Cells() {
		f.histInc(c)
	}
}

// scheduleAll queues every vertex for round f.round+1 — the "nothing is
// known about the last round" schedule used at round 0 and by prev-less
// checkpoint seeds.
func (f *Frontier) scheduleAll() {
	mark := int32(f.round) + 1
	f.queue = f.queue[:0]
	for v := 0; v < f.cfg.N(); v++ {
		f.queue = append(f.queue, int32(v))
		f.epoch[v] = mark
	}
}

func (f *Frontier) histInc(c color.Color) {
	i := int(c)
	for i >= len(f.hist) {
		// Grows only when a color larger than any seen before appears
		// (possible under the increment rule); steady state never grows.
		f.hist = append(f.hist, 0)
	}
	f.hist[i]++
	if f.hist[i] == 1 {
		f.nonzero++
	}
}

func (f *Frontier) histDec(c color.Color) {
	f.hist[int(c)]--
	if f.hist[int(c)] == 0 {
		f.nonzero--
	}
}

// Config returns the current configuration.  It is the frontier's working
// buffer: valid until the next Step or Reset, and must not be mutated.
func (f *Frontier) Config() *color.Coloring { return f.cfg }

// Round returns the number of rounds stepped since the last Reset.
func (f *Frontier) Round() int { return f.round }

// Size returns the number of vertices scheduled for evaluation in the next
// round — the dirty frontier's width.  It is n right after Reset and shrinks
// toward the active region as the dynamics localize.
func (f *Frontier) Size() int { return len(f.queue) }

// Changed returns the journal of the last Step: the vertices that changed
// color, in evaluation order.  The slice is reused by the next Step.
func (f *Frontier) Changed() []int32 { return f.chV }

// Monochromatic reports whether the current configuration is monochromatic,
// maintained incrementally from the change journal in O(changes) per round.
func (f *Frontier) Monochromatic() bool { return f.nonzero == 1 }

// Cycle reports whether the last Step exactly undid the one before it, i.e.
// the configuration equals the one two rounds ago — the period-2 oscillation
// the reversible majority rules can enter.  Like Monochromatic it is
// maintained from the journals alone: round r is a cycle iff its journal has
// the same size as round r-1's and every entry flips a vertex straight back
// (lastRound[v] == r-1 and lastOld[v] == the new color).
func (f *Frontier) Cycle() bool { return f.cycle }

// Step applies one synchronous round to the dirty frontier and returns the
// number of vertices that changed color.  Zero means the configuration is a
// fixed point (and the frontier is empty, so further Steps are O(1)).
func (f *Frontier) Step() int {
	f.round++
	r := int32(f.round)
	cells := f.cfg.Cells()
	fwd := f.e.csr.Neighbors

	// Evaluate the frontier against pre-round state, journaling changes.
	f.chV, f.chOld, f.chNew = f.chV[:0], f.chOld[:0], f.chNew[:0]
	switch cr := f.e.countRule; {
	case f.e.deg4 && cr != nil:
		for _, v := range f.queue {
			base := int(v) * grid.Degree
			var cs rules.Counts
			cs.Add(cells[fwd[base]])
			cs.Add(cells[fwd[base+1]])
			cs.Add(cells[fwd[base+2]])
			cs.Add(cells[fwd[base+3]])
			cur := cells[v]
			if nc := cr.NextFromCounts(cur, cs); nc != cur {
				f.chV = append(f.chV, v)
				f.chOld = append(f.chOld, cur)
				f.chNew = append(f.chNew, nc)
			}
		}
	case f.e.deg4:
		rule := f.e.rule
		for _, v := range f.queue {
			base := int(v) * grid.Degree
			f.scratch4[0] = cells[fwd[base]]
			f.scratch4[1] = cells[fwd[base+1]]
			f.scratch4[2] = cells[fwd[base+2]]
			f.scratch4[3] = cells[fwd[base+3]]
			cur := cells[v]
			if nc := rule.Next(cur, f.scratch4[:]); nc != cur {
				f.chV = append(f.chV, v)
				f.chOld = append(f.chOld, cur)
				f.chNew = append(f.chNew, nc)
			}
		}
	default:
		// Irregular substrate: offset-framed rows, counts fast path when
		// the multiset fits a Counts vector exactly, slice path otherwise.
		off := f.e.csr.Off
		rule := f.e.rule
		for _, v := range f.queue {
			row := fwd[off[v]:off[v+1]]
			cur := cells[v]
			var nc color.Color
			fits := false
			if cr != nil {
				var cs rules.Counts
				fits = true
				for _, u := range row {
					if !cs.AddOK(cells[u]) {
						fits = false
						break
					}
				}
				if fits {
					nc = cr.NextFromCounts(cur, cs)
				}
			}
			if !fits {
				scratch := f.scratch[:0]
				for _, u := range row {
					scratch = append(scratch, cells[u])
				}
				nc = rule.Next(cur, scratch)
			}
			if nc != cur {
				f.chV = append(f.chV, v)
				f.chOld = append(f.chOld, cur)
				f.chNew = append(f.chNew, nc)
			}
		}
	}

	// Apply the journal: commit colors, maintain the histogram and the
	// period-2 trace.
	cycle := len(f.chV) > 0 && len(f.chV) == f.prevChanged
	for i, v := range f.chV {
		old, nc := f.chOld[i], f.chNew[i]
		if cycle && !(f.lastRound[v] == r-1 && f.lastOld[v] == nc) {
			cycle = false
		}
		cells[v] = nc
		f.histDec(old)
		f.histInc(nc)
		f.lastRound[v] = r
		f.lastOld[v] = old
	}
	f.cycle = cycle
	f.prevChanged = len(f.chV)

	// Schedule round r+1: the changed vertices and everyone who reads them.
	f.nextQueue = f.nextQueue[:0]
	rev, revOff := f.e.csr.Rev, f.e.csr.RevOff
	mark := r + 1
	for _, v := range f.chV {
		if f.epoch[v] != mark {
			f.epoch[v] = mark
			f.nextQueue = append(f.nextQueue, v)
		}
		for _, u := range rev[revOff[v]:revOff[v+1]] {
			if f.epoch[u] != mark {
				f.epoch[u] = mark
				f.nextQueue = append(f.nextQueue, u)
			}
		}
	}
	f.queue, f.nextQueue = f.nextQueue, f.queue
	return len(f.chV)
}

// seedFromBitplane rewinds the frontier onto a bitplane stepper's mid-run
// state: configuration, change-journal bookkeeping (period-2 trace, previous
// change count, histogram) and the dirty queue for the next round.  It is
// the handoff behind the auto-tier downshift, and it is exact: the hybrid
// run produces the same Result, round for round, as either pure stepper.
func (f *Frontier) seedFromBitplane(bp *Bitplane) {
	bp.Unpack(f.cfg)
	f.round = bp.round
	f.clearTrace()
	f.prevChanged = bp.prevChanged
	f.cycle = bp.cycle
	// Schedule round bp.round+1 exactly as Step would have: the vertices
	// that changed in the bitplane's last round and everyone who reads them,
	// while seeding the period-2 trace with those vertices' previous colors.
	r := int32(bp.round)
	mark := r + 1
	f.queue = f.queue[:0]
	rev, revOff := f.e.csr.Rev, f.e.csr.RevOff
	bp.lastChanges(func(v int32, old color.Color) {
		f.lastRound[v] = r
		f.lastOld[v] = old
		if f.epoch[v] != mark {
			f.epoch[v] = mark
			f.queue = append(f.queue, v)
		}
		for _, u := range rev[revOff[v]:revOff[v+1]] {
			if f.epoch[u] != mark {
				f.epoch[u] = mark
				f.queue = append(f.queue, u)
			}
		}
	})
}

// seedFromCheckpoint rewinds the frontier onto an interrupted run's state:
// the configuration at the end of round `round` plus, when known, the
// configuration one round earlier.  Diffing the two reconstructs exactly the
// change journal of round `round` — the vertices that changed, with their
// colors before the change — which seeds the period-2 trace, the previous
// change count and the dirty queue for round round+1 precisely as Step would
// have left them, so the resumed run is bit-identical to an uninterrupted
// one.  With prev == nil the journal is unknown: the next round re-evaluates
// every vertex (a sound superset — untouched vertices reproduce their
// colors) and cycle detection restarts, so a period-2 oscillation spanning
// the checkpoint boundary is detected two rounds later than an uninterrupted
// run would have.
func (f *Frontier) seedFromCheckpoint(cfg, prev *color.Coloring, round int) {
	if cfg.Dims() != f.cfg.Dims() {
		panic(fmt.Sprintf("sim: Frontier.seedFromCheckpoint dimension mismatch %v vs %v", cfg.Dims(), f.cfg.Dims()))
	}
	f.cfg.CopyFrom(cfg)
	f.round = round
	f.clearTrace()
	if prev == nil {
		// Nothing is known about round `round`: schedule everything.
		f.scheduleAll()
		return
	}

	r := int32(round)
	mark := r + 1
	f.queue = f.queue[:0]
	rev, revOff := f.e.csr.Rev, f.e.csr.RevOff
	cells := f.cfg.Cells()
	prevCells := prev.Cells()
	for v := range cells {
		if prevCells[v] == cells[v] {
			continue
		}
		f.prevChanged++
		f.lastRound[v] = r
		f.lastOld[v] = prevCells[v]
		v32 := int32(v)
		if f.epoch[v] != mark {
			f.epoch[v] = mark
			f.queue = append(f.queue, v32)
		}
		for _, u := range rev[revOff[v]:revOff[v+1]] {
			if f.epoch[u] != mark {
				f.epoch[u] = mark
				f.queue = append(f.queue, u)
			}
		}
	}
}
