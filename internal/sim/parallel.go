package sim

import (
	"fmt"

	"repro/internal/color"
)

// StepParallel applies one synchronous round using the striped parallel
// stepper, reading from cur and writing into next, and returns the number of
// vertices that changed color.  It produces exactly the same result as Step;
// it exists so benchmarks and throughput experiments can drive the parallel
// path without going through Run.
func (e *Engine) StepParallel(cur, next *color.Coloring, workers int) int {
	if cur.Dims() != e.sub.Dims() || next.Dims() != e.sub.Dims() {
		panic(fmt.Sprintf("sim: StepParallel dimension mismatch (%v, %v) vs %v", cur.Dims(), next.Dims(), e.sub.Dims()))
	}
	if workers <= 0 {
		workers = 1
	}
	st := e.getState(false)
	defer e.putState(st, false)
	return e.stepParallel(cur.Cells(), next.Cells(), workers, st)
}

// stepParallel applies one synchronous round using the striped parallel
// stepper: the vertex range is cut into contiguous stripes, one per worker,
// each stripe reads the shared immutable cur slice and writes only its own
// part of next.  Because reads and writes never overlap, the result is
// bit-identical to the sequential stepper.
//
// Stripes run on the process-wide persistent worker pool (see pool.go)
// through the run state's pre-allocated task buffer, so steady-state
// parallel stepping performs zero heap allocations (pinned by
// TestParallelStepDoesNotAllocate).  OS-level parallelism is naturally
// capped at the pool size, GOMAXPROCS; requesting more workers than that
// still computes every stripe, just not all at once.
func (e *Engine) stepParallel(cur, next []color.Color, workers int, st *runState) int {
	n := len(cur)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return e.stepRange(cur, next, 0, n, st.scratch)
	}
	done := st.stripeAcross(n, workers, func(t *stripeTask, lo, hi int) {
		*t = stripeTask{run: runSweepTask, wg: &st.wg, e: e, cur: cur, next: next, lo: lo, hi: hi}
	})
	total := 0
	for i := range done {
		total += done[i].changed
	}
	return total
}

// stepParallelTV is stepParallel for time-varying rounds: the same striped
// partitioning, with every stripe evaluating the round's availability mask.
// Availability models are required to be deterministic pure functions of
// (round, u, v), so stripes read them concurrently without coordination and
// the result is bit-identical to the sequential time-varying sweep.
func (e *Engine) stepParallelTV(round int, avail Availability, cur, next []color.Color, workers int, st *runState) int {
	n := len(cur)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return e.stepRangeTV(round, avail, cur, next, 0, n, st.scratch)
	}
	done := st.stripeAcross(n, workers, func(t *stripeTask, lo, hi int) {
		*t = stripeTask{run: runSweepTVTask, wg: &st.wg, e: e, cur: cur, next: next, lo: lo, hi: hi, round: round, avail: avail}
	})
	total := 0
	for i := range done {
		total += done[i].changed
	}
	return total
}
