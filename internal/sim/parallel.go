package sim

import (
	"fmt"
	"sync"

	"repro/internal/color"
)

// StepParallel applies one synchronous round using the striped parallel
// stepper, reading from cur and writing into next, and returns the number of
// vertices that changed color.  It produces exactly the same result as Step;
// it exists so benchmarks and throughput experiments can drive the parallel
// path without going through Run.
func (e *Engine) StepParallel(cur, next *color.Coloring, workers int) int {
	if cur.Dims() != e.topo.Dims() || next.Dims() != e.topo.Dims() {
		panic(fmt.Sprintf("sim: StepParallel dimension mismatch (%v, %v) vs %v", cur.Dims(), next.Dims(), e.topo.Dims()))
	}
	if workers <= 0 {
		workers = 1
	}
	return e.stepParallel(cur.Cells(), next.Cells(), workers)
}

// stepParallel applies one synchronous round using the striped parallel
// stepper: the vertex range is cut into contiguous stripes, one per worker,
// each worker reads the shared immutable cur slice and writes only its own
// stripe of next.  Because reads and writes never overlap, the result is
// bit-identical to the sequential stepper.
func (e *Engine) stepParallel(cur, next []color.Color, workers int) int {
	n := len(cur)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return e.stepRange(cur, next, 0, n)
	}
	changes := make([]int, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			changes[w] = e.stepRange(cur, next, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, c := range changes {
		total += c
	}
	return total
}
