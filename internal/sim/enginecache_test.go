package sim

import (
	"testing"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
)

// TestEngineOfCaches pins the engine cache behind sim.Run: equal topology
// and rule values share one engine (and therefore one pooled-buffer pool),
// distinct values do not, and non-comparable rules fall back to fresh
// engines instead of panicking in the map.
func TestEngineOfCaches(t *testing.T) {
	a := EngineOf(grid.MustNew(grid.KindToroidalMesh, 6, 6), rules.SMP{})
	b := EngineOf(grid.MustNew(grid.KindToroidalMesh, 6, 6), rules.SMP{})
	if a != b {
		t.Fatal("equal (topology, rule) values must share one engine")
	}
	c := EngineOf(grid.MustNew(grid.KindToroidalMesh, 6, 7), rules.SMP{})
	if c == a {
		t.Fatal("different dimensions must not share an engine")
	}
	d := EngineOf(grid.MustNew(grid.KindToroidalMesh, 6, 6), rules.SimpleMajorityPB{Black: 2})
	if d == a {
		t.Fatal("different rules must not share an engine")
	}

	// A non-comparable rule (func field) must not panic the cache.
	nc := funcRule{next: func(cur color.Color, ns []color.Color) color.Color { return cur }}
	e1 := EngineOf(grid.MustNew(grid.KindToroidalMesh, 6, 6), nc)
	e2 := EngineOf(grid.MustNew(grid.KindToroidalMesh, 6, 6), nc)
	if e1 == e2 {
		t.Fatal("non-comparable rules must get fresh engines")
	}
}

// funcRule is a deliberately non-comparable Rule for the cache test.
type funcRule struct {
	next func(color.Color, []color.Color) color.Color
}

func (funcRule) Name() string { return "func-rule" }
func (f funcRule) Next(cur color.Color, ns []color.Color) color.Color {
	return f.next(cur, ns)
}

// TestRunSharesCachedEngine: the package-level Run helper must reuse the
// cached engine, which is what lets the analysis sweeps stop paying engine
// construction per point.
func TestRunSharesCachedEngine(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	initial := randomColoring(1, 5, 5, 3)
	r1 := Run(topo, rules.SMP{}, initial, Options{MaxRounds: 5})
	r2 := Run(topo, rules.SMP{}, initial, Options{MaxRounds: 5})
	if r1.Rounds != r2.Rounds || !r1.Final.Equal(r2.Final) {
		t.Fatal("cached-engine runs must be reproducible")
	}
	if EngineOf(topo, rules.SMP{}) != EngineOf(topo, rules.SMP{}) {
		t.Fatal("Run must go through the engine cache")
	}
}
