package sim

import (
	"fmt"
	"sync"

	"repro/internal/color"
	"repro/internal/grid"
)

// shardedAutoThreshold is the vertex count above which automatic kernel
// selection prefers the sharded tier over the striped parallel sweep for
// parallel runs.  Below it the whole working set fits one cache hierarchy
// and the striped sweep's shared buffers are as good as shard-local ones;
// above it the striped sweep is memory-bandwidth-bound on the shared
// coloring (BENCH_baseline.json: 256×256 striped stepping is flat in the
// worker count) while shard-local buffers keep each worker in its own
// slice of the hierarchy.
const shardedAutoThreshold = 1 << 17

// shardState is the mutable per-shard working set of a Sharded stepper:
// the shard's local double buffers (owned interior first, halo ghosts
// after), the period-2 comparison buffer over the interior, and the
// per-round outputs its worker writes and the submitter reads after the
// round barrier.
type shardState struct {
	cs        *grid.CSRShard
	cur, next []color.Color
	// prevPrev holds the interior two rounds back (lazily allocated when
	// cycle detection is on), mirroring sweepDriver's period-2 trace.
	prevPrev []color.Color
	// scratch backs the generic inner loop's neighbor gathering on
	// irregular substrates.
	scratch []color.Color

	// Per-round outputs, written by the shard's worker, read by the
	// submitter after the WaitGroup barrier.
	changed   int
	cycleFlag bool
	// monoViol latches a target-monotonicity violation; it is sticky
	// because Result.MonotoneTarget never recovers once false.
	monoViol bool
}

// Sharded is the domain-decomposed stepper: the substrate is cut into
// contiguous degree-balanced shards (row-band slabs on the dense tori, see
// grid.CSR.Shards), each shard steps its interior out of shard-local
// buffers through the engine's usual inner loops rewritten over the local
// adjacency, and a per-round halo exchange copies only the boundary cells
// between shards.  Interior work takes no locks and touches no shared
// mutable memory; the only cross-shard traffic is the O(halo) exchange on
// the submitting goroutine between the round barrier and the buffer swap.
//
// Results are bit-identical to the sequential sweep: local rows preserve
// the global neighbor order, so every vertex reads exactly the multiset the
// global sweep reads.  A Sharded is not safe for concurrent use; engines
// recycle them through the per-run state pool.
type Sharded struct {
	e      *Engine
	shards []shardState
	tasks  []stripeTask
	wg     sync.WaitGroup
	// requested is the worker count the stepper was built for (the pool's
	// rebuild key); the actual shard count may be lower on small substrates.
	requested int
	deg4      bool

	// Round-scoped parameters staged by the driver before dispatch and read
	// by the shard workers (the task handoff orders the writes).
	round        int
	target       color.Color
	firstReached []int
	trackCycles  bool

	// cfg is the lazily gathered global view of the interior cells;
	// cfgRound caches which round it reflects so unobserved runs never pay
	// the O(n) gather.
	cfg      *color.Coloring
	cfgRound int
	rounds   int
}

// NewSharded builds a sharded stepper cutting the substrate into up to
// `workers` shards (fewer on substrates with fewer alignment blocks than
// workers; at least one).  The partitioned adjacency views are cached on
// the engine per shard count; the returned stepper owns only the mutable
// buffers.  Callers must Reset it with an initial coloring before stepping.
func (e *Engine) NewSharded(workers int) *Sharded {
	if workers < 1 {
		workers = 1
	}
	d := e.sub.Dims()
	if n := d.N(); workers > n && n > 0 {
		workers = n
	}
	parts := e.shardsFor(workers)
	sh := &Sharded{
		e:         e,
		requested: workers,
		deg4:      e.deg4,
		cfg:       color.NewColoring(d, color.None),
		cfgRound:  -1,
		shards:    make([]shardState, len(parts)),
		tasks:     make([]stripeTask, len(parts)),
	}
	for i, cs := range parts {
		s := &sh.shards[i]
		s.cs = cs
		s.cur = make([]color.Color, cs.Len())
		s.next = make([]color.Color, cs.Len())
		if !e.deg4 {
			s.scratch = make([]color.Color, 0, cs.MaxDegree())
		}
	}
	return sh
}

// shardsFor returns the engine's cached partitioned view of the substrate
// for k shards, building it on first use.  Dense tori are cut on row
// boundaries (row-band slabs: each shard's halo is exactly the row above
// and the row below); general substrates are cut on the degree-balanced
// vertex line.
func (e *Engine) shardsFor(k int) []*grid.CSRShard {
	if cached, ok := e.shardSets.Load(k); ok {
		return cached.([]*grid.CSRShard)
	}
	align := 1
	if e.topo != nil {
		align = e.sub.Dims().Cols
	}
	parts := e.csr.Shards(k, align)
	cached, _ := e.shardSets.LoadOrStore(k, parts)
	return cached.([]*grid.CSRShard)
}

// Shards returns the number of shards (= stepping goroutines per round).
func (sh *Sharded) Shards() int { return len(sh.shards) }

// Reset scatters the initial coloring into the shard-local buffers and
// clears all per-run bookkeeping, preparing the stepper for a fresh run
// without cycle detection or target tracking (the driver path configures
// those through reset).
func (sh *Sharded) Reset(initial *color.Coloring) {
	if initial.Dims() != sh.e.sub.Dims() {
		panic(fmt.Sprintf("sim: Sharded.Reset dimension mismatch %v vs %v", initial.Dims(), sh.e.sub.Dims()))
	}
	sh.reset(initial, false, color.None, nil)
}

// reset is Reset plus the driver-level knobs: cycle detection (seeding the
// period-2 buffers from prevSeed when resuming, the initial configuration
// otherwise, exactly as sweepDriver does) and the tracked target color.
func (sh *Sharded) reset(initial *color.Coloring, detectCycles bool, target color.Color, prevSeed *color.Coloring) {
	cells := initial.Cells()
	for i := range sh.shards {
		s := &sh.shards[i]
		owned := s.cs.Owned()
		copy(s.cur[:owned], cells[s.cs.Lo:s.cs.Hi])
		for j, g := range s.cs.Halo {
			s.cur[owned+j] = cells[g]
		}
		s.changed, s.cycleFlag, s.monoViol = 0, false, false
	}
	sh.trackCycles = detectCycles
	sh.target = target
	sh.firstReached = nil
	sh.round = 0
	sh.rounds = 0
	sh.cfgRound = -1
	if detectCycles {
		seed := cells
		if prevSeed != nil {
			seed = prevSeed.Cells()
		}
		for i := range sh.shards {
			s := &sh.shards[i]
			owned := s.cs.Owned()
			if len(s.prevPrev) < owned {
				s.prevPrev = make([]color.Color, owned)
			}
			copy(s.prevPrev, seed[s.cs.Lo:s.cs.Hi])
		}
	}
}

// Step applies one synchronous round across all shards and returns the
// number of vertices that changed color.  Each shard's interior is stepped
// by one task on the shared stripe pool; after the barrier the submitter
// performs the halo exchange (ghost cells copied from their owners' fresh
// interiors) and swaps every shard's buffers.
func (sh *Sharded) Step() int {
	tasks := sh.tasks
	for i := range tasks {
		t := &tasks[i]
		t.run = runShardTask
		t.wg = &sh.wg
		t.shd = sh
		t.lo = i
	}
	runStriped(tasks, &sh.wg)
	changed := 0
	for i := range sh.shards {
		changed += sh.shards[i].changed
	}
	for i := range sh.shards {
		s := &sh.shards[i]
		owned := s.cs.Owned()
		local := s.cs.HaloLocal
		for j, o := range s.cs.HaloOwner {
			s.next[owned+j] = sh.shards[o].next[local[j]]
		}
	}
	for i := range sh.shards {
		s := &sh.shards[i]
		s.cur, s.next = s.next, s.cur
	}
	sh.rounds++
	return changed
}

// stepShard is the worker-side leaf: step shard i's interior from its
// local cur into its local next through the engine's inner loops, then the
// per-shard slice of the target trace and the period-2 comparison, all of
// it touching only shard-local memory (plus the disjoint FirstReached
// range [Lo, Hi)).
func (sh *Sharded) stepShard(i int) {
	s := &sh.shards[i]
	owned := s.cs.Owned()
	e := sh.e
	if sh.deg4 {
		s.changed = e.stepRange4On(s.cs.Adj, s.cur, s.next, 0, owned)
	} else {
		s.changed = e.stepRangeGenericOn(s.cs.Adj, s.cs.Off, s.cur, s.next, 0, owned, s.scratch)
	}
	if fr := sh.firstReached; fr != nil {
		target, round, lo := sh.target, sh.round, s.cs.Lo
		for v := 0; v < owned; v++ {
			got, had := s.next[v] == target, s.cur[v] == target
			if had && !got {
				s.monoViol = true
			}
			if got && fr[lo+v] < 0 {
				fr[lo+v] = round
			}
		}
	}
	if sh.trackCycles {
		pp := s.prevPrev
		eq := true
		for v := 0; v < owned; v++ {
			if s.next[v] != pp[v] {
				eq = false
				break
			}
		}
		s.cycleFlag = eq
		copy(pp, s.cur[:owned])
	}
}

// Config returns the global configuration after the last step, gathered
// lazily from the shard interiors (the gather is cached per round, so runs
// that never look at the scalar view never pay it).  The returned coloring
// is owned by the stepper and valid until the next Step or Reset.
func (sh *Sharded) Config() *color.Coloring {
	if sh.cfgRound != sh.rounds {
		cells := sh.cfg.Cells()
		for i := range sh.shards {
			s := &sh.shards[i]
			copy(cells[s.cs.Lo:s.cs.Hi], s.cur[:s.cs.Owned()])
		}
		sh.cfgRound = sh.rounds
	}
	return sh.cfg
}

// shardedDriver adapts a Sharded stepper to the engine's single round loop
// (runDriver), aggregating the per-shard mono/cycle/target verdicts into
// the global stop conditions.
type shardedDriver struct {
	sh       *Sharded
	stepped  bool
	seedPrev *color.Coloring
}

// newShardedDriver builds the sharded tier over the pooled state, seeded
// fresh from the initial coloring or from a checkpoint (whose Config is
// already the initial argument; its Prev seeds the period-2 trace).
func (e *Engine) newShardedDriver(st *runState, initial *color.Coloring, opt Options, workers int, rs *Resume) *shardedDriver {
	sh := st.sharded(e, workers)
	var prevSeed *color.Coloring
	if rs != nil {
		prevSeed = rs.Prev
	}
	sh.reset(initial, opt.DetectCycles, opt.Target, prevSeed)
	d := &shardedDriver{sh: sh}
	if rs != nil && rs.Prev != nil {
		d.seedPrev = rs.Prev
	}
	return d
}

func (d *shardedDriver) stepRound(round int, res *Result, opt Options) int {
	sh := d.sh
	sh.round = round
	sh.firstReached = res.FirstReached
	changed := sh.Step()
	for i := range sh.shards {
		if sh.shards[i].monoViol {
			res.MonotoneTarget = false
			break
		}
	}
	d.stepped = true
	return changed
}

func (d *shardedDriver) config() *color.Coloring { return d.sh.Config() }

func (d *shardedDriver) prevConfig() *color.Coloring {
	if !d.stepped {
		if d.seedPrev != nil {
			return d.seedPrev.Clone()
		}
		return nil
	}
	// After the swap in Step, every shard's next interior holds the previous
	// round's configuration.
	sh := d.sh
	prev := color.NewColoring(sh.e.sub.Dims(), color.None)
	cells := prev.Cells()
	for i := range sh.shards {
		s := &sh.shards[i]
		copy(cells[s.cs.Lo:s.cs.Hi], s.next[:s.cs.Owned()])
	}
	return prev
}

func (d *shardedDriver) mono() bool {
	_, ok := d.sh.Config().IsMonochromatic()
	return ok
}

func (d *shardedDriver) cycle() bool {
	sh := d.sh
	if !sh.trackCycles {
		return false
	}
	for i := range sh.shards {
		if !sh.shards[i].cycleFlag {
			return false
		}
	}
	return true
}

func (d *shardedDriver) downshift(int, int, int, *Result) runDriver { return nil }
