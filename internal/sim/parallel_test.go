package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
)

func randomColoring(seed uint64, m, n, k int) *color.Coloring {
	src := rng.New(seed)
	p := color.MustPalette(k)
	return color.RandomColoring(grid.MustDims(m, n), p, func() int { return src.Intn(p.K) })
}

// The parallel stepper must be bit-identical to the sequential stepper on a
// single round, for every topology.
func TestParallelStepMatchesSequential(t *testing.T) {
	for _, kind := range grid.Kinds() {
		topo := grid.MustNew(kind, 17, 23)
		eng := NewEngine(topo, rules.SMP{})
		cur := randomColoring(42, 17, 23, 5)
		seqNext := color.NewColoring(topo.Dims(), color.None)
		parNext := color.NewColoring(topo.Dims(), color.None)
		seqChanged := eng.stepRange(cur.Cells(), seqNext.Cells(), 0, cur.N(), nil)
		for _, workers := range []int{2, 3, 4, 8, 64, 1000} {
			parChanged := eng.StepParallel(cur, parNext, workers)
			if parChanged != seqChanged {
				t.Fatalf("%v workers=%d: changed %d vs %d", kind, workers, parChanged, seqChanged)
			}
			if !seqNext.Equal(parNext) {
				t.Fatalf("%v workers=%d: parallel result differs from sequential", kind, workers)
			}
		}
	}
}

// Full runs must agree between the sequential and parallel engines.
func TestParallelRunMatchesSequential(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 20, 20)
	eng := NewEngine(topo, rules.SMP{})
	init := randomColoring(7, 20, 20, 4)
	seq := eng.Run(init, Options{Target: 1, StopWhenMonochromatic: true, MaxRounds: 300})
	par := eng.Run(init, Options{Target: 1, StopWhenMonochromatic: true, MaxRounds: 300, Parallel: true, Workers: 4})
	if !seq.Final.Equal(par.Final) {
		t.Fatal("parallel run reached a different final configuration")
	}
	if seq.Rounds != par.Rounds {
		t.Fatalf("rounds %d vs %d", seq.Rounds, par.Rounds)
	}
	for v := range seq.FirstReached {
		if seq.FirstReached[v] != par.FirstReached[v] {
			t.Fatalf("FirstReached[%d] differs: %d vs %d", v, seq.FirstReached[v], par.FirstReached[v])
		}
	}
}

func TestParallelRunCrossDynamo(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 9, 9)
	eng := NewEngine(topo, rules.SMP{})
	res := eng.Run(crossColoring(9, 9, 1), Options{
		Target: 1, StopWhenMonochromatic: true, Parallel: true, Workers: 3,
	})
	if !res.Monochromatic || res.FinalColor != 1 {
		t.Fatal("parallel cross dynamo failed")
	}
	// Theorem 7 for m=n=9: 2*max(ceil(8/2)-1, ceil(8/2)-1)+1 = 7.
	if res.Rounds != 7 {
		t.Errorf("rounds = %d, want 7", res.Rounds)
	}
}

func TestParallelWithMoreWorkersThanVertices(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 3, 3)
	eng := NewEngine(topo, rules.SMP{})
	cur := randomColoring(1, 3, 3, 3)
	next := color.NewColoring(topo.Dims(), color.None)
	// Must not panic or deadlock.
	eng.StepParallel(cur, next, 64)
	seqNext := color.NewColoring(topo.Dims(), color.None)
	eng.stepRange(cur.Cells(), seqNext.Cells(), 0, cur.N(), nil)
	if !next.Equal(seqNext) {
		t.Error("oversubscribed parallel step differs from sequential")
	}
}

// TestParallelStepDoesNotAllocate pins the persistent-pool rewrite: after
// the first step has grown the pooled stripe buffer and started the shared
// workers, steady-state parallel stepping must perform zero heap
// allocations — no per-step goroutines, closures or result slices.
func TestParallelStepDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates on channel/WaitGroup operations")
	}
	topo := grid.MustNew(grid.KindToroidalMesh, 32, 32)
	eng := NewEngine(topo, rules.SMP{})
	cur := randomColoring(11, 32, 32, 5)
	next := color.NewColoring(topo.Dims(), color.None)
	// Warm up: start the pool, grow the stripe buffer, fill the state pool.
	eng.StepParallel(cur, next, 4)
	allocs := testing.AllocsPerRun(100, func() {
		eng.StepParallel(cur, next, 4)
		cur, next = next, cur
	})
	if allocs != 0 {
		t.Fatalf("parallel step allocates %.1f objects per op, want 0", allocs)
	}
}

func TestParallelPropertyEquivalence(t *testing.T) {
	f := func(seed uint64, kindSeed, sizeSeed, workerSeed uint8) bool {
		kind := grid.Kinds()[int(kindSeed)%3]
		m := 4 + int(sizeSeed)%12
		n := 4 + int(sizeSeed/2)%12
		workers := 2 + int(workerSeed)%6
		topo := grid.MustNew(kind, m, n)
		eng := NewEngine(topo, rules.SMP{})
		init := randomColoring(seed, m, n, 4)
		seq := eng.Run(init, Options{StopWhenMonochromatic: true, MaxRounds: 100})
		par := eng.Run(init, Options{StopWhenMonochromatic: true, MaxRounds: 100, Parallel: true, Workers: workers})
		return seq.Final.Equal(par.Final) && seq.Rounds == par.Rounds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
