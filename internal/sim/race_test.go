//go:build race

package sim

// raceEnabled reports that the race detector is instrumenting this build;
// allocation-count pins on synchronizing code are skipped because the
// detector itself allocates on channel and WaitGroup operations.
const raceEnabled = true
