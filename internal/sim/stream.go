package sim

import (
	"context"
	"fmt"
	"iter"
	"math/bits"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
)

// Step is one round of a streaming run, yielded by Engine.Stream (and by the
// public dynmon Steps iterator built over it).  The struct is reused across
// rounds and Config returns a live engine-owned buffer, so a Step and its
// configuration are valid only until the next iteration of the stream;
// consumers that need a durable snapshot call Checkpoint (or Clone the
// configuration themselves).
type Step struct {
	// Round is the 1-based round this step completed.
	Round int
	// Changed is the number of vertices that changed color this round.
	Changed int
	// Done reports that the run stopped on its own this round (fixed point,
	// cycle, monochromatic configuration or round budget): this is the final
	// step of the stream and Result carries the completed result.
	Done bool
	// Result is the completed Result on the Done step, and the partial
	// result on the step that accompanies a context-cancellation error.  It
	// is nil on every other step.
	Result *Result

	drv runDriver
	res *Result
}

// Config returns the configuration at the end of this step's round.  It is a
// live buffer owned by the engine — valid until the next step, and it must
// not be mutated.  On bitplane-tier streams the scalar view is unpacked
// lazily, so steps whose consumers never look at the configuration stay on
// the word-parallel fast path.
func (s *Step) Config() *color.Coloring { return s.drv.config() }

// Checkpoint snapshots the resumable state of the run after this step: the
// configuration, the round counter, the previous round's configuration (the
// stop-detector state behind period-2 cycle detection) and the accumulated
// per-run trace.  The snapshot is deep — it shares no memory with the engine
// — and feeding it to Engine.ResumeContext with the same Options continues
// the run bit-identically to one that was never interrupted.
func (s *Step) Checkpoint() *Resume {
	cp := &Resume{
		Round:          s.Round,
		Config:         s.drv.config().Clone(),
		Prev:           s.drv.prevConfig(),
		MonotoneTarget: s.res.MonotoneTarget,
	}
	cp.ChangesPerRound = append([]int(nil), s.res.ChangesPerRound...)
	if s.res.FirstReached != nil {
		cp.FirstReached = append([]int(nil), s.res.FirstReached...)
	}
	return cp
}

// Resume is the engine-level resumable state of an interrupted run: the
// plain-struct form behind the public dynmon Checkpoint.  Build one with
// Step.Checkpoint or Result.ResumeState rather than by hand — bit-identical
// continuation needs every field, including the accumulated trace.
type Resume struct {
	// Round is the last completed round (0 resumes from the start).
	Round int
	// Config is the configuration at the end of Round.
	Config *color.Coloring
	// Prev is the configuration at the end of Round-1.  It seeds the
	// period-2 cycle detector and the dirty frontier; when nil, the first
	// resumed round re-evaluates every vertex and a cycle spanning the
	// checkpoint boundary goes undetected.
	Prev *color.Coloring
	// ChangesPerRound, FirstReached and MonotoneTarget carry the per-run
	// trace accumulated up to Round, so the resumed Result equals an
	// uninterrupted one.
	ChangesPerRound []int
	FirstReached    []int
	MonotoneTarget  bool
}

// runDriver is one stepping tier viewed through the single round loop of
// drive: it advances rounds, exposes the post-round configuration and the
// stop-detector verdicts, and snapshots resumable state.  The three
// implementations (sweep, frontier, bitplane) carry exactly the per-tier
// bookkeeping their former standalone run loops carried.
type runDriver interface {
	// stepRound applies round `round`, updating the result's target trace,
	// and returns the number of vertices that changed color.
	stepRound(round int, res *Result, opt Options) int
	// config returns the live post-round configuration.
	config() *color.Coloring
	// prevConfig returns a fresh clone of the previous round's
	// configuration, or nil when no round has been stepped and no seed is
	// known.
	prevConfig() *color.Coloring
	// mono reports whether the current configuration is monochromatic; it is
	// only called when Options.StopWhenMonochromatic is set.
	mono() bool
	// cycle reports whether the last round exactly undid the one before it;
	// it is only called when Options.DetectCycles is set.
	cycle() bool
	// downshift optionally hands the remaining rounds to a cheaper tier
	// (bitplane → frontier on auto runs); nil keeps the current driver.
	downshift(round, changed, maxRounds int, res *Result) runDriver
}

// drive is the engine's single round loop: every tier, streamed or not,
// fresh or resumed, runs through it, so stop-condition ordering and result
// bookkeeping cannot drift between paths.  It advances drv over rounds
// [from, maxRounds], accumulating into res, and yields one Step per round
// when yield is non-nil (a false yield return is the streaming equivalent of
// cancellation: the loop stops, without the terminal bookkeeping of a run
// that stopped on its own).
func (e *Engine) drive(ctx context.Context, drv runDriver, res *Result, opt Options, from, maxRounds int, fixedPointStops bool, yield func(*Step, error) bool) (*Result, error) {
	st := &Step{drv: drv, res: res}
	emit := func(err error) bool {
		if yield == nil {
			return true
		}
		return yield(st, err)
	}
	for round := from; round <= maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			res.prev = drv.prevConfig()
			finishAborted(res, drv.config(), opt)
			*st = Step{Round: res.Rounds, Result: res, drv: drv, res: res}
			emit(err)
			return res, err
		}
		changed := drv.stepRound(round, res, opt)
		res.Rounds = round
		res.ChangesPerRound = append(res.ChangesPerRound, changed)
		if opt.RecordHistory {
			res.History = append(res.History, drv.config().Clone())
		}

		done := false
		// needPrev marks the termination paths whose Result is worth a
		// resume: budget exhaustion, a detected cycle, abort.  A run that
		// stopped on a fixed point or a monochromatic configuration resumes
		// as a no-op without the previous configuration (the pre-stop check
		// in streamRun re-derives the verdict from the trace and the final
		// coloring), so the hot convergence paths — verify sweeps, batch
		// sessions — skip the O(n) snapshot.
		needPrev := true
		switch {
		case changed == 0 && fixedPointStops:
			res.FixedPoint = true
			done, needPrev = true, false
		case opt.StopWhenMonochromatic && drv.mono():
			done, needPrev = true, false
		case opt.DetectCycles && fixedPointStops && drv.cycle():
			res.Cycle = true
			done = true
		case round == maxRounds:
			done = true
		}
		if !done {
			if next := drv.downshift(round, changed, maxRounds, res); next != nil {
				drv = next
			}
		}
		*st = Step{Round: round, Changed: changed, drv: drv, res: res}
		if done {
			if needPrev {
				res.prev = drv.prevConfig()
			}
			finish(res, drv.config(), opt)
			st.Done, st.Result = true, res
			emit(nil)
			return res, nil
		}
		if !emit(nil) {
			return res, nil
		}
	}
	// A resume whose round budget is already exhausted: no rounds to run,
	// finish on the seeded state.
	res.prev = drv.prevConfig()
	finish(res, drv.config(), opt)
	*st = Step{Round: res.Rounds, Done: true, Result: res, drv: drv, res: res}
	emit(nil)
	return res, nil
}

// initTargetTrace seeds the round-0 target bookkeeping shared by every tier.
func initTargetTrace(res *Result, initial *color.Coloring, target color.Color) {
	if target == color.None {
		return
	}
	n := initial.N()
	res.FirstReached = make([]int, n)
	for v := 0; v < n; v++ {
		if initial.At(v) == target {
			res.FirstReached[v] = 0
		} else {
			res.FirstReached[v] = -1
		}
	}
}

// sweepDriver is the full-sweep tier behind drive: the double-buffered loop
// over all n vertices every round, sequentially or striped across workers,
// including the time-varying mode (which is pinned to sweep semantics).
type sweepDriver struct {
	e         *Engine
	st        *runState
	cur, next *color.Coloring
	prevPrev  *color.Coloring
	tv        Availability
	workers   int
	cycleFlag bool
	stepped   bool
	seedPrev  *color.Coloring
}

func (e *Engine) newSweepDriver(st *runState, initial *color.Coloring, opt Options, workers int, rs *Resume) *sweepDriver {
	cur, next := st.buffers(e)
	d := &sweepDriver{e: e, st: st, cur: cur, next: next, tv: opt.TimeVarying, workers: workers}
	d.cur.CopyFrom(initial)
	// The period-2 trace is maintained only when the verdict can ever be
	// consulted: under a non-static availability model cycle detection is
	// inert (see Options.TimeVarying), so paying an O(n) compare-and-copy
	// per round for it would be pure waste.
	if opt.DetectCycles && (opt.TimeVarying == nil || staticAvailability(opt.TimeVarying)) {
		if st.prevPrev == nil {
			st.prevPrev = color.NewColoring(e.sub.Dims(), color.None)
		}
		d.prevPrev = st.prevPrev
		if rs != nil && rs.Prev != nil {
			d.prevPrev.CopyFrom(rs.Prev)
		} else {
			d.prevPrev.CopyFrom(initial)
		}
	}
	if rs != nil && rs.Prev != nil {
		d.seedPrev = rs.Prev
	}
	return d
}

func (d *sweepDriver) stepRound(round int, res *Result, opt Options) int {
	e, st := d.e, d.st
	cur, next := d.cur, d.next
	var changed int
	switch {
	case d.tv != nil && d.workers > 1:
		changed = e.stepParallelTV(round, d.tv, cur.Cells(), next.Cells(), d.workers, st)
	case d.tv != nil:
		changed = e.stepRangeTV(round, d.tv, cur.Cells(), next.Cells(), 0, cur.N(), st.scratch)
	case d.workers > 1:
		changed = e.stepParallel(cur.Cells(), next.Cells(), d.workers, st)
	default:
		changed = e.stepRange(cur.Cells(), next.Cells(), 0, cur.N(), st.scratch)
	}
	if opt.Target != color.None {
		for v, n := 0, cur.N(); v < n; v++ {
			got, had := next.At(v) == opt.Target, cur.At(v) == opt.Target
			if had && !got {
				res.MonotoneTarget = false
			}
			if got && res.FirstReached[v] < 0 {
				res.FirstReached[v] = round
			}
		}
	}
	if d.prevPrev != nil {
		d.cycleFlag = next.Equal(d.prevPrev)
		d.prevPrev.CopyFrom(cur)
	}
	d.cur, d.next = next, cur
	d.stepped = true
	return changed
}

func (d *sweepDriver) config() *color.Coloring { return d.cur }

func (d *sweepDriver) prevConfig() *color.Coloring {
	if !d.stepped {
		if d.seedPrev != nil {
			return d.seedPrev.Clone()
		}
		return nil
	}
	// After the swap in stepRound, next holds the previous configuration.
	return d.next.Clone()
}

func (d *sweepDriver) mono() bool {
	_, ok := d.cur.IsMonochromatic()
	return ok
}

func (d *sweepDriver) cycle() bool { return d.prevPrev != nil && d.cycleFlag }

func (d *sweepDriver) downshift(int, int, int, *Result) runDriver { return nil }

// frontierDriver is the dirty-frontier tier behind drive, with all per-round
// bookkeeping done on the change journal instead of the full lattice.
type frontierDriver struct {
	f        *Frontier
	stepped  bool
	seedPrev *color.Coloring
}

func (d *frontierDriver) stepRound(round int, res *Result, opt Options) int {
	f := d.f
	changed := f.Step()
	if opt.Target != color.None {
		for i, v := range f.chV {
			old, nc := f.chOld[i], f.chNew[i]
			if old == opt.Target && nc != opt.Target {
				res.MonotoneTarget = false
			}
			if nc == opt.Target && res.FirstReached[v] < 0 {
				res.FirstReached[v] = round
			}
		}
	}
	d.stepped = true
	return changed
}

func (d *frontierDriver) config() *color.Coloring { return d.f.cfg }

func (d *frontierDriver) prevConfig() *color.Coloring {
	if !d.stepped {
		if d.seedPrev != nil {
			return d.seedPrev.Clone()
		}
		return nil
	}
	// Undo the last round's journal on a copy of the configuration.
	prev := d.f.cfg.Clone()
	for i, v := range d.f.chV {
		prev.Set(int(v), d.f.chOld[i])
	}
	return prev
}

func (d *frontierDriver) mono() bool  { return d.f.Monochromatic() }
func (d *frontierDriver) cycle() bool { return d.f.Cycle() }

func (d *frontierDriver) downshift(int, int, int, *Result) runDriver { return nil }

// bitplaneDriver is the word-parallel bit-sliced tier behind drive,
// including the auto-tier mid-run handoff to the frontier once the change
// rate gets low.
type bitplaneDriver struct {
	e           *Engine
	st          *runState
	bp          *Bitplane
	workers     int
	forced      bool
	trackTarget bool
	lowChurn    int
}

func (e *Engine) newBitplaneDriver(st *runState, initial *color.Coloring, opt Options, workers int, forced bool, k int, plan *grid.ShiftPlan, kern rules.BitKernel) (*bitplaneDriver, error) {
	if st.bp == nil {
		st.bp = e.newBitplaneBuffers()
	}
	bp := st.bp
	if err := bp.resetWith(initial, k, plan, kern); err != nil {
		return nil, err
	}
	bp.DetectCycles(opt.DetectCycles)
	d := &bitplaneDriver{e: e, st: st, bp: bp, workers: workers, forced: forced}
	if opt.Target != color.None {
		d.trackTarget = true
		bp.targetMask(bp.tgtPrev, opt.Target)
		copy(bp.tgtEver, bp.tgtPrev)
	}
	return d, nil
}

func (d *bitplaneDriver) stepRound(round int, res *Result, opt Options) int {
	bp := d.bp
	changed := bp.stepStriped(d.st, d.workers)
	if d.trackTarget {
		bp.targetMask(bp.tgtCur, opt.Target)
		for w := 0; w < bp.words; w++ {
			if bp.tgtPrev[w]&^bp.tgtCur[w] != 0 {
				res.MonotoneTarget = false
			}
			newly := bp.tgtCur[w] &^ bp.tgtEver[w]
			for newly != 0 {
				b := bits.TrailingZeros64(newly)
				newly &= newly - 1
				res.FirstReached[w<<6+b] = round
			}
			bp.tgtEver[w] |= bp.tgtCur[w]
		}
		bp.tgtPrev, bp.tgtCur = bp.tgtCur, bp.tgtPrev
	}
	return changed
}

func (d *bitplaneDriver) config() *color.Coloring { return d.bp.Config() }

func (d *bitplaneDriver) prevConfig() *color.Coloring {
	bp := d.bp
	if bp.round == 0 {
		return nil
	}
	prev := bp.Config().Clone()
	bp.lastChanges(func(v int32, old color.Color) {
		prev.Set(int(v), old)
	})
	return prev
}

func (d *bitplaneDriver) mono() bool  { return d.bp.Monochromatic() }
func (d *bitplaneDriver) cycle() bool { return d.bp.Cycle() }

// downshift hands the run to the dirty-frontier stepper once the change rate
// stays low (sequential auto-tier runs only — the frontier is
// single-goroutine, and a forced tier is a contract).  The handoff is exact:
// the hybrid run produces the same Result, round for round, as either pure
// stepper.
func (d *bitplaneDriver) downshift(round, changed, maxRounds int, res *Result) runDriver {
	if d.forced || d.workers != 1 || round >= maxRounds {
		return nil
	}
	if changed*downshiftFactor < d.bp.nbits {
		d.lowChurn++
	} else {
		d.lowChurn = 0
	}
	if d.lowChurn < downshiftRounds {
		return nil
	}
	f := d.st.frontier(d.e)
	f.seedFromBitplane(d.bp)
	res.Downshift = round + 1
	// Hand over the previous round's configuration too, so a checkpoint
	// taken at exactly the handoff round keeps its cycle-detector seed.
	return &frontierDriver{f: f, seedPrev: d.prevConfig()}
}

// Stream returns the run as a pull-based sequence of per-round steps: the
// streaming form of RunContext, bit-identical to it (both consume the same
// single round loop).  The iterator yields one Step after every synchronous
// round; the terminal step has Done set and carries the completed Result.
// Breaking out of the loop early is the streaming equivalent of
// cancellation: the run stops at that round boundary and its pooled buffers
// are returned to the engine.  When ctx is canceled the stream yields a
// final (partial-result) step together with ctx.Err().
//
// Errors that would make RunContext return (nil, error) — an ineligible
// forced kernel, a time-varying run forcing an incremental kernel — are
// yielded once as (nil, error).
//
// Observers in opt are honored exactly as in RunContext, through the
// ObserveStream adapter.
func (e *Engine) Stream(ctx context.Context, initial *color.Coloring, opt Options) iter.Seq2[*Step, error] {
	return ObserveStream(e.streamRun(ctx, initial, nil, opt), opt.Observers)
}

// StreamFrom is Stream continuing from a checkpoint instead of an initial
// coloring: rounds resume at rs.Round+1 under the same Options the original
// run used, bit-identically to a run that was never interrupted.  The
// bitplane tier cannot be resumed into (its journal state is not captured by
// Resume): forcing KernelBitplane returns an error and automatic selection
// picks a scalar tier — which, by the engine's tier contract, changes
// nothing about the result.
func (e *Engine) StreamFrom(ctx context.Context, rs *Resume, opt Options) iter.Seq2[*Step, error] {
	return ObserveStream(e.streamRun(ctx, nil, rs, opt), opt.Observers)
}

// ResumeContext is RunContext continuing from a checkpoint: it drains
// StreamFrom and returns the completed Result.
func (e *Engine) ResumeContext(ctx context.Context, rs *Resume, opt Options) (*Result, error) {
	return drainStream(e.StreamFrom(ctx, rs, opt))
}

// ObserveStream attaches observers to a step stream: OnRound after every
// yielded round and OnFinish on the terminal step.  It is the one adapter
// through which all Observer plumbing now runs — RunContext is a drain of
// ObserveStream — so observed and unobserved runs cannot drift.  Aborted
// steps (those yielded with an error) notify nobody, preserving the Observer
// contract that OnFinish is only invoked when the run stops on its own.
func ObserveStream(seq iter.Seq2[*Step, error], observers []Observer) iter.Seq2[*Step, error] {
	if len(observers) == 0 {
		return seq
	}
	return func(yield func(*Step, error) bool) {
		for st, err := range seq {
			if err == nil && st != nil {
				for _, o := range observers {
					o.OnRound(st.Round, st.Config())
				}
				if st.Done {
					for _, o := range observers {
						o.OnFinish(st.Result)
					}
				}
			}
			if !yield(st, err) {
				return
			}
		}
	}
}

// drainStream runs a step stream to completion and returns its final (or,
// under cancellation, partial) Result.
func drainStream(seq iter.Seq2[*Step, error]) (*Result, error) {
	var res *Result
	for st, err := range seq {
		if st != nil && st.Result != nil {
			res = st.Result
		}
		if err != nil {
			return res, err
		}
		if st != nil && st.Done {
			return res, nil
		}
	}
	return res, nil
}

// streamRun is the generator behind Stream, StreamFrom, RunContext and
// ResumeContext: kernel selection (identical for all four — the automatic
// tier choice depends only on Options), driver construction, then the drive
// loop.  Exactly one of initial and rs is non-nil.
func (e *Engine) streamRun(ctx context.Context, initial *color.Coloring, rs *Resume, opt Options) iter.Seq2[*Step, error] {
	return func(yield func(*Step, error) bool) {
		d := e.sub.Dims()
		if rs != nil {
			if err := rs.validate(d); err != nil {
				yield(nil, err)
				return
			}
			initial = rs.Config
		} else if initial.Dims() != d {
			panic(fmt.Sprintf("sim: Run dimension mismatch %v vs %v", initial.Dims(), d))
		}
		maxRounds := opt.MaxRounds
		if maxRounds <= 0 {
			maxRounds = e.sub.DefaultMaxRounds()
		}
		workers := opt.EffectiveWorkers(d.N())
		tv := opt.TimeVarying
		fixedPointStops := tv == nil || staticAvailability(tv)

		sched, noise, err := opt.stochasticParams()
		if err != nil {
			yield(nil, err)
			return
		}
		stoch := sched != nil
		if stoch {
			if tv != nil {
				yield(nil, fmt.Errorf("%w: stochastic schedules and noise cannot be combined with time-varying availability", ErrStochasticSweepOnly))
				return
			}
			switch opt.Kernel {
			case KernelBitplane, KernelFrontier:
				yield(nil, fmt.Errorf("%w: kernel %v re-evaluates only vertices whose neighborhood changed color, but a masked or faulty vertex must be re-evaluated regardless", ErrStochasticSweepOnly, opt.Kernel))
				return
			case KernelSharded:
				yield(nil, fmt.Errorf("%w: the sharded tier steps shard-local vertex ids, but schedule masks and fault draws are keyed by global ids", ErrStochasticSweepOnly))
				return
			case KernelParallel:
				if sched.inPlace() {
					yield(nil, fmt.Errorf("%w: the %v schedule commits updates within a sweep and cannot be striped", ErrStochasticSweepOnly, sched.Kind))
					return
				}
			}
			// A zero-change round proves a fixed point only when every vertex
			// was guaranteed a rule application that round: always true for
			// the sequential kinds, true for the masked kinds only when the
			// mask degenerates to everyone, and never true under noise (a
			// fault can reignite the dynamics at any round).
			switch {
			case noise != nil:
				fixedPointStops = false
			case sched.Kind == ScheduleUniformAsync:
				fixedPointStops = sched.P >= 1
			case sched.Kind == ScheduleVertexClock:
				fixedPointStops = sched.Period == 1
			}
		}

		switch opt.Kernel {
		case KernelBitplane, KernelFrontier:
			if tv != nil {
				yield(nil, fmt.Errorf("%w: kernel %v re-evaluates only vertices whose neighborhood changed color, but link churn can change a vertex's input without any color changing", ErrTimeVaryingSweepOnly, opt.Kernel))
				return
			}
		case KernelSharded:
			if tv != nil {
				yield(nil, fmt.Errorf("%w: the sharded tier steps shard-local neighbor ids, but availability models are keyed by global vertex ids", ErrTimeVaryingSweepOnly))
				return
			}
		}
		if rs != nil && opt.Kernel == KernelBitplane {
			yield(nil, fmt.Errorf("%w: a checkpoint carries scalar state only; resumed runs use the scalar tiers", ErrBitplaneIneligible))
			return
		}

		st := e.getState(opt.FreshBuffers)
		defer e.putState(st, opt.FreshBuffers)

		var (
			drv    runDriver
			kernel Kernel
		)
		switch {
		case !stoch:
			// Deterministic synchronous runs: the tier switch below.
		case sched.inPlace() || opt.Kernel == KernelSweep:
			workers = 1
			drv, kernel = e.newStochasticDriver(st, initial, opt, sched, noise, workers, rs), KernelSweep
		case opt.Kernel == KernelParallel:
			if workers <= 1 {
				par := opt
				par.Parallel = true
				workers = par.EffectiveWorkers(d.N())
			}
			drv, kernel = e.newStochasticDriver(st, initial, opt, sched, noise, workers, rs), KernelParallel
		default: // KernelAuto, masked kinds
			kernel = KernelSweep
			if workers > 1 {
				kernel = KernelParallel
			}
			drv = e.newStochasticDriver(st, initial, opt, sched, noise, workers, rs)
		}
		if drv != nil {
			res := e.initRunResult(drv, initial, rs, opt, workers, kernel, &maxRounds, fixedPointStops)
			from := 1
			if rs != nil {
				from = rs.Round + 1
			}
			e.drive(ctx, drv, res, opt, from, maxRounds, fixedPointStops, yield)
			return
		}
		switch opt.Kernel {
		case KernelBitplane:
			k, plan, kern, err := e.bitplaneCheck(initial)
			if err != nil {
				yield(nil, err)
				return
			}
			bd, err := e.newBitplaneDriver(st, initial, opt, workers, true, k, plan, kern)
			if err != nil {
				yield(nil, err)
				return
			}
			drv, kernel = bd, KernelBitplane
		case KernelFrontier:
			drv, kernel = e.newFrontierDriver(st, initial, rs), KernelFrontier
			workers = 1
		case KernelSweep:
			workers = 1
			drv, kernel = e.newSweepDriver(st, initial, opt, workers, rs), KernelSweep
		case KernelParallel:
			if workers <= 1 {
				par := opt
				par.Parallel = true
				workers = par.EffectiveWorkers(d.N())
			}
			drv, kernel = e.newSweepDriver(st, initial, opt, workers, rs), KernelParallel
		case KernelSharded:
			if workers <= 1 {
				par := opt
				par.Parallel = true
				workers = par.EffectiveWorkers(d.N())
			}
			sd := e.newShardedDriver(st, initial, opt, workers, rs)
			drv, kernel, workers = sd, KernelSharded, sd.sh.Shards()
		case KernelAuto:
			// Automatic selection.  Time-varying runs are pinned to the
			// full-sweep steppers (see Options.TimeVarying).  Otherwise the
			// bitplane tier wins whenever it applies and the run does not
			// need a scalar view of every round (observers and history would
			// force an unpack per round, erasing its advantage); FullSweep
			// keeps its contract as the oracle stepper.  Resumed runs skip
			// the bitplane tier: a checkpoint carries scalar state only.
			if tv == nil {
				if rs == nil && !opt.FullSweep && !opt.RecordHistory && len(opt.Observers) == 0 {
					if k, plan, kern, err := e.bitplaneCheck(initial); err == nil {
						bd, err := e.newBitplaneDriver(st, initial, opt, workers, false, k, plan, kern)
						if err != nil {
							yield(nil, err)
							return
						}
						drv, kernel = bd, KernelBitplane
					}
				}
				if drv == nil && workers == 1 && !opt.FullSweep {
					drv, kernel = e.newFrontierDriver(st, initial, rs), KernelFrontier
				}
				// Parallel runs on large substrates take the sharded tier:
				// above the threshold the striped sweep is bandwidth-bound on
				// its shared buffers and extra workers stop helping, while
				// shard-local buffers restore cache locality.  FullSweep keeps
				// its oracle contract (the striped sweep, as before).
				if drv == nil && workers > 1 && !opt.FullSweep && d.N() >= shardedAutoThreshold {
					sd := e.newShardedDriver(st, initial, opt, workers, rs)
					drv, kernel, workers = sd, KernelSharded, sd.sh.Shards()
				}
			}
			if drv == nil {
				kernel = KernelSweep
				if workers > 1 {
					kernel = KernelParallel
				}
				drv = e.newSweepDriver(st, initial, opt, workers, rs)
			}
		default:
			yield(nil, fmt.Errorf("sim: unknown kernel %v", opt.Kernel))
			return
		}
		if kernel == KernelFrontier {
			workers = 1
		}

		res := e.initRunResult(drv, initial, rs, opt, workers, kernel, &maxRounds, fixedPointStops)
		from := 1
		if rs != nil {
			from = rs.Round + 1
		}
		e.drive(ctx, drv, res, opt, from, maxRounds, fixedPointStops, yield)
	}
}

// initRunResult builds the Result shell of a run — effective workers and
// kernel, the (possibly checkpoint-seeded) target trace — and applies the
// terminal-checkpoint no-op rule: a checkpoint whose state already satisfies
// a stop condition resumes without stepping past the round its run stopped
// at, by clamping maxRounds.  Genuine mid-run checkpoints never trip this:
// their run would have stopped there instead of continuing.  (A run that
// stopped on a detected cycle is the exception — the oscillation is not
// recognizable from one configuration, so resuming it continues the
// oscillation and re-detects the cycle within two rounds.)
func (e *Engine) initRunResult(drv runDriver, initial *color.Coloring, rs *Resume, opt Options, workers int, kernel Kernel, maxRounds *int, fixedPointStops bool) *Result {
	res := &Result{MonotoneTarget: true, Workers: workers, Kernel: kernel}
	if rs == nil {
		initTargetTrace(res, initial, opt.Target)
		return res
	}
	res.Rounds = rs.Round
	res.ChangesPerRound = append([]int(nil), rs.ChangesPerRound...)
	if opt.Target != color.None {
		if rs.FirstReached != nil {
			res.FirstReached = append([]int(nil), rs.FirstReached...)
			res.MonotoneTarget = rs.MonotoneTarget
		} else {
			initTargetTrace(res, initial, opt.Target)
		}
	}
	if rs.Round > 0 {
		switch {
		case fixedPointStops && rs.ChangesPerRound[rs.Round-1] == 0:
			res.FixedPoint = true
			*maxRounds = rs.Round
		case opt.StopWhenMonochromatic && drv.mono():
			*maxRounds = rs.Round
		}
	}
	return res
}

// newFrontierDriver builds the frontier tier over the pooled state, seeded
// either fresh from the initial coloring or from a checkpoint.
func (e *Engine) newFrontierDriver(st *runState, initial *color.Coloring, rs *Resume) *frontierDriver {
	f := st.frontier(e)
	if rs == nil || rs.Round == 0 {
		f.Reset(initial)
		return &frontierDriver{f: f}
	}
	f.seedFromCheckpoint(rs.Config, rs.Prev, rs.Round)
	return &frontierDriver{f: f, seedPrev: rs.Prev}
}

// validate checks a Resume against the engine's substrate.
func (rs *Resume) validate(d grid.Dims) error {
	if rs == nil || rs.Config == nil {
		return fmt.Errorf("sim: Resume without a configuration")
	}
	if rs.Config.Dims() != d {
		return fmt.Errorf("sim: Resume configuration dimensions %v do not match substrate %v", rs.Config.Dims(), d)
	}
	if rs.Prev != nil && rs.Prev.Dims() != d {
		return fmt.Errorf("sim: Resume previous-configuration dimensions %v do not match substrate %v", rs.Prev.Dims(), d)
	}
	if rs.Round < 0 {
		return fmt.Errorf("sim: Resume with negative round %d", rs.Round)
	}
	if rs.Round != len(rs.ChangesPerRound) {
		return fmt.Errorf("sim: Resume round %d does not match its %d-round change trace", rs.Round, len(rs.ChangesPerRound))
	}
	if rs.FirstReached != nil && len(rs.FirstReached) != rs.Config.N() {
		return fmt.Errorf("sim: Resume first-reached trace has %d entries, want %d", len(rs.FirstReached), rs.Config.N())
	}
	return nil
}

// ResumeState returns the resumable state at the end of the run — the
// "emit a checkpoint from a Result" primitive.  It is a deep snapshot; ok is
// false when the result carries no final configuration (a zero Result).
// Resuming a finished run is a no-op continuation (its stop condition holds
// immediately unless the options changed); the intended use is the partial
// Result of a context-canceled run.
func (r *Result) ResumeState() (*Resume, bool) {
	if r == nil || r.Final == nil {
		return nil, false
	}
	rs := &Resume{
		Round:          r.Rounds,
		Config:         r.Final.Clone(),
		MonotoneTarget: r.MonotoneTarget,
	}
	if r.prev != nil {
		rs.Prev = r.prev.Clone()
	}
	rs.ChangesPerRound = append([]int(nil), r.ChangesPerRound...)
	if r.FirstReached != nil {
		rs.FirstReached = append([]int(nil), r.FirstReached...)
	}
	return rs, true
}
