package sim

import (
	"fmt"
	"testing"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
)

// BenchmarkBitplaneSlabWords is the cache-blocking experiment behind the
// bitplaneSlabWords constant: one bit-sliced SMP round on the two-color
// torus, stepped in fused shift+kernel blocks of varying size, from
// L1-sized slabs up to full planes.  Two regimes matter:
//
//   - 256×256 (1 KB planes): the whole working set fits L2 whatever the
//     block size, so all variants should be within noise of each other —
//     blocking must not cost anything where it cannot help.
//   - 1024×1024 (128 KB planes, ~1.5 MB of plane streams per round): full
//     plane passes stream every Nbr word to memory and back, riding the
//     bandwidth ceiling; L2-sized slabs keep the shifted words resident
//     between producer and consumer.
//
// The README performance note records the measured ceiling; rerun this
// benchmark before changing bitplaneSlabWords.
func BenchmarkBitplaneSlabWords(b *testing.B) {
	for _, size := range []int{256, 1024} {
		topo := grid.MustNew(grid.KindToroidalMesh, size, size)
		eng := NewEngine(topo, rules.SMP{})
		src := rng.New(1)
		initial := color.RandomColoring(topo.Dims(), color.MustPalette(2), func() int { return src.Intn(2) })
		bp, err := eng.NewBitplane(initial)
		if err != nil {
			b.Fatal(err)
		}
		seen := map[int]bool{}
		for _, slab := range []int{512, 1024, 2048, 4096, 8192, bp.words} {
			if slab > bp.words {
				slab = bp.words
			}
			if seen[slab] {
				continue
			}
			seen[slab] = true
			name := fmt.Sprintf("%dx%d-slab%d", size, size, slab)
			if slab == bp.words {
				name = fmt.Sprintf("%dx%d-fullplane", size, size)
			}
			b.Run(name, func(b *testing.B) {
				b.SetBytes(int64(topo.Dims().N()))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bp.stepSlabs(0, bp.words, slab)
					bp.finishStep()
				}
			})
		}
	}
}
