package sim

import (
	"context"
	"testing"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
)

// randomTestColoring builds a reproducible random coloring over k colors.
func randomTestColoring(seed uint64, d grid.Dims, k int) *color.Coloring {
	src := rng.New(seed)
	p := color.MustPalette(k)
	return color.RandomColoring(d, p, func() int { return src.Intn(p.K) })
}

// resultsEqual compares every field of two Results that the steppers must
// agree on, reporting the first difference.
func resultsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Rounds != b.Rounds {
		t.Fatalf("%s: rounds %d vs %d", label, a.Rounds, b.Rounds)
	}
	if a.FixedPoint != b.FixedPoint || a.Cycle != b.Cycle {
		t.Fatalf("%s: fixedpoint/cycle (%v,%v) vs (%v,%v)", label, a.FixedPoint, a.Cycle, b.FixedPoint, b.Cycle)
	}
	if a.Monochromatic != b.Monochromatic || a.FinalColor != b.FinalColor {
		t.Fatalf("%s: monochromatic (%v,%v) vs (%v,%v)", label, a.Monochromatic, a.FinalColor, b.Monochromatic, b.FinalColor)
	}
	if a.MonotoneTarget != b.MonotoneTarget {
		t.Fatalf("%s: monotone %v vs %v", label, a.MonotoneTarget, b.MonotoneTarget)
	}
	if len(a.ChangesPerRound) != len(b.ChangesPerRound) {
		t.Fatalf("%s: %d vs %d change records", label, len(a.ChangesPerRound), len(b.ChangesPerRound))
	}
	for i := range a.ChangesPerRound {
		if a.ChangesPerRound[i] != b.ChangesPerRound[i] {
			t.Fatalf("%s: round %d changed %d vs %d", label, i+1, a.ChangesPerRound[i], b.ChangesPerRound[i])
		}
	}
	if !a.Final.Equal(b.Final) {
		t.Fatalf("%s: final configurations differ", label)
	}
	if (a.FirstReached == nil) != (b.FirstReached == nil) {
		t.Fatalf("%s: FirstReached nil-ness differs", label)
	}
	for i := range a.FirstReached {
		if a.FirstReached[i] != b.FirstReached[i] {
			t.Fatalf("%s: FirstReached[%d] = %d vs %d", label, i, a.FirstReached[i], b.FirstReached[i])
		}
	}
}

// TestSteppersBitIdenticalAllRulesAllTopologies is the differential oracle
// of the frontier rebuild: on every registered rule × topology kind pair
// (aliases included), over random colorings on several sizes including the
// degenerate 2×n and m×2 tori, the frontier, sequential full-sweep and
// striped-parallel steppers must produce bit-identical Results — same
// rounds, same per-round change counts, same verdicts, same final
// configuration, same first-reach trace.
func TestSteppersBitIdenticalAllRulesAllTopologies(t *testing.T) {
	sizes := [][2]int{{2, 2}, {2, 7}, {7, 2}, {3, 3}, {4, 6}, {6, 6}}
	for _, name := range rules.RegisteredNames() {
		rule, err := rules.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range grid.Kinds() {
			for _, sz := range sizes {
				topo := grid.MustNew(kind, sz[0], sz[1])
				eng := NewEngine(topo, rule)
				for seed := uint64(1); seed <= 3; seed++ {
					initial := randomTestColoring(seed, topo.Dims(), 5)
					// Bounded rounds: reversible rules may never settle.
					base := Options{MaxRounds: 40, Target: 1, DetectCycles: true}
					sweep := base
					sweep.FullSweep = true
					par := base
					par.Parallel, par.Workers = true, 3

					front := eng.Run(initial, base)
					oracle := eng.Run(initial, sweep)
					striped := eng.Run(initial, par)

					label := name + "/" + topo.Name() + "/" + topo.Dims().String()
					resultsEqual(t, label+"/frontier-vs-sweep", front, oracle)
					resultsEqual(t, label+"/parallel-vs-sweep", striped, oracle)
				}
			}
		}
	}
}

// TestFrontierMatchesSweepWithStops runs the stop-condition variants
// (monochromatic stop, no cycle detection, history recording) differentially
// on a dynamo-style cross seed where the run actually converges.
func TestFrontierMatchesSweepWithStops(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 9, 9)
	eng := NewEngine(topo, rules.SMP{})
	initial := crossColoring(9, 9, 1)

	for _, opt := range []Options{
		{Target: 1, StopWhenMonochromatic: true},
		{RecordHistory: true},
		{},
	} {
		sweep := opt
		sweep.FullSweep = true
		front := eng.Run(initial, opt)
		oracle := eng.Run(initial, sweep)
		resultsEqual(t, "cross", front, oracle)
		if opt.RecordHistory {
			if len(front.History) != len(oracle.History) {
				t.Fatalf("history length %d vs %d", len(front.History), len(oracle.History))
			}
			for i := range front.History {
				if !front.History[i].Equal(oracle.History[i]) {
					t.Fatalf("history[%d] differs", i)
				}
			}
		}
	}
}

// oscillator2 plants the localized period-2 seed of the Prefer-Black rule:
// two diagonal black cells in a white sea swap with their anti-diagonal
// every round, forever, while the rest of the torus stays fixed.
func oscillator2(d grid.Dims, row, col int, white, black color.Color) *color.Coloring {
	c := color.NewColoring(d, white)
	c.SetRC(row, col, black)
	c.SetRC(row+1, col+1, black)
	return c
}

// TestFrontierSurvivesOscillation pins the frontier's liveness on a period-2
// cycle: with cycle detection off, the dirty frontier must keep scheduling
// the oscillating cells every round up to the budget (it must not die out
// just because the configuration revisits earlier states), and with cycle
// detection on it must stop exactly when the sweep oracle does.
func TestFrontierSurvivesOscillation(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 16, 16)
	rule := rules.SimpleMajorityPB{Black: 2}
	eng := NewEngine(topo, rule)
	initial := oscillator2(topo.Dims(), 5, 5, 1, 2)

	const budget = 50
	free := eng.Run(initial, Options{MaxRounds: budget})
	if free.Rounds != budget {
		t.Fatalf("oscillating run stopped at round %d, want the full budget %d", free.Rounds, budget)
	}
	if free.FixedPoint || free.Cycle {
		t.Fatalf("oscillating run misreported fixedpoint=%v cycle=%v", free.FixedPoint, free.Cycle)
	}
	for i, ch := range free.ChangesPerRound {
		if ch == 0 {
			t.Fatalf("frontier died at round %d while the configuration was still oscillating", i+1)
		}
	}

	detect := eng.Run(initial, Options{MaxRounds: budget, DetectCycles: true})
	sweep := eng.Run(initial, Options{MaxRounds: budget, DetectCycles: true, FullSweep: true})
	resultsEqual(t, "oscillator", detect, sweep)
	if !detect.Cycle || detect.Rounds != 2 {
		t.Fatalf("period-2 cycle not detected at round 2: cycle=%v rounds=%d", detect.Cycle, detect.Rounds)
	}

	// Drive the frontier by hand and watch its width stay localized: after
	// round 1 only the 2 changed cells plus their read sets stay dirty.
	f := eng.NewFrontier(initial)
	f.Step()
	if f.Size() == 0 || f.Size() > 20 {
		t.Fatalf("frontier width %d after round 1, want small and non-zero", f.Size())
	}
	for i := 0; i < 10; i++ {
		if f.Step() == 0 {
			t.Fatalf("manual frontier died at round %d", f.Round())
		}
	}
	if !f.Cycle() {
		t.Error("manual frontier failed to flag the period-2 cycle")
	}
}

// TestOneByNRejected documents the engine's floor: the paper (and
// grid.NewDims) require m, n ≥ 2, so 1×n "tori" are rejected at
// construction rather than mis-simulated — every vertex would be its own
// neighbor twice.
func TestOneByNRejected(t *testing.T) {
	for _, kind := range grid.Kinds() {
		if _, err := grid.New(kind, 1, 8); err == nil {
			t.Errorf("%v: 1×8 construction unexpectedly succeeded", kind)
		}
		if _, err := grid.New(kind, 8, 1); err == nil {
			t.Errorf("%v: 8×1 construction unexpectedly succeeded", kind)
		}
	}
}

// cancelAtRound is an Observer that cancels a context after seeing the
// given round.
type cancelAtRound struct {
	round  int
	cancel context.CancelFunc
}

func (c *cancelAtRound) OnRound(round int, _ *color.Coloring) {
	if round == c.round {
		c.cancel()
	}
}
func (c *cancelAtRound) OnFinish(*Result) {}

// TestFrontierCancellationMidRun cancels a frontier run from an observer and
// checks the partial result against the sweep oracle canceled at the same
// round: same rounds executed, same partial configuration, ctx.Err()
// surfaced, no OnFinish delivered.
func TestFrontierCancellationMidRun(t *testing.T) {
	topo := grid.MustNew(grid.KindTorusCordalis, 12, 12)
	eng := NewEngine(topo, rules.SimpleMajorityPB{Black: 2})
	initial := randomTestColoring(11, topo.Dims(), 3)

	runCanceled := func(fullSweep bool) (*Result, error) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		obs := &cancelAtRound{round: 3, cancel: cancel}
		return eng.RunContext(ctx, initial, Options{
			MaxRounds: 100, FullSweep: fullSweep, Observers: []Observer{obs},
		})
	}
	front, errF := runCanceled(false)
	sweep, errS := runCanceled(true)
	if errF != context.Canceled || errS != context.Canceled {
		t.Fatalf("errors %v / %v, want context.Canceled", errF, errS)
	}
	if front.Rounds != 3 || sweep.Rounds != 3 {
		t.Fatalf("rounds %d / %d, want 3 (canceled at the round-4 boundary)", front.Rounds, sweep.Rounds)
	}
	if !front.Final.Equal(sweep.Final) {
		t.Fatal("partial configurations differ between frontier and sweep")
	}
}

// TestFrontierStepDoesNotAllocate pins the zero-allocation guarantee of
// steady-state stepping for both the frontier and the sweep fast path.
func TestFrontierStepDoesNotAllocate(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 64, 64)
	eng := NewEngine(topo, rules.SimpleMajorityPB{Black: 2})
	initial := oscillator2(topo.Dims(), 20, 20, 1, 2)

	f := eng.NewFrontier(initial)
	f.Step()
	f.Step()
	if allocs := testing.AllocsPerRun(200, func() { f.Step() }); allocs != 0 {
		t.Errorf("Frontier.Step allocates %.1f objects per round in steady state, want 0", allocs)
	}

	cur, next := initial.Clone(), initial.Clone()
	if allocs := testing.AllocsPerRun(50, func() {
		eng.Step(cur, next)
		cur, next = next, cur
	}); allocs != 0 {
		t.Errorf("Engine.Step allocates %.1f objects per round, want 0", allocs)
	}
}

// TestRunReusesPooledBuffers checks that repeated runs on one engine share
// pooled working buffers: after a warm-up run, further runs allocate only
// the Result bookkeeping, far below the lattice size, and FreshBuffers opts
// out without changing results.
func TestRunReusesPooledBuffers(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 48, 48)
	eng := NewEngine(topo, rules.SMP{})
	initial := crossColoring(48, 48, 1)

	pooled := eng.Run(initial, Options{StopWhenMonochromatic: true})
	fresh := eng.Run(initial, Options{StopWhenMonochromatic: true, FreshBuffers: true})
	if !pooled.Final.Equal(fresh.Final) || pooled.Rounds != fresh.Rounds {
		t.Fatal("FreshBuffers changed the result")
	}
}

// TestDefaultMaxRoundsMatchesPaperBounds pins the budget formula and checks
// it dominates the paper's convergence bounds (Theorems 7 and 8) with at
// least 2× slack on a sweep of sizes, so the documented "O(m·n) slack"
// claim is actually true of the returned value.
func TestDefaultMaxRoundsMatchesPaperBounds(t *testing.T) {
	ceilDiv := func(a, b int) int { return (a + b - 1) / b }
	// Theorem 7 (toroidal mesh) and Theorem 8 (spiral tori, row-seeded).
	theorem7 := func(m, n int) int {
		a, b := ceilDiv(n-1, 2)-1, ceilDiv(m-1, 2)-1
		if b > a {
			a = b
		}
		return 2*a + 1
	}
	theorem8 := func(m, n int) int {
		base := ((m-1)/2 - 1) * n
		if m%2 == 1 {
			return base + ceilDiv(n, 2)
		}
		return base + 1
	}
	for m := 2; m <= 40; m += 3 {
		for n := 2; n <= 40; n += 3 {
			d := grid.MustDims(m, n)
			got := DefaultMaxRounds(d)
			if want := m*n + 2*(m+n) + 16; got != want {
				t.Fatalf("DefaultMaxRounds(%v) = %d, want %d", d, got, want)
			}
			for _, bound := range []int{theorem7(m, n), theorem8(m, n), theorem8(n, m)} {
				if got < 2*bound {
					t.Errorf("DefaultMaxRounds(%v) = %d is below 2× the paper bound %d", d, got, bound)
				}
			}
		}
	}
}
