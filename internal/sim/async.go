package sim

import (
	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
)

// AsyncOrder selects the vertex activation order of the asynchronous
// (sequential-scan) variant.
type AsyncOrder int

const (
	// AsyncRaster activates vertices in row-major order each sweep.
	AsyncRaster AsyncOrder = iota
	// AsyncRandom activates vertices in a fresh random permutation each
	// sweep (requires a Source).
	AsyncRandom
)

// AsyncOptions controls RunAsync.
type AsyncOptions struct {
	// MaxSweeps bounds the number of full sweeps over the vertex set.  Zero
	// selects DefaultMaxRounds.
	MaxSweeps int
	// Order selects the activation order.
	Order AsyncOrder
	// Seed selects the AsyncRandom permutation stream: sweep s uses the
	// permutation drawn from rng.New(rng.Hash(Seed, s)) — the same stateless
	// derivation the ScheduleRandomSequential driver uses, which is what
	// makes the two paths comparable draw for draw.  AsyncRaster ignores it.
	Seed uint64
	// StopWhenMonochromatic stops as soon as all vertices agree.
	StopWhenMonochromatic bool
}

// AsyncResult describes a finished asynchronous run.
type AsyncResult struct {
	// Sweeps is the number of full sweeps executed.
	Sweeps int
	// FixedPoint reports that the final sweep changed nothing.
	FixedPoint bool
	// Monochromatic reports a monochromatic final configuration of color
	// FinalColor.
	Monochromatic bool
	FinalColor    color.Color
	// Final is the final configuration.
	Final *color.Coloring
}

// RunAsync evolves the initial coloring with in-place (asynchronous) updates:
// each sweep visits every vertex once and immediately commits its new color,
// so later vertices in the same sweep observe earlier updates.
//
// The sequential schedules of the tiered engine (Options.Schedule with
// ScheduleSequential or ScheduleRandomSequential) are the integrated form of
// this loop, with streaming, checkpoint/resume and the full stop-condition
// set.  RunAsync is kept as the standalone differential-test oracle those
// drivers are pinned against (TestScheduleSequentialMatchesRunAsync); new
// code should run async dynamics through Engine.Run with a Schedule.
func (e *Engine) RunAsync(initial *color.Coloring, opt AsyncOptions) *AsyncResult {
	d := e.sub.Dims()
	if initial.Dims() != d {
		panic("sim: RunAsync dimension mismatch")
	}
	maxSweeps := opt.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = e.sub.DefaultMaxRounds()
	}

	cur := initial.Clone()
	cells := cur.Cells()
	res := &AsyncResult{}
	order := make([]int, d.N())
	for i := range order {
		order[i] = i
	}

	fwd, off := e.csr.Neighbors, e.csr.Off
	var scratch4 [grid.Degree]color.Color
	scratch := make([]color.Color, 0, e.maxDeg)
	for sweep := 1; sweep <= maxSweeps; sweep++ {
		if opt.Order == AsyncRandom {
			for i := range order {
				order[i] = i
			}
			src := rng.New(rng.Hash(opt.Seed, uint64(sweep)))
			src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		changed := 0
		switch cr := e.countRule; {
		case e.deg4 && cr != nil:
			for _, v := range order {
				base := v * grid.Degree
				var cs rules.Counts
				cs.Add(cells[fwd[base]])
				cs.Add(cells[fwd[base+1]])
				cs.Add(cells[fwd[base+2]])
				cs.Add(cells[fwd[base+3]])
				nc := cr.NextFromCounts(cells[v], cs)
				if nc != cells[v] {
					cells[v] = nc
					changed++
				}
			}
		case e.deg4:
			for _, v := range order {
				base := v * grid.Degree
				scratch4[0] = cells[fwd[base]]
				scratch4[1] = cells[fwd[base+1]]
				scratch4[2] = cells[fwd[base+2]]
				scratch4[3] = cells[fwd[base+3]]
				nc := e.rule.Next(cells[v], scratch4[:])
				if nc != cells[v] {
					cells[v] = nc
					changed++
				}
			}
		default:
			for _, v := range order {
				row := fwd[off[v]:off[v+1]]
				cur := cells[v]
				var nc color.Color
				fits := false
				if cr != nil {
					var cs rules.Counts
					fits = true
					for _, u := range row {
						if !cs.AddOK(cells[u]) {
							fits = false
							break
						}
					}
					if fits {
						nc = cr.NextFromCounts(cur, cs)
					}
				}
				if !fits {
					scratch = scratch[:0]
					for _, u := range row {
						scratch = append(scratch, cells[u])
					}
					nc = e.rule.Next(cur, scratch)
				}
				if nc != cur {
					cells[v] = nc
					changed++
				}
			}
		}
		res.Sweeps = sweep
		if changed == 0 {
			res.FixedPoint = true
			break
		}
		if opt.StopWhenMonochromatic {
			if _, ok := cur.IsMonochromatic(); ok {
				break
			}
		}
	}
	res.Final = cur
	res.FinalColor, res.Monochromatic = cur.IsMonochromatic()
	return res
}
