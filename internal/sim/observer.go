package sim

import "repro/internal/color"

// Observer receives the evolution of a run round by round.  It replaces the
// former Options.Listener callback with an interface that can also observe
// the end of the run, which is what the ready-made observers of the public
// dynmon package (history recorder, animator, stats collector) need.
//
// OnRound is invoked after every synchronous round with the 1-based round
// number and the configuration reached at the end of that round.  The
// coloring is a live buffer owned by the engine: observers must not retain
// or mutate it (clone it if a copy is needed).
//
// OnFinish is invoked exactly once when the run stops on its own (fixed
// point, cycle, monochromatic configuration or round budget).  It is NOT
// invoked when the run is aborted by context cancellation — the partial
// Result is returned to the caller together with the context error instead.
//
// Observers are invoked sequentially from the goroutine driving the run,
// never concurrently, even when the parallel stepper is enabled.
type Observer interface {
	OnRound(round int, c *color.Coloring)
	OnFinish(r *Result)
}

// RoundFunc adapts a plain per-round callback (the shape of the former
// Options.Listener) to the Observer interface; its OnFinish is a no-op.
type RoundFunc func(round int, c *color.Coloring)

// OnRound invokes the function.
func (f RoundFunc) OnRound(round int, c *color.Coloring) { f(round, c) }

// OnFinish does nothing.
func (RoundFunc) OnFinish(*Result) {}
