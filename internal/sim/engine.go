// Package sim contains the synchronous simulation engine that evolves a
// colored torus under a local recoloring rule.
//
// The engine follows the paper's execution model (Section III.D): the system
// is synchronous, every vertex reads its neighbors' colors at time t and all
// vertices apply the rule simultaneously to produce the configuration at
// time t+1.  The engine supports sequential and parallel (striped,
// double-buffered) stepping that produce bit-identical results, fixed-point
// and period-2-cycle detection, monotonicity tracking with respect to a
// target color, and per-vertex recoloring-time traces (the data behind the
// paper's Figures 5 and 6).
package sim

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
)

// Options controls a simulation run.
type Options struct {
	// MaxRounds bounds the number of synchronous rounds.  Zero selects
	// DefaultMaxRounds for the topology.
	MaxRounds int
	// Parallel enables the striped parallel stepper.
	Parallel bool
	// Workers is the number of goroutines used when Parallel is set; zero
	// selects runtime.GOMAXPROCS(0).
	Workers int
	// Target, when non-zero, is the color whose spread is tracked: the
	// engine records per-vertex first-reach times and whether the
	// target-colored set evolved monotonically.
	Target color.Color
	// StopWhenMonochromatic stops the run as soon as every vertex has the
	// same color (the dynamo success condition).
	StopWhenMonochromatic bool
	// DetectCycles stops the run when a period-2 oscillation is detected
	// (possible under the reversible majority baselines, never under a
	// monotone dynamo).
	DetectCycles bool
	// RecordHistory keeps a copy of the configuration after every round.
	RecordHistory bool
	// Observers are notified after every round (OnRound) and when the run
	// stops on its own (OnFinish).  They replace the former Listener
	// callback; see the Observer documentation for the exact contract.
	Observers []Observer
}

// EffectiveWorkers returns the number of stepping goroutines a run with
// these options actually uses on a torus of n vertices:
//
//   - 1 when Parallel is unset (the sequential path ignores Workers);
//   - otherwise Workers (or runtime.GOMAXPROCS(0) when Workers <= 0),
//     capped at n so no goroutine gets an empty stripe, with a floor of 1.
//
// Run records this value on Result.Workers so callers can see the real
// parallelism rather than the requested one.
func (o Options) EffectiveWorkers(n int) int {
	if !o.Parallel {
		return 1
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// DefaultMaxRounds returns a generous round budget for the given dimensions.
// The paper's convergence bounds are O(m·n); the default leaves ample slack
// so non-convergence always means "not a dynamo" rather than "budget too
// small".
func DefaultMaxRounds(d grid.Dims) int { return 3*d.N() + 16 }

// Result describes a finished simulation run.
type Result struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Workers is the effective number of stepping goroutines used: 1 on
	// the sequential path, Options.EffectiveWorkers on the parallel path.
	Workers int
	// FixedPoint reports that the last round changed no vertex.
	FixedPoint bool
	// Cycle reports that a period-2 oscillation was detected.
	Cycle bool
	// Monochromatic reports that the final configuration is monochromatic,
	// and FinalColor carries its color.
	Monochromatic bool
	FinalColor    color.Color
	// MonotoneTarget reports that the set of Target-colored vertices never
	// lost a vertex during the run (Definition 3).  It is meaningful only
	// when Options.Target was set.
	MonotoneTarget bool
	// FirstReached[v] is the first round (0 = initially) at which vertex v
	// carried the Target color, or -1 if it never did.  Nil when
	// Options.Target was not set.
	FirstReached []int
	// ChangesPerRound[i] is the number of vertices that changed color in
	// round i+1.
	ChangesPerRound []int
	// Final is the configuration at the end of the run.
	Final *color.Coloring
	// History holds the configuration after every round when
	// Options.RecordHistory was set (History[0] is the state after round 1).
	History []*color.Coloring
}

// ReachedAll reports whether every vertex reached the target color at some
// round.
func (r *Result) ReachedAll() bool {
	if r.FirstReached == nil {
		return false
	}
	for _, t := range r.FirstReached {
		if t < 0 {
			return false
		}
	}
	return true
}

// TimesMatrix lays the FirstReached trace out as a row-major matrix, the
// form used by the paper's Figures 5 and 6.  Vertices that never reached the
// target are -1.
func (r *Result) TimesMatrix(d grid.Dims) [][]int {
	out := make([][]int, d.Rows)
	for i := range out {
		row := make([]int, d.Cols)
		for j := range row {
			if r.FirstReached == nil {
				row[j] = -1
			} else {
				row[j] = r.FirstReached[d.IndexRC(i, j)]
			}
		}
		out[i] = row
	}
	return out
}

// Engine evolves colorings over a fixed topology under a fixed rule.  An
// Engine is immutable after construction and safe for concurrent use by
// multiple goroutines running independent simulations.
type Engine struct {
	topo grid.Topology
	rule rules.Rule
	// neighbors is the flattened adjacency table: the four neighbor indices
	// of vertex v occupy neighbors[4v:4v+4].  Precomputing it keeps the
	// inner loop free of modulo arithmetic and interface dispatch.
	neighbors []int32
}

// NewEngine builds an engine for the given topology and rule.
func NewEngine(topo grid.Topology, rule rules.Rule) *Engine {
	n := topo.Dims().N()
	neighbors := make([]int32, 0, n*grid.Degree)
	var buf [grid.Degree]int
	for v := 0; v < n; v++ {
		for _, u := range topo.Neighbors(v, buf[:0]) {
			neighbors = append(neighbors, int32(u))
		}
	}
	return &Engine{topo: topo, rule: rule, neighbors: neighbors}
}

// Topology returns the engine's topology.
func (e *Engine) Topology() grid.Topology { return e.topo }

// Rule returns the engine's rule.
func (e *Engine) Rule() rules.Rule { return e.rule }

// stepRange applies one synchronous round to vertices [lo, hi) reading from
// cur and writing to next, and returns how many of them changed.
func (e *Engine) stepRange(cur, next []color.Color, lo, hi int) int {
	changed := 0
	var scratch [grid.Degree]color.Color
	for v := lo; v < hi; v++ {
		base := v * grid.Degree
		scratch[0] = cur[e.neighbors[base]]
		scratch[1] = cur[e.neighbors[base+1]]
		scratch[2] = cur[e.neighbors[base+2]]
		scratch[3] = cur[e.neighbors[base+3]]
		nc := e.rule.Next(cur[v], scratch[:])
		next[v] = nc
		if nc != cur[v] {
			changed++
		}
	}
	return changed
}

// Step applies one synchronous round, reading from cur and writing into
// next.  It returns the number of vertices that changed color.  cur and next
// must have the engine's dimensions and must not alias.
func (e *Engine) Step(cur, next *color.Coloring) int {
	if cur.Dims() != e.topo.Dims() || next.Dims() != e.topo.Dims() {
		panic(fmt.Sprintf("sim: Step dimension mismatch (%v, %v) vs %v", cur.Dims(), next.Dims(), e.topo.Dims()))
	}
	return e.stepRange(cur.Cells(), next.Cells(), 0, cur.N())
}

// Run evolves the initial coloring under the engine's rule until a stop
// condition holds.  The initial coloring is not modified.  It is RunContext
// with a background context (which can never abort the run).
func (e *Engine) Run(initial *color.Coloring, opt Options) *Result {
	res, _ := e.RunContext(context.Background(), initial, opt)
	return res
}

// RunContext is Run with cancellation: the context is checked at every
// round boundary, and when it is canceled (or its deadline passes) the run
// stops promptly and returns the partial Result together with ctx.Err().
// Observers do not receive OnFinish for an aborted run.
//
// On a nil error the returned Result is complete, exactly as from Run.
func (e *Engine) RunContext(ctx context.Context, initial *color.Coloring, opt Options) (*Result, error) {
	d := e.topo.Dims()
	if initial.Dims() != d {
		panic(fmt.Sprintf("sim: Run dimension mismatch %v vs %v", initial.Dims(), d))
	}
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds(d)
	}
	workers := opt.EffectiveWorkers(d.N())

	cur := initial.Clone()
	next := initial.Clone()
	var prevPrev *color.Coloring
	if opt.DetectCycles {
		prevPrev = initial.Clone()
	}

	res := &Result{MonotoneTarget: true, Workers: workers}
	if opt.Target != color.None {
		res.FirstReached = make([]int, d.N())
		for v := 0; v < d.N(); v++ {
			if cur.At(v) == opt.Target {
				res.FirstReached[v] = 0
			} else {
				res.FirstReached[v] = -1
			}
		}
	}

	for round := 1; round <= maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			res.Final = cur.Clone()
			res.FinalColor, res.Monochromatic = res.Final.IsMonochromatic()
			if opt.Target == color.None {
				res.MonotoneTarget = false
			}
			return res, err
		}
		var changed int
		if workers > 1 {
			changed = e.stepParallel(cur.Cells(), next.Cells(), workers)
		} else {
			changed = e.stepRange(cur.Cells(), next.Cells(), 0, d.N())
		}
		res.Rounds = round
		res.ChangesPerRound = append(res.ChangesPerRound, changed)

		if opt.Target != color.None {
			for v := 0; v < d.N(); v++ {
				got, had := next.At(v) == opt.Target, cur.At(v) == opt.Target
				if had && !got {
					res.MonotoneTarget = false
				}
				if got && res.FirstReached[v] < 0 {
					res.FirstReached[v] = round
				}
			}
		}
		if opt.RecordHistory {
			res.History = append(res.History, next.Clone())
		}
		for _, o := range opt.Observers {
			o.OnRound(round, next)
		}

		if changed == 0 {
			res.FixedPoint = true
			cur, next = next, cur
			break
		}
		if opt.StopWhenMonochromatic {
			if _, ok := next.IsMonochromatic(); ok {
				cur, next = next, cur
				break
			}
		}
		if opt.DetectCycles {
			if next.Equal(prevPrev) {
				res.Cycle = true
				cur, next = next, cur
				break
			}
			prevPrev.CopyFrom(cur)
		}
		cur, next = next, cur
	}

	res.Final = cur.Clone()
	res.FinalColor, res.Monochromatic = res.Final.IsMonochromatic()
	if opt.Target == color.None {
		res.MonotoneTarget = false
	}
	for _, o := range opt.Observers {
		o.OnFinish(res)
	}
	return res, nil
}

// Run is a convenience wrapper constructing a throwaway engine.  Prefer
// building an Engine once when running many simulations over the same
// topology and rule.
func Run(topo grid.Topology, rule rules.Rule, initial *color.Coloring, opt Options) *Result {
	return NewEngine(topo, rule).Run(initial, opt)
}
