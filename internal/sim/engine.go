// Package sim contains the synchronous simulation engine that evolves a
// colored substrate — one of the paper's three tori, or any general graph
// exposed through the Substrate seam — under a local recoloring rule.
//
// The engine follows the paper's execution model (Section III.D): the system
// is synchronous, every vertex reads its neighbors' colors at time t and all
// vertices apply the rule simultaneously to produce the configuration at
// time t+1.  Five stepping tiers produce bit-identical results:
//
//   - the sequential full sweep, the oracle every other path is tested
//     against;
//   - the striped parallel sweep (double-buffered, one contiguous stripe per
//     worker, executed on a persistent process-wide worker pool);
//   - the sharded domain-decomposed stepper (see Sharded), which cuts the
//     substrate into per-worker shards stepped from shard-local buffers
//     with a per-round halo exchange — the tier that scales with workers
//     on substrates too large for one cache hierarchy;
//   - the dirty-frontier stepper (see Frontier), which re-evaluates only the
//     vertices whose neighborhood changed in the previous round — the
//     low-churn specialist;
//   - the bit-sliced bitplane stepper (see Bitplane), which packs the
//     configuration into uint64 bit planes and recolors 64 vertices per
//     word operation — the high-churn specialist, available when the rule,
//     topology and palette qualify.
//
// Options.Kernel forces a tier; the default automatic selection (and the
// mid-run bitplane→frontier downshift) is documented on the Kernel
// constants.
//
// The synchronous execution model is itself a seam: Options.Schedule
// selects which vertices fire each round (uniform-async, sequential
// raster, random-sequential, vertex-clock — see ScheduleKind), and
// Options.Noise makes the rule ε-faulty, flipping a vertex to a uniformly
// random other color with probability Eps after each application.  Both
// draw every random bit from counter-based hashes (internal/rng.Hash) of
// the seed, the round and the vertex — never from stateful generators —
// so stochastic runs are pure functions of their Options: bit-identical
// across kernels, worker counts and checkpoint/resume.  Non-synchronous
// schedules step on the in-place tiers; forcing the bitplane or sharded
// kernel under one is rejected with ErrStochasticSweepOnly.
//
// The engine supports fixed-point and period-2-cycle detection,
// monotonicity tracking with respect to a target color, per-vertex
// recoloring-time traces (the data behind the paper's Figures 5 and 6),
// and a time-varying run mode (Options.TimeVarying) that masks link
// availability per round, the extension the paper's conclusions call for.
package sim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
)

// ErrTimeVaryingSweepOnly is the error (wrapped) returned by time-varying
// runs that force the frontier or bitplane kernel.  Both tiers assume a
// vertex can only change when a neighbor's color changed in the previous
// round; under link churn a vertex's reduced neighborhood — and therefore
// its next color — can change with no color changing anywhere, so the
// incremental tiers would skip vertices that must be re-evaluated
// (demonstrated by TestTimeVaryingFrontierWouldBeUnsound).  Time-varying
// runs always sweep every vertex every round.
var ErrTimeVaryingSweepOnly = errors.New("sim: time-varying runs require full-sweep semantics")

// Kernel identifies a stepping tier of the engine.
type Kernel int

const (
	// KernelAuto lets the engine pick: the bitplane kernel when the rule,
	// topology and coloring qualify (and the run needs no per-round scalar
	// views), the sharded stepper for parallel runs on substrates of
	// shardedAutoThreshold vertices or more, the striped parallel sweep for
	// smaller parallel runs, the sequential sweep when FullSweep is set,
	// and the dirty frontier otherwise.  Auto-selected sequential bitplane
	// runs may additionally downshift to the frontier mid-run once the
	// change rate gets low (recorded on Result.Downshift).
	KernelAuto Kernel = iota
	// KernelBitplane forces the word-parallel bit-sliced stepper.  Runs
	// error (wrapping ErrBitplaneIneligible) when the combination does not
	// qualify.
	KernelBitplane
	// KernelFrontier forces the sequential dirty-frontier stepper.
	KernelFrontier
	// KernelSweep forces the sequential full-sweep oracle stepper.
	KernelSweep
	// KernelParallel forces the striped parallel sweep (Workers goroutines,
	// GOMAXPROCS when unset).
	KernelParallel
	// KernelSharded forces the domain-decomposed sweep: the substrate is cut
	// into contiguous degree-balanced shards (row-band slabs on the dense
	// tori), each worker steps only its own shard out of shard-local double
	// buffers, and a per-round halo exchange copies just the boundary cells
	// between shards.  Workers selects the shard count exactly as on
	// KernelParallel.  Automatic selection prefers this tier over the striped
	// sweep on parallel runs of shardedAutoThreshold vertices or more, where
	// the striped sweep's shared-buffer bandwidth wall makes extra workers
	// useless.
	KernelSharded
)

// String returns the tier name used in logs and experiment tables.
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelBitplane:
		return "bitplane"
	case KernelFrontier:
		return "frontier"
	case KernelSweep:
		return "sweep"
	case KernelParallel:
		return "parallel"
	case KernelSharded:
		return "sharded"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// ParseKernel resolves a tier name ("auto", "bitplane", "frontier", "sweep",
// "parallel", "sharded"; "" means auto) to its Kernel, the inverse of String.
func ParseKernel(name string) (Kernel, error) {
	switch name {
	case "", "auto":
		return KernelAuto, nil
	case "bitplane":
		return KernelBitplane, nil
	case "frontier":
		return KernelFrontier, nil
	case "sweep":
		return KernelSweep, nil
	case "parallel":
		return KernelParallel, nil
	case "sharded":
		return KernelSharded, nil
	default:
		return KernelAuto, fmt.Errorf("sim: unknown kernel %q (want auto, bitplane, frontier, sweep, parallel or sharded)", name)
	}
}

// MarshalJSON encodes the kernel as its tier name, the stable wire form.
func (k Kernel) MarshalJSON() ([]byte, error) {
	name := k.String()
	if _, err := ParseKernel(name); err != nil {
		return nil, fmt.Errorf("sim: cannot marshal %s", name)
	}
	return json.Marshal(name)
}

// UnmarshalJSON decodes a tier name produced by MarshalJSON.
func (k *Kernel) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	parsed, err := ParseKernel(name)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// Substrate is the minimal seam between an interaction substrate and the
// engine: a vertex layout (grid.Dims) that sizes colorings, a CSR adjacency
// index with forward and reverse neighbor lists, a display name for errors
// and tables, and a default round budget.  The three tori satisfy it through
// an internal adapter over grid.Topology (NewEngine); any other substrate —
// internal/graphs.Graph is the shipped example — implements it directly and
// runs through NewEngineOn, inheriting the frontier, parallel-stripe and
// pooled-buffer tiers for free.  The bitplane tier additionally requires a
// shift-regular torus and stays behind the existing ErrBitplaneIneligible
// probing.
//
// Implementations must be immutable for the lifetime of the engines built
// over them: the engine snapshots CSR() once at construction.
type Substrate interface {
	// Dims returns the vertex layout colorings must carry.  Torus substrates
	// use their lattice dimensions; substrates without a lattice use the
	// degenerate 1×n layout (see grid.BuildCSRAdj).
	Dims() grid.Dims
	// Name identifies the substrate in errors and experiment tables.
	Name() string
	// CSR returns the adjacency index the engine iterates over.
	CSR() *grid.CSR
	// DefaultMaxRounds returns the round budget used when Options.MaxRounds
	// is zero, generous enough that non-convergence within it means "does
	// not converge", not "budget too small".
	DefaultMaxRounds() int
}

// torusSubstrate adapts a grid.Topology to the Substrate seam.
type torusSubstrate struct{ topo grid.Topology }

func (s torusSubstrate) Dims() grid.Dims       { return s.topo.Dims() }
func (s torusSubstrate) Name() string          { return s.topo.Name() }
func (s torusSubstrate) CSR() *grid.CSR        { return grid.CSROf(s.topo) }
func (s torusSubstrate) DefaultMaxRounds() int { return DefaultMaxRounds(s.topo.Dims()) }

// Availability decides which links are usable in a given round; it is the
// contract behind Options.TimeVarying.  It must be deterministic in
// (round, u, v) so that runs are reproducible; the engine always passes the
// endpoints with u < v, so implementations need not re-normalize.  The
// availability models of internal/tvg implement it.
type Availability interface {
	// Available reports whether the link {u, v} can carry information
	// during the given round (1-based).
	Available(round, u, v int) bool
}

// staticAvailability reports whether the model declares itself equivalent
// to a fully available static network (via an optional Static() method, as
// the internal/tvg models provide).  Only then may the engine treat a
// zero-change round as a fixed point: on an intermittent network the
// configuration can change again when links return.
func staticAvailability(a Availability) bool {
	s, ok := a.(interface{ Static() bool })
	return ok && s.Static()
}

// Options controls a simulation run.
type Options struct {
	// MaxRounds bounds the number of synchronous rounds.  Zero selects
	// DefaultMaxRounds for the topology.
	MaxRounds int
	// Parallel enables the striped parallel stepper.
	Parallel bool
	// Workers is the number of goroutines used when Parallel is set; zero
	// selects runtime.GOMAXPROCS(0).
	Workers int
	// FullSweep forces the sequential full-sweep oracle stepper instead of
	// the dirty-frontier stepper.  Results are bit-identical either way; the
	// knob exists for differential tests and for measuring the frontier's
	// speedup.  It is ignored on the parallel path, which always sweeps.
	FullSweep bool
	// FreshBuffers makes the run allocate its own working buffers instead of
	// borrowing from the engine's per-run buffer pool.  The pool is the
	// reason steady-state stepping allocates nothing across Session batch
	// runs; opting out exists for callers that hold many runs open at once
	// and would rather not grow the pool.
	FreshBuffers bool
	// Kernel selects the stepping tier explicitly; the KernelAuto zero value
	// keeps the automatic selection described on the constants.  A forced
	// tier overrides Parallel and FullSweep (KernelParallel still honors
	// Workers).  All tiers are bit-identical; the knob exists for
	// differential tests, benchmarks and callers that know their workload.
	Kernel Kernel
	// TimeVarying, when non-nil, masks link availability per round: every
	// round r each vertex reads only the neighbors u whose link is
	// Available(r, min(v,u), max(v,u)), and applies the rule to that reduced
	// multiset when at least two neighbors are reachable (with fewer it
	// keeps its color — an SMP-style vertex cannot form a majority from a
	// single opinion).  Time-varying runs always use full-sweep semantics:
	// the dirty frontier and the bitplane tier are unsound here, because a
	// vertex's input can change through link churn alone, without any
	// neighbor changing color (see ErrTimeVaryingSweepOnly).  A round that
	// changes nothing is a fixed point only when the model declares itself
	// static; otherwise the run continues, since returning links can wake
	// the dynamics again — and for the same reason DetectCycles is inert
	// under a non-static model (a configuration repeating two rounds apart
	// under churny link draws is not a cycle).
	TimeVarying Availability
	// Schedule, when non-nil with a non-synchronous Kind, replaces the
	// synchronous update discipline (see ScheduleKind).  Stochastic runs are
	// pinned to sweep semantics: forcing an incremental or sharded kernel
	// errors (wrapping ErrStochasticSweepOnly), the sequential kinds
	// additionally pin the run to one worker, and a zero-change round is a
	// fixed point only when every vertex was guaranteed a turn (the
	// sequential kinds, or a degenerate mask that activates everyone).
	// Combining a stochastic schedule with TimeVarying is not supported.
	Schedule *Schedule
	// Noise, when non-nil with Eps > 0, makes every rule application ε-faulty
	// (see Noise).  Noisy runs never stop on a fixed point — a fault can
	// reignite the dynamics at any round — and follow the same sweep-only
	// kernel gating as Schedule.
	Noise *Noise
	// Target, when non-zero, is the color whose spread is tracked: the
	// engine records per-vertex first-reach times and whether the
	// target-colored set evolved monotonically.
	Target color.Color
	// StopWhenMonochromatic stops the run as soon as every vertex has the
	// same color (the dynamo success condition).
	StopWhenMonochromatic bool
	// DetectCycles stops the run when a period-2 oscillation is detected
	// (possible under the reversible majority baselines, never under a
	// monotone dynamo).
	DetectCycles bool
	// RecordHistory keeps a copy of the configuration after every round.
	RecordHistory bool
	// Observers are notified after every round (OnRound) and when the run
	// stops on its own (OnFinish).  They replace the former Listener
	// callback; see the Observer documentation for the exact contract.
	Observers []Observer
}

// EffectiveWorkers returns the number of stepping goroutines a run with
// these options actually uses on a torus of n vertices:
//
//   - 1 when Parallel is unset (the sequential path ignores Workers);
//   - otherwise Workers (or runtime.GOMAXPROCS(0) when Workers <= 0),
//     capped at n so no goroutine gets an empty stripe, with a floor of 1.
//
// Run records this value on Result.Workers so callers can see the real
// parallelism rather than the requested one.
func (o Options) EffectiveWorkers(n int) int {
	if !o.Parallel {
		return 1
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// DefaultMaxRounds returns a generous round budget for an m×n torus, aligned
// with the paper's convergence bounds: Theorem 7 converges the toroidal mesh
// in O(max(m,n)) rounds and Theorem 8 the spiral tori in at most ~m·n/2
// rounds (the wave crosses the single spiral), so
//
//	m·n + 2·(m+n) + 16
//
// dominates every predicted convergence time with at least 2× slack.
// Non-convergence within the budget therefore means "not a dynamo", never
// "budget too small".
func DefaultMaxRounds(d grid.Dims) int { return d.N() + 2*(d.Rows+d.Cols) + 16 }

// Result describes a finished simulation run.  The JSON field tags are a
// stable wire contract: reports built over results are served directly, with
// no second DTO layer (colorings marshal as {rows, cols, cells} objects and
// the kernel as its tier name).
type Result struct {
	// Rounds is the number of rounds executed.
	Rounds int `json:"rounds"`
	// Workers is the effective number of stepping goroutines used: 1 on
	// the sequential path, Options.EffectiveWorkers on the parallel path.
	Workers int `json:"workers"`
	// Kernel is the stepping tier that executed the run (never KernelAuto).
	// A hybrid auto run that started on the bitplane kernel and downshifted
	// reports KernelBitplane with the switch round in Downshift.
	Kernel Kernel `json:"kernel"`
	// Downshift is the round at which an auto-tier bitplane run handed the
	// remaining rounds to the dirty-frontier stepper, or 0 when it never
	// did.  The handoff is exact: the result is bit-identical either way.
	Downshift int `json:"downshift,omitempty"`
	// FixedPoint reports that the last round changed no vertex.
	FixedPoint bool `json:"fixed_point"`
	// Cycle reports that a period-2 oscillation was detected.
	Cycle bool `json:"cycle"`
	// Monochromatic reports that the final configuration is monochromatic,
	// and FinalColor carries its color.
	Monochromatic bool        `json:"monochromatic"`
	FinalColor    color.Color `json:"final_color"`
	// MonotoneTarget reports that the set of Target-colored vertices never
	// lost a vertex during the run (Definition 3).  It is meaningful only
	// when Options.Target was set.
	MonotoneTarget bool `json:"monotone_target"`
	// FirstReached[v] is the first round (0 = initially) at which vertex v
	// carried the Target color, or -1 if it never did.  Nil when
	// Options.Target was not set.
	FirstReached []int `json:"first_reached,omitempty"`
	// ChangesPerRound[i] is the number of vertices that changed color in
	// round i+1.
	ChangesPerRound []int `json:"changes_per_round,omitempty"`
	// Final is the configuration at the end of the run.
	Final *color.Coloring `json:"final,omitempty"`
	// History holds the configuration after every round when
	// Options.RecordHistory was set (History[0] is the state after round 1).
	History []*color.Coloring `json:"history,omitempty"`

	// prev is the configuration one round before Final, snapshotted so
	// ResumeState can emit a checkpoint (with its cycle-detector seed) from
	// a finished or aborted result.  Not serialized: the public checkpoint
	// format lives in the dynmon package.
	prev *color.Coloring
}

// ReachedAll reports whether every vertex reached the target color at some
// round.
func (r *Result) ReachedAll() bool {
	if r.FirstReached == nil {
		return false
	}
	for _, t := range r.FirstReached {
		if t < 0 {
			return false
		}
	}
	return true
}

// TimesMatrix lays the FirstReached trace out as a row-major matrix, the
// form used by the paper's Figures 5 and 6.  Vertices that never reached the
// target are -1.
func (r *Result) TimesMatrix(d grid.Dims) [][]int {
	out := make([][]int, d.Rows)
	for i := range out {
		row := make([]int, d.Cols)
		for j := range row {
			if r.FirstReached == nil {
				row[j] = -1
			} else {
				row[j] = r.FirstReached[d.IndexRC(i, j)]
			}
		}
		out[i] = row
	}
	return out
}

// Engine evolves colorings over a fixed substrate under a fixed rule.  Its
// configuration is immutable after construction and an Engine is safe for
// concurrent use by multiple goroutines running independent simulations; the
// only mutable state is an internal sync.Pool of per-run working buffers,
// which is what makes repeated runs (and Session batches in the public
// dynmon package) allocation-free in steady state.
type Engine struct {
	// sub is the substrate seam the engine steps over.
	sub Substrate
	// topo is the torus view of the substrate, nil for non-torus substrates;
	// it gates the bitplane tier (grid.ShiftPlanOf needs a Topology).
	topo grid.Topology
	rule rules.Rule
	// countRule is the rule's counts-based fast path, nil when the rule does
	// not implement rules.CountRule.  Detected once here so the inner loops
	// pay no per-vertex type assertions.
	countRule rules.CountRule
	// bitRule is the rule's word-parallel form, nil when the rule does not
	// implement rules.BitRule; with a shift-regular topology and a ≤4-color
	// palette it enables the bitplane tier.
	bitRule rules.BitRule
	// csr is the substrate's CSR adjacency index, snapshotted once at
	// construction: csr.Neighbors frames each vertex's forward neighbors,
	// and csr.Rev lists who must be re-evaluated when v changes.
	csr *grid.CSR
	// deg4 marks a dense 4-regular index (all tori), which licenses the
	// unrolled degree-4 inner loops; irregular substrates take the generic
	// offset-framed loops instead.
	deg4 bool
	// maxDeg sizes the per-run neighbor scratch buffers.
	maxDeg int
	// pool recycles per-run state (double buffers, frontier queues) across
	// runs.
	pool sync.Pool
	// slicePool recycles bit-sliced ensemble steppers (Bitslice) across
	// batches the same way.
	slicePool sync.Pool
	// shardSets memoizes the immutable partitioned views of the substrate
	// (grid.CSRShard slices) per shard count.  The mutable per-run shard
	// buffers live on the pooled runState; only the O(E) local adjacency
	// rewrite is shared here, so repeated sharded runs at the same worker
	// count pay it once.
	shardSets sync.Map // int -> []*grid.CSRShard
}

// NewEngine builds an engine for the given torus topology and rule.  It is
// NewEngineOn over the topology's substrate adapter.
func NewEngine(topo grid.Topology, rule rules.Rule) *Engine {
	return NewEngineOn(torusSubstrate{topo: topo}, rule)
}

// NewEngineOn builds an engine over an arbitrary substrate — the
// general-graph entry point.  The substrate's CSR index is snapshotted here;
// mutating the underlying graph afterwards does not affect the engine.
func NewEngineOn(sub Substrate, rule rules.Rule) *Engine {
	csr := sub.CSR()
	e := &Engine{
		sub:    sub,
		rule:   rule,
		csr:    csr,
		deg4:   csr.Uniform() == grid.Degree,
		maxDeg: csr.MaxDegree(),
	}
	if ts, ok := sub.(torusSubstrate); ok {
		e.topo = ts.topo
	}
	e.countRule, _ = rule.(rules.CountRule)
	e.bitRule, _ = rule.(rules.BitRule)
	return e
}

// engineKey identifies a cached engine by its substrate and rule values.
type engineKey struct {
	sub  Substrate
	rule rules.Rule
}

// engineCache memoizes engines per (substrate, rule) value, mirroring
// grid.CSROf: engines are immutable and safe for concurrent use, so sharing
// one lets repeated runs over the same system — the analysis sweeps build
// thousands of them — reuse the pooled run buffers instead of paying
// construction and warm-up allocations per point.
var engineCache sync.Map // engineKey -> *Engine

// EngineOf returns a process-cached engine for the torus topology and rule,
// building it on first use.  Values whose dynamic types are not comparable
// cannot be cache keys and get a fresh engine per call.  Cached engines are
// retained for the life of the process; callers that must bound memory over
// unbounded topology streams should use NewEngine directly.
func EngineOf(topo grid.Topology, rule rules.Rule) *Engine {
	if !reflect.TypeOf(topo).Comparable() {
		return NewEngine(topo, rule)
	}
	return EngineOn(torusSubstrate{topo: topo}, rule)
}

// EngineOn is EngineOf for arbitrary substrates: a process-cached engine
// per (substrate, rule) value.  The cache retains its entries for the life
// of the process, so it suits substrate values that genuinely repeat (small
// comparable structs, long-lived shared views).  Identity-keyed substrates
// that are created and dropped in volume would leak their entries — such
// callers should use NewEngineOn, or memoize engines on the substrate
// itself as internal/graphs does (graphs.View.EngineFor), tying the
// engine's lifetime to the substrate's.
func EngineOn(sub Substrate, rule rules.Rule) *Engine {
	if !reflect.TypeOf(sub).Comparable() || !reflect.TypeOf(rule).Comparable() {
		return NewEngineOn(sub, rule)
	}
	key := engineKey{sub: sub, rule: rule}
	if cached, ok := engineCache.Load(key); ok {
		return cached.(*Engine)
	}
	e := NewEngineOn(sub, rule)
	cached, _ := engineCache.LoadOrStore(key, e)
	return cached.(*Engine)
}

// Substrate returns the seam the engine was built over.
func (e *Engine) Substrate() Substrate { return e.sub }

// Topology returns the engine's torus topology, or nil when the engine runs
// over a non-torus substrate.
func (e *Engine) Topology() grid.Topology { return e.topo }

// Rule returns the engine's rule.
func (e *Engine) Rule() rules.Rule { return e.rule }

// runState is the recycled working set of one run: the sweep path's double
// buffers, the parallel stripe tasks with their WaitGroup and, lazily, the
// period-2 comparison buffer and the tier steppers (frontier, bitplane) —
// lazy because a run uses exactly one tier and the others' O(n) bookkeeping
// would be allocated for nothing, which FreshBuffers callers would pay on
// every run.
type runState struct {
	f *Frontier
	// cur and next are the sweep tier's double buffers, allocated lazily by
	// buffers(): only the sweep drivers touch them, and eagerly allocating
	// two O(n) colorings on every pool miss was the per-step bytes_per_op
	// the parallel benchmarks showed whenever a GC cycle dropped pool
	// entries mid-run.
	cur, next *color.Coloring
	prevPrev  *color.Coloring
	bp        *Bitplane
	shd       *Sharded
	wg        sync.WaitGroup
	stripeBuf []stripeTask
	// scratch backs the sequential generic and time-varying steppers'
	// neighbor gathering, sized to the substrate's maximum degree so
	// steady-state stepping allocates nothing.
	scratch []color.Color
}

// frontier returns the state's frontier stepper, creating it on first use.
func (st *runState) frontier(e *Engine) *Frontier {
	if st.f == nil {
		st.f = newFrontier(e)
	}
	return st.f
}

// buffers returns the sweep tier's double buffers, creating them on first
// use.
func (st *runState) buffers(e *Engine) (cur, next *color.Coloring) {
	if st.cur == nil {
		d := e.sub.Dims()
		st.cur = color.NewColoring(d, color.None)
		st.next = color.NewColoring(d, color.None)
	}
	return st.cur, st.next
}

// sharded returns the state's sharded stepper for the requested worker
// count, creating (or rebuilding, when the count differs from the previous
// run's) it on first use.
func (st *runState) sharded(e *Engine, workers int) *Sharded {
	if st.shd == nil || st.shd.requested != workers {
		st.shd = e.NewSharded(workers)
	}
	return st.shd
}

// stripes returns the pre-allocated task buffer grown to n entries; after
// the first growth, parallel steps reuse it allocation-free.
func (st *runState) stripes(n int) []stripeTask {
	if cap(st.stripeBuf) < n {
		st.stripeBuf = make([]stripeTask, n)
	}
	return st.stripeBuf[:n]
}

func (e *Engine) getState(fresh bool) *runState {
	if !fresh {
		if v := e.pool.Get(); v != nil {
			return v.(*runState)
		}
	}
	return &runState{
		scratch: make([]color.Color, 0, e.maxDeg),
	}
}

func (e *Engine) putState(st *runState, fresh bool) {
	if !fresh {
		e.pool.Put(st)
	}
}

// stepRange applies one synchronous round to vertices [lo, hi) reading from
// cur and writing to next, and returns how many of them changed.  scratch
// backs the generic path's neighbor gathering (capacity >= the substrate's
// maximum degree); the dense 4-regular path ignores it.
func (e *Engine) stepRange(cur, next []color.Color, lo, hi int, scratch []color.Color) int {
	if e.deg4 {
		return e.stepRange4(cur, next, lo, hi)
	}
	return e.stepRangeGeneric(cur, next, lo, hi, scratch)
}

// stepRange4 is the unrolled inner loop for dense 4-regular indexes — the
// hot path of every torus run, kept free of per-vertex offset loads.
func (e *Engine) stepRange4(cur, next []color.Color, lo, hi int) int {
	return e.stepRange4On(e.csr.Neighbors, cur, next, lo, hi)
}

// stepRange4On is stepRange4 over an explicit dense 4-regular neighbor
// table, the seam that lets the sharded stepper run its shard-local
// adjacency through the same unrolled loop the global sweep uses.
func (e *Engine) stepRange4On(fwd []int32, cur, next []color.Color, lo, hi int) int {
	changed := 0
	if cr := e.countRule; cr != nil {
		for v := lo; v < hi; v++ {
			base := v * grid.Degree
			var cs rules.Counts
			cs.Add(cur[fwd[base]])
			cs.Add(cur[fwd[base+1]])
			cs.Add(cur[fwd[base+2]])
			cs.Add(cur[fwd[base+3]])
			nc := cr.NextFromCounts(cur[v], cs)
			next[v] = nc
			if nc != cur[v] {
				changed++
			}
		}
		return changed
	}
	var scratch [grid.Degree]color.Color
	for v := lo; v < hi; v++ {
		base := v * grid.Degree
		scratch[0] = cur[fwd[base]]
		scratch[1] = cur[fwd[base+1]]
		scratch[2] = cur[fwd[base+2]]
		scratch[3] = cur[fwd[base+3]]
		nc := e.rule.Next(cur[v], scratch[:])
		next[v] = nc
		if nc != cur[v] {
			changed++
		}
	}
	return changed
}

// stepRangeGeneric is the variable-degree inner loop: each vertex's
// neighbors are framed by the CSR offsets, tallied through the counts fast
// path when the multiset fits a Counts vector exactly, and gathered into
// scratch for the rule's slice path otherwise.
func (e *Engine) stepRangeGeneric(cur, next []color.Color, lo, hi int, scratch []color.Color) int {
	return e.stepRangeGenericOn(e.csr.Neighbors, e.csr.Off, cur, next, lo, hi, scratch)
}

// stepRangeGenericOn is stepRangeGeneric over an explicit offset-framed
// neighbor table (the sharded stepper's local adjacency seam).
func (e *Engine) stepRangeGenericOn(fwd, off []int32, cur, next []color.Color, lo, hi int, scratch []color.Color) int {
	changed := 0
	cr := e.countRule
	for v := lo; v < hi; v++ {
		row := fwd[off[v]:off[v+1]]
		cv := cur[v]
		var nc color.Color
		fits := false
		if cr != nil {
			var cs rules.Counts
			fits = true
			for _, u := range row {
				if !cs.AddOK(cur[u]) {
					fits = false
					break
				}
			}
			if fits {
				nc = cr.NextFromCounts(cv, cs)
			}
		}
		if !fits {
			scratch = scratch[:0]
			for _, u := range row {
				scratch = append(scratch, cur[u])
			}
			nc = e.rule.Next(cv, scratch)
		}
		next[v] = nc
		if nc != cv {
			changed++
		}
	}
	return changed
}

// stepRangeTV is the time-varying inner loop: vertex v reads only the
// neighbors whose link is available this round, and applies the rule to the
// reduced multiset when at least two neighbors are reachable (with fewer it
// keeps its color).  It always uses the rule's slice path, the reference
// semantics every other path is tested against, because the reduced
// neighborhood is not the multiset CountRule implementations were verified
// on.
func (e *Engine) stepRangeTV(round int, avail Availability, cur, next []color.Color, lo, hi int, scratch []color.Color) int {
	changed := 0
	fwd, off := e.csr.Neighbors, e.csr.Off
	for v := lo; v < hi; v++ {
		scratch = scratch[:0]
		for _, u := range fwd[off[v]:off[v+1]] {
			a, b := v, int(u)
			if a > b {
				a, b = b, a
			}
			if avail.Available(round, a, b) {
				scratch = append(scratch, cur[u])
			}
		}
		cv := cur[v]
		nc := cv
		if len(scratch) >= 2 {
			nc = e.rule.Next(cv, scratch)
		}
		next[v] = nc
		if nc != cv {
			changed++
		}
	}
	return changed
}

// Step applies one synchronous round, reading from cur and writing into
// next.  It returns the number of vertices that changed color.  cur and next
// must have the engine's dimensions and must not alias.
func (e *Engine) Step(cur, next *color.Coloring) int {
	if cur.Dims() != e.sub.Dims() || next.Dims() != e.sub.Dims() {
		panic(fmt.Sprintf("sim: Step dimension mismatch (%v, %v) vs %v", cur.Dims(), next.Dims(), e.sub.Dims()))
	}
	if e.deg4 {
		return e.stepRange4(cur.Cells(), next.Cells(), 0, cur.N())
	}
	st := e.getState(false)
	defer e.putState(st, false)
	return e.stepRangeGeneric(cur.Cells(), next.Cells(), 0, cur.N(), st.scratch)
}

// Run evolves the initial coloring under the engine's rule until a stop
// condition holds.  The initial coloring is not modified.  It is RunContext
// with a background context (which can never abort the run); it panics when
// a forced Options.Kernel does not qualify, the only other error RunContext
// can produce.
func (e *Engine) Run(initial *color.Coloring, opt Options) *Result {
	res, err := e.RunContext(context.Background(), initial, opt)
	if res == nil && err != nil {
		panic(err)
	}
	return res
}

// RunContext is Run with cancellation: the context is checked at every
// round boundary, and when it is canceled (or its deadline passes) the run
// stops promptly and returns the partial Result together with ctx.Err().
// Observers do not receive OnFinish for an aborted run.
//
// On a nil error the returned Result is complete, exactly as from Run.
// The stepping tier follows Options.Kernel (see the Kernel constants for
// the automatic selection).  All tiers are bit-identical; a forced
// KernelBitplane that does not qualify returns a nil Result and an error
// wrapping ErrBitplaneIneligible.
//
// RunContext is a drain of Stream: the round loop, the stop conditions and
// the Observer plumbing are the streaming ones, so batch and streaming
// consumers cannot drift.
func (e *Engine) RunContext(ctx context.Context, initial *color.Coloring, opt Options) (*Result, error) {
	return drainStream(e.Stream(ctx, initial, opt))
}

// finish fills the terminal fields of a completed run from the final
// configuration.
func finish(res *Result, final *color.Coloring, opt Options) {
	res.Final = final.Clone()
	res.FinalColor, res.Monochromatic = res.Final.IsMonochromatic()
	if opt.Target == color.None {
		res.MonotoneTarget = false
	}
}

// finishAborted is finish for a context-canceled run (no OnFinish).
func finishAborted(res *Result, final *color.Coloring, opt Options) *Result {
	finish(res, final, opt)
	return res
}

// Run is a convenience wrapper over a process-cached engine (EngineOf), so
// repeated calls for the same topology and rule — the shape of the analysis
// sweeps — share one engine and its pooled run buffers instead of paying
// construction and warm-up allocations per call.
func Run(topo grid.Topology, rule rules.Rule, initial *color.Coloring, opt Options) *Result {
	return EngineOf(topo, rule).Run(initial, opt)
}
