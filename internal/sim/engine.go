// Package sim contains the synchronous simulation engine that evolves a
// colored torus under a local recoloring rule.
//
// The engine follows the paper's execution model (Section III.D): the system
// is synchronous, every vertex reads its neighbors' colors at time t and all
// vertices apply the rule simultaneously to produce the configuration at
// time t+1.  Three steppers produce bit-identical results:
//
//   - the sequential full sweep, the oracle every other path is tested
//     against;
//   - the striped parallel sweep (double-buffered, one contiguous stripe per
//     worker);
//   - the dirty-frontier stepper (see Frontier), which re-evaluates only the
//     vertices whose neighborhood changed in the previous round and is the
//     default for sequential runs.
//
// The engine supports fixed-point and period-2-cycle detection,
// monotonicity tracking with respect to a target color, and per-vertex
// recoloring-time traces (the data behind the paper's Figures 5 and 6).
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
)

// Options controls a simulation run.
type Options struct {
	// MaxRounds bounds the number of synchronous rounds.  Zero selects
	// DefaultMaxRounds for the topology.
	MaxRounds int
	// Parallel enables the striped parallel stepper.
	Parallel bool
	// Workers is the number of goroutines used when Parallel is set; zero
	// selects runtime.GOMAXPROCS(0).
	Workers int
	// FullSweep forces the sequential full-sweep oracle stepper instead of
	// the dirty-frontier stepper.  Results are bit-identical either way; the
	// knob exists for differential tests and for measuring the frontier's
	// speedup.  It is ignored on the parallel path, which always sweeps.
	FullSweep bool
	// FreshBuffers makes the run allocate its own working buffers instead of
	// borrowing from the engine's per-run buffer pool.  The pool is the
	// reason steady-state stepping allocates nothing across Session batch
	// runs; opting out exists for callers that hold many runs open at once
	// and would rather not grow the pool.
	FreshBuffers bool
	// Target, when non-zero, is the color whose spread is tracked: the
	// engine records per-vertex first-reach times and whether the
	// target-colored set evolved monotonically.
	Target color.Color
	// StopWhenMonochromatic stops the run as soon as every vertex has the
	// same color (the dynamo success condition).
	StopWhenMonochromatic bool
	// DetectCycles stops the run when a period-2 oscillation is detected
	// (possible under the reversible majority baselines, never under a
	// monotone dynamo).
	DetectCycles bool
	// RecordHistory keeps a copy of the configuration after every round.
	RecordHistory bool
	// Observers are notified after every round (OnRound) and when the run
	// stops on its own (OnFinish).  They replace the former Listener
	// callback; see the Observer documentation for the exact contract.
	Observers []Observer
}

// EffectiveWorkers returns the number of stepping goroutines a run with
// these options actually uses on a torus of n vertices:
//
//   - 1 when Parallel is unset (the sequential path ignores Workers);
//   - otherwise Workers (or runtime.GOMAXPROCS(0) when Workers <= 0),
//     capped at n so no goroutine gets an empty stripe, with a floor of 1.
//
// Run records this value on Result.Workers so callers can see the real
// parallelism rather than the requested one.
func (o Options) EffectiveWorkers(n int) int {
	if !o.Parallel {
		return 1
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// DefaultMaxRounds returns a generous round budget for an m×n torus, aligned
// with the paper's convergence bounds: Theorem 7 converges the toroidal mesh
// in O(max(m,n)) rounds and Theorem 8 the spiral tori in at most ~m·n/2
// rounds (the wave crosses the single spiral), so
//
//	m·n + 2·(m+n) + 16
//
// dominates every predicted convergence time with at least 2× slack.
// Non-convergence within the budget therefore means "not a dynamo", never
// "budget too small".
func DefaultMaxRounds(d grid.Dims) int { return d.N() + 2*(d.Rows+d.Cols) + 16 }

// Result describes a finished simulation run.
type Result struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Workers is the effective number of stepping goroutines used: 1 on
	// the sequential path, Options.EffectiveWorkers on the parallel path.
	Workers int
	// FixedPoint reports that the last round changed no vertex.
	FixedPoint bool
	// Cycle reports that a period-2 oscillation was detected.
	Cycle bool
	// Monochromatic reports that the final configuration is monochromatic,
	// and FinalColor carries its color.
	Monochromatic bool
	FinalColor    color.Color
	// MonotoneTarget reports that the set of Target-colored vertices never
	// lost a vertex during the run (Definition 3).  It is meaningful only
	// when Options.Target was set.
	MonotoneTarget bool
	// FirstReached[v] is the first round (0 = initially) at which vertex v
	// carried the Target color, or -1 if it never did.  Nil when
	// Options.Target was not set.
	FirstReached []int
	// ChangesPerRound[i] is the number of vertices that changed color in
	// round i+1.
	ChangesPerRound []int
	// Final is the configuration at the end of the run.
	Final *color.Coloring
	// History holds the configuration after every round when
	// Options.RecordHistory was set (History[0] is the state after round 1).
	History []*color.Coloring
}

// ReachedAll reports whether every vertex reached the target color at some
// round.
func (r *Result) ReachedAll() bool {
	if r.FirstReached == nil {
		return false
	}
	for _, t := range r.FirstReached {
		if t < 0 {
			return false
		}
	}
	return true
}

// TimesMatrix lays the FirstReached trace out as a row-major matrix, the
// form used by the paper's Figures 5 and 6.  Vertices that never reached the
// target are -1.
func (r *Result) TimesMatrix(d grid.Dims) [][]int {
	out := make([][]int, d.Rows)
	for i := range out {
		row := make([]int, d.Cols)
		for j := range row {
			if r.FirstReached == nil {
				row[j] = -1
			} else {
				row[j] = r.FirstReached[d.IndexRC(i, j)]
			}
		}
		out[i] = row
	}
	return out
}

// Engine evolves colorings over a fixed topology under a fixed rule.  Its
// configuration is immutable after construction and an Engine is safe for
// concurrent use by multiple goroutines running independent simulations; the
// only mutable state is an internal sync.Pool of per-run working buffers,
// which is what makes repeated runs (and Session batches in the public
// dynmon package) allocation-free in steady state.
type Engine struct {
	topo grid.Topology
	rule rules.Rule
	// countRule is the rule's counts-based fast path, nil when the rule does
	// not implement rules.CountRule.  Detected once here so the inner loops
	// pay no per-vertex type assertions.
	countRule rules.CountRule
	// csr is the topology's shared CSR adjacency index: the four neighbor
	// ids of vertex v occupy csr.Neighbors[4v:4v+4], and csr.Rev lists who
	// must be re-evaluated when v changes.  Built once per topology and
	// shared across engines (grid.CSROf).
	csr *grid.CSR
	// pool recycles per-run state (double buffers, frontier queues) across
	// runs.
	pool sync.Pool
}

// NewEngine builds an engine for the given topology and rule.
func NewEngine(topo grid.Topology, rule rules.Rule) *Engine {
	e := &Engine{topo: topo, rule: rule, csr: grid.CSROf(topo)}
	e.countRule, _ = rule.(rules.CountRule)
	return e
}

// Topology returns the engine's topology.
func (e *Engine) Topology() grid.Topology { return e.topo }

// Rule returns the engine's rule.
func (e *Engine) Rule() rules.Rule { return e.rule }

// runState is the recycled working set of one run: the frontier stepper
// (whose configuration doubles as the sweep path's "cur" buffer), the sweep
// path's second buffer and, lazily, the period-2 comparison buffer.
type runState struct {
	f        *Frontier
	next     *color.Coloring
	prevPrev *color.Coloring
}

func (e *Engine) getState(fresh bool) *runState {
	if !fresh {
		if v := e.pool.Get(); v != nil {
			return v.(*runState)
		}
	}
	d := e.topo.Dims()
	return &runState{
		f:    newFrontier(e),
		next: color.NewColoring(d, color.None),
	}
}

func (e *Engine) putState(st *runState, fresh bool) {
	if !fresh {
		e.pool.Put(st)
	}
}

// stepRange applies one synchronous round to vertices [lo, hi) reading from
// cur and writing to next, and returns how many of them changed.
func (e *Engine) stepRange(cur, next []color.Color, lo, hi int) int {
	changed := 0
	fwd := e.csr.Neighbors
	if cr := e.countRule; cr != nil {
		for v := lo; v < hi; v++ {
			base := v * grid.Degree
			var cs rules.Counts
			cs.Add(cur[fwd[base]])
			cs.Add(cur[fwd[base+1]])
			cs.Add(cur[fwd[base+2]])
			cs.Add(cur[fwd[base+3]])
			nc := cr.NextFromCounts(cur[v], cs)
			next[v] = nc
			if nc != cur[v] {
				changed++
			}
		}
		return changed
	}
	var scratch [grid.Degree]color.Color
	for v := lo; v < hi; v++ {
		base := v * grid.Degree
		scratch[0] = cur[fwd[base]]
		scratch[1] = cur[fwd[base+1]]
		scratch[2] = cur[fwd[base+2]]
		scratch[3] = cur[fwd[base+3]]
		nc := e.rule.Next(cur[v], scratch[:])
		next[v] = nc
		if nc != cur[v] {
			changed++
		}
	}
	return changed
}

// Step applies one synchronous round, reading from cur and writing into
// next.  It returns the number of vertices that changed color.  cur and next
// must have the engine's dimensions and must not alias.
func (e *Engine) Step(cur, next *color.Coloring) int {
	if cur.Dims() != e.topo.Dims() || next.Dims() != e.topo.Dims() {
		panic(fmt.Sprintf("sim: Step dimension mismatch (%v, %v) vs %v", cur.Dims(), next.Dims(), e.topo.Dims()))
	}
	return e.stepRange(cur.Cells(), next.Cells(), 0, cur.N())
}

// Run evolves the initial coloring under the engine's rule until a stop
// condition holds.  The initial coloring is not modified.  It is RunContext
// with a background context (which can never abort the run).
func (e *Engine) Run(initial *color.Coloring, opt Options) *Result {
	res, _ := e.RunContext(context.Background(), initial, opt)
	return res
}

// RunContext is Run with cancellation: the context is checked at every
// round boundary, and when it is canceled (or its deadline passes) the run
// stops promptly and returns the partial Result together with ctx.Err().
// Observers do not receive OnFinish for an aborted run.
//
// On a nil error the returned Result is complete, exactly as from Run.
// Sequential runs use the dirty-frontier stepper unless Options.FullSweep
// is set; parallel runs use the striped sweep.  All paths are bit-identical.
func (e *Engine) RunContext(ctx context.Context, initial *color.Coloring, opt Options) (*Result, error) {
	d := e.topo.Dims()
	if initial.Dims() != d {
		panic(fmt.Sprintf("sim: Run dimension mismatch %v vs %v", initial.Dims(), d))
	}
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds(d)
	}
	workers := opt.EffectiveWorkers(d.N())

	st := e.getState(opt.FreshBuffers)
	defer e.putState(st, opt.FreshBuffers)

	if workers == 1 && !opt.FullSweep {
		return e.runFrontier(ctx, st, initial, opt, maxRounds)
	}
	return e.runSweep(ctx, st, initial, opt, maxRounds, workers)
}

// runSweep is the full-sweep driver: the original double-buffered loop over
// all n vertices every round, sequentially or striped across workers.  It is
// the oracle the frontier path is differentially tested against.
func (e *Engine) runSweep(ctx context.Context, st *runState, initial *color.Coloring, opt Options, maxRounds, workers int) (*Result, error) {
	d := e.topo.Dims()
	cur := st.f.cfg
	cur.CopyFrom(initial)
	next := st.next
	var prevPrev *color.Coloring
	if opt.DetectCycles {
		if st.prevPrev == nil {
			st.prevPrev = color.NewColoring(d, color.None)
		}
		prevPrev = st.prevPrev
		prevPrev.CopyFrom(initial)
	}

	res := &Result{MonotoneTarget: true, Workers: workers}
	if opt.Target != color.None {
		res.FirstReached = make([]int, d.N())
		for v := 0; v < d.N(); v++ {
			if cur.At(v) == opt.Target {
				res.FirstReached[v] = 0
			} else {
				res.FirstReached[v] = -1
			}
		}
	}

	for round := 1; round <= maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return finishAborted(res, cur, opt), err
		}
		var changed int
		if workers > 1 {
			changed = e.stepParallel(cur.Cells(), next.Cells(), workers)
		} else {
			changed = e.stepRange(cur.Cells(), next.Cells(), 0, d.N())
		}
		res.Rounds = round
		res.ChangesPerRound = append(res.ChangesPerRound, changed)

		if opt.Target != color.None {
			for v := 0; v < d.N(); v++ {
				got, had := next.At(v) == opt.Target, cur.At(v) == opt.Target
				if had && !got {
					res.MonotoneTarget = false
				}
				if got && res.FirstReached[v] < 0 {
					res.FirstReached[v] = round
				}
			}
		}
		if opt.RecordHistory {
			res.History = append(res.History, next.Clone())
		}
		for _, o := range opt.Observers {
			o.OnRound(round, next)
		}

		if changed == 0 {
			res.FixedPoint = true
			cur, next = next, cur
			break
		}
		if opt.StopWhenMonochromatic {
			if _, ok := next.IsMonochromatic(); ok {
				cur, next = next, cur
				break
			}
		}
		if opt.DetectCycles {
			if next.Equal(prevPrev) {
				res.Cycle = true
				cur, next = next, cur
				break
			}
			prevPrev.CopyFrom(cur)
		}
		cur, next = next, cur
	}

	finish(res, cur, opt)
	for _, o := range opt.Observers {
		o.OnFinish(res)
	}
	return res, nil
}

// finish fills the terminal fields of a completed run from the final
// configuration.
func finish(res *Result, final *color.Coloring, opt Options) {
	res.Final = final.Clone()
	res.FinalColor, res.Monochromatic = res.Final.IsMonochromatic()
	if opt.Target == color.None {
		res.MonotoneTarget = false
	}
}

// finishAborted is finish for a context-canceled run (no OnFinish).
func finishAborted(res *Result, final *color.Coloring, opt Options) *Result {
	finish(res, final, opt)
	return res
}

// Run is a convenience wrapper constructing a throwaway engine.  Prefer
// building an Engine once when running many simulations over the same
// topology and rule.
func Run(topo grid.Topology, rule rules.Rule, initial *color.Coloring, opt Options) *Result {
	return NewEngine(topo, rule).Run(initial, opt)
}
