package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
)

// batchResultsEqual pins a sliced lane's Result byte-identical to the
// scalar run's — the JSON wire form covers every exported field including
// the kernel/downshift metadata the dynserve cache keys on, and the
// unexported prev (the checkpoint seed) is compared directly.
func batchResultsEqual(t *testing.T, label string, sliced, scalar *Result) {
	t.Helper()
	sj, err := json.Marshal(sliced)
	if err != nil {
		t.Fatal(err)
	}
	oj, err := json.Marshal(scalar)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, oj) {
		t.Fatalf("%s: results differ\nsliced: %s\nscalar: %s", label, sj, oj)
	}
	if (sliced.prev == nil) != (scalar.prev == nil) {
		t.Fatalf("%s: prev nil-ness differs (sliced %v, scalar %v)", label, sliced.prev == nil, scalar.prev == nil)
	}
	if sliced.prev != nil && !sliced.prev.Equal(scalar.prev) {
		t.Fatalf("%s: prev configurations differ", label)
	}
}

// ensembleLanes builds a 64-replica ensemble with deliberately mixed
// termination behavior: monochromatic lanes, a near-fixed-point lane and
// random two-color lanes that converge (or cycle) at different rounds.
func ensembleLanes(d grid.Dims, lanes int) []*color.Coloring {
	out := make([]*color.Coloring, lanes)
	for i := range out {
		switch i {
		case 0:
			out[i] = color.NewColoring(d, 1)
		case 1:
			out[i] = color.NewColoring(d, 2)
		case 2:
			c := color.NewColoring(d, 1)
			c.Set(0, 2)
			out[i] = c
		default:
			out[i] = randomTestColoring(uint64(100+i), d, 2)
		}
	}
	return out
}

// TestBitsliceBitIdenticalAllRulesAllTopologies is the differential oracle
// of the ensemble tier: on every registered rule × torus kind, over
// 64-lane ensembles with mixed termination rounds and an options matrix
// covering fixed points, monochromatic stops, cycle detection, target
// traces and budget exhaustion, RunBatchSliced must produce per-lane
// Results byte-identical (JSON form, metadata included) to 64 scalar
// RunContext runs.  Rule × substrate pairs without a two-color kernel are
// skipped, but the core matrix must qualify.
func TestBitsliceBitIdenticalAllRulesAllTopologies(t *testing.T) {
	sizes := [][2]int{{3, 3}, {4, 6}, {9, 9}, {3, 67}}
	options := []struct {
		name string
		opt  Options
	}{
		{"plain", Options{MaxRounds: 40}},
		{"verify", Options{MaxRounds: 40, Target: 1, StopWhenMonochromatic: true, DetectCycles: true}},
		{"budget", Options{MaxRounds: 6, Target: 2, DetectCycles: true}},
	}
	qualified, cycles, budgets := 0, 0, 0
	for _, name := range rules.RegisteredNames() {
		rule, err := rules.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range grid.Kinds() {
			for _, sz := range sizes {
				topo := grid.MustNew(kind, sz[0], sz[1])
				eng := NewEngine(topo, rule)
				lanes := ensembleLanes(topo.Dims(), 64)
				for _, tc := range options {
					label := name + "/" + topo.Name() + "/" + topo.Dims().String() + "/" + tc.name
					sliced, err := eng.RunBatchSliced(context.Background(), lanes, tc.opt)
					if err != nil {
						if errors.Is(err, ErrBitsliceIneligible) {
							continue
						}
						t.Fatalf("%s: %v", label, err)
					}
					qualified++
					for r, res := range sliced {
						scalar, err := eng.RunContext(context.Background(), lanes[r], tc.opt)
						if err != nil {
							t.Fatalf("%s: scalar lane %d: %v", label, r, err)
						}
						batchResultsEqual(t, label, res, scalar)
						if res.Cycle {
							cycles++
						}
						if !res.FixedPoint && !res.Cycle && !res.Monochromatic && res.Rounds == 6 {
							budgets++
						}
					}
				}
			}
		}
	}
	if qualified < 100 {
		t.Fatalf("only %d qualifying rule × torus × options combinations, expected the full matrix", qualified)
	}
	if cycles == 0 {
		t.Fatal("no lane terminated on a detected cycle; the matrix lost its cycle coverage")
	}
	if budgets == 0 {
		t.Fatal("no lane exhausted its round budget; the matrix lost its budget coverage")
	}
}

// circulant4 builds the 4-regular circulant C_n(1, 2) — a torus-free
// substrate that is still a dense degree-4 index, the graph-side shape of
// bitslice eligibility.
func circulant4(n int) Substrate {
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		adj[v] = []int{(v + 1) % n, (v + n - 1) % n, (v + 2) % n, (v + n - 2) % n}
	}
	return &adjSubstrate{csr: grid.BuildCSRAdj(adj)}
}

// TestBitsliceGraphDifferential runs the same oracle on a 4-regular
// non-torus substrate, where the scalar auto tier is the dirty frontier
// (no bitplane exists): sliced lanes must match it byte for byte,
// including Kernel == frontier and no downshift.
func TestBitsliceGraphDifferential(t *testing.T) {
	sub := circulant4(129)
	for _, name := range rules.RegisteredNames() {
		rule, err := rules.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngineOn(sub, rule)
		lanes := ensembleLanes(sub.Dims(), 64)
		opt := Options{Target: 1, StopWhenMonochromatic: true, DetectCycles: true}
		sliced, err := eng.RunBatchSliced(context.Background(), lanes, opt)
		if err != nil {
			if errors.Is(err, ErrBitsliceIneligible) {
				continue
			}
			t.Fatal(err)
		}
		for r, res := range sliced {
			if res.Kernel != KernelFrontier {
				t.Fatalf("%s lane %d: kernel %v, want frontier metadata on a non-torus substrate", name, r, res.Kernel)
			}
			if res.Downshift != 0 {
				t.Fatalf("%s lane %d: downshift %d recorded on a frontier-tier lane", name, r, res.Downshift)
			}
			scalar, err := eng.RunContext(context.Background(), lanes[r], opt)
			if err != nil {
				t.Fatal(err)
			}
			batchResultsEqual(t, name+"/circulant4", res, scalar)
		}
	}
}

// roundLimitCtx is a context whose Err flips to Canceled after limit calls
// — RunBatchSliced polls Err exactly once per round, so the limit is a
// deterministic "cancel before round limit+1" switch.
type roundLimitCtx struct {
	calls, limit int
}

func (c *roundLimitCtx) Err() error {
	c.calls++
	if c.calls > c.limit {
		return context.Canceled
	}
	return nil
}
func (c *roundLimitCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *roundLimitCtx) Done() <-chan struct{}       { return nil }
func (c *roundLimitCtx) Value(any) any               { return nil }

// TestBitsliceCancellationMidBatch cancels a sliced batch between rounds
// and pins the contract: lanes that already terminated keep their full
// (scalar-identical) Results, still-active lanes are nil, and the call
// returns the context error.
func TestBitsliceCancellationMidBatch(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 9, 9)
	rule, err := rules.ByName("smp")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(topo, rule)
	lanes := ensembleLanes(topo.Dims(), 64)
	opt := Options{Target: 1, StopWhenMonochromatic: true, DetectCycles: true}

	full, err := eng.RunBatchSliced(context.Background(), lanes, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel at a round where some lanes are done and some are not.
	minR, maxR := full[0].Rounds, full[0].Rounds
	for _, res := range full {
		if res.Rounds < minR {
			minR = res.Rounds
		}
		if res.Rounds > maxR {
			maxR = res.Rounds
		}
	}
	if minR == maxR {
		t.Fatalf("ensemble terminated uniformly at round %d; mixed-termination fixture broken", minR)
	}
	limit := (minR + maxR) / 2
	partial, err := eng.RunBatchSliced(&roundLimitCtx{limit: limit}, lanes, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	done, pending := 0, 0
	for r, res := range partial {
		if full[r].Rounds <= limit {
			if res == nil {
				t.Fatalf("lane %d terminated at round %d <= %d but was dropped", r, full[r].Rounds, limit)
			}
			batchResultsEqual(t, "canceled batch", res, full[r])
			done++
		} else {
			if res != nil {
				t.Fatalf("lane %d needed %d rounds but reported a result after cancellation at %d", r, full[r].Rounds, limit)
			}
			pending++
		}
	}
	if done == 0 || pending == 0 {
		t.Fatalf("cancellation split done=%d pending=%d, want both non-zero", done, pending)
	}
}

// TestBitsliceIneligible enumerates the fallback conditions: each must
// report ErrBitsliceIneligible (so Session can fall back) and leave no
// partial results.
func TestBitsliceIneligible(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 6, 6)
	smp, err := rules.ByName("smp")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(topo, smp)
	ok := ensembleLanes(topo.Dims(), 3)

	check := func(label string, initials []*color.Coloring, opt Options) {
		t.Helper()
		res, err := eng.RunBatchSliced(context.Background(), initials, opt)
		if !errors.Is(err, ErrBitsliceIneligible) {
			t.Fatalf("%s: err = %v, want ErrBitsliceIneligible", label, err)
		}
		if res != nil {
			t.Fatalf("%s: got partial results on an ineligible batch", label)
		}
	}

	check("empty", nil, Options{})
	check("too many lanes", make([]*color.Coloring, 65), Options{})
	check("forced kernel", ok, Options{Kernel: KernelSweep})
	check("parallel", ok, Options{Parallel: true})
	check("full sweep", ok, Options{FullSweep: true})
	check("record history", ok, Options{RecordHistory: true})
	threeColors := []*color.Coloring{randomTestColoring(1, topo.Dims(), 3)}
	check("colors outside {1,2}", threeColors, Options{})

	// A rule without a word-parallel form has no sliced tier at all.
	genSMP, err := rules.ByName("generalized-smp")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := genSMP.(rules.BitRule); ok {
		t.Fatal("fixture stale: generalized-smp now ships a BitRule; pick another ineligible rule")
	}
	genEng := NewEngine(topo, genSMP)
	if _, err := genEng.RunBatchSliced(context.Background(), ok, Options{}); !errors.Is(err, ErrBitsliceIneligible) {
		t.Fatalf("rule without kernels: err = %v, want ErrBitsliceIneligible", err)
	}
}

// TestBitsliceStepAllocs pins the steady-state sliced step allocation-free,
// with every bookkeeping feature (cycle detection, target tracing) enabled.
func TestBitsliceStepAllocs(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 32, 32)
	rule, err := rules.ByName("smp")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(topo, rule)
	bs, err := eng.NewBitslice(ensembleLanes(topo.Dims(), 64))
	if err != nil {
		t.Fatal(err)
	}
	bs.DetectCycles(true)
	bs.setTarget(1)
	for r := 0; r < bs.Lanes(); r++ {
		bs.first[r] = make([]int, topo.Dims().N())
	}
	if allocs := testing.AllocsPerRun(50, bs.Step); allocs != 0 {
		t.Fatalf("Bitslice.Step allocates %.1f objects per round, want 0", allocs)
	}
}
