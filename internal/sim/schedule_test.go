package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
)

// stochasticCases enumerates every schedule × noise combination the spec
// layer can express, for the round-trip and determinism sweeps.
func stochasticCases() []struct {
	name  string
	sched *Schedule
	noise *Noise
} {
	return []struct {
		name  string
		sched *Schedule
		noise *Noise
	}{
		{"sync+noise", nil, &Noise{Eps: 0.1, Colors: 4, Seed: 11}},
		{"uniform-async", &Schedule{Kind: ScheduleUniformAsync, P: 0.5, Seed: 7}, nil},
		{"uniform-async+noise", &Schedule{Kind: ScheduleUniformAsync, P: 0.7, Seed: 7}, &Noise{Eps: 0.05, Colors: 4, Seed: 13}},
		{"sequential", &Schedule{Kind: ScheduleSequential}, nil},
		{"sequential+noise", &Schedule{Kind: ScheduleSequential}, &Noise{Eps: 0.02, Colors: 4, Seed: 3}},
		{"random-sequential", &Schedule{Kind: ScheduleRandomSequential, Seed: 21}, nil},
		{"random-sequential+noise", &Schedule{Kind: ScheduleRandomSequential, Seed: 21}, &Noise{Eps: 0.02, Colors: 4, Seed: 5}},
		{"vertex-clock", &Schedule{Kind: ScheduleVertexClock, Period: 3, Seed: 9}, nil},
		{"vertex-clock+noise", &Schedule{Kind: ScheduleVertexClock, Period: 3, Seed: 9}, &Noise{Eps: 0.03, Colors: 4, Seed: 17}},
	}
}

// TestScheduleSequentialMatchesRunAsync pins the sequential schedules
// against the standalone RunAsync oracle: the tiered driver must reproduce
// the oracle's trajectory sweep for sweep, for both activation orders.
func TestScheduleSequentialMatchesRunAsync(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 12, 12)
	eng := NewEngine(topo, rules.SMP{})
	cases := []struct {
		name  string
		kind  ScheduleKind
		order AsyncOrder
		seed  uint64
	}{
		{"raster", ScheduleSequential, AsyncRaster, 0},
		{"random", ScheduleRandomSequential, AsyncRandom, 42},
	}
	for _, c := range cases {
		for _, initSeed := range []uint64{1, 2, 3} {
			initial := randomColoring(initSeed, 12, 12, 4)
			oracle := eng.RunAsync(initial, AsyncOptions{Order: c.order, Seed: c.seed, StopWhenMonochromatic: true})
			res := eng.Run(initial, Options{
				Schedule:              &Schedule{Kind: c.kind, Seed: c.seed},
				StopWhenMonochromatic: true,
			})
			if !res.Final.Equal(oracle.Final) {
				t.Fatalf("%s seed %d: schedule driver and RunAsync oracle diverged", c.name, initSeed)
			}
			if res.Rounds != oracle.Sweeps {
				t.Fatalf("%s seed %d: driver took %d rounds, oracle %d sweeps", c.name, initSeed, res.Rounds, oracle.Sweeps)
			}
			if res.FixedPoint != oracle.FixedPoint || res.Monochromatic != oracle.Monochromatic {
				t.Fatalf("%s seed %d: verdicts diverged: %+v vs %+v", c.name, initSeed, res, oracle)
			}
		}
	}
}

// TestStochasticWorkerIndependence pins the core determinism contract: the
// same seeds produce bit-identical results whatever the worker count or
// forced scalar kernel, because every random draw is counter-based.
func TestStochasticWorkerIndependence(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 24, 24)
	eng := NewEngine(topo, rules.SMP{})
	for _, c := range stochasticCases() {
		if c.sched != nil && c.sched.inPlace() {
			continue // pinned to one worker by contract
		}
		initial := randomColoring(5, 24, 24, 4)
		base := eng.Run(initial, Options{
			Schedule: c.sched, Noise: c.noise, MaxRounds: 40, Target: 1,
		})
		variants := []Options{
			{Schedule: c.sched, Noise: c.noise, MaxRounds: 40, Target: 1, Parallel: true, Workers: 4},
			{Schedule: c.sched, Noise: c.noise, MaxRounds: 40, Target: 1, Kernel: KernelParallel, Workers: 3},
			{Schedule: c.sched, Noise: c.noise, MaxRounds: 40, Target: 1, Kernel: KernelSweep},
		}
		for i, opt := range variants {
			got := eng.Run(initial, opt)
			if !got.Final.Equal(base.Final) {
				t.Fatalf("%s variant %d: final configuration diverged", c.name, i)
			}
			if !reflect.DeepEqual(got.ChangesPerRound, base.ChangesPerRound) {
				t.Fatalf("%s variant %d: change trace diverged", c.name, i)
			}
			if !reflect.DeepEqual(got.FirstReached, base.FirstReached) || got.MonotoneTarget != base.MonotoneTarget {
				t.Fatalf("%s variant %d: target trace diverged", c.name, i)
			}
		}
	}
}

// TestStochasticCheckpointResume proves stochastic runs resume
// bit-identically: for every schedule × noise case, a run checkpointed at an
// interior round and resumed equals the uninterrupted run.
func TestStochasticCheckpointResume(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 16, 16)
	eng := NewEngine(topo, rules.SMP{})
	for _, c := range stochasticCases() {
		initial := randomColoring(9, 16, 16, 4)
		opt := Options{Schedule: c.sched, Noise: c.noise, MaxRounds: 30, Target: 1, DetectCycles: true}
		full, err := eng.RunContext(context.Background(), initial, opt)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if full.Rounds < 4 {
			t.Fatalf("%s: run too short (%d rounds) to checkpoint mid-way", c.name, full.Rounds)
		}
		cutAt := full.Rounds / 2
		var cp *Resume
		for st, err := range eng.Stream(context.Background(), initial, opt) {
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			if st.Round == cutAt {
				cp = st.Checkpoint()
				break
			}
		}
		if cp == nil {
			t.Fatalf("%s: never reached round %d", c.name, cutAt)
		}
		resumed, err := eng.ResumeContext(context.Background(), cp, opt)
		if err != nil {
			t.Fatalf("%s: resume: %v", c.name, err)
		}
		if !resumed.Final.Equal(full.Final) {
			t.Fatalf("%s: resumed final diverged from uninterrupted run", c.name)
		}
		if resumed.Rounds != full.Rounds || !reflect.DeepEqual(resumed.ChangesPerRound, full.ChangesPerRound) {
			t.Fatalf("%s: resumed trace diverged: %d/%v vs %d/%v", c.name, resumed.Rounds, resumed.ChangesPerRound, full.Rounds, full.ChangesPerRound)
		}
		if !reflect.DeepEqual(resumed.FirstReached, full.FirstReached) || resumed.MonotoneTarget != full.MonotoneTarget {
			t.Fatalf("%s: resumed target trace diverged", c.name)
		}
	}
}

// TestStochasticKernelGating pins the sweep-only contract: incremental,
// sharded and (for in-place schedules) striped kernels are rejected with
// ErrStochasticSweepOnly.
func TestStochasticKernelGating(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 8, 8)
	eng := NewEngine(topo, rules.SMP{})
	initial := randomColoring(1, 8, 8, 2)
	sched := &Schedule{Kind: ScheduleUniformAsync, Seed: 1}
	for _, k := range []Kernel{KernelBitplane, KernelFrontier, KernelSharded} {
		if _, err := eng.RunContext(context.Background(), initial, Options{Schedule: sched, Kernel: k}); !errors.Is(err, ErrStochasticSweepOnly) {
			t.Fatalf("kernel %v with schedule: err = %v, want ErrStochasticSweepOnly", k, err)
		}
		if _, err := eng.RunContext(context.Background(), initial, Options{Noise: &Noise{Eps: 0.1, Colors: 2}, Kernel: k}); !errors.Is(err, ErrStochasticSweepOnly) {
			t.Fatalf("kernel %v with noise: err = %v, want ErrStochasticSweepOnly", k, err)
		}
	}
	if _, err := eng.RunContext(context.Background(), initial, Options{Schedule: &Schedule{Kind: ScheduleSequential}, Kernel: KernelParallel}); !errors.Is(err, ErrStochasticSweepOnly) {
		t.Fatalf("parallel sequential: err = %v, want ErrStochasticSweepOnly", err)
	}
	if _, err := eng.RunContext(context.Background(), initial, Options{Schedule: sched, TimeVarying: alwaysAvailable{}}); !errors.Is(err, ErrStochasticSweepOnly) {
		t.Fatalf("schedule+TV: err = %v, want ErrStochasticSweepOnly", err)
	}
}

type alwaysAvailable struct{}

func (alwaysAvailable) Available(round, u, v int) bool { return true }

// TestStochasticParamValidation rejects out-of-range schedule and noise
// parameters before any stepping happens.
func TestStochasticParamValidation(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 4, 4)
	eng := NewEngine(topo, rules.SMP{})
	initial := randomColoring(1, 4, 4, 2)
	bad := []Options{
		{Schedule: &Schedule{Kind: ScheduleUniformAsync, P: 1.5}},
		{Schedule: &Schedule{Kind: ScheduleUniformAsync, P: -0.2}},
		{Schedule: &Schedule{Kind: ScheduleVertexClock, Period: -1}},
		{Schedule: &Schedule{Kind: ScheduleKind(99)}},
		{Noise: &Noise{Eps: 1.5, Colors: 2}},
		{Noise: &Noise{Eps: -0.5, Colors: 2}},
		{Noise: &Noise{Eps: 0.5, Colors: 0}},
	}
	for i, opt := range bad {
		if _, err := eng.RunContext(context.Background(), initial, opt); err == nil {
			t.Fatalf("case %d: invalid options %+v accepted", i, opt)
		}
	}
	// A nil-equivalent stochastic configuration stays on the deterministic
	// tiers: Eps == 0 noise and a synchronous schedule are inert.
	res := eng.Run(initial, Options{Schedule: &Schedule{}, Noise: &Noise{Eps: 0}})
	plain := eng.Run(initial, Options{})
	if !res.Final.Equal(plain.Final) || res.Kernel != plain.Kernel {
		t.Fatalf("inert stochastic options changed the run: %+v vs %+v", res, plain)
	}
}

// TestUniformAsyncFullProbabilityMatchesSynchronous checks the degenerate
// mask: P = 1 activates every vertex every round, reproducing the
// synchronous trajectory exactly (and keeping fixed-point stops).
func TestUniformAsyncFullProbabilityMatchesSynchronous(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 10, 10)
	eng := NewEngine(topo, rules.SMP{})
	initial := crossColoring(10, 10, 1)
	sync := eng.Run(initial, Options{Kernel: KernelSweep})
	async := eng.Run(initial, Options{Schedule: &Schedule{Kind: ScheduleUniformAsync, P: 1, Seed: 3}})
	if !async.Final.Equal(sync.Final) || async.Rounds != sync.Rounds || !async.FixedPoint {
		t.Fatalf("P=1 uniform-async diverged from synchronous: %d rounds vs %d", async.Rounds, sync.Rounds)
	}
}

// TestNoisyRunDoesNotStopOnQuietRound: with Eps > 0 a zero-change round is
// not a fixed point — the run must keep going to its budget (or a
// monochromatic stop) because a later fault can reignite the dynamics.
func TestNoisyRunDoesNotStopOnQuietRound(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 6, 6)
	eng := NewEngine(topo, rules.SMP{})
	// An all-1 configuration is a fixed point of SMP; under noise the run
	// must still burn its full budget.
	initial := randomColoring(1, 6, 6, 1)
	res := eng.Run(initial, Options{Noise: &Noise{Eps: 0.2, Colors: 2, Seed: 5}, MaxRounds: 25})
	if res.FixedPoint {
		t.Fatal("noisy run reported a fixed point")
	}
	if res.Rounds != 25 {
		t.Fatalf("noisy run stopped after %d rounds, want the full 25", res.Rounds)
	}
	changedEver := 0
	for _, c := range res.ChangesPerRound {
		changedEver += c
	}
	if changedEver == 0 {
		t.Fatal("eps=0.2 noise never flipped a vertex in 25 rounds of 36 cells")
	}
}

// TestVertexClockPeriodsCoverRange checks the clock derivation: over many
// vertices all periods {1..Period} and phases occur, and a vertex fires
// exactly once per period.
func TestVertexClockPeriodsCoverRange(t *testing.T) {
	s := Schedule{Kind: ScheduleVertexClock, Period: 4, Seed: 2}
	periods := map[int]bool{}
	for v := uint64(0); v < 256; v++ {
		fires := []uint64{}
		for round := uint64(1); round <= 24; round++ {
			if s.active(round, v) {
				fires = append(fires, round)
			}
		}
		if len(fires) == 0 {
			t.Fatalf("vertex %d never fired in 24 rounds under period cap 4", v)
		}
		// Consecutive firings are equally spaced: the vertex has a fixed
		// period in {1..4}.
		if len(fires) >= 2 {
			period := int(fires[1] - fires[0])
			if period < 1 || period > 4 {
				t.Fatalf("vertex %d fired with period %d outside {1..4}", v, period)
			}
			for i := 2; i < len(fires); i++ {
				if int(fires[i]-fires[i-1]) != period {
					t.Fatalf("vertex %d firing intervals are irregular: %v", v, fires)
				}
			}
			periods[period] = true
		}
	}
	for p := 1; p <= 4; p++ {
		if !periods[p] {
			t.Fatalf("no vertex drew period %d", p)
		}
	}
}

// TestStochasticBatchFallsBackFromBitslice: the bit-sliced batch tier has no
// stochastic form, so eligibility must reject stochastic options.
func TestStochasticBatchFallsBackFromBitslice(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 8, 8)
	eng := NewEngine(topo, rules.SMP{})
	initials := []*color.Coloring{randomColoring(1, 8, 8, 2), randomColoring(2, 8, 8, 2)}
	if _, err := eng.RunBatchSliced(context.Background(), initials, Options{Schedule: &Schedule{Kind: ScheduleUniformAsync}}); !errors.Is(err, ErrBitsliceIneligible) {
		t.Fatalf("schedule: err = %v, want ErrBitsliceIneligible", err)
	}
	if _, err := eng.RunBatchSliced(context.Background(), initials, Options{Noise: &Noise{Eps: 0.1, Colors: 2}}); !errors.Is(err, ErrBitsliceIneligible) {
		t.Fatalf("noise: err = %v, want ErrBitsliceIneligible", err)
	}
}

// TestParseScheduleKindRoundTrip pins the wire names.
func TestParseScheduleKindRoundTrip(t *testing.T) {
	for _, k := range []ScheduleKind{ScheduleSynchronous, ScheduleUniformAsync, ScheduleSequential, ScheduleRandomSequential, ScheduleVertexClock} {
		got, err := ParseScheduleKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round-trip of %v: got %v, %v", k, got, err)
		}
	}
	if k, err := ParseScheduleKind(""); err != nil || k != ScheduleSynchronous {
		t.Fatalf("empty name: %v, %v", k, err)
	}
	if _, err := ParseScheduleKind("bogus"); err == nil {
		t.Fatal("bogus schedule name accepted")
	}
}
