package sim

import (
	"errors"
	"fmt"

	"repro/internal/color"
	"repro/internal/rng"
	"repro/internal/rules"
)

// ErrStochasticSweepOnly is the error (wrapped) returned by stochastic runs —
// a non-synchronous Schedule or an active Noise — that force an incremental
// or batch kernel.  The frontier and bitplane tiers assume a vertex can only
// change when a neighbor changed color in the previous round; under a masked
// schedule a skipped vertex must still be re-evaluated when its clock fires,
// and under noise any vertex can misfire at any round.  The sharded tier
// steps shard-local vertex ids, but schedule masks and fault draws are keyed
// by global ids.  Stochastic runs always sweep every vertex every round (or
// every vertex once per sweep, for the sequential schedules).
var ErrStochasticSweepOnly = errors.New("sim: stochastic runs require full-sweep semantics")

// ScheduleKind identifies an update discipline of the engine.
type ScheduleKind int

const (
	// ScheduleSynchronous is the paper's execution model and the default:
	// every vertex applies the rule every round, all simultaneously.
	ScheduleSynchronous ScheduleKind = iota
	// ScheduleUniformAsync activates each vertex independently with
	// probability P each round (the α-asynchronous model): active vertices
	// apply the rule simultaneously to the previous configuration, inactive
	// vertices keep their color.
	ScheduleUniformAsync
	// ScheduleSequential visits every vertex once per round in raster order,
	// committing each new color immediately so later vertices observe earlier
	// updates — the fold-in of the former RunAsync(AsyncRaster) loop.
	ScheduleSequential
	// ScheduleRandomSequential is ScheduleSequential with a fresh seeded
	// permutation each round (the former RunAsync(AsyncRandom) loop).
	ScheduleRandomSequential
	// ScheduleVertexClock gives each vertex its own deterministic clock: a
	// per-vertex period in {1..Period} and phase, both derived from Seed, and
	// the vertex applies the rule only on rounds matching its phase.  It
	// models heterogeneous update rates without any shared clock.
	ScheduleVertexClock
)

// String returns the schedule name used in specs and experiment tables.
func (k ScheduleKind) String() string {
	switch k {
	case ScheduleSynchronous:
		return "synchronous"
	case ScheduleUniformAsync:
		return "uniform-async"
	case ScheduleSequential:
		return "sequential"
	case ScheduleRandomSequential:
		return "random-sequential"
	case ScheduleVertexClock:
		return "vertex-clock"
	default:
		return fmt.Sprintf("ScheduleKind(%d)", int(k))
	}
}

// ParseScheduleKind resolves a schedule name ("" means synchronous), the
// inverse of String.
func ParseScheduleKind(name string) (ScheduleKind, error) {
	switch name {
	case "", "synchronous":
		return ScheduleSynchronous, nil
	case "uniform-async":
		return ScheduleUniformAsync, nil
	case "sequential":
		return ScheduleSequential, nil
	case "random-sequential":
		return ScheduleRandomSequential, nil
	case "vertex-clock":
		return ScheduleVertexClock, nil
	default:
		return ScheduleSynchronous, fmt.Errorf("sim: unknown schedule %q (want synchronous, uniform-async, sequential, random-sequential or vertex-clock)", name)
	}
}

// Schedule selects the update discipline of a run (Options.Schedule).  All
// randomness is counter-based — pure rng.Hash functions of (Seed, round,
// vertex) — so a schedule carries no mutable state: the same seed produces
// the same activation pattern under any worker count, any kernel tier and
// across any checkpoint/resume boundary.
type Schedule struct {
	// Kind is the update discipline; the zero value is synchronous.
	Kind ScheduleKind
	// P is the per-round activation probability of ScheduleUniformAsync, in
	// (0, 1]; zero selects the default 0.5.  Other kinds ignore it.
	P float64
	// Period bounds the per-vertex period of ScheduleVertexClock (each vertex
	// draws a period in {1..Period}); zero selects the default 4.  Other
	// kinds ignore it.
	Period int
	// Seed selects the activation stream (and the sweep permutations of
	// ScheduleRandomSequential).
	Seed uint64
}

// normalized returns the schedule with defaults filled in.
func (s Schedule) normalized() Schedule {
	if s.Kind == ScheduleUniformAsync && s.P == 0 {
		s.P = 0.5
	}
	if s.Kind == ScheduleVertexClock && s.Period == 0 {
		s.Period = 4
	}
	return s
}

// validate checks a normalized schedule.
func (s Schedule) validate() error {
	switch s.Kind {
	case ScheduleSynchronous, ScheduleSequential, ScheduleRandomSequential:
	case ScheduleUniformAsync:
		if s.P <= 0 || s.P > 1 {
			return fmt.Errorf("sim: uniform-async activation probability %v outside (0, 1]", s.P)
		}
	case ScheduleVertexClock:
		if s.Period < 1 {
			return fmt.Errorf("sim: vertex-clock period %d < 1", s.Period)
		}
	default:
		return fmt.Errorf("sim: unknown schedule kind %d", int(s.Kind))
	}
	return nil
}

// inPlace reports whether the schedule commits updates within a sweep
// (sequential kinds), which pins the run to one worker.
func (s Schedule) inPlace() bool {
	return s.Kind == ScheduleSequential || s.Kind == ScheduleRandomSequential
}

// active reports whether vertex v applies the rule in the given round under
// a masked (non-sequential) schedule.  It is a pure function of
// (Seed, round, v); see the Schedule documentation.
func (s *Schedule) active(round, v uint64) bool {
	switch s.Kind {
	case ScheduleUniformAsync:
		return rng.Unit(rng.Hash(s.Seed, round, v)) < s.P
	case ScheduleVertexClock:
		h := rng.Hash(s.Seed, v)
		period := 1 + h%uint64(s.Period)
		phase := (h >> 32) % period
		return round%period == phase
	default:
		return true
	}
}

// Noise makes every rule application ε-faulty (Options.Noise): with
// probability Eps the computed color is replaced by a uniform draw from the
// palette {1..Colors}.  The draw is rules.FaultDraw — counter-based on
// (Seed, round, vertex) — so a noisy run is exactly as reproducible as a
// deterministic one.
type Noise struct {
	// Eps is the per-application fault probability in [0, 1]; zero disables
	// the noise entirely.
	Eps float64
	// Colors is the palette size faulted applications draw from.
	Colors int
	// Seed selects the fault stream.
	Seed uint64
}

// validate checks an active noise model.
func (n Noise) validate() error {
	if n.Eps < 0 || n.Eps > 1 {
		return fmt.Errorf("sim: noise eps %v outside [0, 1]", n.Eps)
	}
	if n.Eps > 0 && n.Colors < 1 {
		return fmt.Errorf("sim: noise over a %d-color palette", n.Colors)
	}
	return nil
}

// stochasticParams normalizes and validates the run's Schedule and Noise
// options.  It returns (nil, nil, nil) for a plain deterministic synchronous
// run; otherwise sched is the normalized schedule (synchronous when only
// noise is present) and noise is non-nil only when Eps > 0.
func (o Options) stochasticParams() (*Schedule, *Noise, error) {
	var sched Schedule
	if o.Schedule != nil {
		sched = o.Schedule.normalized()
		if err := sched.validate(); err != nil {
			return nil, nil, err
		}
	}
	var noise *Noise
	if o.Noise != nil {
		if err := o.Noise.validate(); err != nil {
			return nil, nil, err
		}
		if o.Noise.Eps > 0 {
			n := *o.Noise
			noise = &n
		}
	}
	if sched.Kind == ScheduleSynchronous && noise == nil {
		return nil, nil, nil
	}
	return &sched, noise, nil
}

// stepRangeStochastic is the masked stochastic inner loop: vertex v applies
// the rule only when the schedule activates it this round (keeping its color
// otherwise), and the computed color passes through the ε-fault draw when
// noise is active.  Reads come from cur, writes go to next, so stripes
// parallelize exactly like the synchronous sweep; all randomness is
// counter-based, making the result independent of the stripe partition.
func (e *Engine) stepRangeStochastic(round int, sched *Schedule, noise *Noise, cur, next []color.Color, lo, hi int, scratch []color.Color) int {
	fwd, off := e.csr.Neighbors, e.csr.Off
	cr := e.countRule
	r := uint64(round)
	changed := 0
	for v := lo; v < hi; v++ {
		cv := cur[v]
		if !sched.active(r, uint64(v)) {
			next[v] = cv
			continue
		}
		nc := e.nextColor(cr, fwd, off, cur, v, cv, &scratch)
		if noise != nil {
			nc = rules.FaultDraw(noise.Seed, r, uint64(v), noise.Eps, noise.Colors, nc)
		}
		next[v] = nc
		if nc != cv {
			changed++
		}
	}
	return changed
}

// nextColor computes one rule application over the CSR row of v: the counts
// fast path when the neighborhood fits a Counts vector exactly, the rule's
// slice path otherwise.  scratch is passed by pointer so growth survives for
// the caller's next vertex.
func (e *Engine) nextColor(cr rules.CountRule, fwd, off []int32, cells []color.Color, v int, cv color.Color, scratch *[]color.Color) color.Color {
	row := fwd[off[v]:off[v+1]]
	if cr != nil {
		var cs rules.Counts
		fits := true
		for _, u := range row {
			if !cs.AddOK(cells[u]) {
				fits = false
				break
			}
		}
		if fits {
			return cr.NextFromCounts(cv, cs)
		}
	}
	s := (*scratch)[:0]
	for _, u := range row {
		s = append(s, cells[u])
	}
	*scratch = s
	return e.rule.Next(cv, s)
}

// stepParallelStochastic is stepRangeStochastic striped across workers,
// bit-identical to the sequential form because schedule masks and fault
// draws are pure functions of (round, vertex).
func (e *Engine) stepParallelStochastic(round int, sched *Schedule, noise *Noise, cur, next []color.Color, workers int, st *runState) int {
	n := len(cur)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return e.stepRangeStochastic(round, sched, noise, cur, next, 0, n, st.scratch)
	}
	done := st.stripeAcross(n, workers, func(t *stripeTask, lo, hi int) {
		*t = stripeTask{run: runStochasticTask, wg: &st.wg, e: e, cur: cur, next: next, lo: lo, hi: hi, round: round, sched: sched, noise: noise}
	})
	total := 0
	for i := range done {
		total += done[i].changed
	}
	return total
}

// stochasticDriver is the stochastic tier behind drive: masked schedules run
// the double-buffered sweep with a per-(round, vertex) activation mask, and
// the sequential schedules run the in-place sweep (each vertex commits
// immediately).  Either way every random draw is counter-based, so the
// driver carries no generator state and a resumed run continues
// bit-identically from just (configuration, round).
type stochasticDriver struct {
	e         *Engine
	st        *runState
	cur, next *color.Coloring
	sched     Schedule
	noise     *Noise
	workers   int
	// order is the sequential kinds' sweep-order buffer, identity for raster
	// and a per-round derived permutation for random-sequential.
	order []int
	// prevPrev backs period-2 cycle detection, maintained only for the
	// deterministic raster-sequential noise-free case (every other stochastic
	// run makes the verdict meaningless).
	prevPrev  *color.Coloring
	cycleFlag bool
	stepped   bool
	seedPrev  *color.Coloring
}

func (e *Engine) newStochasticDriver(st *runState, initial *color.Coloring, opt Options, sched *Schedule, noise *Noise, workers int, rs *Resume) *stochasticDriver {
	cur, next := st.buffers(e)
	d := &stochasticDriver{e: e, st: st, cur: cur, next: next, sched: *sched, noise: noise, workers: workers}
	d.cur.CopyFrom(initial)
	if opt.DetectCycles && sched.Kind == ScheduleSequential && noise == nil {
		if st.prevPrev == nil {
			st.prevPrev = color.NewColoring(e.sub.Dims(), color.None)
		}
		d.prevPrev = st.prevPrev
		if rs != nil && rs.Prev != nil {
			d.prevPrev.CopyFrom(rs.Prev)
		} else {
			d.prevPrev.CopyFrom(initial)
		}
	}
	if rs != nil && rs.Prev != nil {
		d.seedPrev = rs.Prev
	}
	return d
}

func (d *stochasticDriver) stepRound(round int, res *Result, opt Options) int {
	if d.sched.inPlace() {
		return d.stepSweepInPlace(round, res, opt)
	}
	e, st := d.e, d.st
	cur, next := d.cur, d.next
	var changed int
	if d.workers > 1 {
		changed = e.stepParallelStochastic(round, &d.sched, d.noise, cur.Cells(), next.Cells(), d.workers, st)
	} else {
		changed = e.stepRangeStochastic(round, &d.sched, d.noise, cur.Cells(), next.Cells(), 0, cur.N(), st.scratch)
	}
	if opt.Target != color.None {
		for v, n := 0, cur.N(); v < n; v++ {
			got, had := next.At(v) == opt.Target, cur.At(v) == opt.Target
			if had && !got {
				res.MonotoneTarget = false
			}
			if got && res.FirstReached[v] < 0 {
				res.FirstReached[v] = round
			}
		}
	}
	d.cur, d.next = next, cur
	d.stepped = true
	return changed
}

// stepSweepInPlace runs one sequential sweep: the configuration before the
// sweep is snapshotted into the spare buffer (it becomes prevConfig), then
// each vertex in this round's order recomputes its color against the live
// cells so later vertices observe earlier commits.
func (d *stochasticDriver) stepSweepInPlace(round int, res *Result, opt Options) int {
	e := d.e
	cells := d.cur.Cells()
	n := len(cells)
	d.next.CopyFrom(d.cur)
	fwd, off := e.csr.Neighbors, e.csr.Off
	cr := e.countRule
	scratch := d.st.scratch
	r := uint64(round)
	changed := 0
	step := func(v int) {
		cv := cells[v]
		nc := e.nextColor(cr, fwd, off, cells, v, cv, &scratch)
		if d.noise != nil {
			nc = rules.FaultDraw(d.noise.Seed, r, uint64(v), d.noise.Eps, d.noise.Colors, nc)
		}
		if nc == cv {
			return
		}
		cells[v] = nc
		changed++
		if opt.Target != color.None {
			if cv == opt.Target {
				res.MonotoneTarget = false
			}
			if nc == opt.Target && res.FirstReached[v] < 0 {
				res.FirstReached[v] = round
			}
		}
	}
	if d.sched.Kind == ScheduleRandomSequential {
		for _, v := range d.orderFor(r, n) {
			step(v)
		}
	} else {
		for v := 0; v < n; v++ {
			step(v)
		}
	}
	d.st.scratch = scratch
	if d.prevPrev != nil {
		d.cycleFlag = d.cur.Equal(d.prevPrev)
		d.prevPrev.CopyFrom(d.next)
	}
	d.stepped = true
	return changed
}

// orderFor returns this round's sweep permutation, derived statelessly from
// (Seed, round) so any resumed run replays the identical order.
func (d *stochasticDriver) orderFor(round uint64, n int) []int {
	if cap(d.order) < n {
		d.order = make([]int, n)
	}
	order := d.order[:n]
	for i := range order {
		order[i] = i
	}
	src := rng.New(rng.Hash(d.sched.Seed, round))
	src.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

func (d *stochasticDriver) config() *color.Coloring { return d.cur }

func (d *stochasticDriver) prevConfig() *color.Coloring {
	if !d.stepped {
		if d.seedPrev != nil {
			return d.seedPrev.Clone()
		}
		return nil
	}
	// Both paths leave the previous configuration in the spare buffer: the
	// masked path by the double-buffer swap, the in-place path by the
	// pre-sweep snapshot.
	return d.next.Clone()
}

func (d *stochasticDriver) mono() bool {
	_, ok := d.cur.IsMonochromatic()
	return ok
}

func (d *stochasticDriver) cycle() bool { return d.prevPrev != nil && d.cycleFlag }

func (d *stochasticDriver) downshift(int, int, int, *Result) runDriver { return nil }
