package sim

import (
	"testing"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
)

func TestRunAsyncRasterConvergesOnCross(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 7, 7)
	eng := NewEngine(topo, rules.SMP{})
	res := eng.RunAsync(crossColoring(7, 7, 1), AsyncOptions{Order: AsyncRaster, StopWhenMonochromatic: true})
	if !res.Monochromatic || res.FinalColor != 1 {
		t.Fatalf("async raster run should converge to color 1: %+v", res)
	}
	// In-place raster sweeps propagate information faster than synchronous
	// rounds, never slower.
	sync := eng.Run(crossColoring(7, 7, 1), Options{StopWhenMonochromatic: true})
	if res.Sweeps > sync.Rounds {
		t.Errorf("async took %d sweeps, synchronous %d rounds", res.Sweeps, sync.Rounds)
	}
}

func TestRunAsyncRandomOrderDeterministicWithSeed(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 6, 6)
	eng := NewEngine(topo, rules.SMP{})
	init := randomColoring(3, 6, 6, 4)
	a := eng.RunAsync(init, AsyncOptions{Order: AsyncRandom, Source: rng.New(5), StopWhenMonochromatic: true})
	b := eng.RunAsync(init, AsyncOptions{Order: AsyncRandom, Source: rng.New(5), StopWhenMonochromatic: true})
	if !a.Final.Equal(b.Final) || a.Sweeps != b.Sweeps {
		t.Error("same seed must give identical async runs")
	}
}

func TestRunAsyncRandomWithoutSourceUsesDefault(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	eng := NewEngine(topo, rules.SMP{})
	res := eng.RunAsync(crossColoring(5, 5, 1), AsyncOptions{Order: AsyncRandom})
	if res.Sweeps == 0 {
		t.Error("async run with default source did nothing")
	}
}

func TestRunAsyncReachesFixedPointOnBlockedConfiguration(t *testing.T) {
	c := color.NewColoring(grid.MustDims(6, 6), 1)
	c.SetRC(2, 2, 2)
	c.SetRC(2, 3, 2)
	c.SetRC(3, 2, 2)
	c.SetRC(3, 3, 2)
	topo := grid.MustNew(grid.KindToroidalMesh, 6, 6)
	res := NewEngine(topo, rules.SMP{}).RunAsync(c, AsyncOptions{Order: AsyncRaster})
	if !res.FixedPoint {
		t.Fatal("expected fixed point")
	}
	if res.Monochromatic {
		t.Error("blocked configuration must not become monochromatic")
	}
}

func TestRunAsyncDoesNotModifyInitial(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	init := crossColoring(5, 5, 1)
	snap := init.Clone()
	NewEngine(topo, rules.SMP{}).RunAsync(init, AsyncOptions{Order: AsyncRaster})
	if !init.Equal(snap) {
		t.Error("RunAsync must not modify the initial coloring")
	}
}

func TestRunAsyncMaxSweeps(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 9, 9)
	res := NewEngine(topo, rules.SMP{}).RunAsync(crossColoring(9, 9, 1), AsyncOptions{MaxSweeps: 1, Order: AsyncRaster})
	if res.Sweeps != 1 {
		t.Errorf("sweeps = %d, want 1", res.Sweeps)
	}
}

func TestRunAsyncDimensionMismatchPanics(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine(topo, rules.SMP{}).RunAsync(color.NewColoring(grid.MustDims(5, 5), 1), AsyncOptions{})
}
