package sim

import (
	"testing"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
)

func TestRunAsyncRasterConvergesOnCross(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 7, 7)
	eng := NewEngine(topo, rules.SMP{})
	res := eng.RunAsync(crossColoring(7, 7, 1), AsyncOptions{Order: AsyncRaster, StopWhenMonochromatic: true})
	if !res.Monochromatic || res.FinalColor != 1 {
		t.Fatalf("async raster run should converge to color 1: %+v", res)
	}
	// In-place raster sweeps propagate information faster than synchronous
	// rounds, never slower.
	sync := eng.Run(crossColoring(7, 7, 1), Options{StopWhenMonochromatic: true})
	if res.Sweeps > sync.Rounds {
		t.Errorf("async took %d sweeps, synchronous %d rounds", res.Sweeps, sync.Rounds)
	}
}

func TestRunAsyncRandomOrderDeterministicWithSeed(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 6, 6)
	eng := NewEngine(topo, rules.SMP{})
	init := randomColoring(3, 6, 6, 4)
	a := eng.RunAsync(init, AsyncOptions{Order: AsyncRandom, Seed: 5, StopWhenMonochromatic: true})
	b := eng.RunAsync(init, AsyncOptions{Order: AsyncRandom, Seed: 5, StopWhenMonochromatic: true})
	if !a.Final.Equal(b.Final) || a.Sweeps != b.Sweeps {
		t.Error("same seed must give identical async runs")
	}
}

func TestRunAsyncRandomWithoutSeedUsesDefault(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	eng := NewEngine(topo, rules.SMP{})
	res := eng.RunAsync(crossColoring(5, 5, 1), AsyncOptions{Order: AsyncRandom})
	if res.Sweeps == 0 {
		t.Error("async run with the zero seed did nothing")
	}
}

func TestRunAsyncReachesFixedPointOnBlockedConfiguration(t *testing.T) {
	c := color.NewColoring(grid.MustDims(6, 6), 1)
	c.SetRC(2, 2, 2)
	c.SetRC(2, 3, 2)
	c.SetRC(3, 2, 2)
	c.SetRC(3, 3, 2)
	topo := grid.MustNew(grid.KindToroidalMesh, 6, 6)
	res := NewEngine(topo, rules.SMP{}).RunAsync(c, AsyncOptions{Order: AsyncRaster})
	if !res.FixedPoint {
		t.Fatal("expected fixed point")
	}
	if res.Monochromatic {
		t.Error("blocked configuration must not become monochromatic")
	}
}

func TestRunAsyncDoesNotModifyInitial(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	init := crossColoring(5, 5, 1)
	snap := init.Clone()
	NewEngine(topo, rules.SMP{}).RunAsync(init, AsyncOptions{Order: AsyncRaster})
	if !init.Equal(snap) {
		t.Error("RunAsync must not modify the initial coloring")
	}
}

func TestRunAsyncMaxSweeps(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 9, 9)
	res := NewEngine(topo, rules.SMP{}).RunAsync(crossColoring(9, 9, 1), AsyncOptions{MaxSweeps: 1, Order: AsyncRaster})
	if res.Sweeps != 1 {
		t.Errorf("sweeps = %d, want 1", res.Sweeps)
	}
}

// naiveAsyncSweep is the pre-CSR reference implementation of one raster
// sweep: per-vertex neighbor gathering through the Topology interface and
// rule evaluation through Rule.Next, committing updates in place.  It is
// the parity oracle for RunAsync's rewiring onto the cached CSR index and
// the rules.CountRule fast path.
func naiveAsyncSweep(topo grid.Topology, rule rules.Rule, cfg *color.Coloring) int {
	changed := 0
	n := cfg.N()
	nbuf := make([]int, 0, grid.Degree)
	cbuf := make([]color.Color, grid.Degree)
	for v := 0; v < n; v++ {
		nbuf = topo.Neighbors(v, nbuf[:0])
		for i, u := range nbuf {
			cbuf[i] = cfg.At(u)
		}
		if nc := rule.Next(cfg.At(v), cbuf[:len(nbuf)]); nc != cfg.At(v) {
			cfg.Set(v, nc)
			changed++
		}
	}
	return changed
}

// TestRunAsyncParityWithNaivePath pins RunAsync's CSR + CountRule fast path
// bit-identical to the old interface-driven sweep, on every registered rule
// and topology kind (table-driven, seeded), including degenerate 2×n tori.
func TestRunAsyncParityWithNaivePath(t *testing.T) {
	sizes := [][2]int{{2, 5}, {5, 2}, {6, 7}}
	for _, name := range rules.RegisteredNames() {
		rule, err := rules.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range grid.Kinds() {
			for _, sz := range sizes {
				topo := grid.MustNew(kind, sz[0], sz[1])
				eng := NewEngine(topo, rule)
				for seed := uint64(1); seed <= 2; seed++ {
					initial := randomColoring(seed, sz[0], sz[1], 4)
					const sweeps = 15
					res := eng.RunAsync(initial, AsyncOptions{MaxSweeps: sweeps, Order: AsyncRaster})

					want := initial.Clone()
					wantSweeps, fixed := 0, false
					for s := 1; s <= sweeps; s++ {
						wantSweeps = s
						if naiveAsyncSweep(topo, rule, want) == 0 {
							fixed = true
							break
						}
					}
					label := name + "/" + topo.Name() + "/" + topo.Dims().String()
					if !res.Final.Equal(want) {
						t.Fatalf("%s: CSR async path diverged from the naive path", label)
					}
					if res.Sweeps != wantSweeps || res.FixedPoint != fixed {
						t.Fatalf("%s: sweeps/fixed (%d,%v) vs naive (%d,%v)",
							label, res.Sweeps, res.FixedPoint, wantSweeps, fixed)
					}
				}
			}
		}
	}
}

func TestRunAsyncDimensionMismatchPanics(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine(topo, rules.SMP{}).RunAsync(color.NewColoring(grid.MustDims(5, 5), 1), AsyncOptions{})
}
