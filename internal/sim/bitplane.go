package sim

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
)

// ErrBitplaneIneligible is wrapped by the errors NewBitplane (and a run with
// a forced KernelBitplane) returns when the engine's rule, topology or the
// run's coloring has no exact word-parallel form.
var ErrBitplaneIneligible = errors.New("sim: combination does not qualify for the bitplane kernel")

// Bitplane is the bit-sliced stepper: the configuration lives as one or two
// bit planes of ⌈n/64⌉ uint64 words (bit v of plane b is bit b of the color
// encoding of vertex v), neighbor gathering is a word rotation per port plus
// O(rows+cols) border patches (grid.ShiftPlanOf), and the rule recolors 64
// vertices per word operation through its rules.BitKernel.  On the early
// high-churn rounds of a run — where the dirty frontier is the whole lattice
// and the scalar sweep is memory-bound — this is roughly an order of
// magnitude faster per round than the sequential sweep.
//
// A Bitplane requires all three of:
//
//   - a rule implementing rules.BitRule with a kernel for the palette;
//   - a shift-regular topology (all three of the paper's tori qualify);
//   - colors within {1..4} (⌈log₂k⌉ ≤ 2 planes).
//
// Results are bit-identical to the full-sweep oracle; the differential tests
// in bitplane_test.go pin this on every qualifying rule × topology pair.
//
// Like Frontier, a Bitplane is single-goroutine state (the engine stripes
// kernel words across the worker pool internally on parallel runs); all
// buffers are allocated at construction and recycled by Reset, so
// steady-state Step calls perform zero heap allocations.
type Bitplane struct {
	e    *Engine
	plan *grid.ShiftPlan
	kern rules.BitKernel
	// k is the palette size in force (the largest color of the initial
	// configuration); planes is ⌈log₂k⌉ clamped to 1.
	k, planes int
	// nbits is the vertex count, words the plane length ⌈nbits/64⌉ and
	// tailMask the valid-lane mask of the last word.
	nbits, words int
	tailMask     uint64
	// st is the kernel's working set: current planes, per-port shifted
	// planes and output planes.
	st rules.BitState
	// prevPrev holds the configuration two rounds back for period-2 cycle
	// detection (maintained only while detectCycles is set).
	prevPrev  [rules.MaxBitPlanes][]uint64
	cycleBase int
	// changed[w] is the per-word diff mask of the last Step.
	changed []uint64
	// tgtEver/tgtPrev/tgtCur back the engine's word-parallel target-spread
	// bookkeeping (FirstReached / MonotoneTarget).
	tgtEver, tgtPrev, tgtCur []uint64
	// cfg is the lazily unpacked scalar view of the configuration.
	cfg      *color.Coloring
	cfgRound int

	detectCycles bool
	cycle        bool
	prevChanged  int
	round        int
}

// bitplaneCheck decides bitplane eligibility for a run over initial and
// returns the palette size, shift plan and kernel on success.
func (e *Engine) bitplaneCheck(initial *color.Coloring) (int, *grid.ShiftPlan, rules.BitKernel, error) {
	if e.bitRule == nil {
		return 0, nil, nil, fmt.Errorf("%w: rule %q has no word-parallel kernel", ErrBitplaneIneligible, e.rule.Name())
	}
	if e.topo == nil {
		return 0, nil, nil, fmt.Errorf("%w: substrate %q is not a torus topology", ErrBitplaneIneligible, e.sub.Name())
	}
	plan, ok := grid.ShiftPlanOf(e.topo)
	if !ok {
		return 0, nil, nil, fmt.Errorf("%w: topology %q is not shift-regular", ErrBitplaneIneligible, e.topo.Name())
	}
	k := 1
	for _, c := range initial.Cells() {
		if c < 1 || int(c) > color.MaxPlaneColors {
			return 0, nil, nil, fmt.Errorf("%w: coloring contains color %v outside {1..%d}", ErrBitplaneIneligible, c, color.MaxPlaneColors)
		}
		if int(c) > k {
			k = int(c)
		}
	}
	kern, ok := e.bitRule.BitKernel(k)
	if !ok {
		return 0, nil, nil, fmt.Errorf("%w: rule %q has no kernel for palette {1..%d}", ErrBitplaneIneligible, e.rule.Name(), k)
	}
	return k, plan, kern, nil
}

// NewBitplane returns a bit-sliced stepper over the engine's topology and
// rule, initialized to the given configuration, or an error (wrapping
// ErrBitplaneIneligible) describing why the combination has no exact
// word-parallel form.  It is the public entry point for benchmarks and
// callers that drive rounds by hand; Run uses a pooled Bitplane internally.
func (e *Engine) NewBitplane(initial *color.Coloring) (*Bitplane, error) {
	d := e.sub.Dims()
	if initial.Dims() != d {
		panic(fmt.Sprintf("sim: NewBitplane dimension mismatch %v vs %v", initial.Dims(), d))
	}
	k, plan, kern, err := e.bitplaneCheck(initial)
	if err != nil {
		return nil, err
	}
	bp := e.newBitplaneBuffers()
	if err := bp.resetWith(initial, k, plan, kern); err != nil {
		return nil, err
	}
	return bp, nil
}

// newBitplaneBuffers allocates a blank stepper (all plane and bookkeeping
// buffers, no configuration); callers must resetWith before stepping.
func (e *Engine) newBitplaneBuffers() *Bitplane {
	d := e.sub.Dims()
	bp := &Bitplane{
		e:        e,
		nbits:    d.N(),
		words:    color.PlaneWords(d.N()),
		tailMask: color.PlaneTailMask(d.N()),
		cfg:      color.NewColoring(d, color.None),
		cfgRound: -1,
	}
	for b := 0; b < rules.MaxBitPlanes; b++ {
		bp.st.Cur[b] = make([]uint64, bp.words)
		bp.st.Next[b] = make([]uint64, bp.words)
		bp.prevPrev[b] = make([]uint64, bp.words)
		for p := 0; p < rules.BitPorts; p++ {
			bp.st.Nbr[p][b] = make([]uint64, bp.words)
		}
	}
	bp.changed = make([]uint64, bp.words)
	bp.tgtEver = make([]uint64, bp.words)
	bp.tgtPrev = make([]uint64, bp.words)
	bp.tgtCur = make([]uint64, bp.words)
	return bp
}

// Reset rewinds the stepper to round 0 on a new initial configuration,
// reusing every buffer.  The palette size (and hence the plane count and
// kernel) is re-derived from the configuration; the argument is copied, not
// retained.  It returns an error wrapping ErrBitplaneIneligible when the new
// configuration does not qualify.
func (bp *Bitplane) Reset(initial *color.Coloring) error {
	if initial.Dims() != bp.e.sub.Dims() {
		panic(fmt.Sprintf("sim: Bitplane.Reset dimension mismatch %v vs %v", initial.Dims(), bp.e.sub.Dims()))
	}
	k, plan, kern, err := bp.e.bitplaneCheck(initial)
	if err != nil {
		return err
	}
	return bp.resetWith(initial, k, plan, kern)
}

// resetWith is Reset with the eligibility products already derived, so the
// run drivers — which checked eligibility to pick the tier — do not rescan
// the configuration.
func (bp *Bitplane) resetWith(initial *color.Coloring, k int, plan *grid.ShiftPlan, kern rules.BitKernel) error {
	bp.k, bp.plan, bp.kern = k, plan, kern
	bp.planes, _ = color.PlanesFor(k)
	bp.st.Planes = bp.planes
	if !color.PackPlanes(initial.Cells(), bp.st.Cur[:bp.planes]) {
		return fmt.Errorf("%w: coloring not representable in %d planes", ErrBitplaneIneligible, bp.planes)
	}
	bp.round, bp.prevChanged = 0, 0
	bp.cycle, bp.detectCycles = false, false
	bp.cycleBase = 0
	bp.cfgRound = -1
	return nil
}

// Round returns the number of rounds stepped since the last Reset.
func (bp *Bitplane) Round() int { return bp.round }

// Planes returns the number of live bit planes (1 for k ≤ 2, 2 for k ≤ 4).
func (bp *Bitplane) Planes() int { return bp.planes }

// Colors returns the palette size in force, re-derived from the initial
// configuration at the last Reset.
func (bp *Bitplane) Colors() int { return bp.k }

// DetectCycles enables or disables period-2 cycle tracking.  It is off
// after Reset because it costs one plane copy and compare per Step; the
// engine switches it on for runs with Options.DetectCycles.
func (bp *Bitplane) DetectCycles(on bool) {
	bp.detectCycles = on
	bp.cycle = false
	bp.cycleBase = bp.round
}

// Cycle reports whether the last Step exactly undid the one before it, i.e.
// the configuration equals the one two rounds ago.  Always false unless
// DetectCycles(true) was called at least two rounds earlier.
func (bp *Bitplane) Cycle() bool { return bp.cycle }

// bitplaneSlabWords is the cache block of the bit-sliced step: neighbor
// shifts and the kernel are fused per slab of this many plane words, so a
// slab's shifted Nbr words are consumed by the kernel while still resident
// in cache instead of being streamed out and re-read a full plane later.
// A slab touches ~12 streams of 8 bytes per word (two Cur planes read by
// shifts and kernel, eight Nbr written then read, two Next written), so
// 8192 words is a ~768 KB block working set.
//
// The value was picked by BenchmarkBitplaneSlabWords (measurements in the
// README performance note): on planes that fit cache outright (≤ 256×256)
// block size is neutral, and on 1024×1024 the 8192-word slab matches
// full-plane passes while L2-sized blocks (512–2048 words) LOSE up to
// ~15% — the plane streams are perfectly sequential, so the hardware
// prefetchers already hide the memory latency and smaller blocks only add
// per-slab border-patch rescans and shorter streams.  The constant keeps
// the fused form (one pass structure for the sequential and striped paths,
// and a bound on the block working set on future huge lattices) at the
// measured-neutral size rather than chasing a blocking win this workload
// does not have.
const bitplaneSlabWords = 8192

// Step applies one synchronous round to all planes and returns the number
// of vertices that changed color.
func (bp *Bitplane) Step() int {
	bp.stepSlabs(0, bp.words, bitplaneSlabWords)
	return bp.finishStep()
}

// stepStriped is Step with the fused slabs striped across the shared worker
// pool.  Each task owns a contiguous word range and runs shift+kernel slab
// by slab within it; tasks share only read-only state (the Cur planes,
// stable for the whole round, and the shift plan), so no intra-round
// barrier is needed.
func (bp *Bitplane) stepStriped(st *runState, workers int) int {
	if workers > bp.words {
		workers = bp.words
	}
	if workers <= 1 {
		return bp.Step()
	}
	st.stripeAcross(bp.words, workers, func(t *stripeTask, lo, hi int) {
		*t = stripeTask{run: runBitSlabTask, wg: &st.wg, bp: bp, lo: lo, hi: hi}
	})
	return bp.finishStep()
}

// stepSlabs steps the word range [lo, hi) in fused cache blocks of at most
// slab words each: all per-port neighbor shifts for the block, then the
// kernel over the block.
func (bp *Bitplane) stepSlabs(lo, hi, slab int) {
	for w := lo; w < hi; w += slab {
		bp.stepSlab(w, min(w+slab, hi))
	}
}

// stepSlab computes one fused block: the per-port shifted plane words in
// [wlo, whi), then the kernel over the same range.  The kernel is a pure
// wordwise map (Next[w] is a function of Cur and Nbr words at w only), so
// producing Nbr slab-locally is exact.
func (bp *Bitplane) stepSlab(wlo, whi int) {
	for p := 0; p < rules.BitPorts; p++ {
		port := &bp.plan.Ports[p]
		for b := 0; b < bp.planes; b++ {
			shiftPlaneRange(bp.st.Nbr[p][b], bp.st.Cur[b], port, bp.nbits, bp.tailMask, wlo, whi)
		}
	}
	bp.kern.StepWords(&bp.st, wlo, whi)
}

// finishStep masks the kernel output, maintains cycle tracking and the diff
// mask, and commits Next as the new configuration.
func (bp *Bitplane) finishStep() int {
	bp.round++
	st := &bp.st
	for b := 0; b < bp.planes; b++ {
		st.Next[b][bp.words-1] &= bp.tailMask
	}
	if bp.detectCycles {
		if bp.round >= bp.cycleBase+2 {
			cycle := true
		compare:
			for b := 0; b < bp.planes; b++ {
				next, pp := st.Next[b], bp.prevPrev[b]
				for w := range next {
					if next[w] != pp[w] {
						cycle = false
						break compare
					}
				}
			}
			bp.cycle = cycle
		}
		for b := 0; b < bp.planes; b++ {
			copy(bp.prevPrev[b], st.Cur[b])
		}
	}
	changed := 0
	for w := 0; w < bp.words; w++ {
		var d uint64
		for b := 0; b < bp.planes; b++ {
			d |= st.Cur[b][w] ^ st.Next[b][w]
		}
		bp.changed[w] = d
		changed += bits.OnesCount64(d)
	}
	st.Cur, st.Next = st.Next, st.Cur
	bp.prevChanged = changed
	return changed
}

// Unpack writes the current configuration into dst, which must have the
// engine's dimensions.
func (bp *Bitplane) Unpack(dst *color.Coloring) {
	if dst.Dims() != bp.e.sub.Dims() {
		panic(fmt.Sprintf("sim: Bitplane.Unpack dimension mismatch %v vs %v", dst.Dims(), bp.e.sub.Dims()))
	}
	color.UnpackPlanes(bp.st.Cur[:bp.planes], dst.Cells())
}

// Config returns the current configuration, unpacked lazily into an internal
// buffer: valid until the next Step or Reset, and must not be mutated.
func (bp *Bitplane) Config() *color.Coloring {
	if bp.cfgRound != bp.round {
		bp.Unpack(bp.cfg)
		bp.cfgRound = bp.round
	}
	return bp.cfg
}

// Monochromatic reports whether every vertex carries the same color, by
// checking that each plane is uniformly zero or uniformly one.
func (bp *Bitplane) Monochromatic() bool {
	for b := 0; b < bp.planes; b++ {
		plane := bp.st.Cur[b]
		var want uint64
		if plane[0]&1 != 0 {
			want = ^uint64(0)
		}
		for w := 0; w < bp.words-1; w++ {
			if plane[w] != want {
				return false
			}
		}
		if plane[bp.words-1] != want&bp.tailMask {
			return false
		}
	}
	return true
}

// targetMask writes the per-lane indicator of "vertex carries t" into dst.
// A target outside the representable encodings yields the zero mask.
func (bp *Bitplane) targetMask(dst []uint64, t color.Color) {
	enc := int(t) - 1
	if enc < 0 || enc >= 1<<bp.planes {
		for w := range dst[:bp.words] {
			dst[w] = 0
		}
		return
	}
	for w := 0; w < bp.words; w++ {
		m := ^uint64(0)
		for b := 0; b < bp.planes; b++ {
			x := bp.st.Cur[b][w]
			if enc>>b&1 == 0 {
				x = ^x
			}
			m &= x
		}
		dst[w] = m
	}
	dst[bp.words-1] &= bp.tailMask
}

// lastChanges calls fn for every vertex that changed in the last Step,
// passing its color before the change (read from the previous configuration,
// which the step's buffer swap left in st.Next).
func (bp *Bitplane) lastChanges(fn func(v int32, old color.Color)) {
	for w := 0; w < bp.words; w++ {
		dw := bp.changed[w]
		for dw != 0 {
			b := bits.TrailingZeros64(dw)
			dw &= dw - 1
			e := 0
			for pl := 0; pl < bp.planes; pl++ {
				e |= int(bp.st.Next[pl][w]>>uint(b)&1) << pl
			}
			fn(int32(w<<6+b), color.Color(e+1))
		}
	}
}

// shiftPlaneRange gathers one plane through one neighbor port for the dst
// words in [wlo, whi): the bit rotation by the port's base shift restricted
// to the range, then the port's border patches that land inside it.  The
// patch lists are O(rows+cols) and scanned per slab; against the O(words)
// word work of the slab pass the rescans are noise.
func shiftPlaneRange(dst, src []uint64, port *grid.ShiftPort, nbits int, tailMask uint64, wlo, whi int) {
	rotateBitsRange(dst, src, nbits, port.Shift, tailMask, wlo, whi)
	for i, db := range port.FixDst {
		w := int(db >> 6)
		if w < wlo || w >= whi {
			continue
		}
		sb := port.FixSrc[i]
		bit := src[sb>>6] >> uint(sb&63) & 1
		o := uint(db & 63)
		dst[w] = dst[w]&^(1<<o) | bit<<o
	}
}

// rotateBitsRange writes dst bit i = src bit (i+s) mod nbits for the bits
// of dst words [wlo, whi), with s in [0, nbits).  src must honor the plane
// invariant that bits ≥ nbits are zero; dst receives the same invariant.
// dst and src must not alias.  The full rotation is the [0, len(src)) range.
func rotateBitsRange(dst, src []uint64, nbits, s int, tailMask uint64, wlo, whi int) {
	if s == 0 {
		copy(dst[wlo:whi], src[wlo:whi])
		return
	}
	words := len(src)
	// Low part: dst bit i = src bit i+s for i < nbits-s (a logical right
	// shift of the bit array; lanes past the end read the zero invariant).
	off, sh := s>>6, uint(s&63)
	if sh == 0 {
		for w := wlo; w < whi; w++ {
			var x uint64
			if w+off < words {
				x = src[w+off]
			}
			dst[w] = x
		}
	} else {
		for w := wlo; w < whi; w++ {
			var x uint64
			if w+off < words {
				x = src[w+off] >> sh
				if w+off+1 < words {
					x |= src[w+off+1] << (64 - sh)
				}
			}
			dst[w] = x
		}
	}
	// High part: dst bit i |= src bit i-(nbits-s) for i ≥ nbits-s (the
	// wrapped head of the array, a logical left shift).  The two parts are
	// disjoint because src bits ≥ nbits are zero.
	t := nbits - s
	off, sh = t>>6, uint(t&63)
	lo := max(wlo, off)
	if sh == 0 {
		for w := whi - 1; w >= lo; w-- {
			dst[w] |= src[w-off]
		}
	} else {
		for w := whi - 1; w >= lo; w-- {
			x := src[w-off] << sh
			if w-off-1 >= 0 {
				x |= src[w-off-1] >> (64 - sh)
			}
			dst[w] |= x
		}
	}
	if whi == words {
		dst[words-1] &= tailMask
	}
}

// downshiftFactor and downshiftRounds tune the bitplane→frontier handoff on
// auto-tier sequential runs: after downshiftRounds consecutive rounds with
// changed·downshiftFactor < n, the dirty frontier (whose per-round cost
// scales with the change count, not n) is cheaper than the fixed word work
// of the bitplane and the run switches steppers.  The handoff itself lives
// in bitplaneDriver.downshift (stream.go), the tier's view through the
// engine's single round loop.
const (
	downshiftFactor = 32
	downshiftRounds = 2
)
