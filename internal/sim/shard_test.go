package sim

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
	"repro/internal/tvg"
)

// shardedOpts returns base with the sharded tier forced at the given worker
// count.
func shardedOpts(base Options, workers int) Options {
	base.Kernel = KernelSharded
	base.Parallel = true
	base.Workers = workers
	return base
}

// resultJSONEqual pins two Results byte-identical on the full JSON wire
// form, after normalizing the fields that name the tier itself (Kernel,
// Workers, Downshift): everything a consumer can observe about the run —
// rounds, verdicts, traces, final configuration — must match exactly.
func resultJSONEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	na, nb := *a, *b
	na.Kernel, nb.Kernel = KernelSweep, KernelSweep
	na.Workers, nb.Workers = 1, 1
	na.Downshift, nb.Downshift = 0, 0
	ja, err := json.Marshal(&na)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(&nb)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("%s: result JSON differs\n a: %s\n b: %s", label, ja, jb)
	}
}

// TestShardedBitIdenticalAllRulesAllTopologies is the sharded tier's
// differential oracle: on every registered rule × topology kind, over
// random colorings on several sizes including the degenerate 2×n and m×2
// tori, the sharded stepper at k ∈ {2, 3, 4} shards must produce Results
// byte-identical (full JSON) to the sequential full sweep.
func TestShardedBitIdenticalAllRulesAllTopologies(t *testing.T) {
	sizes := [][2]int{{2, 7}, {7, 2}, {3, 3}, {4, 6}, {6, 6}}
	for _, name := range rules.RegisteredNames() {
		rule, err := rules.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range grid.Kinds() {
			for _, sz := range sizes {
				topo := grid.MustNew(kind, sz[0], sz[1])
				eng := NewEngine(topo, rule)
				for seed := uint64(1); seed <= 3; seed++ {
					initial := randomTestColoring(seed, topo.Dims(), 5)
					base := Options{MaxRounds: 40, Target: 1, DetectCycles: true}
					sweep := base
					sweep.Kernel = KernelSweep
					oracle := eng.Run(initial, sweep)
					for _, k := range []int{2, 3, 4} {
						sharded := eng.Run(initial, shardedOpts(base, k))
						label := name + "/" + topo.Name() + "/" + topo.Dims().String() + "/k=" + string(rune('0'+k))
						resultsEqual(t, label, sharded, oracle)
						resultJSONEqual(t, label, sharded, oracle)
						if sharded.Kernel != KernelSharded {
							t.Fatalf("%s: kernel %v, want sharded", label, sharded.Kernel)
						}
					}
				}
			}
		}
	}
}

// TestShardedCycleAcrossShardBoundary pins period-2 cycle detection when
// the oscillating set spans shard boundaries: every shard's local verdict
// must AND into the global one at the same round the sweep detects, and
// the oscillation must actually cross row-band boundaries for the test to
// mean anything.
func TestShardedCycleAcrossShardBoundary(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 6, 6)
	rule, err := rules.ByName("generalized-smp")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(topo, rule)
	initial := randomTestColoring(1, topo.Dims(), 3)
	base := Options{MaxRounds: 60, DetectCycles: true, RecordHistory: true}
	sweep := base
	sweep.Kernel = KernelSweep
	oracle := eng.Run(initial, sweep)
	if !oracle.Cycle {
		t.Fatal("expected the oracle run to detect a cycle (seed drifted?)")
	}
	// The last round's changed vertices must span more than one row-band
	// shard at k=3 (2 rows per shard on 6 rows), otherwise the scenario
	// does not cross a boundary.
	h := oracle.History
	last, before := h[len(h)-1], h[len(h)-2]
	bands := map[int]bool{}
	for v := 0; v < last.N(); v++ {
		if last.At(v) != before.At(v) {
			bands[(v/6)/2] = true
		}
	}
	if len(bands) < 2 {
		t.Fatalf("oscillation confined to row bands %v; pick a different seed", bands)
	}
	for _, k := range []int{2, 3, 4} {
		sharded := eng.Run(initial, shardedOpts(base, k))
		if !sharded.Cycle {
			t.Fatalf("k=%d: sharded run missed the cycle", k)
		}
		resultsEqual(t, "cycle/k", sharded, oracle)
		resultJSONEqual(t, "cycle/k", sharded, oracle)
	}
}

// TestShardedResumeMidRun checkpoints a sharded run in the middle —
// including at rounds where the dynamics straddle shard boundaries — and
// resumes it on the sharded tier; the stitched Result must equal both an
// uninterrupted sharded run and the sequential sweep, for plain, target-
// tracked and cycle-detecting runs.
func TestShardedResumeMidRun(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 6, 6)
	for _, ruleName := range []string{"smp", "generalized-smp"} {
		rule, err := rules.ByName(ruleName)
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(topo, rule)
		initial := randomTestColoring(2, topo.Dims(), 3)
		opt := shardedOpts(Options{MaxRounds: 60, Target: 1, DetectCycles: true}, 3)
		sweep := Options{MaxRounds: 60, Target: 1, DetectCycles: true, Kernel: KernelSweep}
		oracle := eng.Run(initial, sweep)
		full := eng.Run(initial, opt)
		resultsEqual(t, ruleName+"/uninterrupted", full, oracle)

		for cutAt := 1; cutAt < full.Rounds; cutAt++ {
			var cp *Resume
			for st, err := range eng.Stream(context.Background(), initial, opt) {
				if err != nil {
					t.Fatal(err)
				}
				if st.Round == cutAt {
					cp = st.Checkpoint()
					break
				}
			}
			if cp == nil {
				t.Fatalf("%s: no checkpoint at round %d", ruleName, cutAt)
			}
			resumed, err := eng.ResumeContext(context.Background(), cp, opt)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Kernel != KernelSharded {
				t.Fatalf("%s: resumed kernel %v, want sharded", ruleName, resumed.Kernel)
			}
			resultsEqual(t, ruleName+"/resumed", resumed, oracle)
			resultJSONEqual(t, ruleName+"/resumed", resumed, oracle)
		}
	}
}

// TestShardedMetadata pins the Result metadata contract: the tier name and
// the effective worker count, which is the shard count — capped by the
// substrate's row count on tori, so requesting more shards than rows
// reports the real parallelism.
func TestShardedMetadata(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 4)
	eng := NewEngine(topo, rules.SMP{})
	initial := randomTestColoring(3, topo.Dims(), 3)

	res := eng.Run(initial, shardedOpts(Options{MaxRounds: 10}, 3))
	if res.Kernel != KernelSharded || res.Workers != 3 {
		t.Fatalf("kernel=%v workers=%d, want sharded/3", res.Kernel, res.Workers)
	}
	// 64 requested shards over 5 rows: row-aligned cuts cap at 5.
	res = eng.Run(initial, shardedOpts(Options{MaxRounds: 10}, 64))
	if res.Workers != 5 {
		t.Fatalf("workers=%d for 64 requested shards over 5 rows, want 5", res.Workers)
	}
	// Forcing the kernel without Parallel derives workers like
	// KernelParallel (GOMAXPROCS-bound); it must still run sharded.
	res = eng.Run(initial, Options{MaxRounds: 10, Kernel: KernelSharded})
	if res.Kernel != KernelSharded || res.Workers < 1 {
		t.Fatalf("kernel=%v workers=%d for forced sharded without Parallel", res.Kernel, res.Workers)
	}
}

// TestShardedAutoSelection pins the automatic tier choice: parallel runs at
// or above shardedAutoThreshold vertices step sharded, smaller ones keep
// the striped parallel sweep, and FullSweep retains its oracle contract.
func TestShardedAutoSelection(t *testing.T) {
	// A 5-color palette keeps the (faster, already scaling) bitplane tier
	// out of the running, so the auto choice is between the two sweeps.
	big := grid.MustNew(grid.KindToroidalMesh, 512, 256) // exactly 1<<17
	eng := NewEngine(big, rules.SMP{})
	initial := randomTestColoring(4, big.Dims(), 5)
	res := eng.Run(initial, Options{MaxRounds: 2, Parallel: true, Workers: 4})
	if res.Kernel != KernelSharded {
		t.Fatalf("auto kernel %v above threshold, want sharded", res.Kernel)
	}
	res = eng.Run(initial, Options{MaxRounds: 2, Parallel: true, Workers: 4, FullSweep: true})
	if res.Kernel != KernelParallel {
		t.Fatalf("auto kernel %v with FullSweep, want parallel", res.Kernel)
	}

	small := grid.MustNew(grid.KindToroidalMesh, 16, 16)
	engS := NewEngine(small, rules.SMP{})
	res = engS.Run(randomTestColoring(4, small.Dims(), 5), Options{MaxRounds: 2, Parallel: true, Workers: 4})
	if res.Kernel != KernelParallel {
		t.Fatalf("auto kernel %v below threshold, want parallel", res.Kernel)
	}
}

// TestShardedTimeVaryingRejected pins that forcing the sharded tier on a
// time-varying run fails loudly instead of silently dropping the
// availability mask.
func TestShardedTimeVaryingRejected(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 6, 6)
	eng := NewEngine(topo, rules.SMP{})
	initial := randomTestColoring(5, topo.Dims(), 3)
	opt := shardedOpts(Options{MaxRounds: 10}, 2)
	opt.TimeVarying = tvg.Bernoulli{P: 0.5, Seed: 1}
	if _, err := eng.RunContext(context.Background(), initial, opt); !errors.Is(err, ErrTimeVaryingSweepOnly) {
		t.Fatalf("err = %v, want ErrTimeVaryingSweepOnly", err)
	}
}

// TestShardedKernelJSONRoundTrip pins the wire name of the new tier.
func TestShardedKernelJSONRoundTrip(t *testing.T) {
	b, err := json.Marshal(KernelSharded)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"sharded"` {
		t.Fatalf("marshal = %s, want \"sharded\"", b)
	}
	var k Kernel
	if err := json.Unmarshal(b, &k); err != nil {
		t.Fatal(err)
	}
	if k != KernelSharded {
		t.Fatalf("round-trip = %v", k)
	}
	if parsed, err := ParseKernel("sharded"); err != nil || parsed != KernelSharded {
		t.Fatalf("ParseKernel(sharded) = %v, %v", parsed, err)
	}
}

// TestShardedStepDoesNotAllocate pins the steady-state allocation behavior
// of the sharded stepper: once the shard buffers exist, stepping allocates
// nothing — the same zero-allocation contract the striped tier carries.
func TestShardedStepDoesNotAllocate(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 32, 32)
	eng := NewEngine(topo, rules.SMP{})
	initial := randomTestColoring(6, topo.Dims(), 3)
	sh := eng.NewSharded(4)
	sh.Reset(initial)
	avg := testing.AllocsPerRun(200, func() {
		sh.Step()
	})
	if avg != 0 {
		t.Fatalf("sharded step allocates %.1f allocs/op, want 0", avg)
	}
}

// TestShardedConcurrentRuns is the race-stress case behind the CI
// `-race -count=2` step: several goroutines run forced-sharded simulations
// concurrently over one shared engine (shared shard-set cache, shared
// stripe pool, pooled run states), each pinned against the sweep oracle.
func TestShardedConcurrentRuns(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 24, 24)
	eng := NewEngine(topo, rules.SMP{})
	oracle := make([]*Result, 4)
	initials := make([]*color.Coloring, 4)
	for i := range initials {
		initials[i] = randomTestColoring(uint64(10+i), topo.Dims(), 3)
		oracle[i] = eng.Run(initials[i], Options{MaxRounds: 50, Target: 1, DetectCycles: true, Kernel: KernelSweep})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g % len(initials)
			opt := shardedOpts(Options{MaxRounds: 50, Target: 1, DetectCycles: true}, 1+g%4)
			res := eng.Run(initials[i], opt)
			// t.Fatalf must not be called off the test goroutine; record
			// through Errorf-style helpers instead.
			if res.Rounds != oracle[i].Rounds || !res.Final.Equal(oracle[i].Final) {
				t.Errorf("goroutine %d: sharded run diverged from oracle", g)
			}
		}(g)
	}
	wg.Wait()
}
