package grid

import (
	"fmt"
	"sort"
	"testing"
)

// checkShards differentially verifies a shard set against its parent index:
// exact ownership cover, exact halo sets, consistent owner/local pointers,
// and local rows that decode back to the global rows verbatim.
func checkShards(t *testing.T, c *CSR, shards []*CSRShard) {
	t.Helper()
	n := c.N()
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	for si, s := range shards {
		if s.Owned() <= 0 {
			t.Fatalf("shard %d owns empty range [%d,%d)", si, s.Lo, s.Hi)
		}
		for v := s.Lo; v < s.Hi; v++ {
			if owner[v] != -1 {
				t.Fatalf("vertex %d owned by shards %d and %d", v, owner[v], si)
			}
			owner[v] = si
		}
	}
	for v, o := range owner {
		if o == -1 {
			t.Fatalf("vertex %d owned by no shard", v)
		}
	}
	for si, s := range shards {
		// The halo must be exactly the distinct cross-shard neighbor set,
		// ascending.
		want := map[int32]bool{}
		for v := s.Lo; v < s.Hi; v++ {
			for _, u := range c.Neighbors[c.Off[v]:c.Off[v+1]] {
				if int(u) < s.Lo || int(u) >= s.Hi {
					want[u] = true
				}
			}
		}
		if len(s.Halo) != len(want) {
			t.Fatalf("shard %d halo has %d entries, want %d", si, len(s.Halo), len(want))
		}
		if !sort.SliceIsSorted(s.Halo, func(i, j int) bool { return s.Halo[i] < s.Halo[j] }) {
			t.Fatalf("shard %d halo not ascending: %v", si, s.Halo)
		}
		for i, u := range s.Halo {
			if !want[u] {
				t.Fatalf("shard %d halo[%d]=%d is not a cross-shard neighbor", si, i, u)
			}
			if i > 0 && s.Halo[i-1] == u {
				t.Fatalf("shard %d halo has duplicate ghost %d", si, u)
			}
			o := int(s.HaloOwner[i])
			if o < 0 || o >= len(shards) || o == si {
				t.Fatalf("shard %d ghost %d has owner %d", si, u, o)
			}
			os := shards[o]
			if g := os.Lo + int(s.HaloLocal[i]); g != int(u) {
				t.Fatalf("shard %d ghost %d resolves to global %d via owner %d", si, u, g, o)
			}
		}
		// Local rows must decode to the global rows, in order.
		if got, wantOff := int(s.Off[s.Owned()]), int(c.Off[s.Hi]-c.Off[s.Lo]); got != wantOff {
			t.Fatalf("shard %d frames %d entries, want %d", si, got, wantOff)
		}
		owned := s.Owned()
		for v := 0; v < owned; v++ {
			lrow := s.Adj[s.Off[v]:s.Off[v+1]]
			grow := c.Neighbors[c.Off[s.Lo+v]:c.Off[s.Lo+v+1]]
			if len(lrow) != len(grow) {
				t.Fatalf("shard %d local row %d has %d entries, want %d", si, v, len(lrow), len(grow))
			}
			for i, lu := range lrow {
				var global int
				if int(lu) < owned {
					global = s.Lo + int(lu)
				} else {
					global = int(s.Halo[int(lu)-owned])
				}
				if global != int(grow[i]) {
					t.Fatalf("shard %d row %d entry %d decodes to %d, want %d", si, v, i, global, grow[i])
				}
			}
		}
		if s.Uniform() != c.Uniform() {
			t.Fatalf("shard %d uniform=%d, want %d", si, s.Uniform(), c.Uniform())
		}
	}
}

func TestShardsCoverAllTopologies(t *testing.T) {
	sizes := []struct{ rows, cols int }{
		{2, 5}, {2, 2}, {3, 67}, {5, 4}, {8, 8}, {16, 3},
	}
	for _, kind := range Kinds() {
		for _, sz := range sizes {
			topo, err := New(kind, sz.rows, sz.cols)
			if err != nil {
				t.Fatal(err)
			}
			c := CSROf(topo)
			for _, k := range []int{1, 2, 3, 4, 7, 64} {
				name := fmt.Sprintf("%s/%dx%d/k%d", topo.Name(), sz.rows, sz.cols, k)
				t.Run(name, func(t *testing.T) {
					shards := c.Shards(k, sz.cols)
					if len(shards) > k || len(shards) > sz.rows {
						t.Fatalf("got %d shards for k=%d over %d rows", len(shards), k, sz.rows)
					}
					for _, s := range shards {
						if s.Lo%sz.cols != 0 || (s.Hi%sz.cols != 0 && s.Hi != c.N()) {
							t.Fatalf("shard [%d,%d) not row-aligned for cols=%d", s.Lo, s.Hi, sz.cols)
						}
					}
					checkShards(t, c, shards)
				})
			}
		}
	}
}

// TestShardsGeneralGraph exercises align=1 on an irregular graph, including
// a shard request far beyond the vertex count.
func TestShardsGeneralGraph(t *testing.T) {
	adj := [][]int{
		{1, 2, 3, 4, 5}, // heavy hub
		{0}, {0}, {0, 4}, {3, 0}, {0},
		{7}, {6},
	}
	c := BuildCSRAdj(adj)
	for _, k := range []int{1, 2, 3, 8, 100} {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			shards := c.Shards(k, 1)
			if len(shards) > len(adj) {
				t.Fatalf("more shards (%d) than vertices (%d)", len(shards), len(adj))
			}
			if k >= len(adj) && len(shards) != len(adj) {
				t.Fatalf("k=%d should give one shard per vertex, got %d", k, len(shards))
			}
			checkShards(t, c, shards)
		})
	}
}

// TestPartitionDegreeBalance pins that the degree-balanced cuts do not
// collapse: on a uniform torus every shard of an even split owns the same
// number of rows.
func TestPartitionDegreeBalance(t *testing.T) {
	topo, err := New(KindToroidalMesh, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	c := CSROf(topo)
	ranges := c.Partition(4, 16)
	if len(ranges) != 4 {
		t.Fatalf("got %d ranges, want 4", len(ranges))
	}
	for i, r := range ranges {
		if r.Hi-r.Lo != 2*16 {
			t.Fatalf("range %d = [%d,%d), want 2 rows each", i, r.Lo, r.Hi)
		}
	}
}

func TestPartitionEmpty(t *testing.T) {
	c := BuildCSRAdj(nil)
	if got := c.Partition(4, 1); got != nil {
		t.Fatalf("empty index partitioned into %v", got)
	}
	if got := c.Shards(4, 1); len(got) != 0 {
		t.Fatalf("empty index sharded into %d shards", len(got))
	}
}
