package grid

import "sort"

// ShardRange is a contiguous run of vertex ids [Lo, Hi) owned by one shard
// of a partition.  Ranges are half-open, nonempty, and cover [0, n) in
// order, so ownership of any vertex is decided by a binary search over the
// Lo bounds.
type ShardRange struct {
	Lo, Hi int
}

// Partition cuts the index's vertex line [0, n) into at most k contiguous,
// degree-balanced ranges.  Cut points are restricted to multiples of align,
// which is how the dense tori get row-band slabs: with align = Cols every
// shard owns whole lattice rows and its halo is exactly the row above and
// the row below.  General graphs pass align = 1 and get cuts balanced on
// the forward-degree prefix sum alone.
//
// Fewer than k ranges come back when the index has fewer than k alignment
// blocks (shards are never empty); align < 1 is treated as 1.  The result
// is deterministic: equal inputs produce equal cuts on every call.
func (c *CSR) Partition(k, align int) []ShardRange {
	n := c.N()
	if n == 0 {
		return nil
	}
	if align < 1 {
		align = 1
	}
	blocks := (n + align - 1) / align
	if k > blocks {
		k = blocks
	}
	if k < 1 {
		k = 1
	}
	total := len(c.Neighbors)
	ranges := make([]ShardRange, 0, k)
	start, cum := 0, 0 // start is a block index
	for b := 0; b < blocks && len(ranges) < k-1; b++ {
		lo, hi := b*align, min((b+1)*align, n)
		cum += int(c.Off[hi] - c.Off[lo])
		// Cut after this block when the degree prefix reaches the next
		// proportional target, or when the blocks left are only just enough
		// to keep every remaining shard nonempty.
		need := k - 1 - len(ranges)
		left := blocks - (b + 1)
		if left == need || (cum*k >= total*(len(ranges)+1) && left > need) {
			ranges = append(ranges, ShardRange{Lo: start * align, Hi: hi})
			start = b + 1
		}
	}
	ranges = append(ranges, ShardRange{Lo: start * align, Hi: n})
	return ranges
}

// CSRShard is one shard of a partitioned CSR index: a contiguous owned
// range plus a halo of ghost vertices — the out-of-range vertices the owned
// rows read — and the owned rows' adjacency rewritten in shard-local ids.
//
// Local id space: owned vertex v maps to v-Lo; the ghosts follow at
// Owned()+i for the i-th halo entry.  Halo lists each ghost's global id in
// ascending order, exactly once even when degenerate tori (a dimension of
// 2) deliver the same neighbor through several ports.  HaloOwner[i] and
// HaloLocal[i] locate ghost i inside the shard that owns it (shard index
// into the Shards result and owned-local id there), which is all a halo
// exchange needs: ghost i's value is owner's buffer at HaloLocal[i].
//
// Like CSR, a CSRShard is immutable after construction and safe for
// concurrent use; per-shard mutable state (cell buffers) belongs to the
// caller.
type CSRShard struct {
	Lo, Hi    int
	Halo      []int32
	HaloOwner []int32
	HaloLocal []int32
	// Adj and Off frame the owned rows in local ids: owned-local vertex v
	// reads Adj[Off[v]:Off[v+1]].  When the parent index is degree-regular
	// the rows stay dense (Uniform()*v framing), mirroring CSR.
	Adj []int32
	Off []int32

	uniform int
	maxDeg  int
}

// Owned returns the number of vertices the shard owns.
func (s *CSRShard) Owned() int { return s.Hi - s.Lo }

// Len returns the size of the shard's local id space: owned plus ghosts.
func (s *CSRShard) Len() int { return s.Owned() + len(s.Halo) }

// Uniform returns the common local row degree (inherited from the parent
// index), 0 when irregular.
func (s *CSRShard) Uniform() int { return s.uniform }

// MaxDegree returns the largest local row degree.
func (s *CSRShard) MaxDegree() int { return s.maxDeg }

// Shards partitions the index (see Partition for k and align) and builds
// the per-shard halo lists and local adjacency.  The result is what a
// sharded stepper iterates: each shard's rows reference only its own local
// id space, so workers touch disjoint memory apart from the explicit halo
// copies between rounds.
func (c *CSR) Shards(k, align int) []*CSRShard {
	ranges := c.Partition(k, align)
	shards := make([]*CSRShard, len(ranges))
	for i, r := range ranges {
		shards[i] = c.buildShard(r, ranges)
	}
	return shards
}

// buildShard cuts one owned range out of the index: collects the sorted
// ghost set, resolves each ghost's owner, and rewrites the owned rows in
// local ids.
func (c *CSR) buildShard(r ShardRange, ranges []ShardRange) *CSRShard {
	s := &CSRShard{
		Lo:      r.Lo,
		Hi:      r.Hi,
		uniform: c.uniform,
	}
	lo32, hi32 := int32(r.Lo), int32(r.Hi)
	row := c.Neighbors[c.Off[r.Lo]:c.Off[r.Hi]]
	// Pass 1: the distinct out-of-range neighbors, ascending.
	seen := make(map[int32]struct{})
	for _, u := range row {
		if u < lo32 || u >= hi32 {
			seen[u] = struct{}{}
		}
	}
	s.Halo = make([]int32, 0, len(seen))
	for u := range seen {
		s.Halo = append(s.Halo, u)
	}
	sort.Slice(s.Halo, func(i, j int) bool { return s.Halo[i] < s.Halo[j] })
	s.HaloOwner = make([]int32, len(s.Halo))
	s.HaloLocal = make([]int32, len(s.Halo))
	for i, u := range s.Halo {
		o := sort.Search(len(ranges), func(j int) bool { return ranges[j].Hi > int(u) })
		s.HaloOwner[i] = int32(o)
		s.HaloLocal[i] = u - int32(ranges[o].Lo)
	}
	// Pass 2: rewrite the owned rows in local ids (owned first, ghosts
	// after), preserving row order so a sharded sweep reads neighbors in
	// exactly the order the global sweep does.
	owned := r.Hi - r.Lo
	s.Adj = make([]int32, len(row))
	s.Off = make([]int32, owned+1)
	for v := 0; v < owned; v++ {
		s.Off[v] = c.Off[r.Lo+v] - c.Off[r.Lo]
		if d := c.Degree(r.Lo + v); d > s.maxDeg {
			s.maxDeg = d
		}
	}
	s.Off[owned] = c.Off[r.Hi] - c.Off[r.Lo]
	for i, u := range row {
		if u >= lo32 && u < hi32 {
			s.Adj[i] = u - lo32
			continue
		}
		g := sort.Search(len(s.Halo), func(j int) bool { return s.Halo[j] >= u })
		s.Adj[i] = int32(owned + g)
	}
	return s
}
