package grid

import (
	"reflect"
	"testing"
)

// TestRegistryParseKindParity asserts that for every spelling ParseKind
// accepts, the registry builds exactly the topology the legacy
// ParseKind+New path builds (no behavior drift during the dynmon API
// redesign).
func TestRegistryParseKindParity(t *testing.T) {
	spellings := []string{
		"toroidal-mesh", "mesh", "toroidal_mesh",
		"torus-cordalis", "cordalis", "torus_cordalis",
		"torus-serpentinus", "serpentinus", "torus_serpentinus",
	}
	for _, name := range spellings {
		t.Run(name, func(t *testing.T) {
			kind, err := ParseKind(name)
			if err != nil {
				t.Fatalf("ParseKind(%q): %v", name, err)
			}
			want, err := New(kind, 6, 7)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ByName(name, 6, 7)
			if err != nil {
				t.Fatalf("ByName(%q): %v", name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("ByName(%q) = %#v, legacy path = %#v", name, got, want)
			}
			if got.Kind() != kind || got.Dims() != want.Dims() {
				t.Fatalf("kind/dims drift for %q", name)
			}
			// The adjacency structure must match vertex by vertex.
			for v := 0; v < got.Dims().N(); v++ {
				if !reflect.DeepEqual(NeighborsOf(got, v), NeighborsOf(want, v)) {
					t.Fatalf("%q: neighbor drift at vertex %d", name, v)
				}
			}
		})
	}
	if _, err := ByName("hypercube", 4, 4); err == nil {
		t.Error("unknown names must still be rejected")
	}
	// Invalid dimensions propagate the constructor's error.
	if _, err := ByName("mesh", 1, 5); err == nil {
		t.Error("invalid dimensions must be rejected")
	}
}

// registerTopoOnce is Register tolerating re-registration, so tests stay
// idempotent when the binary reruns them in one process (go test -count=N).
func registerTopoOnce(name string, factory Factory) {
	if _, err := ByName(name, 2, 2); err != nil {
		Register(name, factory)
	}
}

// TestRegisterCustomTopology exercises the extension point: a topology
// registered at runtime is constructible by name.
func TestRegisterCustomTopology(t *testing.T) {
	registerTopoOnce("test-mesh-alias", func(rows, cols int) (Topology, error) {
		return New(KindToroidalMesh, rows, cols)
	})
	topo, err := ByName("test-mesh-alias", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Kind() != KindToroidalMesh {
		t.Errorf("kind = %v", topo.Kind())
	}
	found := false
	for _, name := range RegisteredNames() {
		if name == "test-mesh-alias" {
			found = true
		}
	}
	if !found {
		t.Error("RegisteredNames should include the custom topology")
	}
}

func TestTopologyRegisterRejectsDuplicatesAndNil(t *testing.T) {
	mustPanic := func(name string, f Factory) {
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%q) should panic", name)
			}
		}()
		Register(name, f)
	}
	mustPanic("mesh", func(rows, cols int) (Topology, error) { return New(KindToroidalMesh, rows, cols) })
	mustPanic("", func(rows, cols int) (Topology, error) { return New(KindToroidalMesh, rows, cols) })
	mustPanic("nil-topo-factory", nil)
}
