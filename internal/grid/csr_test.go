package grid

import (
	"testing"
)

// TestCSRMatchesTopologyNeighbors pins the forward table to the Topology
// interface on every kind, including the degenerate 2×n and m×2 tori where
// neighbor ports collapse onto duplicate vertices.
func TestCSRMatchesTopologyNeighbors(t *testing.T) {
	sizes := [][2]int{{2, 2}, {2, 5}, {5, 2}, {3, 3}, {4, 7}, {6, 6}}
	for _, kind := range Kinds() {
		for _, sz := range sizes {
			topo := MustNew(kind, sz[0], sz[1])
			csr := BuildCSR(topo)
			n := topo.Dims().N()
			if got := len(csr.Neighbors); got != n*Degree {
				t.Fatalf("%v %dx%d: forward table has %d entries, want %d", kind, sz[0], sz[1], got, n*Degree)
			}
			var buf [Degree]int
			for v := 0; v < n; v++ {
				want := topo.Neighbors(v, buf[:0])
				for p := 0; p < Degree; p++ {
					if int(csr.Neighbors[v*Degree+p]) != want[p] {
						t.Fatalf("%v %dx%d: vertex %d port %d = %d, want %d",
							kind, sz[0], sz[1], v, p, csr.Neighbors[v*Degree+p], want[p])
					}
				}
			}
		}
	}
}

// TestCSRReverseIndex checks that the reverse index holds exactly the
// transposed forward edges (with multiplicity) on every kind.
func TestCSRReverseIndex(t *testing.T) {
	for _, kind := range Kinds() {
		for _, sz := range [][2]int{{2, 3}, {3, 4}, {5, 5}} {
			topo := MustNew(kind, sz[0], sz[1])
			csr := BuildCSR(topo)
			n := topo.Dims().N()
			if len(csr.Rev) != n*Degree || len(csr.RevOff) != n+1 {
				t.Fatalf("%v %dx%d: reverse index sized %d/%d", kind, sz[0], sz[1], len(csr.Rev), len(csr.RevOff))
			}
			// Count forward edges v->u and check they all appear reversed.
			fwd := map[[2]int]int{}
			for v := 0; v < n; v++ {
				for p := 0; p < Degree; p++ {
					fwd[[2]int{v, int(csr.Neighbors[v*Degree+p])}]++
				}
			}
			rev := map[[2]int]int{}
			for u := 0; u < n; u++ {
				for _, v := range csr.Rev[csr.RevOff[u]:csr.RevOff[u+1]] {
					rev[[2]int{int(v), u}]++
				}
			}
			if len(fwd) != len(rev) {
				t.Fatalf("%v %dx%d: %d forward vs %d reverse edge keys", kind, sz[0], sz[1], len(fwd), len(rev))
			}
			for e, c := range fwd {
				if rev[e] != c {
					t.Fatalf("%v %dx%d: edge %v has multiplicity %d forward, %d reverse", kind, sz[0], sz[1], e, c, rev[e])
				}
			}
		}
	}
}

// TestCSROfCaches pins the per-topology memoization: two topology values of
// equal kind and size share one index.
func TestCSROfCaches(t *testing.T) {
	a := CSROf(MustNew(KindTorusCordalis, 6, 4))
	b := CSROf(MustNew(KindTorusCordalis, 6, 4))
	if a != b {
		t.Error("CSROf returned distinct indexes for equal topology values")
	}
	c := CSROf(MustNew(KindTorusCordalis, 4, 6))
	if a == c {
		t.Error("CSROf shared an index across different dimensions")
	}
}

// TestBuildCSRAdj pins the general-graph constructor: offsets frame the
// adjacency rows, the reverse index transposes the forward one, and the
// regularity metadata (Uniform, MaxDegree) is computed correctly.
func TestBuildCSRAdj(t *testing.T) {
	// A small irregular digraph-shaped adjacency (vertex 3 is a sink).
	adj := [][]int{{1, 2}, {0, 2, 3}, {0}, {}}
	c := BuildCSRAdj(adj)
	if c.N() != 4 {
		t.Fatalf("N = %d, want 4", c.N())
	}
	if c.Dims() != (Dims{Rows: 1, Cols: 4}) {
		t.Fatalf("Dims = %v, want the 1x4 line", c.Dims())
	}
	if c.Uniform() != 0 {
		t.Fatalf("irregular index reported Uniform = %d", c.Uniform())
	}
	if c.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", c.MaxDegree())
	}
	for v, row := range adj {
		if c.Degree(v) != len(row) {
			t.Fatalf("Degree(%d) = %d, want %d", v, c.Degree(v), len(row))
		}
		got := c.Neighbors[c.Off[v]:c.Off[v+1]]
		for i, u := range row {
			if int(got[i]) != u {
				t.Fatalf("vertex %d neighbor %d: %d, want %d", v, i, got[i], u)
			}
		}
	}
	// Reverse index: who reads v?  readers[v] from the forward table.
	readers := map[int][]int{}
	for v, row := range adj {
		for _, u := range row {
			readers[u] = append(readers[u], v)
		}
	}
	for v := 0; v < c.N(); v++ {
		got := c.Rev[c.RevOff[v]:c.RevOff[v+1]]
		if len(got) != len(readers[v]) {
			t.Fatalf("vertex %d has %d reverse entries, want %d", v, len(got), len(readers[v]))
		}
		seen := map[int]bool{}
		for _, u := range got {
			seen[int(u)] = true
		}
		for _, u := range readers[v] {
			if !seen[u] {
				t.Fatalf("vertex %d reverse list misses reader %d", v, u)
			}
		}
	}

	// A regular adjacency reports its uniform degree.
	ring := [][]int{{1, 2}, {2, 0}, {0, 1}}
	if got := BuildCSRAdj(ring).Uniform(); got != 2 {
		t.Fatalf("ring Uniform = %d, want 2", got)
	}
	// Torus construction carries the dense-degree metadata.
	torus := BuildCSR(MustNew(KindToroidalMesh, 3, 3))
	if torus.Uniform() != Degree || torus.MaxDegree() != Degree {
		t.Fatalf("torus metadata: uniform %d maxdeg %d", torus.Uniform(), torus.MaxDegree())
	}
	if int(torus.Off[5]) != 5*Degree {
		t.Fatal("torus offsets must frame the dense table")
	}
}
