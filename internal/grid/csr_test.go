package grid

import (
	"testing"
)

// TestCSRMatchesTopologyNeighbors pins the forward table to the Topology
// interface on every kind, including the degenerate 2×n and m×2 tori where
// neighbor ports collapse onto duplicate vertices.
func TestCSRMatchesTopologyNeighbors(t *testing.T) {
	sizes := [][2]int{{2, 2}, {2, 5}, {5, 2}, {3, 3}, {4, 7}, {6, 6}}
	for _, kind := range Kinds() {
		for _, sz := range sizes {
			topo := MustNew(kind, sz[0], sz[1])
			csr := BuildCSR(topo)
			n := topo.Dims().N()
			if got := len(csr.Neighbors); got != n*Degree {
				t.Fatalf("%v %dx%d: forward table has %d entries, want %d", kind, sz[0], sz[1], got, n*Degree)
			}
			var buf [Degree]int
			for v := 0; v < n; v++ {
				want := topo.Neighbors(v, buf[:0])
				for p := 0; p < Degree; p++ {
					if int(csr.Neighbors[v*Degree+p]) != want[p] {
						t.Fatalf("%v %dx%d: vertex %d port %d = %d, want %d",
							kind, sz[0], sz[1], v, p, csr.Neighbors[v*Degree+p], want[p])
					}
				}
			}
		}
	}
}

// TestCSRReverseIndex checks that the reverse index holds exactly the
// transposed forward edges (with multiplicity) on every kind.
func TestCSRReverseIndex(t *testing.T) {
	for _, kind := range Kinds() {
		for _, sz := range [][2]int{{2, 3}, {3, 4}, {5, 5}} {
			topo := MustNew(kind, sz[0], sz[1])
			csr := BuildCSR(topo)
			n := topo.Dims().N()
			if len(csr.Rev) != n*Degree || len(csr.RevOff) != n+1 {
				t.Fatalf("%v %dx%d: reverse index sized %d/%d", kind, sz[0], sz[1], len(csr.Rev), len(csr.RevOff))
			}
			// Count forward edges v->u and check they all appear reversed.
			fwd := map[[2]int]int{}
			for v := 0; v < n; v++ {
				for p := 0; p < Degree; p++ {
					fwd[[2]int{v, int(csr.Neighbors[v*Degree+p])}]++
				}
			}
			rev := map[[2]int]int{}
			for u := 0; u < n; u++ {
				for _, v := range csr.Rev[csr.RevOff[u]:csr.RevOff[u+1]] {
					rev[[2]int{int(v), u}]++
				}
			}
			if len(fwd) != len(rev) {
				t.Fatalf("%v %dx%d: %d forward vs %d reverse edge keys", kind, sz[0], sz[1], len(fwd), len(rev))
			}
			for e, c := range fwd {
				if rev[e] != c {
					t.Fatalf("%v %dx%d: edge %v has multiplicity %d forward, %d reverse", kind, sz[0], sz[1], e, c, rev[e])
				}
			}
		}
	}
}

// TestCSROfCaches pins the per-topology memoization: two topology values of
// equal kind and size share one index.
func TestCSROfCaches(t *testing.T) {
	a := CSROf(MustNew(KindTorusCordalis, 6, 4))
	b := CSROf(MustNew(KindTorusCordalis, 6, 4))
	if a != b {
		t.Error("CSROf returned distinct indexes for equal topology values")
	}
	c := CSROf(MustNew(KindTorusCordalis, 4, 6))
	if a == c {
		t.Error("CSROf shared an index across different dimensions")
	}
}
