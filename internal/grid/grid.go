// Package grid defines the interaction topologies studied by the paper
// "Dynamic Monopolies in Colored Tori": the toroidal mesh, the torus cordalis
// and the torus serpentinus.  All three are 4-regular graphs laid out on an
// m×n lattice of vertices; they differ only in how the lattice wraps around
// at its borders (Section II.A of the paper).
//
// Vertices are addressed either by (row, column) coordinates or by a dense
// integer index row*Cols+col; the integer form is what the simulation engine
// uses in its inner loops.
package grid

import (
	"fmt"
)

// Degree is the number of neighbors of every vertex in all three torus
// topologies.  When a dimension equals 2 the four neighbor "ports" may refer
// to the same vertex twice; the protocol is defined on the four ports, so
// duplicates are preserved.
const Degree = 4

// Coord is a (row, column) vertex position.
type Coord struct {
	Row, Col int
}

// String renders the coordinate as "(r,c)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// Dims describes the size of an m×n torus: Rows = m, Cols = n.
type Dims struct {
	Rows, Cols int
}

// NewDims validates and returns the dimensions of an m×n torus.  The paper
// requires m, n >= 2.
func NewDims(rows, cols int) (Dims, error) {
	if rows < 2 || cols < 2 {
		return Dims{}, fmt.Errorf("grid: dimensions must be at least 2x2, got %dx%d", rows, cols)
	}
	return Dims{Rows: rows, Cols: cols}, nil
}

// MustDims is NewDims but panics on invalid dimensions.  It is intended for
// tests and for constructions whose sizes are validated earlier.
func MustDims(rows, cols int) Dims {
	d, err := NewDims(rows, cols)
	if err != nil {
		panic(err)
	}
	return d
}

// N returns the number of vertices.
func (d Dims) N() int { return d.Rows * d.Cols }

// Min returns min(Rows, Cols), the quantity the paper calls N.
func (d Dims) Min() int {
	if d.Rows < d.Cols {
		return d.Rows
	}
	return d.Cols
}

// Index converts a coordinate to its dense vertex index.
func (d Dims) Index(c Coord) int { return c.Row*d.Cols + c.Col }

// IndexRC converts a (row, col) pair to its dense vertex index.
func (d Dims) IndexRC(row, col int) int { return row*d.Cols + col }

// Coord converts a dense vertex index back to a coordinate.
func (d Dims) Coord(v int) Coord { return Coord{Row: v / d.Cols, Col: v % d.Cols} }

// Contains reports whether the coordinate lies inside the lattice.
func (d Dims) Contains(c Coord) bool {
	return c.Row >= 0 && c.Row < d.Rows && c.Col >= 0 && c.Col < d.Cols
}

// Wrap normalizes a coordinate modulo the lattice dimensions (toroidal-mesh
// style wrapping, used by helpers that reason about rectangles).
func (d Dims) Wrap(c Coord) Coord {
	r := ((c.Row % d.Rows) + d.Rows) % d.Rows
	col := ((c.Col % d.Cols) + d.Cols) % d.Cols
	return Coord{Row: r, Col: col}
}

// String renders the dimensions as "RxC".
func (d Dims) String() string { return fmt.Sprintf("%dx%d", d.Rows, d.Cols) }

// Kind identifies one of the three torus topologies.
type Kind int

const (
	// KindToroidalMesh wraps rows onto themselves and columns onto
	// themselves.
	KindToroidalMesh Kind = iota
	// KindTorusCordalis chains all rows into a single horizontal spiral:
	// the last vertex of row i is connected to the first vertex of row
	// (i+1) mod m.  Columns wrap as in the toroidal mesh.
	KindTorusCordalis
	// KindTorusSerpentinus additionally chains all columns into a single
	// vertical spiral: the last vertex of column j is connected to the
	// first vertex of column (j-1) mod n.
	KindTorusSerpentinus
)

// Kinds lists the three topologies in the order they appear in the paper.
func Kinds() []Kind {
	return []Kind{KindToroidalMesh, KindTorusCordalis, KindTorusSerpentinus}
}

// String returns the paper's name for the topology.
func (k Kind) String() string {
	switch k {
	case KindToroidalMesh:
		return "toroidal-mesh"
	case KindTorusCordalis:
		return "torus-cordalis"
	case KindTorusSerpentinus:
		return "torus-serpentinus"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a topology name (as produced by Kind.String) back to a
// Kind.  It accepts exactly the spellings of kindNames, which is also what
// the registry pre-populates, so ParseKind and ByName agree by
// construction.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		for _, name := range kindNames(k) {
			if s == name {
				return k, nil
			}
		}
	}
	return 0, fmt.Errorf("grid: unknown topology %q", s)
}

// Topology is a 4-regular interaction topology over an m×n vertex lattice.
//
// Implementations must be immutable after construction and safe for
// concurrent readers; the parallel simulation engine shares one Topology
// across workers.
type Topology interface {
	// Dims returns the lattice dimensions.
	Dims() Dims
	// Kind identifies the topology.
	Kind() Kind
	// Name returns the paper's name for the topology.
	Name() string
	// Neighbors appends the four neighbor indices of vertex v to buf and
	// returns the extended slice.  The order is up, down, left, right
	// (with the topology-specific border wrapping).  Passing a buffer
	// with capacity >= 4 avoids allocation in inner loops.
	Neighbors(v int, buf []int) []int
	// NeighborCoords is the coordinate form of Neighbors.
	NeighborCoords(c Coord, buf []Coord) []Coord
}

// New constructs the topology of the given kind and size.
func New(kind Kind, rows, cols int) (Topology, error) {
	d, err := NewDims(rows, cols)
	if err != nil {
		return nil, err
	}
	switch kind {
	case KindToroidalMesh:
		return ToroidalMesh{dims: d}, nil
	case KindTorusCordalis:
		return TorusCordalis{dims: d}, nil
	case KindTorusSerpentinus:
		return TorusSerpentinus{dims: d}, nil
	default:
		return nil, fmt.Errorf("grid: unknown topology kind %d", int(kind))
	}
}

// MustNew is New but panics on error; intended for tests and examples with
// hard-coded sizes.
func MustNew(kind Kind, rows, cols int) Topology {
	t, err := New(kind, rows, cols)
	if err != nil {
		panic(err)
	}
	return t
}

// NeighborsOf is a convenience wrapper returning a freshly allocated
// neighbor slice for vertex v.
func NeighborsOf(t Topology, v int) []int {
	return t.Neighbors(v, make([]int, 0, Degree))
}

// UniqueNeighbors returns the de-duplicated neighbor set of v (duplicates
// appear only when a dimension equals 2).  The result preserves first-seen
// order.
func UniqueNeighbors(t Topology, v int) []int {
	var buf [Degree]int
	ns := t.Neighbors(v, buf[:0])
	out := make([]int, 0, Degree)
	for _, u := range ns {
		dup := false
		for _, w := range out {
			if w == u {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, u)
		}
	}
	return out
}

// EdgeCount returns the number of undirected edges of the topology counted
// on the simple graph (parallel edges collapsed).
func EdgeCount(t Topology) int {
	n := t.Dims().N()
	count := 0
	for v := 0; v < n; v++ {
		for _, u := range UniqueNeighbors(t, v) {
			if u > v {
				count++
			} else if u == v {
				// Self-loops cannot occur in these topologies, but guard
				// against miscounting if they ever did.
				count++
			}
		}
	}
	return count
}

// Adjacent reports whether u and v are adjacent in the topology (on the
// simple graph).
func Adjacent(t Topology, u, v int) bool {
	for _, w := range UniqueNeighbors(t, u) {
		if w == v {
			return true
		}
	}
	return false
}
