package grid

// TorusCordalis is the torus in which the horizontal wrap-around forms a
// single spiral: the last vertex (i, n-1) of each row is connected to the
// first vertex ((i+1) mod m, 0) of the next row, while columns wrap as in
// the toroidal mesh (Definition 1 of the paper).
type TorusCordalis struct {
	dims Dims
}

// NewTorusCordalis returns the torus cordalis of the given size.
func NewTorusCordalis(rows, cols int) (TorusCordalis, error) {
	d, err := NewDims(rows, cols)
	if err != nil {
		return TorusCordalis{}, err
	}
	return TorusCordalis{dims: d}, nil
}

// Dims returns the lattice dimensions.
func (t TorusCordalis) Dims() Dims { return t.dims }

// Kind returns KindTorusCordalis.
func (t TorusCordalis) Kind() Kind { return KindTorusCordalis }

// Name returns "torus-cordalis".
func (t TorusCordalis) Name() string { return KindTorusCordalis.String() }

// NeighborCoords appends the four neighbors of c in up, down, left, right
// order.  "Left" of the first vertex of a row is the last vertex of the
// previous row; "right" of the last vertex of a row is the first vertex of
// the next row.
func (t TorusCordalis) NeighborCoords(c Coord, buf []Coord) []Coord {
	m, n := t.dims.Rows, t.dims.Cols
	up := Coord{Row: (c.Row - 1 + m) % m, Col: c.Col}
	down := Coord{Row: (c.Row + 1) % m, Col: c.Col}

	var left Coord
	if c.Col > 0 {
		left = Coord{Row: c.Row, Col: c.Col - 1}
	} else {
		left = Coord{Row: (c.Row - 1 + m) % m, Col: n - 1}
	}
	var right Coord
	if c.Col < n-1 {
		right = Coord{Row: c.Row, Col: c.Col + 1}
	} else {
		right = Coord{Row: (c.Row + 1) % m, Col: 0}
	}
	return append(buf, up, down, left, right)
}

// Neighbors appends the four neighbor indices of v in up, down, left, right
// order.
func (t TorusCordalis) Neighbors(v int, buf []int) []int {
	d := t.dims
	m, n := d.Rows, d.Cols
	row, col := v/n, v%n

	upRow := row - 1
	if upRow < 0 {
		upRow = m - 1
	}
	downRow := row + 1
	if downRow == m {
		downRow = 0
	}

	var left, right int
	if col > 0 {
		left = row*n + col - 1
	} else {
		left = upRow*n + n - 1
	}
	if col < n-1 {
		right = row*n + col + 1
	} else {
		right = downRow * n
	}
	return append(buf, upRow*n+col, downRow*n+col, left, right)
}
