package grid

// TorusSerpentinus is the torus in which both the horizontal and the
// vertical wrap-arounds form single spirals: rows chain as in the torus
// cordalis, and additionally the last vertex (m-1, j) of each column is
// connected to the first vertex (0, (j-1) mod n) of the previous column
// (Definition 1 of the paper).
type TorusSerpentinus struct {
	dims Dims
}

// NewTorusSerpentinus returns the torus serpentinus of the given size.
func NewTorusSerpentinus(rows, cols int) (TorusSerpentinus, error) {
	d, err := NewDims(rows, cols)
	if err != nil {
		return TorusSerpentinus{}, err
	}
	return TorusSerpentinus{dims: d}, nil
}

// Dims returns the lattice dimensions.
func (t TorusSerpentinus) Dims() Dims { return t.dims }

// Kind returns KindTorusSerpentinus.
func (t TorusSerpentinus) Kind() Kind { return KindTorusSerpentinus }

// Name returns "torus-serpentinus".
func (t TorusSerpentinus) Name() string { return KindTorusSerpentinus.String() }

// NeighborCoords appends the four neighbors of c in up, down, left, right
// order.  "Down" of the last vertex of column j is the first vertex of
// column (j-1) mod n; "up" of the first vertex of column j is the last
// vertex of column (j+1) mod n.  Left/right follow the cordalis spiral.
func (t TorusSerpentinus) NeighborCoords(c Coord, buf []Coord) []Coord {
	m, n := t.dims.Rows, t.dims.Cols

	var up Coord
	if c.Row > 0 {
		up = Coord{Row: c.Row - 1, Col: c.Col}
	} else {
		up = Coord{Row: m - 1, Col: (c.Col + 1) % n}
	}
	var down Coord
	if c.Row < m-1 {
		down = Coord{Row: c.Row + 1, Col: c.Col}
	} else {
		down = Coord{Row: 0, Col: (c.Col - 1 + n) % n}
	}
	var left Coord
	if c.Col > 0 {
		left = Coord{Row: c.Row, Col: c.Col - 1}
	} else {
		left = Coord{Row: (c.Row - 1 + m) % m, Col: n - 1}
	}
	var right Coord
	if c.Col < n-1 {
		right = Coord{Row: c.Row, Col: c.Col + 1}
	} else {
		right = Coord{Row: (c.Row + 1) % m, Col: 0}
	}
	return append(buf, up, down, left, right)
}

// Neighbors appends the four neighbor indices of v in up, down, left, right
// order.
func (t TorusSerpentinus) Neighbors(v int, buf []int) []int {
	d := t.dims
	m, n := d.Rows, d.Cols
	row, col := v/n, v%n

	var up, down int
	if row > 0 {
		up = (row-1)*n + col
	} else {
		up = (m-1)*n + (col+1)%n
	}
	if row < m-1 {
		down = (row+1)*n + col
	} else {
		down = (col - 1 + n) % n
	}

	var left, right int
	if col > 0 {
		left = row*n + col - 1
	} else {
		left = ((row-1+m)%m)*n + n - 1
	}
	if col < n-1 {
		right = row*n + col + 1
	} else {
		right = ((row + 1) % m) * n
	}
	return append(buf, up, down, left, right)
}
