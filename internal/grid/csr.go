package grid

import (
	"reflect"
	"sync"
)

// CSR is a compressed sparse row adjacency index of a Topology, the flat
// form the simulation engine iterates over.  It is built once per topology
// (see CSROf) and shared by every engine over that topology.
//
// The forward table is fully dense because all three tori are Degree-regular:
// the Degree neighbor ids of vertex v occupy Neighbors[Degree*v : Degree*v+Degree],
// in the same up, down, left, right order Topology.Neighbors produces.  The
// reverse index answers the frontier stepper's question — "when v changes
// color, who has to be re-evaluated next round?" — as the vertices u with
// v ∈ N(u): they occupy Rev[RevOff[v]:RevOff[v+1]].  On the (undirected)
// tori the reverse lists coincide with the forward ones as sets, but the
// index is built generically so externally registered, possibly asymmetric
// topologies stay correct.  Reverse lists may contain duplicates when a
// dimension equals 2 (the four neighbor ports collapse); consumers must be
// idempotent under duplicate delivery, which the frontier's epoch marks are.
//
// A CSR is immutable after construction and safe for concurrent use.
type CSR struct {
	dims Dims
	// Neighbors is the dense forward table, Degree entries per vertex.
	Neighbors []int32
	// RevOff and Rev form the reverse (influence) index: the vertices whose
	// neighborhoods contain v are Rev[RevOff[v]:RevOff[v+1]].
	RevOff []int32
	Rev    []int32
}

// Dims returns the lattice dimensions the index was built for.
func (c *CSR) Dims() Dims { return c.dims }

// BuildCSR computes the CSR index of a topology from scratch.  Prefer CSROf,
// which caches the result per topology value.
func BuildCSR(t Topology) *CSR {
	d := t.Dims()
	n := d.N()
	c := &CSR{
		dims:      d,
		Neighbors: make([]int32, 0, n*Degree),
		RevOff:    make([]int32, n+1),
		Rev:       make([]int32, n*Degree),
	}
	var buf [Degree]int
	for v := 0; v < n; v++ {
		for _, u := range t.Neighbors(v, buf[:0]) {
			c.Neighbors = append(c.Neighbors, int32(u))
		}
	}
	// Counting sort of the transposed edge list: first in-degrees...
	for _, u := range c.Neighbors {
		c.RevOff[u+1]++
	}
	for v := 0; v < n; v++ {
		c.RevOff[v+1] += c.RevOff[v]
	}
	// ...then placement, using a moving cursor per target vertex.
	cursor := make([]int32, n)
	copy(cursor, c.RevOff[:n])
	for v := 0; v < n; v++ {
		base := v * Degree
		for p := 0; p < Degree; p++ {
			u := c.Neighbors[base+p]
			c.Rev[cursor[u]] = int32(v)
			cursor[u]++
		}
	}
	return c
}

// csrCache memoizes CSR indexes per Topology value.  The built-in tori are
// tiny comparable structs, so topologies of equal kind and size share one
// index no matter how many engines are built over them.
var csrCache sync.Map // Topology -> *CSR

// comparableTopology reports whether a topology value can be used as a map
// key, the precondition of the per-topology caches (CSROf, ShiftPlanOf).
func comparableTopology(t Topology) bool {
	return reflect.TypeOf(t).Comparable()
}

// CSROf returns the (possibly cached) CSR index of a topology.  Topologies
// whose dynamic type is not comparable cannot be used as cache keys and get
// a fresh index per call.
//
// Cached indexes are retained for the life of the process (~32 bytes per
// vertex per distinct topology value); long-running processes sweeping many
// distinct sizes that must bound memory can call BuildCSR through their own
// cache instead.
func CSROf(t Topology) *CSR {
	if !comparableTopology(t) {
		return BuildCSR(t)
	}
	if cached, ok := csrCache.Load(t); ok {
		return cached.(*CSR)
	}
	c := BuildCSR(t)
	cached, _ := csrCache.LoadOrStore(t, c)
	return cached.(*CSR)
}
