package grid

import (
	"fmt"
	"reflect"
	"sync"
)

// CSR is a compressed sparse row adjacency index, the flat form the
// simulation engine iterates over.  Two constructions exist: BuildCSR for
// the Degree-regular torus topologies (see CSROf for the per-topology cache)
// and BuildCSRAdj for arbitrary adjacency lists — the seam that lets one
// engine run over any substrate, torus or not.
//
// The forward table lists the neighbors of vertex v in
// Neighbors[Off[v]:Off[v+1]].  When the index is degree-regular
// (Uniform() > 0) the slice is additionally dense — vertex v's neighbors
// occupy Neighbors[Uniform()*v : Uniform()*(v+1)] — which is what the
// engine's unrolled torus loops rely on.  The order of a torus row is the
// up, down, left, right order Topology.Neighbors produces; a general row
// preserves the adjacency-list order it was built from.
//
// The reverse index answers the frontier stepper's question — "when v
// changes color, who has to be re-evaluated next round?" — as the vertices
// u with v ∈ N(u): they occupy Rev[RevOff[v]:RevOff[v+1]].  On undirected
// substrates the reverse lists coincide with the forward ones as sets, but
// the index is built generically so externally registered, possibly
// asymmetric topologies stay correct.  Reverse lists may contain duplicates
// when a torus dimension equals 2 (the four neighbor ports collapse);
// consumers must be idempotent under duplicate delivery, which the
// frontier's epoch marks are.
//
// A CSR is immutable after construction and safe for concurrent use.
type CSR struct {
	dims Dims
	// Neighbors is the forward table; vertex v's neighbors occupy
	// Neighbors[Off[v]:Off[v+1]].
	Neighbors []int32
	// Off frames each vertex's forward row, len n+1.
	Off []int32
	// RevOff and Rev form the reverse (influence) index: the vertices whose
	// neighborhoods contain v are Rev[RevOff[v]:RevOff[v+1]].
	RevOff []int32
	Rev    []int32

	uniform int
	maxDeg  int
}

// Dims returns the vertex layout the index was built for.  Torus indexes
// carry their lattice dimensions; general-graph indexes use the degenerate
// 1×n layout (a flat vertex line), which exists only so colorings can be
// sized and matched against the index.
func (c *CSR) Dims() Dims { return c.dims }

// N returns the number of vertices.
func (c *CSR) N() int { return len(c.Off) - 1 }

// Uniform returns the common vertex degree when every vertex has exactly
// the same number of forward neighbors, and 0 for irregular indexes.  A
// positive Uniform licenses the engine's dense unrolled loops.
func (c *CSR) Uniform() int { return c.uniform }

// MaxDegree returns the largest forward-neighbor count of any vertex (0 for
// the empty index).  The engine sizes its per-run scratch buffers with it.
func (c *CSR) MaxDegree() int { return c.maxDeg }

// Degree returns the forward-neighbor count of vertex v.
func (c *CSR) Degree(v int) int { return int(c.Off[v+1] - c.Off[v]) }

// BuildCSR computes the CSR index of a torus topology from scratch.  Prefer
// CSROf, which caches the result per topology value.
func BuildCSR(t Topology) *CSR {
	d := t.Dims()
	n := d.N()
	c := &CSR{
		dims:      d,
		Neighbors: make([]int32, 0, n*Degree),
		Off:       make([]int32, n+1),
		uniform:   Degree,
		maxDeg:    Degree,
	}
	var buf [Degree]int
	for v := 0; v < n; v++ {
		for _, u := range t.Neighbors(v, buf[:0]) {
			c.Neighbors = append(c.Neighbors, int32(u))
		}
		c.Off[v+1] = int32(len(c.Neighbors))
	}
	if n == 0 {
		c.maxDeg = 0
	}
	c.buildReverse()
	return c
}

// BuildCSRAdj computes the CSR index of an arbitrary adjacency-list graph:
// adj[v] lists the (directed) neighbors vertex v reads each round.  It is
// the general-graph entry into the engine; undirected graphs simply list
// every edge in both rows.  The index gets the degenerate 1×n vertex layout
// (see Dims).
func BuildCSRAdj(adj [][]int) *CSR {
	n := len(adj)
	total := 0
	for _, row := range adj {
		total += len(row)
	}
	c := &CSR{
		dims:      Dims{Rows: 1, Cols: n},
		Neighbors: make([]int32, 0, total),
		Off:       make([]int32, n+1),
	}
	uniform := -1
	for v, row := range adj {
		for _, u := range row {
			if u < 0 || u >= n {
				panic(fmt.Sprintf("grid: BuildCSRAdj neighbor %d of vertex %d outside [0,%d)", u, v, n))
			}
			c.Neighbors = append(c.Neighbors, int32(u))
		}
		c.Off[v+1] = int32(len(c.Neighbors))
		if len(row) > c.maxDeg {
			c.maxDeg = len(row)
		}
		switch uniform {
		case -1:
			uniform = len(row)
		case len(row):
		default:
			uniform = 0
		}
	}
	if uniform > 0 {
		c.uniform = uniform
	}
	c.buildReverse()
	return c
}

// buildReverse fills RevOff/Rev by a counting sort of the transposed
// forward edge list.
func (c *CSR) buildReverse() {
	n := c.N()
	c.RevOff = make([]int32, n+1)
	c.Rev = make([]int32, len(c.Neighbors))
	// First in-degrees...
	for _, u := range c.Neighbors {
		c.RevOff[u+1]++
	}
	for v := 0; v < n; v++ {
		c.RevOff[v+1] += c.RevOff[v]
	}
	// ...then placement, using a moving cursor per target vertex.
	cursor := make([]int32, n)
	copy(cursor, c.RevOff[:n])
	for v := 0; v < n; v++ {
		for _, u := range c.Neighbors[c.Off[v]:c.Off[v+1]] {
			c.Rev[cursor[u]] = int32(v)
			cursor[u]++
		}
	}
}

// csrCache memoizes CSR indexes per Topology value.  The built-in tori are
// tiny comparable structs, so topologies of equal kind and size share one
// index no matter how many engines are built over them.
var csrCache sync.Map // Topology -> *CSR

// comparableTopology reports whether a topology value can be used as a map
// key, the precondition of the per-topology caches (CSROf, ShiftPlanOf).
func comparableTopology(t Topology) bool {
	return reflect.TypeOf(t).Comparable()
}

// CSROf returns the (possibly cached) CSR index of a topology.  Topologies
// whose dynamic type is not comparable cannot be used as cache keys and get
// a fresh index per call.
//
// Cached indexes are retained for the life of the process (~32 bytes per
// vertex per distinct topology value); long-running processes sweeping many
// distinct sizes that must bound memory can call BuildCSR through their own
// cache instead.
func CSROf(t Topology) *CSR {
	if !comparableTopology(t) {
		return BuildCSR(t)
	}
	if cached, ok := csrCache.Load(t); ok {
		return cached.(*CSR)
	}
	c := BuildCSR(t)
	cached, _ := csrCache.LoadOrStore(t, c)
	return cached.(*CSR)
}
