package grid

import (
	"testing"
	"testing/quick"
)

func TestNewDimsValidation(t *testing.T) {
	if _, err := NewDims(1, 5); err == nil {
		t.Error("expected error for rows < 2")
	}
	if _, err := NewDims(5, 1); err == nil {
		t.Error("expected error for cols < 2")
	}
	d, err := NewDims(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows != 3 || d.Cols != 4 || d.N() != 12 {
		t.Errorf("unexpected dims %+v", d)
	}
}

func TestMustDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustDims should panic on invalid size")
		}
	}()
	MustDims(0, 0)
}

func TestIndexCoordRoundTrip(t *testing.T) {
	d := MustDims(6, 9)
	for v := 0; v < d.N(); v++ {
		c := d.Coord(v)
		if !d.Contains(c) {
			t.Fatalf("Coord(%d) = %v outside lattice", v, c)
		}
		if got := d.Index(c); got != v {
			t.Fatalf("Index(Coord(%d)) = %d", v, got)
		}
		if got := d.IndexRC(c.Row, c.Col); got != v {
			t.Fatalf("IndexRC mismatch for %d", v)
		}
	}
}

func TestDimsMin(t *testing.T) {
	if MustDims(3, 7).Min() != 3 || MustDims(7, 3).Min() != 3 || MustDims(5, 5).Min() != 5 {
		t.Error("Dims.Min wrong")
	}
}

func TestWrap(t *testing.T) {
	d := MustDims(4, 6)
	cases := []struct{ in, want Coord }{
		{Coord{-1, 0}, Coord{3, 0}},
		{Coord{4, 6}, Coord{0, 0}},
		{Coord{2, -1}, Coord{2, 5}},
		{Coord{9, 13}, Coord{1, 1}},
	}
	for _, c := range cases {
		if got := d.Wrap(c.in); got != c.want {
			t.Errorf("Wrap(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestKindStringsAndParse(t *testing.T) {
	for _, k := range Kinds() {
		name := k.String()
		parsed, err := ParseKind(name)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", name, err)
		}
		if parsed != k {
			t.Errorf("ParseKind(%q) = %v, want %v", name, parsed, k)
		}
	}
	if _, err := ParseKind("hypercube"); err == nil {
		t.Error("expected error for unknown topology name")
	}
	aliases := map[string]Kind{
		"mesh": KindToroidalMesh, "cordalis": KindTorusCordalis, "serpentinus": KindTorusSerpentinus,
	}
	for alias, want := range aliases {
		got, err := ParseKind(alias)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v", alias, got, err)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown Kind should still render")
	}
}

func TestNewTopology(t *testing.T) {
	for _, k := range Kinds() {
		topo, err := New(k, 5, 7)
		if err != nil {
			t.Fatal(err)
		}
		if topo.Kind() != k {
			t.Errorf("Kind = %v, want %v", topo.Kind(), k)
		}
		if topo.Name() != k.String() {
			t.Errorf("Name = %q, want %q", topo.Name(), k.String())
		}
		if topo.Dims() != MustDims(5, 7) {
			t.Errorf("Dims = %v", topo.Dims())
		}
	}
	if _, err := New(Kind(42), 5, 5); err == nil {
		t.Error("expected error for unknown kind")
	}
	if _, err := New(KindToroidalMesh, 1, 5); err == nil {
		t.Error("expected error for bad size")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid size")
		}
	}()
	MustNew(KindToroidalMesh, 0, 3)
}

// Every vertex has exactly four neighbor ports, and every port points to a
// valid vertex.
func TestDegreeAndRange(t *testing.T) {
	for _, k := range Kinds() {
		for _, size := range [][2]int{{2, 2}, {2, 5}, {5, 2}, {3, 3}, {4, 6}, {7, 5}} {
			topo := MustNew(k, size[0], size[1])
			n := topo.Dims().N()
			for v := 0; v < n; v++ {
				ns := NeighborsOf(topo, v)
				if len(ns) != Degree {
					t.Fatalf("%v %dx%d: vertex %d has %d ports", k, size[0], size[1], v, len(ns))
				}
				for _, u := range ns {
					if u < 0 || u >= n {
						t.Fatalf("%v %dx%d: vertex %d has out-of-range neighbor %d", k, size[0], size[1], v, u)
					}
					if u == v {
						t.Fatalf("%v %dx%d: vertex %d is its own neighbor", k, size[0], size[1], v)
					}
				}
			}
		}
	}
}

// Adjacency must be symmetric as a multiset: u appears in N(v) exactly as
// many times as v appears in N(u).
func TestNeighborSymmetry(t *testing.T) {
	for _, k := range Kinds() {
		for _, size := range [][2]int{{2, 2}, {2, 4}, {4, 2}, {3, 5}, {5, 5}, {6, 4}} {
			topo := MustNew(k, size[0], size[1])
			n := topo.Dims().N()
			count := func(list []int, x int) int {
				c := 0
				for _, y := range list {
					if y == x {
						c++
					}
				}
				return c
			}
			for v := 0; v < n; v++ {
				nv := NeighborsOf(topo, v)
				for _, u := range nv {
					nu := NeighborsOf(topo, u)
					if count(nv, u) != count(nu, v) {
						t.Fatalf("%v %dx%d: asymmetric adjacency between %d and %d (%v vs %v)",
							k, size[0], size[1], v, u, nv, nu)
					}
				}
			}
		}
	}
}

// Neighbors and NeighborCoords must agree.
func TestNeighborsMatchCoords(t *testing.T) {
	for _, k := range Kinds() {
		topo := MustNew(k, 5, 6)
		d := topo.Dims()
		for v := 0; v < d.N(); v++ {
			byIndex := NeighborsOf(topo, v)
			coords := topo.NeighborCoords(d.Coord(v), nil)
			if len(coords) != len(byIndex) {
				t.Fatalf("length mismatch for %v vertex %d", k, v)
			}
			for i := range coords {
				if d.Index(coords[i]) != byIndex[i] {
					t.Fatalf("%v vertex %d port %d: coord %v (=%d) vs index %d",
						k, v, i, coords[i], d.Index(coords[i]), byIndex[i])
				}
			}
		}
	}
}

func TestNeighborsBufferReuse(t *testing.T) {
	topo := MustNew(KindToroidalMesh, 4, 4)
	buf := make([]int, 0, Degree)
	first := topo.Neighbors(0, buf)
	second := topo.Neighbors(5, buf)
	if len(first) != 4 || len(second) != 4 {
		t.Fatal("buffered Neighbors returned wrong lengths")
	}
	// Reusing the same backing array is expected; the caller controls it.
	if &first[0] != &second[0] {
		t.Log("buffer was not reused (allowed, but unexpected)")
	}
}

func TestToroidalMeshSpecificNeighbors(t *testing.T) {
	topo := MustNew(KindToroidalMesh, 5, 5).(ToroidalMesh)
	d := topo.Dims()
	// Interior vertex (2,2).
	got := topo.NeighborCoords(Coord{2, 2}, nil)
	want := []Coord{{1, 2}, {3, 2}, {2, 1}, {2, 3}}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("mesh (2,2) port %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Corner (0,0) wraps to row 4 and column 4.
	got = topo.NeighborCoords(Coord{0, 0}, nil)
	want = []Coord{{4, 0}, {1, 0}, {0, 4}, {0, 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("mesh (0,0) port %d = %v, want %v", i, got[i], want[i])
		}
	}
	_ = d
}

func TestCordalisSpiralNeighbors(t *testing.T) {
	topo := MustNew(KindTorusCordalis, 4, 5).(TorusCordalis)
	// Right neighbor of the last vertex of row 1 is the first vertex of row 2.
	got := topo.NeighborCoords(Coord{1, 4}, nil)
	if got[3] != (Coord{2, 0}) {
		t.Errorf("cordalis right of (1,4) = %v, want (2,0)", got[3])
	}
	// Left neighbor of the first vertex of row 2 is the last vertex of row 1.
	got = topo.NeighborCoords(Coord{2, 0}, nil)
	if got[2] != (Coord{1, 4}) {
		t.Errorf("cordalis left of (2,0) = %v, want (1,4)", got[2])
	}
	// The last vertex of the last row wraps to (0,0).
	got = topo.NeighborCoords(Coord{3, 4}, nil)
	if got[3] != (Coord{0, 0}) {
		t.Errorf("cordalis right of (3,4) = %v, want (0,0)", got[3])
	}
	// Vertical edges are mesh-like.
	if got[0] != (Coord{2, 4}) || got[1] != (Coord{0, 4}) {
		t.Errorf("cordalis vertical neighbors of (3,4) = %v,%v", got[0], got[1])
	}
}

func TestSerpentinusSpiralNeighbors(t *testing.T) {
	topo := MustNew(KindTorusSerpentinus, 4, 5).(TorusSerpentinus)
	// Down neighbor of the last vertex of column 2 is the first vertex of column 1.
	got := topo.NeighborCoords(Coord{3, 2}, nil)
	if got[1] != (Coord{0, 1}) {
		t.Errorf("serpentinus down of (3,2) = %v, want (0,1)", got[1])
	}
	// Up neighbor of the first vertex of column 1 is the last vertex of column 2.
	got = topo.NeighborCoords(Coord{0, 1}, nil)
	if got[0] != (Coord{3, 2}) {
		t.Errorf("serpentinus up of (0,1) = %v, want (3,2)", got[0])
	}
	// Column 0 bottom wraps to column n-1 top.
	got = topo.NeighborCoords(Coord{3, 0}, nil)
	if got[1] != (Coord{0, 4}) {
		t.Errorf("serpentinus down of (3,0) = %v, want (0,4)", got[1])
	}
	// Horizontal edges follow the cordalis spiral.
	got = topo.NeighborCoords(Coord{2, 4}, nil)
	if got[3] != (Coord{3, 0}) {
		t.Errorf("serpentinus right of (2,4) = %v, want (3,0)", got[3])
	}
}

// Following the "right" port from (0,0) must visit all vertices exactly once
// in the cordalis and serpentinus (single horizontal spiral), while in the
// mesh it only visits one row.
func TestHorizontalSpiralStructure(t *testing.T) {
	const m, n = 4, 5
	walk := func(topo Topology) int {
		d := topo.Dims()
		visited := make(map[int]bool)
		v := 0
		for !visited[v] {
			visited[v] = true
			v = topo.Neighbors(v, nil)[3] // right port
		}
		_ = d
		return len(visited)
	}
	if got := walk(MustNew(KindToroidalMesh, m, n)); got != n {
		t.Errorf("mesh right-walk visited %d vertices, want %d", got, n)
	}
	if got := walk(MustNew(KindTorusCordalis, m, n)); got != m*n {
		t.Errorf("cordalis right-walk visited %d vertices, want %d", got, m*n)
	}
	if got := walk(MustNew(KindTorusSerpentinus, m, n)); got != m*n {
		t.Errorf("serpentinus right-walk visited %d vertices, want %d", got, m*n)
	}
}

// Following the "down" port must visit one column in the mesh and cordalis
// but all vertices in the serpentinus (single vertical spiral).
func TestVerticalSpiralStructure(t *testing.T) {
	const m, n = 4, 5
	walk := func(topo Topology) int {
		visited := make(map[int]bool)
		v := 0
		for !visited[v] {
			visited[v] = true
			v = topo.Neighbors(v, nil)[1] // down port
		}
		return len(visited)
	}
	if got := walk(MustNew(KindToroidalMesh, m, n)); got != m {
		t.Errorf("mesh down-walk visited %d vertices, want %d", got, m)
	}
	if got := walk(MustNew(KindTorusCordalis, m, n)); got != m {
		t.Errorf("cordalis down-walk visited %d vertices, want %d", got, m)
	}
	if got := walk(MustNew(KindTorusSerpentinus, m, n)); got != m*n {
		t.Errorf("serpentinus down-walk visited %d vertices, want %d", got, m*n)
	}
}

func TestEdgeCount(t *testing.T) {
	// For m,n >= 3 all three topologies are simple 4-regular graphs, hence
	// have exactly 2*m*n edges.
	for _, k := range Kinds() {
		for _, size := range [][2]int{{3, 3}, {4, 5}, {6, 6}} {
			topo := MustNew(k, size[0], size[1])
			want := 2 * size[0] * size[1]
			if got := EdgeCount(topo); got != want {
				t.Errorf("%v %v: EdgeCount = %d, want %d", k, size, got, want)
			}
		}
	}
}

func TestUniqueNeighborsOnDegenerateTorus(t *testing.T) {
	// On a 2xN mesh the up and down ports of a vertex coincide.
	topo := MustNew(KindToroidalMesh, 2, 5)
	u := UniqueNeighbors(topo, 0)
	if len(u) != 3 {
		t.Errorf("2x5 mesh: UniqueNeighbors(0) = %v, want 3 entries", u)
	}
	// On a 3xN mesh all four are distinct.
	topo = MustNew(KindToroidalMesh, 3, 5)
	if got := UniqueNeighbors(topo, 0); len(got) != 4 {
		t.Errorf("3x5 mesh: UniqueNeighbors(0) = %v, want 4 entries", got)
	}
}

func TestAdjacent(t *testing.T) {
	topo := MustNew(KindToroidalMesh, 4, 4)
	d := topo.Dims()
	if !Adjacent(topo, d.IndexRC(0, 0), d.IndexRC(0, 1)) {
		t.Error("(0,0) and (0,1) should be adjacent")
	}
	if Adjacent(topo, d.IndexRC(0, 0), d.IndexRC(2, 2)) {
		t.Error("(0,0) and (2,2) should not be adjacent")
	}
}

// Property: in every topology, every vertex is reachable from vertex 0
// (connectivity), checked on small random sizes.
func TestConnectivityProperty(t *testing.T) {
	f := func(kindSeed, rowSeed, colSeed uint8) bool {
		kind := Kinds()[int(kindSeed)%3]
		rows := 2 + int(rowSeed)%7
		cols := 2 + int(colSeed)%7
		topo := MustNew(kind, rows, cols)
		n := topo.Dims().N()
		seen := make([]bool, n)
		stack := []int{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range NeighborsOf(topo, v) {
				if !seen[u] {
					seen[u] = true
					count++
					stack = append(stack, u)
				}
			}
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCoordString(t *testing.T) {
	if (Coord{1, 2}).String() != "(1,2)" {
		t.Error("Coord.String format changed")
	}
	if MustDims(3, 4).String() != "3x4" {
		t.Error("Dims.String format changed")
	}
}
