package grid

import (
	"fmt"
	"sort"
	"sync"
)

// Factory builds a topology of the given dimensions.  Factories registered
// by external callers may return any Topology implementation, not just the
// three tori of the paper.
type Factory func(rows, cols int) (Topology, error)

// topoRegistry maps topology names (including aliases) to factories.
var (
	topoRegistryMu sync.RWMutex
	topoRegistry   = map[string]Factory{}
)

// Register makes a topology constructible through ByName under the given
// name.  It is the extension point that lets callers plug new interaction
// topologies into the simulation tools without forking the repository.
// Registering an empty name, a nil factory or a name that is already taken
// panics.
func Register(name string, factory Factory) {
	if name == "" {
		panic("grid: Register with empty name")
	}
	if factory == nil {
		panic(fmt.Sprintf("grid: Register(%q) with nil factory", name))
	}
	topoRegistryMu.Lock()
	defer topoRegistryMu.Unlock()
	if _, dup := topoRegistry[name]; dup {
		panic(fmt.Sprintf("grid: Register(%q) called twice", name))
	}
	topoRegistry[name] = factory
}

// ByName constructs the topology registered under the given name.  For the
// built-in tori it accepts exactly the names ParseKind accepts ("mesh",
// "toroidal-mesh", "cordalis", ...), and resolves them to the same
// implementations New would build.
func ByName(name string, rows, cols int) (Topology, error) {
	topoRegistryMu.RLock()
	factory, ok := topoRegistry[name]
	topoRegistryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("grid: unknown topology %q", name)
	}
	return factory(rows, cols)
}

// RegisteredNames returns every name ByName accepts, sorted, including
// aliases and topologies registered by external callers.
func RegisteredNames() []string {
	topoRegistryMu.RLock()
	defer topoRegistryMu.RUnlock()
	out := make([]string, 0, len(topoRegistry))
	for name := range topoRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	// Every spelling ParseKind accepts resolves to the same constructor, so
	// the registry is a strict superset of the legacy lookup path.
	for _, kind := range Kinds() {
		k := kind
		factory := func(rows, cols int) (Topology, error) { return New(k, rows, cols) }
		for _, name := range kindNames(k) {
			Register(name, factory)
		}
	}
}

// kindNames lists every accepted spelling of a built-in kind, canonical
// name first.  It is the single source of truth for both ParseKind and the
// registry's built-in entries.
func kindNames(k Kind) []string {
	switch k {
	case KindToroidalMesh:
		return []string{"toroidal-mesh", "mesh", "toroidal_mesh"}
	case KindTorusCordalis:
		return []string{"torus-cordalis", "cordalis", "torus_cordalis"}
	case KindTorusSerpentinus:
		return []string{"torus-serpentinus", "serpentinus", "torus_serpentinus"}
	default:
		return nil
	}
}
