package grid

import "testing"

// TestShiftPlanMatchesNeighbors verifies on every built-in topology and a
// spread of sizes (including 2×n degenerates and non-word-multiple rows)
// that the shift decomposition reproduces the topology's neighbor function
// exactly: rotation for unpatched lanes, patch list for the rest.
func TestShiftPlanMatchesNeighbors(t *testing.T) {
	sizes := [][2]int{{2, 2}, {2, 7}, {7, 2}, {3, 3}, {4, 6}, {5, 13}, {9, 9}, {3, 67}}
	for _, kind := range Kinds() {
		for _, sz := range sizes {
			topo := MustNew(kind, sz[0], sz[1])
			plan, ok := ShiftPlanOf(topo)
			if !ok {
				t.Fatalf("%v %dx%d: expected shift-regular", kind, sz[0], sz[1])
			}
			d := topo.Dims()
			n := d.N()
			var buf [Degree]int
			for p := 0; p < Degree; p++ {
				port := plan.Ports[p]
				// Reconstruct the port's neighbor map: rotation, then patches.
				got := make([]int, n)
				for v := 0; v < n; v++ {
					got[v] = (v + port.Shift) % n
				}
				for i, db := range port.FixDst {
					got[db] = int(port.FixSrc[i])
				}
				for v := 0; v < n; v++ {
					want := topo.Neighbors(v, buf[:0])[p]
					if got[v] != want {
						t.Fatalf("%v %dx%d port %d: plan says neighbor(%d)=%d, topology says %d",
							kind, sz[0], sz[1], p, v, got[v], want)
					}
				}
			}
		}
	}
}

// TestShiftPlanFixupShapes pins the structural expectations: the toroidal
// mesh patches only the row wrap of its left/right ports, the torus cordalis
// is a pure rotation group (its spiral makes left/right exactly ∓1 on the
// flat order), and the serpentinus patches only the column spiral of its
// up/down ports.
func TestShiftPlanFixupShapes(t *testing.T) {
	m, n := 6, 9
	cases := []struct {
		kind Kind
		want [Degree]int // fixups per port (up, down, left, right)
	}{
		{KindToroidalMesh, [Degree]int{0, 0, m, m}},
		{KindTorusCordalis, [Degree]int{0, 0, 0, 0}},
		{KindTorusSerpentinus, [Degree]int{n, n, 0, 0}},
	}
	for _, c := range cases {
		plan, ok := ShiftPlanOf(MustNew(c.kind, m, n))
		if !ok {
			t.Fatalf("%v: expected shift-regular", c.kind)
		}
		for p := 0; p < Degree; p++ {
			if got := len(plan.Ports[p].FixDst); got != c.want[p] {
				t.Errorf("%v port %d: %d fixups, want %d", c.kind, p, got, c.want[p])
			}
		}
	}
}

// irregularTopology wraps a torus but scrambles one port's neighbor far
// beyond the fixup budget, so it must not be recognized as shift-regular.
type irregularTopology struct{ Topology }

func (i irregularTopology) Neighbors(v int, buf []int) []int {
	ns := i.Topology.Neighbors(v, buf)
	d := i.Dims()
	// Port 3 points at a pseudo-random vertex: no single rotation covers a
	// majority of lanes.
	ns[3] = (v*v + 7*v + 3) % d.N()
	return ns
}

func TestShiftPlanRejectsIrregularTopology(t *testing.T) {
	topo := irregularTopology{MustNew(KindToroidalMesh, 8, 8)}
	if _, ok := ShiftPlanOf(topo); ok {
		t.Fatal("irregular topology must not be shift-regular")
	}
	// And the negative probe must be cached without panicking on re-query.
	if _, ok := ShiftPlanOf(topo); ok {
		t.Fatal("cached negative probe disagreed with the first")
	}
}
