package grid

import "sync"

// ShiftPort describes one neighbor port of a shift-regular topology in the
// form the bit-sliced simulation tier consumes: for almost every vertex v the
// port-p neighbor is the fixed flat rotation (v + Shift) mod (Rows·Cols), and
// the few border vertices where the topology's wrap-around departs from that
// rotation are listed explicitly as (destination, source) index pairs.
//
// This decomposition is what turns neighbor gathering into word shifts: a
// flat rotation of the vertex order is a bitwise rotation of any per-vertex
// bit plane, and the fixups are O(Rows+Cols) single-bit patches applied after
// the shift.  All three of the paper's tori decompose this way — the toroidal
// mesh (up/down are pure rotations by ±Cols, left/right rotate by ±1 with one
// patch per row for the row wrap), the torus cordalis (all four ports are
// pure rotations: its row spiral makes left/right exactly ∓1 on the flat
// order), and the torus serpentinus (left/right as cordalis, up/down rotate
// by ∓Cols with one patch per column for the column spiral).
type ShiftPort struct {
	// Shift is the flat rotation amount, normalized to [0, Rows·Cols):
	// unpatched lanes read neighbor (v + Shift) mod (Rows·Cols).
	Shift int
	// FixDst and FixSrc are parallel lists of the patched lanes: the port-p
	// neighbor of vertex FixDst[i] is FixSrc[i], overriding the rotation.
	FixDst, FixSrc []int32
}

// ShiftPlan is the per-port shift decomposition of a topology.  It is
// immutable after construction and cached per topology value by ShiftPlanOf.
type ShiftPlan struct {
	dims  Dims
	Ports [Degree]ShiftPort
}

// Dims returns the lattice dimensions the plan was built for.
func (p *ShiftPlan) Dims() Dims { return p.dims }

// Fixups returns the total number of patched lanes across all ports, a
// measure of how far the topology is from a pure rotation group.
func (p *ShiftPlan) Fixups() int {
	total := 0
	for i := range p.Ports {
		total += len(p.Ports[i].FixDst)
	}
	return total
}

// maxShiftFixups bounds how many lanes per port may depart from the port's
// base rotation before the topology is declared not shift-regular.  The
// paper's tori need at most max(Rows, Cols) patches per port (one per wrapped
// row or column); Rows+Cols leaves headroom for registered variants while
// still rejecting topologies whose neighbor structure is genuinely irregular
// (for which bit patching would degenerate into a scalar gather).
func maxShiftFixups(d Dims) int { return d.Rows + d.Cols }

// probeShiftPort derives the shift decomposition of one port from the dense
// neighbor table, or reports that the port is not shift-regular.  The base
// rotation is the most common (neighbor - vertex) offset; ties break toward
// the smallest offset so the plan is deterministic.
func probeShiftPort(d Dims, neighbors []int32, port int) (ShiftPort, bool) {
	n := d.N()
	hist := make(map[int]int)
	for v := 0; v < n; v++ {
		off := (int(neighbors[v*Degree+port]) - v + n) % n
		hist[off]++
	}
	shift, best := 0, -1
	for off, count := range hist {
		if count > best || (count == best && off < shift) {
			shift, best = off, count
		}
	}
	var out ShiftPort
	out.Shift = shift
	for v := 0; v < n; v++ {
		u := int(neighbors[v*Degree+port])
		if (v+shift)%n != u {
			out.FixDst = append(out.FixDst, int32(v))
			out.FixSrc = append(out.FixSrc, int32(u))
		}
	}
	if len(out.FixDst) > maxShiftFixups(d) {
		return ShiftPort{}, false
	}
	return out, true
}

// buildShiftPlan probes every port of a topology.  Prefer ShiftPlanOf, which
// caches the result (including negative results) per topology value.
func buildShiftPlan(t Topology) (*ShiftPlan, bool) {
	d := t.Dims()
	csr := CSROf(t)
	plan := &ShiftPlan{dims: d}
	for p := 0; p < Degree; p++ {
		port, ok := probeShiftPort(d, csr.Neighbors, p)
		if !ok {
			return nil, false
		}
		plan.Ports[p] = port
	}
	return plan, true
}

// shiftPlanCache memoizes shift plans per Topology value, mirroring CSROf.
// A nil plan records a negative probe so irregular topologies pay the O(n)
// probe only once.
var shiftPlanCache sync.Map // Topology -> *ShiftPlan (nil = not shift-regular)

// ShiftPlanOf returns the shift decomposition of a topology's neighbor
// geometry, or ok=false when the topology is not shift-regular (no port
// decomposes into a flat rotation plus at most Rows+Cols border patches).
// Like CSROf it caches per comparable topology value for the life of the
// process; non-comparable topologies are probed on every call.
func ShiftPlanOf(t Topology) (*ShiftPlan, bool) {
	if !comparableTopology(t) {
		plan, ok := buildShiftPlan(t)
		return plan, ok
	}
	if cached, hit := shiftPlanCache.Load(t); hit {
		plan := cached.(*ShiftPlan)
		return plan, plan != nil
	}
	plan, _ := buildShiftPlan(t)
	cached, _ := shiftPlanCache.LoadOrStore(t, plan)
	plan = cached.(*ShiftPlan)
	return plan, plan != nil
}
