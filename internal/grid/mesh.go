package grid

// ToroidalMesh is the classical torus: vertex (i,j) is adjacent to
// ((i±1) mod m, j) and (i, (j±1) mod n)  (Definition 1 of the paper).
type ToroidalMesh struct {
	dims Dims
}

// NewToroidalMesh returns the toroidal mesh of the given size.
func NewToroidalMesh(rows, cols int) (ToroidalMesh, error) {
	d, err := NewDims(rows, cols)
	if err != nil {
		return ToroidalMesh{}, err
	}
	return ToroidalMesh{dims: d}, nil
}

// Dims returns the lattice dimensions.
func (t ToroidalMesh) Dims() Dims { return t.dims }

// Kind returns KindToroidalMesh.
func (t ToroidalMesh) Kind() Kind { return KindToroidalMesh }

// Name returns "toroidal-mesh".
func (t ToroidalMesh) Name() string { return KindToroidalMesh.String() }

// NeighborCoords appends the four neighbors of c in up, down, left, right
// order.
func (t ToroidalMesh) NeighborCoords(c Coord, buf []Coord) []Coord {
	m, n := t.dims.Rows, t.dims.Cols
	up := Coord{Row: (c.Row - 1 + m) % m, Col: c.Col}
	down := Coord{Row: (c.Row + 1) % m, Col: c.Col}
	left := Coord{Row: c.Row, Col: (c.Col - 1 + n) % n}
	right := Coord{Row: c.Row, Col: (c.Col + 1) % n}
	return append(buf, up, down, left, right)
}

// Neighbors appends the four neighbor indices of v in up, down, left, right
// order.
func (t ToroidalMesh) Neighbors(v int, buf []int) []int {
	d := t.dims
	m, n := d.Rows, d.Cols
	row, col := v/n, v%n
	upRow := row - 1
	if upRow < 0 {
		upRow = m - 1
	}
	downRow := row + 1
	if downRow == m {
		downRow = 0
	}
	leftCol := col - 1
	if leftCol < 0 {
		leftCol = n - 1
	}
	rightCol := col + 1
	if rightCol == n {
		rightCol = 0
	}
	return append(buf,
		upRow*n+col,
		downRow*n+col,
		row*n+leftCol,
		row*n+rightCol,
	)
}
