package graphs

import (
	"fmt"
	"testing"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
	"repro/internal/sim"
)

// legacyRun is the deleted pre-engine run loop, preserved verbatim as the
// oracle for the differential tests (and the baseline of the engine-speedup
// benchmarks): a full double-buffered sweep of every vertex every round,
// gathering each neighborhood into a scratch slice.
func legacyRun(g *Graph, rule rules.Rule, initial *Coloring, target color.Color, maxRounds int) *RunResult {
	if maxRounds <= 0 {
		maxRounds = 4*g.N() + 16
	}
	cur := initial.Clone()
	next := initial.Clone()
	res := &RunResult{}
	scratch := make([]color.Color, 0, g.MaxDegree())
	for round := 1; round <= maxRounds; round++ {
		changed := 0
		for v := 0; v < g.N(); v++ {
			scratch = scratch[:0]
			for _, u := range g.Neighbors(v) {
				scratch = append(scratch, cur.At(u))
			}
			nc := rule.Next(cur.At(v), scratch)
			next.Set(v, nc)
			if nc != cur.At(v) {
				changed++
			}
		}
		res.Rounds = round
		cur, next = next, cur
		if changed == 0 {
			res.FixedPoint = true
			break
		}
	}
	res.Final = cur
	if target != color.None {
		res.TargetCount = cur.Count(target)
	}
	return res
}

// testGraphs builds a deterministic zoo of irregular substrates.
func testGraphs(t testing.TB) map[string]*Graph {
	t.Helper()
	ba, err := NewBarabasiAlbert(300, 2, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWattsStrogatz(200, 6, 0.2, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	er, err := NewErdosRenyi(150, 0.05, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	ring, err := NewRing(50)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Graph{"ba": ba, "ws": ws, "er": er, "ring": ring}
}

// TestRunMatchesLegacyLoop pins the engine-backed Run bit-identical to the
// deleted full-sweep loop: same round counts, same fixed-point verdicts,
// same final colorings, across substrates, rules and seeds.
func TestRunMatchesLegacyLoop(t *testing.T) {
	rulesToTry := []rules.Rule{
		GeneralizedSMP{},
		rules.Threshold{Target: 1, Theta: 2},
		rules.SimpleMajorityPB{Black: 1},
		rules.StrongMajority{},
	}
	for name, g := range testGraphs(t) {
		for _, rule := range rulesToTry {
			for _, seed := range []uint64{1, 2, 3} {
				initial := SeedRandom(g, g.N()/10+1, 1, 2, rng.New(seed))
				want := legacyRun(g, rule, initial, 1, 4*g.N()+16)
				got := Run(g, rule, initial, 1, 4*g.N()+16)
				if got.Rounds != want.Rounds || got.FixedPoint != want.FixedPoint {
					t.Fatalf("%s/%s seed %d: rounds %d/%v vs legacy %d/%v",
						name, rule.Name(), seed, got.Rounds, got.FixedPoint, want.Rounds, want.FixedPoint)
				}
				if !got.Final.Equal(want.Final) {
					t.Fatalf("%s/%s seed %d: final colorings differ", name, rule.Name(), seed)
				}
				if got.TargetCount != want.TargetCount {
					t.Fatalf("%s/%s seed %d: target count %d vs %d", name, rule.Name(), seed, got.TargetCount, want.TargetCount)
				}
			}
		}
	}
}

// TestRunKernelsAgreeOnGraphs pins the engine tiers against each other on
// irregular substrates: frontier (the default), the full-sweep oracle and
// the striped parallel sweep must be bit-identical.
func TestRunKernelsAgreeOnGraphs(t *testing.T) {
	for name, g := range testGraphs(t) {
		eng := g.EngineFor(GeneralizedSMP{})
		initial := SeedTopByDegree(g, g.N()/8+1, 1, 2)
		front := eng.Run(initial, sim.Options{Kernel: sim.KernelFrontier})
		sweep := eng.Run(initial, sim.Options{Kernel: sim.KernelSweep})
		par := eng.Run(initial, sim.Options{Kernel: sim.KernelParallel, Workers: 4})
		if front.Rounds != sweep.Rounds || !front.Final.Equal(sweep.Final) {
			t.Fatalf("%s: frontier vs sweep diverged", name)
		}
		if par.Rounds != sweep.Rounds || !par.Final.Equal(sweep.Final) {
			t.Fatalf("%s: parallel vs sweep diverged", name)
		}
		if front.Kernel != sim.KernelFrontier || par.Kernel != sim.KernelParallel {
			t.Fatalf("%s: kernels misreported (%v, %v)", name, front.Kernel, par.Kernel)
		}
	}
}

// TestGeneralizedSMPOnToriBitIdenticalToSMP is the cross-substrate
// differential: on every 4-regular torus the generalized rule must evolve
// exactly like the paper's SMP rule, whichever path executes it — the torus
// engine under either rule, the graph engine on the converted torus, or the
// legacy sweep loop — for palettes k ∈ {2, 3, 4}.
func TestGeneralizedSMPOnToriBitIdenticalToSMP(t *testing.T) {
	for _, kind := range grid.Kinds() {
		for _, k := range []int{2, 3, 4} {
			for _, seed := range []uint64{1, 2} {
				topo := grid.MustNew(kind, 11, 13)
				d := topo.Dims()
				src := rng.New(seed)
				torusInit := color.NewColoring(d, color.None)
				for v := 0; v < d.N(); v++ {
					torusInit.Set(v, color.Color(1+src.Intn(k)))
				}
				const rounds = 80

				// Torus engine under the paper's rule (full sweep, fixed
				// budget, no early stops beyond the fixed point).
				smpRes := sim.NewEngine(topo, rules.SMP{}).Run(torusInit, sim.Options{MaxRounds: rounds, Kernel: sim.KernelSweep})
				// Torus engine under the generalized rule.
				genRes := sim.NewEngine(topo, GeneralizedSMP{}).Run(torusInit, sim.Options{MaxRounds: rounds, Kernel: sim.KernelSweep})
				if smpRes.Rounds != genRes.Rounds || !smpRes.Final.Equal(genRes.Final) {
					t.Fatalf("%v k=%d seed=%d: generalized-smp diverged from smp on the torus engine", kind, k, seed)
				}

				// Graph engine on the converted torus, plus the legacy loop.
				g := FromTorus(topo)
				graphInit := NewColoring(g.N(), color.None)
				for v := 0; v < g.N(); v++ {
					graphInit.Set(v, torusInit.At(v))
				}
				graphRes := Run(g, GeneralizedSMP{}, graphInit, color.None, rounds)
				legacyRes := legacyRun(g, GeneralizedSMP{}, graphInit, color.None, rounds)
				if graphRes.Rounds != smpRes.Rounds || graphRes.FixedPoint != smpRes.FixedPoint {
					t.Fatalf("%v k=%d seed=%d: graph engine rounds %d vs torus %d", kind, k, seed, graphRes.Rounds, smpRes.Rounds)
				}
				if legacyRes.Rounds != smpRes.Rounds {
					t.Fatalf("%v k=%d seed=%d: legacy loop rounds %d vs torus %d", kind, k, seed, legacyRes.Rounds, smpRes.Rounds)
				}
				for v := 0; v < g.N(); v++ {
					if graphRes.Final.At(v) != smpRes.Final.At(v) {
						t.Fatalf("%v k=%d seed=%d: graph engine final differs at vertex %d", kind, k, seed, v)
					}
					if legacyRes.Final.At(v) != smpRes.Final.At(v) {
						t.Fatalf("%v k=%d seed=%d: legacy final differs at vertex %d", kind, k, seed, v)
					}
				}
			}
		}
	}
}

// legacyGreedyTargetSet is the pre-engine greedy baseline (evaluating every
// candidate with the legacy loop), preserved for the differential below.
func legacyGreedyTargetSet(g *Graph, rule rules.Rule, target, background color.Color, maxSeed, maxRounds, candidateSample int, src *rng.Source) []int {
	if src == nil {
		src = rng.New(1)
	}
	seed := map[int]bool{}
	var chosen []int
	evaluate := func() int {
		c := NewColoring(g.N(), background)
		for v := range seed {
			c.Set(v, target)
		}
		return legacyRun(g, rule, c, target, maxRounds).TargetCount
	}
	current := 0
	for len(chosen) < maxSeed && current < g.N() {
		candidates := make([]int, 0, g.N())
		for v := 0; v < g.N(); v++ {
			if !seed[v] {
				candidates = append(candidates, v)
			}
		}
		if candidateSample > 0 && candidateSample < len(candidates) {
			src.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
			candidates = candidates[:candidateSample]
		}
		bestVertex, bestGain := -1, -1
		for _, v := range candidates {
			seed[v] = true
			gain := evaluate()
			delete(seed, v)
			if gain > bestGain {
				bestGain, bestVertex = gain, v
			}
		}
		if bestVertex < 0 {
			break
		}
		seed[bestVertex] = true
		chosen = append(chosen, bestVertex)
		current = bestGain
	}
	return chosen
}

// TestGreedyTargetSetMatchesLegacy pins the engine-backed greedy search to
// the legacy one: identical candidate evaluations imply identical choices.
func TestGreedyTargetSetMatchesLegacy(t *testing.T) {
	g, err := NewBarabasiAlbert(80, 2, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	rule := rules.Threshold{Target: 1, Theta: 2}
	want := legacyGreedyTargetSet(g, rule, 1, 2, 6, 120, 15, rng.New(4))
	got := GreedyTargetSet(g, rule, 1, 2, 6, 120, 15, rng.New(4))
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("greedy choices diverged: %v vs legacy %v", got, want)
	}
}

// TestViewInvalidation pins the cached-CSR contract: the view is reused
// while the graph is frozen and rebuilt after a mutation, and engines track
// the view identity.
func TestViewInvalidation(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	v1 := g.View()
	if v1 != g.View() {
		t.Fatal("unmutated graph should reuse its view")
	}
	e1 := g.EngineFor(GeneralizedSMP{})
	if e1 != g.EngineFor(GeneralizedSMP{}) {
		t.Fatal("unmutated graph should reuse its engine")
	}
	g.AddEdge(2, 3)
	v2 := g.View()
	if v1 == v2 {
		t.Fatal("AddEdge must invalidate the cached view")
	}
	if got := v2.CSR().Degree(2); got != 2 {
		t.Fatalf("rebuilt view misses the new edge: degree %d", got)
	}
	if e1 == g.EngineFor(GeneralizedSMP{}) {
		t.Fatal("a mutated graph must get a fresh engine")
	}
	// The ignored duplicate edge must not invalidate anything.
	g.AddEdge(2, 3)
	if v2 != g.View() {
		t.Fatal("a no-op AddEdge should keep the view")
	}
}

// TestDefaultMaxRoundsDegreeAware documents the degree-aware budget: the
// ring keeps the legacy-sized linear budget while denser graphs shrink
// toward 2n.
func TestDefaultMaxRoundsDegreeAware(t *testing.T) {
	ring, _ := NewRing(100)
	if got, want := ring.DefaultMaxRounds(), 2*100+4*100/3+32; got != want {
		t.Fatalf("ring budget = %d, want %d", got, want)
	}
	dense, _ := NewErdosRenyi(60, 0.5, rng.New(1))
	if got := dense.DefaultMaxRounds(); got >= dense.N()*4+16 {
		t.Fatalf("dense budget %d should undercut the legacy flat 4n+16 = %d", got, dense.N()*4+16)
	}
	if got := NewGraph(0).DefaultMaxRounds(); got != 32 {
		t.Fatalf("empty-graph budget = %d, want 32", got)
	}
	// The engine consumes the budget through the View seam.
	if ring.View().DefaultMaxRounds() != ring.DefaultMaxRounds() {
		t.Fatal("view budget must match the graph budget")
	}
}

// TestGreedyTargetSetSlicedMatchesLegacy is the sliced twin of the legacy
// pin: on a degree-4 circulant the candidate evaluations run 64 lanes at a
// time on the bit-sliced ensemble tier, and the chosen seeds must still be
// exactly the legacy per-candidate loop's.
func TestGreedyTargetSetSlicedMatchesLegacy(t *testing.T) {
	const n = 90
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n)
		g.AddEdge(v, (v+2)%n)
	}
	rule := rules.Threshold{Target: 1, Theta: 2}
	before := sim.BitsliceBatches()
	got := GreedyTargetSet(g, rule, 1, 2, 5, 120, 20, rng.New(4))
	if sim.BitsliceBatches() == before {
		t.Fatal("sliced candidate evaluation did not engage on a degree-4 circulant")
	}
	want := legacyGreedyTargetSet(g, rule, 1, 2, 5, 120, 20, rng.New(4))
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("greedy choices diverged: %v vs legacy %v", got, want)
	}
}
