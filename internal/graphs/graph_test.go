package graphs

import (
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/rng"
)

func TestAddEdgeBasics(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate
	g.AddEdge(2, 2) // self loop ignored
	g.AddEdge(1, 9) // out of range ignored
	if g.EdgeCount() != 1 {
		t.Errorf("EdgeCount = %d, want 1", g.EdgeCount())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge should be symmetric")
	}
	if g.HasEdge(2, 3) {
		t.Error("absent edge reported")
	}
	if g.Degree(0) != 1 || g.Degree(3) != 0 {
		t.Error("degrees wrong")
	}
}

func TestNewGraphPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGraph(-1)
}

func TestRing(t *testing.T) {
	g, err := NewRing(6)
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 6 || !g.Connected() {
		t.Error("ring structure wrong")
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("ring vertex %d has degree %d", v, g.Degree(v))
		}
	}
	if _, err := NewRing(2); err == nil {
		t.Error("ring of 2 should be rejected")
	}
}

func TestFromTorusMatchesTopology(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 6)
	g := FromTorus(topo)
	if g.N() != 30 {
		t.Fatalf("N = %d", g.N())
	}
	if g.EdgeCount() != 60 { // 4-regular simple graph
		t.Errorf("EdgeCount = %d, want 60", g.EdgeCount())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Errorf("vertex %d degree %d", v, g.Degree(v))
		}
	}
	if !g.Connected() {
		t.Error("torus graph should be connected")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g, err := NewBarabasiAlbert(200, 3, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 200 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.Connected() {
		t.Error("preferential attachment graph should be connected")
	}
	// Average degree approaches 2m; allow slack for the initial clique.
	avg := g.AverageDegree()
	if avg < 5 || avg > 8 {
		t.Errorf("average degree = %v, expected around 6", avg)
	}
	// Scale-free graphs have hubs: the maximum degree should far exceed the
	// average.
	if float64(g.MaxDegree()) < 2.5*avg {
		t.Errorf("max degree %d does not look like a hub (avg %.1f)", g.MaxDegree(), avg)
	}
	if _, err := NewBarabasiAlbert(5, 5, nil); err == nil {
		t.Error("n <= m should be rejected")
	}
	if _, err := NewBarabasiAlbert(10, 0, nil); err == nil {
		t.Error("m < 1 should be rejected")
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a, _ := NewBarabasiAlbert(100, 2, rng.New(5))
	b, _ := NewBarabasiAlbert(100, 2, rng.New(5))
	if a.EdgeCount() != b.EdgeCount() {
		t.Error("same seed should give the same graph")
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := NewErdosRenyi(100, 0.1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Expected edges ~ 0.1 * 4950 = 495.
	if g.EdgeCount() < 350 || g.EdgeCount() > 650 {
		t.Errorf("edge count %d far from expectation 495", g.EdgeCount())
	}
	if _, err := NewErdosRenyi(10, 1.5, nil); err == nil {
		t.Error("p > 1 should be rejected")
	}
	empty, _ := NewErdosRenyi(10, 0, nil)
	if empty.EdgeCount() != 0 {
		t.Error("p = 0 should give no edges")
	}
}

func TestRandomRegular(t *testing.T) {
	g, err := NewRandomRegular(50, 4, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("vertex %d has degree %d, want 4", v, g.Degree(v))
		}
	}
	if _, err := NewRandomRegular(5, 3, nil); err == nil {
		t.Error("odd n*d should be rejected")
	}
	if _, err := NewRandomRegular(4, 4, nil); err == nil {
		t.Error("d >= n should be rejected")
	}
}

func TestColoringHelpers(t *testing.T) {
	c := NewColoring(5, 2)
	c.Set(3, 1)
	if c.At(3) != 1 || c.Count(2) != 4 || c.Count(1) != 1 || c.N() != 5 {
		t.Error("coloring helpers wrong")
	}
	d := c.Clone()
	if !c.Equal(d) {
		t.Error("clone should be equal")
	}
	d.Set(0, 1)
	if c.Equal(d) {
		t.Error("modified clone should differ")
	}
	if c.Equal(NewColoring(4, 2)) {
		t.Error("different sizes should not be equal")
	}
}

func TestConnectedProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 10 + int(nRaw)%50
		g, err := NewBarabasiAlbert(n, 2, rng.New(seed))
		if err != nil {
			return false
		}
		return g.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
