package graphs

import (
	"testing"

	"repro/internal/rng"
)

func TestWattsStrogatzLatticeLimit(t *testing.T) {
	// beta = 0 keeps the pristine ring lattice: every vertex has degree k
	// and the clustering coefficient is the lattice's 0.5 for k = 4.
	g, err := NewWattsStrogatz(60, 4, 0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("lattice vertex %d has degree %d", v, g.Degree(v))
		}
	}
	cc := ClusteringCoefficient(g)
	if cc < 0.45 || cc > 0.55 {
		t.Errorf("lattice clustering coefficient = %v, want ~0.5", cc)
	}
	if !g.Connected() {
		t.Error("ring lattice must be connected")
	}
}

func TestWattsStrogatzSmallWorldRegime(t *testing.T) {
	// Moderate rewiring shortens paths dramatically while keeping most of
	// the clustering — the defining small-world property.
	lattice, _ := NewWattsStrogatz(120, 6, 0, rng.New(2))
	small, err := NewWattsStrogatz(120, 6, 0.1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	latticeL := AveragePathLength(lattice)
	smallL := AveragePathLength(small)
	if smallL >= latticeL*0.8 {
		t.Errorf("rewiring should shorten paths: lattice %.2f vs small-world %.2f", latticeL, smallL)
	}
	latticeC := ClusteringCoefficient(lattice)
	smallC := ClusteringCoefficient(small)
	if smallC < latticeC*0.4 {
		t.Errorf("10%% rewiring should keep most clustering: %.3f vs %.3f", smallC, latticeC)
	}
}

func TestWattsStrogatzValidation(t *testing.T) {
	if _, err := NewWattsStrogatz(3, 2, 0.1, nil); err == nil {
		t.Error("n < 4 should be rejected")
	}
	if _, err := NewWattsStrogatz(20, 3, 0.1, nil); err == nil {
		t.Error("odd k should be rejected")
	}
	if _, err := NewWattsStrogatz(20, 20, 0.1, nil); err == nil {
		t.Error("k >= n should be rejected")
	}
	if _, err := NewWattsStrogatz(20, 4, 1.5, nil); err == nil {
		t.Error("beta > 1 should be rejected")
	}
}

func TestWattsStrogatzDeterministic(t *testing.T) {
	a, _ := NewWattsStrogatz(80, 4, 0.3, rng.New(9))
	b, _ := NewWattsStrogatz(80, 4, 0.3, rng.New(9))
	if a.EdgeCount() != b.EdgeCount() {
		t.Error("same seed should give the same graph")
	}
	for v := 0; v < a.N(); v++ {
		if a.Degree(v) != b.Degree(v) {
			t.Fatal("same seed should give the same degrees")
		}
	}
}

func TestClusteringCoefficientKnownGraphs(t *testing.T) {
	// A triangle has clustering 1.
	tri := NewGraph(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(2, 0)
	if cc := ClusteringCoefficient(tri); cc != 1 {
		t.Errorf("triangle clustering = %v, want 1", cc)
	}
	// A star has clustering 0 (the center's neighbors are never adjacent).
	star := NewGraph(4)
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	if cc := ClusteringCoefficient(star); cc != 0 {
		t.Errorf("star clustering = %v, want 0", cc)
	}
	if ClusteringCoefficient(NewGraph(2)) != 0 {
		t.Error("graph without degree-2 vertices should have clustering 0")
	}
}

func TestAveragePathLengthKnownGraphs(t *testing.T) {
	ring, _ := NewRing(4)
	// Distances on C4: each vertex has two at distance 1 and one at 2 ->
	// mean 4/3.
	if got := AveragePathLength(ring); got < 1.32 || got > 1.35 {
		t.Errorf("C4 average path length = %v, want ~1.333", got)
	}
	if AveragePathLength(NewGraph(1)) != 0 {
		t.Error("single vertex has no paths")
	}
	// Disconnected pairs are ignored.
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if got := AveragePathLength(g); got != 1 {
		t.Errorf("two disjoint edges: average = %v, want 1", got)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.removeEdge(0, 1)
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("edge should be gone in both directions")
	}
	if !g.HasEdge(1, 2) {
		t.Error("unrelated edge should remain")
	}
	// Removing an absent edge is a no-op.
	g.removeEdge(0, 2)
	if g.EdgeCount() != 1 {
		t.Error("EdgeCount after removals wrong")
	}
}
