package graphs

import (
	"context"
	"errors"
	"testing"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
	"repro/internal/sim"
)

// blinkerGraph builds a Barabási–Albert graph with an embedded 4-cycle
// gadget whose PB dynamics oscillate forever: two opposite vertices of the
// cycle are black, the other two white, and each round they trade places
// while the rest of the graph stays quiet.  It returns the graph, the
// oscillating coloring and the gadget vertices.  The gadget gives the
// near-convergence benchmarks and allocation pins a deterministic workload
// with a permanently small dirty frontier.
func blinkerGraph(tb testing.TB, n int) (*Graph, *Coloring, [4]int) {
	tb.Helper()
	g, err := NewBarabasiAlbert(n, 2, rng.New(1))
	if err != nil {
		tb.Fatal(err)
	}
	// Four degree-2 vertices, mutually non-adjacent with disjoint
	// neighborhoods, wired into a fresh 4-cycle u-a-v-b.
	var gadget [4]int
	count := 0
	used := map[int]bool{}
	for v := g.N() - 1; v >= 0 && count < 4; v-- {
		if g.Degree(v) != 2 || used[v] {
			continue
		}
		clash := false
		for _, u := range g.Neighbors(v) {
			if used[u] {
				clash = true
				break
			}
		}
		if clash {
			continue
		}
		gadget[count] = v
		used[v] = true
		for _, u := range g.Neighbors(v) {
			used[u] = true
		}
		count++
	}
	if count < 4 {
		tb.Fatal("could not find a gadget quadruple; change the generator seed")
	}
	u, a, v, b := gadget[0], gadget[1], gadget[2], gadget[3]
	g.AddEdge(u, a)
	g.AddEdge(a, v)
	g.AddEdge(v, b)
	g.AddEdge(b, u)

	c := NewColoring(g.N(), 1)
	c.Set(a, 2)
	c.Set(b, 2)
	return g, c, gadget
}

// TestBlinkerOscillatesForever pins the gadget the benchmarks rely on:
// under Prefer-Black the embedded 4-cycle flips its two black vertices
// every round, with exactly four changes per round and no spread.
func TestBlinkerOscillatesForever(t *testing.T) {
	g, c, _ := blinkerGraph(t, 500)
	eng := g.EngineFor(rules.SimpleMajorityPB{Black: 2})
	f := eng.NewFrontier(c)
	for round := 1; round <= 200; round++ {
		if changed := f.Step(); changed != 4 {
			t.Fatalf("round %d: %d changes, want the 4-vertex blinker", round, changed)
		}
		if got := f.Config().Count(2); got != 2 {
			t.Fatalf("round %d: %d black vertices, want 2 (no spread)", round, got)
		}
	}
}

// TestGraphFrontierStepDoesNotAllocate extends the zero-allocation pin to
// irregular substrates: steady-state frontier stepping over a
// Barabási–Albert graph performs no heap allocations, under both the
// counts fast path (generalized-smp) and the slice fallback shape.
func TestGraphFrontierStepDoesNotAllocate(t *testing.T) {
	g, c, _ := blinkerGraph(t, 1000)
	for _, rule := range []rules.Rule{rules.SimpleMajorityPB{Black: 2}, GeneralizedSMP{}} {
		eng := g.EngineFor(rule)
		f := eng.NewFrontier(c)
		f.Step()
		f.Step()
		avg := testing.AllocsPerRun(200, func() {
			f.Step()
			if f.Size() == 0 {
				f.Reset(c)
			}
		})
		if avg != 0 {
			t.Fatalf("%s: frontier step allocates %.1f allocs/op, want 0", rule.Name(), avg)
		}
	}
}

// TestGraphRunUsesFrontierByDefault pins the automatic tier selection on
// graph substrates: no bitplane (not a torus), frontier for sequential
// runs, parallel for parallel ones.
func TestGraphRunUsesFrontierByDefault(t *testing.T) {
	g, err := NewBarabasiAlbert(200, 2, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	initial := SeedTopByDegree(g, 10, 1, 2)
	res := Run(g, GeneralizedSMP{}, initial, 1, 0)
	if res.Engine.Kernel != sim.KernelFrontier {
		t.Fatalf("default graph run used %v, want frontier", res.Engine.Kernel)
	}
	eng := g.EngineFor(GeneralizedSMP{})
	par := eng.Run(initial, sim.Options{Parallel: true, Workers: 4})
	if par.Kernel != sim.KernelParallel || par.Workers != 4 {
		t.Fatalf("parallel graph run reported %v/%d workers", par.Kernel, par.Workers)
	}
}

// TestGraphBitplaneIneligible pins the probing contract: forcing the
// torus-only bitplane tier on a graph substrate fails with
// ErrBitplaneIneligible.
func TestGraphBitplaneIneligible(t *testing.T) {
	g, err := NewRing(16)
	if err != nil {
		t.Fatal(err)
	}
	eng := g.EngineFor(GeneralizedSMP{})
	initial := NewColoring(g.N(), 1)
	_, err = eng.RunContext(context.Background(), initial, sim.Options{Kernel: sim.KernelBitplane})
	if !errors.Is(err, sim.ErrBitplaneIneligible) {
		t.Fatalf("want ErrBitplaneIneligible, got %v", err)
	}
	if eng.Topology() != nil {
		t.Fatal("graph engines must report a nil torus topology")
	}
}

// TestGraphAsyncRun exercises the asynchronous variant on an irregular
// substrate (it shares the generic neighbor loops with the engine).
func TestGraphAsyncRun(t *testing.T) {
	g, err := NewRing(12)
	if err != nil {
		t.Fatal(err)
	}
	initial := NewColoring(g.N(), 2)
	initial.Set(0, 1)
	res := g.EngineFor(GeneralizedSMP{}).RunAsync(initial, sim.AsyncOptions{})
	if !res.FixedPoint || !res.Monochromatic || res.FinalColor != 2 {
		t.Fatalf("async ring run should erase the dissenter, got %+v", res)
	}
}

// TestFromTorusStepMatchesTorusEngine pins Engine.Step on a graph substrate
// against the torus engine's step on the same structure.
func TestFromTorusStepMatchesTorusEngine(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 6, 6)
	g := FromTorus(topo)
	src := rng.New(5)
	torusCur := color.NewColoring(topo.Dims(), color.None)
	for v := 0; v < topo.Dims().N(); v++ {
		torusCur.Set(v, color.Color(1+src.Intn(3)))
	}
	graphCur := NewColoring(g.N(), color.None)
	for v := 0; v < g.N(); v++ {
		graphCur.Set(v, torusCur.At(v))
	}
	torusEng := sim.NewEngine(topo, rules.SMP{})
	graphEng := g.EngineFor(GeneralizedSMP{})
	torusNext := torusCur.Clone()
	graphNext := graphCur.Clone()
	for round := 0; round < 10; round++ {
		a := torusEng.Step(torusCur, torusNext)
		b := graphEng.Step(graphCur, graphNext)
		if a != b {
			t.Fatalf("round %d: %d vs %d changes", round, a, b)
		}
		for v := 0; v < g.N(); v++ {
			if torusNext.At(v) != graphNext.At(v) {
				t.Fatalf("round %d: vertex %d differs", round, v)
			}
		}
		torusCur, torusNext = torusNext, torusCur
		graphCur, graphNext = graphNext, graphCur
	}
}
