package graphs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rng"
)

// GenFactory builds a graph of n vertices from named float parameters and a
// seed.  Factories must be deterministic in (n, params, seed) — a spec that
// names a generator must rebuild the same graph on every machine — and must
// reject unknown parameter names, so misspelled specs fail loudly instead of
// silently running a default.
type GenFactory func(n int, params map[string]float64, seed uint64) (*Graph, error)

// genRegistry maps generator names (including aliases) to factories.
var (
	genRegistryMu sync.RWMutex
	genRegistry   = map[string]GenFactory{}
	genCanonical  = map[string]string{}
)

// RegisterGenerator makes a graph generator constructible through
// GenerateByName under the given names (canonical name first, then aliases).
// It is the extension point that lets callers plug new substrate families
// into the spec layer without forking the repository.  Registering an empty
// name, a nil factory or a taken name panics.
func RegisterGenerator(factory GenFactory, names ...string) {
	if len(names) == 0 {
		panic("graphs: RegisterGenerator with no names")
	}
	if factory == nil {
		panic(fmt.Sprintf("graphs: RegisterGenerator(%q) with nil factory", names[0]))
	}
	genRegistryMu.Lock()
	defer genRegistryMu.Unlock()
	for _, name := range names {
		if name == "" {
			panic("graphs: RegisterGenerator with empty name")
		}
		if _, dup := genRegistry[name]; dup {
			panic(fmt.Sprintf("graphs: RegisterGenerator(%q) called twice", name))
		}
		genRegistry[name] = factory
		genCanonical[name] = names[0]
	}
}

// GenerateByName builds a graph through the generator registered under the
// given name.
func GenerateByName(name string, n int, params map[string]float64, seed uint64) (*Graph, error) {
	genRegistryMu.RLock()
	factory, ok := genRegistry[name]
	genRegistryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("graphs: unknown generator %q", name)
	}
	return factory(n, params, seed)
}

// CanonicalGeneratorName resolves an alias to the canonical generator name
// it was registered under, or returns an error for unknown names.
func CanonicalGeneratorName(name string) (string, error) {
	genRegistryMu.RLock()
	defer genRegistryMu.RUnlock()
	canonical, ok := genCanonical[name]
	if !ok {
		return "", fmt.Errorf("graphs: unknown generator %q", name)
	}
	return canonical, nil
}

// GeneratorNames returns every name GenerateByName accepts, sorted,
// including aliases and externally registered generators.
func GeneratorNames() []string {
	genRegistryMu.RLock()
	defer genRegistryMu.RUnlock()
	out := make([]string, 0, len(genRegistry))
	for name := range genRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// checkParams rejects parameter maps mentioning names the generator does not
// understand, and returns the value of each wanted parameter with its
// default when absent.
func checkParams(gen string, params map[string]float64, want map[string]float64) (map[string]float64, error) {
	for name := range params {
		if _, ok := want[name]; !ok {
			return nil, fmt.Errorf("graphs: generator %q does not take parameter %q", gen, name)
		}
	}
	out := make(map[string]float64, len(want))
	for name, def := range want {
		out[name] = def
		if v, ok := params[name]; ok {
			out[name] = v
		}
	}
	return out, nil
}

// intParam converts a float parameter that must hold an integer (a count or
// a degree), rejecting fractional values rather than truncating them.
func intParam(gen, name string, v float64) (int, error) {
	i := int(v)
	if float64(i) != v {
		return 0, fmt.Errorf("graphs: generator %q parameter %q must be an integer, got %v", gen, name, v)
	}
	return i, nil
}

func init() {
	RegisterGenerator(func(n int, params map[string]float64, seed uint64) (*Graph, error) {
		p, err := checkParams("barabasi-albert", params, map[string]float64{"m": 2})
		if err != nil {
			return nil, err
		}
		m, err := intParam("barabasi-albert", "m", p["m"])
		if err != nil {
			return nil, err
		}
		return NewBarabasiAlbert(n, m, rng.New(seed))
	}, "barabasi-albert", "ba")

	RegisterGenerator(func(n int, params map[string]float64, seed uint64) (*Graph, error) {
		p, err := checkParams("watts-strogatz", params, map[string]float64{"k": 4, "beta": 0.1})
		if err != nil {
			return nil, err
		}
		k, err := intParam("watts-strogatz", "k", p["k"])
		if err != nil {
			return nil, err
		}
		return NewWattsStrogatz(n, k, p["beta"], rng.New(seed))
	}, "watts-strogatz", "ws")

	RegisterGenerator(func(n int, params map[string]float64, seed uint64) (*Graph, error) {
		p, err := checkParams("erdos-renyi", params, map[string]float64{"p": 0.05})
		if err != nil {
			return nil, err
		}
		return NewErdosRenyi(n, p["p"], rng.New(seed))
	}, "erdos-renyi", "er")

	RegisterGenerator(func(n int, params map[string]float64, seed uint64) (*Graph, error) {
		p, err := checkParams("random-regular", params, map[string]float64{"d": 4})
		if err != nil {
			return nil, err
		}
		d, err := intParam("random-regular", "d", p["d"])
		if err != nil {
			return nil, err
		}
		return NewRandomRegular(n, d, rng.New(seed))
	}, "random-regular")

	RegisterGenerator(func(n int, params map[string]float64, _ uint64) (*Graph, error) {
		if _, err := checkParams("ring", params, map[string]float64{}); err != nil {
			return nil, err
		}
		return NewRing(n)
	}, "ring")
}
