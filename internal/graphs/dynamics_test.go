package graphs

import (
	"testing"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
)

func TestGeneralizedSMPMatchesTorusRuleOnDegreeFour(t *testing.T) {
	// On 4-element neighborhoods the generalized rule must agree with the
	// torus SMP rule for every input.
	gen := GeneralizedSMP{}
	smp := rules.SMP{}
	for c1 := 1; c1 <= 4; c1++ {
		for c2 := 1; c2 <= 4; c2++ {
			for c3 := 1; c3 <= 4; c3++ {
				for c4 := 1; c4 <= 4; c4++ {
					for cur := 1; cur <= 4; cur++ {
						ns := []color.Color{color.Color(c1), color.Color(c2), color.Color(c3), color.Color(c4)}
						a := gen.Next(color.Color(cur), ns)
						b := smp.Next(color.Color(cur), ns)
						if a != b {
							t.Fatalf("generalized %v vs torus %v on %v (cur %d)", a, b, ns, cur)
						}
					}
				}
			}
		}
	}
}

func TestGeneralizedSMPOtherDegrees(t *testing.T) {
	gen := GeneralizedSMP{}
	if got := gen.Next(1, []color.Color{2, 2, 2, 3, 4}); got != 2 {
		t.Errorf("degree-5 majority should win, got %v", got)
	}
	if got := gen.Next(1, []color.Color{2, 2, 3, 3, 4}); got != 1 {
		t.Errorf("degree-5 tie should keep current, got %v", got)
	}
	if got := gen.Next(1, []color.Color{2}); got != 2 {
		t.Errorf("degree-1 neighbor majority should win, got %v", got)
	}
	if got := gen.Next(1, nil); got != 1 {
		t.Errorf("isolated vertex should keep its color, got %v", got)
	}
	if gen.Name() != "generalized-smp" {
		t.Error("name wrong")
	}
}

func TestRunOnTorusGraphMatchesTorusEngineOutcome(t *testing.T) {
	// The full-cross dynamo must also take over when simulated through the
	// general-graph engine on the converted torus.
	topo := grid.MustNew(grid.KindToroidalMesh, 7, 7)
	g := FromTorus(topo)
	init := NewColoring(g.N(), 0)
	torus := color.NewColoring(topo.Dims(), color.None)
	pad := []color.Color{2, 3, 4}
	for i := 1; i < 7; i++ {
		for j := 1; j < 7; j++ {
			torus.SetRC(i, j, pad[(i-1)%3])
		}
	}
	torus.FillRow(0, 1)
	torus.FillCol(0, 1)
	for v := 0; v < g.N(); v++ {
		init.Set(v, torus.At(v))
	}
	res := Run(g, GeneralizedSMP{}, init, 1, 200)
	if res.TargetCount != g.N() {
		t.Fatalf("graph engine reached %d/%d target vertices", res.TargetCount, g.N())
	}
	if !res.FixedPoint && res.Rounds >= 200 {
		t.Error("run should terminate well before the budget")
	}
}

func TestRunStopsAtFixedPoint(t *testing.T) {
	// The generalized majority rule is reversible: a lone dissenter on a
	// ring is overwritten by its two agreeing neighbors, and the system
	// freezes at the monochromatic fixed point.
	g, _ := NewRing(10)
	init := NewColoring(10, 2)
	init.Set(0, 1)
	res := Run(g, GeneralizedSMP{}, init, 1, 50)
	if !res.FixedPoint {
		t.Error("expected a fixed point")
	}
	if res.TargetCount != 0 {
		t.Errorf("the lone seed should be erased, target count = %d", res.TargetCount)
	}
	if res.Final.Count(2) != 10 {
		t.Error("ring should end monochromatic in the majority color")
	}
}

func TestSeedTopByDegreePicksHubs(t *testing.T) {
	g, _ := NewBarabasiAlbert(150, 3, rng.New(11))
	c := SeedTopByDegree(g, 10, 1, 2)
	if c.Count(1) != 10 {
		t.Fatalf("seed count = %d, want 10", c.Count(1))
	}
	// Every selected vertex must have degree at least as large as every
	// unselected vertex's degree minimum... verify the weaker sensible
	// property: the minimum selected degree >= the graph's average degree.
	minSel := 1 << 30
	for v := 0; v < g.N(); v++ {
		if c.At(v) == 1 && g.Degree(v) < minSel {
			minSel = g.Degree(v)
		}
	}
	if float64(minSel) < g.AverageDegree() {
		t.Errorf("hub seed picked a vertex of degree %d below the average %.1f", minSel, g.AverageDegree())
	}
}

func TestSeedRandomCount(t *testing.T) {
	g, _ := NewErdosRenyi(80, 0.1, rng.New(2))
	c := SeedRandom(g, 15, 1, 2, rng.New(3))
	if c.Count(1) != 15 {
		t.Errorf("random seed count = %d, want 15", c.Count(1))
	}
	c = SeedRandom(g, 1000, 1, 2, rng.New(3))
	if c.Count(1) != 80 {
		t.Error("oversized seed should saturate the graph")
	}
}

func TestHubSeedingBeatsRandomSeedingOnScaleFree(t *testing.T) {
	// The viral-marketing intuition the paper opens with: on a scale-free
	// network, seeding the hubs activates more of the graph than seeding at
	// random, under an irreversible threshold rule.
	g, _ := NewBarabasiAlbert(300, 2, rng.New(21))
	rule := rules.Threshold{Target: 1, Theta: 2}
	seedSize := 4
	hubs := Run(g, rule, SeedTopByDegree(g, seedSize, 1, 2), 1, 400).TargetCount
	sum := 0
	const trials = 5
	for i := 0; i < trials; i++ {
		sum += Run(g, rule, SeedRandom(g, seedSize, 1, 2, rng.New(uint64(100+i))), 1, 400).TargetCount
	}
	random := sum / trials
	if hubs < random {
		t.Errorf("hub seeding (%d) should not lose to random seeding (%d)", hubs, random)
	}
	if hubs <= seedSize {
		t.Errorf("hub seeding should activate more than the seed itself, got %d", hubs)
	}
}

func TestGreedyTargetSet(t *testing.T) {
	g, _ := NewBarabasiAlbert(60, 2, rng.New(33))
	rule := rules.Threshold{Target: 1, Theta: 2}
	seeds := GreedyTargetSet(g, rule, 1, 2, 8, 100, 20, rng.New(4))
	if len(seeds) == 0 || len(seeds) > 8 {
		t.Fatalf("greedy returned %d seeds", len(seeds))
	}
	// The greedy seed set should activate at least as much as a random set
	// of the same size (averaged).
	c := NewColoring(g.N(), 2)
	for _, v := range seeds {
		c.Set(v, 1)
	}
	greedy := Run(g, rule, c, 1, 200).TargetCount
	sum := 0
	const trials = 5
	for i := 0; i < trials; i++ {
		sum += Run(g, rule, SeedRandom(g, len(seeds), 1, 2, rng.New(uint64(500+i))), 1, 200).TargetCount
	}
	if greedy < sum/trials {
		t.Errorf("greedy activation %d below random average %d", greedy, sum/trials)
	}
	// No duplicate seeds.
	seen := map[int]bool{}
	for _, v := range seeds {
		if seen[v] {
			t.Fatal("duplicate seed vertex")
		}
		seen[v] = true
	}
}
