package graphs

import (
	"strings"
	"testing"
)

// TestGeneratorsDeterministicInSeed pins the registry contract specs rely
// on: the same (name, n, params, seed) triple produces the same graph, and
// different seeds produce different graphs (for the randomized families).
func TestGeneratorsDeterministicInSeed(t *testing.T) {
	for _, name := range GeneratorNames() {
		a, err := GenerateByName(name, 36, nil, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := GenerateByName(name, 36, nil, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.N() != b.N() || a.EdgeCount() != b.EdgeCount() {
			t.Fatalf("%s: same seed, different shape", name)
		}
		for v := 0; v < a.N(); v++ {
			av, bv := a.Neighbors(v), b.Neighbors(v)
			if len(av) != len(bv) {
				t.Fatalf("%s: same seed, vertex %d degree %d vs %d", name, v, len(av), len(bv))
			}
			for i := range av {
				if av[i] != bv[i] {
					t.Fatalf("%s: same seed, vertex %d neighbors differ", name, v)
				}
			}
		}
	}
}

// TestGeneratorRejectsUnknownParams pins that misspelled spec parameters
// fail loudly instead of silently running defaults.
func TestGeneratorRejectsUnknownParams(t *testing.T) {
	if _, err := GenerateByName("barabasi-albert", 20, map[string]float64{"mm": 2}, 1); err == nil || !strings.Contains(err.Error(), "mm") {
		t.Fatalf("unknown parameter not rejected by name: %v", err)
	}
	if _, err := GenerateByName("barabasi-albert", 20, map[string]float64{"m": 2.5}, 1); err == nil {
		t.Fatal("fractional integer parameter accepted")
	}
	if _, err := GenerateByName("nonesuch", 20, nil, 1); err == nil {
		t.Fatal("unknown generator accepted")
	}
}

// TestGeneratorAliases pins alias resolution and canonicalization.
func TestGeneratorAliases(t *testing.T) {
	for alias, canonical := range map[string]string{
		"ba": "barabasi-albert", "ws": "watts-strogatz", "er": "erdos-renyi",
		"barabasi-albert": "barabasi-albert", "ring": "ring",
	} {
		got, err := CanonicalGeneratorName(alias)
		if err != nil {
			t.Fatalf("%s: %v", alias, err)
		}
		if got != canonical {
			t.Fatalf("%s canonicalized to %s, want %s", alias, got, canonical)
		}
	}
	if _, err := CanonicalGeneratorName("nonesuch"); err == nil {
		t.Fatal("unknown generator canonicalized")
	}
}
