package graphs

import (
	"context"

	"repro/internal/color"
	"repro/internal/rng"
	"repro/internal/rules"
	"repro/internal/sim"
)

// GeneralizedSMP is the degree-aware extension of the paper's SMP-Protocol;
// it lives in internal/rules (registered as "generalized-smp") and is
// re-exported here for the general-graph callers that historically found it
// in this package.
type GeneralizedSMP = rules.GeneralizedSMP

// RunResult describes a finished run of a rule over a general graph.
type RunResult struct {
	// Rounds executed (bounded by the caller's budget).
	Rounds int
	// FixedPoint reports that the last round changed nothing.
	FixedPoint bool
	// Final is the final coloring.
	Final *Coloring
	// TargetCount is the number of vertices holding the target color at the
	// end (0 if no target was supplied).
	TargetCount int
	// Engine is the full engine result behind the run, for callers that
	// want the change trace, kernel tier or monochromatic flags.
	Engine *sim.Result
}

// EngineFor returns the simulation engine for the graph's current view and
// the rule — the same tiered engine (dirty frontier, striped parallel
// sweeps, pooled zero-allocation buffers) that steps the tori, memoized on
// the view so repeated runs share pooled buffers and dropped graphs free
// everything.  Callers that want non-default run options go through it
// directly:
//
//	res, err := g.EngineFor(rule).RunContext(ctx, initial, opts)
func (g *Graph) EngineFor(rule rules.Rule) *sim.Engine {
	return g.View().EngineFor(rule)
}

// Run evolves the coloring synchronously under the rule for at most
// maxRounds rounds (<= 0 selects the graph's degree-aware
// DefaultMaxRounds), stopping early at a fixed point.  It executes on the
// tiered simulation engine — the dirty-frontier stepper by default — and is
// bit-identical, round for round, to the full-sweep loop it replaced
// (pinned by TestRunMatchesLegacyLoop).  The initial coloring is not
// modified, and repeated runs over the same graph allocate nothing beyond
// the result through the engine's pooled buffers.
func Run(g *Graph, rule rules.Rule, initial *Coloring, target color.Color, maxRounds int) *RunResult {
	res := g.EngineFor(rule).Run(initial, sim.Options{MaxRounds: maxRounds})
	out := &RunResult{
		Rounds:     res.Rounds,
		FixedPoint: res.FixedPoint,
		Final:      res.Final,
		Engine:     res,
	}
	if target != color.None {
		out.TargetCount = res.Final.Count(target)
	}
	return out
}

// SeedTopByDegree returns a coloring in which the `size` highest-degree
// vertices carry the target color and every other vertex carries background.
// It is the classic degree heuristic for target set selection.
func SeedTopByDegree(g *Graph, size int, target, background color.Color) *Coloring {
	c := NewColoring(g.N(), background)
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	// Selection sort of the top `size` degrees keeps the package free of
	// sort-dependency noise for a tiny k.
	for i := 0; i < size && i < len(order); i++ {
		best := i
		for j := i + 1; j < len(order); j++ {
			if g.Degree(order[j]) > g.Degree(order[best]) {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
		c.Set(order[i], target)
	}
	return c
}

// SeedRandom returns a coloring in which `size` uniformly chosen vertices
// carry the target color.
func SeedRandom(g *Graph, size int, target, background color.Color, src *rng.Source) *Coloring {
	if src == nil {
		src = rng.New(1)
	}
	c := NewColoring(g.N(), background)
	perm := src.Perm(g.N())
	if size > len(perm) {
		size = len(perm)
	}
	for _, v := range perm[:size] {
		c.Set(v, target)
	}
	return c
}

// GreedyTargetSet is the simulation-driven greedy baseline from the target
// set selection literature (in the spirit of Kempe–Kleinberg–Tardos): it
// repeatedly adds to the seed the vertex whose activation most increases the
// final number of target-colored vertices under the given rule, until the
// whole graph activates or maxSeed vertices have been chosen.  It returns
// the chosen seed vertices.
//
// The marginal gain is evaluated exactly (one engine run per candidate), so
// the intended use is graphs of a few hundred vertices; candidateSample > 0
// restricts each step to a random sample of that many candidates to keep
// larger instances tractable.
func GreedyTargetSet(g *Graph, rule rules.Rule, target, background color.Color, maxSeed, maxRounds, candidateSample int, src *rng.Source) []int {
	return GreedyTargetSetEngine(g.EngineFor(rule), target, background, maxSeed, maxRounds, candidateSample, src)
}

// GreedyTargetSetEngine is GreedyTargetSet over an already built engine —
// the form the public dynmon systems use, and the reason the greedy search
// inherits the engine tiers: candidate evaluations run 64 at a time on the
// bit-sliced ensemble stepper when the engine can slice (a two-color
// {target, background} palette over a degree-4 substrate whose rule has a
// carry-save kernel), and otherwise fall back to per-candidate pooled
// frontier runs.  Both paths score candidates identically — the sliced
// tier is bit-exact — so the chosen seeds never depend on the tier
// (pinned by TestGreedyTargetSetMatchesLegacy and its sliced twin).
func GreedyTargetSetEngine(eng *sim.Engine, target, background color.Color, maxSeed, maxRounds, candidateSample int, src *rng.Source) []int {
	if src == nil {
		src = rng.New(1)
	}
	d := eng.Substrate().Dims()
	n := d.N()
	seed := map[int]bool{}
	var chosen []int
	c := color.NewColoring(d, background)
	evaluate := func() int {
		c.Fill(background)
		for v := range seed {
			c.Set(v, target)
		}
		return eng.Run(c, sim.Options{MaxRounds: maxRounds}).Final.Count(target)
	}

	// Batch evaluation: score every candidate of one greedy round, 64 lanes
	// per sliced run.  Lane i is the round's base coloring (background +
	// current seeds) with candidate i activated — exactly the coloring the
	// scalar evaluate() would run.  Returns false (leaving gains
	// unspecified) when the engine refuses to slice; the first refusal
	// disables batching for the rest of the search since eligibility cannot
	// change between rounds.
	sliceable := true
	base := color.NewColoring(d, background)
	var lanes []*color.Coloring
	batchGains := func(candidates []int, gains []int) bool {
		base.Fill(background)
		for v := range seed {
			base.Set(v, target)
		}
		for lo := 0; lo < len(candidates); lo += color.MaxLanes {
			hi := min(lo+color.MaxLanes, len(candidates))
			for len(lanes) < hi-lo {
				lanes = append(lanes, color.NewColoring(d, background))
			}
			chunk := lanes[:hi-lo]
			for i, v := range candidates[lo:hi] {
				chunk[i].CopyFrom(base)
				chunk[i].Set(v, target)
			}
			results, err := eng.RunBatchSliced(context.Background(), chunk, sim.Options{MaxRounds: maxRounds})
			if err != nil {
				return false
			}
			for i, res := range results {
				gains[lo+i] = res.Final.Count(target)
			}
		}
		return true
	}

	current := 0
	for len(chosen) < maxSeed && current < n {
		candidates := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if !seed[v] {
				candidates = append(candidates, v)
			}
		}
		if candidateSample > 0 && candidateSample < len(candidates) {
			src.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
			candidates = candidates[:candidateSample]
		}
		bestVertex, bestGain := -1, -1
		if sliceable {
			gains := make([]int, len(candidates))
			if batchGains(candidates, gains) {
				for i, v := range candidates {
					if gains[i] > bestGain {
						bestGain, bestVertex = gains[i], v
					}
				}
			} else {
				sliceable = false
			}
		}
		if !sliceable {
			for _, v := range candidates {
				seed[v] = true
				gain := evaluate()
				delete(seed, v)
				if gain > bestGain {
					bestGain, bestVertex = gain, v
				}
			}
		}
		if bestVertex < 0 {
			break
		}
		seed[bestVertex] = true
		chosen = append(chosen, bestVertex)
		current = bestGain
	}
	return chosen
}
