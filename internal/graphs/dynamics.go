package graphs

import (
	"repro/internal/color"
	"repro/internal/rng"
	"repro/internal/rules"
)

// GeneralizedSMP extends the paper's SMP-Protocol to vertices of arbitrary
// degree d: a vertex adopts a color when that color is held by at least
// ⌈d/2⌉ of its neighbors and is the unique color attaining the maximum
// multiplicity; otherwise it keeps its current color.  On 4-regular graphs
// this coincides with the torus SMP rule for the 4+0, 3+1 and 2+1+1 patterns
// and keeps the current color on 2+2 ties, matching Algorithm 1.
type GeneralizedSMP struct{}

// Name returns "generalized-smp".
func (GeneralizedSMP) Name() string { return "generalized-smp" }

// Next applies the rule to a neighborhood of arbitrary size.
func (GeneralizedSMP) Next(current color.Color, neighbors []color.Color) color.Color {
	if len(neighbors) == 0 {
		return current
	}
	counts := map[color.Color]int{}
	for _, c := range neighbors {
		counts[c]++
	}
	best, bestCount, unique := color.None, 0, false
	for c, n := range counts {
		switch {
		case n > bestCount:
			best, bestCount, unique = c, n, true
		case n == bestCount:
			unique = false
		}
	}
	need := (len(neighbors) + 1) / 2
	if unique && bestCount >= need {
		return best
	}
	return current
}

// RunResult describes a finished run of a rule over a general graph.
type RunResult struct {
	// Rounds executed (bounded by the caller's budget).
	Rounds int
	// FixedPoint reports that the last round changed nothing.
	FixedPoint bool
	// Final is the final coloring.
	Final *Coloring
	// TargetCount is the number of vertices holding the target color at the
	// end (0 if no target was supplied).
	TargetCount int
}

// Run evolves the coloring synchronously under the rule for at most
// maxRounds rounds, stopping early at a fixed point.
func Run(g *Graph, rule rules.Rule, initial *Coloring, target color.Color, maxRounds int) *RunResult {
	if maxRounds <= 0 {
		maxRounds = 4*g.N() + 16
	}
	cur := initial.Clone()
	next := initial.Clone()
	res := &RunResult{}
	scratch := make([]color.Color, 0, g.MaxDegree())
	for round := 1; round <= maxRounds; round++ {
		changed := 0
		for v := 0; v < g.N(); v++ {
			scratch = scratch[:0]
			for _, u := range g.Neighbors(v) {
				scratch = append(scratch, cur.At(u))
			}
			nc := rule.Next(cur.At(v), scratch)
			next.Set(v, nc)
			if nc != cur.At(v) {
				changed++
			}
		}
		res.Rounds = round
		cur, next = next, cur
		if changed == 0 {
			res.FixedPoint = true
			break
		}
	}
	res.Final = cur
	if target != color.None {
		res.TargetCount = cur.Count(target)
	}
	return res
}

// SeedTopByDegree returns a coloring in which the `size` highest-degree
// vertices carry the target color and every other vertex carries background.
// It is the classic degree heuristic for target set selection.
func SeedTopByDegree(g *Graph, size int, target, background color.Color) *Coloring {
	c := NewColoring(g.N(), background)
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	// Selection sort of the top `size` degrees keeps the package free of
	// sort-dependency noise for a tiny k.
	for i := 0; i < size && i < len(order); i++ {
		best := i
		for j := i + 1; j < len(order); j++ {
			if g.Degree(order[j]) > g.Degree(order[best]) {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
		c.Set(order[i], target)
	}
	return c
}

// SeedRandom returns a coloring in which `size` uniformly chosen vertices
// carry the target color.
func SeedRandom(g *Graph, size int, target, background color.Color, src *rng.Source) *Coloring {
	if src == nil {
		src = rng.New(1)
	}
	c := NewColoring(g.N(), background)
	perm := src.Perm(g.N())
	if size > len(perm) {
		size = len(perm)
	}
	for _, v := range perm[:size] {
		c.Set(v, target)
	}
	return c
}

// GreedyTargetSet is the simulation-driven greedy baseline from the target
// set selection literature (in the spirit of Kempe–Kleinberg–Tardos): it
// repeatedly adds to the seed the vertex whose activation most increases the
// final number of target-colored vertices under the given rule, until the
// whole graph activates or maxSeed vertices have been chosen.  It returns
// the chosen seed vertices.
//
// The marginal gain is evaluated exactly (one simulation per candidate), so
// the intended use is graphs of a few hundred vertices; candidateSample > 0
// restricts each step to a random sample of that many candidates to keep
// larger instances tractable.
func GreedyTargetSet(g *Graph, rule rules.Rule, target, background color.Color, maxSeed, maxRounds, candidateSample int, src *rng.Source) []int {
	if src == nil {
		src = rng.New(1)
	}
	seed := map[int]bool{}
	var chosen []int
	evaluate := func() int {
		c := NewColoring(g.N(), background)
		for v := range seed {
			c.Set(v, target)
		}
		return Run(g, rule, c, target, maxRounds).TargetCount
	}
	current := 0
	for len(chosen) < maxSeed && current < g.N() {
		candidates := make([]int, 0, g.N())
		for v := 0; v < g.N(); v++ {
			if !seed[v] {
				candidates = append(candidates, v)
			}
		}
		if candidateSample > 0 && candidateSample < len(candidates) {
			src.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
			candidates = candidates[:candidateSample]
		}
		bestVertex, bestGain := -1, -1
		for _, v := range candidates {
			seed[v] = true
			gain := evaluate()
			delete(seed, v)
			if gain > bestGain {
				bestGain, bestVertex = gain, v
			}
		}
		if bestVertex < 0 {
			break
		}
		seed[bestVertex] = true
		chosen = append(chosen, bestVertex)
		current = bestGain
	}
	return chosen
}
