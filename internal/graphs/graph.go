// Package graphs is the general-graph substrate for the extension study
// sketched in the paper's conclusions: running SMP-style majority dynamics
// and target-set-selection baselines on non-torus topologies such as
// scale-free (Barabási–Albert) networks.
//
// Graphs plug into the simulation engine of internal/sim through a cached
// CSR view (Graph.View implements sim.Substrate), so every run — Run,
// GreedyTargetSet, the E-series experiments and the public dynmon graph
// systems — executes on the same tiered engine as the tori: dirty frontier
// by default, striped parallel sweeps on request, pooled zero-allocation
// buffers throughout.  Only the bitplane tier stays torus-only.
package graphs

import (
	"fmt"
	"reflect"
	"sync"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
	"repro/internal/sim"
)

// Graph is a simple undirected graph stored as adjacency lists.
type Graph struct {
	adj [][]int
	// mu guards the lazily built view below; AddEdge invalidates it.
	mu   sync.Mutex
	view *View
}

// NewGraph returns an empty graph with n vertices.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("graphs: negative vertex count")
	}
	return &Graph{adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the adjacency list of v.  Callers must not modify it.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// AddEdge inserts the undirected edge {u, v}.  Self-loops and duplicate
// edges are ignored.  Mutating the graph invalidates its cached engine view
// (see View); engines built over an earlier view keep stepping the earlier
// snapshot.
func (g *Graph) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return
	}
	if g.HasEdge(u, v) {
		return
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.invalidate()
}

// invalidate drops the cached view after a mutation.
func (g *Graph) invalidate() {
	g.mu.Lock()
	g.view = nil
	g.mu.Unlock()
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, ns := range g.adj {
		total += len(ns)
	}
	return total / 2
}

// AverageDegree returns the mean vertex degree.
func (g *Graph) AverageDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.EdgeCount()) / float64(g.N())
}

// MaxDegree returns the largest vertex degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, ns := range g.adj {
		if len(ns) > max {
			max = len(ns)
		}
	}
	return max
}

// Connected reports whether the graph is connected (vacuously true for the
// empty graph).
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return true
	}
	seen := make([]bool, g.N())
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == g.N()
}

// FromTorus converts a torus topology into a Graph so the general-graph
// dynamics can be compared against the torus engine on identical inputs.
func FromTorus(t grid.Topology) *Graph {
	g := NewGraph(t.Dims().N())
	for v := 0; v < g.N(); v++ {
		for _, u := range grid.UniqueNeighbors(t, v) {
			g.AddEdge(v, u)
		}
	}
	return g
}

// NewRing returns the cycle graph on n >= 3 vertices.
func NewRing(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graphs: ring needs at least 3 vertices, got %d", n)
	}
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n)
	}
	return g, nil
}

// NewBarabasiAlbert generates a scale-free graph with n vertices by
// preferential attachment: starting from a clique on m0 = m+1 vertices,
// every new vertex attaches to m existing vertices chosen with probability
// proportional to their degree.
func NewBarabasiAlbert(n, m int, src *rng.Source) (*Graph, error) {
	if m < 1 || n <= m {
		return nil, fmt.Errorf("graphs: Barabási–Albert requires 1 <= m < n, got n=%d m=%d", n, m)
	}
	if src == nil {
		src = rng.New(1)
	}
	g := NewGraph(n)
	// repeated holds every edge endpoint once per incidence, so picking a
	// uniform element implements preferential attachment.
	var repeated []int
	for u := 0; u <= m; u++ {
		for v := 0; v < u; v++ {
			g.AddEdge(u, v)
			repeated = append(repeated, u, v)
		}
	}
	for v := m + 1; v < n; v++ {
		// chosen is kept as an insertion-ordered slice, not a map: map
		// iteration order is randomized per run, and the order edges enter
		// `repeated` changes every later degree-proportional draw, which
		// silently made the "deterministic in the seed" contract false.
		chosen := make([]int, 0, m)
		for len(chosen) < m {
			var candidate int
			if len(repeated) == 0 {
				candidate = src.Intn(v)
			} else {
				candidate = repeated[src.Intn(len(repeated))]
			}
			if candidate == v {
				continue
			}
			dup := false
			for _, u := range chosen {
				if u == candidate {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, candidate)
			}
		}
		for _, u := range chosen {
			g.AddEdge(v, u)
			repeated = append(repeated, v, u)
		}
	}
	return g, nil
}

// NewErdosRenyi generates a G(n, p) random graph.
func NewErdosRenyi(n int, p float64, src *rng.Source) (*Graph, error) {
	if n < 1 || p < 0 || p > 1 {
		return nil, fmt.Errorf("graphs: invalid Erdős–Rényi parameters n=%d p=%v", n, p)
	}
	if src == nil {
		src = rng.New(1)
	}
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if src.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g, nil
}

// NewRandomRegular generates a d-regular graph on n vertices using the
// pairing model with retries.  n*d must be even and d < n.
func NewRandomRegular(n, d int, src *rng.Source) (*Graph, error) {
	if d < 1 || d >= n || (n*d)%2 != 0 {
		return nil, fmt.Errorf("graphs: invalid random-regular parameters n=%d d=%d", n, d)
	}
	if src == nil {
		src = rng.New(1)
	}
	for attempt := 0; attempt < 200; attempt++ {
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		src.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		g := NewGraph(n)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || g.HasEdge(u, v) {
				ok = false
				break
			}
			g.AddEdge(u, v)
		}
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graphs: failed to build a %d-regular graph on %d vertices", d, n)
}

// View is the frozen, engine-facing snapshot of a Graph: its CSR adjacency
// index plus the metadata the sim.Substrate seam requires.  A View is
// structurally immutable and safe for concurrent use; Graph.View caches one
// per graph revision, so every engine, frontier and parallel run over an
// unmutated graph shares a single index.  Engines are memoized per rule on
// the view itself (EngineFor) rather than in a process-global cache, so a
// dropped graph releases its index and pooled run buffers with it.
type View struct {
	csr    *grid.CSR
	rounds int

	mu      sync.Mutex
	engines map[rules.Rule]*sim.Engine
}

// EngineFor returns the view's memoized engine for the rule, building it on
// first use.  Rules whose dynamic type is not comparable cannot be cache
// keys and get a fresh engine per call.
func (v *View) EngineFor(rule rules.Rule) *sim.Engine {
	if !reflect.TypeOf(rule).Comparable() {
		return sim.NewEngineOn(v, rule)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if e, ok := v.engines[rule]; ok {
		return e
	}
	if v.engines == nil {
		v.engines = map[rules.Rule]*sim.Engine{}
	}
	e := sim.NewEngineOn(v, rule)
	v.engines[rule] = e
	return e
}

// Dims returns the degenerate 1×n vertex layout general-graph colorings
// carry (see grid.BuildCSRAdj).
func (v *View) Dims() grid.Dims { return v.csr.Dims() }

// Name identifies the substrate in engine errors and experiment tables.
func (v *View) Name() string {
	return fmt.Sprintf("general-graph(n=%d)", v.csr.N())
}

// CSR returns the snapshot's adjacency index.
func (v *View) CSR() *grid.CSR { return v.csr }

// DefaultMaxRounds returns the graph's degree-aware round budget, computed
// once at snapshot time (see Graph.DefaultMaxRounds).
func (v *View) DefaultMaxRounds() int { return v.rounds }

// View returns the graph's cached CSR view, building it on first use.  The
// view is invalidated by mutations (AddEdge), so callers that interleave
// construction and simulation always step the current structure, while
// repeated runs over a frozen graph — the normal pattern — reuse one index
// and one pooled engine.
func (g *Graph) View() *View {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.view == nil {
		g.view = &View{csr: grid.BuildCSRAdj(g.adj), rounds: g.DefaultMaxRounds()}
	}
	return g.view
}

// CSR returns the graph's cached CSR adjacency index (View's index).
func (g *Graph) CSR() *grid.CSR { return g.View().CSR() }

// DefaultMaxRounds returns the round budget used when a run passes
// maxRounds <= 0.  The budget is degree-aware: synchronous information
// travels one hop per round, so sparse graphs (large diameter, up to ~n/2
// on a ring) need a budget linear in n, while denser graphs converge or
// freeze within far fewer rounds.  With d̄ the average degree, the budget is
//
//	2·n + 4·n/(d̄+1) + 32
//
// which stays linear in n on rings (d̄ = 2 gives ≈3.3·n+32, the same order
// as the old flat 4·n+16) and shrinks toward 2·n as the graph densifies,
// with constant slack so tiny graphs keep a usable budget.  As with the
// torus budget, exceeding it means "does not converge", not "budget too
// small".
func (g *Graph) DefaultMaxRounds() int {
	n := g.N()
	if n == 0 {
		return 32
	}
	avg := 2 * g.EdgeCount() / n
	return 2*n + 4*n/(avg+1) + 32
}

// Coloring is a color assignment over a graph's vertices.  It is the same
// flat coloring the torus engine evolves, carrying the degenerate 1×n
// vertex layout of the graph's View; NewColoring is the graph-shaped
// constructor.
type Coloring = color.Coloring

// NewColoring returns a coloring of n vertices filled with fill, laid out
// to match a View over an n-vertex graph.
func NewColoring(n int, fill color.Color) *Coloring {
	return color.NewColoring(grid.Dims{Rows: 1, Cols: n}, fill)
}
