// Package graphs is the general-graph substrate for the extension study
// sketched in the paper's conclusions: running SMP-style majority dynamics
// and target-set-selection baselines on non-torus topologies such as
// scale-free (Barabási–Albert) networks.
package graphs

import (
	"fmt"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rng"
)

// Graph is a simple undirected graph stored as adjacency lists.
type Graph struct {
	adj [][]int
}

// NewGraph returns an empty graph with n vertices.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("graphs: negative vertex count")
	}
	return &Graph{adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the adjacency list of v.  Callers must not modify it.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// AddEdge inserts the undirected edge {u, v}.  Self-loops and duplicate
// edges are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return
	}
	if g.HasEdge(u, v) {
		return
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, ns := range g.adj {
		total += len(ns)
	}
	return total / 2
}

// AverageDegree returns the mean vertex degree.
func (g *Graph) AverageDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.EdgeCount()) / float64(g.N())
}

// MaxDegree returns the largest vertex degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, ns := range g.adj {
		if len(ns) > max {
			max = len(ns)
		}
	}
	return max
}

// Connected reports whether the graph is connected (vacuously true for the
// empty graph).
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return true
	}
	seen := make([]bool, g.N())
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == g.N()
}

// FromTorus converts a torus topology into a Graph so the general-graph
// dynamics can be compared against the torus engine on identical inputs.
func FromTorus(t grid.Topology) *Graph {
	g := NewGraph(t.Dims().N())
	for v := 0; v < g.N(); v++ {
		for _, u := range grid.UniqueNeighbors(t, v) {
			g.AddEdge(v, u)
		}
	}
	return g
}

// NewRing returns the cycle graph on n >= 3 vertices.
func NewRing(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graphs: ring needs at least 3 vertices, got %d", n)
	}
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n)
	}
	return g, nil
}

// NewBarabasiAlbert generates a scale-free graph with n vertices by
// preferential attachment: starting from a clique on m0 = m+1 vertices,
// every new vertex attaches to m existing vertices chosen with probability
// proportional to their degree.
func NewBarabasiAlbert(n, m int, src *rng.Source) (*Graph, error) {
	if m < 1 || n <= m {
		return nil, fmt.Errorf("graphs: Barabási–Albert requires 1 <= m < n, got n=%d m=%d", n, m)
	}
	if src == nil {
		src = rng.New(1)
	}
	g := NewGraph(n)
	// repeated holds every edge endpoint once per incidence, so picking a
	// uniform element implements preferential attachment.
	var repeated []int
	for u := 0; u <= m; u++ {
		for v := 0; v < u; v++ {
			g.AddEdge(u, v)
			repeated = append(repeated, u, v)
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := make(map[int]bool, m)
		for len(chosen) < m {
			var candidate int
			if len(repeated) == 0 {
				candidate = src.Intn(v)
			} else {
				candidate = repeated[src.Intn(len(repeated))]
			}
			if candidate != v {
				chosen[candidate] = true
			}
		}
		for u := range chosen {
			g.AddEdge(v, u)
			repeated = append(repeated, v, u)
		}
	}
	return g, nil
}

// NewErdosRenyi generates a G(n, p) random graph.
func NewErdosRenyi(n int, p float64, src *rng.Source) (*Graph, error) {
	if n < 1 || p < 0 || p > 1 {
		return nil, fmt.Errorf("graphs: invalid Erdős–Rényi parameters n=%d p=%v", n, p)
	}
	if src == nil {
		src = rng.New(1)
	}
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if src.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g, nil
}

// NewRandomRegular generates a d-regular graph on n vertices using the
// pairing model with retries.  n*d must be even and d < n.
func NewRandomRegular(n, d int, src *rng.Source) (*Graph, error) {
	if d < 1 || d >= n || (n*d)%2 != 0 {
		return nil, fmt.Errorf("graphs: invalid random-regular parameters n=%d d=%d", n, d)
	}
	if src == nil {
		src = rng.New(1)
	}
	for attempt := 0; attempt < 200; attempt++ {
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		src.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		g := NewGraph(n)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || g.HasEdge(u, v) {
				ok = false
				break
			}
			g.AddEdge(u, v)
		}
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graphs: failed to build a %d-regular graph on %d vertices", d, n)
}

// Coloring is a color assignment over a graph's vertices.
type Coloring struct {
	cells []color.Color
}

// NewColoring returns a coloring of n vertices filled with fill.
func NewColoring(n int, fill color.Color) *Coloring {
	c := &Coloring{cells: make([]color.Color, n)}
	for i := range c.cells {
		c.cells[i] = fill
	}
	return c
}

// At returns the color of vertex v.
func (c *Coloring) At(v int) color.Color { return c.cells[v] }

// Set assigns a color to vertex v.
func (c *Coloring) Set(v int, col color.Color) { c.cells[v] = col }

// Count returns how many vertices carry col.
func (c *Coloring) Count(col color.Color) int {
	n := 0
	for _, v := range c.cells {
		if v == col {
			n++
		}
	}
	return n
}

// N returns the number of vertices.
func (c *Coloring) N() int { return len(c.cells) }

// Clone returns a deep copy.
func (c *Coloring) Clone() *Coloring {
	out := &Coloring{cells: make([]color.Color, len(c.cells))}
	copy(out.cells, c.cells)
	return out
}

// Equal reports whether two colorings agree everywhere.
func (c *Coloring) Equal(o *Coloring) bool {
	if len(c.cells) != len(o.cells) {
		return false
	}
	for i := range c.cells {
		if c.cells[i] != o.cells[i] {
			return false
		}
	}
	return true
}
