package graphs

import (
	"fmt"

	"repro/internal/rng"
)

// NewWattsStrogatz generates a small-world graph: a ring lattice on n
// vertices where every vertex is connected to its k nearest neighbors (k
// even), with each edge rewired to a uniformly random endpoint with
// probability beta.  beta = 0 gives the regular ring lattice, beta = 1 an
// essentially random graph; intermediate values give the high-clustering /
// short-path "small world" regime the social-network literature referenced
// by the paper studies.
func NewWattsStrogatz(n, k int, beta float64, src *rng.Source) (*Graph, error) {
	if n < 4 || k < 2 || k%2 != 0 || k >= n {
		return nil, fmt.Errorf("graphs: Watts–Strogatz requires n >= 4 and even 2 <= k < n, got n=%d k=%d", n, k)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("graphs: rewiring probability %v outside [0,1]", beta)
	}
	if src == nil {
		src = rng.New(1)
	}
	g := NewGraph(n)
	// Ring lattice: connect every vertex to its k/2 clockwise neighbors.
	for v := 0; v < n; v++ {
		for d := 1; d <= k/2; d++ {
			g.AddEdge(v, (v+d)%n)
		}
	}
	// Rewire each original clockwise edge with probability beta.
	for v := 0; v < n; v++ {
		for d := 1; d <= k/2; d++ {
			if src.Float64() >= beta {
				continue
			}
			u := (v + d) % n
			// Pick a new endpoint avoiding self-loops and duplicates; keep
			// the old edge if no candidate is found quickly.
			for attempt := 0; attempt < 32; attempt++ {
				w := src.Intn(n)
				if w == v || g.HasEdge(v, w) {
					continue
				}
				g.removeEdge(v, u)
				g.AddEdge(v, w)
				break
			}
		}
	}
	return g, nil
}

// removeEdge deletes the undirected edge {u, v} if present.
func (g *Graph) removeEdge(u, v int) {
	g.adj[u] = removeValue(g.adj[u], v)
	g.adj[v] = removeValue(g.adj[v], u)
	g.invalidate()
}

func removeValue(xs []int, v int) []int {
	out := xs[:0]
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// ClusteringCoefficient returns the average local clustering coefficient of
// the graph (the fraction of a vertex's neighbor pairs that are themselves
// adjacent, averaged over vertices of degree at least two).
func ClusteringCoefficient(g *Graph) float64 {
	total, counted := 0.0, 0
	for v := 0; v < g.N(); v++ {
		ns := g.Neighbors(v)
		if len(ns) < 2 {
			continue
		}
		links := 0
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				if g.HasEdge(ns[i], ns[j]) {
					links++
				}
			}
		}
		pairs := len(ns) * (len(ns) - 1) / 2
		total += float64(links) / float64(pairs)
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// AveragePathLength returns the mean shortest-path length over all ordered
// vertex pairs, computed by BFS from every vertex.  Unreachable pairs are
// ignored; it returns 0 for graphs with fewer than two vertices.
func AveragePathLength(g *Graph) float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	total, pairs := 0.0, 0
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for v := 0; v < n; v++ {
			if v != s && dist[v] > 0 {
				total += float64(dist[v])
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return total / float64(pairs)
}
