package search

import (
	"testing"

	"repro/internal/color"
	"repro/internal/dynamo"
	"repro/internal/grid"
)

func TestRandomDynamoFindsSubBoundMonotoneDynamoOn4x4(t *testing.T) {
	// The counterexample to Theorem 1 documented in EXPERIMENTS.md: a
	// monotone dynamo strictly below the m+n-2 bound on the 4x4 mesh.
	topo := grid.MustNew(grid.KindToroidalMesh, 4, 4)
	bound := dynamo.LowerBound(grid.KindToroidalMesh, topo.Dims())
	found := RandomDynamo(topo, bound-1, 1, color.MustPalette(5), Options{Trials: 2000, RequireMonotone: true, Seed: 3})
	if found == nil {
		t.Fatal("expected to find a monotone dynamo of size bound-1 on the 4x4 mesh")
	}
	if !found.Monotone {
		t.Fatal("RequireMonotone was set but the hit is not monotone")
	}
	if found.Coloring.Count(1) != bound-1 {
		t.Fatalf("seed size %d, want %d", found.Coloring.Count(1), bound-1)
	}
	// Re-verify the returned configuration independently.
	v := dynamo.VerifyColoring(topo, found.Coloring, 1)
	if !v.IsDynamo || !v.Monotone {
		t.Fatal("returned configuration does not re-verify")
	}
}

func TestRandomDynamoRespectsMonotoneFlag(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 5, 5)
	// Without the monotone requirement undersized hits exist on 5x5; with a
	// tiny trial budget the search may or may not find one, but it must
	// never return a non-dynamo.
	found := RandomDynamo(topo, 7, 1, color.MustPalette(5), Options{Trials: 300, RequireMonotone: false, Seed: 9})
	if found != nil {
		v := dynamo.VerifyColoring(topo, found.Coloring, 1)
		if !v.IsDynamo {
			t.Fatal("search returned a configuration that is not a dynamo")
		}
	}
}

func TestRandomDynamoFailsOnLargeTorusBelowBound(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 8, 8)
	found := RandomDynamo(topo, 5, 1, color.MustPalette(4), Options{Trials: 60, RequireMonotone: false, Seed: 2})
	if found != nil {
		t.Fatal("a 5-vertex random seed should not take over an 8x8 torus")
	}
}

func TestSmallestRandomDynamo(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 4, 4)
	bound := dynamo.LowerBound(grid.KindToroidalMesh, topo.Dims())
	best, found := SmallestRandomDynamo(topo, bound, 1, color.MustPalette(5),
		Options{Trials: 1500, RequireMonotone: true, Seed: 5})
	if best == 0 || found == nil {
		t.Fatal("expected to find monotone dynamos below the bound on 4x4")
	}
	if best >= bound {
		t.Fatalf("best size %d should be below the bound %d", best, bound)
	}
	if found.SeedSize != best {
		t.Fatalf("inconsistent result: best %d, found seed %d", best, found.SeedSize)
	}
}

func TestExhaustiveMonotoneDynamoTiny(t *testing.T) {
	// On a 3x3 torus with seeds of size 2 nothing should win monotonically
	// (bound is 4); the exhaustive search must terminate and say so.
	topo := grid.MustNew(grid.KindToroidalMesh, 3, 3)
	found, placements, err := ExhaustiveMonotoneDynamo(topo, 2, 1, color.MustPalette(4), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if placements != 36 { // C(9,2)
		t.Errorf("expected 36 placements, got %d", placements)
	}
	if found != nil {
		t.Errorf("unexpected 2-vertex monotone dynamo on 3x3:\n%s", found.Coloring.String())
	}
}

func TestExhaustiveMonotoneDynamoValidation(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 3, 3)
	if _, _, err := ExhaustiveMonotoneDynamo(topo, 0, 1, color.MustPalette(4), 1, 0); err == nil {
		t.Error("size 0 should be rejected")
	}
	if _, _, err := ExhaustiveMonotoneDynamo(topo, 99, 1, color.MustPalette(4), 1, 0); err == nil {
		t.Error("oversized seed should be rejected")
	}
	// The placement cap must trigger cleanly.
	big := grid.MustNew(grid.KindToroidalMesh, 6, 6)
	if _, _, err := ExhaustiveMonotoneDynamo(big, 5, 1, color.MustPalette(4), 1, 10); err == nil {
		t.Error("placement cap should produce an error")
	}
}

func TestDefaultOptions(t *testing.T) {
	opt := DefaultOptions()
	if opt.Trials <= 0 || !opt.RequireMonotone {
		t.Errorf("unexpected defaults %+v", opt)
	}
}
