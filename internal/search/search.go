// Package search looks for small dynamos beyond the paper's explicit
// constructions: randomized search over seed placements and paddings, and
// exhaustive search over seed placements on tiny tori.
//
// The package exists for two reasons.  First, it provides the negative
// controls of the lower-bound experiments (random undersized seeds almost
// never take over).  Second, it found the counterexamples documented in
// EXPERIMENTS.md: monotone dynamos *below* the Theorem 1 bound on small
// toroidal meshes.
package search

import (
	"fmt"

	"repro/internal/color"
	"repro/internal/dynamo"
	"repro/internal/grid"
	"repro/internal/rng"
)

// Found describes one configuration discovered by a search.
type Found struct {
	// SeedSize is the number of target-colored vertices.
	SeedSize int
	// Coloring is the full initial configuration.
	Coloring *color.Coloring
	// Monotone reports whether the dynamo is monotone.
	Monotone bool
	// Rounds is the convergence time.
	Rounds int
}

// Options bounds a randomized search.
type Options struct {
	// Trials is the number of random configurations tried per seed size.
	Trials int
	// RequireMonotone restricts the search to monotone dynamos.
	RequireMonotone bool
	// Seed selects the random universe.
	Seed uint64
}

// DefaultOptions returns the options used by the experiments.
func DefaultOptions() Options {
	return Options{Trials: 400, RequireMonotone: true, Seed: 1}
}

// RandomDynamo looks for a dynamo of exactly the given seed size by placing
// the seed uniformly at random and padding the rest with uniformly random
// other colors.  It returns the first hit, or nil if none is found within
// opt.Trials attempts.
func RandomDynamo(topo grid.Topology, size int, target color.Color, p color.Palette, opt Options) *Found {
	if opt.Trials <= 0 {
		opt.Trials = DefaultOptions().Trials
	}
	src := rng.New(opt.Seed)
	for trial := 0; trial < opt.Trials; trial++ {
		c := dynamo.RandomSeedColoring(topo, size, target, p, func(b int) int { return src.Intn(b) })
		v := dynamo.VerifyColoring(topo, c, target)
		if !v.IsDynamo {
			continue
		}
		if opt.RequireMonotone && !v.Monotone {
			continue
		}
		return &Found{SeedSize: size, Coloring: c, Monotone: v.Monotone, Rounds: v.Rounds}
	}
	return nil
}

// SmallestRandomDynamo decreases the seed size starting just below `from`
// (typically the paper's lower bound) and returns the smallest size for
// which RandomDynamo still finds a configuration, together with the last
// hit.  It returns (0, nil) when even size from-1 yields nothing.
func SmallestRandomDynamo(topo grid.Topology, from int, target color.Color, p color.Palette, opt Options) (int, *Found) {
	best := 0
	var bestFound *Found
	for size := from - 1; size >= 1; size-- {
		found := RandomDynamo(topo, size, target, p, opt)
		if found == nil {
			break
		}
		best, bestFound = size, found
	}
	return best, bestFound
}

// ExhaustiveMonotoneDynamo enumerates every seed placement of exactly the
// given size on the torus (paddings are searched randomly per placement) and
// reports whether any of them is a monotone dynamo.  It is exponential in
// the seed size and is meant for tiny tori only; the enumeration is capped
// at maxPlacements (0 means 2'000'000).
func ExhaustiveMonotoneDynamo(topo grid.Topology, size int, target color.Color, p color.Palette, paddingsPerPlacement int, maxPlacements int) (*Found, int, error) {
	n := topo.Dims().N()
	if size < 1 || size > n {
		return nil, 0, fmt.Errorf("search: seed size %d out of range for %d vertices", size, n)
	}
	if maxPlacements <= 0 {
		maxPlacements = 2_000_000
	}
	if paddingsPerPlacement <= 0 {
		paddingsPerPlacement = 8
	}
	src := rng.New(7)
	others := p.Others(target)

	indices := make([]int, size)
	for i := range indices {
		indices[i] = i
	}
	placements := 0
	for {
		placements++
		if placements > maxPlacements {
			return nil, placements - 1, fmt.Errorf("search: placement cap %d reached", maxPlacements)
		}
		// Try the current placement with several random paddings.
		for attempt := 0; attempt < paddingsPerPlacement; attempt++ {
			c := color.NewColoring(topo.Dims(), color.None)
			for _, v := range indices {
				c.Set(v, target)
			}
			for v := 0; v < n; v++ {
				if c.At(v) == color.None {
					c.Set(v, others[src.Intn(len(others))])
				}
			}
			v := dynamo.VerifyColoring(topo, c, target)
			if v.IsDynamo && v.Monotone {
				return &Found{SeedSize: size, Coloring: c, Monotone: true, Rounds: v.Rounds}, placements, nil
			}
		}
		// Advance to the next combination (lexicographic).
		i := size - 1
		for i >= 0 && indices[i] == n-size+i {
			i--
		}
		if i < 0 {
			return nil, placements, nil
		}
		indices[i]++
		for j := i + 1; j < size; j++ {
			indices[j] = indices[j-1] + 1
		}
	}
}
