package blocks

import (
	"testing"
	"testing/quick"

	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
	"repro/internal/sim"
)

func mesh(m, n int) grid.Topology { return grid.MustNew(grid.KindToroidalMesh, m, n) }

func TestKBlocksSingleColumnInMesh(t *testing.T) {
	// A single k-colored column is a k-block in a toroidal mesh (the column
	// wraps vertically, so every vertex has two in-set neighbors).
	c := color.NewColoring(grid.MustDims(5, 5), 2)
	c.FillCol(1, 1)
	bs := KBlocks(mesh(5, 5), c, 1)
	if len(bs) != 1 {
		t.Fatalf("expected 1 block, got %d", len(bs))
	}
	if len(bs[0]) != 5 {
		t.Errorf("block size = %d, want 5", len(bs[0]))
	}
}

func TestSingleColumnNotABlockInSerpentinus(t *testing.T) {
	// The paper notes a single column is a k-block in a toroidal mesh and a
	// torus cordalis but NOT in a torus serpentinus (the vertical wrap leaves
	// the column), whereas two consecutive columns are a block in all tori.
	c := color.NewColoring(grid.MustDims(5, 5), 2)
	c.FillCol(1, 1)
	if HasKBlock(grid.MustNew(grid.KindTorusSerpentinus, 5, 5), c, 1) {
		t.Error("single column should not be a block in the serpentinus")
	}
	if !HasKBlock(grid.MustNew(grid.KindTorusCordalis, 5, 5), c, 1) {
		t.Error("single column should be a block in the cordalis")
	}
	c2 := color.NewColoring(grid.MustDims(5, 5), 2)
	c2.FillCol(1, 1)
	c2.FillCol(2, 1)
	for _, kind := range grid.Kinds() {
		if !HasKBlock(grid.MustNew(kind, 5, 5), c2, 1) {
			t.Errorf("two consecutive columns should be a block in %v", kind)
		}
	}
}

func TestSingleRowBlockOnlyInMesh(t *testing.T) {
	// A single row is a k-block in a toroidal mesh but not in a torus
	// cordalis or serpentinus (the horizontal wrap leaves the row); two
	// consecutive rows are a block in all tori.
	c := color.NewColoring(grid.MustDims(5, 6), 2)
	c.FillRow(2, 1)
	if !HasKBlock(mesh(5, 6), c, 1) {
		t.Error("single row should be a block in the mesh")
	}
	if HasKBlock(grid.MustNew(grid.KindTorusCordalis, 5, 6), c, 1) {
		t.Error("single row should not be a block in the cordalis")
	}
	if HasKBlock(grid.MustNew(grid.KindTorusSerpentinus, 5, 6), c, 1) {
		t.Error("single row should not be a block in the serpentinus")
	}
	c.FillRow(3, 1)
	for _, kind := range grid.Kinds() {
		if !HasKBlock(grid.MustNew(kind, 5, 6), c, 1) {
			t.Errorf("two consecutive rows should be a block in %v", kind)
		}
	}
}

func TestTwoByTwoSquareIsABlock(t *testing.T) {
	c := color.NewColoring(grid.MustDims(6, 6), 2)
	for _, p := range [][2]int{{2, 2}, {2, 3}, {3, 2}, {3, 3}} {
		c.SetRC(p[0], p[1], 1)
	}
	bs := KBlocks(mesh(6, 6), c, 1)
	if len(bs) != 1 || len(bs[0]) != 4 {
		t.Fatalf("2x2 square should be one block of size 4, got %v", bs)
	}
}

func TestIsolatedAndPathVerticesAreNotBlocks(t *testing.T) {
	c := color.NewColoring(grid.MustDims(6, 6), 2)
	c.SetRC(1, 1, 1) // isolated
	c.SetRC(3, 1, 1) // path of three
	c.SetRC(3, 2, 1)
	c.SetRC(3, 3, 1)
	if HasKBlock(mesh(6, 6), c, 1) {
		t.Error("isolated vertices and open paths must not form blocks")
	}
}

func TestKBlocksMultipleComponents(t *testing.T) {
	c := color.NewColoring(grid.MustDims(8, 8), 2)
	for _, p := range [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}} {
		c.SetRC(p[0], p[1], 1)
	}
	for _, p := range [][2]int{{5, 5}, {5, 6}, {6, 5}, {6, 6}} {
		c.SetRC(p[0], p[1], 1)
	}
	bs := KBlocks(mesh(8, 8), c, 1)
	if len(bs) != 2 {
		t.Fatalf("expected 2 blocks, got %d", len(bs))
	}
	for _, b := range bs {
		if len(b) != 4 {
			t.Errorf("block size = %d, want 4", len(b))
		}
	}
}

func TestBlockVerticesNeverRecolorUnderSMP(t *testing.T) {
	// Definition 4's consequence: vertices in a k-block keep color k under
	// the SMP-Protocol because at most two neighbors can disagree.
	// Verified structurally: every block vertex has at least 2 in-block
	// neighbors.
	c := color.NewColoring(grid.MustDims(7, 7), 2)
	c.FillCol(3, 1)
	topo := mesh(7, 7)
	for _, block := range KBlocks(topo, c, 1) {
		inBlock := map[int]bool{}
		for _, v := range block {
			inBlock[v] = true
		}
		for _, v := range block {
			cnt := 0
			for _, u := range grid.UniqueNeighbors(topo, v) {
				if inBlock[u] {
					cnt++
				}
			}
			if cnt < 2 {
				t.Fatalf("block vertex %d has only %d in-block neighbors", v, cnt)
			}
		}
	}
}

func TestNonKBlocksTwoRowsInMesh(t *testing.T) {
	// Two consecutive rows of non-k vertices form a non-k-block in the
	// toroidal mesh: every vertex keeps 3 neighbors inside (left, right and
	// the vertical partner).
	c := color.NewColoring(grid.MustDims(6, 6), 1) // everything k
	c.FillRow(2, 2)
	c.FillRow(3, 3)
	topo := mesh(6, 6)
	if !HasNonKBlock(topo, c, 1) {
		t.Fatal("two non-k rows should form a non-k-block in the mesh")
	}
	bs := NonKBlocks(topo, c, 1)
	if len(bs) != 1 || len(bs[0]) != 12 {
		t.Errorf("unexpected non-k-blocks %v", bs)
	}
}

func TestNonKBlocksTwoColumnsInCordalis(t *testing.T) {
	// In the torus cordalis the horizontal wrap leaves the row band, so the
	// strict Definition 5 is satisfied by two consecutive *columns* (the
	// vertical wrap stays inside the band) but not by two consecutive rows:
	// the band's first and last vertices only keep two in-band neighbors.
	// (The paper states the rows example loosely for all tori; the strict
	// definition admits it only for the mesh — see EXPERIMENTS.md.)
	topo := grid.MustNew(grid.KindTorusCordalis, 6, 6)
	byCols := color.NewColoring(grid.MustDims(6, 6), 1)
	byCols.FillCol(2, 2)
	byCols.FillCol(3, 3)
	if !HasNonKBlock(topo, byCols, 1) {
		t.Error("two non-k columns should form a non-k-block in the cordalis")
	}
	byRows := color.NewColoring(grid.MustDims(6, 6), 1)
	byRows.FillRow(2, 2)
	byRows.FillRow(3, 3)
	if HasNonKBlock(topo, byRows, 1) {
		t.Error("a two-row band has weak corners in the cordalis and is not a strict non-k-block")
	}
}

func TestSingleNonKRowIsNotANonKBlock(t *testing.T) {
	c := color.NewColoring(grid.MustDims(6, 6), 1)
	c.FillRow(2, 2)
	if HasNonKBlock(mesh(6, 6), c, 1) {
		t.Error("one non-k row has internal degree 2, not 3; it is not a non-k-block")
	}
}

func TestNonKBlockMixedColors(t *testing.T) {
	// Non-k-blocks may mix any colors different from k.
	c := color.NewColoring(grid.MustDims(6, 6), 1)
	c.FillRow(2, 2)
	c.FillRow(3, 4)
	c.FillRow(4, 3)
	if !HasNonKBlock(mesh(6, 6), c, 1) {
		t.Error("three mixed non-k rows should contain a non-k-block")
	}
}

func TestOtherColorBlocks(t *testing.T) {
	c := color.NewColoring(grid.MustDims(6, 6), 1)
	c.FillCol(2, 3) // a 3-block (column wraps)
	got := OtherColorBlocks(mesh(6, 6), c, 1)
	if len(got) != 1 {
		t.Fatalf("expected blocks for exactly one color, got %v", got)
	}
	if len(got[3]) != 1 {
		t.Errorf("expected one 3-block, got %v", got[3])
	}
	// The k color itself is never reported.
	if _, ok := got[1]; ok {
		t.Error("OtherColorBlocks must not report the target color")
	}
}

func TestMonochromaticIsOneBigBlock(t *testing.T) {
	c := color.NewColoring(grid.MustDims(5, 5), 1)
	bs := KBlocks(mesh(5, 5), c, 1)
	if len(bs) != 1 || len(bs[0]) != 25 {
		t.Errorf("monochromatic torus should be a single block of 25, got %v", bs)
	}
	if HasNonKBlock(mesh(5, 5), c, 1) {
		t.Error("monochromatic torus has no non-k vertices at all")
	}
}

func TestBlockVerticesPersistUnderSMPDynamics(t *testing.T) {
	// The defining consequence of Definition 4, checked dynamically: on
	// random colorings, every vertex that belongs to a k-block at time 0
	// still carries color k when the dynamics freeze (blocks are immutable
	// under the SMP-Protocol).
	f := func(seed uint64, kindSeed, sizeSeed uint8) bool {
		kind := grid.Kinds()[int(kindSeed)%3]
		m := 4 + int(sizeSeed)%6
		n := 4 + int(sizeSeed/2)%6
		topo := grid.MustNew(kind, m, n)
		src := rng.New(seed)
		p := color.MustPalette(3)
		c := color.RandomColoring(topo.Dims(), p, func() int { return src.Intn(p.K) })
		res := sim.Run(topo, rules.SMP{}, c, sim.Options{MaxRounds: 200, DetectCycles: true})
		for _, k := range p.Colors() {
			for _, block := range KBlocks(topo, c, k) {
				for _, v := range block {
					if res.Final.At(v) != k {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNonKBlockVerticesNeverAcquireK(t *testing.T) {
	// Definition 5's consequence, checked dynamically on random colorings:
	// vertices inside a non-k-block never become k.
	f := func(seed uint64, sizeSeed uint8) bool {
		m := 5 + int(sizeSeed)%5
		n := 5 + int(sizeSeed/3)%5
		topo := mesh(m, n)
		src := rng.New(seed)
		p := color.MustPalette(3)
		c := color.RandomColoring(topo.Dims(), p, func() int { return src.Intn(p.K) })
		res := sim.Run(topo, rules.SMP{}, c, sim.Options{MaxRounds: 200, DetectCycles: true})
		for _, block := range NonKBlocks(topo, c, 1) {
			for _, v := range block {
				if res.Final.At(v) == 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomColoringBlocksArePlausible(t *testing.T) {
	src := rng.New(123)
	p := color.MustPalette(3)
	c := color.RandomColoring(grid.MustDims(10, 10), p, func() int { return src.Intn(p.K) })
	topo := mesh(10, 10)
	for _, k := range p.Colors() {
		for _, block := range KBlocks(topo, c, k) {
			for _, v := range block {
				if c.At(v) != k {
					t.Fatalf("block for color %v contains vertex of color %v", k, c.At(v))
				}
			}
			if len(block) < 3 {
				t.Fatalf("a k-block needs at least 3 vertices on a simple graph, got %d", len(block))
			}
		}
	}
}
