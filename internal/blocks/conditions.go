package blocks

import (
	"fmt"

	"repro/internal/color"
	"repro/internal/grid"
)

// CheckTightPadding verifies the hypotheses that Theorems 2, 4 and 6 impose
// on the colors outside the dynamo seed Sk:
//
//  1. for every color k' != k, the k'-colored vertices induce a forest;
//  2. for every k'-colored vertex x, the neighbors of x whose color is
//     neither k' nor k carry pairwise different colors.
//
// It returns nil when both conditions hold and a descriptive error naming
// the first violated condition otherwise.
func CheckTightPadding(topo grid.Topology, c *color.Coloring, k color.Color) error {
	counts := c.Counts()
	for col := range counts {
		if col == color.None {
			return fmt.Errorf("blocks: vertex with unset color present")
		}
		if col == k {
			continue
		}
		if !IsForest(topo, c, col) {
			return fmt.Errorf("blocks: color class %v is not a forest", col)
		}
	}
	d := c.Dims()
	var buf [grid.Degree]int
	for v := 0; v < c.N(); v++ {
		own := c.At(v)
		if own == k {
			continue
		}
		seen := make(map[color.Color]bool, grid.Degree)
		for _, u := range topo.Neighbors(v, buf[:0]) {
			cu := c.At(u)
			if cu == k || cu == own {
				continue
			}
			if seen[cu] {
				return fmt.Errorf("blocks: vertex %v (color %v) has two neighbors of color %v",
					d.Coord(v), own, cu)
			}
			seen[cu] = true
		}
	}
	return nil
}

// CheckMonotoneDynamoNecessaryConditions verifies the necessary conditions
// of Lemma 2 and Theorem 1 for a set Sk (the k-colored vertices of the
// coloring) to be a monotone dynamo:
//
//   - Sk is a union of k-blocks (every k-colored vertex belongs to a
//     k-block);
//   - the complement contains no non-k-block;
//   - the bounding rectangle of Sk spans at least (m-1) rows and (n-1)
//     columns.
//
// It returns nil when all conditions hold.
func CheckMonotoneDynamoNecessaryConditions(topo grid.Topology, c *color.Coloring, k color.Color) error {
	d := topo.Dims()
	inBlock := make([]bool, c.N())
	for _, block := range KBlocks(topo, c, k) {
		for _, v := range block {
			inBlock[v] = true
		}
	}
	for v := 0; v < c.N(); v++ {
		if c.At(v) == k && !inBlock[v] {
			return fmt.Errorf("blocks: k-colored vertex %v belongs to no k-block (violates Lemma 2)", d.Coord(v))
		}
	}
	if HasNonKBlock(topo, c, k) {
		return fmt.Errorf("blocks: the complement of Sk contains a non-k-block (violates Lemma 2)")
	}
	rows, cols := c.BoundingRectangle(k)
	if rows < d.Rows-1 || cols < d.Cols-1 {
		return fmt.Errorf("blocks: bounding rectangle of Sk is %dx%d, need at least %dx%d (violates Lemma 1)",
			rows, cols, d.Rows-1, d.Cols-1)
	}
	return nil
}
