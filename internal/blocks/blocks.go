// Package blocks implements the structural notions the paper's proofs are
// built on: k-blocks, non-k-blocks, forests of color classes and the
// padding conditions of the tight constructions (Theorem 2 and its
// cordalis/serpentinus analogues).
//
// Definitions (Section II.B of the paper):
//
//   - a k-block is a connected set of k-colored vertices each of which has
//     at least two neighbors inside the set; its vertices can never change
//     color under the SMP-Protocol;
//   - a non-k-block is a connected set of vertices with colors other than k
//     each of which has at least three neighbors inside the set; its
//     vertices can never acquire color k.
//
// Both are computed as cores of induced subgraphs: the maximal vertex sets
// in which every vertex keeps a minimum internal degree (2 for k-blocks, 3
// for non-k-blocks).  Connected components of the core are the blocks.
package blocks

import (
	"repro/internal/color"
	"repro/internal/grid"
)

// core computes the maximal subset of members in which every vertex has at
// least minDeg neighbors that are also in the subset, where membership of
// vertex v is members[v].  Neighbors are counted on the simple graph
// (duplicate ports collapsed).  It returns the indicator slice of the core.
func core(topo grid.Topology, members []bool, minDeg int) []bool {
	n := topo.Dims().N()
	in := make([]bool, n)
	deg := make([]int, n)
	copy(in, members)

	degreeOf := func(v int) int {
		d := 0
		for _, u := range grid.UniqueNeighbors(topo, v) {
			if in[u] {
				d++
			}
		}
		return d
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if !in[v] {
			continue
		}
		deg[v] = degreeOf(v)
		if deg[v] < minDeg {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !in[v] {
			continue
		}
		in[v] = false
		for _, u := range grid.UniqueNeighbors(topo, v) {
			if !in[u] {
				continue
			}
			deg[u]--
			if deg[u] < minDeg {
				queue = append(queue, u)
			}
		}
	}
	return in
}

// components splits the vertices marked in `in` into connected components
// (using the simple graph induced on them) and returns them as sorted index
// slices.
func components(topo grid.Topology, in []bool) [][]int {
	n := topo.Dims().N()
	seen := make([]bool, n)
	var out [][]int
	for v := 0; v < n; v++ {
		if !in[v] || seen[v] {
			continue
		}
		var comp []int
		stack := []int{v}
		seen[v] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, x)
			for _, u := range grid.UniqueNeighbors(topo, x) {
				if in[u] && !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sortInts(comp)
		out = append(out, comp)
	}
	return out
}

func sortInts(xs []int) {
	// Insertion sort: component sizes are small relative to the cost of a
	// dependency, and this keeps the package free of imports beyond the
	// repository's own.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

// KBlocks returns the k-blocks of the coloring: the connected components of
// the 2-core of the k-colored induced subgraph (Definition 4).
func KBlocks(topo grid.Topology, c *color.Coloring, k color.Color) [][]int {
	members := make([]bool, c.N())
	for v := 0; v < c.N(); v++ {
		members[v] = c.At(v) == k
	}
	return components(topo, core(topo, members, 2))
}

// HasKBlock reports whether the coloring contains at least one k-block.
func HasKBlock(topo grid.Topology, c *color.Coloring, k color.Color) bool {
	return len(KBlocks(topo, c, k)) > 0
}

// NonKBlocks returns the non-k-blocks of the coloring: the connected
// components of the 3-core of the subgraph induced by the vertices whose
// color differs from k (Definition 5).
func NonKBlocks(topo grid.Topology, c *color.Coloring, k color.Color) [][]int {
	members := make([]bool, c.N())
	for v := 0; v < c.N(); v++ {
		members[v] = c.At(v) != k
	}
	return components(topo, core(topo, members, 3))
}

// HasNonKBlock reports whether the coloring contains a non-k-block, i.e. a
// set of vertices that can never acquire color k.  By Lemma 2 a monotone
// dynamo must leave no such set.
func HasNonKBlock(topo grid.Topology, c *color.Coloring, k color.Color) bool {
	return len(NonKBlocks(topo, c, k)) > 0
}

// OtherColorBlocks returns, for every color k' != k present in the coloring,
// the k'-blocks.  The tight constructions require there to be none
// (otherwise the k' vertices would never recolor).
func OtherColorBlocks(topo grid.Topology, c *color.Coloring, k color.Color) map[color.Color][][]int {
	out := make(map[color.Color][][]int)
	for col := range c.Counts() {
		if col == k || col == color.None {
			continue
		}
		if bs := KBlocks(topo, c, col); len(bs) > 0 {
			out[col] = bs
		}
	}
	return out
}
