package blocks

import (
	"testing"

	"repro/internal/color"
	"repro/internal/grid"
)

func TestIsForestPathAndTree(t *testing.T) {
	c := color.NewColoring(grid.MustDims(6, 6), 2)
	// An L-shaped path of color 1.
	for _, p := range [][2]int{{1, 1}, {1, 2}, {1, 3}, {2, 3}, {3, 3}} {
		c.SetRC(p[0], p[1], 1)
	}
	if !IsForest(mesh(6, 6), c, 1) {
		t.Error("an L-shaped path is a tree, hence a forest")
	}
}

func TestIsForestDetectsCycle(t *testing.T) {
	c := color.NewColoring(grid.MustDims(6, 6), 2)
	for _, p := range [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}} {
		c.SetRC(p[0], p[1], 1)
	}
	if IsForest(mesh(6, 6), c, 1) {
		t.Error("a 2x2 square contains a 4-cycle")
	}
}

func TestIsForestWrappingColumnIsACycle(t *testing.T) {
	c := color.NewColoring(grid.MustDims(5, 5), 2)
	c.FillCol(2, 1)
	if IsForest(mesh(5, 5), c, 1) {
		t.Error("a full column wraps into a cycle in the toroidal mesh")
	}
	// In the serpentinus the same column does not close on itself.
	if !IsForest(grid.MustNew(grid.KindTorusSerpentinus, 5, 5), c, 1) {
		t.Error("a single column is a path in the serpentinus")
	}
}

func TestIsForestEmptyClass(t *testing.T) {
	c := color.NewColoring(grid.MustDims(4, 4), 2)
	if !IsForest(mesh(4, 4), c, 7) {
		t.Error("an empty color class is trivially a forest")
	}
}

func TestIsForestDisconnectedComponents(t *testing.T) {
	c := color.NewColoring(grid.MustDims(8, 8), 2)
	for _, p := range [][2]int{{1, 1}, {1, 2}, {5, 5}, {6, 5}} {
		c.SetRC(p[0], p[1], 1)
	}
	if !IsForest(mesh(8, 8), c, 1) {
		t.Error("two disjoint edges form a forest")
	}
	// Close a cycle in one component only.
	c.SetRC(2, 1, 1)
	c.SetRC(2, 2, 1)
	if IsForest(mesh(8, 8), c, 1) {
		t.Error("one cyclic component makes the class not a forest")
	}
}

func TestAllOtherClassesAreForests(t *testing.T) {
	c := color.NewColoring(grid.MustDims(6, 6), 2)
	c.FillCol(0, 1)
	c.FillRow(0, 1)
	// Color 2 fills the rest as one big blob with many cycles.
	if AllOtherClassesAreForests(mesh(6, 6), c, 1) {
		t.Error("the 5x5 blob of color 2 contains cycles")
	}
	// Recolor the blob into vertical stripes of distinct colors: each stripe
	// is a path (column 0 is color 1, so stripes do not wrap).
	for i := 1; i < 6; i++ {
		for j := 1; j < 6; j++ {
			c.SetRC(i, j, color.Color(1+j))
		}
	}
	if !AllOtherClassesAreForests(mesh(6, 6), c, 1) {
		t.Error("disjoint vertical stripes should all be forests")
	}
}

func TestCheckTightPaddingAcceptsValidConfiguration(t *testing.T) {
	// Full cross of color 1 with a 3-color row cycle outside: the canonical
	// valid padding (every non-k vertex sees at most its own color twice and
	// the two vertical neighbors carry different colors).
	m, n := 7, 7
	c := color.NewColoring(grid.MustDims(m, n), color.None)
	pad := []color.Color{2, 3, 4}
	for i := 1; i < m; i++ {
		for j := 1; j < n; j++ {
			c.SetRC(i, j, pad[(i-1)%3])
		}
	}
	c.FillRow(0, 1)
	c.FillCol(0, 1)
	if err := CheckTightPadding(mesh(m, n), c, 1); err != nil {
		t.Fatalf("valid padding rejected: %v", err)
	}
}

func TestCheckTightPaddingRejectsRepeatedOtherColor(t *testing.T) {
	m, n := 7, 7
	c := color.NewColoring(grid.MustDims(m, n), color.None)
	pad := []color.Color{2, 3, 4}
	for i := 1; i < m; i++ {
		for j := 1; j < n; j++ {
			c.SetRC(i, j, pad[(i-1)%3])
		}
	}
	c.FillRow(0, 1)
	c.FillCol(0, 1)
	// Make vertex (3,3) see color 2 twice among "other" colors: its vertical
	// neighbors are rows 2 and 4 (colors 3 and 2 in the cycle); recolor (2,3)
	// to 2 so both verticals are 2 while (3,3) itself is 4.
	c.SetRC(2, 3, 2)
	c.SetRC(4, 3, 2)
	c.SetRC(3, 3, 4)
	if err := CheckTightPadding(mesh(m, n), c, 1); err == nil {
		t.Fatal("padding with a repeated other color should be rejected")
	}
}

func TestCheckTightPaddingRejectsNonForestClass(t *testing.T) {
	c := color.NewColoring(grid.MustDims(6, 6), 2) // color 2 everywhere: full of cycles
	c.FillRow(0, 1)
	c.FillCol(0, 1)
	if err := CheckTightPadding(mesh(6, 6), c, 1); err == nil {
		t.Fatal("cyclic color class should be rejected")
	}
}

func TestCheckTightPaddingRejectsUnsetCells(t *testing.T) {
	c := color.NewColoring(grid.MustDims(4, 4), color.None)
	c.FillRow(0, 1)
	if err := CheckTightPadding(mesh(4, 4), c, 1); err == nil {
		t.Fatal("unset cells should be rejected")
	}
}

func TestCheckMonotoneDynamoNecessaryConditions(t *testing.T) {
	m, n := 6, 6
	topo := mesh(m, n)
	// Full cross: passes all necessary conditions.
	c := color.NewColoring(grid.MustDims(m, n), color.None)
	pad := []color.Color{2, 3, 4}
	for i := 1; i < m; i++ {
		for j := 1; j < n; j++ {
			c.SetRC(i, j, pad[(i-1)%3])
		}
	}
	c.FillRow(0, 1)
	c.FillCol(0, 1)
	if err := CheckMonotoneDynamoNecessaryConditions(topo, c, 1); err != nil {
		t.Fatalf("full cross should satisfy the necessary conditions: %v", err)
	}

	// A lone extra k-vertex violates the union-of-blocks condition.
	bad := c.Clone()
	bad.SetRC(3, 3, 1)
	if err := CheckMonotoneDynamoNecessaryConditions(topo, bad, 1); err == nil {
		t.Error("isolated k-vertex should violate Lemma 2")
	}

	// A small k-set whose bounding rectangle does not span the torus
	// violates Lemma 1 (and typically leaves a non-k-block too).
	small := color.NewColoring(grid.MustDims(m, n), 2)
	small.SetRC(2, 2, 1)
	small.SetRC(2, 3, 1)
	small.SetRC(3, 2, 1)
	small.SetRC(3, 3, 1)
	if err := CheckMonotoneDynamoNecessaryConditions(topo, small, 1); err == nil {
		t.Error("a 2x2 seed should violate the necessary conditions")
	}
}
