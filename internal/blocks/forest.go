package blocks

import (
	"repro/internal/color"
	"repro/internal/grid"
)

// IsForest reports whether the subgraph induced by the vertices of color k
// is acyclic (a forest) on the simple graph.  The tight constructions
// (Theorem 2, 4, 6) require every non-k color class to be a forest.
func IsForest(topo grid.Topology, c *color.Coloring, k color.Color) bool {
	n := c.N()
	in := make([]bool, n)
	for v := 0; v < n; v++ {
		in[v] = c.At(v) == k
	}
	return isForestSubgraph(topo, in)
}

// isForestSubgraph reports whether the subgraph induced on the marked
// vertices is acyclic, using the |E| < |V| characterization per connected
// component (equivalently, union-find over induced edges).
func isForestSubgraph(topo grid.Topology, in []bool) bool {
	n := len(in)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := 0; v < n; v++ {
		if !in[v] {
			continue
		}
		for _, u := range grid.UniqueNeighbors(topo, v) {
			if !in[u] || u < v {
				continue
			}
			ru, rv := find(u), find(v)
			if ru == rv {
				return false // the edge closes a cycle
			}
			parent[ru] = rv
		}
	}
	return true
}

// AllOtherClassesAreForests reports whether every color class other than k
// induces a forest.
func AllOtherClassesAreForests(topo grid.Topology, c *color.Coloring, k color.Color) bool {
	for col := range c.Counts() {
		if col == k || col == color.None {
			continue
		}
		if !IsForest(topo, c, col) {
			return false
		}
	}
	return true
}
