// Package ascii renders colorings and integer matrices as fixed-width text.
// It is how the repository regenerates the paper's figures: Figures 1-4 are
// colorings, Figures 5-6 are matrices of recoloring times.
package ascii

import (
	"fmt"
	"strings"

	"repro/internal/color"
)

// Coloring renders a coloring as a bordered grid, one rune per cell, with a
// legend listing the colors in use.  The highlight color (if non-zero) is
// rendered as 'B' to match the paper's black-node figures.
func Coloring(c *color.Coloring, highlight color.Color) string {
	d := c.Dims()
	var b strings.Builder
	border := "+" + strings.Repeat("-", d.Cols) + "+\n"
	b.WriteString(border)
	for i := 0; i < d.Rows; i++ {
		b.WriteByte('|')
		for j := 0; j < d.Cols; j++ {
			col := c.AtRC(i, j)
			if highlight != color.None && col == highlight {
				b.WriteByte('B')
			} else {
				b.WriteRune(col.Rune())
			}
		}
		b.WriteString("|\n")
	}
	b.WriteString(border)
	b.WriteString(legend(c, highlight))
	return b.String()
}

func legend(c *color.Coloring, highlight color.Color) string {
	counts := c.Counts()
	if len(counts) == 0 {
		return ""
	}
	maxColor := c.MaxColor()
	var parts []string
	for col := color.Color(0); col <= maxColor; col++ {
		n, ok := counts[col]
		if !ok {
			continue
		}
		label := string(col.Rune())
		if highlight != color.None && col == highlight {
			label = "B"
		}
		parts = append(parts, fmt.Sprintf("%s=color %d (%d)", label, int(col), n))
	}
	return "legend: " + strings.Join(parts, ", ") + "\n"
}

// IntMatrix renders a matrix of small integers with aligned columns, in the
// style of the paper's Figures 5 and 6 (each entry is the number of rounds
// after which the vertex assumes color k; -1 entries render as "·" meaning
// "never").
func IntMatrix(m [][]int) string {
	if len(m) == 0 {
		return ""
	}
	width := 1
	for _, row := range m {
		for _, v := range row {
			w := len(cell(v))
			if w > width {
				width = w
			}
		}
	}
	var b strings.Builder
	for _, row := range m {
		for j, v := range row {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(pad(cell(v), width))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func cell(v int) string {
	if v < 0 {
		return "·"
	}
	return fmt.Sprintf("%d", v)
}

func pad(s string, width int) string {
	// Account for the multi-byte middle dot when padding.
	visible := len([]rune(s))
	if visible >= width {
		return s
	}
	return strings.Repeat(" ", width-visible) + s
}

// SideBySide joins two multi-line blocks horizontally with a gutter, row by
// row, padding the shorter block with blank lines.  It is used to print
// "paper vs measured" figure comparisons.
func SideBySide(left, right string, gutter string) string {
	ll := strings.Split(strings.TrimRight(left, "\n"), "\n")
	rl := strings.Split(strings.TrimRight(right, "\n"), "\n")
	width := 0
	for _, l := range ll {
		if n := len([]rune(l)); n > width {
			width = n
		}
	}
	rows := len(ll)
	if len(rl) > rows {
		rows = len(rl)
	}
	var b strings.Builder
	for i := 0; i < rows; i++ {
		var l, r string
		if i < len(ll) {
			l = ll[i]
		}
		if i < len(rl) {
			r = rl[i]
		}
		b.WriteString(l)
		b.WriteString(strings.Repeat(" ", width-len([]rune(l))))
		b.WriteString(gutter)
		b.WriteString(r)
		b.WriteByte('\n')
	}
	return b.String()
}

// Banner renders a section header used by the command-line tools.
func Banner(title string) string {
	line := strings.Repeat("=", len(title)+4)
	return fmt.Sprintf("%s\n| %s |\n%s\n", line, title, line)
}
