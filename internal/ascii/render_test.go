package ascii

import (
	"strings"
	"testing"

	"repro/internal/color"
)

func TestColoringRender(t *testing.T) {
	c := color.MustParse("12\n21")
	out := Coloring(c, 1)
	if !strings.Contains(out, "|B2|") || !strings.Contains(out, "|2B|") {
		t.Errorf("highlight not applied:\n%s", out)
	}
	if !strings.Contains(out, "legend:") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "+--+") {
		t.Errorf("missing border:\n%s", out)
	}
	// Without highlight the raw runes appear.
	out = Coloring(c, color.None)
	if !strings.Contains(out, "|12|") {
		t.Errorf("unhighlighted render wrong:\n%s", out)
	}
}

func TestColoringLegendCountsAllColors(t *testing.T) {
	c := color.MustParse("123\n123\n123")
	out := Coloring(c, color.None)
	for _, want := range []string{"color 1 (3)", "color 2 (3)", "color 3 (3)"} {
		if !strings.Contains(out, want) {
			t.Errorf("legend missing %q:\n%s", want, out)
		}
	}
}

func TestIntMatrix(t *testing.T) {
	out := IntMatrix([][]int{{0, 1, 2}, {10, -1, 3}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 lines, got %d", len(lines))
	}
	if !strings.Contains(lines[1], "·") {
		t.Errorf("negative entry should render as middle dot: %q", lines[1])
	}
	if !strings.Contains(lines[1], "10") {
		t.Errorf("missing value 10: %q", lines[1])
	}
	// Columns are aligned: both lines have equal rune length.
	if len([]rune(lines[0])) != len([]rune(lines[1])) {
		t.Errorf("misaligned rows: %q vs %q", lines[0], lines[1])
	}
	if IntMatrix(nil) != "" {
		t.Error("empty matrix should render as empty string")
	}
}

func TestSideBySide(t *testing.T) {
	out := SideBySide("aa\nbb\ncc", "XX\nYY", " | ")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d", len(lines))
	}
	if lines[0] != "aa | XX" {
		t.Errorf("line 0 = %q", lines[0])
	}
	if lines[2] != "cc | " {
		t.Errorf("line 2 = %q", lines[2])
	}
}

func TestSideBySideRightLonger(t *testing.T) {
	out := SideBySide("a", "x\ny", "|")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 lines, got %d", len(lines))
	}
	if lines[1] != " |y" {
		t.Errorf("line 1 = %q", lines[1])
	}
}

func TestBanner(t *testing.T) {
	out := Banner("Hello")
	if !strings.Contains(out, "| Hello |") {
		t.Errorf("banner missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 || len(lines[0]) != len(lines[1]) {
		t.Errorf("banner misaligned: %q", out)
	}
}
