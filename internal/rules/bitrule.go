package rules

import "repro/internal/color"

// Word-parallel ("bit-sliced") rule kernels.
//
// The engine's bitplane tier packs the configuration into bit planes — bit v
// of plane b is bit b of (color-1) of vertex v — and gathers each of the
// four neighbor ports as a shifted copy of those planes.  A rule whose
// decision has a closed bitwise form can then recolor 64 vertices per word
// operation.  The kernels below are exact: each one is the rule's
// NextFromCounts decision compiled to a carry-save adder network over the
// per-port indicator bits, and the bitrule tests pin them bit-identical to
// the scalar path on every neighborhood multiset.
//
// The SMP-Protocol's three cases map to adder outputs directly.  Writing
// count_e for the number of ports carrying encoding e (counts sum to 4):
//
//   - "some color on ≥ 3 neighbors" is bit2 | (bit1 & bit0) of count_e;
//   - the 2+1+1 pattern is count_e == 2 with no *other* encoding at 2 —
//     when exactly one pair exists the remaining two ports are automatically
//     distinct, which is the paper's uniqueness condition;
//   - the 2+2 tie is two encodings at exactly 2, the case that keeps the
//     current color and distinguishes SMP from the Prefer-Black /
//     Prefer-Current variants.

// BitPorts is the number of neighbor ports of the torus topologies (equal to
// grid.Degree; rules deliberately does not import grid).
const BitPorts = 4

// MaxBitPlanes is the deepest bit slicing supported: two planes cover the
// encodings 0..3, i.e. palettes up to color.MaxPlaneColors.
const MaxBitPlanes = 2

// BitState is the word-parallel working set of one bit-sliced round.  All
// plane slices have equal length; when Planes == 1 the second plane of Cur,
// Nbr and Next may be nil and must not be touched.
//
// Lanes beyond the vertex count in the final word carry unspecified values
// on input and output; the engine masks them after the kernel runs.
type BitState struct {
	// Planes is the number of live planes (1 for k ≤ 2, 2 for k ≤ 4).
	Planes int
	// Cur[b][w] is plane b of the current configuration for lanes
	// 64w..64w+63.
	Cur [MaxBitPlanes][]uint64
	// Nbr[p][b][w] is plane b of the port-p neighbor's color, i.e. the
	// configuration planes gathered through the topology's port-p shift.
	Nbr [BitPorts][MaxBitPlanes][]uint64
	// Next receives the output planes.
	Next [MaxBitPlanes][]uint64
}

// BitKernel evaluates a rule 64 vertices at a time.
type BitKernel interface {
	// StepWords writes st.Next for words [lo, hi) from st.Cur and st.Nbr.
	// Implementations must not touch words outside the range, so the engine
	// can stripe a step across workers.
	StepWords(st *BitState, lo, hi int)
}

// BitRule is implemented by rules with an exact word-parallel kernel.
//
// Contract: the kernel returned for palette {1..k} must agree with Next on
// every configuration whose colors lie in {1..k}, and the rule must never
// recolor a vertex to a color absent from its own color and its neighbors'
// (rules that mint new colors, like Increment, cannot be bit-sliced because
// the plane count is fixed by the initial configuration).
type BitRule interface {
	Rule
	// BitKernel returns the kernel for the palette {1..k}, or ok=false when
	// the rule has no exact kernel at that palette size.
	BitKernel(k int) (BitKernel, bool)
}

// Static guarantees that every shipped rule with a closed bitwise form
// actually exposes it.
var (
	_ BitRule = SMP{}
	_ BitRule = SimpleMajorityPB{}
	_ BitRule = SimpleMajorityPC{}
	_ BitRule = StrongMajority{}
	_ BitRule = Threshold{}
	_ BitRule = IrreversibleSMP{}
)

// csa4 sums four one-bit lanes with a carry-save adder network: the result
// (b2 b1 b0) is the per-lane population count 0..4 of the four input words.
func csa4(n0, n1, n2, n3 uint64) (b2, b1, b0 uint64) {
	a, ac := n0^n1, n0&n1
	b, bc := n2^n3, n2&n3
	b0 = a ^ b
	k0 := a & b
	b1 = ac ^ bc ^ k0
	b2 = (ac & bc) | (k0 & (ac ^ bc))
	return
}

// geCount turns the adder output into the indicator "count ≥ theta".
func geCount(b2, b1, b0 uint64, theta int) uint64 {
	switch {
	case theta <= 0:
		return ^uint64(0)
	case theta == 1:
		return b2 | b1 | b0
	case theta == 2:
		return b2 | b1
	case theta == 3:
		return b2 | (b1 & b0)
	case theta == 4:
		return b2
	default:
		return 0
	}
}

// enc4 summarizes one word of a two-plane neighborhood: for each encoding e,
// the per-lane indicators of count_e ≥ 2, ≥ 3 and == 2 over the four ports.
type enc4 struct {
	ge2, ge3, eq2 [4]uint64
}

// countEnc4 tallies the four ports of word w into per-encoding indicators.
func countEnc4(st *BitState, w int) (c enc4) {
	var m [4][BitPorts]uint64
	for p := 0; p < BitPorts; p++ {
		lo := st.Nbr[p][0][w]
		hi := st.Nbr[p][1][w]
		m[0][p] = ^(lo | hi)
		m[1][p] = lo &^ hi
		m[2][p] = hi &^ lo
		m[3][p] = lo & hi
	}
	for e := 0; e < 4; e++ {
		b2, b1, b0 := csa4(m[e][0], m[e][1], m[e][2], m[e][3])
		c.ge3[e] = b2 | (b1 & b0)
		c.eq2[e] = b1 &^ (b0 | b2)
		c.ge2[e] = b2 | b1
	}
	return
}

// twoPairs is the per-lane indicator of the 2+2 tie: at least two encodings
// with exactly two ports each.
func twoPairs(eq2 *[4]uint64) uint64 {
	return (eq2[0] & (eq2[1] | eq2[2] | eq2[3])) |
		(eq2[1] & (eq2[2] | eq2[3])) |
		(eq2[2] & eq2[3])
}

// writeEnc2 combines per-encoding adopt masks into the two output planes:
// lanes in adopt[e] take encoding e, all others keep the current planes.
// The adopt masks must be pairwise disjoint (counts sum to 4, so at most one
// encoding can win a lane).
func writeEnc2(st *BitState, w int, adopt *[4]uint64) {
	sel := adopt[0] | adopt[1] | adopt[2] | adopt[3]
	st.Next[0][w] = adopt[1] | adopt[3] | (st.Cur[0][w] &^ sel)
	st.Next[1][w] = adopt[2] | adopt[3] | (st.Cur[1][w] &^ sel)
}

// smpKernel1 is the one-plane SMP kernel.  With two colors the 2+1+1 case
// cannot occur and the 2+2 split is exactly "two ports set": adopt on a
// strict majority, keep on the tie.  The Prefer-Current and strong-majority
// rules reduce to the same function at k = 2, so they share it.
type smpKernel1 struct{}

func (smpKernel1) StepWords(st *BitState, lo, hi int) {
	cur, next := st.Cur[0], st.Next[0]
	n0, n1, n2, n3 := st.Nbr[0][0], st.Nbr[1][0], st.Nbr[2][0], st.Nbr[3][0]
	for w := lo; w < hi; w++ {
		b2, b1, b0 := csa4(n0[w], n1[w], n2[w], n3[w])
		ge3 := b2 | (b1 & b0)
		eq2 := b1 &^ (b0 | b2)
		next[w] = ge3 | (eq2 & cur[w])
	}
}

// smpKernel2 is the two-plane SMP kernel: per encoding, adopt on count ≥ 3
// or on the unique pair of a 2+1+1 split; keep on 2+2 ties and 1+1+1+1.
type smpKernel2 struct{}

func (smpKernel2) StepWords(st *BitState, lo, hi int) {
	for w := lo; w < hi; w++ {
		c := countEnc4(st, w)
		two2 := twoPairs(&c.eq2)
		var adopt [4]uint64
		for e := 0; e < 4; e++ {
			adopt[e] = c.ge3[e] | (c.eq2[e] &^ two2)
		}
		writeEnc2(st, w, &adopt)
	}
}

// majority3Kernel2 adopts only on count ≥ 3 (Prefer-Current and strong
// majority; uniqueness is automatic with four ports).
type majority3Kernel2 struct{}

func (majority3Kernel2) StepWords(st *BitState, lo, hi int) {
	for w := lo; w < hi; w++ {
		c := countEnc4(st, w)
		adopt := c.ge3
		writeEnc2(st, w, &adopt)
	}
}

// pbKernel1 is the one-plane Prefer-Black kernel for a representable black
// encoding: black on ≥ 2 black ports, otherwise the other color (which then
// necessarily holds ≥ 3 ports).
type pbKernel1 struct{ black int }

func (k pbKernel1) StepWords(st *BitState, lo, hi int) {
	next := st.Next[0]
	n0, n1, n2, n3 := st.Nbr[0][0], st.Nbr[1][0], st.Nbr[2][0], st.Nbr[3][0]
	for w := lo; w < hi; w++ {
		b2, b1, b0 := csa4(n0[w], n1[w], n2[w], n3[w])
		if k.black == 1 {
			// ≥ 2 ports carry encoding 1 → black (1); else encoding 0 holds
			// ≥ 3 ports → 0.
			next[w] = b2 | b1
		} else {
			// ≥ 2 ports carry encoding 0 ⇔ count₁ ≤ 2 → black (0); else 1.
			next[w] = b2 | (b1 & b0)
		}
	}
}

// pbKernel2 is the two-plane Prefer-Black kernel: black wins any lane with
// ≥ 2 black ports; elsewhere the unique ≥ 2 majority (count ≥ 3, or the
// single pair of a 2+1+1 split) is adopted, and 2+2 ties keep the current
// color.
type pbKernel2 struct{ black int }

func (k pbKernel2) StepWords(st *BitState, lo, hi int) {
	for w := lo; w < hi; w++ {
		c := countEnc4(st, w)
		two2 := twoPairs(&c.eq2)
		blackSel := c.ge2[k.black]
		var adopt [4]uint64
		for e := 0; e < 4; e++ {
			adopt[e] = (c.ge3[e] | (c.eq2[e] &^ two2)) &^ blackSel
		}
		adopt[k.black] = blackSel
		writeEnc2(st, w, &adopt)
	}
}

// thresholdKernel1 is the one-plane irreversible threshold kernel.
type thresholdKernel1 struct{ target, theta int }

func (k thresholdKernel1) StepWords(st *BitState, lo, hi int) {
	cur, next := st.Cur[0], st.Next[0]
	n0, n1, n2, n3 := st.Nbr[0][0], st.Nbr[1][0], st.Nbr[2][0], st.Nbr[3][0]
	for w := lo; w < hi; w++ {
		t0, t1, t2, t3 := n0[w], n1[w], n2[w], n3[w]
		if k.target == 0 {
			t0, t1, t2, t3 = ^t0, ^t1, ^t2, ^t3
		}
		b2, b1, b0 := csa4(t0, t1, t2, t3)
		ge := geCount(b2, b1, b0, k.theta)
		if k.target == 1 {
			next[w] = cur[w] | ge
		} else {
			next[w] = cur[w] &^ ge
		}
	}
}

// thresholdKernel2 is the two-plane irreversible threshold kernel.
type thresholdKernel2 struct{ target, theta int }

func (k thresholdKernel2) StepWords(st *BitState, lo, hi int) {
	t0mask := -uint64(k.target & 1)
	t1mask := -uint64((k.target >> 1) & 1)
	for w := lo; w < hi; w++ {
		var m [BitPorts]uint64
		for p := 0; p < BitPorts; p++ {
			lo64 := st.Nbr[p][0][w]
			hi64 := st.Nbr[p][1][w]
			if k.target&1 == 0 {
				lo64 = ^lo64
			}
			if k.target&2 == 0 {
				hi64 = ^hi64
			}
			m[p] = lo64 & hi64
		}
		b2, b1, b0 := csa4(m[0], m[1], m[2], m[3])
		ge := geCount(b2, b1, b0, k.theta)
		st.Next[0][w] = (ge & t0mask) | (st.Cur[0][w] &^ ge)
		st.Next[1][w] = (ge & t1mask) | (st.Cur[1][w] &^ ge)
	}
}

// irrevSMPKernel1 is the one-plane monotone SMP kernel: lanes move toward
// the target encoding exactly when the SMP decision lands on it.
type irrevSMPKernel1 struct{ target int }

func (k irrevSMPKernel1) StepWords(st *BitState, lo, hi int) {
	cur, next := st.Cur[0], st.Next[0]
	n0, n1, n2, n3 := st.Nbr[0][0], st.Nbr[1][0], st.Nbr[2][0], st.Nbr[3][0]
	for w := lo; w < hi; w++ {
		b2, b1, b0 := csa4(n0[w], n1[w], n2[w], n3[w])
		smp := (b2 | (b1 & b0)) | ((b1 &^ (b0 | b2)) & cur[w])
		if k.target == 1 {
			next[w] = cur[w] | smp
		} else {
			next[w] = cur[w] & smp
		}
	}
}

// irrevSMPKernel2 is the two-plane monotone SMP kernel.
type irrevSMPKernel2 struct{ target int }

func (k irrevSMPKernel2) StepWords(st *BitState, lo, hi int) {
	t0mask := -uint64(k.target & 1)
	t1mask := -uint64((k.target >> 1) & 1)
	for w := lo; w < hi; w++ {
		c := countEnc4(st, w)
		two2 := twoPairs(&c.eq2)
		adopt := c.ge3[k.target] | (c.eq2[k.target] &^ two2)
		st.Next[0][w] = (adopt & t0mask) | (st.Cur[0][w] &^ adopt)
		st.Next[1][w] = (adopt & t1mask) | (st.Cur[1][w] &^ adopt)
	}
}

// identityKernel copies the configuration unchanged: the exact kernel of
// rules whose parameters make them inert on the palette (e.g. a threshold
// rule whose target color cannot occur).
type identityKernel struct{ planes int }

func (k identityKernel) StepWords(st *BitState, lo, hi int) {
	for b := 0; b < k.planes; b++ {
		copy(st.Next[b][lo:hi], st.Cur[b][lo:hi])
	}
}

// BitKernel returns the SMP-Protocol kernel.
func (SMP) BitKernel(k int) (BitKernel, bool) {
	planes, ok := color.PlanesFor(k)
	if !ok {
		return nil, false
	}
	if planes == 1 {
		return smpKernel1{}, true
	}
	return smpKernel2{}, true
}

// BitKernel returns the Prefer-Black kernel.  A black color outside the
// palette can never reach two neighbors, so the rule degenerates to the
// unique-majority adoption — which is exactly the SMP decision.
func (r SimpleMajorityPB) BitKernel(k int) (BitKernel, bool) {
	planes, ok := color.PlanesFor(k)
	if !ok {
		return nil, false
	}
	enc := int(r.Black) - 1
	if planes == 1 {
		if enc == 0 || enc == 1 {
			return pbKernel1{black: enc}, true
		}
		return smpKernel1{}, true
	}
	if enc >= 0 && enc < 4 {
		return pbKernel2{black: enc}, true
	}
	return smpKernel2{}, true
}

// BitKernel returns the Prefer-Current kernel.
func (SimpleMajorityPC) BitKernel(k int) (BitKernel, bool) {
	planes, ok := color.PlanesFor(k)
	if !ok {
		return nil, false
	}
	if planes == 1 {
		// With two colors "count ≥ 3, else keep" is the SMP decision.
		return smpKernel1{}, true
	}
	return majority3Kernel2{}, true
}

// BitKernel returns the strong-majority kernel (same decision as
// Prefer-Current on four ports).
func (StrongMajority) BitKernel(k int) (BitKernel, bool) {
	return SimpleMajorityPC{}.BitKernel(k)
}

// BitKernel returns the linear-threshold kernel.  A target outside the
// palette with a positive threshold can never activate (no neighbor carries
// it), giving the identity; with Theta ≤ 0 the rule would mint the absent
// target color, which the plane encoding cannot represent, so there is no
// kernel.
func (r Threshold) BitKernel(k int) (BitKernel, bool) {
	planes, ok := color.PlanesFor(k)
	if !ok {
		return nil, false
	}
	enc := int(r.Target) - 1
	if enc < 0 || enc >= 1<<planes {
		if r.Theta <= 0 {
			return nil, false
		}
		return identityKernel{planes: planes}, true
	}
	if planes == 1 {
		return thresholdKernel1{target: enc, theta: r.Theta}, true
	}
	return thresholdKernel2{target: enc, theta: r.Theta}, true
}

// BitKernel returns the monotone SMP kernel.  A target outside the palette
// can never be adopted (SMP only ever returns a color present in the
// neighborhood), giving the identity.
func (r IrreversibleSMP) BitKernel(k int) (BitKernel, bool) {
	planes, ok := color.PlanesFor(k)
	if !ok {
		return nil, false
	}
	enc := int(r.Target) - 1
	if enc < 0 || enc >= 1<<planes {
		return identityKernel{planes: planes}, true
	}
	if planes == 1 {
		return irrevSMPKernel1{target: enc}, true
	}
	return irrevSMPKernel2{target: enc}, true
}
