package rules

import "repro/internal/color"

// IrreversibleSMP is the monotone (irreversible) restriction of the
// SMP-Protocol: vertices that have adopted the Target color never leave it,
// and other vertices change only when the SMP condition would recolor them
// *to* the Target color.  The paper's introduction distinguishes exactly
// this monotone/non-monotone axis ("the impossibility of a node to return
// in its initial state determines the monotone behavior of the activation
// process"); the rule is used by the comparison experiments as the bridge
// between the SMP-Protocol and the irreversible threshold model of TSS.
type IrreversibleSMP struct {
	// Target is the absorbing color.
	Target color.Color
}

// Name returns "irreversible-smp".
func (IrreversibleSMP) Name() string { return "irreversible-smp" }

// Next applies the rule.
func (r IrreversibleSMP) Next(current color.Color, neighbors []color.Color) color.Color {
	if current == r.Target {
		return current
	}
	if next := (SMP{}).Next(current, neighbors); next == r.Target {
		return next
	}
	return current
}

// Increment is the ordered-color variant referenced in the paper's
// introduction (Brunetti, Lodi, Quattrociocchi, "Multicolored dynamos on
// toroidal meshes" [4] and "Stubborn entities in colored toroidal meshes"
// [5]): the color set is the ordered set {1..K} and a vertex that is
// persuaded to change does not copy its neighbors' color but increases its
// own color by one (saturating at K).
//
// "Persuaded" uses the same neighborhood pattern as the SMP-Protocol: a
// unique color held by at least two neighbors, with the remaining neighbors
// pairwise different, and that color strictly greater than the vertex's
// current color.
type Increment struct {
	// K is the largest color; increments saturate at K.
	K int
}

// Name returns "increment".
func (Increment) Name() string { return "increment" }

// Next applies the rule.
func (r Increment) Next(current color.Color, neighbors []color.Color) color.Color {
	cs := tally(neighbors)
	best, count, unique := cs.max()
	persuaded := (count >= 3 || (count == 2 && unique)) && unique && best > current
	if !persuaded {
		return current
	}
	next := current + 1
	if int(next) > r.K {
		next = color.Color(r.K)
	}
	return next
}
