package rules

import (
	"testing"

	"repro/internal/color"
	"repro/internal/rng"
)

// mapReferenceNext is the original map-tallying implementation of the
// generalized SMP rule, kept here as the oracle the allocation-free
// rewrite is pinned against.
func mapReferenceNext(current color.Color, neighbors []color.Color) color.Color {
	if len(neighbors) == 0 {
		return current
	}
	counts := map[color.Color]int{}
	for _, c := range neighbors {
		counts[c]++
	}
	best, bestCount, unique := color.None, 0, false
	for c, n := range counts {
		switch {
		case n > bestCount:
			best, bestCount, unique = c, n, true
		case n == bestCount:
			unique = false
		}
	}
	need := (len(neighbors) + 1) / 2
	if unique && bestCount >= need {
		return best
	}
	return current
}

func TestGeneralizedSMPMatchesMapReferenceExhaustively(t *testing.T) {
	// Every degree-4 neighborhood over five colors, every current color:
	// the no-map rewrite must agree with the original map implementation.
	gen := GeneralizedSMP{}
	for c1 := 1; c1 <= 5; c1++ {
		for c2 := 1; c2 <= 5; c2++ {
			for c3 := 1; c3 <= 5; c3++ {
				for c4 := 1; c4 <= 5; c4++ {
					ns := []color.Color{color.Color(c1), color.Color(c2), color.Color(c3), color.Color(c4)}
					for cur := 1; cur <= 5; cur++ {
						got := gen.Next(color.Color(cur), ns)
						want := mapReferenceNext(color.Color(cur), ns)
						if got != want {
							t.Fatalf("Next(%d, %v) = %v, want %v", cur, ns, got, want)
						}
					}
				}
			}
		}
	}
}

func TestGeneralizedSMPMatchesMapReferenceArbitraryDegree(t *testing.T) {
	// Random neighborhoods of degree 0..12 over up to 8 colors: exercises
	// both the Counts fast path and the wide fallback (more than four
	// distinct colors cannot fit a Counts vector).
	gen := GeneralizedSMP{}
	src := rng.New(7)
	sawWide := false
	for trial := 0; trial < 20000; trial++ {
		d := src.Intn(13)
		ns := make([]color.Color, d)
		distinct := map[color.Color]bool{}
		for i := range ns {
			ns[i] = color.Color(1 + src.Intn(8))
			distinct[ns[i]] = true
		}
		if len(distinct) > 4 {
			sawWide = true
		}
		cur := color.Color(1 + src.Intn(8))
		if got, want := gen.Next(cur, ns), mapReferenceNext(cur, ns); got != want {
			t.Fatalf("Next(%d, %v) = %v, want %v", cur, ns, got, want)
		}
	}
	if !sawWide {
		t.Fatal("test never exercised the wide fallback; widen the sampling")
	}
}

func TestGeneralizedSMPNextFromCountsAgreesWithNext(t *testing.T) {
	// The CountRule contract on multisets that fit a Counts vector: the
	// engine's counts path and the slice path must agree.
	gen := GeneralizedSMP{}
	src := rng.New(11)
	for trial := 0; trial < 20000; trial++ {
		d := src.Intn(10)
		ns := make([]color.Color, d)
		for i := range ns {
			ns[i] = color.Color(1 + src.Intn(4)) // at most 4 distinct: always fits
		}
		cur := color.Color(1 + src.Intn(5))
		if got, want := gen.NextFromCounts(cur, CountsOf(ns)), gen.Next(cur, ns); got != want {
			t.Fatalf("NextFromCounts(%d, %v) = %v, Next = %v", cur, ns, got, want)
		}
	}
}

func TestCountsAddOK(t *testing.T) {
	var cs Counts
	for _, c := range []color.Color{1, 2, 3, 4} {
		if !cs.AddOK(c) {
			t.Fatalf("color %v should fit", c)
		}
	}
	if cs.AddOK(5) {
		t.Fatal("a fifth distinct color must overflow")
	}
	// Repeats of recorded colors keep fitting...
	var rep Counts
	for i := 0; i < 255; i++ {
		if !rep.AddOK(1) {
			t.Fatalf("repeat %d should fit", i)
		}
	}
	// ...until the uint8 multiplicity saturates.
	if rep.AddOK(1) {
		t.Fatal("the 256th repeat must overflow the counter")
	}
	if rep.Total() != 255 {
		t.Fatalf("Total = %d, want 255", rep.Total())
	}
}

func TestCountsTotal(t *testing.T) {
	cs := CountsOf([]color.Color{1, 1, 2, 3})
	if cs.Total() != 4 {
		t.Fatalf("Total = %d, want 4", cs.Total())
	}
	var empty Counts
	if empty.Total() != 0 {
		t.Fatal("empty Total should be 0")
	}
}
