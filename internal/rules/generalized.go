package rules

import "repro/internal/color"

// GeneralizedSMP extends the paper's SMP-Protocol to vertices of arbitrary
// degree d: a vertex adopts a color when that color is held by at least
// ⌈d/2⌉ of its neighbors and is the unique color attaining the maximum
// multiplicity; otherwise it keeps its current color.  On 4-regular graphs
// this coincides with the torus SMP rule for the 4+0, 3+1 and 2+1+1 patterns
// and keeps the current color on 2+2 ties, matching Algorithm 1 (pinned
// exhaustively by tests in internal/graphs).
type GeneralizedSMP struct{}

// Name returns "generalized-smp".
func (GeneralizedSMP) Name() string { return "generalized-smp" }

// Next applies the rule to a neighborhood of arbitrary size.  It tallies
// into a fixed-size Counts vector — no per-vertex map, so the engine's
// steady-state loops stay allocation-free — and falls back to an exact
// quadratic scan for the rare neighborhood that does not fit (more than
// four distinct colors).
func (g GeneralizedSMP) Next(current color.Color, neighbors []color.Color) color.Color {
	if len(neighbors) == 0 {
		return current
	}
	var cs Counts
	for _, c := range neighbors {
		if !cs.AddOK(c) {
			return g.nextWide(current, neighbors)
		}
	}
	return g.NextFromCounts(current, cs)
}

// nextWide is the exact fallback for neighborhoods with more than four
// distinct colors (or 256+ copies of one color): an O(d²) scan that finds
// the unique maximum-multiplicity color without allocating.
func (GeneralizedSMP) nextWide(current color.Color, neighbors []color.Color) color.Color {
	best, bestCount, unique := color.None, 0, false
	for i, c := range neighbors {
		seen := false
		for j := 0; j < i; j++ {
			if neighbors[j] == c {
				seen = true
				break
			}
		}
		if seen {
			continue
		}
		n := 1
		for j := i + 1; j < len(neighbors); j++ {
			if neighbors[j] == c {
				n++
			}
		}
		switch {
		case n > bestCount:
			best, bestCount, unique = c, n, true
		case n == bestCount:
			unique = false
		}
	}
	need := (len(neighbors) + 1) / 2
	if unique && bestCount >= need {
		return best
	}
	return current
}

// NextFromCounts applies the generalized SMP rule to one tallied
// neighborhood: adopt the unique maximum-multiplicity color when it covers
// at least ⌈d/2⌉ of the d neighbors.  Unlike the torus rules it reads the
// degree from the tally itself (Counts.Total), so the same decision function
// serves every vertex of an irregular graph.
func (GeneralizedSMP) NextFromCounts(current color.Color, cs Counts) color.Color {
	d := cs.Total()
	if d == 0 {
		return current
	}
	best, count, unique := cs.Max()
	if unique && count >= (d+1)/2 {
		return best
	}
	return current
}
