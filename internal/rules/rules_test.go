package rules

import (
	"testing"
	"testing/quick"

	"repro/internal/color"
	"repro/internal/rng"
)

func nb(cs ...int) []color.Color {
	out := make([]color.Color, len(cs))
	for i, c := range cs {
		out[i] = color.Color(c)
	}
	return out
}

func TestSMPAllCases(t *testing.T) {
	cases := []struct {
		name      string
		current   int
		neighbors []int
		want      int
	}{
		{"all four same", 5, []int{2, 2, 2, 2}, 2},
		{"three against one", 5, []int{2, 2, 2, 3}, 2},
		{"pair plus two distinct", 5, []int{2, 2, 3, 4}, 2},
		{"pair plus two distinct, pair scattered", 5, []int{3, 2, 4, 2}, 2},
		{"two-two tie keeps current", 5, []int{2, 2, 3, 3}, 5},
		{"two-two tie involving own color keeps current", 2, []int{2, 2, 3, 3}, 2},
		{"four distinct keeps current", 5, []int{1, 2, 3, 4}, 5},
		{"pair of own color recolors to own color (no-op)", 2, []int{2, 2, 3, 4}, 2},
		{"three of own color", 2, []int{2, 2, 2, 7}, 2},
	}
	rule := SMP{}
	for _, tc := range cases {
		got := rule.Next(color.Color(tc.current), nb(tc.neighbors...))
		if got != color.Color(tc.want) {
			t.Errorf("%s: Next(%d, %v) = %v, want %v", tc.name, tc.current, tc.neighbors, got, tc.want)
		}
	}
}

func TestSMPIsPermutationInvariant(t *testing.T) {
	// The rule is defined on the multiset of neighbor colors, so any
	// permutation of the neighbor slice must give the same result.
	f := func(seed uint64, cur uint8) bool {
		src := rng.New(seed)
		current := color.Color(1 + int(cur)%5)
		ns := make([]color.Color, 4)
		for i := range ns {
			ns[i] = color.Color(1 + src.Intn(5))
		}
		want := SMP{}.Next(current, ns)
		for trial := 0; trial < 10; trial++ {
			perm := src.Perm(4)
			shuffled := make([]color.Color, 4)
			for i, p := range perm {
				shuffled[i] = ns[p]
			}
			if (SMP{}).Next(current, shuffled) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSMPMatchesLiteralDefinition(t *testing.T) {
	// Brute-force the literal quantified form of Algorithm 1: there exist
	// labels a,b,c,d of the four ports such that r(a)=r(b) and r(c)!=r(d),
	// or all four are equal; in that case the new color is r(a).
	literal := func(current color.Color, ns []color.Color) color.Color {
		n := len(ns)
		allEqual := true
		for _, v := range ns {
			if v != ns[0] {
				allEqual = false
			}
		}
		if allEqual {
			return ns[0]
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if b == a || ns[a] != ns[b] {
					continue
				}
				// remaining two ports
				var rest []color.Color
				for i := 0; i < n; i++ {
					if i != a && i != b {
						rest = append(rest, ns[i])
					}
				}
				if rest[0] != rest[1] {
					return ns[a]
				}
			}
		}
		return current
	}
	// Note: the literal form can be ambiguous when two different colors each
	// form a pair while the other two ports differ — that cannot happen with
	// four ports (two pairs means the other two ports are the second pair,
	// which are equal), so the quantified form is well defined and must agree
	// with the multiset implementation on every neighborhood.
	for c1 := 1; c1 <= 4; c1++ {
		for c2 := 1; c2 <= 4; c2++ {
			for c3 := 1; c3 <= 4; c3++ {
				for c4 := 1; c4 <= 4; c4++ {
					for cur := 1; cur <= 4; cur++ {
						ns := nb(c1, c2, c3, c4)
						want := literal(color.Color(cur), ns)
						got := SMP{}.Next(color.Color(cur), ns)
						if got != want {
							t.Fatalf("SMP(%d, %v) = %v, literal definition gives %v", cur, ns, got, want)
						}
					}
				}
			}
		}
	}
}

func TestRecolorsTo(t *testing.T) {
	if c, ok := RecolorsTo(5, nb(2, 2, 3, 4)); !ok || c != 2 {
		t.Errorf("RecolorsTo = %v,%v", c, ok)
	}
	if _, ok := RecolorsTo(5, nb(2, 2, 3, 3)); ok {
		t.Error("2-2 tie should not recolor")
	}
	if _, ok := RecolorsTo(2, nb(2, 2, 3, 4)); ok {
		t.Error("recoloring to the current color should not count as a change")
	}
}

func TestSimpleMajorityPB(t *testing.T) {
	rule := SimpleMajorityPB{Black: 2}
	cases := []struct {
		current   int
		neighbors []int
		want      int
	}{
		{1, []int{2, 2, 1, 1}, 2}, // tie resolves to black
		{2, []int{1, 1, 2, 2}, 2},
		{2, []int{1, 1, 1, 2}, 1}, // black vertex reverts on white majority
		{1, []int{1, 1, 1, 2}, 1},
		{1, []int{2, 2, 2, 2}, 2},
		{2, []int{1, 1, 1, 1}, 1},
	}
	for _, tc := range cases {
		got := rule.Next(color.Color(tc.current), nb(tc.neighbors...))
		if got != color.Color(tc.want) {
			t.Errorf("PB Next(%d, %v) = %v, want %v", tc.current, tc.neighbors, got, tc.want)
		}
	}
}

func TestSimpleMajorityPC(t *testing.T) {
	rule := SimpleMajorityPC{}
	cases := []struct {
		current   int
		neighbors []int
		want      int
	}{
		{1, []int{2, 2, 1, 1}, 1}, // tie keeps current
		{2, []int{1, 1, 2, 2}, 2},
		{1, []int{2, 2, 2, 1}, 2},
		{2, []int{1, 1, 1, 2}, 1},
		{1, []int{2, 2, 2, 2}, 2},
	}
	for _, tc := range cases {
		got := rule.Next(color.Color(tc.current), nb(tc.neighbors...))
		if got != color.Color(tc.want) {
			t.Errorf("PC Next(%d, %v) = %v, want %v", tc.current, tc.neighbors, got, tc.want)
		}
	}
}

func TestSMPDiffersFromPBOnTies(t *testing.T) {
	// The paper's Remark: with two black and two white neighbors, [15]'s
	// Prefer-Black rule recolors black whereas SMP keeps the current color.
	ns := nb(2, 2, 1, 1)
	if got := (SimpleMajorityPB{Black: 2}).Next(1, ns); got != 2 {
		t.Fatalf("PB should recolor to black on a tie, got %v", got)
	}
	if got := (SMP{}).Next(1, ns); got != 1 {
		t.Fatalf("SMP should keep the current color on a tie, got %v", got)
	}
}

func TestStrongMajority(t *testing.T) {
	rule := StrongMajority{}
	cases := []struct {
		current   int
		neighbors []int
		want      int
	}{
		{1, []int{2, 2, 2, 1}, 2},
		{1, []int{2, 2, 1, 1}, 1},
		{1, []int{2, 2, 3, 4}, 1},
		{3, []int{2, 2, 2, 2}, 2},
		{1, []int{1, 2, 3, 4}, 1},
	}
	for _, tc := range cases {
		got := rule.Next(color.Color(tc.current), nb(tc.neighbors...))
		if got != color.Color(tc.want) {
			t.Errorf("strong Next(%d, %v) = %v, want %v", tc.current, tc.neighbors, got, tc.want)
		}
	}
}

func TestStrongMajorityIsMoreRestrictiveThanSMP(t *testing.T) {
	// Proposition 2's item (b): whenever the strong majority rule recolors a
	// vertex, the SMP rule recolors it too (to the same color).  Exhaustive
	// over all 4-color neighborhoods.
	for c1 := 1; c1 <= 4; c1++ {
		for c2 := 1; c2 <= 4; c2++ {
			for c3 := 1; c3 <= 4; c3++ {
				for c4 := 1; c4 <= 4; c4++ {
					for cur := 1; cur <= 4; cur++ {
						ns := nb(c1, c2, c3, c4)
						strong := StrongMajority{}.Next(color.Color(cur), ns)
						if strong == color.Color(cur) {
							continue
						}
						smp := SMP{}.Next(color.Color(cur), ns)
						if smp != strong {
							t.Fatalf("strong majority recolors %d->%v on %v but SMP gives %v", cur, strong, ns, smp)
						}
					}
				}
			}
		}
	}
}

func TestThreshold(t *testing.T) {
	rule := Threshold{Target: 2, Theta: 2}
	if got := rule.Next(1, nb(2, 2, 1, 1)); got != 2 {
		t.Errorf("threshold activation failed: %v", got)
	}
	if got := rule.Next(1, nb(2, 1, 1, 1)); got != 1 {
		t.Errorf("below-threshold vertex should stay: %v", got)
	}
	// Irreversibility: an active vertex never reverts.
	if got := rule.Next(2, nb(1, 1, 1, 1)); got != 2 {
		t.Errorf("threshold rule must be irreversible: %v", got)
	}
	strict := Threshold{Target: 2, Theta: 3}
	if got := strict.Next(1, nb(2, 2, 1, 1)); got != 1 {
		t.Errorf("theta=3 should not activate with 2 active neighbors: %v", got)
	}
}

func TestIncrement(t *testing.T) {
	rule := Increment{K: 4}
	// Persuaded by a pair of a higher color: increments by one, does not copy.
	if got := rule.Next(1, nb(3, 3, 2, 4)); got != 2 {
		t.Errorf("increment should move 1 -> 2, got %v", got)
	}
	// Not persuaded by lower colors.
	if got := rule.Next(3, nb(1, 1, 2, 4)); got != 3 {
		t.Errorf("lower-color pair should not persuade, got %v", got)
	}
	// Ties do not persuade.
	if got := rule.Next(1, nb(2, 2, 3, 3)); got != 1 {
		t.Errorf("tie should not persuade, got %v", got)
	}
	// Saturation at K.
	if got := rule.Next(4, nb(9, 9, 9, 9)); got != 4 {
		t.Errorf("increment must saturate at K, got %v", got)
	}
	if got := (Increment{K: 4}).Next(3, nb(4, 4, 4, 4)); got != 4 {
		t.Errorf("increment below K should move up, got %v", got)
	}
}

func TestIrreversibleSMP(t *testing.T) {
	rule := IrreversibleSMP{Target: 1}
	// Adopts the target exactly when SMP would.
	if got := rule.Next(3, nb(1, 1, 2, 4)); got != 1 {
		t.Errorf("should adopt the target on a qualifying pair, got %v", got)
	}
	// Never adopts a non-target color even when SMP would.
	if got := rule.Next(3, nb(2, 2, 1, 4)); got != 3 {
		t.Errorf("must not adopt non-target colors, got %v", got)
	}
	// Never leaves the target.
	if got := rule.Next(1, nb(2, 2, 2, 2)); got != 1 {
		t.Errorf("must never leave the target, got %v", got)
	}
	// Ties still keep the current color.
	if got := rule.Next(3, nb(1, 1, 2, 2)); got != 3 {
		t.Errorf("ties keep the current color, got %v", got)
	}
	if rule.Name() != "irreversible-smp" {
		t.Error("name wrong")
	}
}

func TestIrreversibleSMPDominatedBySMPTrajectory(t *testing.T) {
	// On every neighborhood, if the irreversible rule adopts the target then
	// so does plain SMP (the irreversible rule only removes transitions).
	for c1 := 1; c1 <= 4; c1++ {
		for c2 := 1; c2 <= 4; c2++ {
			for c3 := 1; c3 <= 4; c3++ {
				for c4 := 1; c4 <= 4; c4++ {
					for cur := 2; cur <= 4; cur++ {
						ns := nb(c1, c2, c3, c4)
						irr := (IrreversibleSMP{Target: 1}).Next(color.Color(cur), ns)
						if irr == 1 && (SMP{}).Next(color.Color(cur), ns) != 1 {
							t.Fatalf("irreversible rule adopted the target on %v where SMP would not", ns)
						}
					}
				}
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		r, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if r.Name() == "" {
			t.Errorf("rule %q has empty Name", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown rule name")
	}
	// Aliases.
	if r, err := ByName("pb"); err != nil || r.Name() != "simple-majority-pb" {
		t.Errorf("alias pb broken: %v %v", r, err)
	}
	if r, err := ByName("pc"); err != nil || r.Name() != "simple-majority-pc" {
		t.Errorf("alias pc broken: %v %v", r, err)
	}
}

func TestRuleNames(t *testing.T) {
	names := map[string]Rule{
		"smp":                SMP{},
		"simple-majority-pb": SimpleMajorityPB{Black: 1},
		"simple-majority-pc": SimpleMajorityPC{},
		"strong-majority":    StrongMajority{},
		"threshold":          Threshold{Target: 1, Theta: 2},
		"increment":          Increment{K: 3},
	}
	for want, rule := range names {
		if rule.Name() != want {
			t.Errorf("Name() = %q, want %q", rule.Name(), want)
		}
	}
}

func TestTallyHandlesManyColors(t *testing.T) {
	// Degenerate call with more than 8 distinct colors must not panic even
	// though torus neighborhoods never produce it.
	ns := make([]color.Color, 12)
	for i := range ns {
		ns[i] = color.Color(i + 1)
	}
	cs := tally(ns)
	if cs.distinct() != 8 {
		t.Errorf("tally capped at %d distinct colors", cs.distinct())
	}
	if got := (SMP{}).Next(1, ns); got != 1 {
		t.Errorf("SMP on 12 distinct colors should keep current, got %v", got)
	}
}

func TestCountsMaxUniqueness(t *testing.T) {
	cs := tally(nb(1, 1, 2, 2))
	if _, _, unique := cs.max(); unique {
		t.Error("2-2 tally should not report a unique maximum")
	}
	cs = tally(nb(1, 1, 2, 3))
	best, count, unique := cs.max()
	if best != 1 || count != 2 || !unique {
		t.Errorf("2-1-1 tally wrong: %v %v %v", best, count, unique)
	}
	if cs.of(2) != 1 || cs.of(9) != 0 {
		t.Error("counts.of wrong")
	}
}
