package rules

import (
	"fmt"
	"sort"
	"sync"
)

// Factory builds a fresh Rule value with that rule's default parameters.
type Factory func() Rule

// registry maps rule names (including aliases) to factories.  Guarded by a
// mutex because the public dynmon package lets callers register rules at
// runtime, possibly from init functions of several packages.
var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register makes a rule available to ByName under the given name.  It is
// how external callers plug new rules into the simulation tools without
// forking the repository.  Registering an empty name, a nil factory or a
// name that is already taken panics: collisions are programmer errors and
// surfacing them at init time beats silently shadowing a rule.
func Register(name string, factory Factory) {
	if name == "" {
		panic("rules: Register with empty name")
	}
	if factory == nil {
		panic(fmt.Sprintf("rules: Register(%q) with nil factory", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("rules: Register(%q) called twice", name))
	}
	registry[name] = factory
}

// ByName returns a fresh instance of the rule registered under the given
// name, using the default parameters documented on each constructor.  It is
// used by the command-line tools and the dynmon façade.
func ByName(name string) (Rule, error) {
	registryMu.RLock()
	factory, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("rules: unknown rule %q", name)
	}
	return factory(), nil
}

// Names lists the canonical rule names shipped with the repository, in the
// order they appear in the paper's experiments.  RegisteredNames lists
// everything, including aliases and externally registered rules.
func Names() []string {
	return []string{"smp", "generalized-smp", "simple-majority-pb", "simple-majority-pc", "strong-majority", "increment", "irreversible-smp"}
}

// RegisteredNames returns every name ByName accepts, sorted, including
// aliases and rules registered by external callers.
func RegisteredNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("smp", func() Rule { return SMP{} })
	Register("simple-majority-pb", func() Rule { return SimpleMajorityPB{Black: 2} })
	Register("pb", func() Rule { return SimpleMajorityPB{Black: 2} })
	Register("simple-majority-pc", func() Rule { return SimpleMajorityPC{} })
	Register("pc", func() Rule { return SimpleMajorityPC{} })
	Register("strong-majority", func() Rule { return StrongMajority{} })
	Register("increment", func() Rule { return Increment{K: 4} })
	Register("irreversible-smp", func() Rule { return IrreversibleSMP{Target: 1} })
	// The degree-aware extension of the SMP-Protocol; on 4-regular
	// substrates it is bit-identical to "smp" (pinned by differential
	// tests), and it is the default rule of general-graph systems.
	Register("generalized-smp", func() Rule { return GeneralizedSMP{} })
	// The irreversible linear-threshold baseline was previously only
	// constructible as a struct literal; registering it makes it reachable
	// from the command-line tools and the dynmon façade too.
	Register("threshold", func() Rule { return Threshold{Target: 1, Theta: 2} })
	// Explicit-θ variants so spec files and the ensemble "threshold" sweep
	// axis can select the activation threshold by name.
	Register("threshold-1", func() Rule { return Threshold{Target: 1, Theta: 1} })
	Register("threshold-2", func() Rule { return Threshold{Target: 1, Theta: 2} })
	Register("threshold-3", func() Rule { return Threshold{Target: 1, Theta: 3} })
	Register("threshold-4", func() Rule { return Threshold{Target: 1, Theta: 4} })
}
