package rules

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/color"
)

// legacyByName is the pre-registry lookup table, kept verbatim so the
// parity tests below can assert that the registry resolves every historical
// name to an identical implementation (no behavior drift during the dynmon
// API redesign).
func legacyByName(name string) (Rule, error) {
	switch name {
	case "smp":
		return SMP{}, nil
	case "simple-majority-pb", "pb":
		return SimpleMajorityPB{Black: 2}, nil
	case "simple-majority-pc", "pc":
		return SimpleMajorityPC{}, nil
	case "strong-majority":
		return StrongMajority{}, nil
	case "increment":
		return Increment{K: 4}, nil
	case "irreversible-smp":
		return IrreversibleSMP{Target: 1}, nil
	default:
		return nil, fmt.Errorf("rules: unknown rule %q", name)
	}
}

// TestRegistryLegacyParity asserts the registry returns implementations
// identical to the pre-registry switch for every legacy name and alias.
func TestRegistryLegacyParity(t *testing.T) {
	legacyNames := []string{
		"smp",
		"simple-majority-pb", "pb",
		"simple-majority-pc", "pc",
		"strong-majority",
		"increment",
		"irreversible-smp",
	}
	for _, name := range legacyNames {
		t.Run(name, func(t *testing.T) {
			want, err := legacyByName(name)
			if err != nil {
				t.Fatalf("legacy table: %v", err)
			}
			got, err := ByName(name)
			if err != nil {
				t.Fatalf("ByName(%q): %v", name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("ByName(%q) = %#v, legacy = %#v", name, got, want)
			}
			if got.Name() != want.Name() {
				t.Fatalf("Name() drift: %q vs %q", got.Name(), want.Name())
			}
			// Behavioral spot check on every 4-neighbor multiset over a
			// 3-color palette.
			colors := []color.Color{1, 2, 3}
			for _, cur := range colors {
				for _, a := range colors {
					for _, b := range colors {
						for _, c := range colors {
							for _, d := range colors {
								ns := []color.Color{a, b, c, d}
								if g, w := got.Next(cur, ns), want.Next(cur, ns); g != w {
									t.Fatalf("Next(%v, %v) = %v, legacy %v", cur, ns, g, w)
								}
							}
						}
					}
				}
			}
		})
	}
	if _, err := ByName("no-such-rule"); err == nil {
		t.Error("unknown names must still be rejected")
	}
}

// registerOnce is Register tolerating re-registration, so tests stay
// idempotent when the binary reruns them in one process (go test -count=N).
func registerOnce(name string, factory Factory) {
	if _, err := ByName(name); err != nil {
		Register(name, factory)
	}
}

// TestRegisterCustomRule exercises the extension point the registry exists
// for: a rule registered at runtime is resolvable by name.
func TestRegisterCustomRule(t *testing.T) {
	registerOnce("test-constant", func() Rule { return constantRule{C: 3} })
	r, err := ByName("test-constant")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Next(1, []color.Color{2, 2, 2, 2}); got != 3 {
		t.Errorf("custom rule Next = %v, want 3", got)
	}
	found := false
	for _, name := range RegisteredNames() {
		if name == "test-constant" {
			found = true
		}
	}
	if !found {
		t.Error("RegisteredNames should include the custom rule")
	}
}

func TestRegisterRejectsDuplicatesAndNil(t *testing.T) {
	mustPanic := func(name string, f Factory) {
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%q) should panic", name)
			}
		}()
		Register(name, f)
	}
	mustPanic("smp", func() Rule { return SMP{} }) // duplicate
	mustPanic("", func() Rule { return SMP{} })    // empty name
	mustPanic("nil-factory", nil)                  // nil factory
}

// constantRule always moves to color C; it exists only for registry tests.
type constantRule struct{ C color.Color }

func (r constantRule) Name() string { return "test-constant" }
func (r constantRule) Next(current color.Color, neighbors []color.Color) color.Color {
	return r.C
}
