package rules

import (
	"testing"

	"repro/internal/color"
)

// bitRuleFixtures enumerates every shipped BitRule under parameter values
// that exercise all kernel shapes: representable and unrepresentable black /
// target colors, every threshold, and the degenerate identity cases.
func bitRuleFixtures() []BitRule {
	out := []BitRule{
		SMP{},
		SimpleMajorityPC{},
		StrongMajority{},
	}
	for black := color.Color(1); black <= 5; black++ {
		out = append(out, SimpleMajorityPB{Black: black})
	}
	for target := color.Color(1); target <= 5; target++ {
		out = append(out, IrreversibleSMP{Target: target})
		for theta := 1; theta <= 5; theta++ {
			out = append(out, Threshold{Target: target, Theta: theta})
		}
	}
	return out
}

// TestBitKernelExhaustive is the oracle of the word-parallel kernels: for
// every shipped BitRule and every palette size the bitplane tier supports,
// it packs EVERY neighborhood (current color × four ordered neighbor ports
// over {1..k}) into word lanes, runs the kernel once, and requires the
// unpacked decisions to match Rule.Next lane for lane.  k^5 ≤ 1024 lanes,
// so the enumeration is complete, covers partial tail words, and pins the
// carry-save networks bit-exactly.
func TestBitKernelExhaustive(t *testing.T) {
	for _, rule := range bitRuleFixtures() {
		for k := 1; k <= color.MaxPlaneColors; k++ {
			kern, ok := rule.BitKernel(k)
			if !ok {
				// Only the contract-violating shapes may lack a kernel
				// (a threshold that would mint an absent color).
				if th, isTh := rule.(Threshold); isTh && th.Theta <= 0 {
					continue
				}
				t.Fatalf("%s: no kernel for k=%d", rule.Name(), k)
			}
			planes, _ := color.PlanesFor(k)

			// Enumerate all k^5 neighborhoods as lanes.
			var cur []color.Color
			var nbr [BitPorts][]color.Color
			var enumerate func(depth int, colors [5]color.Color)
			enumerate = func(depth int, colors [5]color.Color) {
				if depth == 5 {
					cur = append(cur, colors[0])
					for p := 0; p < BitPorts; p++ {
						nbr[p] = append(nbr[p], colors[1+p])
					}
					return
				}
				for c := 1; c <= k; c++ {
					colors[depth] = color.Color(c)
					enumerate(depth+1, colors)
				}
			}
			enumerate(0, [5]color.Color{})

			lanes := len(cur)
			words := color.PlaneWords(lanes)
			var st BitState
			st.Planes = planes
			pack := func(cells []color.Color) [MaxBitPlanes][]uint64 {
				var out [MaxBitPlanes][]uint64
				dst := make([][]uint64, planes)
				for b := 0; b < planes; b++ {
					out[b] = make([]uint64, words)
					dst[b] = out[b]
				}
				if !color.PackPlanes(cells, dst) {
					t.Fatalf("%s k=%d: pack failed", rule.Name(), k)
				}
				return out
			}
			st.Cur = pack(cur)
			for p := 0; p < BitPorts; p++ {
				st.Nbr[p] = pack(nbr[p])
			}
			for b := 0; b < planes; b++ {
				st.Next[b] = make([]uint64, words)
			}

			kern.StepWords(&st, 0, words)

			got := make([]color.Color, lanes)
			color.UnpackPlanes(st.Next[:planes], got)
			scratch := make([]color.Color, BitPorts)
			for i := 0; i < lanes; i++ {
				for p := 0; p < BitPorts; p++ {
					scratch[p] = nbr[p][i]
				}
				want := rule.Next(cur[i], scratch)
				if got[i] != want {
					t.Fatalf("%s k=%d: cur=%v nbrs=%v: kernel says %v, Next says %v",
						rule.Name(), k, cur[i], scratch, got[i], want)
				}
			}
		}
	}
}

// TestBitKernelRefusedBeyondFourColors: no kernel may claim palettes the
// two-plane encoding cannot represent.
func TestBitKernelRefusedBeyondFourColors(t *testing.T) {
	for _, rule := range bitRuleFixtures() {
		if _, ok := rule.BitKernel(5); ok {
			t.Errorf("%s: accepted k=5", rule.Name())
		}
		if _, ok := rule.BitKernel(0); ok {
			t.Errorf("%s: accepted k=0", rule.Name())
		}
	}
}

// TestBitKernelStripesAreIndependent runs a kernel split at an arbitrary
// word boundary and requires the same output as one full-range call — the
// property the engine relies on to stripe a step across workers.
func TestBitKernelStripesAreIndependent(t *testing.T) {
	rule := SMP{}
	k := 4
	kern, _ := rule.BitKernel(k)
	planes, _ := color.PlanesFor(k)
	lanes := 64*3 + 17
	words := color.PlaneWords(lanes)

	cells := make([]color.Color, lanes)
	for i := range cells {
		cells[i] = color.Color(i%k + 1)
	}
	var st BitState
	st.Planes = planes
	fill := func(rot int) [MaxBitPlanes][]uint64 {
		rotated := make([]color.Color, lanes)
		for i := range cells {
			rotated[i] = cells[(i+rot)%lanes]
		}
		var out [MaxBitPlanes][]uint64
		dst := make([][]uint64, planes)
		for b := 0; b < planes; b++ {
			out[b] = make([]uint64, words)
			dst[b] = out[b]
		}
		color.PackPlanes(rotated, dst)
		return out
	}
	st.Cur = fill(0)
	for p := 0; p < BitPorts; p++ {
		st.Nbr[p] = fill(p + 1)
	}
	whole := make([][]uint64, planes)
	split := make([][]uint64, planes)
	for b := 0; b < planes; b++ {
		whole[b] = make([]uint64, words)
		split[b] = make([]uint64, words)
	}
	for b := 0; b < planes; b++ {
		st.Next[b] = whole[b]
	}
	kern.StepWords(&st, 0, words)
	for b := 0; b < planes; b++ {
		st.Next[b] = split[b]
	}
	kern.StepWords(&st, 2, words)
	kern.StepWords(&st, 0, 2)
	for b := 0; b < planes; b++ {
		for w := 0; w < words; w++ {
			if whole[b][w] != split[b][w] {
				t.Fatalf("plane %d word %d differs between whole and split kernel runs", b, w)
			}
		}
	}
}
