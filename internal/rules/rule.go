// Package rules implements the local recoloring rules studied or referenced
// by the paper:
//
//   - the SMP-Protocol ("simple majority with persuadable entities"), the
//     paper's own rule (Algorithm 1);
//   - the reverse simple majority rule of Flocchini et al. [15] with the
//     Prefer-Black and Prefer-Current tie policies of Peleg [26];
//   - the reverse strong majority rule of [15];
//   - the irreversible linear-threshold rule of the target set selection
//     literature (Kempe/Kleinberg/Tardos style), used as a baseline;
//   - the ordered-color increment rule sketched in [4], [5].
//
// A rule is a pure function of the vertex's current color and the multiset
// of its neighbors' colors; the simulation engine applies it synchronously
// to every vertex.
package rules

import (
	"repro/internal/color"
)

// Rule is a local, deterministic recoloring rule.
//
// Next must not retain or mutate the neighbors slice: the engine reuses a
// single scratch buffer per worker.  Implementations must be stateless (or
// at least safe for concurrent use) because the parallel engine invokes the
// same Rule value from several goroutines.
type Rule interface {
	// Name returns a stable identifier used in experiment tables.
	Name() string
	// Next returns the vertex's color at time t+1 given its color and the
	// colors of its neighbors at time t.
	Next(current color.Color, neighbors []color.Color) color.Color
}

// counts is a small fixed-size multiset of neighbor colors.  Torus vertices
// have exactly four neighbors, so a tiny linear-scan structure beats a map
// by a wide margin in the engine's inner loop.
type counts struct {
	colors [8]color.Color
	count  [8]int
	n      int
}

func (cs *counts) add(c color.Color) {
	for i := 0; i < cs.n; i++ {
		if cs.colors[i] == c {
			cs.count[i]++
			return
		}
	}
	if cs.n < len(cs.colors) {
		cs.colors[cs.n] = c
		cs.count[cs.n] = 1
		cs.n++
	}
}

func tally(neighbors []color.Color) counts {
	var cs counts
	for _, c := range neighbors {
		cs.add(c)
	}
	return cs
}

// max returns the color with the highest multiplicity, that multiplicity,
// and whether the maximum is attained by exactly one color.
func (cs *counts) max() (color.Color, int, bool) {
	best := color.None
	bestCount := 0
	unique := true
	for i := 0; i < cs.n; i++ {
		switch {
		case cs.count[i] > bestCount:
			best, bestCount, unique = cs.colors[i], cs.count[i], true
		case cs.count[i] == bestCount:
			unique = false
		}
	}
	return best, bestCount, unique
}

// of returns the multiplicity of c.
func (cs *counts) of(c color.Color) int {
	for i := 0; i < cs.n; i++ {
		if cs.colors[i] == c {
			return cs.count[i]
		}
	}
	return 0
}

// distinct returns the number of distinct colors present.
func (cs *counts) distinct() int { return cs.n }
