package rules

import "repro/internal/color"

// SimpleMajorityPB is the reverse simple majority rule of Flocchini et al.
// [15] with Peleg's Prefer-Black tie policy: a vertex always takes the color
// of the majority of its four neighbors, and a 2-2 tie involving the
// preferred ("black") color resolves in favor of that color.
//
// The rule is "reverse" in the sense that recoloring is reversible: a black
// vertex surrounded by a white majority becomes white again.  It is defined
// for bi-colored tori; on neighborhoods containing more than two colors it
// degenerates to "adopt the black color iff at least two neighbors are
// black", which is the natural multicolor reading of Prefer-Black and is
// only used by the comparison experiments.
type SimpleMajorityPB struct {
	// Black is the preferred color (the paper's faulty/black color).
	Black color.Color
}

// Name returns "simple-majority-pb".
func (SimpleMajorityPB) Name() string { return "simple-majority-pb" }

// Next applies the rule.
func (r SimpleMajorityPB) Next(current color.Color, neighbors []color.Color) color.Color {
	cs := tally(neighbors)
	black := cs.of(r.Black)
	if black >= 2 {
		return r.Black
	}
	// Fewer than two black neighbors: adopt the majority among the others,
	// falling back to the current color when there is no unique majority.
	best, count, unique := cs.max()
	if unique && count >= 2 {
		return best
	}
	return current
}

// SimpleMajorityPC is the reverse simple majority rule with the
// Prefer-Current tie policy: the vertex adopts a color only when that color
// is carried by a strict majority (at least three of four neighbors);
// otherwise it keeps its current color.  With four neighbors this makes the
// 2-2 tie a no-op, matching the paper's description of Prefer-Current.
type SimpleMajorityPC struct{}

// Name returns "simple-majority-pc".
func (SimpleMajorityPC) Name() string { return "simple-majority-pc" }

// Next applies the rule.
func (SimpleMajorityPC) Next(current color.Color, neighbors []color.Color) color.Color {
	cs := tally(neighbors)
	best, count, unique := cs.max()
	if unique && count >= 3 {
		return best
	}
	return current
}

// StrongMajority is the reverse strong majority rule of [15]: a vertex
// recolors only when at least ⌈(d+1)/2⌉ = 3 of its four neighbors agree on a
// color.  The paper's Proposition 2 uses it to derive (loose) upper bounds
// for the multicolored problem.
type StrongMajority struct{}

// Name returns "strong-majority".
func (StrongMajority) Name() string { return "strong-majority" }

// Next applies the rule.
func (StrongMajority) Next(current color.Color, neighbors []color.Color) color.Color {
	cs := tally(neighbors)
	best, count, unique := cs.max()
	if unique && count >= 3 {
		return best
	}
	return current
}

// Threshold is the irreversible linear-threshold rule of the target set
// selection literature: an inactive vertex activates (adopts Target) once at
// least Theta of its neighbors are active, and active vertices never revert.
// It is the baseline the paper's introduction refers to when discussing TSS
// and viral marketing.
type Threshold struct {
	// Target is the "active" color being spread.
	Target color.Color
	// Theta is the activation threshold (e.g. 2 for simple majority on a
	// torus, 3 for strong majority).
	Theta int
}

// Name returns "threshold".
func (Threshold) Name() string { return "threshold" }

// Next applies the rule.
func (r Threshold) Next(current color.Color, neighbors []color.Color) color.Color {
	if current == r.Target {
		return current
	}
	cs := tally(neighbors)
	if cs.of(r.Target) >= r.Theta {
		return r.Target
	}
	return current
}
