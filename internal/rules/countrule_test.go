package rules

import (
	"testing"

	"repro/internal/color"
)

// TestCountRuleParityExhaustive checks NextFromCounts against Next on every
// four-neighbor multiset over a five-color palette, for every current color,
// for every rule shipped by the package.  This is the oracle that lets the
// engine's inner loop trust the counts fast path unconditionally.
func TestCountRuleParityExhaustive(t *testing.T) {
	const k = 5
	rs := []Rule{
		SMP{},
		SimpleMajorityPB{Black: 2},
		SimpleMajorityPC{},
		StrongMajority{},
		Threshold{Target: 1, Theta: 2},
		Increment{K: k},
		IrreversibleSMP{Target: 1},
	}
	for _, r := range rs {
		cr, ok := r.(CountRule)
		if !ok {
			t.Fatalf("rule %s does not implement CountRule", r.Name())
		}
		checked := 0
		var ns [4]color.Color
		for a := 1; a <= k; a++ {
			for b := 1; b <= k; b++ {
				for c := 1; c <= k; c++ {
					for d := 1; d <= k; d++ {
						ns[0], ns[1], ns[2], ns[3] = color.Color(a), color.Color(b), color.Color(c), color.Color(d)
						cs := CountsOf(ns[:])
						for cur := 1; cur <= k; cur++ {
							want := r.Next(color.Color(cur), ns[:])
							got := cr.NextFromCounts(color.Color(cur), cs)
							if got != want {
								t.Fatalf("%s: neighbors %v current %d: counts path %v, slice path %v",
									r.Name(), ns, cur, got, want)
							}
							checked++
						}
					}
				}
			}
		}
		if checked != k*k*k*k*k {
			t.Fatalf("%s: checked %d combinations, want %d", r.Name(), checked, k*k*k*k*k)
		}
	}
}

// TestEveryRegisteredRuleImplementsCountRule keeps the registry honest: all
// rules shipped by the repository expose the counts fast path, so engine
// runs over registered rules never fall back to the slice path.
func TestEveryRegisteredRuleImplementsCountRule(t *testing.T) {
	for _, name := range RegisteredNames() {
		r, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := r.(CountRule); !ok {
			t.Errorf("registered rule %q does not implement CountRule", name)
		}
	}
}

// TestCountsAccessors pins the tiny multiset's behavior, including the
// duplicate-port neighborhoods of 2×n tori (the same vertex counted twice).
func TestCountsAccessors(t *testing.T) {
	cs := CountsOf([]color.Color{3, 3, 1, 3})
	if got := cs.Of(3); got != 3 {
		t.Errorf("Of(3) = %d, want 3", got)
	}
	if got := cs.Of(1); got != 1 {
		t.Errorf("Of(1) = %d, want 1", got)
	}
	if got := cs.Of(9); got != 0 {
		t.Errorf("Of(9) = %d, want 0", got)
	}
	if got := cs.Distinct(); got != 2 {
		t.Errorf("Distinct() = %d, want 2", got)
	}
	best, count, unique := cs.Max()
	if best != 3 || count != 3 || !unique {
		t.Errorf("Max() = (%v, %d, %v), want (3, 3, true)", best, count, unique)
	}
	tie := CountsOf([]color.Color{1, 1, 2, 2})
	if _, count, unique := tie.Max(); count != 2 || unique {
		t.Errorf("2+2 tie: Max count %d unique %v, want 2 false", count, unique)
	}
}
