package rules

import "repro/internal/color"

// Counts is the fixed-size color-count vector of a torus neighborhood: the
// multiset of the four neighbor colors, kept as parallel (color, count)
// arrays.  Four neighbors can carry at most four distinct colors, so the
// capacity is exactly grid.Degree and Add never overflows in the engine.
//
// Counts is deliberately passed by value through the CountRule interface:
// a pointer argument to an interface method escapes to the heap in Go's
// escape analysis, and the whole point of the type is to keep the engine's
// steady-state inner loop allocation-free.
type Counts struct {
	colors [4]color.Color
	count  [4]uint8
	n      uint8
}

// Add records one neighbor color.  Adding a fifth distinct color is a
// programmer error and is silently ignored (it cannot happen with four
// neighbors).
func (cs *Counts) Add(c color.Color) {
	for i := uint8(0); i < cs.n; i++ {
		if cs.colors[i] == c {
			cs.count[i]++
			return
		}
	}
	if int(cs.n) < len(cs.colors) {
		cs.colors[cs.n] = c
		cs.count[cs.n] = 1
		cs.n++
	}
}

// AddOK records one neighbor color and reports whether the vector still
// represents the multiset exactly.  It returns false — leaving the vector
// useless — when a fifth distinct color arrives or a multiplicity would
// overflow the uint8 counter.  Neither can happen on the degree-4 tori;
// the general-graph stepper uses AddOK to tally arbitrary-degree
// neighborhoods and falls back to the exact slice path for the rare vertex
// whose neighborhood does not fit (more than four distinct colors, or a
// single color repeated 256+ times).
func (cs *Counts) AddOK(c color.Color) bool {
	for i := uint8(0); i < cs.n; i++ {
		if cs.colors[i] == c {
			if cs.count[i] == ^uint8(0) {
				return false
			}
			cs.count[i]++
			return true
		}
	}
	if int(cs.n) == len(cs.colors) {
		return false
	}
	cs.colors[cs.n] = c
	cs.count[cs.n] = 1
	cs.n++
	return true
}

// Total returns the number of neighbor colors recorded, i.e. the degree of
// the tallied vertex.  Degree-aware rules (GeneralizedSMP) derive their
// majority threshold from it; the torus rules ignore it because their
// thresholds hard-code the degree-4 neighborhood.
func (cs *Counts) Total() int {
	total := 0
	for i := uint8(0); i < cs.n; i++ {
		total += int(cs.count[i])
	}
	return total
}

// Max returns the color with the highest multiplicity, that multiplicity,
// and whether the maximum is attained by exactly one color.
func (cs *Counts) Max() (color.Color, int, bool) {
	best := color.None
	bestCount := uint8(0)
	unique := true
	for i := uint8(0); i < cs.n; i++ {
		switch {
		case cs.count[i] > bestCount:
			best, bestCount, unique = cs.colors[i], cs.count[i], true
		case cs.count[i] == bestCount:
			unique = false
		}
	}
	return best, int(bestCount), unique
}

// Of returns the multiplicity of c.
func (cs *Counts) Of(c color.Color) int {
	for i := uint8(0); i < cs.n; i++ {
		if cs.colors[i] == c {
			return int(cs.count[i])
		}
	}
	return 0
}

// Distinct returns the number of distinct colors present.
func (cs *Counts) Distinct() int { return int(cs.n) }

// CountsOf tallies a four-neighbor slice into a Counts vector.  It is the
// bridge used to implement Rule.Next on top of NextFromCounts and by tests
// that compare the two paths.
func CountsOf(neighbors []color.Color) Counts {
	var cs Counts
	for _, c := range neighbors {
		cs.Add(c)
	}
	return cs
}

// CountRule is the counts-based fast path of a Rule: the same decision
// function, but taking the pre-tallied color-count vector of the four
// neighbors instead of the raw neighbor slice.  The simulation engine
// detects the interface once at construction and then drives the inner loop
// through NextFromCounts, so no per-vertex neighbor slice is built and no
// rule re-tallies a multiset the engine already has.
//
// NextFromCounts must agree with Next on every four-neighbor multiset:
// NextFromCounts(c, CountsOf(ns)) == Next(c, ns).  All rules shipped by this
// package implement CountRule; externally registered rules may ignore it and
// the engine falls back to the slice path.
type CountRule interface {
	Rule
	// NextFromCounts returns the vertex's color at time t+1 given its color
	// and the tallied colors of its four neighbors at time t.
	NextFromCounts(current color.Color, cs Counts) color.Color
}

// NextFromCounts applies the SMP-Protocol to one tallied neighborhood.
func (SMP) NextFromCounts(current color.Color, cs Counts) color.Color {
	best, count, unique := cs.Max()
	switch {
	case count >= 3:
		return best
	case count == 2 && unique:
		return best
	default:
		return current
	}
}

// NextFromCounts applies the Prefer-Black reverse simple majority rule to
// one tallied neighborhood.
func (r SimpleMajorityPB) NextFromCounts(current color.Color, cs Counts) color.Color {
	if cs.Of(r.Black) >= 2 {
		return r.Black
	}
	best, count, unique := cs.Max()
	if unique && count >= 2 {
		return best
	}
	return current
}

// NextFromCounts applies the Prefer-Current reverse simple majority rule to
// one tallied neighborhood.
func (SimpleMajorityPC) NextFromCounts(current color.Color, cs Counts) color.Color {
	best, count, unique := cs.Max()
	if unique && count >= 3 {
		return best
	}
	return current
}

// NextFromCounts applies the reverse strong majority rule to one tallied
// neighborhood.
func (StrongMajority) NextFromCounts(current color.Color, cs Counts) color.Color {
	best, count, unique := cs.Max()
	if unique && count >= 3 {
		return best
	}
	return current
}

// NextFromCounts applies the irreversible linear-threshold rule to one
// tallied neighborhood.
func (r Threshold) NextFromCounts(current color.Color, cs Counts) color.Color {
	if current == r.Target {
		return current
	}
	if cs.Of(r.Target) >= r.Theta {
		return r.Target
	}
	return current
}

// NextFromCounts applies the ordered-color increment rule to one tallied
// neighborhood.
func (r Increment) NextFromCounts(current color.Color, cs Counts) color.Color {
	best, count, unique := cs.Max()
	persuaded := (count >= 3 || (count == 2 && unique)) && unique && best > current
	if !persuaded {
		return current
	}
	next := current + 1
	if int(next) > r.K {
		next = color.Color(r.K)
	}
	return next
}

// NextFromCounts applies the monotone restriction of the SMP-Protocol to one
// tallied neighborhood.
func (r IrreversibleSMP) NextFromCounts(current color.Color, cs Counts) color.Color {
	if current == r.Target {
		return current
	}
	if next := (SMP{}).NextFromCounts(current, cs); next == r.Target {
		return next
	}
	return current
}
