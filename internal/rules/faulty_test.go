package rules

import (
	"math"
	"testing"

	"repro/internal/color"
)

func TestFaultyZeroEpsIsInner(t *testing.T) {
	inner := SMP{}
	r := Faulty{Inner: inner, Eps: 0, K: 4, Seed: 9}
	neighbors := []color.Color{1, 1, 2, 3}
	for round := uint64(0); round < 16; round++ {
		for v := uint64(0); v < 64; v++ {
			want := inner.Next(2, neighbors)
			if got := r.NextAt(round, v, 2, neighbors); got != want {
				t.Fatalf("eps=0 NextAt(%d,%d) = %v, want inner %v", round, v, got, want)
			}
		}
	}
}

func TestFaultyFullEpsAlwaysFaults(t *testing.T) {
	r := Faulty{Inner: SMP{}, Eps: 1, K: 4, Seed: 3}
	seen := map[color.Color]bool{}
	for v := uint64(0); v < 1000; v++ {
		c := r.NextFromCountsAt(1, v, 2, CountsOf([]color.Color{1, 1, 1, 1}))
		if c < 1 || c > 4 {
			t.Fatalf("faulted color %v outside palette {1..4}", c)
		}
		seen[c] = true
	}
	for c := color.Color(1); c <= 4; c++ {
		if !seen[c] {
			t.Fatalf("eps=1 never drew color %v", c)
		}
	}
}

func TestFaultyDeterministicAndCoordinateDependent(t *testing.T) {
	r := Faulty{Inner: SMP{}, Eps: 0.5, K: 4, Seed: 17}
	cs := CountsOf([]color.Color{1, 2, 3, 4})
	a := r.NextFromCountsAt(5, 7, 2, cs)
	if b := r.NextFromCountsAt(5, 7, 2, cs); a != b {
		t.Fatal("fault draw is not deterministic for fixed coordinates")
	}
	// Across many coordinates, draws must differ (the fault stream is not
	// constant) while any single coordinate is stable.
	varied := false
	for v := uint64(0); v < 100 && !varied; v++ {
		varied = r.NextFromCountsAt(5, v, 2, cs) != a
	}
	if !varied {
		t.Fatal("fault draw ignores the vertex coordinate")
	}
	other := Faulty{Inner: SMP{}, Eps: 0.5, K: 4, Seed: 18}
	differs := false
	for v := uint64(0); v < 100 && !differs; v++ {
		differs = r.NextFromCountsAt(5, v, 2, cs) != other.NextFromCountsAt(5, v, 2, cs)
	}
	if !differs {
		t.Fatal("fault draw ignores the seed")
	}
}

func TestFaultyRateMatchesEps(t *testing.T) {
	const eps = 0.1
	// Pick a neighborhood where the inner rule's answer (1) has only a 1/K
	// chance of coinciding with a faulted draw, then count deviations.
	r := Faulty{Inner: SMP{}, Eps: eps, K: 4, Seed: 41}
	cs := CountsOf([]color.Color{1, 1, 1, 1})
	const trials = 40000
	faultedAway := 0
	for v := uint64(0); v < trials; v++ {
		if r.NextFromCountsAt(2, v, 2, cs) != 1 {
			faultedAway++
		}
	}
	// A fault lands on a non-inner color 3 out of 4 times, so the observable
	// deviation rate is eps * (K-1)/K = 0.075.
	got := float64(faultedAway) / trials
	if math.Abs(got-eps*3/4) > 0.01 {
		t.Fatalf("observable fault rate %v, want ~%v", got, eps*3/4)
	}
}

func TestFaultyNextDelegatesNoiseFree(t *testing.T) {
	r := Faulty{Inner: SMP{}, Eps: 1, K: 4, Seed: 1}
	neighbors := []color.Color{3, 3, 3, 1}
	if got, want := r.Next(1, neighbors), (SMP{}).Next(1, neighbors); got != want {
		t.Fatalf("Next = %v, want noise-free inner %v", got, want)
	}
	if got, want := r.NextFromCounts(1, CountsOf(neighbors)), (SMP{}).NextFromCounts(1, CountsOf(neighbors)); got != want {
		t.Fatalf("NextFromCounts = %v, want noise-free inner %v", got, want)
	}
	if r.Name() != "faulty-smp" {
		t.Fatalf("Name = %q", r.Name())
	}
}

func TestFaultyCountsAgreesWithSlice(t *testing.T) {
	r := Faulty{Inner: StrongMajority{}, Eps: 0.3, K: 4, Seed: 77}
	neighborhoods := [][]color.Color{
		{1, 1, 1, 1}, {1, 2, 3, 4}, {2, 2, 3, 3}, {4, 4, 4, 1},
	}
	for _, ns := range neighborhoods {
		for v := uint64(0); v < 32; v++ {
			a := r.NextAt(3, v, 2, ns)
			b := r.NextFromCountsAt(3, v, 2, CountsOf(ns))
			if a != b {
				t.Fatalf("NextAt and NextFromCountsAt disagree on %v at v=%d: %v vs %v", ns, v, a, b)
			}
		}
	}
}

func TestFaultyValidate(t *testing.T) {
	good := Faulty{Inner: SMP{}, Eps: 0.1, K: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Faulty{
		{Inner: nil, Eps: 0.1, K: 4},
		{Inner: SMP{}, Eps: -0.1, K: 4},
		{Inner: SMP{}, Eps: 1.1, K: 4},
		{Inner: SMP{}, Eps: 0.1, K: 0},
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Fatalf("case %d: Validate accepted %+v", i, r)
		}
	}
}

func TestThresholdThetaRegistryEntries(t *testing.T) {
	for theta := 1; theta <= 4; theta++ {
		name := map[int]string{1: "threshold-1", 2: "threshold-2", 3: "threshold-3", 4: "threshold-4"}[theta]
		r, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		th, ok := r.(Threshold)
		if !ok {
			t.Fatalf("%s is %T, want Threshold", name, r)
		}
		if th.Theta != theta || th.Target != 1 {
			t.Fatalf("%s = %+v", name, th)
		}
	}
}
