package rules

import (
	"fmt"

	"repro/internal/color"
	"repro/internal/rng"
)

// Fault-draw stream tags: the final Hash coordinate that separates the
// "did this vertex misfire?" draw from the "which color did it take?" draw,
// so the two are statistically independent for the same (round, vertex).
const (
	faultTagDraw  = 1
	faultTagColor = 2
)

// FaultDraw injects an ε-fault into an already-computed next color: with
// probability eps the (round, vertex) application misfires and returns a
// uniformly random color from the palette {1..k} instead of next.  The draw
// is counter-based — a pure function of (seed, round, vertex) via rng.Hash —
// so the same coordinates misfire identically under any worker count,
// kernel tier or checkpoint/resume boundary.  It is the single shared
// definition of the noise model: Faulty wraps it as a rule decorator and the
// engine's stochastic driver calls it directly on top of the counts fast
// path, so the two are identical by construction.
func FaultDraw(seed, round, v uint64, eps float64, k int, next color.Color) color.Color {
	if eps <= 0 || k < 1 {
		return next
	}
	if rng.Unit(rng.Hash(seed, round, v, faultTagDraw)) >= eps {
		return next
	}
	pick := rng.Hash(seed, round, v, faultTagColor)
	return color.Color(1 + pick%uint64(k))
}

// Faulty is the ε-faulty decorator over a CountRule: each application of the
// inner rule independently misfires with probability Eps, replacing the
// computed color with a uniform draw from the palette {1..K}.  It models the
// transient faults of the fault-tolerance literature the paper points at —
// a processor that computes the majority correctly but occasionally writes
// a garbled value.
//
// The Rule/CountRule methods delegate to the inner rule noise-free: they
// receive no (round, vertex) coordinates, and the noise model is defined
// per application, not per neighborhood multiset.  The coordinate-aware
// forms NextAt/NextFromCountsAt inject the fault; the simulation engine
// drives those (via FaultDraw) when a run carries a Noise option.
type Faulty struct {
	// Inner is the noise-free decision rule.
	Inner CountRule
	// Eps is the per-application fault probability in [0, 1].
	Eps float64
	// K is the palette size: faulted applications draw uniformly from {1..K}.
	K int
	// Seed selects the fault stream.  Two runs with the same seed (and spec)
	// misfire at exactly the same (round, vertex) coordinates.
	Seed uint64
}

// Name returns "faulty-<inner>", e.g. "faulty-smp".
func (r Faulty) Name() string { return "faulty-" + r.Inner.Name() }

// Next delegates to the inner rule without noise; see the type comment.
func (r Faulty) Next(current color.Color, neighbors []color.Color) color.Color {
	return r.Inner.Next(current, neighbors)
}

// NextFromCounts delegates to the inner rule without noise.
func (r Faulty) NextFromCounts(current color.Color, cs Counts) color.Color {
	return r.Inner.NextFromCounts(current, cs)
}

// NextAt applies the inner rule and then the ε-fault draw for the given
// (round, vertex) application.
func (r Faulty) NextAt(round, v uint64, current color.Color, neighbors []color.Color) color.Color {
	return FaultDraw(r.Seed, round, v, r.Eps, r.K, r.Inner.Next(current, neighbors))
}

// NextFromCountsAt is the counts fast path of NextAt.
func (r Faulty) NextFromCountsAt(round, v uint64, current color.Color, cs Counts) color.Color {
	return FaultDraw(r.Seed, round, v, r.Eps, r.K, r.Inner.NextFromCounts(current, cs))
}

// Validate reports whether the decorator's parameters are usable.
func (r Faulty) Validate() error {
	if r.Inner == nil {
		return fmt.Errorf("rules: Faulty with nil inner rule")
	}
	if r.Eps < 0 || r.Eps > 1 {
		return fmt.Errorf("rules: Faulty eps %v outside [0, 1]", r.Eps)
	}
	if r.K < 1 {
		return fmt.Errorf("rules: Faulty palette size %d < 1", r.K)
	}
	return nil
}
