package rules

import "repro/internal/color"

// SMP is the paper's "simple majority with persuadable entities" protocol
// (Algorithm 1).  Writing the four neighbors of x as a, b, c, d, the vertex
// recolors to r(a) when
//
//	(r(a) = r(b) ∧ r(c) ≠ r(d))  ∨  (r(a) = r(b) = r(c) = r(d)).
//
// Over all relabelings of the four neighbor ports this is equivalent to:
//
//   - if some color appears on at least three neighbors, adopt it;
//   - if exactly one color appears on exactly two neighbors and the other
//     two neighbors carry two different colors (the 2+1+1 pattern), adopt
//     the pair's color;
//   - otherwise (a 2+2 tie, or four distinct colors) keep the current
//     color.
//
// The 2+2 case is precisely where the paper departs from the Prefer-Black /
// Prefer-Current variants of [15], [26].
type SMP struct{}

// Name returns "smp".
func (SMP) Name() string { return "smp" }

// Next applies the SMP-Protocol to one vertex.
func (SMP) Next(current color.Color, neighbors []color.Color) color.Color {
	cs := tally(neighbors)
	best, count, unique := cs.max()
	switch {
	case count >= 3:
		// Either 4+0 or 3+1: a strict majority color exists; adopt it.
		return best
	case count == 2 && unique:
		// The 2+1+1 pattern: one pair, remaining neighbors mutually
		// different.  (If the maximum 2 were not unique we would be in the
		// 2+2 tie, which keeps the current color.)
		return best
	default:
		return current
	}
}

// RecolorsTo reports whether the SMP rule would recolor a vertex with the
// given neighborhood, and to which color.  It is a convenience for the
// structural analysis in internal/blocks and internal/dynamo.
func RecolorsTo(current color.Color, neighbors []color.Color) (color.Color, bool) {
	next := SMP{}.Next(current, neighbors)
	return next, next != current
}
