// Package opinion implements the Deffuant–Weisbuch bounded-confidence model
// ("Mixing beliefs among interacting agents"), the continuous-opinion
// process the paper's conclusions propose as a comparison point for the
// SMP-Protocol's discrete dynamics.
package opinion

import (
	"fmt"

	"repro/internal/graphs"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Params configures a bounded-confidence simulation.
type Params struct {
	// Epsilon is the confidence bound: two agents interact only when their
	// opinions differ by less than Epsilon.
	Epsilon float64
	// Mu is the convergence parameter in (0, 0.5]: after an interaction both
	// opinions move toward each other by Mu times their difference.
	Mu float64
	// MaxSteps bounds the number of pairwise interactions.
	MaxSteps int
	// ConvergenceEps stops the run when the largest opinion change over a
	// full sweep of interactions falls below this threshold.
	ConvergenceEps float64
}

// DefaultParams returns the parameter set commonly used in the literature
// (epsilon 0.2, mu 0.5).
func DefaultParams() Params {
	return Params{Epsilon: 0.2, Mu: 0.5, MaxSteps: 200000, ConvergenceEps: 1e-4}
}

// Result describes a finished bounded-confidence run.
type Result struct {
	// Steps is the number of pairwise interactions simulated.
	Steps int
	// Opinions is the final opinion vector.
	Opinions []float64
	// Clusters is the number of opinion clusters at the end (opinions closer
	// than Epsilon/2 are grouped together).
	Clusters int
	// Spread is the standard deviation of the final opinions.
	Spread float64
}

// Run simulates the model on the given graph: agents start with opinions
// uniform in [0,1] (drawn from src) and repeatedly a random edge is chosen;
// if the two endpoint opinions are within Epsilon they move toward each
// other by Mu times the difference.
func Run(g *graphs.Graph, p Params, src *rng.Source) (*Result, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("opinion: empty graph")
	}
	if p.Epsilon <= 0 || p.Mu <= 0 || p.Mu > 0.5 {
		return nil, fmt.Errorf("opinion: invalid parameters %+v", p)
	}
	if p.MaxSteps <= 0 {
		p.MaxSteps = 100 * g.N()
	}
	if src == nil {
		src = rng.New(1)
	}
	// Collect the edge list once for uniform edge sampling.
	var edges [][2]int
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if v > u {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("opinion: graph has no edges")
	}

	x := make([]float64, g.N())
	for i := range x {
		x[i] = src.Float64()
	}
	res := &Result{}
	sinceChange := 0
	for step := 1; step <= p.MaxSteps; step++ {
		e := edges[src.Intn(len(edges))]
		u, v := e[0], e[1]
		diff := x[u] - x[v]
		res.Steps = step
		if diff < 0 {
			diff = -diff
		}
		if diff >= p.Epsilon {
			sinceChange++
		} else {
			deltaU := p.Mu * (x[v] - x[u])
			x[u] += deltaU
			x[v] -= deltaU
			if abs(deltaU) < p.ConvergenceEps {
				sinceChange++
			} else {
				sinceChange = 0
			}
		}
		// Stop after a long quiet period: a full sweep's worth of
		// interactions without meaningful movement.
		if sinceChange >= 4*len(edges) {
			break
		}
	}
	res.Opinions = x
	res.Clusters = countClusters(x, p.Epsilon/2)
	res.Spread = stats.Std(x)
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// countClusters groups sorted opinions whose consecutive gaps are below tol
// and returns the number of groups.
func countClusters(opinions []float64, tol float64) int {
	if len(opinions) == 0 {
		return 0
	}
	sorted := append([]float64(nil), opinions...)
	insertionSort(sorted)
	clusters := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i]-sorted[i-1] > tol {
			clusters++
		}
	}
	return clusters
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}
