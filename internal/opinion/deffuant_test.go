package opinion

import (
	"testing"

	"repro/internal/graphs"
	"repro/internal/rng"
)

func TestRunConvergesToClusters(t *testing.T) {
	g, err := graphs.NewErdosRenyi(120, 0.1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, DefaultParams(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Opinions) != 120 {
		t.Fatalf("opinion vector length %d", len(res.Opinions))
	}
	for _, x := range res.Opinions {
		if x < 0 || x > 1 {
			t.Fatalf("opinion %v escaped [0,1]", x)
		}
	}
	if res.Clusters < 1 || res.Clusters > 20 {
		t.Errorf("cluster count %d looks wrong", res.Clusters)
	}
	if res.Steps == 0 {
		t.Error("no interactions simulated")
	}
}

func TestLargeEpsilonYieldsConsensus(t *testing.T) {
	g, _ := graphs.NewErdosRenyi(100, 0.15, rng.New(9))
	p := DefaultParams()
	p.Epsilon = 1.0 // everyone trusts everyone
	p.MaxSteps = 400000
	res, err := Run(g, p, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 1 {
		t.Errorf("full confidence should give a single cluster, got %d (spread %.3f)", res.Clusters, res.Spread)
	}
	if res.Spread > 0.1 {
		t.Errorf("consensus spread too large: %v", res.Spread)
	}
}

func TestSmallEpsilonYieldsFragmentation(t *testing.T) {
	g, _ := graphs.NewErdosRenyi(100, 0.15, rng.New(9))
	p := DefaultParams()
	p.Epsilon = 0.05
	res, err := Run(g, p, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters < 2 {
		t.Errorf("tiny confidence bound should fragment opinions, got %d clusters", res.Clusters)
	}
}

func TestRunParameterValidation(t *testing.T) {
	g, _ := graphs.NewRing(10)
	if _, err := Run(g, Params{Epsilon: 0, Mu: 0.5, MaxSteps: 10}, nil); err == nil {
		t.Error("epsilon 0 should be rejected")
	}
	if _, err := Run(g, Params{Epsilon: 0.2, Mu: 0.9, MaxSteps: 10}, nil); err == nil {
		t.Error("mu > 0.5 should be rejected")
	}
	if _, err := Run(graphs.NewGraph(0), DefaultParams(), nil); err == nil {
		t.Error("empty graph should be rejected")
	}
	if _, err := Run(graphs.NewGraph(5), DefaultParams(), nil); err == nil {
		t.Error("edgeless graph should be rejected")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	g, _ := graphs.NewBarabasiAlbert(80, 2, rng.New(4))
	a, err := Run(g, DefaultParams(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, DefaultParams(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.Clusters != b.Clusters {
		t.Error("same seed should reproduce the run")
	}
	for i := range a.Opinions {
		if a.Opinions[i] != b.Opinions[i] {
			t.Fatal("opinion trajectories diverged")
		}
	}
}

func TestCountClusters(t *testing.T) {
	if got := countClusters([]float64{0.1, 0.11, 0.5, 0.9}, 0.05); got != 3 {
		t.Errorf("clusters = %d, want 3", got)
	}
	if got := countClusters(nil, 0.1); got != 0 {
		t.Errorf("empty clusters = %d", got)
	}
	if got := countClusters([]float64{0.5}, 0.1); got != 1 {
		t.Errorf("single opinion clusters = %d", got)
	}
}
