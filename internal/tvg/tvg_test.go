package tvg

import (
	"testing"

	"repro/internal/blocks"
	"repro/internal/color"
	"repro/internal/dynamo"
	"repro/internal/grid"
	"repro/internal/rules"
	"repro/internal/sim"
)

func meshMin(t *testing.T, m, n int) *dynamo.Construction {
	t.Helper()
	c, err := dynamo.MeshMinimum(m, n, 1, color.MustPalette(5))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// tvRun drives a time-varying run through the simulation engine — the
// execution path that replaced the former package-local loop — with the old
// loop's semantics: stop at the monochromatic configuration, budget
// 6·n + 32 when none is given.
func tvRun(topo grid.Topology, avail Availability, rule rules.Rule, initial *color.Coloring, maxRounds int) *sim.Result {
	if maxRounds <= 0 {
		maxRounds = 6*topo.Dims().N() + 32
	}
	return sim.Run(topo, rule, initial, sim.Options{
		TimeVarying:           avail,
		MaxRounds:             maxRounds,
		StopWhenMonochromatic: true,
	})
}

func TestAlwaysOnMatchesStaticEngine(t *testing.T) {
	c := meshMin(t, 7, 7)
	static := dynamo.Verify(c)
	tv := tvRun(c.Topology, AlwaysOn{}, rules.SMP{}, c.Coloring, 0)
	if !tv.Monochromatic || tv.FinalColor != 1 {
		t.Fatal("AlwaysOn run should behave like the static simulation")
	}
	if tv.Rounds != static.Rounds {
		t.Errorf("rounds %d vs static %d", tv.Rounds, static.Rounds)
	}
	if !tv.Final.Equal(static.Result.Final) {
		t.Error("final configurations differ")
	}
}

func TestStaticDeclarations(t *testing.T) {
	cases := []struct {
		name  string
		model interface{ Static() bool }
		want  bool
	}{
		{"always-on", AlwaysOn{}, true},
		{"bernoulli-p1", Bernoulli{P: 1}, true},
		{"bernoulli-p0.9", Bernoulli{P: 0.9}, false},
		{"periodic-zero", Periodic{}, true},
		{"periodic-off0", Periodic{Period: 4, Off: 0}, true},
		{"periodic-duty", Periodic{Period: 4, Off: 2}, false},
		{"nodefaults-up", NodeFaults{P: 1}, true},
		{"nodefaults-up-static-links", NodeFaults{P: 1, Links: AlwaysOn{}}, true},
		{"nodefaults-churn", NodeFaults{P: 0.9}, false},
		{"nodefaults-churny-links", NodeFaults{P: 1, Links: Bernoulli{P: 0.5}}, false},
	}
	for _, tc := range cases {
		if got := tc.model.Static(); got != tc.want {
			t.Errorf("%s: Static() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestBernoulliFullAvailabilityIsAlwaysOn(t *testing.T) {
	b := Bernoulli{P: 1, Seed: 1}
	if !b.Available(3, 1, 2) {
		t.Error("P=1 must always be available")
	}
	z := Bernoulli{P: 0, Seed: 1}
	if z.Available(3, 1, 2) {
		t.Error("P=0 must never be available")
	}
}

func TestBernoulliDeterministicAndSymmetric(t *testing.T) {
	b := Bernoulli{P: 0.5, Seed: 42}
	for round := 1; round < 20; round++ {
		for u := 0; u < 5; u++ {
			for v := u + 1; v < 5; v++ {
				first := b.Available(round, u, v)
				if b.Available(round, u, v) != first {
					t.Fatal("availability must be deterministic")
				}
			}
		}
	}
	// Roughly half the links should be up.
	up := 0
	for i := 0; i < 1000; i++ {
		if b.Available(i, 1, 2) {
			up++
		}
	}
	if up < 400 || up > 600 {
		t.Errorf("availability rate %d/1000, expected around 500", up)
	}
}

func TestPeriodicAvailability(t *testing.T) {
	p := Periodic{Period: 4, Off: 2}
	// Rounds 4,5 (mod 4 = 0,1) are down; rounds 6,7 are up.
	if p.Available(4, 0, 1) || p.Available(5, 0, 1) {
		t.Error("rounds in the off window should be down")
	}
	if !p.Available(6, 0, 1) || !p.Available(7, 0, 1) {
		t.Error("rounds in the on window should be up")
	}
	if !(Periodic{}).Available(3, 0, 1) {
		t.Error("zero period should mean always on")
	}
}

func TestChurnOutcomeIsMonochromaticOrBlocked(t *testing.T) {
	// Under link churn monotonicity can break: a seed vertex whose k-links
	// happen to be down can be persuaded away, and the system may be
	// absorbed into a stable non-monochromatic configuration containing a
	// foreign block.  The invariant we can assert is the disjunction: the
	// run either reaches the k-monochromatic configuration or ends with at
	// least one block of another color.  (E14 reports the success rate as a
	// function of the availability probability.)
	c := meshMin(t, 9, 9)
	static := dynamo.Verify(c)
	if !static.IsDynamo {
		t.Fatal("static configuration must be a dynamo")
	}
	for _, seed := range []uint64{7, 8, 9} {
		tv := tvRun(c.Topology, Bernoulli{P: 0.9, Seed: seed}, rules.SMP{}, c.Coloring, 2000)
		if tv.Monochromatic && tv.FinalColor == 1 {
			if tv.Rounds < static.Rounds {
				t.Errorf("seed %d: churn should not speed convergence up (%d vs %d)", seed, tv.Rounds, static.Rounds)
			}
			continue
		}
		blocked := false
		for _, other := range c.Palette.Colors() {
			if other != 1 && blocks.HasKBlock(c.Topology, tv.Final, other) {
				blocked = true
				break
			}
		}
		if !blocked {
			t.Errorf("seed %d: non-monochromatic outcome without a foreign block:\n%s", seed, tv.Final.String())
		}
	}
}

func TestDynamoSurvivesLightChurn(t *testing.T) {
	// With 99% availability and a generous budget the 7x7 minimum dynamo
	// still takes over for these seeds.
	c := meshMin(t, 7, 7)
	wins := 0
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		tv := tvRun(c.Topology, Bernoulli{P: 0.99, Seed: seed}, rules.SMP{}, c.Coloring, 5000)
		if tv.Monochromatic && tv.FinalColor == 1 {
			wins++
		}
	}
	if wins < 3 {
		t.Errorf("only %d/5 light-churn runs converged; expected most of them", wins)
	}
}

func TestNoAvailabilityMeansNoProgress(t *testing.T) {
	c := meshMin(t, 6, 6)
	tv := tvRun(c.Topology, Bernoulli{P: 0, Seed: 1}, rules.SMP{}, c.Coloring, 50)
	if tv.Monochromatic {
		t.Error("with all links down nothing can spread")
	}
	if !tv.Final.Equal(c.Coloring) {
		t.Error("no vertex should have changed")
	}
}

func TestPeriodicDutyCycleSlowsConvergence(t *testing.T) {
	c := meshMin(t, 7, 7)
	static := dynamo.Verify(c)
	tv := tvRun(c.Topology, Periodic{Period: 2, Off: 1}, rules.SMP{}, c.Coloring, 500)
	if !tv.Monochromatic {
		t.Fatal("a 50% duty cycle should still converge")
	}
	if tv.Rounds <= static.Rounds {
		t.Errorf("duty cycling should slow convergence (%d vs %d)", tv.Rounds, static.Rounds)
	}
}

func TestNodeFaultsAvailability(t *testing.T) {
	nf := NodeFaults{Links: AlwaysOn{}, P: 1, Seed: 1}
	if !nf.Available(3, 1, 2) {
		t.Error("P=1 should keep every node up")
	}
	down := NodeFaults{Links: AlwaysOn{}, P: 0, Seed: 1}
	if down.Available(3, 1, 2) {
		t.Error("P=0 should take every node down")
	}
	// Determinism and symmetry in the endpoints' node states.
	nf = NodeFaults{P: 0.5, Seed: 9}
	for round := 1; round < 10; round++ {
		if nf.Available(round, 2, 5) != nf.Available(round, 2, 5) {
			t.Fatal("node availability must be deterministic")
		}
	}
	// A nil Links model defaults to AlwaysOn.
	if got := (NodeFaults{P: 1}).Available(1, 0, 1); !got {
		t.Error("nil link model should default to always-on")
	}
	// Composition with a link model: if the link model says no, the answer
	// is no even with all nodes up.
	comp := NodeFaults{Links: Bernoulli{P: 0, Seed: 1}, P: 1}
	if comp.Available(1, 0, 1) {
		t.Error("link model must still apply")
	}
}

func TestNodeChurnOutcome(t *testing.T) {
	// Same invariant as the link-churn test: under node churn the run either
	// reaches the monochromatic configuration or is absorbed with a foreign
	// block present.
	c := meshMin(t, 8, 8)
	for _, p := range []float64{0.95, 0.85} {
		res := tvRun(c.Topology, NodeFaults{P: p, Seed: 21}, rules.SMP{}, c.Coloring, 3000)
		if res.Monochromatic && res.FinalColor == 1 {
			continue
		}
		blocked := false
		for _, other := range c.Palette.Colors() {
			if other != 1 && blocks.HasKBlock(c.Topology, res.Final, other) {
				blocked = true
				break
			}
		}
		if !blocked {
			t.Errorf("p=%v: non-monochromatic outcome without a foreign block", p)
		}
	}
}

func TestRunDoesNotModifyInitial(t *testing.T) {
	c := meshMin(t, 6, 6)
	snapshot := c.Coloring.Clone()
	tvRun(c.Topology, Bernoulli{P: 0.5, Seed: 3}, rules.SMP{}, c.Coloring, 100)
	if !c.Coloring.Equal(snapshot) {
		t.Error("a run must not modify the initial coloring")
	}
}
