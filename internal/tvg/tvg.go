// Package tvg provides the link-availability models of the
// time-varying-graph extension suggested in the paper's conclusions ("such
// a protocol should be investigated in contexts where graphs are subject to
// intermittent availability of both links and nodes", citing Casteigts,
// Flocchini, Quattrociocchi, Santoro).
//
// The models implement the sim.Availability seam: a run with
// sim.Options.TimeVarying set masks link availability per round, so a
// vertex only observes the neighbors whose links are currently up and the
// SMP condition is evaluated on that reduced multiset.  The execution
// itself lives in the simulation engine (the former package-local run loop
// was deleted in its favor), which forces full-sweep semantics — the dirty
// frontier is unsound under link churn — and works over every substrate,
// torus or general graph.  The public entry point is the dynmon package's
// TimeVarying run option.
package tvg

import (
	"repro/internal/rng"
)

// Availability decides which links are usable in a given round.  It must be
// deterministic in (round, u, v) so that simulations are reproducible;
// implementations receive the endpoints with u < v to keep the decision
// symmetric.
type Availability interface {
	// Available reports whether the link {u, v} can carry information
	// during the given round (1-based).
	Available(round, u, v int) bool
}

// AlwaysOn is the degenerate availability model of the static torus.
type AlwaysOn struct{}

// Available always returns true.
func (AlwaysOn) Available(int, int, int) bool { return true }

// Static reports that the model is equivalent to a fully available static
// network, which lets the engine keep the static fixed-point stop: a round
// that changes nothing can never change again.
func (AlwaysOn) Static() bool { return true }

// Bernoulli makes every link independently available with probability P in
// every round, using a hash of (seed, round, u, v) so that repeated queries
// agree and runs are reproducible.
type Bernoulli struct {
	// P is the per-round availability probability in [0, 1].
	P float64
	// Seed selects the random universe.
	Seed uint64
}

// Available implements Availability.
func (b Bernoulli) Available(round, u, v int) bool {
	if b.P >= 1 {
		return true
	}
	if b.P <= 0 {
		return false
	}
	h := rng.New(b.Seed ^ (uint64(round) * 0x9e3779b97f4a7c15) ^ (uint64(u) << 32) ^ uint64(v))
	return h.Float64() < b.P
}

// Static reports whether the model degenerates to the fully available
// static network (P >= 1).
func (b Bernoulli) Static() bool { return b.P >= 1 }

// NodeFaults wraps another availability model and additionally takes whole
// vertices offline: when a vertex is down during a round, every link
// incident to it is unavailable, so its neighbors cannot read its color and
// it reads nobody (hence it keeps its color).  This is the "intermittent
// availability of both links and nodes" variant from the paper's
// conclusions.
type NodeFaults struct {
	// Links is the underlying link-availability model (AlwaysOn for pure
	// node churn).
	Links Availability
	// P is the per-round probability that a vertex is up.
	P float64
	// Seed selects the random universe.
	Seed uint64
}

// nodeUp reports whether vertex v is up during the given round.
func (nf NodeFaults) nodeUp(round, v int) bool {
	if nf.P >= 1 {
		return true
	}
	if nf.P <= 0 {
		return false
	}
	h := rng.New(nf.Seed ^ 0xa24baed4963ee407 ^ (uint64(round) * 0x9e3779b97f4a7c15) ^ uint64(v)<<17)
	return h.Float64() < nf.P
}

// Available implements Availability: the link is usable only when both
// endpoints are up and the underlying link model allows it.
func (nf NodeFaults) Available(round, u, v int) bool {
	links := nf.Links
	if links == nil {
		links = AlwaysOn{}
	}
	return nf.nodeUp(round, u) && nf.nodeUp(round, v) && links.Available(round, u, v)
}

// Static reports whether the model degenerates to the fully available
// static network: no node ever fails and the underlying link model is
// itself static.
func (nf NodeFaults) Static() bool {
	if nf.P < 1 {
		return false
	}
	if nf.Links == nil {
		return true
	}
	s, ok := nf.Links.(interface{ Static() bool })
	return ok && s.Static()
}

// Periodic disables every link during rounds where (round mod Period) falls
// below Off; it models synchronized duty-cycling rather than random churn.
type Periodic struct {
	// Period is the cycle length in rounds (must be positive).
	Period int
	// Off is the number of rounds per cycle during which links are down.
	Off int
}

// Available implements Availability.
func (p Periodic) Available(round, _, _ int) bool {
	if p.Period <= 0 {
		return true
	}
	return round%p.Period >= p.Off
}

// Static reports whether the duty cycle never switches anything off.
func (p Periodic) Static() bool { return p.Period <= 0 || p.Off <= 0 }
