// Package tvg implements the time-varying-graph extension suggested in the
// paper's conclusions ("such a protocol should be investigated in contexts
// where graphs are subject to intermittent availability of both links and
// nodes", citing Casteigts, Flocchini, Quattrociocchi, Santoro).
//
// A time-varying torus wraps one of the torus topologies with a per-round
// link availability model; during a round a vertex only observes the
// neighbors whose links are currently available, and the SMP condition is
// evaluated on that reduced multiset.
package tvg

import (
	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
)

// Availability decides which links are usable in a given round.  It must be
// deterministic in (round, u, v) so that simulations are reproducible;
// implementations receive the endpoints with u < v to keep the decision
// symmetric.
type Availability interface {
	// Available reports whether the link {u, v} can carry information
	// during the given round (1-based).
	Available(round, u, v int) bool
}

// AlwaysOn is the degenerate availability model of the static torus.
type AlwaysOn struct{}

// Available always returns true.
func (AlwaysOn) Available(int, int, int) bool { return true }

// Bernoulli makes every link independently available with probability P in
// every round, using a hash of (seed, round, u, v) so that repeated queries
// agree and runs are reproducible.
type Bernoulli struct {
	// P is the per-round availability probability in [0, 1].
	P float64
	// Seed selects the random universe.
	Seed uint64
}

// Available implements Availability.
func (b Bernoulli) Available(round, u, v int) bool {
	if b.P >= 1 {
		return true
	}
	if b.P <= 0 {
		return false
	}
	h := rng.New(b.Seed ^ (uint64(round) * 0x9e3779b97f4a7c15) ^ (uint64(u) << 32) ^ uint64(v))
	return h.Float64() < b.P
}

// NodeFaults wraps another availability model and additionally takes whole
// vertices offline: when a vertex is down during a round, every link
// incident to it is unavailable, so its neighbors cannot read its color and
// it reads nobody (hence it keeps its color).  This is the "intermittent
// availability of both links and nodes" variant from the paper's
// conclusions.
type NodeFaults struct {
	// Links is the underlying link-availability model (AlwaysOn for pure
	// node churn).
	Links Availability
	// P is the per-round probability that a vertex is up.
	P float64
	// Seed selects the random universe.
	Seed uint64
}

// nodeUp reports whether vertex v is up during the given round.
func (nf NodeFaults) nodeUp(round, v int) bool {
	if nf.P >= 1 {
		return true
	}
	if nf.P <= 0 {
		return false
	}
	h := rng.New(nf.Seed ^ 0xa24baed4963ee407 ^ (uint64(round) * 0x9e3779b97f4a7c15) ^ uint64(v)<<17)
	return h.Float64() < nf.P
}

// Available implements Availability: the link is usable only when both
// endpoints are up and the underlying link model allows it.
func (nf NodeFaults) Available(round, u, v int) bool {
	links := nf.Links
	if links == nil {
		links = AlwaysOn{}
	}
	return nf.nodeUp(round, u) && nf.nodeUp(round, v) && links.Available(round, u, v)
}

// Periodic disables every link during rounds where (round mod Period) falls
// below Off; it models synchronized duty-cycling rather than random churn.
type Periodic struct {
	// Period is the cycle length in rounds (must be positive).
	Period int
	// Off is the number of rounds per cycle during which links are down.
	Off int
}

// Available implements Availability.
func (p Periodic) Available(round, _, _ int) bool {
	if p.Period <= 0 {
		return true
	}
	return round%p.Period >= p.Off
}

// Result describes a time-varying simulation run.
type Result struct {
	// Rounds executed.
	Rounds int
	// Monochromatic reports whether the run ended in the monochromatic
	// configuration of FinalColor.
	Monochromatic bool
	FinalColor    color.Color
	// Final is the final configuration.
	Final *color.Coloring
}

// Run evolves the coloring under the rule on the time-varying torus: each
// round, every vertex applies the rule to the colors of its currently
// reachable neighbors only.  Unreachable neighbors are simply dropped from
// the neighborhood (a vertex with fewer than two reachable neighbors never
// recolors under SMP-style rules).
func Run(topo grid.Topology, avail Availability, rule rules.Rule, initial *color.Coloring, maxRounds int) *Result {
	d := topo.Dims()
	if maxRounds <= 0 {
		maxRounds = 6*d.N() + 32
	}
	cur := initial.Clone()
	next := initial.Clone()
	res := &Result{}
	var buf [grid.Degree]int
	scratch := make([]color.Color, 0, grid.Degree)
	for round := 1; round <= maxRounds; round++ {
		changed := 0
		for v := 0; v < d.N(); v++ {
			scratch = scratch[:0]
			for _, u := range topo.Neighbors(v, buf[:0]) {
				a, b := v, u
				if a > b {
					a, b = b, a
				}
				if avail.Available(round, a, b) {
					scratch = append(scratch, cur.At(u))
				}
			}
			nc := cur.At(v)
			if len(scratch) >= 2 {
				nc = rule.Next(cur.At(v), scratch)
			}
			next.Set(v, nc)
			if nc != cur.At(v) {
				changed++
			}
		}
		res.Rounds = round
		cur, next = next, cur
		if _, mono := cur.IsMonochromatic(); mono {
			break
		}
		if changed == 0 && isAlwaysOn(avail) {
			// Only a static network is guaranteed to stay at a fixed point;
			// an intermittent one may change again when links return.
			break
		}
	}
	res.Final = cur
	res.FinalColor, res.Monochromatic = cur.IsMonochromatic()
	return res
}

func isAlwaysOn(a Availability) bool {
	_, ok := a.(AlwaysOn)
	return ok
}
