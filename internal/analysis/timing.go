package analysis

import (
	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
	"repro/internal/sim"
)

// TimingMatrix runs the SMP-Protocol on the initial coloring and returns the
// per-vertex recoloring times laid out as a row-major matrix (the format of
// the paper's Figures 5 and 6: entry (i,j) is the round at which vertex
// (i,j) first carries the target color, 0 for seed vertices, -1 if never).
func TimingMatrix(topo grid.Topology, initial *color.Coloring, target color.Color) ([][]int, *sim.Result) {
	res := sim.Run(topo, rules.SMP{}, initial, sim.Options{
		Target:                target,
		StopWhenMonochromatic: true,
		DetectCycles:          true,
	})
	return res.TimesMatrix(topo.Dims()), res
}

// Figure5Reference is the 5x5 recoloring-time matrix printed in the paper's
// Figure 5 (toroidal mesh, full cross of k on row 0 and column 0).
func Figure5Reference() [][]int {
	return [][]int{
		{0, 0, 0, 0, 0},
		{0, 1, 2, 2, 1},
		{0, 2, 3, 3, 2},
		{0, 2, 3, 3, 2},
		{0, 1, 2, 2, 1},
	}
}

// Figure6Reference is the 5x5 recoloring-time matrix printed in the paper's
// Figure 6 (torus cordalis, Theorem 4 seed: row 0 plus vertex (1,0)).
func Figure6Reference() [][]int {
	return [][]int{
		{0, 0, 0, 0, 0},
		{0, 1, 2, 3, 4},
		{5, 6, 7, 8, 7},
		{6, 7, 8, 7, 6},
		{5, 4, 3, 2, 1},
	}
}

// MatricesEqual reports whether two integer matrices are identical.
func MatricesEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// MatrixMax returns the largest entry of the matrix (0 for an empty matrix).
func MatrixMax(m [][]int) int {
	max := 0
	for _, row := range m {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// MatrixDiffCount returns how many entries differ between two matrices of
// identical shape (and -1 when the shapes differ).
func MatrixDiffCount(a, b [][]int) int {
	if len(a) != len(b) {
		return -1
	}
	diff := 0
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return -1
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				diff++
			}
		}
	}
	return diff
}
