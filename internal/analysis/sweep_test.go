package analysis

import (
	"testing"

	"repro/internal/grid"
)

func TestRunPointMesh(t *testing.T) {
	rec := RunPoint(Point{Kind: grid.KindToroidalMesh, M: 6, N: 6, Colors: 5})
	if rec.Err != nil {
		t.Fatal(rec.Err)
	}
	if rec.SeedSize != rec.LowerBound || rec.LowerBound != 10 {
		t.Errorf("seed %d, lower bound %d", rec.SeedSize, rec.LowerBound)
	}
	if !rec.IsDynamo || !rec.Monotone || !rec.ConditionsOK {
		t.Errorf("unexpected record %+v", rec)
	}
	if rec.Rounds <= 0 {
		t.Error("rounds should be positive")
	}
}

func TestRunPointReportsErrors(t *testing.T) {
	rec := RunPoint(Point{Kind: grid.KindToroidalMesh, M: 4, N: 4, Colors: 4})
	if rec.Err == nil {
		t.Skip("4x4 with 4 colors unexpectedly succeeded")
	}
	if rec.Construction != "error" {
		t.Errorf("construction label = %q", rec.Construction)
	}
}

func TestSweepParallelMatchesSequential(t *testing.T) {
	points := GridPoints(grid.KindToroidalMesh, [][2]int{{5, 5}, {6, 6}, {7, 7}, {6, 9}}, []int{5})
	seq := Sweep(points, 1, RunPoint)
	par := Sweep(points, 4, RunPoint)
	if len(seq) != len(points) || len(par) != len(points) {
		t.Fatal("result length mismatch")
	}
	for i := range seq {
		if seq[i].SeedSize != par[i].SeedSize || seq[i].Rounds != par[i].Rounds || seq[i].IsDynamo != par[i].IsDynamo {
			t.Errorf("point %d differs between sequential and parallel sweeps", i)
		}
	}
}

func TestGridPoints(t *testing.T) {
	pts := GridPoints(grid.KindTorusCordalis, [][2]int{{4, 4}, {5, 5}}, []int{4, 5, 6})
	if len(pts) != 6 {
		t.Fatalf("expected 6 points, got %d", len(pts))
	}
	for _, p := range pts {
		if p.Kind != grid.KindTorusCordalis {
			t.Error("kind not propagated")
		}
	}
}

func TestDefaultSizesAreValid(t *testing.T) {
	for _, s := range DefaultSizes() {
		if s[0] < 3 || s[1] < 3 {
			t.Errorf("size %v too small for the constructions", s)
		}
	}
}
