package analysis

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllExperimentsHaveUniqueIDsAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment generators are slow; skipped in -short mode")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %s incompletely defined", e.ID)
		}
	}
	if len(seen) != 18 {
		t.Fatalf("expected 18 experiments, found %d", len(seen))
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E01"); !ok {
		t.Error("E01 should exist")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 should not exist")
	}
}

func TestE01MeshBounds(t *testing.T) {
	tbl := E01MeshBounds()
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
	for _, row := range tbl.Rows {
		if row[2] != row[3] {
			t.Errorf("construction size %s differs from the lower bound %s (row %v)", row[3], row[2], row)
		}
		if row[4] != "yes" {
			t.Errorf("construction not verified as a monotone dynamo: %v", row)
		}
		// Theorem 1 forbids *monotone* dynamos below the bound.  That holds
		// empirically for min(m,n) >= 6; on smaller tori random search finds
		// genuine counterexamples (recorded in EXPERIMENTS.md), so those rows
		// are exempt here.
		m, _ := strconv.Atoi(row[0])
		n, _ := strconv.Atoi(row[1])
		if m >= 6 && n >= 6 && !strings.HasPrefix(row[6], "0/") {
			t.Errorf("a random undersized seed was a MONOTONE dynamo on a large torus: %v", row)
		}
	}
}

func TestE02Figure1(t *testing.T) {
	tbl := E02Figure1()
	if len(tbl.Rows) < 3 {
		t.Fatalf("unexpected table: %+v", tbl)
	}
	if tbl.Rows[0][2] != "16" {
		t.Errorf("Figure 1 dynamo size = %s, want 16", tbl.Rows[0][2])
	}
	if tbl.Rows[1][2] != "yes" || tbl.Rows[2][2] != "yes" {
		t.Error("Figure 1 configuration should be a monotone dynamo")
	}
}

func TestE05CordalisMatchesBound(t *testing.T) {
	tbl := E05Cordalis()
	for _, row := range tbl.Rows {
		if row[3] == "error" {
			t.Errorf("construction failed for %vx%v", row[0], row[1])
			continue
		}
		if row[2] != row[3] {
			t.Errorf("cordalis size %s != bound %s", row[3], row[2])
		}
		if row[5] != "yes" {
			t.Errorf("cordalis construction not a monotone dynamo: %v", row)
		}
	}
}

func TestE06SerpentinusMatchesBound(t *testing.T) {
	tbl := E06Serpentinus()
	for _, row := range tbl.Rows {
		if row[4] == "error" {
			t.Errorf("construction failed for %vx%v", row[0], row[1])
			continue
		}
		if row[3] != row[4] {
			t.Errorf("serpentinus size %s != bound %s", row[4], row[3])
		}
		if row[6] != "yes" {
			t.Errorf("serpentinus construction not a monotone dynamo: %v", row)
		}
	}
}

func TestE09Figure5Matches(t *testing.T) {
	tbl := E09Figure5()
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "matches" || last[2] != "yes" {
		t.Errorf("Figure 5 should match exactly: %v", last)
	}
}

func TestE10Figure6RoundCount(t *testing.T) {
	tbl := E10Figure6()
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "max (= rounds)" {
		t.Fatalf("unexpected last row %v", last)
	}
	if last[1] != last[2] {
		t.Errorf("Figure 6 total round count should match: paper %s, measured %s", last[1], last[2])
	}
}

func TestE04CounterexamplesAreNotDynamos(t *testing.T) {
	tbl := E04Counterexamples()
	if len(tbl.Rows) != 3 {
		t.Fatalf("expected 3 counterexamples, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[2] != "no" {
			t.Errorf("counterexample %s unexpectedly reached the monochromatic configuration", row[0])
		}
	}
}

func TestE12RuleComparisonShowsTheTieDifference(t *testing.T) {
	tbl := E12RuleComparison()
	var smpCross, pbCross string
	for _, row := range tbl.Rows {
		if row[0] == "two-color cross on 6x6 mesh" {
			switch row[1] {
			case "smp":
				smpCross = row[2]
			case "simple-majority-pb":
				pbCross = row[2]
			}
		}
	}
	if smpCross != "no" || pbCross != "yes" {
		t.Errorf("expected SMP=no, PB=yes on the two-color cross; got smp=%s pb=%s", smpCross, pbCross)
	}
}

func TestE16PaddingAblationShowsHypothesisGap(t *testing.T) {
	tbl := E16PaddingAblation()
	foundGap := false
	for _, row := range tbl.Rows {
		if strings.Contains(row[0], "corner gap") {
			foundGap = true
			if row[1] != "yes" {
				t.Errorf("gap padding should satisfy the stated hypotheses: %v", row)
			}
			if row[2] != "no" {
				t.Errorf("gap padding should not be monotone: %v", row)
			}
		}
		if strings.Contains(row[0], "library default") && (row[2] != "yes" || row[3] != "yes") {
			t.Errorf("default padding should be a monotone dynamo: %v", row)
		}
		if strings.Contains(row[0], "foreign block") && row[3] != "no" {
			t.Errorf("planted-block padding should not be a dynamo: %v", row)
		}
	}
	if !foundGap {
		t.Error("gap row missing from the ablation table")
	}
}

func TestExperimentTablesRenderInShortMode(t *testing.T) {
	// A smoke test that the cheap experiment generators render non-empty
	// tables (the expensive ones are covered above and by the benchmarks).
	for _, gen := range []func() *Table{E02Figure1, E09Figure5, E11Proposition3, E12RuleComparison} {
		tbl := gen()
		out := tbl.Render()
		if len(out) == 0 || len(tbl.Rows) == 0 {
			t.Errorf("experiment %q rendered empty output", tbl.Title)
		}
	}
}
